// Benchmarks for the evaluation suite: one testing.B target per
// experiment E1–E16 (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results). The row-printing counterpart
// lives in cmd/odpbench; TestExperimentsQuick runs every experiment
// end to end at reduced scale.
package odp_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp"
	"odp/internal/bench"
)

// benchCell is the standard measurable servant.
type benchCell struct {
	mu    sync.Mutex
	n     int64
	items []string
}

func newBenchCell(items int) *benchCell {
	c := &benchCell{items: make([]string, items)}
	for i := range c.items {
		c.items[i] = fmt.Sprintf("item-%04d", i)
	}
	return c
}

func (c *benchCell) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "add":
		c.n += args[0].(int64)
		return "ok", []odp.Value{c.n}, nil
	case "get":
		return "ok", []odp.Value{c.n}, nil
	case "item":
		return "ok", []odp.Value{c.items[args[0].(int64)]}, nil
	case "items":
		from, to := args[0].(int64), args[1].(int64)
		out := make([]odp.Value, 0, to-from)
		for i := from; i < to; i++ {
			out = append(out, c.items[i])
		}
		return "ok", out, nil
	case "note":
		c.n++
		return "", nil, nil
	default:
		return "", nil, fmt.Errorf("cell: no op %q", op)
	}
}

func (c *benchCell) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(c.n))
	return buf, nil
}

func (c *benchCell) Restore(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = int64(binary.BigEndian.Uint64(data))
	return nil
}

// rig is a two-node benchmark rig.
type rig struct {
	fabric *odp.Fabric
	server *odp.Platform
	client *odp.Platform
}

func newRig(b *testing.B, profile odp.LinkProfile, opts ...odp.Option) *rig {
	b.Helper()
	f := odp.NewFabric(odp.WithSeed(1), odp.WithDefaultLink(profile))
	sep, err := f.Endpoint("server")
	if err != nil {
		b.Fatal(err)
	}
	server, err := odp.NewPlatform("server", sep, opts...)
	if err != nil {
		b.Fatal(err)
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		b.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(server.RelocRef))
	if err != nil {
		b.Fatal(err)
	}
	r := &rig{fabric: f, server: server, client: client}
	b.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
		_ = f.Close()
	})
	return r
}

func (r *rig) publish(b *testing.B, id string, obj odp.Object) odp.Ref {
	b.Helper()
	ref, err := r.server.Publish(id, obj)
	if err != nil {
		b.Fatal(err)
	}
	return ref
}

func mustCall(b *testing.B, p *odp.Proxy, op string, args ...odp.Value) odp.Outcome {
	b.Helper()
	out, err := p.Call(context.Background(), op, args...)
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// ---- E1: access-transparency invocation ladder (§4.5) ----
//
// The hot-path benchmarks (E1, E4, E12) are defined once in
// internal/bench and delegated to here, so `go test -bench` and the
// BENCH_<seq>.json trajectory recorded by `odpbench -record` measure
// the identical code.

func BenchmarkE1DirectGoCall(b *testing.B)       { bench.MicroE1DirectGoCall(b) }
func BenchmarkE1CoLocatedOptimised(b *testing.B) { bench.MicroE1CoLocatedOptimised(b) }
func BenchmarkE1RemoteLoopback(b *testing.B)     { bench.MicroE1RemoteLoopback(b) }
func BenchmarkE1HistogramLoopback(b *testing.B)  { bench.MicroE1HistogramLoopback(b) }
func BenchmarkE1BinaryLoopback(b *testing.B)     { bench.MicroE1BinaryLoopback(b) }
func BenchmarkE1PipelinedLoopback(b *testing.B)  { bench.MicroE1PipelinedLoopback(b) }

func BenchmarkE1TracedLoopback(b *testing.B) { bench.MicroE1TracedLoopback(b) }
func BenchmarkE1TracedUnsampledLoopback(b *testing.B) {
	bench.MicroE1TracedUnsampledLoopback(b)
}

func BenchmarkE1RemoteLAN(b *testing.B) {
	r := newRig(b, odp.LAN)
	ref := r.publish(b, "cell", odp.Object{Servant: newBenchCell(0)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

func BenchmarkE1RemoteWAN(b *testing.B) {
	r := newRig(b, odp.WAN)
	ref := r.publish(b, "cell", odp.Object{Servant: newBenchCell(0)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

// ---- E2: constant-object copying (§4.5) ----

func BenchmarkE2ByReferenceRead(b *testing.B) {
	r := newRig(b, odp.LAN)
	ref := r.publish(b, "cat", odp.Object{Servant: newBenchCell(64)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "item", int64(i%64))
	}
}

func BenchmarkE2ByCopyRead(b *testing.B) {
	r := newRig(b, odp.LAN)
	ref := r.publish(b, "cat", odp.Object{Servant: newBenchCell(64)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	out := mustCall(b, proxy, "items", int64(0), int64(64))
	local := out.Results
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += len(local[i%64].(string))
	}
	_ = sink
}

// ---- E3: multiple results per outcome (§5.1) ----

func BenchmarkE3SixteenCallsOfOne(b *testing.B) {
	r := newRig(b, odp.WAN)
	ref := r.publish(b, "store", odp.Object{Servant: newBenchCell(16)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := int64(0); k < 16; k++ {
			mustCall(b, proxy, "item", k)
		}
	}
}

func BenchmarkE3OneCallOfSixteen(b *testing.B) {
	r := newRig(b, odp.WAN)
	ref := r.publish(b, "store", odp.Object{Servant: newBenchCell(16)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "items", int64(0), int64(16))
	}
}

// ---- E4: interrogation vs announcement (§5.1) ----

func BenchmarkE4Interrogation(b *testing.B)       { bench.MicroE4Interrogation(b) }
func BenchmarkE4AnnouncementDrained(b *testing.B) { bench.MicroE4Announcement(b) }
func BenchmarkE4AnnounceConcurrent(b *testing.B)  { bench.MicroE4AnnounceConcurrent(b) }

// ---- E5: transactions (§5.2) ----

func benchTxn(b *testing.B, pool int) {
	r := newRig(b, odp.LinkProfile{}, odp.WithLockWait(2*time.Second))
	refs := make([]odp.Ref, pool)
	for i := range refs {
		refs[i] = r.publish(b, fmt.Sprintf("acct-%d", i), odp.Object{
			Servant: newBenchCell(0),
			Env: odp.Env{Atomic: &odp.AtomicSpec{
				Separation: odp.Separation{ReadOnly: map[string]bool{"get": true}},
			}},
		})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from, to := i%pool, (i+1)%pool
		tx := r.client.Coordinator.Begin()
		if _, _, err := tx.Invoke(ctx, refs[from], "add", []odp.Value{int64(-1)}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := tx.Invoke(ctx, refs[to], "add", []odp.Value{int64(1)}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5TxnLowContention(b *testing.B)  { benchTxn(b, 16) }
func BenchmarkE5TxnHighContention(b *testing.B) { benchTxn(b, 2) }

// ---- E6: replica groups (§5.3) ----

func BenchmarkE6Group3Invoke(b *testing.B) {
	f := odp.NewFabric(odp.WithSeed(2), odp.WithDefaultLink(odp.LAN))
	var platforms []*odp.Platform
	for i := 0; i < 3; i++ {
		ep, err := f.Endpoint(fmt.Sprintf("m%d", i))
		if err != nil {
			b.Fatal(err)
		}
		p, err := odp.NewPlatform(fmt.Sprintf("m%d", i), ep)
		if err != nil {
			b.Fatal(err)
		}
		platforms = append(platforms, p)
	}
	rep, err := odp.PublishReplicated(platforms, odp.ReplicaSpec{
		GroupID: "bench", Mode: odp.ModeActive,
		HeartbeatInterval: 20 * time.Millisecond, FailureTimeout: 200 * time.Millisecond,
	}, func() odp.Servant { return newBenchCell(0) })
	if err != nil {
		b.Fatal(err)
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		b.Fatal(err)
	}
	client, err := odp.NewPlatform("client", cep, odp.WithRelocator(platforms[0].RelocRef))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		rep.Stop()
		_ = client.Close()
		for _, p := range platforms {
			_ = p.Close()
		}
		_ = f.Close()
	})
	proxy := client.Bind(rep.Ref()).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

// ---- E7: relocation (§5.4) ----

func BenchmarkE7RelocatorLookup(b *testing.B) {
	r := newRig(b, odp.LinkProfile{})
	for i := 0; i < 100; i++ {
		r.server.RelocTable.Register(odp.Ref{ID: fmt.Sprintf("m-%d", i), Endpoints: []string{"x"}, Epoch: 1})
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.client.Capsule.Invoke(ctx, r.server.RelocRef, "lookup",
			[]odp.Value{fmt.Sprintf("m-%d", i%100)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7StationaryInvokeNoRelocatorTraffic(b *testing.B) {
	r := newRig(b, odp.LinkProfile{})
	ref := r.publish(b, "stationary", odp.Object{Servant: newBenchCell(0)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "get")
	}
	b.StopTimer()
	if st := r.client.BinderStats(); st.Relocations != 0 {
		b.Fatalf("stationary interface consulted the relocator %d times", st.Relocations)
	}
}

// ---- E8: passivation and recovery (§5.5) ----

func BenchmarkE8PassivateReactivate(b *testing.B) {
	r := newRig(b, odp.LinkProfile{})
	odp.RegisterFactory(r.server, "Cell", func() odp.MovableServant { return newBenchCell(0) })
	cellType := odp.Type{Name: "Cell", Ops: map[string]odp.Operation{
		"get": {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		"add": {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
	}}
	ref := r.publish(b, "sleeper", odp.Object{
		Servant: newBenchCell(0), Type: cellType, Env: odp.Env{Movable: true},
	})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.server.Mover.Passivate("sleeper"); err != nil {
			b.Fatal(err)
		}
		mustCall(b, proxy, "get") // transparent reactivation
	}
}

// ---- E9: federation interception (§5.6) ----

func BenchmarkE9ThroughGateway(b *testing.B) {
	fabA := odp.NewFabric(odp.WithSeed(3))
	fabB := odp.NewFabric(odp.WithSeed(4))
	mk := func(f *odp.Fabric, name string, opts ...odp.Option) *odp.Platform {
		ep, err := f.Endpoint(name)
		if err != nil {
			b.Fatal(err)
		}
		p, err := odp.NewPlatform(name, ep, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	clientA := mk(fabA, "client-a")
	serverB := mk(fabB, "server-b", odp.WithCodec(odp.TextCodec{}))
	gwA := mk(fabA, "gw-a")
	gwB := mk(fabB, "gw-b", odp.WithCodec(odp.TextCodec{}))
	b.Cleanup(func() {
		_ = clientA.Close()
		_ = serverB.Close()
		_ = gwA.Close()
		_ = gwB.Close()
		_ = fabA.Close()
		_ = fabB.Close()
	})
	refB, err := serverB.Publish("svc", odp.Object{Servant: newBenchCell(0)})
	if err != nil {
		b.Fatal(err)
	}
	gw := odp.NewGateway("gw", gwA, gwB, nil)
	proxyRef, err := gw.Export(refB, odp.SideB)
	if err != nil {
		b.Fatal(err)
	}
	proxy := clientA.Bind(proxyRef).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

// ---- E10: trading (§6) ----

func BenchmarkE10Import1000Offers(b *testing.B) {
	r := newRig(b, odp.LinkProfile{}, odp.WithTrader("bench"))
	matching := odp.Type{Name: "Cell", Ops: map[string]odp.Operation{
		"get": {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
	}}
	other := odp.Type{Name: "Other", Ops: map[string]odp.Operation{
		"frob": {Outcomes: map[string][]odp.Desc{"ok": {}}},
	}}
	for i := 0; i < 1000; i++ {
		t := other
		if i%10 == 0 {
			t = matching
		}
		if _, err := r.server.Trader.Advertise(t,
			odp.Ref{ID: fmt.Sprintf("o-%d", i), Endpoints: []string{"x"}}, nil); err != nil {
			b.Fatal(err)
		}
	}
	tc := odp.NewTraderClient(r.client, r.server.Trader.Ref())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Import(ctx, odp.ImportSpec{Requirement: matching, MaxMatches: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E19: sharded trader store at scale (§6) ----

func BenchmarkTraderImport10k(b *testing.B)  { bench.MicroTraderImport10k(b) }
func BenchmarkTraderImport100k(b *testing.B) { bench.MicroTraderImport100k(b) }
func BenchmarkTraderChurn10k(b *testing.B)   { bench.MicroTraderChurn10k(b) }

// ---- E11: security guards (§7.1) ----

func benchGuard(b *testing.B, seal bool) {
	r := newRig(b, odp.LinkProfile{})
	r.server.Keys.Share("alice", []byte("bench-secret"))
	ref := r.publish(b, "guarded", odp.Object{
		Servant: newBenchCell(0),
		Env: odp.Env{Secured: &odp.SecureSpec{Policy: odp.Policy{Rules: []odp.Rule{
			{Principal: "alice", Op: "*", Allow: true},
		}}}},
	})
	signer := odp.NewSigner("alice", []byte("bench-secret"))
	signer.Seal = seal
	proxy := r.client.Bind(ref).WithSigner(signer).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

func BenchmarkE11PlainInvoke(b *testing.B) {
	r := newRig(b, odp.LinkProfile{})
	ref := r.publish(b, "plain", odp.Object{Servant: newBenchCell(0)})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
}

func BenchmarkE11Authenticated(b *testing.B)       { benchGuard(b, false) }
func BenchmarkE11AuthenticatedSealed(b *testing.B) { benchGuard(b, true) }

// ---- E12: streams (§7.2) ----

func BenchmarkE12FrameSend(b *testing.B) { bench.MicroE12FrameSend(b) }

// ---- E13: garbage collection (§7.3) ----

func BenchmarkE13Sweep1000(b *testing.B) {
	r := newRig(b, odp.LinkProfile{}, odp.WithGCGrace(time.Nanosecond))
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 1000; j++ {
			if _, err := r.server.Publish(fmt.Sprintf("o-%d-%d", i, j), odp.Object{
				Servant: newBenchCell(0), Env: odp.Env{Leased: &odp.LeaseSpec{}},
			}); err != nil {
				b.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
		b.StartTimer()
		if got := len(r.server.Collector.Sweep()); got != 1000 {
			b.Fatalf("swept %d", got)
		}
	}
}

// ---- E14: at-most-once under loss (§5.1) ----

func BenchmarkE14InvokeUnder10PctLoss(b *testing.B) {
	r := newRig(b, odp.LinkProfile{Latency: 200 * time.Microsecond, Loss: 0.1})
	target := newBenchCell(0)
	ref := r.publish(b, "counter", odp.Object{Servant: target})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{
		Timeout: 30 * time.Second, Retransmit: 2 * time.Millisecond,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "add", int64(1))
	}
	b.StopTimer()
	target.mu.Lock()
	executed := target.n
	target.mu.Unlock()
	if executed != int64(b.N) {
		b.Fatalf("at-most-once violated: %d executions for %d calls", executed, b.N)
	}
}

// ---- E15: selective transparency (§3, §4.5) ----

func benchEnvStack(b *testing.B, env odp.Env, signer *odp.Signer) {
	r := newRig(b, odp.LinkProfile{})
	r.server.Keys.Share("alice", []byte("k"))
	ref := r.publish(b, "obj", odp.Object{Servant: newBenchCell(0), Env: env})
	proxy := r.client.Bind(ref).WithQoS(odp.QoS{Timeout: 30 * time.Second})
	if signer != nil {
		proxy = proxy.WithSigner(signer)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustCall(b, proxy, "get")
	}
}

func BenchmarkE15EnvNone(b *testing.B) { benchEnvStack(b, odp.Env{}, nil) }

func BenchmarkE15EnvManaged(b *testing.B) {
	benchEnvStack(b, odp.Env{Managed: &odp.ManagedSpec{}}, nil)
}

func BenchmarkE15EnvFull(b *testing.B) {
	benchEnvStack(b, odp.Env{
		Managed:     &odp.ManagedSpec{},
		Leased:      &odp.LeaseSpec{},
		Recoverable: &odp.RecoverSpec{ReadOnly: map[string]bool{"get": true}},
		Secured: &odp.SecureSpec{Policy: odp.Policy{Rules: []odp.Rule{
			{Principal: "alice", Op: "*", Allow: true},
		}}},
	}, odp.NewSigner("alice", []byte("k")))
}

// TestExperimentsQuick runs every registered experiment at reduced scale:
// the end-to-end health check of the whole evaluation harness.
func TestExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still take a few seconds")
	}
	for _, exp := range bench.All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			rows, err := exp.Run(true)
			if err != nil {
				t.Fatalf("%s (%s): %v", exp.ID, exp.Title, err)
			}
			if len(rows) == 0 {
				t.Fatalf("%s produced no rows", exp.ID)
			}
		})
	}
}
