package odp_test

// Mixed-codec simulation scenario: one fabric carries two wire regimes
// side by side — a batching pair whose connections upgrade to
// ansa-packed/1 after the HELLO capability exchange, and a text-codec
// pair speaking human-readable version-1 frames. Tracing every call on
// all four nodes, the span forest must show the same causal shape for
// both regimes: every remote invocation is a singular dispatch tree —
// one root, one rpc.send, exactly one rpc.dispatch — no matter which
// codec carried the bytes. A duplicated or missing dispatch under
// either codec would mean the upgrade path re-delivered or dropped a
// request.

import (
	"context"
	"testing"
	"time"

	"odp"
	"odp/internal/sim"
)

// runMixedCodecSim drives the scenario and returns the rendered span
// forest for determinism comparison.
func runMixedCodecSim(t *testing.T, s *sim.Sim) string {
	t.Helper()
	ctx := context.Background()
	trace := odp.WithTracing(odp.TraceSampleEvery(1))

	// Packed regime: binary codec (the default) plus batching makes the
	// platform advertise the packed capability in its HELLO probes.
	pserver := simPlatform(t, s, "pserver", odp.WithBatching(), trace)
	pclient := simPlatform(t, s, "pclient", odp.WithBatching(), trace)
	// Text regime: same fabric, version-1 textual frames, no batching.
	tserver := simPlatform(t, s, "tserver", odp.WithCodec(odp.TextCodec{}), trace)
	tclient := simPlatform(t, s, "tclient", odp.WithCodec(odp.TextCodec{}), trace)

	packed := &countingServant{}
	pref, err := pserver.Publish("pctr", odp.Object{Servant: packed})
	if err != nil {
		t.Fatal(err)
	}
	textual := &countingServant{}
	tref, err := tserver.Publish("tctr", odp.Object{Servant: textual})
	if err != nil {
		t.Fatal(err)
	}

	qos := odp.QoS{Timeout: 30 * time.Second, Retransmit: 50 * time.Millisecond}
	call := func(p *odp.Platform, ref odp.Ref) {
		t.Helper()
		if err := driveCall(t, s, time.Minute, func() error {
			_, err := p.Bind(ref).WithQoS(qos).Call(ctx, "add")
			return err
		}); err != nil {
			t.Fatalf("call: %v", err)
		}
	}

	// Drive packed-side calls until the codec upgrade is observable. The
	// HELLO probe and its ack are ordinary simulated packets, so under
	// the virtual clock negotiation completes within a bounded number of
	// settled rounds — a cap distinguishes "later" from "never".
	upgraded := func() uint64 {
		n, _ := pclient.Gather()["rpc.client.packed_upgrades"].(uint64)
		return n
	}
	for i := 0; upgraded() == 0; i++ {
		if i >= 32 {
			t.Fatal("packed codec never negotiated in 32 settled rounds")
		}
		call(pclient, pref)
	}
	// One invocation per regime with negotiation complete: these are the
	// trees under test.
	call(pclient, pref)
	call(tclient, tref)
	if tn, _ := tclient.Gather()["rpc.client.packed_upgrades"].(uint64); tn != 0 {
		t.Fatalf("text-codec client reported %d packed upgrades", tn)
	}
	if packed.load() < 2 || textual.load() != 1 {
		t.Fatalf("executions packed=%d text=%d, want >=2/1", packed.load(), textual.load())
	}

	// Freeze sampling so collecting the evidence does not grow it, then
	// merge every node's ring into one forest.
	var spans []odp.Span
	for _, p := range []*odp.Platform{pserver, pclient, tserver, tclient} {
		p.Observer().SetSampleEvery(0)
		spans = append(spans, p.Observer().Snapshot()...)
	}
	assertSingularDispatchTrees(t, spans)
	return odp.FormatSpans(spans)
}

// assertSingularDispatchTrees checks that every traced remote invocation
// — packed and text alike — forms exactly one tree with exactly one
// rpc.dispatch span: the singular-dispatch property of the forest.
func assertSingularDispatchTrees(t *testing.T, spans []odp.Span) {
	t.Helper()
	type shape struct{ roots, sends, dispatches int }
	byTrace := make(map[uint64]*shape)
	dispatchNodes := make(map[uint64]string)
	for _, sp := range spans {
		sh := byTrace[sp.TraceID]
		if sh == nil {
			sh = &shape{}
			byTrace[sp.TraceID] = sh
		}
		switch {
		case sp.ParentID == 0:
			sh.roots++
		}
		switch sp.Kind {
		case "rpc.send":
			sh.sends++
		case "rpc.dispatch":
			sh.dispatches++
			dispatchNodes[sp.TraceID] = sp.Node
		}
	}
	var packedTrees, textTrees int
	for id, sh := range byTrace {
		if sh.sends == 0 {
			continue // a management or local trace, not a remote call
		}
		if sh.roots != 1 || sh.sends != 1 || sh.dispatches != 1 {
			t.Errorf("trace %x is not a singular dispatch tree: %d roots, %d sends, %d dispatches\n%s",
				id, sh.roots, sh.sends, sh.dispatches, odp.FormatSpans(spans))
		}
		switch dispatchNodes[id] {
		case "pserver":
			packedTrees++
		case "tserver":
			textTrees++
		}
	}
	if packedTrees == 0 || textTrees == 0 {
		t.Errorf("forest misses a regime: %d packed trees, %d text trees\n%s",
			packedTrees, textTrees, odp.FormatSpans(spans))
	}
}

// TestSimMixedCodecSingularDispatch pins both the structural property
// and its determinism: the same seed replayed twice renders the
// byte-identical mixed-codec forest, packed upgrade and all.
func TestSimMixedCodecSingularDispatch(t *testing.T) {
	run := func() string {
		s := sim.New(41,
			sim.WithStrictSettle(),
			sim.WithDefaultLink(odp.LinkProfile{Latency: 500 * time.Microsecond}),
		)
		defer s.Close()
		return runMixedCodecSim(t, s)
	}
	f1, f2 := run(), run()
	if f1 != f2 {
		t.Fatalf("mixed-codec span forest diverged for seed 41:\n--- run 1\n%s\n--- run 2\n%s", f1, f2)
	}
	t.Logf("seed=41 mixed-codec span forest (%d bytes):\n%s", len(f1), f1)
}
