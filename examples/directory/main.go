// Directory: replication and migration transparency.
//
// A name directory is published as an actively-replicated group over
// three nodes: clients hold one ordinary-looking reference and keep
// reading and writing while the group's sequencer is killed — the
// fail-over is invisible except as a latency blip. A second, singleton
// directory then migrates between nodes under live load, demonstrating
// that the same reference keeps working across the move.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"odp"
)

// directory is a replicated name table. It snapshots via JSON so hot
// joiners and movers can transfer state.
type directory struct {
	mu sync.Mutex
	m  map[string]string
}

func newDirectory() *directory {
	return &directory{m: make(map[string]string)}
}

func (d *directory) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch op {
	case "bind":
		d.m[args[0].(string)] = args[1].(string)
		return "ok", nil, nil
	case "resolve":
		v, ok := d.m[args[0].(string)]
		if !ok {
			return "unknown", nil, nil
		}
		return "ok", []odp.Value{v}, nil
	case "size":
		return "ok", []odp.Value{int64(len(d.m))}, nil
	default:
		return "", nil, fmt.Errorf("directory: no operation %q", op)
	}
}

func (d *directory) Snapshot() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return json.Marshal(d.m)
}

func (d *directory) Restore(data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.m = make(map[string]string)
	return json.Unmarshal(data, &d.m)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fabric := odp.NewFabric(odp.WithDefaultLink(odp.LAN))
	defer fabric.Close()

	mk := func(name string, opts ...odp.Option) *odp.Platform {
		ep, err := fabric.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := odp.NewPlatform(name, ep, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	nodes := []*odp.Platform{mk("n0"), mk("n1"), mk("n2")}
	client := mk("client", odp.WithRelocator(nodes[0].RelocRef))
	defer client.Close()

	// --- Part 1: replication transparency -------------------------------
	rep, err := odp.PublishReplicated(nodes, odp.ReplicaSpec{
		GroupID:           "names",
		Mode:              odp.ModeActive,
		HeartbeatInterval: 25 * time.Millisecond,
		FailureTimeout:    250 * time.Millisecond,
	}, func() odp.Servant { return newDirectory() })
	if err != nil {
		return err
	}
	defer rep.Stop()
	groupRef := rep.Ref()
	fmt.Printf("replicated directory %s over %d nodes\n", groupRef.ID, len(groupRef.Endpoints))

	write := func(k, v string) error {
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, err := client.Bind(groupRef).
				WithQoS(odp.QoS{Timeout: 400 * time.Millisecond}).
				Call(ctx, "bind", k, v)
			if err == nil {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("bind %s: %w", k, err)
			}
			time.Sleep(20 * time.Millisecond) // ride out the fail-over
		}
	}
	for i := 0; i < 10; i++ {
		if err := write(fmt.Sprintf("svc-%d", i), fmt.Sprintf("addr-%d", i)); err != nil {
			return err
		}
	}
	fmt.Println("10 names bound before failure")

	// Kill the sequencer.
	fmt.Println("killing the sequencer node n0 ...")
	rep.Members[0].Stop()
	_ = nodes[0].Close()
	fabric.Isolate("n0", true)

	// Service continues: a backup promotes itself; the client's retry
	// loop is the only concession, and only during the fail-over window.
	start := time.Now()
	if err := write("svc-after-crash", "addr-x"); err != nil {
		return err
	}
	fmt.Printf("first write after crash took %v (fail-over window)\n", time.Since(start).Round(time.Millisecond))

	out, err := client.Bind(groupRef).WithQoS(odp.QoS{Timeout: 2 * time.Second}).Call(ctx, "resolve", "svc-3")
	if err != nil || !out.Is("ok") {
		return fmt.Errorf("resolve after failover: %v %v", out, err)
	}
	v, _ := out.Str(0)
	fmt.Printf("resolve(svc-3) -> %s; no state was lost\n", v)

	// --- Part 2: migration transparency ---------------------------------
	odp.RegisterFactory(nodes[2], "Directory", func() odp.MovableServant { return newDirectory() })
	return migrationPart(ctx, nodes[1], nodes[2], client)
}

func migrationPart(ctx context.Context, src, dst *odp.Platform, client *odp.Platform) error {
	dirType := odp.Type{
		Name: "Directory",
		Ops: map[string]odp.Operation{
			"bind":    {Args: []odp.Desc{odp.String, odp.String}, Outcomes: map[string][]odp.Desc{"ok": {}}},
			"resolve": {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.String}, "unknown": {}}},
			"size":    {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		},
	}
	ref, err := src.Publish("roaming-dir", odp.Object{
		Servant: newDirectory(),
		Type:    dirType,
		Env:     odp.Env{Movable: true},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsingleton directory %s published at %s\n", ref.ID, src.Capsule.Name())

	// Live client load during the move.
	stop := make(chan struct{})
	errs := make(chan error, 1)
	go func() {
		defer close(errs)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, err := client.Bind(ref).WithQoS(odp.QoS{Timeout: 2 * time.Second}).
				Call(ctx, "bind", fmt.Sprintf("k%d", i), "v")
			if err != nil {
				errs <- err
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	newRef, err := src.Mover.Migrate(ctx, "roaming-dir", dst.Mover.AcceptorRef())
	if err != nil {
		return err
	}
	fmt.Printf("migrated to %v (epoch %d) under live load\n", newRef.Endpoints, newRef.Epoch)
	time.Sleep(50 * time.Millisecond)
	close(stop)
	if err, ok := <-errs; ok && err != nil {
		return fmt.Errorf("client failed during migration: %w", err)
	}

	// The stale reference still works (forwarding + relocation).
	out, err := client.Bind(ref).Call(ctx, "size")
	if err != nil || !out.Is("ok") {
		return fmt.Errorf("size after migration: %v %v", out, err)
	}
	n, _ := out.Int(0)
	fmt.Printf("directory carries %d entries after the move; stale refs still resolve\n", n)
	fmt.Println("directory example OK")
	return nil
}
