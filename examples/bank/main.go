// Bank: concurrency transparency over distributed accounts.
//
// Two nodes each host bank accounts published with an Atomic environment
// constraint — the separation constraints generate the concurrency
// manager, and the platform's two-phase commit makes cross-node transfers
// all-or-nothing. Concurrent transfer workers deliberately collide; the
// deadlock detector breaks cycles, victims retry, and the invariant (the
// total amount of money) holds at the end. Durable state survives a
// simulated node crash via checkpoint recovery of the decision-logged
// store.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"odp"
)

// account is a snapshot-capable ADT so the version store can retain
// pre-images.
type account struct {
	mu      sync.Mutex
	balance int64
}

func (a *account) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "deposit":
		a.balance += args[0].(int64)
		return "ok", []odp.Value{a.balance}, nil
	case "withdraw":
		amt := args[0].(int64)
		if amt > a.balance {
			return "insufficient", []odp.Value{a.balance}, nil
		}
		a.balance -= amt
		return "ok", []odp.Value{a.balance}, nil
	case "balance":
		return "ok", []odp.Value{a.balance}, nil
	default:
		return "", nil, fmt.Errorf("account: no operation %q", op)
	}
}

func (a *account) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(a.balance))
	return buf, nil
}

func (a *account) Restore(data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance = int64(binary.BigEndian.Uint64(data))
	return nil
}

var accountType = odp.Type{
	Name: "Account",
	Ops: map[string]odp.Operation{
		"deposit":  {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		"withdraw": {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}, "insufficient": {odp.Int}}},
		"balance":  {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
	},
}

const (
	numAccounts    = 6
	initialBalance = 1000
	workers        = 4
	transfersEach  = 25
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fabric := odp.NewFabric(odp.WithDefaultLink(odp.LAN))
	defer fabric.Close()

	// Two bank branches and a teller node.
	mkPlatform := func(name string, opts ...odp.Option) (*odp.Platform, error) {
		ep, err := fabric.Endpoint(name)
		if err != nil {
			return nil, err
		}
		return odp.NewPlatform(name, ep, opts...)
	}
	// Deadlocks *within* a branch are broken instantly by the wait-for
	// graph; deadlocks *across* the two branches are invisible to either
	// local graph, so the lock-timeout fallback must be short.
	branchA, err := mkPlatform("branch-a", odp.WithLockWait(200*time.Millisecond))
	if err != nil {
		return err
	}
	defer branchA.Close()
	branchB, err := mkPlatform("branch-b",
		odp.WithRelocator(branchA.RelocRef), odp.WithLockWait(200*time.Millisecond))
	if err != nil {
		return err
	}
	defer branchB.Close()
	teller, err := mkPlatform("teller", odp.WithRelocator(branchA.RelocRef))
	if err != nil {
		return err
	}
	defer teller.Close()

	// Publish accounts alternately on the two branches, each atomic with
	// "balance" declared read-only (shared lock).
	branches := []*odp.Platform{branchA, branchB}
	refs := make([]odp.Ref, numAccounts)
	for i := range refs {
		branch := branches[i%2]
		ref, err := branch.Publish(fmt.Sprintf("acct-%d", i), odp.Object{
			Servant: &account{balance: initialBalance},
			Type:    accountType,
			Env: odp.Env{Atomic: &odp.AtomicSpec{
				Separation: odp.Separation{ReadOnly: map[string]bool{"balance": true}},
				Durable:    true,
			}},
		})
		if err != nil {
			return err
		}
		refs[i] = ref
		fmt.Printf("account %s opened at %s with %d\n", ref.ID, branch.Capsule.Name(), int64(initialBalance))
	}

	// Concurrent transfer workers. Cycles in the lock order are
	// inevitable; the deadlock detector picks victims, which retry.
	var (
		wg           sync.WaitGroup
		statsMu      sync.Mutex
		committed    int
		retried      int
		insufficient int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfersEach; i++ {
				from := rng.Intn(numAccounts)
				to := (from + 1 + rng.Intn(numAccounts-1)) % numAccounts
				amount := int64(1 + rng.Intn(50))
				for attempt := 0; attempt < 10; attempt++ {
					if attempt > 0 {
						// Randomised backoff de-synchronises colliders.
						time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
					}
					ok, retry, err := transfer(ctx, teller, refs[from], refs[to], amount)
					statsMu.Lock()
					switch {
					case err != nil:
						// unexpected; give up on this transfer
						retry = false
					case ok:
						committed++
					case retry:
						retried++
					default:
						insufficient++
					}
					statsMu.Unlock()
					if !retry {
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("transfers committed=%d deadlock-retries=%d insufficient=%d\n",
		committed, retried, insufficient)

	// The invariant: money is conserved.
	var total int64
	for _, ref := range refs {
		out, err := teller.Bind(ref).Call(ctx, "balance")
		if err != nil {
			return err
		}
		n, _ := out.Int(0)
		total += n
	}
	fmt.Printf("total money: %d (expected %d)\n", total, int64(numAccounts*initialBalance))
	if total != numAccounts*initialBalance {
		return fmt.Errorf("money not conserved")
	}
	fmt.Println("bank example OK")
	return nil
}

// transfer moves amount atomically. Returns (committed, shouldRetry, err).
func transfer(ctx context.Context, teller *odp.Platform, from, to odp.Ref, amount int64) (bool, bool, error) {
	tx := teller.Coordinator.Begin()
	outcome, _, err := tx.Invoke(ctx, from, "withdraw", []odp.Value{amount})
	if err != nil {
		_ = tx.Abort(ctx)
		return false, true, nil // deadlock victim or lock timeout: retry
	}
	if outcome != "ok" {
		_ = tx.Abort(ctx)
		return false, false, nil // insufficient funds: give up cleanly
	}
	if _, _, err := tx.Invoke(ctx, to, "deposit", []odp.Value{amount}); err != nil {
		_ = tx.Abort(ctx)
		return false, true, nil
	}
	if err := tx.Commit(ctx); err != nil {
		return false, true, nil
	}
	return true, false, nil
}
