// Federation: interworking across organisational and technology
// boundaries.
//
// Two organisations run genuinely separate networks: org-a speaks the
// binary network representation, org-b the textual one, and no direct
// route exists between them. A gateway stands on the boundary,
// translating representations, policing crossings with the
// administrative policy, and creating proxy objects for references that
// cross. Traders in each organisation federate through the gateway, so a
// client in org-a imports a service offered in org-b by structural type
// alone — the returned reference is context-qualified so its origin stays
// resolvable.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"odp"
)

// weather is the service offered in org-b.
type weather struct {
	mu       sync.Mutex
	readings map[string]int64
}

func (w *weather) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	switch op {
	case "report":
		city := args[0].(string)
		t, ok := w.readings[city]
		if !ok {
			return "unknown-city", nil, nil
		}
		return "ok", []odp.Value{t}, nil
	case "record":
		w.readings[args[0].(string)] = args[1].(int64)
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("weather: no operation %q", op)
	}
}

var weatherType = odp.Type{
	Name: "WeatherService",
	Ops: map[string]odp.Operation{
		"report": {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}, "unknown-city": {}}},
		"record": {Args: []odp.Desc{odp.String, odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {}}},
	},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// Two separate fabrics: there is no route between the organisations
	// except through the gateway.
	fabA := odp.NewFabric(odp.WithDefaultLink(odp.LAN))
	fabB := odp.NewFabric(odp.WithDefaultLink(odp.LAN))
	defer fabA.Close()
	defer fabB.Close()

	mk := func(f *odp.Fabric, name string, opts ...odp.Option) *odp.Platform {
		ep, err := f.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := odp.NewPlatform(name, ep, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	// org-a: binary codec (default). org-b: text codec — a real
	// technology boundary.
	clientA := mk(fabA, "client-a", odp.WithTrader("org-a"))
	defer clientA.Close()
	serverB := mk(fabB, "server-b", odp.WithCodec(odp.TextCodec{}), odp.WithTrader("org-b"))
	defer serverB.Close()
	gwA := mk(fabA, "gw-a")
	defer gwA.Close()
	gwB := mk(fabB, "gw-b", odp.WithCodec(odp.TextCodec{}))
	defer gwB.Close()

	// The administrative policy at the boundary: org-a may read
	// (report) but not write (record) org-b's service.
	policy := func(from odp.Side, target odp.Ref, op string) error {
		if from == odp.SideA && op == "record" {
			return errors.New("org-b does not accept foreign writes")
		}
		return nil
	}
	gateway := odp.NewGateway("gw-ab", gwA, gwB, policy)
	fmt.Println("gateway gw-ab standing between org-a (binary) and org-b (text)")

	// org-b publishes and advertises the weather service locally.
	refB, err := serverB.Publish("weather", odp.Object{
		Servant: &weather{readings: map[string]int64{"cambridge": 11, "berlin": 7}},
		Type:    weatherType,
	})
	if err != nil {
		return err
	}
	if _, err := serverB.Trader.Advertise(weatherType, refB, map[string]odp.Value{
		"coverage": "europe",
	}); err != nil {
		return err
	}

	// Federate the traders through the gateway: org-a's trader links to a
	// proxy of org-b's trader.
	traderBProxy, err := gateway.Export(serverB.Trader.Ref(), odp.SideB)
	if err != nil {
		return err
	}
	clientA.Trader.LinkTo("org-b", traderBProxy)
	fmt.Println("org-a's trader federated to org-b's through the gateway")

	// A client in org-a imports by structural requirement, one federation
	// hop away.
	requirement := odp.Type{
		Name: "CanReport",
		Ops: map[string]odp.Operation{
			"report": {Args: []odp.Desc{odp.String}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}, "unknown-city": {}}},
		},
	}
	tc := odp.NewTraderClient(clientA, clientA.Trader.Ref())
	offer, err := tc.ImportOne(ctx, odp.ImportSpec{Requirement: requirement, MaxHops: 1})
	if err != nil {
		return err
	}
	fmt.Printf("imported %s; reference context trail: %v\n", offer.ID, offer.Ref.Context)

	// The imported reference is a gateway proxy: invoking it crosses the
	// boundary, translating binary -> text and back.
	out, err := clientA.Bind(offer.Ref).Call(ctx, "report", "berlin")
	if err != nil || !out.Is("ok") {
		return fmt.Errorf("report: %v %v", out, err)
	}
	temp, _ := out.Int(0)
	fmt.Printf("report(berlin) across the boundary -> %d°C\n", temp)

	// Administrative interception: the write is refused at the boundary,
	// without reaching org-b.
	_, err = clientA.Bind(offer.Ref).Call(ctx, "record", "cambridge", int64(30))
	if err == nil {
		return errors.New("policy failed to stop the crossing")
	}
	fmt.Printf("record(...) refused at the boundary: %v\n", err)

	st := gateway.Stats()
	fmt.Printf("gateway accounting: A->B crossings=%d refused=%d proxies=%d\n",
		st.AtoB, st.Refused, st.Proxies)
	if st.Refused != 1 {
		return errors.New("expected exactly one refusal")
	}
	fmt.Println("federation example OK")
	return nil
}
