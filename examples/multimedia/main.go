// Multimedia: stream interfaces, explicit binding and inter-stream
// synchronisation.
//
// A producer node pushes an audio flow and a video flow to a consumer
// over links with very different jitter. Bound without synchronisation,
// the flows skew badly; bound into a SyncGroup, the skew stays within the
// declared tolerance. The binding's control interface is exercised
// remotely (stop/start/stats), exactly the "interface containing control
// and management functions" §7.2 promises from the explicit binding
// process.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"odp"
)

const (
	frames      = 60
	frameGapMs  = 10
	maxSkewMs   = 30
	videoJitter = 60 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	fabric := odp.NewFabric(odp.WithSeed(7))
	defer fabric.Close()

	mk := func(name string) *odp.Platform {
		ep, err := fabric.Endpoint(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := odp.NewPlatform(name, ep)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	audioSource := mk("audio-source")
	defer audioSource.Close()
	videoSource := mk("video-source")
	defer videoSource.Close()
	consumer := mk("consumer")
	defer consumer.Close()

	// The video path is much more jittery than the audio path.
	fabric.SetLink("audio-source", "consumer", odp.LinkProfile{Latency: time.Millisecond})
	fabric.SetLink("video-source", "consumer", odp.LinkProfile{
		Latency: time.Millisecond, Jitter: videoJitter,
	})

	// Pass 1: no synchronisation — measure raw skew at delivery time.
	rawSkew, err := runFlows(ctx, audioSource, videoSource, consumer, "unsynchronised", nil)
	if err != nil {
		return err
	}
	// Pass 2: a sync group with a 30 ms tolerance.
	syncSkew, err := runFlows(ctx, audioSource, videoSource, consumer, "synchronised",
		func(out func(string, odp.Frame)) *odp.SyncGroup {
			return odp.NewSyncGroup(maxSkewMs, out)
		})
	if err != nil {
		return err
	}
	fmt.Printf("\ndelivery skew unsynchronised: %dms\n", rawSkew)
	fmt.Printf("delivery skew with sync group (tolerance %dms): %dms\n", maxSkewMs, syncSkew)
	if syncSkew > maxSkewMs+frameGapMs {
		return fmt.Errorf("sync group exceeded its bound")
	}
	fmt.Println("multimedia example OK")
	return nil
}

// runFlows binds audio+video and returns the maximum inter-flow skew
// among delivered frames. mkSync, when non-nil, inserts a sync group.
func runFlows(ctx context.Context, audioSource, videoSource, consumer *odp.Platform, label string,
	mkSync func(out func(string, odp.Frame)) *odp.SyncGroup) (int64, error) {

	// Track the latest delivered timestamp per flow and the worst skew.
	var (
		mu        sync.Mutex
		latest    = map[string]int64{}
		worstSkew int64
		delivered int
	)
	record := func(flow string, f odp.Frame) {
		mu.Lock()
		defer mu.Unlock()
		latest[flow] = f.TimestampMs
		if len(latest) == 2 {
			a, v := latest["audio"], latest["video"]
			skew := a - v
			if skew < 0 {
				skew = -skew
			}
			if skew > worstSkew {
				worstSkew = skew
			}
		}
		delivered++
	}

	var sink func(spec odp.StreamSpec) (odp.Sink, error)
	var group *odp.SyncGroup
	if mkSync != nil {
		group = mkSync(record)
		sink = func(spec odp.StreamSpec) (odp.Sink, error) {
			return group.AddFlow(spec.Media), nil
		}
	} else {
		sink = func(spec odp.StreamSpec) (odp.Sink, error) {
			media := spec.Media
			return odp.SinkFunc(func(f odp.Frame) { record(media, f) }), nil
		}
	}
	rx, err := odp.NewStreamReceiver(consumer, sink)
	if err != nil {
		return 0, err
	}

	audio, err := odp.BindStream(audioSource, rx.Ref(), odp.StreamSpec{Media: "audio", RateHz: 100, Label: label})
	if err != nil {
		return 0, err
	}
	video, err := odp.BindStream(videoSource, rx.Ref(), odp.StreamSpec{Media: "video", RateHz: 100, Label: label})
	if err != nil {
		return 0, err
	}

	// Drive the control interface remotely before streaming.
	out, err := consumer.Bind(video.ControlRef()).Call(ctx, "stats")
	if err != nil || !out.Is("ok") {
		return 0, fmt.Errorf("control stats: %v %v", out, err)
	}

	for i := 0; i < frames; i++ {
		ts := int64(i * frameGapMs)
		if err := audio.Send(ts, []byte("a")); err != nil {
			return 0, err
		}
		if err := video.Send(ts, []byte("v")); err != nil {
			return 0, err
		}
		time.Sleep(frameGapMs * time.Millisecond / 2)
	}
	// Let the tail arrive, then flush any held frames.
	time.Sleep(100 * time.Millisecond)
	if group != nil {
		group.Flush()
	}
	_ = audio.Close(ctx)
	_ = video.Close(ctx)

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("%s: delivered %d frames, worst inter-flow skew %dms\n", label, delivered, worstSkew)
	if group != nil {
		// The group's own metric counts skew at release time (before the
		// final flush), which is the figure the bound applies to.
		return group.MaxObservedSkewMs(), nil
	}
	return worstSkew, nil
}
