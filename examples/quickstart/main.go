// Quickstart: two ODP nodes on a simulated network. A server publishes a
// typed counter interface and advertises it with the trading service; a
// client imports a matching offer by *signature* (never by name) and
// invokes it — the same code would run unchanged if the counter were
// remote, replicated or migrating.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"odp"
)

// counter is an ordinary ADT implementation: a set of operations
// encapsulating state.
type counter struct {
	mu sync.Mutex
	n  int64
}

func (c *counter) Dispatch(_ context.Context, op string, args []odp.Value) (string, []odp.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "inc":
		c.n += args[0].(int64)
		return "ok", []odp.Value{c.n}, nil
	case "get":
		return "ok", []odp.Value{c.n}, nil
	default:
		return "", nil, fmt.Errorf("counter: no operation %q", op)
	}
}

// counterType is the interface signature: operations, argument types and
// the named outcomes each operation may produce.
var counterType = odp.Type{
	Name: "Counter",
	Ops: map[string]odp.Operation{
		"inc": {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		"get": {Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
	},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// A simulated network with LAN-like latency.
	fabric := odp.NewFabric(odp.WithDefaultLink(odp.LAN))
	defer fabric.Close()

	serverEP, err := fabric.Endpoint("server")
	if err != nil {
		return err
	}
	clientEP, err := fabric.Endpoint("client")
	if err != nil {
		return err
	}

	// The server node hosts a trading service; the client node shares the
	// server's relocation service.
	server, err := odp.NewPlatform("server", serverEP, odp.WithTrader("demo"))
	if err != nil {
		return err
	}
	defer server.Close()
	client, err := odp.NewPlatform("client", clientEP, odp.WithRelocator(server.RelocRef))
	if err != nil {
		return err
	}
	defer client.Close()

	// Publish the counter. No environment constraints: plain access
	// transparency only.
	ref, err := server.Publish("counter-1", odp.Object{
		Servant: &counter{},
		Type:    counterType,
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %s as %s\n", counterType.Name, ref.ID)

	// Advertise the offer with a property.
	offerID, err := server.Trader.Advertise(counterType, ref, map[string]odp.Value{
		"zone": "east",
	})
	if err != nil {
		return err
	}
	fmt.Printf("advertised offer %s\n", offerID)

	// The client imports by structural requirement: it needs something
	// with an inc(int)->ok(int); the offer's extra "get" operation is
	// irrelevant to matching.
	requirement := odp.Type{
		Name: "Incrementable",
		Ops: map[string]odp.Operation{
			"inc": {Args: []odp.Desc{odp.Int}, Outcomes: map[string][]odp.Desc{"ok": {odp.Int}}},
		},
	}
	tc := odp.NewTraderClient(client, server.Trader.Ref())
	offer, err := tc.ImportOne(ctx, odp.ImportSpec{
		Requirement: requirement,
		Constraints: []odp.Constraint{{Key: "zone", Op: odp.OpEq, Value: "east"}},
	})
	if err != nil {
		return err
	}
	fmt.Printf("imported offer %s -> %s\n", offer.ID, offer.Ref.ID)

	// Invoke through a proxy. Outcomes are named; each carries its own
	// result package.
	proxy := client.Bind(offer.Ref)
	for i := 1; i <= 3; i++ {
		out, err := proxy.Call(ctx, "inc", int64(i))
		if err != nil {
			return err
		}
		n, err := out.Int(0)
		if err != nil {
			return err
		}
		fmt.Printf("inc(%d) -> %s(%d)\n", i, out.Name, n)
	}
	out, err := proxy.Call(ctx, "get")
	if err != nil {
		return err
	}
	n, _ := out.Int(0)
	fmt.Printf("final count: %d\n", n)
	if n != 6 {
		return fmt.Errorf("expected 6, got %d", n)
	}
	fmt.Println("quickstart OK")
	return nil
}
