package odp_test

// Helpers for driving whole-platform scenarios under the deterministic
// simulation harness (internal/sim): platforms share the simulation's
// fake clock, and blocking operations run on scenario goroutines while
// the test goroutine advances virtual time.

import (
	"runtime"
	"testing"
	"time"

	"odp"
	"odp/internal/sim"
)

// simPlatform creates a platform on the simulation's fabric, running on
// its clock.
func simPlatform(t *testing.T, s *sim.Sim, name string, opts ...odp.Option) *odp.Platform {
	t.Helper()
	ep, err := s.Fabric.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	opts = append(opts, odp.WithClock(s.Clock))
	p, err := odp.NewPlatform(name, ep, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// Close parks on virtual timers too (janitor stop, in-flight call
	// timeouts), so teardown must keep advancing the clock.
	t.Cleanup(func() { s.Drain(func() { _ = p.Close() }) })
	return p
}

// driveCall runs fn on its own goroutine and advances virtual time until
// it returns, then reports its error. The driver holds the clock still
// until fn has either finished or registered with it (sent a packet,
// armed a timer), so already-scheduled noise — janitor ticks — cannot
// reorder ahead of fn's own first event.
func driveCall(t testing.TB, s *sim.Sim, budget time.Duration, fn func() error) error {
	t.Helper()
	g0 := s.Clock.Gen()
	errc := make(chan error, 1)
	go func() { errc <- fn() }()
	spinDeadline := time.Now().Add(10 * time.Second)
	for s.Clock.Gen() == g0 && len(errc) == 0 {
		if time.Now().After(spinDeadline) {
			t.Fatalf("sim: operation neither touched the clock nor returned")
		}
		runtime.Gosched()
	}
	var err error
	s.Run(t, budget, func() bool {
		select {
		case err = <-errc:
			return true
		default:
			return false
		}
	})
	return err
}
