package odp_test

import (
	"context"
	"testing"
	"time"

	"odp"
	"odp/internal/sim"
)

// churnPlan builds a seeded schedule of partition/heal cycles between
// client and server from the simulation's own randomness: the fault
// instants are part of the seed's identity.
//
// Every instant carries an offGrid skew. Traffic events in this scenario
// all land on a 500µs grid (link latency 500µs, retransmit period 5ms),
// and a fault sharing an exact instant with a send or delivery would
// leave their order to goroutine scheduling — the one tie the harness
// cannot break for us (see the determinism note on sim.FaultPlan).
func churnPlan(s *sim.Sim, cycles int) *sim.FaultPlan {
	const offGrid = 250 * time.Microsecond
	plan := sim.NewFaultPlan()
	r := s.Rand()
	var at time.Duration
	for i := 0; i < cycles; i++ {
		// Short clear gaps, partition windows a few retransmit periods
		// wide: every cycle cuts live traffic.
		at += time.Duration(r.Intn(3)+1) * time.Millisecond
		plan.At(at + offGrid).Partition("client", "server")
		at += time.Duration(r.Intn(10)+3) * time.Millisecond
		plan.At(at + offGrid).Heal("client", "server")
	}
	return plan
}

// runChurn drives a single sequential client through repeated partition
// churn: every call must eventually succeed (the QoS timeout outlasts
// any partition window) and execute exactly once (at-most-once holds
// across every retransmission a cut provokes). Returns the run's
// event-trace hash.
func runChurn(t testing.TB, s *sim.Sim, calls int) string {
	t.Helper()
	ctx := context.Background()
	server := simPlatform2(t, s, "server")
	client := simPlatform2(t, s, "client")
	counter := &countingServant{}
	ref, err := server.Publish("ctr", odp.Object{Servant: counter})
	if err != nil {
		t.Fatal(err)
	}
	s.Install(churnPlan(s, 6))

	for i := 0; i < calls; i++ {
		if err := driveCall(t, s, time.Minute, func() error {
			_, err := client.Bind(ref).
				WithQoS(odp.QoS{Timeout: 30 * time.Second, Retransmit: 5 * time.Millisecond}).
				Call(ctx, "add")
			return err
		}); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := counter.load(); got != int64(calls) {
		t.Fatalf("executions = %d, want %d (at-most-once across churn)", got, calls)
	}
	stats := s.Fabric.Stats()
	if stats.Cut == 0 {
		t.Fatal("churn plan cut nothing — the scenario exercised no partition")
	}
	s.Mark("churn done calls=%d cut=%d delivered=%d", calls, stats.Cut, stats.Delivered)
	return s.Trace.Hash()
}

// simPlatform2 is simPlatform for testing.TB callers (sweep scenarios
// get a *testing.T, the churn hash test reuses the same body).
func simPlatform2(t testing.TB, s *sim.Sim, name string, opts ...odp.Option) *odp.Platform {
	t.Helper()
	ep, err := s.Fabric.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	opts = append(opts, odp.WithClock(s.Clock))
	p, err := odp.NewPlatform(name, ep, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Drain(func() { _ = p.Close() }) })
	return p
}

// TestSimPartitionChurn is the determinism pin: the same seed replayed
// twice in one process must produce byte-identical event-trace hashes,
// and because the hash is seed-anchored (fixed epoch, canonical event
// order), `go test -count=2` reproduces the same hash again.
func TestSimPartitionChurn(t *testing.T) {
	run := func() string {
		s := sim.New(13,
			sim.WithStrictSettle(),
			sim.WithDefaultLink(odp.LinkProfile{Latency: 500 * time.Microsecond}),
		)
		defer s.Close()
		return runChurn(t, s, 20)
	}
	h1, h2 := run(), run()
	if h1 != h2 {
		t.Fatalf("event trace diverged for seed 13:\n run1 %s\n run2 %s", h1, h2)
	}
	t.Logf("seed=13 trace hash %s", h1)
}

// TestSimSweepPartitionChurn explores the churn scenario across many
// seeds (ODP_SIM_SEEDS widens it in CI); the first failing seed is the
// replay command.
func TestSimSweepPartitionChurn(t *testing.T) {
	sim.Sweep(t, sim.SeedsFromEnv(4), func(t *testing.T, s *sim.Sim) {
		runChurn(t, s, 10)
	}, sim.WithDefaultLink(odp.LinkProfile{Latency: 500 * time.Microsecond}))
}
