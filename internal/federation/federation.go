// Package federation implements federation transparency (§5.6, §4.2).
//
// "For a technology boundary the interceptor must stand on the boundary
// itself and translate between the two domains. The translation may be
// simple conversion, or it may be that the interceptor has to set up
// proxy objects in each domain that stand as representatives of objects
// on the other side of the boundary. For an administrative boundary the
// interception may occur within the interacting computers themselves,
// checking permissions and exchanging administrative data."
//
// A Gateway owns one capsule in each domain. The domains are genuinely
// separate: different transport fabrics (no direct route exists) and,
// typically, different codecs — so every crossing really is re-marshalled
// between technologies. Interface references that cross the boundary are
// replaced by proxies exported on the gateway's capsule in the receiving
// domain, context-qualified with the gateway's name so context-relative
// naming (§6) stays resolvable. An admission policy is evaluated on every
// crossing, and crossings are accounted.
package federation

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"odp/internal/capsule"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// Side names one side of the boundary.
type Side int

// Sides of the gateway.
const (
	// SideA is the gateway's first domain.
	SideA Side = iota + 1
	// SideB is the gateway's second domain.
	SideB
)

// String implements fmt.Stringer.
func (s Side) String() string {
	if s == SideA {
		return "A"
	}
	return "B"
}

func (s Side) other() Side {
	if s == SideA {
		return SideB
	}
	return SideA
}

// Policy authorises one crossing: an invocation of op arriving on side
// from, destined for target on the other side. Returning an error refuses
// the crossing (the caller sees rpc.ErrDenied).
type Policy func(from Side, target wire.Ref, op string) error

// AllowAll is the open-boundary policy.
func AllowAll(Side, wire.Ref, string) error { return nil }

// Stats counts boundary crossings.
type Stats struct {
	AtoB    uint64
	BtoA    uint64
	Refused uint64
	Proxies uint64
}

// Gateway is a federation interceptor between two domains.
type Gateway struct {
	name   string
	caps   map[Side]*capsule.Capsule
	policy Policy

	mu      sync.Mutex
	nextID  uint64
	targets map[string]proxyTarget // proxy objID -> target on other side
	existed map[string]wire.Ref    // side+targetID -> proxy ref (dedupe)

	statsMu sync.Mutex
	stats   Stats
}

// proxyTarget records where a proxy forwards to.
type proxyTarget struct {
	ref  wire.Ref // real reference, valid on `side`
	side Side     // the side the TARGET lives on
}

// New creates a gateway named name with a capsule in each domain. The
// capsules' codecs may differ — translation between them is exactly the
// gateway's job.
func New(name string, a, b *capsule.Capsule, policy Policy) *Gateway {
	if policy == nil {
		policy = AllowAll
	}
	return &Gateway{
		name:    name,
		caps:    map[Side]*capsule.Capsule{SideA: a, SideB: b},
		policy:  policy,
		targets: make(map[string]proxyTarget),
		existed: make(map[string]wire.Ref),
	}
}

// Name returns the gateway's context name.
func (g *Gateway) Name() string { return g.name }

// Stats returns a snapshot of crossing counters.
func (g *Gateway) Stats() Stats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.stats
}

// Export makes target — a reference valid on targetSide — invokable from
// the other side, returning the proxy reference to hand out there. The
// proxy is context-qualified with the gateway's name.
func (g *Gateway) Export(target wire.Ref, targetSide Side) (wire.Ref, error) {
	return g.proxyFor(target, targetSide)
}

// proxyFor creates (or reuses) the proxy on the side opposite targetSide.
func (g *Gateway) proxyFor(target wire.Ref, targetSide Side) (wire.Ref, error) {
	proxySide := targetSide.other()
	key := proxySide.String() + "|" + target.ID
	g.mu.Lock()
	if ref, ok := g.existed[key]; ok {
		g.mu.Unlock()
		return ref, nil
	}
	g.nextID++
	objID := g.name + "/proxy-" + strconv.FormatUint(g.nextID, 10)
	g.targets[objID] = proxyTarget{ref: target, side: targetSide}
	g.mu.Unlock()

	hostCap := g.caps[proxySide]
	ref, err := hostCap.Export(
		capsule.ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			return g.cross(ctx, objID, proxySide, op, args)
		}),
		capsule.WithID(objID))
	if err != nil {
		return wire.Ref{}, err
	}
	ref.TypeName = target.TypeName
	ref = ref.WithContext(g.name)
	g.mu.Lock()
	g.existed[key] = ref
	g.mu.Unlock()
	g.count(func(s *Stats) { s.Proxies++ })
	return ref, nil
}

// cross forwards one invocation across the boundary.
func (g *Gateway) cross(ctx context.Context, proxyID string, fromSide Side, op string, args []wire.Value) (string, []wire.Value, error) {
	g.mu.Lock()
	target, ok := g.targets[proxyID]
	g.mu.Unlock()
	if !ok {
		return "", nil, rpc.ErrNoObject
	}
	if err := g.policy(fromSide, target.ref, op); err != nil {
		g.count(func(s *Stats) { s.Refused++ })
		return "", nil, fmt.Errorf("%w: federation policy: %v", rpc.ErrDenied, err)
	}
	if fromSide == SideA {
		g.count(func(s *Stats) { s.AtoB++ })
	} else {
		g.count(func(s *Stats) { s.BtoA++ })
	}
	// Arguments cross from fromSide to the target's side: proxy any
	// references they carry.
	mappedArgs, err := g.mapValues(args, fromSide)
	if err != nil {
		return "", nil, err
	}
	outcome, results, err := g.caps[target.side].Invoke(ctx, target.ref, op, mappedArgs)
	if err != nil {
		return "", nil, err
	}
	// Results cross back.
	mappedResults, err := g.mapValues(results, target.side)
	if err != nil {
		return "", nil, err
	}
	return outcome, mappedResults, nil
}

// mapValues rewrites every interface reference in vals as it crosses from
// side `from` to the other side: references to objects on `from` get a
// proxy on the other side; references that are themselves proxies for
// objects on the other side unwrap to the originals.
func (g *Gateway) mapValues(vals []wire.Value, from Side) ([]wire.Value, error) {
	if len(vals) == 0 {
		return vals, nil
	}
	out := make([]wire.Value, len(vals))
	for i, v := range vals {
		mv, err := g.mapValue(v, from)
		if err != nil {
			return nil, err
		}
		out[i] = mv
	}
	return out, nil
}

func (g *Gateway) mapValue(v wire.Value, from Side) (wire.Value, error) {
	switch t := v.(type) {
	case wire.Ref:
		// Unwrap our own proxies instead of double-proxying.
		g.mu.Lock()
		target, isProxy := g.targets[t.ID]
		g.mu.Unlock()
		if isProxy && target.side == from.other() {
			return target.ref, nil
		}
		return g.proxyFor(t, from)
	case wire.List:
		out := make(wire.List, len(t))
		for i, e := range t {
			me, err := g.mapValue(e, from)
			if err != nil {
				return nil, err
			}
			out[i] = me
		}
		return out, nil
	case wire.Record:
		out := make(wire.Record, len(t))
		for k, e := range t {
			me, err := g.mapValue(e, from)
			if err != nil {
				return nil, err
			}
			out[k] = me
		}
		return out, nil
	default:
		return v, nil
	}
}

// Errors returned by gateways.
var (
	// ErrNoProxy reports an unknown proxy id.
	ErrNoProxy = errors.New("federation: no such proxy")
)

func (g *Gateway) count(update func(*Stats)) {
	g.statsMu.Lock()
	update(&g.stats)
	g.statsMu.Unlock()
}
