// Three-way federation across three wire technologies: a packed client
// domain, a plain-binary middle domain and a textual far domain. Every
// hop re-marshals under the receiving domain's codec, so one invocation
// exercises packed → binary → text on the way out and text → binary →
// packed on the way back — the transcoding matrix a real federated
// deployment presents.
package federation

import (
	"context"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/transport"
	"odp/internal/wire"
)

// threeDomains bridges fabrics A (binary codec, coalesced endpoints
// advertising the packed capability — intra-domain calls upgrade to
// ansa-packed/1 after the HELLO exchange), B (plain binary) and C
// (text) with gateways A↔B and B↔C.
type threeDomains struct {
	clientA *capsule.Capsule
	serverC *capsule.Capsule
	gwAB    *Gateway
	gwBC    *Gateway
}

func newThreeDomains(t *testing.T) *threeDomains {
	t.Helper()
	fabA, fabB, fabC := netsim.NewFabric(), netsim.NewFabric(), netsim.NewFabric()
	t.Cleanup(func() { _ = fabA.Close(); _ = fabB.Close(); _ = fabC.Close() })
	mkPacked := func(f *netsim.Fabric, name string) *capsule.Capsule {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		co := transport.NewCoalescer(ep, transport.WithCapabilities(transport.CapPacked))
		c := capsule.New(name, co, wire.BinaryCodec{})
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	mkPlain := func(f *netsim.Fabric, name string, codec wire.Codec) *capsule.Capsule {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	d := &threeDomains{
		clientA: mkPacked(fabA, "client-a"),
		serverC: mkPlain(fabC, "server-c", wire.TextCodec{}),
	}
	gwABa := mkPacked(fabA, "gw-ab-a")
	gwABb := mkPlain(fabB, "gw-ab-b", wire.BinaryCodec{})
	gwBCb := mkPlain(fabB, "gw-bc-b", wire.BinaryCodec{})
	gwBCc := mkPlain(fabC, "gw-bc-c", wire.TextCodec{})
	d.gwAB = New("gw-ab", gwABa, gwABb, nil)
	d.gwBC = New("gw-bc", gwBCb, gwBCc, nil)
	return d
}

// export chains target (living in domain C) through both gateways and
// returns the proxy reference usable from domain A.
func (d *threeDomains) export(t *testing.T, target wire.Ref) wire.Ref {
	t.Helper()
	inB, err := d.gwBC.Export(target, SideB)
	if err != nil {
		t.Fatal(err)
	}
	inA, err := d.gwAB.Export(inB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	return inA
}

// TestThreeWayTranslation drives values from the packed domain through
// the binary domain into the text domain and back, checking that every
// kind survives the two transcodes and that the first hop genuinely ran
// packed.
func TestThreeWayTranslation(t *testing.T) {
	d := newThreeDomains(t)
	store := &dict{m: map[string]string{"greeting": "hello from C"}}
	refC, err := d.serverC.Export(store)
	if err != nil {
		t.Fatal(err)
	}
	proxy := d.export(t, refC)
	ctx := context.Background()

	// Drive calls until the client's connection to its local gateway
	// capsule has upgraded to packed, then keep going — correctness
	// must hold before, during and after negotiation.
	deadline := time.Now().Add(10 * time.Second)
	for d.clientA.Client().Stats().PackedUpgrades == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packed upgrade never negotiated in domain A")
		}
		outcome, res, err := d.clientA.Invoke(ctx, proxy, "get", []wire.Value{"greeting"})
		if err != nil || outcome != "ok" || res[0] != "hello from C" {
			t.Fatalf("three-way get: %q %v %v", outcome, res, err)
		}
	}
	outcome, _, err := d.clientA.Invoke(ctx, proxy, "put", []wire.Value{"k", "written from A"})
	if err != nil || outcome != "ok" {
		t.Fatalf("three-way put: %q %v", outcome, err)
	}
	outcome, res, err := d.clientA.Invoke(ctx, proxy, "get", []wire.Value{"k"})
	if err != nil || outcome != "ok" || res[0] != "written from A" {
		t.Fatalf("read-back: %q %v %v", outcome, res, err)
	}
	if ab, bc := d.gwAB.Stats(), d.gwBC.Stats(); ab.AtoB == 0 || bc.BtoA != 0 && bc.AtoB == 0 {
		t.Fatalf("crossings unaccounted: AB %+v BC %+v", ab, bc)
	}
}

// TestThreeWayRefCrossing passes a reference from the packed domain all
// the way into the text domain; the far side must receive a proxy it
// can invoke, with the reply traversing text → binary → packed.
func TestThreeWayRefCrossing(t *testing.T) {
	d := newThreeDomains(t)
	far := &echoRef{}
	refC, err := d.serverC.Export(far)
	if err != nil {
		t.Fatal(err)
	}
	proxy := d.export(t, refC)
	ctx := context.Background()

	home := &echoRef{}
	refA, err := d.clientA.Export(home)
	if err != nil {
		t.Fatal(err)
	}
	outcome, res, err := d.clientA.Invoke(ctx, proxy, "take", []wire.Value{refA})
	if err != nil || outcome != "ok" {
		t.Fatalf("take across two boundaries: %q %v", outcome, err)
	}
	// take echoes its argument, so the returned ref — after crossing
	// back twice — must again denote the home object: invoking it from
	// A is a poke of home (unwrapped or re-proxied, either way usable).
	back, ok := res[0].(wire.Ref)
	if !ok {
		t.Fatalf("result is %T, want wire.Ref", res[0])
	}
	if _, _, err := d.clientA.Invoke(ctx, back, "poke", nil); err != nil {
		t.Fatalf("poke via returned ref: %v", err)
	}
	// The ref the far domain recorded must be a usable proxy too: C
	// pokes the object that lives in A through both gateways.
	far.mu.Lock()
	seen := append([]wire.Ref(nil), far.seen...)
	far.mu.Unlock()
	if len(seen) != 1 {
		t.Fatalf("far side saw %d refs", len(seen))
	}
	if _, _, err := d.serverC.Invoke(ctx, seen[0], "poke", nil); err != nil {
		t.Fatalf("far-side poke back into A: %v", err)
	}
	home.mu.Lock()
	poked := home.poked
	home.mu.Unlock()
	if poked != 2 {
		t.Fatalf("home object poked %d times, want 2 (once via the echoed ref, once from C)", poked)
	}
}
