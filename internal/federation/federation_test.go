package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// twoDomains builds two genuinely separate fabrics — domain A speaks the
// binary codec, domain B the textual codec — bridged by one gateway.
type twoDomains struct {
	t        *testing.T
	fabA     *netsim.Fabric
	fabB     *netsim.Fabric
	gateway  *Gateway
	clientA  *capsule.Capsule
	serverB  *capsule.Capsule
	policyMu sync.Mutex
	policy   Policy
}

func newTwoDomains(t *testing.T) *twoDomains {
	t.Helper()
	d := &twoDomains{
		t:    t,
		fabA: netsim.NewFabric(),
		fabB: netsim.NewFabric(),
	}
	t.Cleanup(func() { _ = d.fabA.Close(); _ = d.fabB.Close() })
	mk := func(f *netsim.Fabric, name string, codec wire.Codec) *capsule.Capsule {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	d.clientA = mk(d.fabA, "client-a", wire.BinaryCodec{})
	d.serverB = mk(d.fabB, "server-b", wire.TextCodec{})
	gwA := mk(d.fabA, "gw-a", wire.BinaryCodec{})
	gwB := mk(d.fabB, "gw-b", wire.TextCodec{})
	d.gateway = New("gw", gwA, gwB, func(from Side, target wire.Ref, op string) error {
		d.policyMu.Lock()
		defer d.policyMu.Unlock()
		if d.policy == nil {
			return nil
		}
		return d.policy(from, target, op)
	})
	return d
}

// dict is a simple dictionary servant in domain B.
type dict struct {
	mu sync.Mutex
	m  map[string]string
}

func (d *dict) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch op {
	case "put":
		d.m[args[0].(string)] = args[1].(string)
		return "ok", nil, nil
	case "get":
		v, ok := d.m[args[0].(string)]
		if !ok {
			return "missing", nil, nil
		}
		return "ok", []wire.Value{v}, nil
	default:
		return "", nil, fmt.Errorf("dict: no op %q", op)
	}
}

func TestDomainsAreSeparate(t *testing.T) {
	d := newTwoDomains(t)
	refB, err := d.serverB.Export(&dict{m: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	// A client in domain A cannot reach a domain-B reference directly.
	if _, _, err := d.clientA.Invoke(context.Background(), refB, "get",
		[]wire.Value{"k"}); err == nil {
		t.Fatal("cross-domain invoke without gateway succeeded")
	}
}

func TestCrossDomainInvocationThroughGateway(t *testing.T) {
	d := newTwoDomains(t)
	refB, err := d.serverB.Export(&dict{m: map[string]string{"greeting": "hello"}})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := d.gateway.Export(refB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	// The proxy is context-qualified with the gateway's name.
	if len(proxy.Context) != 1 || proxy.Context[0] != "gw" {
		t.Fatalf("proxy context %v", proxy.Context)
	}
	ctx := context.Background()
	outcome, res, err := d.clientA.Invoke(ctx, proxy, "get", []wire.Value{"greeting"})
	if err != nil || outcome != "ok" || res[0] != "hello" {
		t.Fatalf("cross invoke: %q %v %v", outcome, res, err)
	}
	outcome, _, err = d.clientA.Invoke(ctx, proxy, "put", []wire.Value{"k", "v"})
	if err != nil || outcome != "ok" {
		t.Fatalf("cross put: %q %v", outcome, err)
	}
	st := d.gateway.Stats()
	if st.AtoB != 2 || st.BtoA != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPolicyRefusesCrossing(t *testing.T) {
	d := newTwoDomains(t)
	refB, err := d.serverB.Export(&dict{m: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := d.gateway.Export(refB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	d.policyMu.Lock()
	d.policy = func(from Side, target wire.Ref, op string) error {
		if op == "put" {
			return errors.New("writes may not cross this boundary")
		}
		return nil
	}
	d.policyMu.Unlock()
	ctx := context.Background()
	if _, _, err := d.clientA.Invoke(ctx, proxy, "put", []wire.Value{"k", "v"}); !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("policy crossing: want ErrDenied, got %v", err)
	}
	if outcome, _, err := d.clientA.Invoke(ctx, proxy, "get", []wire.Value{"k"}); err != nil || outcome != "missing" {
		t.Fatalf("read crossing: %q %v", outcome, err)
	}
	if d.gateway.Stats().Refused != 1 {
		t.Fatalf("refusals %d", d.gateway.Stats().Refused)
	}
}

// echoRef returns whatever ref argument it is given, plus serves "poke".
type echoRef struct {
	mu    sync.Mutex
	seen  []wire.Ref
	poked int
}

func (e *echoRef) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch op {
	case "take":
		ref, ok := args[0].(wire.Ref)
		if !ok {
			return "", nil, fmt.Errorf("take wants a ref, got %T", args[0])
		}
		e.seen = append(e.seen, ref)
		return "ok", []wire.Value{ref}, nil
	case "poke":
		e.poked++
		return "ok", []wire.Value{int64(e.poked)}, nil
	default:
		return "", nil, fmt.Errorf("no op %q", op)
	}
}

func TestRefCrossingCreatesUsableProxy(t *testing.T) {
	// A reference passed as an argument across the boundary must arrive
	// as a proxy the receiver can actually invoke (the "proxy objects in
	// each domain" of §5.6).
	d := newTwoDomains(t)
	bSide := &echoRef{}
	refB, err := d.serverB.Export(bSide)
	if err != nil {
		t.Fatal(err)
	}
	proxyInA, err := d.gateway.Export(refB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	// Domain A exports a callback object and passes its ref to B.
	aSide := &echoRef{}
	refA, err := d.clientA.Export(aSide)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	outcome, res, err := d.clientA.Invoke(ctx, proxyInA, "take", []wire.Value{refA})
	if err != nil || outcome != "ok" {
		t.Fatalf("take: %q %v", outcome, err)
	}
	// What B received is a proxy, not the raw domain-A ref.
	bSide.mu.Lock()
	got := bSide.seen[0]
	bSide.mu.Unlock()
	if got.ID == refA.ID {
		t.Fatal("raw domain-A reference leaked into domain B")
	}
	if len(got.Context) == 0 || got.Context[0] != "gw" {
		t.Fatalf("crossed ref lacks context: %v", got)
	}
	// B can invoke the proxy and reach the object in A.
	outcome, pres, err := d.serverB.Invoke(ctx, got, "poke", nil)
	if err != nil || outcome != "ok" || pres[0].(int64) != 1 {
		t.Fatalf("B->A callback: %q %v %v", outcome, pres, err)
	}
	if d.gateway.Stats().BtoA != 1 {
		t.Fatalf("BtoA crossings %d", d.gateway.Stats().BtoA)
	}
	// The result of "take" came back to A: it must have been unwrapped
	// back to the original domain-A reference, not double-proxied.
	back, ok := res[0].(wire.Ref)
	if !ok {
		t.Fatalf("result %T", res[0])
	}
	if back.ID != refA.ID {
		t.Fatalf("returned ref %v, want original %v", back, refA)
	}
}

func TestProxyDeduplication(t *testing.T) {
	d := newTwoDomains(t)
	refB, err := d.serverB.Export(&dict{m: map[string]string{}})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d.gateway.Export(refB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.gateway.Export(refB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Equal(p1, p2) {
		t.Fatalf("duplicate proxies for the same target: %v vs %v", p1, p2)
	}
	if d.gateway.Stats().Proxies != 1 {
		t.Fatalf("proxy count %d", d.gateway.Stats().Proxies)
	}
}

func TestNestedRefsInsideContainersCross(t *testing.T) {
	d := newTwoDomains(t)
	bSide := &echoRef{}
	refB, err := d.serverB.Export(capsule.ServantFunc(
		func(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			rec := args[0].(wire.Record)
			inner := rec["cb"].(wire.Ref)
			bSide.mu.Lock()
			bSide.seen = append(bSide.seen, inner)
			bSide.mu.Unlock()
			return "ok", nil, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	proxy, err := d.gateway.Export(refB, SideB)
	if err != nil {
		t.Fatal(err)
	}
	refA, err := d.clientA.Export(&echoRef{})
	if err != nil {
		t.Fatal(err)
	}
	payload := wire.Record{"cb": refA, "note": "nested"}
	outcome, _, err := d.clientA.Invoke(context.Background(), proxy, "deliver", []wire.Value{payload})
	if err != nil || outcome != "ok" {
		t.Fatalf("deliver: %q %v", outcome, err)
	}
	bSide.mu.Lock()
	inner := bSide.seen[0]
	bSide.mu.Unlock()
	if inner.ID == refA.ID {
		t.Fatal("nested ref crossed unproxied")
	}
}
