package types

import (
	"errors"
	"testing"

	"odp/internal/wire"
)

func accountType() Type {
	return Type{
		Name: "BankAccount",
		Ops: map[string]Operation{
			"balance": {
				Outcomes: map[string][]Desc{"ok": {Int}},
			},
			"deposit": {
				Args:     []Desc{Int},
				Outcomes: map[string][]Desc{"ok": {Int}, "rejected": {String}},
			},
			"withdraw": {
				Args:     []Desc{Int},
				Outcomes: map[string][]Desc{"ok": {Int}, "insufficient": {Int}},
			},
			"audit": {
				Args:         []Desc{String},
				Announcement: true,
			},
		},
	}
}

func TestConformsIdentity(t *testing.T) {
	a := accountType()
	if err := Conforms(a, a); err != nil {
		t.Fatalf("type does not conform to itself: %v", err)
	}
}

func TestConformsExtraOpsAllowed(t *testing.T) {
	req := Type{Name: "Readable", Ops: map[string]Operation{
		"balance": {Outcomes: map[string][]Desc{"ok": {Int}}},
	}}
	if err := Conforms(req, accountType()); err != nil {
		t.Fatalf("candidate with extra ops should conform: %v", err)
	}
}

func TestConformsMissingOp(t *testing.T) {
	req := Type{Name: "R", Ops: map[string]Operation{
		"close": {Outcomes: map[string][]Desc{"ok": {}}},
	}}
	if err := Conforms(req, accountType()); !errors.Is(err, ErrNoConform) {
		t.Fatalf("want ErrNoConform, got %v", err)
	}
}

func TestConformsArityMismatch(t *testing.T) {
	req := accountType()
	op := req.Ops["deposit"]
	op.Args = []Desc{Int, Int}
	req.Ops["deposit"] = op
	if err := Conforms(req, accountType()); !errors.Is(err, ErrNoConform) {
		t.Fatalf("want ErrNoConform for arity, got %v", err)
	}
}

func TestConformsExtraOutcomeRejected(t *testing.T) {
	// Candidate may produce an outcome the requirement cannot handle.
	req := Type{Name: "R", Ops: map[string]Operation{
		"withdraw": {Args: []Desc{Int}, Outcomes: map[string][]Desc{"ok": {Int}}},
	}}
	if err := Conforms(req, accountType()); !errors.Is(err, ErrNoConform) {
		t.Fatalf("unexpected-outcome candidate must not conform, got %v", err)
	}
}

func TestConformsFewerOutcomesAllowed(t *testing.T) {
	// Candidate producing a subset of the requirement's outcomes is fine.
	cand := accountType()
	op := cand.Ops["withdraw"]
	op.Outcomes = map[string][]Desc{"ok": {Int}}
	cand.Ops["withdraw"] = op
	req := accountType()
	if err := Conforms(req, cand); err != nil {
		t.Fatalf("subset-outcome candidate should conform: %v", err)
	}
}

func TestConformsAnnouncementMismatch(t *testing.T) {
	req := accountType()
	op := req.Ops["audit"]
	op.Announcement = false
	op.Outcomes = map[string][]Desc{"ok": {}}
	req.Ops["audit"] = op
	if err := Conforms(req, accountType()); !errors.Is(err, ErrNoConform) {
		t.Fatalf("want ErrNoConform for announcement mismatch, got %v", err)
	}
}

func TestConformsAnyWildcard(t *testing.T) {
	req := Type{Name: "R", Ops: map[string]Operation{
		"deposit": {Args: []Desc{Any}, Outcomes: map[string][]Desc{"ok": {Any}, "rejected": {Any}}},
	}}
	if err := Conforms(req, accountType()); err != nil {
		t.Fatalf("Any should match Int: %v", err)
	}
}

func TestDescCompatibleRefAndList(t *testing.T) {
	tests := []struct {
		want, got Desc
		ok        bool
	}{
		{RefTo(""), RefTo("Printer"), true},
		{RefTo("Printer"), RefTo("Printer"), true},
		{RefTo("Printer"), RefTo("Scanner"), false},
		{RefTo("Printer"), RefTo(""), false},
		{ListOf, List(Int), true},
		{List(Int), List(Int), true},
		{List(Int), List(String), false},
		{List(Any), List(String), true},
		{Int, Uint, false},
	}
	for _, tt := range tests {
		if got := descCompatible(tt.want, tt.got); got != tt.ok {
			t.Errorf("descCompatible(%s, %s) = %v, want %v", tt.want, tt.got, got, tt.ok)
		}
	}
}

func TestSignatureCanonical(t *testing.T) {
	a, b := accountType(), accountType()
	b.Name = "SomethingElse"
	if a.Signature() != b.Signature() {
		t.Fatal("signature must be independent of type name")
	}
	c := accountType()
	op := c.Ops["deposit"]
	op.Args = []Desc{String}
	c.Ops["deposit"] = op
	if a.Signature() == c.Signature() {
		t.Fatal("signature must reflect argument types")
	}
}

func TestCheckValue(t *testing.T) {
	tests := []struct {
		name string
		d    Desc
		v    wire.Value
		ok   bool
	}{
		{"int-ok", Int, int64(3), true},
		{"int-bad", Int, uint64(3), false},
		{"any", Any, wire.Record{}, true},
		{"string", String, "x", true},
		{"bytes", Bytes, []byte{1}, true},
		{"nil", Nil, nil, true},
		{"bool", Bool, true, true},
		{"float", Float, 1.5, true},
		{"uint", Uint, uint64(1), true},
		{"record", Rec, wire.Record{"a": nil}, true},
		{"ref-generic", RefTo(""), wire.Ref{ID: "x"}, true},
		{"ref-named", RefTo("T"), wire.Ref{ID: "x", TypeName: "T"}, true},
		{"list-elem-ok", List(Int), wire.List{int64(1), int64(2)}, true},
		{"list-elem-bad", List(Int), wire.List{int64(1), "two"}, false},
		{"list-generic", ListOf, wire.List{"anything"}, true},
		{"foreign", Int, struct{}{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckValue(tt.d, tt.v)
			if (err == nil) != tt.ok {
				t.Fatalf("CheckValue(%s, %v) error = %v, want ok=%v", tt.d, tt.v, err, tt.ok)
			}
		})
	}
}

func TestCheckArgsAndOutcome(t *testing.T) {
	op := accountType().Ops["deposit"]
	if err := CheckArgs(op, []wire.Value{int64(5)}); err != nil {
		t.Fatalf("valid args rejected: %v", err)
	}
	if err := CheckArgs(op, []wire.Value{"five"}); err == nil {
		t.Fatal("wrong arg type accepted")
	}
	if err := CheckArgs(op, nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if err := CheckOutcome(op, "ok", []wire.Value{int64(10)}); err != nil {
		t.Fatalf("valid outcome rejected: %v", err)
	}
	if err := CheckOutcome(op, "exploded", nil); err == nil {
		t.Fatal("undeclared outcome accepted")
	}
	if err := CheckOutcome(op, "ok", []wire.Value{int64(1), int64(2)}); err == nil {
		t.Fatal("wrong result arity accepted")
	}
	ann := accountType().Ops["audit"]
	if err := CheckOutcome(ann, "", nil); err != nil {
		t.Fatalf("announcement empty outcome rejected: %v", err)
	}
	if err := CheckOutcome(ann, "ok", nil); err == nil {
		t.Fatal("announcement with outcome accepted")
	}
}

func TestManagerRegisterLookup(t *testing.T) {
	m := NewManager()
	if err := m.Register(accountType()); err != nil {
		t.Fatal(err)
	}
	got, err := m.Lookup("BankAccount")
	if err != nil {
		t.Fatal(err)
	}
	if got.Signature() != accountType().Signature() {
		t.Fatal("lookup returned different type")
	}
	// Mutating the returned copy must not affect the stored type.
	delete(got.Ops, "balance")
	again, _ := m.Lookup("BankAccount")
	if _, ok := again.Ops["balance"]; !ok {
		t.Fatal("manager storage was mutated through a lookup result")
	}
	if _, err := m.Lookup("NoSuch"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
	if err := m.Register(Type{}); err == nil {
		t.Fatal("unnamed type registered")
	}
}

func TestManagerMatchWithRule(t *testing.T) {
	m := NewManager()
	if err := m.Register(accountType()); err != nil {
		t.Fatal(err)
	}
	readable := Type{Name: "Readable", Ops: map[string]Operation{
		"balance": {Outcomes: map[string][]Desc{"ok": {Int}}},
	}}
	if err := m.Register(readable); err != nil {
		t.Fatal(err)
	}
	if err := m.Match("Readable", "BankAccount"); err != nil {
		t.Fatalf("structural match failed: %v", err)
	}
	// Install a rule that vetoes everything; the paper allows the type
	// manager to "impose additional constraints on type matching".
	m.AddRule(func(req, cand Type) error {
		return errors.New("policy: no matches today")
	})
	if err := m.Match("Readable", "BankAccount"); !errors.Is(err, ErrNoConform) {
		t.Fatalf("rule veto not applied: %v", err)
	}
	if err := m.Match("Readable", "NoSuch"); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}
