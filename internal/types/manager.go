package types

import (
	"fmt"
	"sync"
)

// Manager is the type manager of §6: a repository of interface type
// descriptions that traders and binders consult. "Taken together, traders
// and type managers provide within an ODP system a description of its
// capabilities: self-describing systems are more open-ended and scale
// better than those which have a fixed external description."
//
// The manager may impose additional constraints on type matching beyond
// structural conformance via registered rules.
type Manager struct {
	mu     sync.RWMutex
	byName map[string]Type
	rules  []MatchRule
}

// MatchRule is an additional constraint on type matching imposed by the
// type manager (§6). It may veto a structurally valid match.
type MatchRule func(requirement, candidate Type) error

// NewManager returns an empty type manager.
func NewManager() *Manager {
	return &Manager{byName: make(map[string]Type)}
}

// Register stores (or replaces) a named type description.
func (m *Manager) Register(t Type) error {
	if t.Name == "" {
		return fmt.Errorf("types: cannot register unnamed type")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byName[t.Name] = t.Clone()
	return nil
}

// Lookup finds a type description on-line — required for dynamic
// configuration with early type checking (§4.3).
func (m *Manager) Lookup(name string) (Type, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	t, ok := m.byName[name]
	if !ok {
		return Type{}, fmt.Errorf("%w: %q", ErrUnknownType, name)
	}
	return t.Clone(), nil
}

// Names returns all registered type names (sorted by map iteration is not
// guaranteed; callers sort if needed).
func (m *Manager) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.byName))
	for n := range m.byName {
		names = append(names, n)
	}
	return names
}

// AddRule installs an extra matching constraint.
func (m *Manager) AddRule(r MatchRule) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rules = append(m.rules, r)
}

// Match checks that the named candidate type conforms to the named
// requirement type, structurally and under every installed rule.
func (m *Manager) Match(requirementName, candidateName string) error {
	req, err := m.Lookup(requirementName)
	if err != nil {
		return err
	}
	cand, err := m.Lookup(candidateName)
	if err != nil {
		return err
	}
	return m.MatchTypes(req, cand)
}

// MatchTypes checks conformance of explicit type values under the
// manager's rules.
func (m *Manager) MatchTypes(requirement, candidate Type) error {
	if err := Conforms(requirement, candidate); err != nil {
		return err
	}
	m.mu.RLock()
	rules := append([]MatchRule(nil), m.rules...)
	m.mu.RUnlock()
	for _, r := range rules {
		if err := r(requirement, candidate); err != nil {
			return fmt.Errorf("%w: rule: %v", ErrNoConform, err)
		}
	}
	return nil
}
