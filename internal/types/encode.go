package types

import (
	"fmt"

	"odp/internal/wire"
)

// EncodeType renders a type description as a wire record, so that type
// descriptions can be shipped to traders and type managers in other
// capsules — the system is self-describing (§6).
func EncodeType(t Type) wire.Record {
	ops := make(wire.Record, len(t.Ops))
	for name, op := range t.Ops {
		args := make(wire.List, len(op.Args))
		for i, a := range op.Args {
			args[i] = string(a)
		}
		outcomes := make(wire.Record, len(op.Outcomes))
		for o, rs := range op.Outcomes {
			results := make(wire.List, len(rs))
			for i, r := range rs {
				results[i] = string(r)
			}
			outcomes[o] = results
		}
		ops[name] = wire.Record{
			"args":         args,
			"outcomes":     outcomes,
			"announcement": op.Announcement,
		}
	}
	return wire.Record{"name": t.Name, "ops": ops}
}

// DecodeType parses a wire record produced by EncodeType.
func DecodeType(v wire.Value) (Type, error) {
	rec, ok := v.(wire.Record)
	if !ok {
		return Type{}, fmt.Errorf("types: type description is %T, want record", v)
	}
	name, _ := rec["name"].(string)
	opsRec, ok := rec["ops"].(wire.Record)
	if !ok {
		return Type{}, fmt.Errorf("types: type description lacks ops record")
	}
	t := Type{Name: name, Ops: make(map[string]Operation, len(opsRec))}
	for opName, opVal := range opsRec {
		opRec, ok := opVal.(wire.Record)
		if !ok {
			return Type{}, fmt.Errorf("types: operation %q is %T, want record", opName, opVal)
		}
		var op Operation
		if args, ok := opRec["args"].(wire.List); ok {
			op.Args = make([]Desc, len(args))
			for i, a := range args {
				s, ok := a.(string)
				if !ok {
					return Type{}, fmt.Errorf("types: operation %q argument %d is %T", opName, i, a)
				}
				op.Args[i] = Desc(s)
			}
		}
		op.Announcement, _ = opRec["announcement"].(bool)
		if outs, ok := opRec["outcomes"].(wire.Record); ok && !op.Announcement {
			op.Outcomes = make(map[string][]Desc, len(outs))
			for o, rsVal := range outs {
				rs, ok := rsVal.(wire.List)
				if !ok {
					return Type{}, fmt.Errorf("types: outcome %q of %q is %T", o, opName, rsVal)
				}
				results := make([]Desc, len(rs))
				for i, r := range rs {
					s, ok := r.(string)
					if !ok {
						return Type{}, fmt.Errorf("types: outcome %q result %d is %T", o, i, r)
					}
					results[i] = Desc(s)
				}
				op.Outcomes[o] = results
			}
		}
		t.Ops[opName] = op
	}
	return t, nil
}
