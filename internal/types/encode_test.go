package types

import (
	"sort"
	"testing"

	"odp/internal/wire"
)

func TestEncodeDecodeTypeRoundTrip(t *testing.T) {
	orig := accountType()
	enc := EncodeType(orig)
	got, err := DecodeType(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || got.Signature() != orig.Signature() {
		t.Fatalf("round trip mismatch:\n got  %s\n want %s", got.Signature(), orig.Signature())
	}
	// Announcement flag survives.
	if !got.Ops["audit"].Announcement {
		t.Fatal("announcement flag lost")
	}
}

func TestEncodeDecodeEmptyType(t *testing.T) {
	orig := Type{Name: "Empty", Ops: map[string]Operation{}}
	got, err := DecodeType(EncodeType(orig))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "Empty" || len(got.Ops) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestDecodeTypeErrors(t *testing.T) {
	tests := []struct {
		name string
		give wire.Value
	}{
		{"not-a-record", "just a string"},
		{"no-ops", wire.Record{"name": "X"}},
		{"op-not-record", wire.Record{"name": "X", "ops": wire.Record{"f": "oops"}}},
		{"arg-not-string", wire.Record{"name": "X", "ops": wire.Record{
			"f": wire.Record{"args": wire.List{int64(3)}},
		}}},
		{"outcome-not-list", wire.Record{"name": "X", "ops": wire.Record{
			"f": wire.Record{"outcomes": wire.Record{"ok": "nope"}},
		}}},
		{"result-not-string", wire.Record{"name": "X", "ops": wire.Record{
			"f": wire.Record{"outcomes": wire.Record{"ok": wire.List{true}}},
		}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeType(tt.give); err == nil {
				t.Fatalf("decoded invalid description %v", tt.give)
			}
		})
	}
}

func TestDecodeTypeThroughWire(t *testing.T) {
	// The full path an import request takes: encode -> codec -> decode.
	for _, codec := range []wire.Codec{wire.BinaryCodec{}, wire.TextCodec{}} {
		raw, err := codec.Encode(nil, EncodeType(accountType()))
		if err != nil {
			t.Fatal(err)
		}
		v, _, err := codec.Decode(raw)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeType(v)
		if err != nil {
			t.Fatal(err)
		}
		if got.Signature() != accountType().Signature() {
			t.Fatalf("%s: signature mismatch", codec.Name())
		}
	}
}

func TestManagerNames(t *testing.T) {
	m := NewManager()
	if names := m.Names(); len(names) != 0 {
		t.Fatalf("fresh manager has names %v", names)
	}
	for _, n := range []string{"Zebra", "Apple", "Mango"} {
		if err := m.Register(Type{Name: n, Ops: map[string]Operation{}}); err != nil {
			t.Fatal(err)
		}
	}
	names := m.Names()
	sort.Strings(names)
	if len(names) != 3 || names[0] != "Apple" || names[2] != "Zebra" {
		t.Fatalf("names %v", names)
	}
}

func TestCheckValueRemainingKinds(t *testing.T) {
	tests := []struct {
		name string
		d    Desc
		v    wire.Value
		ok   bool
	}{
		{"nil-bad", Nil, int64(1), false},
		{"bool-bad", Bool, "true", false},
		{"float-bad", Float, int64(1), false},
		{"uint-bad", Uint, int64(1), false},
		{"string-bad", String, []byte("s"), false},
		{"bytes-bad", Bytes, "s", false},
		{"record-bad", Rec, wire.List{}, false},
		{"ref-bad", RefTo(""), "not a ref", false},
		{"ref-named-bad-kind", RefTo("T"), int64(1), false},
		{"list-bad-kind", List(Int), wire.Record{}, false},
		{"generic-list-bad", ListOf, "nope", false},
		{"unknown-desc", Desc("martian"), int64(1), false},
		{"nil-desc-ok", Nil, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := CheckValue(tt.d, tt.v)
			if (err == nil) != tt.ok {
				t.Fatalf("CheckValue(%s, %v) err=%v, want ok=%v", tt.d, tt.v, err, tt.ok)
			}
		})
	}
}
