// Package types implements the ODP interface type system.
//
// The paper requires that "type checking be based on interface signature
// checking: if the interface type includes the operations required by the
// client (with appropriate arguments and outcomes) it is suitable. (The
// alternative is to name types and declare type name hierarchies; however
// this fails to meet the requirements for federation and evolution.)"
// (§5.1). Conformance here is therefore purely structural.
//
// A type describes a set of operations; each operation has an argument
// list and a set of named outcomes ("each operation should be permitted to
// have a range of possible outcomes, each one of which carries its own
// package of results", §5.1).
package types

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"odp/internal/wire"
)

// Desc names a value type in a signature. The primitive descriptors mirror
// wire kinds; Any matches everything (used by generic infrastructure
// interfaces); "ref:<TypeName>" constrains an interface-reference argument
// to a named interface type; "list<...>" and "record" are containers.
type Desc string

// Primitive and wildcard type descriptors.
const (
	Any    Desc = "any"
	Nil    Desc = "nil"
	Bool   Desc = "bool"
	Int    Desc = "int"
	Uint   Desc = "uint"
	Float  Desc = "float"
	String Desc = "string"
	Bytes  Desc = "bytes"
	ListOf Desc = "list" // homogeneous element type not tracked; use List(d) for list<d>
	Rec    Desc = "record"
)

// List returns the descriptor for a list whose elements are d.
func List(d Desc) Desc { return Desc("list<" + string(d) + ">") }

// RefTo returns the descriptor for a reference to an interface of type
// name. An empty name means "any interface".
func RefTo(name string) Desc {
	if name == "" {
		return "ref"
	}
	return Desc("ref:" + name)
}

// Operation is one operation in an interface signature.
type Operation struct {
	// Args is the argument list, positionally typed.
	Args []Desc
	// Outcomes maps each possible outcome name to the types of the
	// results that outcome carries. Interrogations must declare at least
	// one outcome; announcements declare none and return nothing.
	Outcomes map[string][]Desc
	// Announcement marks a request-only operation (§5.1): no reply, no
	// outcomes.
	Announcement bool
}

// Type is an interface signature: a self-consistent set of operations
// encapsulating state (§4.1).
type Type struct {
	// Name is advisory only — conformance never consults it (the paper
	// rejects name hierarchies). It keys the type manager's store.
	Name string
	// Ops maps operation name to signature.
	Ops map[string]Operation
}

// Errors reported by conformance checking.
var (
	// ErrNoConform reports that a candidate fails to conform to a
	// requirement.
	ErrNoConform = errors.New("types: does not conform")
	// ErrUnknownType reports a type name missing from the manager.
	ErrUnknownType = errors.New("types: unknown type")
)

// Clone returns a deep copy of t.
func (t Type) Clone() Type {
	out := Type{Name: t.Name, Ops: make(map[string]Operation, len(t.Ops))}
	for name, op := range t.Ops {
		cop := Operation{
			Args:         append([]Desc(nil), op.Args...),
			Announcement: op.Announcement,
		}
		if op.Outcomes != nil {
			cop.Outcomes = make(map[string][]Desc, len(op.Outcomes))
			for o, rs := range op.Outcomes {
				cop.Outcomes[o] = append([]Desc(nil), rs...)
			}
		}
		out.Ops[name] = cop
	}
	return out
}

// Signature returns a canonical textual form of the type, independent of
// Name, usable as a structural hash.
func (t Type) Signature() string {
	opNames := make([]string, 0, len(t.Ops))
	for n := range t.Ops {
		opNames = append(opNames, n)
	}
	sort.Strings(opNames)
	var b strings.Builder
	for _, n := range opNames {
		op := t.Ops[n]
		b.WriteString(n)
		b.WriteByte('(')
		for i, a := range op.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(a))
		}
		b.WriteByte(')')
		if op.Announcement {
			b.WriteByte('!')
		} else {
			outs := make([]string, 0, len(op.Outcomes))
			for o := range op.Outcomes {
				outs = append(outs, o)
			}
			sort.Strings(outs)
			for _, o := range outs {
				b.WriteString("->")
				b.WriteString(o)
				b.WriteByte('[')
				for i, r := range op.Outcomes[o] {
					if i > 0 {
						b.WriteByte(',')
					}
					b.WriteString(string(r))
				}
				b.WriteByte(']')
			}
		}
		b.WriteByte(';')
	}
	return b.String()
}

// descCompatible reports whether a value described by got may flow where
// want is expected. Any absorbs everything in either direction of a single
// position check; ref descriptors match when want is the generic "ref" or
// names the same interface type.
func descCompatible(want, got Desc) bool {
	if want == Any || got == Any {
		return true
	}
	if want == got {
		return true
	}
	ws, gs := string(want), string(got)
	// Generic ref accepts any specific ref and vice versa is not allowed:
	// a requirement for ref:Printer must not be satisfied by plain ref.
	if ws == "ref" && strings.HasPrefix(gs, "ref") {
		return true
	}
	// Generic list accepts any specific list.
	if ws == "list" && strings.HasPrefix(gs, "list<") {
		return true
	}
	if strings.HasPrefix(ws, "list<") && strings.HasPrefix(gs, "list<") {
		return descCompatible(Desc(ws[5:len(ws)-1]), Desc(gs[5:len(gs)-1]))
	}
	return false
}

// Conforms checks that candidate can stand in for requirement: every
// operation the requirement names must exist in the candidate with the
// same arity, argument types compatible position-wise, matching
// announcement-ness, and the candidate's outcome set a subset of the
// requirement's (the client must be prepared for every outcome the server
// may produce). The candidate may offer extra operations — that is the
// essence of structural subtyping for federated systems.
func Conforms(requirement, candidate Type) error {
	for name, rop := range requirement.Ops {
		cop, ok := candidate.Ops[name]
		if !ok {
			return fmt.Errorf("%w: missing operation %q", ErrNoConform, name)
		}
		if rop.Announcement != cop.Announcement {
			return fmt.Errorf("%w: operation %q announcement mismatch", ErrNoConform, name)
		}
		if len(rop.Args) != len(cop.Args) {
			return fmt.Errorf("%w: operation %q arity %d != %d", ErrNoConform, name, len(cop.Args), len(rop.Args))
		}
		for i := range rop.Args {
			// Arguments are contravariant: the candidate must accept at
			// least what the requirement will send.
			if !descCompatible(cop.Args[i], rop.Args[i]) {
				return fmt.Errorf("%w: operation %q argument %d: cannot pass %s where %s expected",
					ErrNoConform, name, i, rop.Args[i], cop.Args[i])
			}
		}
		if rop.Announcement {
			continue
		}
		for o, crs := range cop.Outcomes {
			rrs, ok := rop.Outcomes[o]
			if !ok {
				return fmt.Errorf("%w: operation %q may produce unexpected outcome %q", ErrNoConform, name, o)
			}
			if len(crs) != len(rrs) {
				return fmt.Errorf("%w: operation %q outcome %q result arity %d != %d",
					ErrNoConform, name, o, len(crs), len(rrs))
			}
			for i := range crs {
				// Results are covariant: what the candidate produces must
				// be acceptable to the requirement.
				if !descCompatible(rrs[i], crs[i]) {
					return fmt.Errorf("%w: operation %q outcome %q result %d: %s where %s expected",
						ErrNoConform, name, o, i, crs[i], rrs[i])
				}
			}
		}
	}
	return nil
}

// CheckValue verifies that v matches descriptor d. Used by the dispatcher
// for early type checking ("early type checking reduces the risks of
// unpredictable behaviour", §4.3).
func CheckValue(d Desc, v wire.Value) error {
	if d == Any {
		return nil
	}
	kind, ok := wire.KindOf(v)
	if !ok {
		return fmt.Errorf("types: value %T outside data model", v)
	}
	ds := string(d)
	switch {
	case d == Nil:
		if kind != wire.KindNil {
			return mismatch(d, kind)
		}
	case d == Bool:
		if kind != wire.KindBool {
			return mismatch(d, kind)
		}
	case d == Int:
		if kind != wire.KindInt {
			return mismatch(d, kind)
		}
	case d == Uint:
		if kind != wire.KindUint {
			return mismatch(d, kind)
		}
	case d == Float:
		if kind != wire.KindFloat {
			return mismatch(d, kind)
		}
	case d == String:
		if kind != wire.KindString {
			return mismatch(d, kind)
		}
	case d == Bytes:
		if kind != wire.KindBytes {
			return mismatch(d, kind)
		}
	case d == Rec:
		if kind != wire.KindRecord {
			return mismatch(d, kind)
		}
	case ds == "ref":
		if kind != wire.KindRef {
			return mismatch(d, kind)
		}
	case strings.HasPrefix(ds, "ref:"):
		if kind != wire.KindRef {
			return mismatch(d, kind)
		}
		// Nominal ref constraint is advisory at the value level; the
		// binder re-checks structurally on bind.
	case d == ListOf:
		if kind != wire.KindList {
			return mismatch(d, kind)
		}
	case strings.HasPrefix(ds, "list<"):
		if kind != wire.KindList {
			return mismatch(d, kind)
		}
		elem := Desc(ds[5 : len(ds)-1])
		for i, e := range v.(wire.List) {
			if err := CheckValue(elem, e); err != nil {
				return fmt.Errorf("list element %d: %w", i, err)
			}
		}
	default:
		return fmt.Errorf("types: unknown descriptor %q", d)
	}
	return nil
}

// CheckArgs verifies an argument vector against an operation signature.
func CheckArgs(op Operation, args []wire.Value) error {
	if len(args) != len(op.Args) {
		return fmt.Errorf("types: got %d arguments, want %d", len(args), len(op.Args))
	}
	for i, d := range op.Args {
		if err := CheckValue(d, args[i]); err != nil {
			return fmt.Errorf("argument %d: %w", i, err)
		}
	}
	return nil
}

// CheckOutcome verifies an outcome name and its results against an
// operation signature.
func CheckOutcome(op Operation, outcome string, results []wire.Value) error {
	if op.Announcement {
		if outcome != "" || len(results) != 0 {
			return errors.New("types: announcement must not produce an outcome")
		}
		return nil
	}
	rs, ok := op.Outcomes[outcome]
	if !ok {
		return fmt.Errorf("types: undeclared outcome %q", outcome)
	}
	if len(results) != len(rs) {
		return fmt.Errorf("types: outcome %q carries %d results, want %d", outcome, len(results), len(rs))
	}
	for i, d := range rs {
		if err := CheckValue(d, results[i]); err != nil {
			return fmt.Errorf("outcome %q result %d: %w", outcome, i, err)
		}
	}
	return nil
}

func mismatch(d Desc, k wire.Kind) error {
	return fmt.Errorf("types: %s value where %s expected", k, d)
}
