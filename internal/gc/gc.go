// Package gc implements distributed garbage collection (§7.3).
//
// "The ODP computational model is based on interfaces to objects being
// accessed via references: this implies that objects must persist for at
// least as long as there are clients holding references to their
// interfaces. This potentially puts a server's resources at the mercy of
// its clients."
//
// The resolution here is lease-based: a client holding a reference renews
// a lease at the object's collector; an object whose leases have all
// expired is garbage — but "only passive objects need be considered —
// active ones cannot be garbage by definition", so recently-invoked
// objects are skipped regardless of lease state. §7.3's other escape
// hatch, explicitly closing an interface so "subsequent attempts to
// access the interface produce an error indication as their outcome", is
// Close.
package gc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/wire"
)

// Errors returned by the collector.
var (
	// ErrUnknownObject reports a lease for an untracked object.
	ErrUnknownObject = errors.New("gc: unknown object")
	// ErrClosedInterface is the error produced by invoking an explicitly
	// closed interface.
	ErrClosedInterface = errors.New("gc: interface explicitly closed")
)

// tracked is one object's collection state.
type tracked struct {
	leases     map[string]time.Time // holder -> expiry
	lastActive time.Time
	onCollect  func(id string)
}

// Collector manages leases and collection for one capsule's objects.
type Collector struct {
	cap   *capsule.Capsule
	grace time.Duration
	now   func() time.Time

	mu      sync.Mutex
	objects map[string]*tracked
	ref     wire.Ref

	statsMu   sync.Mutex
	collected uint64
	renewals  uint64
}

// CollectorOption configures a Collector.
type CollectorOption func(*Collector)

// WithCollectorClock sets the collector's time source (default real
// time), so lease expiry and activity grace run in virtual time under
// the sim harness.
func WithCollectorClock(c clock.Clock) CollectorOption {
	return func(g *Collector) { g.now = c.Now }
}

// New creates a collector on c and exports its lease interface. grace is
// how long after its last invocation an object is still considered
// active (default 1s).
func New(c *capsule.Capsule, grace time.Duration, opts ...CollectorOption) (*Collector, error) {
	if grace <= 0 {
		grace = time.Second
	}
	g := &Collector{
		cap:     c,
		grace:   grace,
		now:     clock.Real{}.Now,
		objects: make(map[string]*tracked),
	}
	for _, o := range opts {
		o(g)
	}
	ref, err := c.Export(capsule.ServantFunc(g.dispatch),
		capsule.WithID(c.Name()+"/gc"))
	if err != nil {
		return nil, err
	}
	g.ref = ref
	return g, nil
}

// Ref returns the collector's lease interface reference, distributed to
// clients alongside object references.
func (g *Collector) Ref() wire.Ref { return g.ref }

// Collected returns how many objects have been collected.
func (g *Collector) Collected() uint64 {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.collected
}

// Renewals returns how many lease renewals have been processed.
func (g *Collector) Renewals() uint64 {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.renewals
}

// Track begins collection management for object id. onCollect runs when
// the object is collected (it should release the object's resources; the
// collector already unexports). Returns an interceptor that must be
// installed on the object's dispatch path so invocations count as
// activity.
func (g *Collector) Track(id string, onCollect func(id string)) capsule.Interceptor {
	g.mu.Lock()
	g.objects[id] = &tracked{
		leases:     make(map[string]time.Time),
		lastActive: g.now(),
		onCollect:  onCollect,
	}
	g.mu.Unlock()
	return func(next capsule.Servant) capsule.Servant {
		return capsule.ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			g.mu.Lock()
			if tr, ok := g.objects[id]; ok {
				tr.lastActive = g.now()
			}
			g.mu.Unlock()
			return next.Dispatch(ctx, op, args)
		})
	}
}

// Forget stops managing id without collecting it.
func (g *Collector) Forget(id string) {
	g.mu.Lock()
	delete(g.objects, id)
	g.mu.Unlock()
}

// Renew extends holder's lease on id by ttl (local form).
func (g *Collector) Renew(id, holder string, ttl time.Duration) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	tr, ok := g.objects[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	tr.leases[holder] = g.now().Add(ttl)
	g.statsMu.Lock()
	g.renewals++
	g.statsMu.Unlock()
	return nil
}

// Release drops holder's lease on id.
func (g *Collector) Release(id, holder string) {
	g.mu.Lock()
	if tr, ok := g.objects[id]; ok {
		delete(tr.leases, holder)
	}
	g.mu.Unlock()
}

// Sweep collects every tracked object that is passive (no invocation
// within the grace window) and unreferenced (no unexpired lease),
// returning the collected ids.
func (g *Collector) Sweep() []string {
	now := g.now()
	var victims []string
	var callbacks []func(string)
	g.mu.Lock()
	for id, tr := range g.objects {
		if now.Sub(tr.lastActive) < g.grace {
			continue // active objects cannot be garbage
		}
		live := false
		for holder, exp := range tr.leases {
			if exp.After(now) {
				live = true
				break
			}
			delete(tr.leases, holder) // scavenge expired leases
		}
		if live {
			continue
		}
		victims = append(victims, id)
		callbacks = append(callbacks, tr.onCollect)
		delete(g.objects, id)
	}
	g.mu.Unlock()
	for i, id := range victims {
		g.cap.Unexport(id)
		if callbacks[i] != nil {
			callbacks[i](id)
		}
	}
	if n := uint64(len(victims)); n > 0 {
		g.statsMu.Lock()
		g.collected += n
		g.statsMu.Unlock()
	}
	return victims
}

// Close explicitly closes interface id: it is collected immediately and
// replaced by a tombstone, so "subsequent attempts to access the
// interface produce an error indication" rather than a silent miss.
func (g *Collector) Close(id string) {
	g.mu.Lock()
	tr, ok := g.objects[id]
	delete(g.objects, id)
	g.mu.Unlock()
	g.cap.Unexport(id)
	_, _ = g.cap.Export(capsule.ServantFunc(
		func(context.Context, string, []wire.Value) (string, []wire.Value, error) {
			return "", nil, fmt.Errorf("%w: %q", ErrClosedInterface, id)
		}), capsule.WithID(id))
	if ok && tr.onCollect != nil {
		tr.onCollect(id)
	}
}

// dispatch is the collector's lease interface.
func (g *Collector) dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "renew":
		if len(args) != 3 {
			return "", nil, errors.New("gc: renew wants (id, holder, ttlMs)")
		}
		id, _ := args[0].(string)
		holder, _ := args[1].(string)
		ttlMs, _ := args[2].(int64)
		if err := g.Renew(id, holder, time.Duration(ttlMs)*time.Millisecond); err != nil {
			return "unknown", nil, nil
		}
		return "ok", nil, nil
	case "release":
		if len(args) != 2 {
			return "", nil, errors.New("gc: release wants (id, holder)")
		}
		id, _ := args[0].(string)
		holder, _ := args[1].(string)
		g.Release(id, holder)
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("gc: no operation %q", op)
	}
}

// Holder renews leases from the client side for every reference it is
// told to keep alive.
type Holder struct {
	cap  *capsule.Capsule
	name string
	ttl  time.Duration

	mu   sync.Mutex
	held map[string]wire.Ref // object id -> collector ref

	clk clock.Clock

	stop chan struct{}
	done chan struct{}
}

// HolderOption configures a Holder.
type HolderOption func(*Holder)

// WithHolderClock sets the clock pacing renewals (default clock.Real{}).
func WithHolderClock(c clock.Clock) HolderOption {
	return func(h *Holder) { h.clk = c }
}

// NewHolder creates a lease holder named name (typically the client
// capsule's name) renewing every ttl/2.
func NewHolder(c *capsule.Capsule, name string, ttl time.Duration, opts ...HolderOption) *Holder {
	h := &Holder{
		cap:  c,
		name: name,
		ttl:  ttl,
		clk:  clock.Real{},
		held: make(map[string]wire.Ref),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, o := range opts {
		o(h)
	}
	go h.loop()
	return h
}

// Hold starts renewing a lease on objID at the collector gcRef.
func (h *Holder) Hold(objID string, gcRef wire.Ref) {
	h.mu.Lock()
	h.held[objID] = gcRef
	h.mu.Unlock()
	h.renew(objID, gcRef) // immediately, then periodically
}

// Drop stops renewing (and releases) the lease on objID.
func (h *Holder) Drop(objID string) {
	h.mu.Lock()
	gcRef, ok := h.held[objID]
	delete(h.held, objID)
	h.mu.Unlock()
	if ok {
		_, _, _ = h.cap.Invoke(context.Background(), gcRef, "release",
			[]wire.Value{objID, h.name})
	}
}

// Stop halts the renewal loop.
func (h *Holder) Stop() {
	select {
	case <-h.stop:
	default:
		close(h.stop)
	}
	<-h.done
}

func (h *Holder) loop() {
	defer close(h.done)
	interval := h.ttl / 2
	if interval <= 0 {
		interval = time.Second
	}
	// Re-armed one-shot timer, not a free-running ticker: a renewal that
	// blocks on a cut link outlasts the interval, and whether the
	// saturated ticker's ticks are delivered or dropped would depend on
	// real drain timing — felt as nondeterminism under virtual time.
	timer := h.clk.NewTimer(interval)
	defer func() { timer.Stop() }()
	for {
		select {
		case <-h.stop:
			return
		case <-timer.C():
		}
		h.mu.Lock()
		entries := make(map[string]wire.Ref, len(h.held))
		for id, ref := range h.held {
			entries[id] = ref
		}
		h.mu.Unlock()
		for id, ref := range entries {
			h.renew(id, ref)
		}
		timer = h.clk.NewTimer(interval)
	}
}

func (h *Holder) renew(objID string, gcRef wire.Ref) {
	_, _, _ = h.cap.Invoke(context.Background(), gcRef, "renew",
		[]wire.Value{objID, h.name, h.ttl.Milliseconds()})
}
