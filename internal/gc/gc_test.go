package gc

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

type gcEnv struct {
	t         *testing.T
	fabric    *netsim.Fabric
	server    *capsule.Capsule
	client    *capsule.Capsule
	collector *Collector
}

func newGCEnv(t *testing.T, grace time.Duration) *gcEnv {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	mk := func(name string) *capsule.Capsule {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	server := mk("server")
	client := mk("client")
	col, err := New(server, grace)
	if err != nil {
		t.Fatal(err)
	}
	return &gcEnv{t: t, fabric: f, server: server, client: client, collector: col}
}

// exportTracked exports a trivial servant with GC tracking.
func (e *gcEnv) exportTracked(id string, collectedInto *[]string, mu *sync.Mutex) wire.Ref {
	e.t.Helper()
	onCollect := func(id string) {
		if collectedInto != nil {
			mu.Lock()
			*collectedInto = append(*collectedInto, id)
			mu.Unlock()
		}
	}
	interceptor := e.collector.Track(id, onCollect)
	ref, err := e.server.Export(capsule.ServantFunc(
		func(context.Context, string, []wire.Value) (string, []wire.Value, error) {
			return "ok", nil, nil
		}),
		capsule.WithID(id),
		capsule.WithInterceptors(interceptor))
	if err != nil {
		e.t.Fatal(err)
	}
	return ref
}

func TestSweepCollectsUnreferencedPassive(t *testing.T) {
	e := newGCEnv(t, 20*time.Millisecond)
	var collected []string
	var mu sync.Mutex
	_ = e.exportTracked("obj1", &collected, &mu)
	_ = e.exportTracked("obj2", &collected, &mu)

	time.Sleep(40 * time.Millisecond) // pass the activity grace window
	victims := e.collector.Sweep()
	if len(victims) != 2 {
		t.Fatalf("swept %v", victims)
	}
	mu.Lock()
	n := len(collected)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("onCollect ran %d times", n)
	}
	if e.server.Hosts("obj1") || e.server.Hosts("obj2") {
		t.Fatal("collected objects still exported")
	}
	if e.collector.Collected() != 2 {
		t.Fatalf("collected counter %d", e.collector.Collected())
	}
}

func TestLeaseKeepsObjectAlive(t *testing.T) {
	e := newGCEnv(t, 10*time.Millisecond)
	ref := e.exportTracked("precious", nil, nil)
	if err := e.collector.Renew("precious", "client-1", time.Minute); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	if victims := e.collector.Sweep(); len(victims) != 0 {
		t.Fatalf("leased object collected: %v", victims)
	}
	if _, _, err := e.client.Invoke(context.Background(), ref, "ping", nil); err != nil {
		t.Fatalf("leased object unreachable: %v", err)
	}
}

func TestExpiredLeaseCollected(t *testing.T) {
	e := newGCEnv(t, 10*time.Millisecond)
	_ = e.exportTracked("fleeting", nil, nil)
	if err := e.collector.Renew("fleeting", "client-1", 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if victims := e.collector.Sweep(); len(victims) != 1 {
		t.Fatalf("expired-lease object not collected: %v", victims)
	}
}

func TestActiveObjectNotCollected(t *testing.T) {
	// "only passive objects need be considered — active ones cannot be
	// garbage by definition".
	e := newGCEnv(t, 200*time.Millisecond)
	ref := e.exportTracked("busy", nil, nil)
	// No lease at all, but recent invocations keep it active.
	if _, _, err := e.client.Invoke(context.Background(), ref, "work", nil); err != nil {
		t.Fatal(err)
	}
	if victims := e.collector.Sweep(); len(victims) != 0 {
		t.Fatalf("active object collected: %v", victims)
	}
}

func TestReleaseAllowsCollection(t *testing.T) {
	e := newGCEnv(t, 10*time.Millisecond)
	_ = e.exportTracked("obj", nil, nil)
	if err := e.collector.Renew("obj", "holder", time.Minute); err != nil {
		t.Fatal(err)
	}
	e.collector.Release("obj", "holder")
	time.Sleep(30 * time.Millisecond)
	if victims := e.collector.Sweep(); len(victims) != 1 {
		t.Fatalf("released object not collected: %v", victims)
	}
}

func TestMultipleHoldersAllMustExpire(t *testing.T) {
	e := newGCEnv(t, 10*time.Millisecond)
	_ = e.exportTracked("shared", nil, nil)
	if err := e.collector.Renew("shared", "h1", 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := e.collector.Renew("shared", "h2", time.Minute); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // h1 expired, h2 alive
	if victims := e.collector.Sweep(); len(victims) != 0 {
		t.Fatalf("object with live lease collected: %v", victims)
	}
}

func TestCloseTombstones(t *testing.T) {
	e := newGCEnv(t, time.Minute)
	ref := e.exportTracked("doomed", nil, nil)
	e.collector.Close("doomed")
	_, _, err := e.client.Invoke(context.Background(), ref, "ping", nil,
		capsule.WithQoS(rpc.QoS{Timeout: time.Second}))
	if err == nil {
		t.Fatal("closed interface still invokable")
	}
	// The error indication is explicit, not a silent no-object miss.
	if got := err.Error(); !contains(got, "explicitly closed") {
		t.Fatalf("close error %q lacks indication", got)
	}
}

func TestRemoteLeaseProtocol(t *testing.T) {
	e := newGCEnv(t, 10*time.Millisecond)
	_ = e.exportTracked("remote-held", nil, nil)
	ctx := context.Background()
	outcome, _, err := e.client.Invoke(ctx, e.collector.Ref(), "renew",
		[]wire.Value{"remote-held", "client", int64(60000)})
	if err != nil || outcome != "ok" {
		t.Fatalf("remote renew: %q %v", outcome, err)
	}
	outcome, _, err = e.client.Invoke(ctx, e.collector.Ref(), "renew",
		[]wire.Value{"no-such", "client", int64(60000)})
	if err != nil || outcome != "unknown" {
		t.Fatalf("renew unknown: %q %v", outcome, err)
	}
	time.Sleep(30 * time.Millisecond)
	if victims := e.collector.Sweep(); len(victims) != 0 {
		t.Fatalf("remotely-leased object collected: %v", victims)
	}
	outcome, _, err = e.client.Invoke(ctx, e.collector.Ref(), "release",
		[]wire.Value{"remote-held", "client"})
	if err != nil || outcome != "ok" {
		t.Fatalf("remote release: %q %v", outcome, err)
	}
	if victims := e.collector.Sweep(); len(victims) != 1 {
		t.Fatalf("after remote release: %v", victims)
	}
}

func TestHolderAutoRenewal(t *testing.T) {
	e := newGCEnv(t, 10*time.Millisecond)
	_ = e.exportTracked("kept", nil, nil)
	holder := NewHolder(e.client, "client", 60*time.Millisecond)
	t.Cleanup(holder.Stop)
	holder.Hold("kept", e.collector.Ref())

	// Several lease lifetimes pass; auto-renewal must keep it alive.
	for i := 0; i < 5; i++ {
		time.Sleep(40 * time.Millisecond)
		if victims := e.collector.Sweep(); len(victims) != 0 {
			t.Fatalf("auto-renewed object collected at round %d", i)
		}
	}
	if e.collector.Renewals() < 3 {
		t.Fatalf("too few renewals: %d", e.collector.Renewals())
	}
	// Dropping the hold releases promptly.
	holder.Drop("kept")
	time.Sleep(30 * time.Millisecond)
	if victims := e.collector.Sweep(); len(victims) != 1 {
		t.Fatalf("dropped object not collected: %v", victims)
	}
}

func TestLiveFractionShape(t *testing.T) {
	// E13's shape: with a fraction of objects leased, exactly the
	// unleased complement is reclaimed, never a leased object.
	e := newGCEnv(t, 10*time.Millisecond)
	const n = 100
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("obj-%03d", i)
		_ = e.exportTracked(id, nil, nil)
		if i%4 == 0 { // 25% live
			if err := e.collector.Renew(id, "holder", time.Minute); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(30 * time.Millisecond)
	victims := e.collector.Sweep()
	if len(victims) != n-n/4 {
		t.Fatalf("collected %d, want %d", len(victims), n-n/4)
	}
	for _, id := range victims {
		var i int
		if _, err := fmt.Sscanf(id, "obj-%03d", &i); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			t.Fatalf("live object %s collected", id)
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
