package security

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// Signer produces credentials on behalf of one principal.
type Signer struct {
	principal string
	secret    []byte
	// Seal encrypts argument payloads (confidentiality in addition to
	// integrity).
	Seal bool

	nonce atomic.Uint64
	now   func() time.Time
}

// NewSigner creates a signer for principal with its shared secret.
func NewSigner(principal string, secret []byte) *Signer {
	s := &Signer{principal: principal, now: clock.Real{}.Now}
	s.secret = make([]byte, len(secret))
	copy(s.secret, secret)
	// Start nonces at a random-ish point so two incarnations of the same
	// principal do not collide in the guard's replay window.
	var seed [8]byte
	if _, err := timeSeed(seed[:]); err == nil {
		s.nonce.Store(deBytes(seed[:]))
	}
	return s
}

// Wrap prepends a credential to args for an invocation of op. When
// sealing, the arguments are replaced entirely by the encrypted payload
// inside the credential.
func (s *Signer) Wrap(op string, args []wire.Value) ([]wire.Value, error) {
	nonce := s.nonce.Add(1)
	ts := s.now().UnixMilli()
	payload, err := wire.EncodeAll(wire.BinaryCodec{}, args)
	if err != nil {
		return nil, err
	}
	c := credential{principal: s.principal, nonce: nonce, unixMilli: ts}
	if s.Seal {
		sealed, err := seal(s.secret, payload)
		if err != nil {
			return nil, err
		}
		c.sealed = sealed
		c.mac = macOver(s.secret, s.principal, nonce, ts, op, sealed)
		return []wire.Value{encodeCredential(c)}, nil
	}
	c.mac = macOver(s.secret, s.principal, nonce, ts, op, payload)
	out := make([]wire.Value, 0, len(args)+1)
	out = append(out, encodeCredential(c))
	out = append(out, args...)
	return out, nil
}

// Invoke is the authenticated invocation helper: wrap, invoke, done.
func (s *Signer) Invoke(ctx context.Context, c *capsule.Capsule, ref wire.Ref, op string, args []wire.Value, opts ...capsule.InvokeOption) (string, []wire.Value, error) {
	wrapped, err := s.Wrap(op, args)
	if err != nil {
		return "", nil, err
	}
	return c.Invoke(ctx, ref, op, wrapped, opts...)
}

// Rule is one clause of a declarative policy.
type Rule struct {
	// Principal the rule applies to; "*" matches all.
	Principal string
	// Op the rule applies to; "*" matches all.
	Op string
	// Allow or deny.
	Allow bool
}

// Policy is an ordered rule list: first match wins; no match denies.
type Policy struct {
	// Rules in evaluation order.
	Rules []Rule
}

// Allows evaluates the policy.
func (p Policy) Allows(principal, op string) bool {
	for _, r := range p.Rules {
		if (r.Principal == "*" || r.Principal == principal) &&
			(r.Op == "*" || r.Op == op) {
			return r.Allow
		}
	}
	return false
}

// GuardStats counts guard decisions.
type GuardStats struct {
	Admitted uint64
	Rejected uint64
	Replays  uint64
}

// Guard polices one interface: it is the generated engineering artefact
// of a declarative policy statement (§7.1). Use AsInterceptor to place it
// "within the encapsulation boundary of the secure object".
type Guard struct {
	keys     *Keyring
	policy   Policy
	maxSkew  time.Duration
	now      func() time.Time
	mu       sync.Mutex
	seen     map[string]map[uint64]int64 // principal -> nonce -> expiry ms
	statsMu  sync.Mutex
	stats    GuardStats
	lastScan time.Time
}

// NewGuard generates a guard from a declarative policy and the object's
// shared secrets. maxSkew bounds credential age (default 30s).
func NewGuard(keys *Keyring, policy Policy, maxSkew time.Duration) *Guard {
	if maxSkew <= 0 {
		maxSkew = 30 * time.Second
	}
	return &Guard{
		keys:    keys,
		policy:  policy,
		maxSkew: maxSkew,
		now:     clock.Real{}.Now,
		seen:    make(map[string]map[uint64]int64),
	}
}

// Stats returns a snapshot of guard counters.
func (g *Guard) Stats() GuardStats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.stats
}

// AsInterceptor returns the guard as a capsule interceptor.
func (g *Guard) AsInterceptor() capsule.Interceptor {
	return func(next capsule.Servant) capsule.Servant {
		return capsule.ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			realArgs, principal, err := g.Admit(op, args)
			if err != nil {
				g.count(func(s *GuardStats) { s.Rejected++ })
				return "", nil, fmt.Errorf("%w: %v", rpc.ErrDenied, err)
			}
			g.count(func(s *GuardStats) { s.Admitted++ })
			return next.Dispatch(WithPrincipal(ctx, principal), op, realArgs)
		})
	}
}

// count updates guard counters.
func (g *Guard) count(update func(*GuardStats)) {
	g.statsMu.Lock()
	update(&g.stats)
	g.statsMu.Unlock()
}

// Admit verifies the credential at args[0] and evaluates the policy,
// returning the application arguments and the authenticated principal.
func (g *Guard) Admit(op string, args []wire.Value) ([]wire.Value, string, error) {
	if len(args) == 0 {
		return nil, "", fmt.Errorf("%w: no credential", ErrBadCredential)
	}
	c, err := decodeCredential(args[0])
	if err != nil {
		return nil, "", err
	}
	secret, ok := g.keys.secret(c.principal)
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownPrincipal, c.principal)
	}
	nowMs := g.now().UnixMilli()
	if diff := nowMs - c.unixMilli; diff > g.maxSkew.Milliseconds() || diff < -g.maxSkew.Milliseconds() {
		return nil, "", fmt.Errorf("%w: %dms skew", ErrStale, diff)
	}
	var (
		realArgs []wire.Value
		payload  []byte
	)
	if c.sealed != nil {
		payload = c.sealed
	} else {
		realArgs = args[1:]
		if payload, err = wire.EncodeAll(wire.BinaryCodec{}, realArgs); err != nil {
			return nil, "", err
		}
	}
	want := macOver(secret, c.principal, c.nonce, c.unixMilli, op, payload)
	if !macEqual(want, c.mac) {
		return nil, "", ErrBadMAC
	}
	// Replay window.
	if err := g.checkReplay(c.principal, c.nonce, nowMs); err != nil {
		g.count(func(s *GuardStats) { s.Replays++ })
		return nil, "", err
	}
	if c.sealed != nil {
		plain, err := unseal(secret, c.sealed)
		if err != nil {
			return nil, "", err
		}
		if realArgs, err = wire.DecodeAll(wire.BinaryCodec{}, plain); err != nil {
			return nil, "", err
		}
	}
	if !g.policy.Allows(c.principal, op) {
		return nil, "", fmt.Errorf("%w: %q may not %q", ErrForbidden, c.principal, op)
	}
	return realArgs, c.principal, nil
}

func (g *Guard) checkReplay(principal string, nonce uint64, nowMs int64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	window := g.seen[principal]
	if window == nil {
		window = make(map[uint64]int64)
		g.seen[principal] = window
	}
	if _, dup := window[nonce]; dup {
		return ErrReplay
	}
	window[nonce] = nowMs + g.maxSkew.Milliseconds()
	// Periodic scavenge of expired nonces.
	if now := g.now(); now.Sub(g.lastScan) > g.maxSkew {
		g.lastScan = now
		for p, w := range g.seen {
			for n, exp := range w {
				if exp < nowMs {
					delete(w, n)
				}
			}
			if len(w) == 0 {
				delete(g.seen, p)
			}
		}
	}
	return nil
}

func macEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var diff byte
	for i := range a {
		diff |= a[i] ^ b[i]
	}
	return diff == 0
}

// timeSeed fills b with a random seed (not secret; only de-collides
// nonce sequences across restarts of the same principal).
func timeSeed(b []byte) (int, error) {
	return cryptoRead(b)
}

// principalKey is the context key carrying the authenticated principal.
type principalKey struct{}

// WithPrincipal records the authenticated principal in ctx.
func WithPrincipal(ctx context.Context, principal string) context.Context {
	return context.WithValue(ctx, principalKey{}, principal)
}

// PrincipalFrom extracts the authenticated principal, if any. Servants
// behind a guard use it for finer-grained decisions ("an application (or
// its guards) may choose to devolve some of the checking", §7.1).
func PrincipalFrom(ctx context.Context) (string, bool) {
	p, ok := ctx.Value(principalKey{}).(string)
	return p, ok
}

// deBytes interprets 8 bytes as a uint64.
func deBytes(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}
