// Package security implements the §7.1 security model.
//
// "Security in a distributed system is founded upon trusted encapsulation
// and the management of shared secrets between objects... Shared secrets
// provide the basis for authenticating interactions and achieving
// integrity and confidentiality."
//
// A client's Signer attaches a credential to each invocation: an
// HMAC-SHA256 over the principal, a fresh nonce, the operation and the
// marshalled arguments, keyed by the principal's shared secret. The
// server-side Guard — "for each interface of the object, a guard can be
// generated to police use of that interface... generated automatically
// from a declarative statement of security policy" — verifies the MAC,
// rejects replays, evaluates the policy and only then lets the
// invocation through to the servant. Optionally the Signer seals the
// arguments with AES-GCM under the same shared secret, giving
// confidentiality as well as integrity.
//
// As §7.1 observes, "an interface reference for accessing an object
// cannot itself be secure... therefore a secure object must check that
// any access is from a valid source" — possession of a reference grants
// nothing; only the credential does.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"odp/internal/wire"
)

// Errors returned by the security layer.
var (
	// ErrBadCredential reports a missing or malformed credential.
	ErrBadCredential = errors.New("security: bad credential")
	// ErrBadMAC reports an integrity failure.
	ErrBadMAC = errors.New("security: MAC verification failed")
	// ErrReplay reports a reused nonce.
	ErrReplay = errors.New("security: replayed credential")
	// ErrUnknownPrincipal reports a principal with no shared secret.
	ErrUnknownPrincipal = errors.New("security: unknown principal")
	// ErrForbidden reports a policy denial.
	ErrForbidden = errors.New("security: forbidden by policy")
	// ErrStale reports a credential outside the freshness window.
	ErrStale = errors.New("security: stale credential")
)

// Keyring holds shared secrets by principal name.
type Keyring struct {
	mu      sync.RWMutex
	secrets map[string][]byte
}

// NewKeyring creates an empty keyring.
func NewKeyring() *Keyring {
	return &Keyring{secrets: make(map[string][]byte)}
}

// Share installs (or rotates) the secret for principal.
func (k *Keyring) Share(principal string, secret []byte) {
	cp := make([]byte, len(secret))
	copy(cp, secret)
	k.mu.Lock()
	k.secrets[principal] = cp
	k.mu.Unlock()
}

// secret returns the principal's secret.
func (k *Keyring) secret(principal string) ([]byte, bool) {
	k.mu.RLock()
	defer k.mu.RUnlock()
	s, ok := k.secrets[principal]
	return s, ok
}

// credential is the wire form of an authenticated invocation's first
// argument.
type credential struct {
	principal string
	nonce     uint64
	unixMilli int64
	sealed    []byte // non-nil when the arguments travel encrypted
	mac       []byte
}

func encodeCredential(c credential) wire.Record {
	rec := wire.Record{
		"p":   c.principal,
		"n":   c.nonce,
		"t":   c.unixMilli,
		"mac": c.mac,
	}
	if c.sealed != nil {
		rec["sealed"] = c.sealed
	}
	return rec
}

func decodeCredential(v wire.Value) (credential, error) {
	rec, ok := v.(wire.Record)
	if !ok {
		return credential{}, fmt.Errorf("%w: first argument is %T", ErrBadCredential, v)
	}
	c := credential{}
	if c.principal, ok = rec["p"].(string); !ok {
		return credential{}, fmt.Errorf("%w: no principal", ErrBadCredential)
	}
	if c.nonce, ok = rec["n"].(uint64); !ok {
		return credential{}, fmt.Errorf("%w: no nonce", ErrBadCredential)
	}
	if c.unixMilli, ok = rec["t"].(int64); !ok {
		return credential{}, fmt.Errorf("%w: no timestamp", ErrBadCredential)
	}
	if c.mac, ok = rec["mac"].([]byte); !ok {
		return credential{}, fmt.Errorf("%w: no mac", ErrBadCredential)
	}
	c.sealed, _ = rec["sealed"].([]byte)
	return c, nil
}

// macOver computes the HMAC binding a credential to one invocation.
func macOver(secret []byte, principal string, nonce uint64, unixMilli int64, op string, payload []byte) []byte {
	mac := hmac.New(sha256.New, secret)
	var buf [8]byte
	_, _ = mac.Write([]byte(principal))
	binary.BigEndian.PutUint64(buf[:], nonce)
	_, _ = mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(unixMilli))
	_, _ = mac.Write(buf[:])
	_, _ = mac.Write([]byte(op))
	_, _ = mac.Write(payload)
	return mac.Sum(nil)
}

// sealKey derives the AES key from the shared secret.
func sealKey(secret []byte) []byte {
	sum := sha256.Sum256(append([]byte("odp-seal:"), secret...))
	return sum[:]
}

func seal(secret, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(sealKey(secret))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return gcm.Seal(nonce, nonce, plaintext, nil), nil
}

func unseal(secret, sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(sealKey(secret))
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, fmt.Errorf("%w: sealed payload too short", ErrBadCredential)
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMAC, err)
	}
	return pt, nil
}

// cryptoRead fills b from the system entropy source.
func cryptoRead(b []byte) (int, error) {
	return rand.Read(b)
}
