package security

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

// vault is a servant that records who accessed it.
type vault struct {
	mu       sync.Mutex
	contents string
	accesses []string
}

func (v *vault) Dispatch(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	who, _ := PrincipalFrom(ctx)
	v.accesses = append(v.accesses, who+":"+op)
	switch op {
	case "read":
		return "ok", []wire.Value{v.contents}, nil
	case "write":
		v.contents, _ = args[0].(string)
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("vault: no op %q", op)
	}
}

func (v *vault) contentsNow() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.contents
}

func (v *vault) accessesNow() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.accesses...)
}

type secEnv struct {
	t      *testing.T
	server *capsule.Capsule
	client *capsule.Capsule
	keys   *Keyring
	vault  *vault
	ref    wire.Ref
	guard  *Guard
}

func defaultPolicy() Policy {
	return Policy{Rules: []Rule{
		{Principal: "alice", Op: "*", Allow: true},
		{Principal: "bob", Op: "read", Allow: true},
	}}
}

func newSecEnv(t *testing.T, policy Policy) *secEnv {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	server := capsule.New("server", sep, codec)
	client := capsule.New("client", cep, codec)
	t.Cleanup(func() { _ = server.Close(); _ = client.Close() })

	keys := NewKeyring()
	keys.Share("alice", []byte("alice-secret"))
	keys.Share("bob", []byte("bob-secret"))

	v := &vault{contents: "initial"}
	guard := NewGuard(keys, policy, time.Minute)
	ref, err := server.Export(v,
		capsule.WithID("vault"),
		capsule.WithInterceptors(guard.AsInterceptor()))
	if err != nil {
		t.Fatal(err)
	}
	return &secEnv{t: t, server: server, client: client, keys: keys, vault: v, ref: ref, guard: guard}
}

func TestAuthenticatedInvoke(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	ctx := context.Background()
	outcome, _, err := alice.Invoke(ctx, e.client, e.ref, "write", []wire.Value{"new contents"})
	if err != nil || outcome != "ok" {
		t.Fatalf("write: %q %v", outcome, err)
	}
	outcome, res, err := alice.Invoke(ctx, e.client, e.ref, "read", nil)
	if err != nil || outcome != "ok" || res[0] != "new contents" {
		t.Fatalf("read: %q %v %v", outcome, res, err)
	}
	// The servant sees the authenticated principal.
	acc := e.vault.accessesNow()
	if len(acc) != 2 || acc[0] != "alice:write" {
		t.Fatalf("accesses %v", acc)
	}
}

func TestPolicyDenies(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	bob := NewSigner("bob", []byte("bob-secret"))
	ctx := context.Background()
	// bob may read...
	if outcome, _, err := bob.Invoke(ctx, e.client, e.ref, "read", nil); err != nil || outcome != "ok" {
		t.Fatalf("bob read: %q %v", outcome, err)
	}
	// ...but not write.
	_, _, err := bob.Invoke(ctx, e.client, e.ref, "write", []wire.Value{"graffiti"})
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("bob write: want ErrDenied, got %v", err)
	}
	if e.vault.contentsNow() != "initial" {
		t.Fatal("denied write mutated state")
	}
}

func TestUnauthenticatedRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	_, _, err := e.client.Invoke(context.Background(), e.ref, "read", nil)
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("bare invoke: want ErrDenied, got %v", err)
	}
	if len(e.vault.accessesNow()) != 0 {
		t.Fatal("unauthenticated invocation reached the servant")
	}
}

func TestWrongSecretRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	mallory := NewSigner("alice", []byte("guessed-secret"))
	_, _, err := mallory.Invoke(context.Background(), e.client, e.ref, "read", nil)
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("forged credential: want ErrDenied, got %v", err)
	}
}

func TestUnknownPrincipalRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	eve := NewSigner("eve", []byte("whatever"))
	_, _, err := eve.Invoke(context.Background(), e.client, e.ref, "read", nil)
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("unknown principal: want ErrDenied, got %v", err)
	}
}

func TestTamperedArgumentsRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	wrapped, err := alice.Wrap("write", []wire.Value{"honest value"})
	if err != nil {
		t.Fatal(err)
	}
	// A man in the middle swaps the argument after signing.
	wrapped[1] = "tampered value"
	_, _, err = e.client.Invoke(context.Background(), e.ref, "write", wrapped)
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("tampered args: want ErrDenied, got %v", err)
	}
	if e.vault.contentsNow() != "initial" {
		t.Fatal("tampered write applied")
	}
}

func TestCredentialBoundToOperation(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	wrapped, err := alice.Wrap("read", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Replaying a read credential against write must fail.
	_, _, err = e.client.Invoke(context.Background(), e.ref, "write", append(wrapped, "x"))
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("cross-op replay: want ErrDenied, got %v", err)
	}
}

func TestReplayRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	wrapped, err := alice.Wrap("read", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if outcome, _, err := e.client.Invoke(ctx, e.ref, "read", wrapped); err != nil || outcome != "ok" {
		t.Fatalf("first use: %q %v", outcome, err)
	}
	if _, _, err := e.client.Invoke(ctx, e.ref, "read", wrapped); !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("replay: want ErrDenied, got %v", err)
	}
	if e.guard.Stats().Replays != 1 {
		t.Fatalf("replay count %d", e.guard.Stats().Replays)
	}
}

func TestStaleCredentialRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	alice.now = func() time.Time { return time.Now().Add(-10 * time.Minute) }
	_, _, err := alice.Invoke(context.Background(), e.client, e.ref, "read", nil)
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("stale credential: want ErrDenied, got %v", err)
	}
}

func TestSealedInvocationConfidentialAndWorking(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	alice.Seal = true
	ctx := context.Background()
	secretValue := "the launch codes"
	outcome, _, err := alice.Invoke(ctx, e.client, e.ref, "write", []wire.Value{secretValue})
	if err != nil || outcome != "ok" {
		t.Fatalf("sealed write: %q %v", outcome, err)
	}
	if e.vault.contentsNow() != secretValue {
		t.Fatalf("sealed write lost: %q", e.vault.contentsNow())
	}
	// The wire form must not contain the plaintext.
	wrapped, err := alice.Wrap("write", []wire.Value{secretValue})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := wire.EncodeAll(codec, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if containsSub(enc, []byte(secretValue)) {
		t.Fatal("sealed payload leaks plaintext")
	}
}

func TestSealedTamperRejected(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	alice.Seal = true
	wrapped, err := alice.Wrap("write", []wire.Value{"x"})
	if err != nil {
		t.Fatal(err)
	}
	rec := wrapped[0].(wire.Record)
	sealed := rec["sealed"].([]byte)
	sealed[len(sealed)-1] ^= 0xff
	_, _, err = e.client.Invoke(context.Background(), e.ref, "write", wrapped)
	if !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("tampered sealed payload: want ErrDenied, got %v", err)
	}
}

func TestPolicyEvaluationOrder(t *testing.T) {
	p := Policy{Rules: []Rule{
		{Principal: "alice", Op: "shutdown", Allow: false},
		{Principal: "alice", Op: "*", Allow: true},
		{Principal: "*", Op: "ping", Allow: true},
	}}
	tests := []struct {
		principal, op string
		want          bool
	}{
		{"alice", "shutdown", false},
		{"alice", "read", true},
		{"bob", "ping", true},
		{"bob", "read", false},
		{"eve", "shutdown", false},
	}
	for _, tt := range tests {
		if got := p.Allows(tt.principal, tt.op); got != tt.want {
			t.Errorf("Allows(%s, %s) = %v, want %v", tt.principal, tt.op, got, tt.want)
		}
	}
}

func TestGuardStats(t *testing.T) {
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := alice.Invoke(ctx, e.client, e.ref, "read", nil); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _ = e.client.Invoke(ctx, e.ref, "read", nil) // rejected
	st := e.guard.Stats()
	if st.Admitted != 3 || st.Rejected != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func containsSub(haystack, needle []byte) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func TestSignedAnnouncementAdmitted(t *testing.T) {
	// Announcements carry credentials too: the guard polices them even
	// though no reply can report a refusal (§5.1/§7.1 interplay).
	e := newSecEnv(t, defaultPolicy())
	alice := NewSigner("alice", []byte("alice-secret"))
	wrapped, err := alice.Wrap("write", []wire.Value{"announced"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.client.Announce(e.ref, "write", wrapped); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for e.vault.contentsNow() != "announced" {
		select {
		case <-deadline:
			t.Fatalf("signed announcement never applied: %q", e.vault.contentsNow())
		case <-time.After(5 * time.Millisecond):
		}
	}
	// An unsigned announcement is silently dropped by the guard.
	if err := e.client.Announce(e.ref, "write", []wire.Value{"rogue"}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if e.vault.contentsNow() == "rogue" {
		t.Fatal("unsigned announcement applied")
	}
}
