package core

import (
	"context"
	"fmt"
	"time"

	"odp/internal/capsule"
	"odp/internal/group"
	"odp/internal/mgmt"
	"odp/internal/migrate"
	"odp/internal/security"
	"odp/internal/txn"
	"odp/internal/types"
	"odp/internal/wire"
)

// Env is the declarative environment constraint set of an interface
// (§4.4): "if the application does have specific environmental
// constraints, such as dependability or performance guarantees, these can
// be specified declaratively. The application does not have to be bound
// to a specific transparency mechanism." Each non-nil field selects a
// transparency; access and location transparency are always provided.
type Env struct {
	// Atomic requests concurrency transparency: the interface becomes a
	// transactional resource under generated concurrency control (§5.2).
	Atomic *AtomicSpec
	// Secured requests a generated guard (§7.1).
	Secured *SecureSpec
	// Recoverable requests failure transparency: checkpoint plus
	// interaction log (§5.5).
	Recoverable *RecoverSpec
	// Movable requests migration/resource transparency: the object can
	// be migrated and passivated (§5.5). Implied by Recoverable.
	Movable bool
	// Leased requests distributed-garbage-collection tracking (§7.3).
	Leased *LeaseSpec
	// Managed requests management instrumentation (§7.4).
	Managed *ManagedSpec
}

// AtomicSpec configures concurrency transparency.
type AtomicSpec struct {
	// Separation lists the read-only (shared-lock) operations; all
	// others interfere (§5.2 separation constraints).
	Separation txn.Separation
	// Order is the optional consistency predicate (§5.2).
	Order txn.OrderPredicate
	// Durable persists prepared/committed state in the platform store.
	Durable bool
}

// SecureSpec configures the generated guard.
type SecureSpec struct {
	// Policy is the declarative access policy.
	Policy security.Policy
	// MaxSkew bounds credential age (default 30s).
	MaxSkew time.Duration
}

// RecoverSpec configures failure transparency.
type RecoverSpec struct {
	// ReadOnly lists operations the interaction log may skip.
	ReadOnly map[string]bool
}

// LeaseSpec configures collection tracking.
type LeaseSpec struct {
	// OnCollect runs when the object is reclaimed (optional).
	OnCollect func(id string)
}

// ManagedSpec configures instrumentation.
type ManagedSpec struct {
	// MetricPrefix names the object's metrics (default: the object id).
	MetricPrefix string
}

// Object is a computational-model object: behaviour, signature and
// environment constraints.
type Object struct {
	// Servant is the behaviour.
	Servant capsule.Servant
	// Type is the interface signature (optional but recommended: it
	// enables early type checking and trading).
	Type types.Type
	// Env declares the required transparencies.
	Env Env
}

// Publish weaves the object's environment constraints into an access
// path and exports the interface under id. This is the §4.5 automated
// transformation: "transparency requirements can be processed
// automatically by editing the code generated when programs are compiled
// to add the extra functionality needed to achieve transparency."
func (p *Platform) Publish(id string, obj Object) (wire.Ref, error) {
	env := obj.Env
	if env.Atomic != nil && env.Recoverable != nil {
		// The transactional resource already owns durability and
		// versioning; stacking a second log would replay doubly.
		return wire.Ref{}, fmt.Errorf("%w: Atomic already subsumes Recoverable durability (use AtomicSpec.Durable)", ErrEnvConflict)
	}

	// Innermost first: behaviour, then concurrency control.
	servant := obj.Servant
	if env.Atomic != nil {
		var resOpts []txn.ResourceOption
		resOpts = append(resOpts, txn.WithSeparation(env.Atomic.Separation))
		if env.Atomic.Order != nil {
			resOpts = append(resOpts, txn.WithOrderPredicate(env.Atomic.Order))
		}
		if env.Atomic.Durable {
			resOpts = append(resOpts, txn.WithDurability(p.Store))
		}
		res, err := txn.NewResource(id, servant, p.Locks, resOpts...)
		if err != nil {
			return wire.Ref{}, fmt.Errorf("%w: %v", ErrNeedsSnapshot, err)
		}
		servant = res
	}

	// Interceptors, outermost first: instrumentation sees everything,
	// the guard rejects before any mechanism runs, lease tracking counts
	// only admitted traffic.
	var chain []capsule.Interceptor
	if env.Managed != nil {
		prefix := env.Managed.MetricPrefix
		if prefix == "" {
			prefix = id
		}
		chain = append(chain, mgmt.Instrument(p.Registry, prefix))
	}
	if env.Secured != nil {
		guard := security.NewGuard(p.Keys, env.Secured.Policy, env.Secured.MaxSkew)
		chain = append(chain, guard.AsInterceptor())
	}
	if env.Leased != nil {
		chain = append(chain, p.Collector.Track(id, env.Leased.OnCollect))
	}

	if obj.Type.Name != "" {
		if err := p.Types.Register(obj.Type); err != nil {
			return wire.Ref{}, err
		}
	}

	// Movable/recoverable objects export through the migration host so
	// the quiescing gate (and recovery log) sit on the access path.
	if env.Recoverable != nil || env.Movable {
		mov, ok := servant.(migrate.Servant)
		if !ok {
			return wire.Ref{}, fmt.Errorf("%w: movable/recoverable objects must snapshot", ErrNeedsSnapshot)
		}
		mopts := []migrate.ExportOption{migrate.WithExtraInterceptors(chain...)}
		if obj.Type.Name != "" {
			mopts = append(mopts, migrate.WithType(obj.Type))
		}
		if env.Recoverable != nil {
			mopts = append(mopts, migrate.WithRecoveryLog(env.Recoverable.ReadOnly))
		}
		return p.Mover.Export(id, mov, mopts...)
	}

	copts := []capsule.ExportOption{capsule.WithID(id)}
	if obj.Type.Name != "" {
		copts = append(copts, capsule.WithType(obj.Type))
	}
	if len(chain) > 0 {
		copts = append(copts, capsule.WithInterceptors(chain...))
	}
	return p.Capsule.Export(servant, copts...)
}

// ReplicaSpec configures replication transparency (§5.3).
type ReplicaSpec struct {
	// GroupID names the replica group.
	GroupID string
	// Mode selects active replication or hot standby.
	Mode group.Mode
	// HeartbeatInterval / FailureTimeout tune failure detection.
	HeartbeatInterval time.Duration
	FailureTimeout    time.Duration
}

// Replicated is a published replica group.
type Replicated struct {
	// Members are the per-platform group members, in platform order.
	Members []*group.Member
}

// Ref returns the group reference — to clients, an ordinary singleton
// interface reference with several access paths.
func (r *Replicated) Ref() wire.Ref {
	return r.Members[0].GroupRef()
}

// Stop halts all members.
func (r *Replicated) Stop() {
	for _, m := range r.Members {
		m.Stop()
	}
}

// PublishReplicated weaves replication transparency: one replica per
// platform, joined into an ordered group. factory must produce an
// independent servant per platform (replicas share no memory). The first
// platform bootstraps; the rest join.
func PublishReplicated(platforms []*Platform, spec ReplicaSpec, factory func() capsule.Servant) (*Replicated, error) {
	if len(platforms) == 0 {
		return nil, fmt.Errorf("core: no platforms for replica group")
	}
	r := &Replicated{}
	for i, p := range platforms {
		// Each member's failure detector runs on its own platform's clock,
		// so a virtual-time simulation drives heartbeats too.
		cfg := group.Config{
			GroupID:           spec.GroupID,
			Mode:              spec.Mode,
			HeartbeatInterval: spec.HeartbeatInterval,
			FailureTimeout:    spec.FailureTimeout,
			Clock:             p.clk,
		}
		m, err := group.NewMember(p.Capsule, factory(), cfg)
		if err != nil {
			r.Stop()
			return nil, err
		}
		if i == 0 {
			m.Bootstrap()
		} else if err := m.Join(context.Background(), r.Members[0].GroupRef()); err != nil {
			r.Stop()
			return nil, err
		}
		r.Members = append(r.Members, m)
		// Join the unified introspection namespace: group counters fold
		// into each hosting platform's Gather alongside rpc/binder/gc.
		member, prefix := m, "group."+spec.GroupID
		p.AddStatsSource(func(rec wire.Record) {
			rec[prefix+".executed"] = member.Executed()
			rec[prefix+".promotions"] = member.Promotions()
		})
	}
	for _, m := range r.Members {
		m.Start()
	}
	return r, nil
}
