package core

import "odp/internal/wire"

// GatherDomains folds the Gather snapshots of many platforms into one
// per-domain record: every numeric key of a platform tagged WithDomain
// is summed into "domain.<name>.<key>", and "domain.<name>.platforms"
// counts the nodes. A federation-swarm experiment asks each domain one
// question — how much trading, how much traffic, how many collections —
// and this is the rollup that answers it without 1,000 separate records.
// Untagged platforms are skipped; non-numeric values (the "domain" tag
// itself, codec names) don't sum and are dropped.
func GatherDomains(platforms ...*Platform) wire.Record {
	out := wire.Record{}
	for _, p := range platforms {
		dom := p.Domain()
		if dom == "" {
			continue
		}
		prefix := "domain." + dom + "."
		out[prefix+"platforms"] = addNumeric(out[prefix+"platforms"], uint64(1))
		for k, v := range p.Gather() {
			if _, ok := numeric(v); !ok {
				continue
			}
			key := prefix + k
			out[key] = addNumeric(out[key], v)
		}
	}
	return out
}

// numeric widens a Gather value to uint64 when it is a countable number.
// Gather records carry uint64 (obs.Fold), int64 (registry counters) and
// the occasional int; floats don't appear and negatives mean a bug, so
// both report non-numeric rather than wrapping.
func numeric(v interface{}) (uint64, bool) {
	switch n := v.(type) {
	case uint64:
		return n, true
	case int64:
		if n < 0 {
			return 0, false
		}
		return uint64(n), true
	case int:
		if n < 0 {
			return 0, false
		}
		return uint64(n), true
	}
	return 0, false
}

// addNumeric sums v into an accumulator that may not exist yet.
func addNumeric(acc, v interface{}) uint64 {
	a, _ := numeric(acc)
	b, _ := numeric(v)
	return a + b
}
