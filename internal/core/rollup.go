package core

import (
	"strings"

	"odp/internal/obs"
	"odp/internal/wire"
)

// GatherDomains folds the Gather snapshots of many platforms into one
// per-domain record: every numeric key of a platform tagged WithDomain
// is summed into "domain.<name>.<key>", and "domain.<name>.platforms"
// counts the nodes. A federation-swarm experiment asks each domain one
// question — how much trading, how much traffic, how many collections —
// and this is the rollup that answers it without 1,000 separate records.
// Untagged platforms are skipped; non-numeric values (the "domain" tag
// itself, codec names) don't sum and are dropped.
//
// Sums keep the widest kind seen: all-unsigned counters stay uint64,
// a signed negative anywhere makes the sum int64, and any float64
// operand (registry gauges, derived quantiles) makes it float64 —
// nothing truncates silently. Latency quantile keys (*_p50/_p90/_p99)
// are then recomputed from the domain-summed "_hist." buckets, because
// the p99 of a domain is a property of the merged distribution, not the
// sum of its members' p99s.
func GatherDomains(platforms ...*Platform) wire.Record {
	out := wire.Record{}
	for _, p := range platforms {
		dom := p.Domain()
		if dom == "" {
			continue
		}
		prefix := "domain." + dom + "."
		out[prefix+"platforms"] = addNumeric(out[prefix+"platforms"], uint64(1))
		for k, v := range p.Gather() {
			if _, ok := numeric(v); !ok {
				continue
			}
			if domainQuantileKey(k) {
				continue // recomputed from the merged buckets below
			}
			key := prefix + k
			out[key] = addNumeric(out[key], v)
		}
	}
	for base, s := range obs.HistogramKeys(out) {
		out[base+"_p50"] = s.Quantile(0.50)
		out[base+"_p90"] = s.Quantile(0.90)
		out[base+"_p99"] = s.Quantile(0.99)
	}
	return out
}

// numeric normalises a Gather value to one of the three summable kinds —
// uint64, int64 or float64 — reporting false for everything else.
// Negative integers and floats are legitimate (deltas, gauges,
// quantiles); rejecting or wrapping them would silently corrupt rollups.
func numeric(v wire.Value) (wire.Value, bool) {
	switch n := v.(type) {
	case uint64:
		return n, true
	case int64:
		return n, true
	case int:
		return int64(n), true
	case float64:
		return n, true
	}
	return nil, false
}

// addNumeric sums v into an accumulator that may not exist yet,
// promoting the result to the widest kind involved: uint64 while both
// sides are unsigned, int64 once a signed value appears, float64 once a
// float does. Promotion never narrows back, so one negative or
// fractional sample keeps the key honest for the rest of the fold.
func addNumeric(acc, v wire.Value) wire.Value {
	a, aok := numeric(acc)
	b, bok := numeric(v)
	if !aok {
		a = uint64(0)
	}
	if !bok {
		b = uint64(0)
	}
	if af, ok := a.(float64); ok {
		return af + toFloat(b)
	}
	if bf, ok := b.(float64); ok {
		return toFloat(a) + bf
	}
	if au, ok := a.(uint64); ok {
		if bu, ok := b.(uint64); ok {
			return au + bu
		}
	}
	return toSigned(a) + toSigned(b)
}

// toFloat widens an already-normalised numeric to float64.
func toFloat(v wire.Value) float64 {
	switch n := v.(type) {
	case uint64:
		return float64(n)
	case int64:
		return float64(n)
	case float64:
		return n
	}
	return 0
}

// toSigned widens an already-normalised integer to int64.
func toSigned(v wire.Value) int64 {
	switch n := v.(type) {
	case uint64:
		return int64(n)
	case int64:
		return n
	}
	return 0
}

// domainQuantileKey reports whether key is a derived quantile: the
// rollup recomputes those from merged buckets instead of summing them.
func domainQuantileKey(key string) bool {
	return strings.HasSuffix(key, "_p50") ||
		strings.HasSuffix(key, "_p90") ||
		strings.HasSuffix(key, "_p99")
}
