// Package core implements the paper's primary contribution: the ODP
// computational model (§4.4) and the engineering-model transparency
// weaver (§4.5).
//
// The computational model is deliberately minimal: state is reached only
// through references to ADT interfaces; interaction is interrogation or
// announcement; arguments and results are values or references. An
// application declares the qualities it needs from its environment as an
// Env — environment constraints, in the paper's words — "rather than
// mixing application code with calls to low-level system procedures".
//
// The weaver (Publish) is the automated tool of §4.5: it reads the Env
// and links the corresponding transparency mechanisms into the access
// path of the exported interface — a guard for security, a generated
// concurrency-control manager for atomicity, an interaction log for
// recoverability, lease tracking for collection, instrumentation for
// management — so that "transparency requirements can be processed
// automatically". Transparency is selective: an empty Env weaves
// nothing and costs nothing (experiment E15).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/gc"
	"odp/internal/mgmt"
	"odp/internal/migrate"
	"odp/internal/naming"
	"odp/internal/obs"
	"odp/internal/rpc"
	"odp/internal/security"
	"odp/internal/storage"
	"odp/internal/trader"
	"odp/internal/transport"
	"odp/internal/txn"
	"odp/internal/types"
	"odp/internal/wire"
)

// Platform bundles one capsule with every engineering-model service the
// weaver may need: the node a programmer gets by joining an ODP system.
type Platform struct {
	// Capsule is the underlying execution capsule.
	Capsule *capsule.Capsule
	// Store is the node's stable storage.
	Store storage.Store
	// Locks is the node's shared concurrency-control manager.
	Locks *txn.LockManager
	// Registry gathers management metrics.
	Registry *mgmt.Registry
	// Agent is the node's management interface.
	Agent *mgmt.Agent
	// Collector is the node's garbage collector.
	Collector *gc.Collector
	// Mover is the node's migration/passivation/recovery host.
	Mover *migrate.Host
	// Keys holds the node's shared secrets.
	Keys *security.Keyring
	// Types is the node's type manager.
	Types *types.Manager
	// Trader is non-nil when this node hosts a trading service.
	Trader *trader.Trader
	// Coordinator begins distributed transactions from this node.
	Coordinator *txn.Coordinator

	// RelocTable is non-nil when this node hosts the relocation service.
	RelocTable *naming.Table
	// RelocRef locates the relocation service (local or remote).
	RelocRef wire.Ref

	binder *naming.Binder
	// coalescer is non-nil when WithBatching wrapped the endpoint; the
	// platform owns it and Close drains it.
	coalescer *transport.Coalescer
	// recorder is non-nil when WithRecorder (or WithFlightRecorder)
	// enabled periodic Gather sampling; the platform owns it and Close
	// stops it.
	recorder *obs.Recorder
	// flight is non-nil when WithFlightRecorder armed SLO rules against
	// the recorder.
	flight *obs.FlightRecorder
	// clk is the platform-wide time source (clock.Real{} unless WithClock
	// injected one).
	clk clock.Clock
	// obs is non-nil when WithTracing installed a span collector; it is
	// shared by the binder, capsule, protocol peer and coalescer.
	obs *obs.Collector
	// domain is the administrative-domain tag set by WithDomain; empty
	// for untagged nodes.
	domain string
	// statsSources are extra contributors to Gather registered after
	// construction (replica-group members, application subsystems).
	srcMu        sync.Mutex
	statsSources []func(wire.Record)
}

// platformConfig collects construction options.
type platformConfig struct {
	codec         wire.Codec
	store         storage.Store
	lockWait      time.Duration
	gcGrace       time.Duration
	relocator     wire.Ref
	hostRelocator bool
	traderContext string
	traderOpts    []trader.TraderOption
	capsuleOpts   []capsule.Option
	batching      bool
	batchOpts     []transport.CoalescerOption
	clk           clock.Clock
	tracing       bool
	obsOpts       []obs.CollectorOption
	domain        string
	recInterval   time.Duration
	recOpts       []obs.RecorderOption
	sloRules      []obs.Rule
	flightOpts    []obs.FlightOption
}

// Option configures NewPlatform.
type Option func(*platformConfig)

// WithCodec selects the node's network data representation (default
// binary).
func WithCodec(c wire.Codec) Option {
	return func(cfg *platformConfig) { cfg.codec = c }
}

// WithStore supplies stable storage (default in-memory).
func WithStore(s storage.Store) Option {
	return func(cfg *platformConfig) { cfg.store = s }
}

// WithRelocator points the node at an existing relocation service. The
// default hosts one locally.
func WithRelocator(ref wire.Ref) Option {
	return func(cfg *platformConfig) { cfg.relocator = ref; cfg.hostRelocator = false }
}

// WithTrader hosts a trading service on this node under the given
// federation context name.
func WithTrader(contextName string) Option {
	return func(cfg *platformConfig) { cfg.traderContext = contextName }
}

// WithTraderSnapshotPolicy relaxes the trader's snapshot freshness: an
// import may serve a shard snapshot up to maxStaleness old as long as
// fewer than maxPending writes landed since it was built, instead of
// rebuilding on the first read after every write. Suits high-churn
// offer populations where bounded advertisement lag is acceptable.
func WithTraderSnapshotPolicy(maxStaleness time.Duration, maxPending int) Option {
	return func(cfg *platformConfig) {
		cfg.traderOpts = append(cfg.traderOpts,
			trader.WithSnapshotPolicy(maxStaleness, maxPending))
	}
}

// WithTraderFederationQoS sets the per-hop QoS base for federated trader
// imports: each link traversal gets q.Timeout scaled by its remaining
// hop budget (so hops near the importer outlive their downstream chain)
// and retransmits at q.Retransmit. Swarm simulations tighten this so a
// partitioned domain costs milliseconds of virtual time, not the default
// invocation timeout.
func WithTraderFederationQoS(q rpc.QoS) Option {
	return func(cfg *platformConfig) {
		cfg.traderOpts = append(cfg.traderOpts, trader.WithFederationQoS(q))
	}
}

// WithLockWait bounds transactional lock waits.
func WithLockWait(d time.Duration) Option {
	return func(cfg *platformConfig) { cfg.lockWait = d }
}

// WithGCGrace sets the collector's activity grace window.
func WithGCGrace(d time.Duration) Option {
	return func(cfg *platformConfig) { cfg.gcGrace = d }
}

// WithDomain tags the node with the administrative domain it belongs to
// (the paper's §6 federation domains). The tag rides in Gather under
// "domain" and keys the per-domain rollups of GatherDomains.
func WithDomain(name string) Option {
	return func(cfg *platformConfig) { cfg.domain = name }
}

// WithClock drives every time-dependent subsystem of the node — RPC
// timeouts and retransmission, reply-cache lifecycle, lock-wait bounds,
// lease expiry, management timestamps, replica-group failure detection —
// from one injected clock. With a clock.Fake shared across nodes and the
// netsim fabric, the whole platform runs in virtual time (the sim
// harness). Default clock.Real{}.
func WithClock(c clock.Clock) Option {
	return func(cfg *platformConfig) { cfg.clk = c }
}

// WithAdmission enables per-client token-bucket admission control on
// the node's server dispatch path: inbound invocations beyond a
// client's budget are shed with rpc.ErrServerBusy (and over-budget
// announcements dropped) instead of queueing without bound. Admission
// is a node-level property of the server's environment, not a
// per-object Env constraint — the budget is per *client*, spanning
// every interface the node hosts. Clients opt into automatic backoff
// per invocation with capsule.WithBusyRetry. Rejects surface in Gather
// as rpc.server.admission_rejects / admission_drops.
func WithAdmission(cfg rpc.AdmissionConfig) Option {
	return func(pc *platformConfig) {
		pc.capsuleOpts = append(pc.capsuleOpts, capsule.WithAdmission(cfg))
	}
}

// WithCapsuleOptions forwards options to the underlying capsule.
func WithCapsuleOptions(opts ...capsule.Option) Option {
	return func(cfg *platformConfig) { cfg.capsuleOpts = append(cfg.capsuleOpts, opts...) }
}

// WithBatching wraps the node's endpoint in a write coalescer
// (transport.Coalescer): frames that concurrent invocations address to
// the same destination pack into single BATCH datagrams, amortising
// per-packet channel overhead. Batching is negotiated in-band, so a
// batching node interoperates transparently with plain ones. The
// platform owns the wrapper; Close flushes and closes it (and with it
// the endpoint).
func WithBatching(opts ...transport.CoalescerOption) Option {
	return func(cfg *platformConfig) {
		cfg.batching = true
		cfg.batchOpts = append(cfg.batchOpts, opts...)
	}
}

// WithTracing installs a channel-level span collector (see obs): the
// binder roots invocation traces, and the capsule, protocol peer and
// coalescer record the spans of every channel object an invocation
// traverses. The collector shares the platform clock, so a simulated
// node produces virtual-time spans. Collection is off until sampling is
// enabled — pass obs.WithSampleEvery (or retune at run time through the
// management parameter "obs.sample_every"); unsampled invocations cost
// nothing measurable (0 added allocations, gated by test).
func WithTracing(opts ...obs.CollectorOption) Option {
	return func(cfg *platformConfig) {
		cfg.tracing = true
		cfg.obsOpts = append(cfg.obsOpts, opts...)
	}
}

// WithRecorder enables the metrics time series: a clock-driven recorder
// samples the node's Gather snapshot every interval into a bounded ring
// (obs.Recorder), from which the management "series" op derives rates —
// invocations_per_sec, admission_rejects_per_sec — that a single
// snapshot cannot answer. On a simulated node the recorder runs in
// virtual time. interval <= 0 means the recorder default (one second).
func WithRecorder(interval time.Duration, opts ...obs.RecorderOption) Option {
	return func(cfg *platformConfig) {
		cfg.recInterval = interval
		cfg.recOpts = append(cfg.recOpts, opts...)
	}
}

// WithFlightRecorder arms service-level objectives (obs.CeilingRule,
// obs.StallRule) against the node's recorder samples: on a breach the
// flight recorder captures a black-box report — triggering rule, the
// breaching window's counter deltas, the last spans — into a bounded
// ring served by the management "blackbox" op. Implies WithRecorder;
// pass that too to choose the sampling interval.
func WithFlightRecorder(rules ...obs.Rule) Option {
	return func(cfg *platformConfig) { cfg.sloRules = append(cfg.sloRules, rules...) }
}

// WithFlightOptions forwards options (ring depth, span limit) to the
// flight recorder.
func WithFlightOptions(opts ...obs.FlightOption) Option {
	return func(cfg *platformConfig) { cfg.flightOpts = append(cfg.flightOpts, opts...) }
}

// NewPlatform assembles a node on ep.
func NewPlatform(name string, ep transport.Endpoint, opts ...Option) (*Platform, error) {
	cfg := platformConfig{
		codec:         wire.BinaryCodec{},
		hostRelocator: true,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.store == nil {
		cfg.store = storage.NewMemStore()
	}
	injected := cfg.clk != nil
	if !injected {
		cfg.clk = clock.Real{}
	}

	var lockOpts []txn.LockManagerOption
	var gcOpts []gc.CollectorOption
	if injected {
		lockOpts = append(lockOpts, txn.WithLockClock(cfg.clk))
		gcOpts = append(gcOpts, gc.WithCollectorClock(cfg.clk))
		cfg.capsuleOpts = append(cfg.capsuleOpts, capsule.WithClock(cfg.clk))
	}
	p := &Platform{
		Store:    cfg.store,
		Locks:    txn.NewLockManager(cfg.lockWait, lockOpts...),
		Registry: mgmt.NewRegistry(0),
		Keys:     security.NewKeyring(),
		Types:    types.NewManager(),
		clk:      cfg.clk,
		domain:   cfg.domain,
	}
	if injected {
		p.Registry.SetClock(cfg.clk)
	}
	if cfg.tracing {
		// Options after the clock so the caller may override it; the node
		// name keys the deterministic span-id base.
		oopts := append([]obs.CollectorOption{obs.WithCollectorClock(cfg.clk)}, cfg.obsOpts...)
		p.obs = obs.NewCollector(name, oopts...)
		cfg.capsuleOpts = append(cfg.capsuleOpts, capsule.WithObserver(p.obs))
		cfg.batchOpts = append(cfg.batchOpts, transport.WithCoalescerObserver(p.obs))
	}
	if cfg.batching {
		if _, bin := cfg.codec.(wire.BinaryCodec); bin {
			// With the default binary codec the node can accept packed
			// (ansa-packed/1) bodies, so advertise that in its HELLOs;
			// peers then upgrade their invocations per-call. A node with
			// an explicitly chosen codec (text, for debugging) does not
			// advertise, and nobody sends it packed frames.
			cfg.batchOpts = append(cfg.batchOpts,
				transport.WithCapabilities(transport.CapPacked))
		}
		p.coalescer = transport.NewCoalescer(ep, cfg.batchOpts...)
		ep = p.coalescer
	}
	p.Capsule = capsule.New(name, ep, cfg.codec, cfg.capsuleOpts...)
	p.Coordinator = txn.NewCoordinator(p.Capsule, cfg.store)

	var err error
	if p.Agent, err = mgmt.NewAgent(p.Capsule, p.Registry); err != nil {
		return nil, fmt.Errorf("core: management agent: %w", err)
	}
	if p.Collector, err = gc.New(p.Capsule, cfg.gcGrace, gcOpts...); err != nil {
		return nil, fmt.Errorf("core: collector: %w", err)
	}
	if cfg.hostRelocator {
		table, ref, err := naming.ExportRelocator(p.Capsule)
		if err != nil {
			return nil, fmt.Errorf("core: relocator: %w", err)
		}
		p.RelocTable = table
		p.RelocRef = ref
	} else {
		p.RelocRef = cfg.relocator
	}
	var registrar migrate.Registrar
	if p.RelocTable != nil {
		registrar = p.RelocTable
	} else {
		registrar = &remoteRegistrar{p: p}
	}
	if p.Mover, err = migrate.NewHost(p.Capsule, cfg.store, registrar); err != nil {
		return nil, fmt.Errorf("core: migration host: %w", err)
	}
	if cfg.traderContext != "" {
		topts := append([]trader.TraderOption{trader.WithTraderClock(cfg.clk)}, cfg.traderOpts...)
		if p.Trader, err = trader.New(cfg.traderContext, p.Capsule, p.Types, topts...); err != nil {
			return nil, fmt.Errorf("core: trader: %w", err)
		}
		// The trader joins the unified Gather namespace like any other
		// subsystem: per-shard offer counts, snapshot freshness and
		// import counters land under "trader." for odptop.
		tr := p.Trader
		p.AddStatsSource(func(rec wire.Record) {
			obs.Fold(rec, "trader", tr.Stats())
			obs.FoldLatency(rec, "trader.import", tr.ImportLatency())
		})
	}
	bopts := []naming.BinderOption{naming.WithBinderClock(cfg.clk)}
	if p.obs != nil {
		bopts = append(bopts, naming.WithBinderObserver(p.obs))
	}
	p.binder = naming.NewBinder(p.Capsule, p.RelocRef, bopts...)

	// The management interface serves the unified snapshot on every node
	// and, on tracing nodes, the span ring plus the sampling knob.
	p.Agent.SetGather(p.Gather)
	if p.obs != nil {
		col := p.obs
		p.Agent.SetSpans(func() wire.List { return obs.SpansToList(col.Snapshot()) })
		p.Agent.RegisterParam("obs.sample_every", mgmt.Param{
			Get: func() wire.Value { return col.SampleEvery() },
			Set: func(v wire.Value) error {
				switch n := v.(type) {
				case uint64:
					col.SetSampleEvery(n)
				case int64:
					if n < 0 {
						return fmt.Errorf("core: obs.sample_every must be >= 0, got %d", n)
					}
					col.SetSampleEvery(uint64(n))
				default:
					return fmt.Errorf("core: obs.sample_every wants an integer, got %T", v)
				}
				return nil
			},
		})
	}

	// The recorder samples Gather, so it starts last: every subsystem it
	// will snapshot is already assembled, and the flight recorder's hook
	// is attached before the first sample can fire.
	if cfg.recInterval > 0 || len(cfg.sloRules) > 0 {
		ropts := append([]obs.RecorderOption{obs.WithRecorderClock(cfg.clk)}, cfg.recOpts...)
		p.recorder = obs.NewRecorder(p.Gather, cfg.recInterval, ropts...)
		if len(cfg.sloRules) > 0 {
			p.flight = obs.NewFlightRecorder(p.recorder, p.obs, cfg.sloRules, cfg.flightOpts...)
			fl := p.flight
			p.Agent.SetBlackbox(fl.ReportsList)
		}
		rec := p.recorder
		p.Agent.SetSeries(rec.Series)
		p.recorder.Start()
	}
	return p, nil
}

// Observer returns the platform's span collector, nil unless the node
// was built WithTracing.
func (p *Platform) Observer() *obs.Collector { return p.obs }

// Recorder returns the platform's metrics recorder, nil unless the node
// was built WithRecorder or WithFlightRecorder.
func (p *Platform) Recorder() *obs.Recorder { return p.recorder }

// Flight returns the platform's flight recorder, nil unless the node
// was built WithFlightRecorder.
func (p *Platform) Flight() *obs.FlightRecorder { return p.flight }

// Domain reports the administrative-domain tag set by WithDomain, empty
// for untagged nodes.
func (p *Platform) Domain() string { return p.domain }

// AddStatsSource registers an extra contributor to Gather: fn is called
// with the record under assembly and may add any keys. Infrastructure
// built on top of the platform (replica groups, application services)
// uses this to join the unified namespace.
func (p *Platform) AddStatsSource(fn func(wire.Record)) {
	p.srcMu.Lock()
	p.statsSources = append(p.statsSources, fn)
	p.srcMu.Unlock()
}

// Gather folds every subsystem's counters into one wire record: the
// unified introspection snapshot served by the management interface's
// "gather" op. Registry counters and gauges keep their "c."/"g."
// prefixes under "registry."; everything else is named
// <subsystem>.<snake_case_field> by obs.Fold.
func (p *Platform) Gather() wire.Record {
	rec := wire.Record{}
	if p.domain != "" {
		rec["domain"] = p.domain
	}
	obs.Fold(rec, "rpc.client", p.Capsule.Client().Stats())
	obs.Fold(rec, "rpc.server", p.Capsule.ServerStats())
	obs.Fold(rec, "binder", p.binder.Stats())
	obs.FoldLatency(rec, "rpc.client.call", p.Capsule.Client().CallLatency())
	obs.FoldLatency(rec, "rpc.server.dispatch", p.Capsule.DispatchLatency())
	obs.FoldLatency(rec, "capsule.bypass", p.Capsule.BypassLatency())
	obs.FoldLatency(rec, "binder.resolve", p.binder.ResolveLatency())
	if cs, ok := p.BatchStats(); ok {
		obs.Fold(rec, "transport.coalescer", cs)
		obs.FoldLatency(rec, "transport.coalescer.flush_delay", p.coalescer.FlushDelay())
	}
	rec["gc.collected"] = p.Collector.Collected()
	rec["gc.renewals"] = p.Collector.Renewals()
	if p.obs != nil {
		obs.Fold(rec, "obs", p.obs.Stats())
	}
	if p.flight != nil {
		obs.Fold(rec, "blackbox", p.flight.Stats())
	}
	for k, v := range p.Registry.Snapshot() {
		rec["registry."+k] = v
	}
	p.srcMu.Lock()
	sources := p.statsSources
	p.srcMu.Unlock()
	for _, fn := range sources {
		fn(rec)
	}
	return rec
}

// Close shuts the platform down. The recorder stops first (no samples
// during teardown); a batching platform drains and closes its coalescer
// (and with it the wrapped endpoint) after the capsule.
func (p *Platform) Close() error {
	if p.recorder != nil {
		p.recorder.Close()
	}
	err := p.Capsule.Close()
	if p.coalescer != nil {
		if cerr := p.coalescer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Clock returns the platform-wide time source.
func (p *Platform) Clock() clock.Clock { return p.clk }

// BatchStats reports write-coalescing counters when the platform was
// built WithBatching; ok is false otherwise.
func (p *Platform) BatchStats() (transport.CoalescerStats, bool) {
	if p.coalescer == nil {
		return transport.CoalescerStats{}, false
	}
	return p.coalescer.BatchStats(), true
}

// Invoke performs an interrogation through the platform's binder:
// location transparency (relocation recovery) is applied automatically.
func (p *Platform) Invoke(ctx context.Context, ref wire.Ref, op string, args []wire.Value, opts ...capsule.InvokeOption) (string, []wire.Value, error) {
	return p.binder.Invoke(ctx, ref, op, args, opts...)
}

// InvokeWith is Invoke with a pre-resolved configuration — the
// per-proxy hot path, which applies no per-call options.
func (p *Platform) InvokeWith(ctx context.Context, ref wire.Ref, op string, args []wire.Value, cfg capsule.InvokeConfig) (string, []wire.Value, error) {
	return p.binder.InvokeWith(ctx, ref, op, args, cfg)
}

// Announce performs a request-only invocation.
func (p *Platform) Announce(ref wire.Ref, op string, args []wire.Value) error {
	return p.Capsule.Announce(ref, op, args)
}

// AnnounceCtx is Announce with a caller context, so announcements made
// inside a traced invocation join its span tree.
func (p *Platform) AnnounceCtx(ctx context.Context, ref wire.Ref, op string, args []wire.Value) error {
	return p.Capsule.AnnounceCtxWith(ctx, ref, op, args, capsule.DefaultInvokeConfig())
}

// BinderStats exposes binder counters (experiment E7).
func (p *Platform) BinderStats() naming.BinderStats {
	return p.binder.Stats()
}

// remoteRegistrar registers relocations at a remote relocation service.
type remoteRegistrar struct {
	p *Platform
}

// Register implements migrate.Registrar.
func (r *remoteRegistrar) Register(ref wire.Ref) {
	_, _, err := r.p.Capsule.Invoke(context.Background(), r.p.RelocRef, "register",
		[]wire.Value{ref}, capsule.WithQoS(rpc.QoS{Timeout: rpc.DefaultTimeout}))
	if err != nil {
		r.p.Registry.Log("relocation registration failed: " + err.Error())
	}
}

// Errors returned by the weaver.
var (
	// ErrEnvConflict reports an unsatisfiable environment constraint
	// combination.
	ErrEnvConflict = errors.New("core: conflicting environment constraints")
	// ErrNeedsSnapshot reports a constraint requiring state capture on a
	// servant that cannot snapshot.
	ErrNeedsSnapshot = errors.New("core: constraint requires a snapshot-capable servant")
)
