package core

import (
	"testing"
	"time"

	"odp/internal/obs"
	"odp/internal/wire"
)

// TestAddNumericWidening tables the rollup's promotion rules: unsigned
// stays unsigned, a signed negative promotes to int64, a float promotes
// to float64, and nothing truncates on the way.
func TestAddNumericWidening(t *testing.T) {
	cases := []struct {
		name   string
		acc, v wire.Value
		want   wire.Value
	}{
		{"uint+uint stays uint", uint64(3), uint64(4), uint64(7)},
		{"missing acc", nil, uint64(5), uint64(5)},
		{"missing acc float", nil, 2.5, 2.5},
		{"missing acc negative", nil, int64(-3), int64(-3)},
		{"uint+negative promotes signed", uint64(10), int64(-3), int64(7)},
		{"negative+uint promotes signed", int64(-3), uint64(10), int64(7)},
		{"sum below zero", int64(-10), uint64(4), int64(-6)},
		{"int widens like int64", uint64(1), int(2), int64(3)},
		{"uint+float promotes float", uint64(2), 0.5, 2.5},
		{"float+uint promotes float", 0.5, uint64(2), 2.5},
		{"float+float", 1.25, 2.25, 3.5},
		{"float+negative", 1.5, int64(-2), -0.5},
		{"non-numeric v ignored", uint64(3), "text", uint64(3)},
		{"non-numeric acc ignored", "text", uint64(3), uint64(3)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := addNumeric(c.acc, c.v); got != c.want {
				t.Fatalf("addNumeric(%v, %v) = %v (%T), want %v (%T)",
					c.acc, c.v, got, got, c.want, c.want)
			}
		})
	}
}

func TestNumericKinds(t *testing.T) {
	if _, ok := numeric(-5); !ok {
		t.Fatal("negative int rejected")
	}
	if _, ok := numeric(int64(-5)); !ok {
		t.Fatal("negative int64 rejected")
	}
	if v, ok := numeric(1.5); !ok || v != 1.5 {
		t.Fatalf("float64 = %v, %v", v, ok)
	}
	if _, ok := numeric("s"); ok {
		t.Fatal("string accepted")
	}
	if _, ok := numeric(nil); ok {
		t.Fatal("nil accepted")
	}
}

// TestGatherDomainsWidensAndRecomputesQuantiles rolls two platforms of
// one domain up and checks: float64 gauges sum as floats, negative
// deltas survive signed, all-unsigned counters stay uint64, and the
// domain's latency quantiles are recomputed from the merged buckets
// rather than summed per node.
func TestGatherDomainsWidensAndRecomputesQuantiles(t *testing.T) {
	e := newCoreEnv(t)
	a := e.platform("a", WithDomain("edge"))
	b := e.platform("b", WithDomain("edge"))
	c := e.platform("c") // untagged: skipped

	var fast, slow obs.Histogram
	for i := 0; i < 90; i++ {
		fast.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		slow.Observe(40 * time.Millisecond)
	}
	a.AddStatsSource(func(rec wire.Record) {
		obs.FoldLatency(rec, "stage", fast.Snapshot())
		rec["app.gauge"] = 1.25
		rec["app.drift"] = int64(-3)
	})
	b.AddStatsSource(func(rec wire.Record) {
		obs.FoldLatency(rec, "stage", slow.Snapshot())
		rec["app.gauge"] = 2.25
		rec["app.drift"] = int64(1)
	})
	c.AddStatsSource(func(rec wire.Record) { rec["app.gauge"] = 100.0 })

	out := GatherDomains(a, b, c)

	if got := out["domain.edge.platforms"]; got != uint64(2) {
		t.Fatalf("platforms = %v", got)
	}
	if got := out["domain.edge.app.gauge"]; got != 3.5 {
		t.Fatalf("float gauge sum = %v (%T)", got, out["domain.edge.app.gauge"])
	}
	if got := out["domain.edge.app.drift"]; got != int64(-2) {
		t.Fatalf("signed sum = %v (%T)", got, out["domain.edge.app.drift"])
	}
	if got := out["domain.edge.stage_count"]; got != uint64(100) {
		t.Fatalf("merged count = %v", got)
	}
	if _, ok := out["domain.c.app.gauge"]; ok {
		t.Fatal("untagged platform rolled up")
	}

	// Node a holds the 90 fast samples, node b the 10 slow ones. The
	// merged population's p50 must land in the fast bucket — a naive sum
	// of per-node p50s (2µs + 40ms) could not — and its p99 in the slow
	// one.
	p50, ok := out["domain.edge.stage_p50"].(float64)
	if !ok {
		t.Fatalf("p50 missing: %v", out["domain.edge.stage_p50"])
	}
	if p50 > 4 {
		t.Fatalf("merged p50 = %vµs, want within the fast bucket", p50)
	}
	p99, ok := out["domain.edge.stage_p99"].(float64)
	if !ok || p99 < 1000 {
		t.Fatalf("merged p99 = %v, want the slow observation's bucket", p99)
	}
}
