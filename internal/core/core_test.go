package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/group"
	"odp/internal/migrate"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/security"
	"odp/internal/storage"
	"odp/internal/transport"
	"odp/internal/txn"
	"odp/internal/types"
	"odp/internal/wire"
)

// ledger is the running example servant: snapshot-capable, typed.
type ledger struct {
	mu      sync.Mutex
	balance int64
}

func (l *ledger) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch op {
	case "credit":
		l.balance += args[0].(int64)
		return "ok", []wire.Value{l.balance}, nil
	case "debit":
		amt := args[0].(int64)
		if amt > l.balance {
			return "insufficient", []wire.Value{l.balance}, nil
		}
		l.balance -= amt
		return "ok", []wire.Value{l.balance}, nil
	case "balance":
		return "ok", []wire.Value{l.balance}, nil
	default:
		return "", nil, fmt.Errorf("ledger: no op %q", op)
	}
}

func (l *ledger) Snapshot() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(l.balance))
	return buf, nil
}

func (l *ledger) Restore(data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.balance = int64(binary.BigEndian.Uint64(data))
	return nil
}

func ledgerType() types.Type {
	return types.Type{
		Name: "Ledger",
		Ops: map[string]types.Operation{
			"credit":  {Args: []types.Desc{types.Int}, Outcomes: map[string][]types.Desc{"ok": {types.Int}}},
			"debit":   {Args: []types.Desc{types.Int}, Outcomes: map[string][]types.Desc{"ok": {types.Int}, "insufficient": {types.Int}}},
			"balance": {Outcomes: map[string][]types.Desc{"ok": {types.Int}}},
		},
	}
}

var ledgerReadOnly = map[string]bool{"balance": true}

type coreEnv struct {
	t      *testing.T
	fabric *netsim.Fabric
}

func newCoreEnv(t *testing.T) *coreEnv {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	return &coreEnv{t: t, fabric: f}
}

func (e *coreEnv) endpoint(name string) transport.Endpoint {
	ep, err := e.fabric.Endpoint(name)
	if err != nil {
		e.t.Fatal(err)
	}
	return ep
}

func (e *coreEnv) platform(name string, opts ...Option) *Platform {
	e.t.Helper()
	p, err := NewPlatform(name, e.endpoint(name), opts...)
	if err != nil {
		e.t.Fatal(err)
	}
	e.t.Cleanup(func() { _ = p.Close() })
	return p
}

func TestPublishBareAndInvoke(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))

	ref, err := server.Publish("ledger", Object{Servant: &ledger{balance: 10}, Type: ledgerType()})
	if err != nil {
		t.Fatal(err)
	}
	proxy := client.Bind(ref)
	out, err := proxy.Call(context.Background(), "credit", int64(5))
	if err != nil || !out.Is("ok") {
		t.Fatalf("credit: %+v %v", out, err)
	}
	if n, _ := out.Int(0); n != 15 {
		t.Fatalf("balance %d", n)
	}
	// Declared application outcomes flow through.
	out, err = proxy.Call(context.Background(), "debit", int64(999))
	if err != nil || !out.Is("insufficient") {
		t.Fatalf("debit: %+v %v", out, err)
	}
	// Early type checking is on.
	if _, err := proxy.Call(context.Background(), "credit", "five"); err == nil {
		t.Fatal("type checking lost")
	}
}

func TestWeaverSecured(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))
	server.Keys.Share("alice", []byte("s3cret"))

	ref, err := server.Publish("ledger", Object{
		Servant: &ledger{},
		Type:    ledgerType(),
		Env: Env{Secured: &SecureSpec{Policy: security.Policy{Rules: []security.Rule{
			{Principal: "alice", Op: "*", Allow: true},
		}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Unauthenticated: refused.
	if _, err := client.Bind(ref).Call(ctx, "balance"); !errors.Is(err, rpc.ErrDenied) {
		t.Fatalf("unauthenticated: want ErrDenied, got %v", err)
	}
	// Authenticated: admitted. The application code only gained a
	// signer; the invocation shape is unchanged.
	alice := security.NewSigner("alice", []byte("s3cret"))
	out, err := client.Bind(ref).WithSigner(alice).Call(ctx, "credit", int64(3))
	if err != nil || !out.Is("ok") {
		t.Fatalf("authenticated: %+v %v", out, err)
	}
}

func TestWeaverAtomic(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))

	mk := func(id string, balance int64) wire.Ref {
		ref, err := server.Publish(id, Object{
			Servant: &ledger{balance: balance},
			Type:    ledgerType(),
			Env: Env{Atomic: &AtomicSpec{
				Separation: txn.Separation{ReadOnly: ledgerReadOnly},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return ref
	}
	refA := mk("acctA", 100)
	refB := mk("acctB", 0)

	ctx := context.Background()
	tx := client.Coordinator.Begin()
	if out, _, err := tx.Invoke(ctx, refA, "debit", []wire.Value{int64(30)}); err != nil || out != "ok" {
		t.Fatalf("debit: %q %v", out, err)
	}
	if out, _, err := tx.Invoke(ctx, refB, "credit", []wire.Value{int64(30)}); err != nil || out != "ok" {
		t.Fatalf("credit: %q %v", out, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	out, err := client.Bind(refB).Call(ctx, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := out.Int(0); n != 30 {
		t.Fatalf("post-commit balance %d", n)
	}
}

func TestWeaverAtomicPlusRecoverableConflict(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	_, err := server.Publish("x", Object{
		Servant: &ledger{},
		Env: Env{
			Atomic:      &AtomicSpec{},
			Recoverable: &RecoverSpec{},
		},
	})
	if !errors.Is(err, ErrEnvConflict) {
		t.Fatalf("want ErrEnvConflict, got %v", err)
	}
}

func TestWeaverNeedsSnapshot(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	plain := capsule.ServantFunc(func(context.Context, string, []wire.Value) (string, []wire.Value, error) {
		return "ok", nil, nil
	})
	if _, err := server.Publish("x", Object{Servant: plain, Env: Env{Movable: true}}); !errors.Is(err, ErrNeedsSnapshot) {
		t.Fatalf("movable non-snapshotter: %v", err)
	}
	if _, err := server.Publish("y", Object{Servant: plain, Env: Env{Atomic: &AtomicSpec{}}}); !errors.Is(err, ErrNeedsSnapshot) {
		t.Fatalf("atomic non-snapshotter: %v", err)
	}
}

func TestWeaverRecoverableSurvivesCrash(t *testing.T) {
	e := newCoreEnv(t)
	store := newSharedStore()
	server := e.platform("node1", WithStore(store))
	client := e.platform("client", WithRelocator(server.RelocRef))

	ref, err := server.Publish("ledger", Object{
		Servant: &ledger{},
		Type:    ledgerType(),
		Env:     Env{Recoverable: &RecoverSpec{ReadOnly: ledgerReadOnly}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := client.Bind(ref).Call(ctx, "credit", int64(10)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash node1; recover on node2 (shared store, same relocator).
	_ = server.Capsule.Close()
	e.fabric.Isolate("node1", true)
	// The relocator lived on node1 too; host a fresh one for recovery.
	reloc := e.platform("reloc")
	node2 := e.platform("node2", WithStore(store), WithRelocator(reloc.RelocRef))
	node2.Mover.RegisterFactory("Ledger", func() migrate.Servant { return &ledger{} })

	newRef, err := node2.Mover.Recover(ctx, "ledger", "Ledger", ledgerReadOnly, ref.Epoch+1)
	if err != nil {
		t.Fatal(err)
	}
	client2 := e.platform("client2", WithRelocator(reloc.RelocRef))
	out, err := client2.Bind(newRef).Call(ctx, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := out.Int(0); n != 50 {
		t.Fatalf("recovered balance %d, want 50", n)
	}
}

func TestWeaverManagedInstrumentation(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))
	ref, err := server.Publish("ledger", Object{
		Servant: &ledger{},
		Type:    ledgerType(),
		Env:     Env{Managed: &ManagedSpec{MetricPrefix: "ledger"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := client.Bind(ref).Call(ctx, "balance"); err != nil {
			t.Fatal(err)
		}
	}
	if got := server.Registry.Counter("ledger.calls"); got != 4 {
		t.Fatalf("instrumented calls %d", got)
	}
	// And the management interface serves the numbers remotely.
	out, err := client.Bind(server.Agent.Ref()).Call(ctx, "stats")
	if err != nil || !out.Is("ok") {
		t.Fatal(err)
	}
	rec := out.Result(0).(wire.Record)
	if rec["c.ledger.calls"] != uint64(4) {
		t.Fatalf("remote stats %v", rec)
	}
}

func TestWeaverLeased(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server", WithGCGrace(20*time.Millisecond))
	collected := make(chan string, 1)
	_, err := server.Publish("ephemeral", Object{
		Servant: &ledger{},
		Env: Env{Leased: &LeaseSpec{OnCollect: func(id string) {
			collected <- id
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	victims := server.Collector.Sweep()
	if len(victims) != 1 {
		t.Fatalf("swept %v", victims)
	}
	select {
	case id := <-collected:
		if id != "ephemeral" {
			t.Fatalf("collected %q", id)
		}
	default:
		t.Fatal("OnCollect not called")
	}
}

func TestWeaverSelectiveStacking(t *testing.T) {
	// E15's functional core: all combinations publish and serve.
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))
	server.Keys.Share("alice", []byte("k"))
	alice := security.NewSigner("alice", []byte("k"))
	allow := security.Policy{Rules: []security.Rule{{Principal: "alice", Op: "*", Allow: true}}}

	envs := map[string]Env{
		"none":            {},
		"managed":         {Managed: &ManagedSpec{}},
		"secured":         {Secured: &SecureSpec{Policy: allow}},
		"movable":         {Movable: true},
		"managed+secured": {Managed: &ManagedSpec{}, Secured: &SecureSpec{Policy: allow}},
		"full": {
			Managed:     &ManagedSpec{},
			Secured:     &SecureSpec{Policy: allow},
			Recoverable: &RecoverSpec{ReadOnly: ledgerReadOnly},
			Leased:      &LeaseSpec{},
		},
	}
	ctx := context.Background()
	for name, env := range envs {
		name, env := name, env
		t.Run(name, func(t *testing.T) {
			ref, err := server.Publish("obj-"+name, Object{
				Servant: &ledger{balance: 1},
				Type:    ledgerType(),
				Env:     env,
			})
			if err != nil {
				t.Fatal(err)
			}
			proxy := client.Bind(ref)
			if env.Secured != nil {
				proxy = proxy.WithSigner(alice)
			}
			out, err := proxy.Call(ctx, "balance")
			if err != nil || !out.Is("ok") {
				t.Fatalf("%s: %+v %v", name, out, err)
			}
		})
	}
}

func TestPublishReplicated(t *testing.T) {
	e := newCoreEnv(t)
	ps := []*Platform{e.platform("r0"), e.platform("r1"), e.platform("r2")}
	rep, err := PublishReplicated(ps, ReplicaSpec{
		GroupID:           "ledger",
		Mode:              group.ModeActive,
		HeartbeatInterval: 25 * time.Millisecond,
		FailureTimeout:    250 * time.Millisecond,
	}, func() capsule.Servant { return &ledger{} })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)

	client := e.platform("client", WithRelocator(ps[0].RelocRef))
	ctx := context.Background()
	proxy := client.Bind(rep.Ref())
	for i := 0; i < 5; i++ {
		out, err := proxy.Call(ctx, "credit", int64(10))
		if err != nil || !out.Is("ok") {
			t.Fatalf("credit %d: %+v %v", i, out, err)
		}
	}
	out, err := proxy.Call(ctx, "balance")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := out.Int(0); n != 50 {
		t.Fatalf("replicated balance %d", n)
	}
}

func TestProxyOutcomeHelpers(t *testing.T) {
	out := Outcome{Name: "ok", Results: []wire.Value{int64(1), "two", wire.Ref{ID: "r"}}}
	if !out.Is("ok") || out.Is("fail") {
		t.Fatal("Is broken")
	}
	if n, err := out.Int(0); err != nil || n != 1 {
		t.Fatalf("Int: %d %v", n, err)
	}
	if s, err := out.Str(1); err != nil || s != "two" {
		t.Fatalf("Str: %q %v", s, err)
	}
	if r, err := out.RefAt(2); err != nil || r.ID != "r" {
		t.Fatalf("RefAt: %v %v", r, err)
	}
	if _, err := out.Int(1); err == nil {
		t.Fatal("Int on string succeeded")
	}
	if out.Result(99) != nil {
		t.Fatal("out-of-range result not nil")
	}
}

func newSharedStore() *storage.MemStore { return storage.NewMemStore() }
