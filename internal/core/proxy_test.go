package core

import (
	"context"
	"testing"
	"time"

	"odp/internal/migrate"
	"odp/internal/rpc"
	"odp/internal/wire"
)

func TestProxyRefAndQoS(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))
	ref, err := server.Publish("ledger", Object{Servant: &ledger{balance: 3}})
	if err != nil {
		t.Fatal(err)
	}
	proxy := client.Bind(ref)
	if !wire.Equal(proxy.Ref(), ref) {
		t.Fatal("proxy lost its reference")
	}
	// WithQoS returns a derived proxy; the original is untouched.
	fast := proxy.WithQoS(rpc.QoS{Timeout: 2 * time.Second})
	if fast == proxy {
		t.Fatal("WithQoS mutated in place")
	}
	out, err := fast.Call(context.Background(), "balance")
	if err != nil || !out.Is("ok") {
		t.Fatalf("call via derived proxy: %+v %v", out, err)
	}
}

func TestProxyAnnounce(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))
	led := &ledger{}
	ref, err := server.Publish("ledger", Object{Servant: led})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Bind(ref).Announce("credit", int64(5)); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		led.mu.Lock()
		n := led.balance
		led.mu.Unlock()
		if n == 5 {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("announcement never applied (balance %d)", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestPlatformAnnounceAndBinderStats(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server")
	client := e.platform("client", WithRelocator(server.RelocRef))
	led := &ledger{}
	ref, err := server.Publish("ledger", Object{Servant: led})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Announce(ref, "credit", []wire.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Invoke(context.Background(), ref, "balance", nil); err != nil {
		t.Fatal(err)
	}
	st := client.BinderStats()
	if st.Invocations != 1 {
		t.Fatalf("binder stats %+v", st)
	}
}

func TestPlatformOptionsExercised(t *testing.T) {
	// Exercise the remaining construction options together.
	e := newCoreEnv(t)
	p, err := NewPlatform("opt", e.endpoint("opt"),
		WithCodec(wire.TextCodec{}),
		WithTrader("opt-ctx"),
		WithLockWait(time.Second),
		WithCapsuleOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = p.Close() })
	if p.Trader == nil || p.Trader.ContextName() != "opt-ctx" {
		t.Fatal("trader option not applied")
	}
	if p.Capsule.Codec().Name() != (wire.TextCodec{}).Name() {
		t.Fatal("codec option not applied")
	}
	// The platform remains functional with the text codec.
	ref, err := p.Publish("l", Object{Servant: &ledger{balance: 2}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Bind(ref).Call(context.Background(), "balance")
	if err != nil || !out.Is("ok") {
		t.Fatalf("text-codec platform call: %+v %v", out, err)
	}
}

func TestRemoteRegistrarPath(t *testing.T) {
	// A platform pointed at a REMOTE relocation service must register
	// migrations there over the wire.
	e := newCoreEnv(t)
	hub := e.platform("hub") // hosts the relocator
	src := e.platform("src", WithRelocator(hub.RelocRef))
	dst := e.platform("dst", WithRelocator(hub.RelocRef))
	dst.Mover.RegisterFactory("Ledger", func() migrate.Servant { return &ledger{} })

	ref, err := src.Publish("wanderer", Object{
		Servant: &ledger{balance: 9},
		Type:    ledgerType(),
		Env:     Env{Movable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Mover.Migrate(context.Background(), "wanderer", dst.Mover.AcceptorRef()); err != nil {
		t.Fatal(err)
	}
	// The hub's table (remote to src) learned the move.
	got, err := hub.RelocTable.Lookup("wanderer")
	if err != nil || got.Endpoints[0] != "dst" {
		t.Fatalf("remote registration failed: %v %v", got, err)
	}
	// A fresh client with a stale ref recovers through the hub.
	client := e.platform("client", WithRelocator(hub.RelocRef))
	out, err := client.Bind(ref).WithQoS(rpc.QoS{Timeout: time.Second}).Call(context.Background(), "balance")
	if err != nil || !out.Is("ok") {
		t.Fatalf("stale-ref call after remote-registered move: %+v %v", out, err)
	}
	if n, _ := out.Int(0); n != 9 {
		t.Fatalf("balance %d", n)
	}
}

// TestLeasedObjectArchivedNotDestroyed composes the collector with
// passivation, §7.3's archival pattern: when an unreferenced object is
// collected, its OnCollect hook archives it to stable storage instead of
// destroying it, and a later invocation "moves it back on demand".
func TestLeasedObjectArchivedNotDestroyed(t *testing.T) {
	e := newCoreEnv(t)
	server := e.platform("server", WithGCGrace(20*time.Millisecond))
	client := e.platform("client", WithRelocator(server.RelocRef))
	server.Mover.RegisterFactory("Ledger", func() migrate.Servant { return &ledger{} })

	archived := make(chan string, 1)
	ref, err := server.Publish("archive-me", Object{
		Servant: &ledger{balance: 77},
		Type:    ledgerType(),
		Env: Env{
			Movable: true,
			Leased: &LeaseSpec{OnCollect: func(id string) {
				// The collector has already unexported; re-export briefly
				// so Passivate can snapshot, then archive.
				// (Host.Passivate needs the managed entry, which survives
				// the capsule unexport.)
				if err := server.Mover.Passivate(id); err == nil {
					archived <- id
				}
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed some state, then let the lease lapse.
	if _, err := client.Bind(ref).Call(context.Background(), "credit", int64(3)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(40 * time.Millisecond)
	victims := server.Collector.Sweep()
	if len(victims) != 1 {
		t.Fatalf("swept %v", victims)
	}
	select {
	case <-archived:
	case <-time.After(2 * time.Second):
		t.Fatal("collected object was not archived")
	}
	if !server.Mover.IsPassive("archive-me") {
		t.Fatal("object not in passive store")
	}
	// Demand brings it back, state intact.
	out, err := client.Bind(ref).WithQoS(rpc.QoS{Timeout: 2 * time.Second}).
		Call(context.Background(), "balance")
	if err != nil || !out.Is("ok") {
		t.Fatalf("reactivation: %+v %v", out, err)
	}
	if n, _ := out.Int(0); n != 80 {
		t.Fatalf("archived state lost: %d", n)
	}
}
