package core

import (
	"context"
	"fmt"

	"odp/internal/capsule"
	"odp/internal/rpc"
	"odp/internal/security"
	"odp/internal/wire"
)

// Outcome is the result of an interrogation: one of the operation's
// declared outcomes, carrying its package of results (§5.1).
type Outcome struct {
	// Name is the outcome name ("ok", "insufficient", ...).
	Name string
	// Results is the outcome's result package.
	Results []wire.Value
}

// Is reports whether the outcome has the given name.
func (o Outcome) Is(name string) bool { return o.Name == name }

// Result returns the i-th result, or nil when absent.
func (o Outcome) Result(i int) wire.Value {
	if i < 0 || i >= len(o.Results) {
		return nil
	}
	return o.Results[i]
}

// Int returns the i-th result as int64.
func (o Outcome) Int(i int) (int64, error) {
	v, ok := o.Result(i).(int64)
	if !ok {
		return 0, fmt.Errorf("core: result %d of %q is %T, not int", i, o.Name, o.Result(i))
	}
	return v, nil
}

// Str returns the i-th result as string.
func (o Outcome) Str(i int) (string, error) {
	v, ok := o.Result(i).(string)
	if !ok {
		return "", fmt.Errorf("core: result %d of %q is %T, not string", i, o.Name, o.Result(i))
	}
	return v, nil
}

// RefAt returns the i-th result as an interface reference.
func (o Outcome) RefAt(i int) (wire.Ref, error) {
	v, ok := o.Result(i).(wire.Ref)
	if !ok {
		return wire.Ref{}, fmt.Errorf("core: result %d of %q is %T, not ref", i, o.Name, o.Result(i))
	}
	return v, nil
}

// Proxy is a client-side binding to one interface: the computational
// model's view of "a reference to an ADT interface". Its methods are
// identical whether the interface is co-located, remote, replicated,
// migrating or passive — that is the point.
type Proxy struct {
	p      *Platform
	ref    wire.Ref
	signer *security.Signer
	// cfg is resolved at construction: invocation options are applied
	// once per proxy, not once per call, keeping Call allocation-free.
	cfg capsule.InvokeConfig
}

// Bind creates a proxy for ref.
func (p *Platform) Bind(ref wire.Ref) *Proxy {
	return &Proxy{p: p, ref: ref, cfg: capsule.DefaultInvokeConfig()}
}

// Ref returns the bound reference.
func (pr *Proxy) Ref() wire.Ref { return pr.ref }

// WithSigner returns a proxy that authenticates every invocation as the
// signer's principal.
func (pr *Proxy) WithSigner(s *security.Signer) *Proxy {
	cp := *pr
	cp.signer = s
	return &cp
}

// WithQoS returns a proxy with a default QoS constraint.
func (pr *Proxy) WithQoS(q rpc.QoS) *Proxy {
	cp := *pr
	cp.cfg.QoS = q
	return &cp
}

// Call performs an interrogation.
func (pr *Proxy) Call(ctx context.Context, op string, args ...wire.Value) (Outcome, error) {
	sendArgs := args
	if pr.signer != nil {
		wrapped, err := pr.signer.Wrap(op, args)
		if err != nil {
			return Outcome{}, err
		}
		sendArgs = wrapped
	}
	name, results, err := pr.p.InvokeWith(ctx, pr.ref, op, sendArgs, pr.cfg)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{Name: name, Results: results}, nil
}

// Announce performs a request-only invocation.
func (pr *Proxy) Announce(op string, args ...wire.Value) error {
	return pr.AnnounceCtx(context.Background(), op, args...)
}

// AnnounceCtx is Announce with a caller context: an active span context
// in ctx makes the announcement part of the caller's trace. (Announce
// semantics are otherwise unchanged — the context does not make the
// announcement cancellable or fail-reporting.)
func (pr *Proxy) AnnounceCtx(ctx context.Context, op string, args ...wire.Value) error {
	sendArgs := args
	if pr.signer != nil {
		wrapped, err := pr.signer.Wrap(op, args)
		if err != nil {
			return err
		}
		sendArgs = wrapped
	}
	return pr.p.Capsule.AnnounceCtxWith(ctx, pr.ref, op, sendArgs, pr.cfg)
}
