// Package rpc implements the ODP invocation protocol over unreliable
// datagram endpoints.
//
// Access transparency (§5.1) requires two interaction structures:
//
//   - Interrogation: request-reply, "activity is temporarily transferred
//     to the invoked interface". Implemented with client retransmission,
//     server-side duplicate suppression and a reply cache, giving
//     at-most-once execution over a lossy network.
//   - Announcement: "an asynchronous request-only structure for spawning
//     a new activity". Fire-and-forget, optionally repeated for higher
//     delivery probability; "failure to meet the constraint can[not] be
//     reported" for announcements.
//
// Every operation returns one of a range of named outcomes, "each one of
// which carries its own package of results" (§5.1). System-level failures
// (no such object, moved, handler fault) are distinguished from
// application outcomes so that transparency layers can react to them —
// in particular the Moved status drives location transparency rebinding.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"odp/internal/obs"
	"odp/internal/wire"
)

// Message types.
const (
	msgRequest  = 1 // interrogation request
	msgReply    = 2 // interrogation reply
	msgAck      = 3 // client acknowledges reply; server may evict cache
	msgAnnounce = 4 // one-way announcement

	// Traced variants: identical to msgRequest/msgAnnounce with a
	// trace-context block prefixed to the body. Sampling is encoded in
	// the message type itself — an unsampled invocation uses the plain
	// type and pays zero wire bytes, and a pre-tracing peer drops the
	// unknown types in its dispatch switch rather than misparsing args.
	msgRequestT  = 5 // traced interrogation request
	msgAnnounceT = 6 // traced one-way announcement
)

// Reply statuses.
const (
	statusOK       = 0 // application outcome in body
	statusSysError = 1 // infrastructure or handler fault, message in body
	statusNoObject = 2 // destination object unknown at this endpoint
	statusMoved    = 3 // object relocated; body carries a forwarding ref
	statusDenied   = 4 // a guard refused the invocation (§7.1)
	statusBusy     = 5 // admission control shed the request; back off and retry
)

// protoVersion guards against cross-version confusion.
const protoVersion = 1

// protoVersionPacked marks a message whose BODY is encoded with the
// ansa-packed/1 codec (wire.PackedCodec) instead of the session codec.
// The header layout is byte-for-byte identical to version 1 — the
// version is pure codec negotiation, carried per message so a reply can
// always be issued in the version of the request it answers and mixed
// traffic needs no connection state. A peer only ever receives version
// 2 after advertising transport.CapPacked in its HELLO, so pre-packed
// peers reject it in decode exactly as they reject garbage.
const protoVersionPacked = 2

// bodyCodec maps a message's protocol version to the codec its body is
// encoded with: the negotiated session codec for version 1, packed for
// version 2.
func bodyCodec(version byte, session wire.Codec) wire.Codec {
	if version == protoVersionPacked {
		return wire.PackedCodec{}
	}
	return session
}

// Errors surfaced to invokers.
var (
	// ErrTimeout reports that the QoS deadline expired with no reply.
	ErrTimeout = errors.New("rpc: invocation timed out")
	// ErrNoObject reports that the destination endpoint does not host the
	// object. Handlers return it to trigger client-side relocation.
	ErrNoObject = errors.New("rpc: no such object")
	// ErrDenied reports a security guard refusal.
	ErrDenied = errors.New("rpc: access denied")
	// ErrBadMessage reports an undecodable packet.
	ErrBadMessage = errors.New("rpc: bad message")
	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("rpc: closed")
	// ErrServerBusy reports that server-side admission control shed the
	// invocation: the client exceeded its token bucket. Transient by
	// construction — the caller should back off and retry (the capsule
	// layer can do so automatically, see capsule.WithBusyRetry).
	ErrServerBusy = errors.New("rpc: server busy")
)

// MovedError carries a forwarding reference for a relocated object
// (§5.4): the invoked endpoint knows where the interface went.
type MovedError struct {
	// Forward is the new reference for the interface.
	Forward wire.Ref
}

// Error implements error.
func (e *MovedError) Error() string {
	return fmt.Sprintf("rpc: object moved to %v", e.Forward.Endpoints)
}

// RemoteError carries a server-side fault message across the network.
type RemoteError struct {
	// Msg is the remote failure description.
	Msg string
}

// Error implements error.
func (e *RemoteError) Error() string { return "rpc: remote: " + e.Msg }

// header is the fixed part of every message.
type header struct {
	version byte
	msgType byte
	callID  uint64
	objID   string
	op      string
}

func encodeHeader(dst []byte, h header) []byte {
	dst = append(dst, h.version, h.msgType)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], h.callID)
	dst = append(dst, b[:]...)
	dst = appendStr(dst, h.objID)
	dst = appendStr(dst, h.op)
	return dst
}

// rawHeader is the zero-allocation view of a message header: objID and
// op alias the packet and are only valid while it is (the Handler
// contract). Dispatch paths that must retain them materialise strings
// explicitly, so the common case — a reply, or an inline dispatch that
// finishes before returning — never allocates for the header.
type rawHeader struct {
	version byte
	msgType byte
	callID  uint64
	objID   []byte
	op      []byte
}

func decodeRawHeader(src []byte) (rawHeader, []byte, error) {
	if len(src) < 10 {
		return rawHeader{}, nil, ErrBadMessage
	}
	h := rawHeader{version: src[0], msgType: src[1]}
	if h.version != protoVersion && h.version != protoVersionPacked {
		return rawHeader{}, nil, fmt.Errorf("%w: version %d", ErrBadMessage, h.version)
	}
	h.callID = binary.BigEndian.Uint64(src[2:10])
	rest := src[10:]
	var err error
	if h.objID, rest, err = readBytes(rest); err != nil {
		return rawHeader{}, nil, err
	}
	if h.op, rest, err = readBytes(rest); err != nil {
		return rawHeader{}, nil, err
	}
	return h, rest, nil
}

func decodeHeader(src []byte) (header, []byte, error) {
	rh, rest, err := decodeRawHeader(src)
	if err != nil {
		return header{}, nil, err
	}
	return header{
		version: rh.version,
		msgType: rh.msgType,
		callID:  rh.callID,
		objID:   string(rh.objID),
		op:      string(rh.op),
	}, rest, nil
}

// Trace-context block, prefixed to the body of msgRequestT/msgAnnounceT:
//
//	[1 flags][8 traceID BE][8 parentSpanID BE]
//
// flags bit 0 is the sampled bit; the ids are meaningful only when it is
// set. The block is fixed-size so a retransmitted packet (encoded once,
// resent verbatim) carries the identical context, and the server's dedup
// generation maps then guarantee a duplicate request can never mint a
// second dispatch span.
const (
	traceCtxLen     = 17
	traceCtxSampled = 0x01
)

// appendTraceCtx appends the trace-context block for sc to dst.
func appendTraceCtx(dst []byte, sc obs.SpanContext) []byte {
	var b [traceCtxLen]byte
	b[0] = traceCtxSampled
	binary.BigEndian.PutUint64(b[1:9], sc.TraceID)
	binary.BigEndian.PutUint64(b[9:17], sc.SpanID)
	return append(dst, b[:]...)
}

// readTraceCtx consumes the trace-context block. A cleared sampled bit
// yields the invalid (zero) context regardless of the id bytes.
func readTraceCtx(src []byte) (obs.SpanContext, []byte, error) {
	if len(src) < traceCtxLen {
		return obs.SpanContext{}, nil, fmt.Errorf("%w: truncated trace context", ErrBadMessage)
	}
	var sc obs.SpanContext
	if src[0]&traceCtxSampled != 0 {
		sc.TraceID = binary.BigEndian.Uint64(src[1:9])
		sc.SpanID = binary.BigEndian.Uint64(src[9:17])
	}
	return sc, src[traceCtxLen:], nil
}

// Request body: encoded argument vector.
// Reply body: status byte, then per status:
//
//	OK:       outcome string, encoded result vector
//	SysError: message string
//	NoObject: (empty)
//	Moved:    encoded forwarding ref
//	Denied:   message string
//	Busy:     (empty)

// appendReplyBody appends a reply body to dst, so header and body can
// share one allocation.
func appendReplyBody(codec wire.Codec, dst []byte, status byte, outcome string, results []wire.Value, msg string, fwd wire.Ref) ([]byte, error) {
	dst = append(dst, status)
	switch status {
	case statusOK:
		dst = appendStr(dst, outcome)
		var err error
		if dst, err = wire.EncodeAllInto(codec, dst, results); err != nil {
			return nil, err
		}
	case statusSysError, statusDenied:
		dst = appendStr(dst, msg)
	case statusMoved:
		var err error
		if dst, err = codec.Encode(dst, fwd); err != nil {
			return nil, err
		}
	case statusNoObject, statusBusy:
	}
	return dst, nil
}

func encodeReplyBody(codec wire.Codec, status byte, outcome string, results []wire.Value, msg string, fwd wire.Ref) ([]byte, error) {
	return appendReplyBody(codec, nil, status, outcome, results, msg, fwd)
}

type replyBody struct {
	status  byte
	outcome string
	results []wire.Value
	msg     string
	fwd     wire.Ref
}

func decodeReplyBody(codec wire.Codec, src []byte) (replyBody, error) {
	if len(src) < 1 {
		return replyBody{}, ErrBadMessage
	}
	rb := replyBody{status: src[0]}
	rest := src[1:]
	var err error
	switch rb.status {
	case statusOK:
		if rb.outcome, rest, err = readStr(rest); err != nil {
			return replyBody{}, err
		}
		if rb.results, err = wire.DecodeAll(codec, rest); err != nil {
			return replyBody{}, err
		}
	case statusSysError, statusDenied:
		if rb.msg, _, err = readStr(rest); err != nil {
			return replyBody{}, err
		}
	case statusMoved:
		v, _, err := codec.Decode(rest)
		if err != nil {
			return replyBody{}, err
		}
		ref, ok := v.(wire.Ref)
		if !ok {
			return replyBody{}, fmt.Errorf("%w: moved body is %T", ErrBadMessage, v)
		}
		rb.fwd = ref
	case statusNoObject, statusBusy:
	default:
		return replyBody{}, fmt.Errorf("%w: status %d", ErrBadMessage, rb.status)
	}
	return rb, nil
}

func appendStr(dst []byte, s string) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(s)))
	dst = append(dst, b[:]...)
	return append(dst, s...)
}

func readStr(src []byte) (string, []byte, error) {
	b, rest, err := readBytes(src)
	if err != nil {
		return "", nil, err
	}
	return string(b), rest, nil
}

// aliasString views b as a string without copying. The result is valid
// exactly as long as b's storage is — use only on the zero-copy
// dispatch path, where the lifetime is the handler call.
func aliasString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// readBytes is readStr without the string materialisation: the returned
// slice aliases src.
func readBytes(src []byte) ([]byte, []byte, error) {
	if len(src) < 4 {
		return nil, nil, ErrBadMessage
	}
	n := binary.BigEndian.Uint32(src)
	src = src[4:]
	if uint32(len(src)) < n {
		return nil, nil, ErrBadMessage
	}
	return src[:n], src[n:], nil
}
