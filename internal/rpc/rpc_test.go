package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/netsim"
	"odp/internal/transport"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

// echoHandler returns outcome "ok" with the arguments reversed.
func echoHandler(_ context.Context, in *Incoming) (string, []wire.Value, error) {
	out := make([]wire.Value, len(in.Args))
	for i, a := range in.Args {
		out[len(in.Args)-1-i] = a
	}
	return "ok", out, nil
}

func setup(t *testing.T, opts ...netsim.Option) (*netsim.Fabric, *Client, func(Handler) *Server) {
	t.Helper()
	f := netsim.NewFabric(opts...)
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })
	mkServer := func(h Handler) *Server {
		srv := NewServer(sep, codec, h)
		t.Cleanup(func() { _ = srv.Close() })
		return srv
	}
	return f, cli, mkServer
}

func TestCallBasic(t *testing.T) {
	_, cli, mkServer := setup(t)
	mkServer(echoHandler)
	outcome, results, err := cli.Call(context.Background(), "server", "obj1", "reverse",
		[]wire.Value{int64(1), "two", true}, QoS{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != "ok" {
		t.Fatalf("outcome %q", outcome)
	}
	want := []wire.Value{true, "two", int64(1)}
	if len(results) != 3 {
		t.Fatalf("results %v", results)
	}
	for i := range want {
		if !wire.Equal(results[i], want[i]) {
			t.Fatalf("result %d = %v want %v", i, results[i], want[i])
		}
	}
}

func TestCallSeesMetadata(t *testing.T) {
	_, cli, mkServer := setup(t)
	var got Incoming
	mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		got = *in
		return "done", nil, nil
	})
	if _, _, err := cli.Call(context.Background(), "server", "objX", "opY", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	if got.ObjID != "objX" || got.Op != "opY" || got.From != "client" || got.Announcement {
		t.Fatalf("metadata wrong: %+v", got)
	}
}

func TestCallApplicationOutcomes(t *testing.T) {
	_, cli, mkServer := setup(t)
	mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		// "a range of outcomes ... to signal different kinds of failure"
		if in.Args[0].(int64) < 0 {
			return "rejected", []wire.Value{"negative amount"}, nil
		}
		return "ok", []wire.Value{in.Args[0]}, nil
	})
	outcome, res, err := cli.Call(context.Background(), "server", "o", "deposit", []wire.Value{int64(-5)}, QoS{})
	if err != nil || outcome != "rejected" || res[0] != "negative amount" {
		t.Fatalf("outcome=%q res=%v err=%v", outcome, res, err)
	}
}

func TestCallSystemErrors(t *testing.T) {
	_, cli, mkServer := setup(t)
	fwd := wire.Ref{ID: "o", TypeName: "T", Endpoints: []string{"elsewhere"}, Epoch: 2}
	mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		switch in.Op {
		case "gone":
			return "", nil, ErrNoObject
		case "moved":
			return "", nil, &MovedError{Forward: fwd}
		case "denied":
			return "", nil, fmt.Errorf("guard says no: %w", ErrDenied)
		default:
			return "", nil, errors.New("kaboom")
		}
	})
	ctx := context.Background()
	if _, _, err := cli.Call(ctx, "server", "o", "gone", nil, QoS{}); !errors.Is(err, ErrNoObject) {
		t.Fatalf("want ErrNoObject, got %v", err)
	}
	_, _, err := cli.Call(ctx, "server", "o", "moved", nil, QoS{})
	var moved *MovedError
	if !errors.As(err, &moved) || !wire.Equal(moved.Forward, fwd) {
		t.Fatalf("want MovedError with ref, got %v", err)
	}
	if _, _, err := cli.Call(ctx, "server", "o", "denied", nil, QoS{}); !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	_, _, err = cli.Call(ctx, "server", "o", "boom", nil, QoS{})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Msg != "kaboom" {
		t.Fatalf("want RemoteError(kaboom), got %v", err)
	}
}

func TestCallTimeout(t *testing.T) {
	_, cli, _ := setup(t)
	// No server handler: requests go to an endpoint with no handler set.
	start := time.Now()
	_, _, err := cli.Call(context.Background(), "server", "o", "op", nil,
		QoS{Timeout: 60 * time.Millisecond, Retransmit: 10 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond || d > 500*time.Millisecond {
		t.Fatalf("timeout after %v", d)
	}
	if cli.Stats().Timeouts != 1 {
		t.Fatal("timeout not counted")
	}
}

func TestCallContextCancel(t *testing.T) {
	_, cli, _ := setup(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{Timeout: 5 * time.Second})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestAtMostOnceUnderLoss(t *testing.T) {
	// E14 core property: with heavy loss, retransmission must recover the
	// call and duplicate suppression must keep executions at one per call.
	_, cli, mkServer := setup(t,
		netsim.WithSeed(11),
		netsim.WithDefaultLink(netsim.LinkProfile{Latency: time.Millisecond, Loss: 0.3}))
	var executions atomic.Int64
	srv := mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		executions.Add(1)
		return "ok", []wire.Value{in.Args[0]}, nil
	})
	const calls = 50
	for i := 0; i < calls; i++ {
		outcome, res, err := cli.Call(context.Background(), "server", "o", "inc",
			[]wire.Value{int64(i)}, QoS{Timeout: 10 * time.Second, Retransmit: 5 * time.Millisecond})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if outcome != "ok" || res[0].(int64) != int64(i) {
			t.Fatalf("call %d: wrong reply %q %v", i, outcome, res)
		}
	}
	if got := executions.Load(); got != calls {
		t.Fatalf("executed %d times for %d calls — at-most-once violated", got, calls)
	}
	st := srv.Stats()
	if st.Duplicates == 0 {
		t.Log("warning: no duplicates observed; loss too low to exercise dedup")
	}
	if cli.Stats().Retransmissions == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
}

func TestAnnouncement(t *testing.T) {
	_, cli, mkServer := setup(t)
	got := make(chan Incoming, 1)
	mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		got <- *in // descriptors are pooled: copy, never retain
		return "ignored", nil, nil
	})
	if err := cli.Announce("server", "o", "notify", []wire.Value{"event"}, QoS{}); err != nil {
		t.Fatal(err)
	}
	select {
	case in := <-got:
		if !in.Announcement || in.Op != "notify" {
			t.Fatalf("bad announcement: %+v", in)
		}
	case <-time.After(time.Second):
		t.Fatal("announcement not delivered")
	}
}

func TestAnnouncementRepeatsDeduplicated(t *testing.T) {
	_, cli, mkServer := setup(t)
	var n atomic.Int64
	srv := mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		n.Add(1)
		return "", nil, nil
	})
	if err := cli.Announce("server", "o", "ping", nil, QoS{Repeats: 4}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(time.Second)
	for n.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("announcement never executed")
		case <-time.After(5 * time.Millisecond):
		}
	}
	time.Sleep(50 * time.Millisecond)
	if n.Load() != 1 {
		t.Fatalf("announcement executed %d times, want 1", n.Load())
	}
	if srv.Stats().AnnounceDedup != 4 {
		t.Fatalf("dedup count %d, want 4", srv.Stats().AnnounceDedup)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, cli, mkServer := setup(t, netsim.WithDefaultLink(netsim.LinkProfile{
		Latency: 500 * time.Microsecond, Jitter: 500 * time.Microsecond}))
	mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		return "ok", []wire.Value{in.Args[0]}, nil
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				v := int64(g*1000 + i)
				_, res, err := cli.Call(context.Background(), "server", "o", "id",
					[]wire.Value{v}, QoS{Timeout: 5 * time.Second})
				if err != nil {
					errs <- err
					return
				}
				if res[0].(int64) != v {
					errs <- fmt.Errorf("cross-talk: got %v want %d", res[0], v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestReplyCacheEviction(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, _ := f.Endpoint("client")
	sep, _ := f.Endpoint("server")
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })
	srv := NewServer(sep, codec, echoHandler, WithReplyTTL(time.Millisecond))
	t.Cleanup(func() { _ = srv.Close() })

	if _, _, err := cli.Call(context.Background(), "server", "o", "op", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	// Either the Ack or the janitor must evict; wait for whichever.
	deadline := time.After(3 * time.Second)
	for srv.Stats().CacheEvictions == 0 {
		select {
		case <-deadline:
			t.Fatal("reply cache never evicted")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestPeerBidirectional(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	epA, _ := f.Endpoint("A")
	epB, _ := f.Endpoint("B")

	mkEchoPeer := func(ep transport.Endpoint, tag string) *Peer {
		p := NewPeer(ep, codec, func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
			return "ok", []wire.Value{tag}, nil
		})
		t.Cleanup(func() { _ = p.Close() })
		return p
	}
	pa := mkEchoPeer(epA, "from-A")
	pb := mkEchoPeer(epB, "from-B")

	_, res, err := pa.Client.Call(context.Background(), "B", "o", "who", nil, QoS{})
	if err != nil || res[0] != "from-B" {
		t.Fatalf("A->B: %v %v", res, err)
	}
	_, res, err = pb.Client.Call(context.Background(), "A", "o", "who", nil, QoS{})
	if err != nil || res[0] != "from-A" {
		t.Fatalf("B->A: %v %v", res, err)
	}
}

func TestClosedClientRefuses(t *testing.T) {
	_, cli, mkServer := setup(t)
	mkServer(echoHandler)
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Call(context.Background(), "server", "o", "op", nil, QoS{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestMalformedPacketsIgnored(t *testing.T) {
	f, cli, mkServer := setup(t)
	mkServer(echoHandler)
	// Throw garbage at both endpoints directly through the fabric.
	junk, _ := f.Endpoint("junk")
	for _, pkt := range [][]byte{nil, {0}, {9, 9, 9}, []byte("garbage garbage garbage")} {
		_ = junk.Send("server", pkt)
		_ = junk.Send("client", pkt)
	}
	time.Sleep(10 * time.Millisecond)
	// The system must still work.
	if _, _, err := cli.Call(context.Background(), "server", "o", "op", []wire.Value{int64(1)}, QoS{}); err != nil {
		t.Fatalf("call after garbage: %v", err)
	}
}

func TestTCPTransportInterop(t *testing.T) {
	// The same protocol stack over real TCP (cross-process transport).
	sep, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cep, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sep, codec, echoHandler)
	cli := NewClient(cep, codec)
	t.Cleanup(func() {
		_ = cli.Close()
		_ = srv.Close()
		_ = sep.Close()
		_ = cep.Close()
	})
	outcome, res, err := cli.Call(context.Background(), sep.Addr(), "o", "op",
		[]wire.Value{"over tcp"}, QoS{Timeout: 5 * time.Second})
	if err != nil || outcome != "ok" || res[0] != "over tcp" {
		t.Fatalf("tcp call: outcome=%q res=%v err=%v", outcome, res, err)
	}
}
