// Interop tests for the packed-codec upgrade: the HELLO capability
// exchange must upgrade calls to ansa-packed/1 exactly when both sides
// can handle it, and fall back to plain binary in every mixed pairing —
// a packed-capable client against a plain server, a plain client
// against a packed-capable server, and batching peers that never
// advertised the capability bit.
package rpc

import (
	"context"
	"testing"
	"time"

	"odp/internal/netsim"
	"odp/internal/transport"
	"odp/internal/wire"
)

// interopRig wires a client and server over a fresh fabric, wrapping
// each side in a coalescer with the given capability byte when its
// wrap flag is set. No MarkBatching: capability must arrive over the
// wire, through the HELLO probe/ack exchange, exactly as deployed
// nodes negotiate it.
func interopRig(t *testing.T, wrapClient, wrapServer bool, caps byte) (*Client, *Server) {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	var cEnd, sEnd transport.Endpoint = cep, sep
	if wrapClient {
		cco := transport.NewCoalescer(cep, transport.WithCapabilities(caps))
		t.Cleanup(func() { _ = cco.Close() })
		cEnd = cco
	}
	if wrapServer {
		sco := transport.NewCoalescer(sep, transport.WithCapabilities(caps))
		t.Cleanup(func() { _ = sco.Close() })
		sEnd = sco
	}
	cli := NewClient(cEnd, codec)
	t.Cleanup(func() { _ = cli.Close() })
	srv := NewServer(sEnd, codec, echoHandler)
	t.Cleanup(func() { _ = srv.Close() })
	return cli, srv
}

// checkedCall runs one echo call and verifies the round-tripped result,
// which exercises the full encode/decode path under whatever protocol
// version the client picked.
func checkedCall(t *testing.T, cli *Client, i int) {
	t.Helper()
	outcome, results, err := cli.Call(context.Background(), "server", "obj", "reverse",
		[]wire.Value{int64(i), "payload"}, QoS{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != "ok" || len(results) != 2 || results[0] != "payload" || results[1] != int64(i) {
		t.Fatalf("call %d: outcome=%q results=%v", i, outcome, results)
	}
}

// TestPackedUpgradeNegotiated: two capable peers converge on packed via
// the in-band HELLO exchange, and upgraded calls still round-trip
// arguments and results exactly.
func TestPackedUpgradeNegotiated(t *testing.T) {
	cli, srv := interopRig(t, true, true, transport.CapPacked)
	// The probe's delivery can trail the first few request/reply rounds,
	// so drive calls until the upgrade is observed rather than assuming
	// a fixed warm-up count.
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for cli.Stats().PackedUpgrades == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packed upgrade never negotiated")
		}
		checkedCall(t, cli, i)
		i++
	}
	before := cli.Stats().PackedUpgrades
	for j := 0; j < 10; j++ {
		checkedCall(t, cli, i+j)
	}
	if got := cli.Stats().PackedUpgrades; got < before+10 {
		t.Fatalf("post-negotiation calls not all packed: %d -> %d", before, got)
	}
	if srv.Stats().Requests == 0 {
		t.Fatal("server saw no requests")
	}
}

// TestPackedClientPlainServer: a capable client against a server with no
// coalescer at all. The HELLO probe reaches the server's rpc demux as an
// unparseable frame and is dropped; every call stays version-1 binary
// and succeeds.
func TestPackedClientPlainServer(t *testing.T) {
	cli, srv := interopRig(t, true, false, transport.CapPacked)
	for i := 0; i < 20; i++ {
		checkedCall(t, cli, i)
	}
	if got := cli.Stats().PackedUpgrades; got != 0 {
		t.Fatalf("client upgraded %d calls against a plain server", got)
	}
	if got := srv.Stats().Requests; got != 20 {
		t.Fatalf("server executed %d of 20 requests", got)
	}
}

// TestPlainClientPackedServer is the reverse pairing: the server
// advertises packed but the client cannot hear it, so traffic stays
// version-1 binary — and the server's probe towards the client is
// dropped by the client's rpc demux without disturbing replies.
func TestPlainClientPackedServer(t *testing.T) {
	cli, srv := interopRig(t, false, true, transport.CapPacked)
	for i := 0; i < 20; i++ {
		checkedCall(t, cli, i)
	}
	if got := cli.Stats().PackedUpgrades; got != 0 {
		t.Fatalf("client without a negotiator upgraded %d calls", got)
	}
	if got := srv.Stats().Requests; got != 20 {
		t.Fatalf("server executed %d of 20 requests", got)
	}
}

// TestBatchingWithoutPackedCapability: peers that negotiate batching but
// advertise no capability bits keep exchanging version-1 binary bodies —
// the BATCH framing upgrade and the codec upgrade are independent.
func TestBatchingWithoutPackedCapability(t *testing.T) {
	cli, _ := interopRig(t, true, true, 0)
	bat, ok := cli.ep.(*transport.Coalescer)
	if !ok {
		t.Fatal("client endpoint is not a coalescer")
	}
	deadline := time.Now().Add(10 * time.Second)
	i := 0
	for !bat.PeerBatching("server") {
		if time.Now().After(deadline) {
			t.Fatal("batching never negotiated")
		}
		checkedCall(t, cli, i)
		i++
	}
	for j := 0; j < 10; j++ {
		checkedCall(t, cli, i+j)
	}
	if got := cli.Stats().PackedUpgrades; got != 0 {
		t.Fatalf("calls upgraded to packed without the capability bit: %d", got)
	}
}
