package rpc

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/netsim"
	"odp/internal/obs"
	"odp/internal/transport"
	"odp/internal/wire"
)

// tracedSetup builds a loopback client/server pair with a span collector
// on each side, sampling every call.
func tracedSetup(t *testing.T, wrap func(transport.Endpoint) transport.Endpoint, opts ...netsim.Option) (*Client, *obs.Collector, *obs.Collector, func(Handler, ...ServerOption) *Server) {
	t.Helper()
	f := netsim.NewFabric(opts...)
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	if wrap != nil {
		sep = wrap(sep)
	}
	ccol := obs.NewCollector("client", obs.WithSampleEvery(1))
	scol := obs.NewCollector("server", obs.WithSampleEvery(1))
	cli := NewClient(cep, codec, WithClientObserver(ccol))
	t.Cleanup(func() { _ = cli.Close() })
	mkServer := func(h Handler, sopts ...ServerOption) *Server {
		srv := NewServer(sep, codec, h, append([]ServerOption{WithServerObserver(scol)}, sopts...)...)
		t.Cleanup(func() { _ = srv.Close() })
		return srv
	}
	return cli, ccol, scol, mkServer
}

// spansOfKind filters a snapshot by span kind.
func spansOfKind(spans []obs.Span, kind string) []obs.Span {
	var out []obs.Span
	for _, s := range spans {
		if s.Kind == kind {
			out = append(out, s)
		}
	}
	return out
}

// TestTracedCallSpans proves one traced interrogation yields one tree:
// the client records a send span under the caller's root, the server a
// dispatch span under the send span, all sharing the root's trace ID.
func TestTracedCallSpans(t *testing.T) {
	cli, ccol, scol, mkServer := tracedSetup(t, nil)
	mkServer(echoHandler)

	root := ccol.Begin(obs.KindStub, "reverse")
	ctx := obs.ContextWith(context.Background(), root.Context())
	rootCtx := root.Context()
	if _, _, err := cli.Call(ctx, "server", "obj", "reverse",
		[]wire.Value{int64(1)}, QoS{}); err != nil {
		t.Fatal(err)
	}
	ccol.End(root)

	sends := spansOfKind(ccol.Snapshot(), obs.KindSend)
	if len(sends) != 1 {
		t.Fatalf("send spans = %d, want 1", len(sends))
	}
	send := sends[0]
	if send.TraceID != rootCtx.TraceID || send.ParentID != rootCtx.SpanID {
		t.Fatalf("send span not under root: %+v vs root %+v", send, rootCtx)
	}
	acks := spansOfKind(ccol.Snapshot(), obs.KindAck)
	if len(acks) != 1 || acks[0].ParentID != send.SpanID {
		t.Fatalf("ack event missing or misparented: %+v", acks)
	}

	dispatches := spansOfKind(scol.Snapshot(), obs.KindDispatch)
	if len(dispatches) != 1 {
		t.Fatalf("dispatch spans = %d, want 1", len(dispatches))
	}
	d := dispatches[0]
	if d.TraceID != rootCtx.TraceID {
		t.Fatalf("dispatch trace %x, want %x — context did not cross the wire", d.TraceID, rootCtx.TraceID)
	}
	if d.ParentID != send.SpanID {
		t.Fatalf("dispatch parent %x, want send span %x", d.ParentID, send.SpanID)
	}
	if d.Node != "server" {
		t.Fatalf("dispatch node %q", d.Node)
	}
}

// replyDropper swallows the first reply the server tries to send,
// forcing a client retransmission against an already-executed call.
type replyDropper struct {
	transport.Endpoint
	dropped atomic.Bool
}

func (d *replyDropper) Send(to string, pkt []byte) error {
	if len(pkt) >= 2 && pkt[1] == msgReply && d.dropped.CompareAndSwap(false, true) {
		return nil
	}
	return d.Endpoint.Send(to, pkt)
}

// TestRetransmitReusesSpanContext is the retransmission regression: the
// retransmitted request is the same encoded packet, so it carries the
// original span context, and the server's at-most-once table must not
// mint a second dispatch span for it. Time is a fake clock — the
// retransmission fires when logical time crosses QoS.Retransmit.
func TestRetransmitReusesSpanContext(t *testing.T) {
	fake := clock.NewFake(time.Unix(2000, 0))
	var dropper *replyDropper
	cli, ccol, scol, mkServer := tracedSetup(t, func(ep transport.Endpoint) transport.Endpoint {
		dropper = &replyDropper{Endpoint: ep}
		return dropper
	})
	cli.clk = fake
	srv := mkServer(echoHandler)

	root := ccol.Begin(obs.KindStub, "echo")
	ctx := obs.ContextWith(context.Background(), root.Context())
	done := make(chan error, 1)
	go func() {
		_, _, err := cli.Call(ctx, "server", "obj", "echo",
			[]wire.Value{int64(9)}, QoS{Timeout: time.Minute, Retransmit: time.Second})
		done <- err
	}()
	var callErr error
	waiting := true
	for i := 0; waiting && i < 500; i++ {
		select {
		case callErr = <-done:
			waiting = false
		default:
			fake.Advance(time.Second)
			time.Sleep(2 * time.Millisecond)
		}
	}
	if waiting {
		t.Fatal("call never completed under fake clock")
	}
	if callErr != nil {
		t.Fatal(callErr)
	}
	ccol.End(root)

	if !dropper.dropped.Load() {
		t.Fatal("first reply was not dropped; test exercises nothing")
	}
	if cli.Stats().Retransmissions == 0 {
		t.Fatal("no retransmission recorded")
	}
	if st := srv.Stats(); st.Duplicates == 0 && st.RepliesResent == 0 {
		t.Fatalf("server saw no duplicate: %+v", st)
	}

	sends := spansOfKind(ccol.Snapshot(), obs.KindSend)
	if len(sends) != 1 {
		t.Fatalf("send spans = %d, want 1 (one call, one span)", len(sends))
	}
	retrans := spansOfKind(ccol.Snapshot(), obs.KindRetransmit)
	if len(retrans) == 0 {
		t.Fatal("no retransmit event recorded")
	}
	for _, r := range retrans {
		if r.ParentID != sends[0].SpanID {
			t.Fatalf("retransmit event misparented: %+v", r)
		}
	}
	// The regression itself: the duplicate request reused the original
	// span context, and dedup kept the dispatch tree singular.
	dispatches := spansOfKind(scol.Snapshot(), obs.KindDispatch)
	if len(dispatches) != 1 {
		t.Fatalf("dispatch spans = %d, want exactly 1 despite retransmission", len(dispatches))
	}
	if dispatches[0].ParentID != sends[0].SpanID {
		t.Fatalf("dispatch parent %x, want original send span %x",
			dispatches[0].ParentID, sends[0].SpanID)
	}
}

// TestTracedAnnouncementSpans proves announcements propagate context the
// same way interrogations do.
func TestTracedAnnouncementSpans(t *testing.T) {
	cli, ccol, scol, mkServer := tracedSetup(t, nil)
	executed := make(chan struct{}, 1)
	mkServer(func(_ context.Context, in *Incoming) (string, []wire.Value, error) {
		if in.Announcement {
			executed <- struct{}{}
		}
		return "", nil, nil
	})

	root := ccol.Begin(obs.KindStub, "note")
	rootCtx := root.Context() // End recycles the span, so capture first
	ctx := obs.ContextWith(context.Background(), rootCtx)
	if err := cli.AnnounceCtx(ctx, "server", "obj", "note", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	ccol.End(root)
	select {
	case <-executed:
	case <-time.After(5 * time.Second):
		t.Fatal("announcement never executed")
	}

	anns := spansOfKind(ccol.Snapshot(), obs.KindAnnounce)
	if len(anns) != 1 || anns[0].ParentID != rootCtx.SpanID {
		t.Fatalf("announce span missing or misparented: %+v", anns)
	}
	deadline := time.Now().Add(5 * time.Second)
	var dispatches []obs.Span
	for time.Now().Before(deadline) {
		if dispatches = spansOfKind(scol.Snapshot(), obs.KindDispatch); len(dispatches) > 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if len(dispatches) != 1 {
		t.Fatalf("dispatch spans = %d, want 1", len(dispatches))
	}
	if dispatches[0].TraceID != anns[0].TraceID || dispatches[0].ParentID != anns[0].SpanID {
		t.Fatalf("announcement dispatch not under announce span: %+v vs %+v", dispatches[0], anns[0])
	}
}

// typeRecorder observes the message type of every outbound client packet.
type typeRecorder struct {
	transport.Endpoint
	mu    chan struct{}
	types []byte
}

func newTypeRecorder(ep transport.Endpoint) *typeRecorder {
	return &typeRecorder{Endpoint: ep, mu: make(chan struct{}, 1)}
}

func (r *typeRecorder) Send(to string, pkt []byte) error {
	if len(pkt) >= 2 {
		r.mu <- struct{}{}
		r.types = append(r.types, pkt[1])
		<-r.mu
	}
	return r.Endpoint.Send(to, pkt)
}

func (r *typeRecorder) sent() []byte {
	r.mu <- struct{}{}
	defer func() { <-r.mu }()
	return append([]byte(nil), r.types...)
}

// TestUnsampledCallsPutNothingOnTheWire pins the wire-format contract:
// sampling is encoded in the message type, so an unsampled (or untraced)
// call sends a plain msgRequest and a sampled one sends msgRequestT.
func TestUnsampledCallsPutNothingOnTheWire(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	rec := newTypeRecorder(cep)
	col := obs.NewCollector("client", obs.WithSampleEvery(1))
	cli := NewClient(rec, codec, WithClientObserver(col))
	t.Cleanup(func() { _ = cli.Close() })
	srv := NewServer(sep, codec, echoHandler)
	t.Cleanup(func() { _ = srv.Close() })
	_ = srv

	// Unsampled: no span context in ctx, BeginChild declines, so the
	// request goes out as a plain msgRequest.
	if _, _, err := cli.Call(context.Background(), "server", "obj", "echo", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	// Sampled: a root in ctx upgrades the message type.
	root := col.Begin(obs.KindStub, "echo")
	ctx := obs.ContextWith(context.Background(), root.Context())
	if _, _, err := cli.Call(ctx, "server", "obj", "echo", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	col.End(root)

	var requests []byte
	for _, mt := range rec.sent() {
		if mt == msgRequest || mt == msgRequestT {
			requests = append(requests, mt)
		}
	}
	if len(requests) != 2 || requests[0] != msgRequest || requests[1] != msgRequestT {
		t.Fatalf("request message types = %v, want [%d %d]", requests, msgRequest, msgRequestT)
	}
	// An untraced server executed both: traced frames degrade gracefully.
	if srv.Stats().Requests != 2 {
		t.Fatalf("server executed %d requests, want 2", srv.Stats().Requests)
	}
}

// TestPlainClientTracedServer proves the reverse interop direction: an
// untraced client's requests dispatch normally on a traced server and
// record no spans (there is no context to parent them under).
func TestPlainClientTracedServer(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })
	scol := obs.NewCollector("server", obs.WithSampleEvery(1))
	srv := NewServer(sep, codec, echoHandler, WithServerObserver(scol))
	t.Cleanup(func() { _ = srv.Close() })

	if _, _, err := cli.Call(context.Background(), "server", "obj", "echo", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	if srv.Stats().Requests != 1 {
		t.Fatal("request not executed")
	}
	if got := len(scol.Snapshot()); got != 0 {
		t.Fatalf("traced server recorded %d spans for an untraced call, want 0", got)
	}
}
