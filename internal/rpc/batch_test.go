// Tests for the rpc layer's interaction with the write coalescer
// (transport.Coalescer): ack piggybacking onto batches, the bounded
// announcement dedup structures behind the E4 fix, and handler-context
// cancellation on Close.
package rpc

import (
	"context"
	"testing"
	"time"

	"odp/internal/netsim"
	"odp/internal/transport"
	"odp/internal/wire"
)

// setupBatched wires a client and server whose shared fabric endpoints
// are wrapped in coalescers pre-marked as mutually capable, so every
// send takes the batching path from the first frame.
func setupBatched(t *testing.T) (*Client, func(Handler) *Server) {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cco := transport.NewCoalescer(cep)
	sco := transport.NewCoalescer(sep)
	t.Cleanup(func() {
		_ = cco.Close()
		_ = sco.Close()
	})
	cco.MarkBatching("server")
	sco.MarkBatching("client")
	cli := NewClient(cco, codec)
	t.Cleanup(func() { _ = cli.Close() })
	mkServer := func(h Handler) *Server {
		srv := NewServer(sco, codec, h)
		t.Cleanup(func() { _ = srv.Close() })
		return srv
	}
	return cli, mkServer
}

// TestCallsOverCoalescedEndpoints: the whole interrogation protocol —
// request, reply, ack, dedup — works unchanged when both directions are
// batched, and the traffic demonstrably went through BATCH frames.
func TestCallsOverCoalescedEndpoints(t *testing.T) {
	cli, mkServer := setupBatched(t)
	srv := mkServer(echoHandler)
	for i := 0; i < 20; i++ {
		outcome, results, err := cli.Call(context.Background(), "server", "obj", "reverse",
			[]wire.Value{int64(i), "x"}, QoS{Timeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if outcome != "ok" || len(results) != 2 || results[1] != int64(i) {
			t.Fatalf("call %d: outcome=%q results=%v", i, outcome, results)
		}
	}
	if st := srv.Stats(); st.Requests != 20 {
		t.Fatalf("server executed %d requests, want 20", st.Requests)
	}
	bst, ok := cli.BatchStats()
	if !ok {
		t.Fatal("client on a Coalescer must report batch stats")
	}
	if bst.BatchesSent == 0 || bst.FramesBatched == 0 {
		t.Fatalf("no batches on the wire: %+v", bst)
	}
}

// TestAckPiggybackOnBatches: on a batching endpoint acks are deferred
// and flushed ahead of the next send to the same destination, so they
// share its batch; none are lost (the server still evicts), and Close
// flushes the tail.
func TestAckPiggybackOnBatches(t *testing.T) {
	cli, mkServer := setupBatched(t)
	mkServer(echoHandler)
	const calls = 6
	for i := 0; i < calls; i++ {
		if _, _, err := cli.Call(context.Background(), "server", "obj", "reverse",
			[]wire.Value{int64(i)}, QoS{Timeout: 5 * time.Second}); err != nil {
			t.Fatal(err)
		}
	}
	st := cli.Stats()
	if st.AcksDeferred != calls {
		t.Fatalf("AcksDeferred = %d, want %d (every ack deferred on a batching endpoint)",
			st.AcksDeferred, calls)
	}
	// All but the last call's ack had a later send to piggyback on.
	if st.AcksPiggybacked < calls-1 {
		t.Fatalf("AcksPiggybacked = %d, want >= %d", st.AcksPiggybacked, calls-1)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if st := cli.Stats(); st.AcksPiggybacked != calls {
		t.Fatalf("Close must flush the deferred tail: piggybacked %d of %d",
			st.AcksPiggybacked, calls)
	}
}

// TestAcksImmediateWithoutBatching: on a plain endpoint the deferral
// machinery stays out of the way entirely.
func TestAcksImmediateWithoutBatching(t *testing.T) {
	_, cli, mkServer := setup(t)
	mkServer(echoHandler)
	if _, _, err := cli.Call(context.Background(), "server", "obj", "reverse",
		[]wire.Value{int64(1)}, QoS{}); err != nil {
		t.Fatal(err)
	}
	if st := cli.Stats(); st.AcksDeferred != 0 || st.AcksPiggybacked != 0 {
		t.Fatalf("plain endpoint deferred acks: %+v", st)
	}
	if _, ok := cli.BatchStats(); ok {
		t.Fatal("plain endpoint must not report batch stats")
	}
}

// TestAnnouncementDedupBounded is the E4 regression test: the server's
// announcement dedup state must stay O(1) in announcement volume — the
// unbounded map growth it replaces is what made E4Announcement ns/op a
// function of b.N.
func TestAnnouncementDedupBounded(t *testing.T) {
	_, cli, mkServer := setup(t)
	srv := mkServer(func(_ context.Context, _ *Incoming) (string, []wire.Value, error) {
		return "", nil, nil
	})

	const n = 20000
	for i := 0; i < n; i++ {
		if err := cli.Announce("server", "obj", "note", nil, QoS{}); err != nil {
			t.Fatal(err)
		}
	}
	pollUntil(t, "announcements delivered", func() bool {
		return srv.Stats().Announcements == n
	})

	var ringKeys, callEntries, ackQueue int
	for i := range srv.shards {
		sh := &srv.shards[i]
		sh.mu.Lock()
		ringKeys += len(sh.ringSet)
		callEntries += len(sh.cur) + len(sh.prev)
		ackQueue += len(sh.ackq)
		sh.mu.Unlock()
	}
	if max := numShards * announceRingSize; ringKeys > max {
		t.Fatalf("announcement dedup window grew past its bound: %d > %d", ringKeys, max)
	}
	if callEntries != 0 || ackQueue != 0 {
		t.Fatalf("announcements leaked call-table state: %d entries, %d queued acks",
			callEntries, ackQueue)
	}

	// The bounded window must still deduplicate a Repeats burst.
	before := srv.Stats()
	if err := cli.Announce("server", "obj", "note", nil, QoS{Repeats: 4}); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "repeat burst deduplicated", func() bool {
		st := srv.Stats()
		return st.Announcements == before.Announcements+1 &&
			st.AnnounceDedup == before.AnnounceDedup+4
	})
}

// TestServerCloseCancelsHandlerCtx: the context handed to handlers is
// cancelled by Close, so a handler blocked on it unwinds and Close's
// wg.Wait can return — cancellation propagates instead of being
// dropped at the dispatch boundary.
func TestServerCloseCancelsHandlerCtx(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, _ := f.Endpoint("client")
	sep, _ := f.Endpoint("server")
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })

	entered := make(chan struct{})
	srv := NewServer(sep, codec, func(ctx context.Context, _ *Incoming) (string, []wire.Value, error) {
		close(entered)
		<-ctx.Done() // blocks forever unless Close cancels
		return "", nil, ctx.Err()
	})

	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _, _ = cli.Call(ctx, "server", "obj", "block", nil, QoS{Timeout: 5 * time.Second})
	}()
	<-entered

	done := make(chan struct{})
	go func() {
		_ = srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: handler context was not cancelled")
	}
}
