package rpc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"odp/internal/wire"
)

func TestHeaderRoundTrip(t *testing.T) {
	tests := []header{
		{version: protoVersion, msgType: msgRequest, callID: 1, objID: "obj", op: "doIt"},
		{version: protoVersion, msgType: msgReply, callID: 1<<64 - 1, objID: "", op: ""},
		{version: protoVersion, msgType: msgAnnounce, callID: 0, objID: "a/b/c", op: "op with spaces"},
		{version: protoVersion, msgType: msgAck, callID: 42, objID: "x", op: ""},
	}
	for _, h := range tests {
		enc := encodeHeader(nil, h)
		enc = append(enc, []byte("BODY")...)
		got, rest, err := decodeHeader(enc)
		if err != nil {
			t.Fatalf("%+v: %v", h, err)
		}
		if got != h {
			t.Fatalf("round trip: %+v != %+v", got, h)
		}
		if string(rest) != "BODY" {
			t.Fatalf("rest %q", rest)
		}
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	prop := func(msgType uint8, callID uint64, objID, op string) bool {
		h := header{
			version: protoVersion,
			msgType: msgType,
			callID:  callID,
			objID:   objID,
			op:      op,
		}
		enc := encodeHeader(nil, h)
		got, rest, err := decodeHeader(enc)
		return err == nil && got == h && len(rest) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderVersionRejected(t *testing.T) {
	h := header{version: protoVersionPacked + 1, msgType: msgRequest, callID: 1}
	enc := encodeHeader(nil, h)
	if _, _, err := decodeHeader(enc); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("future version accepted: %v", err)
	}
	// Version 2 (packed body) shares the version-1 header layout and
	// must parse identically.
	h.version = protoVersionPacked
	enc = encodeHeader(nil, h)
	if got, _, err := decodeHeader(enc); err != nil || got != h {
		t.Fatalf("packed version rejected: %v (got %+v)", err, got)
	}
}

func TestHeaderTruncated(t *testing.T) {
	h := header{version: protoVersion, msgType: msgRequest, callID: 7, objID: "object", op: "operation"}
	enc := encodeHeader(nil, h)
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := decodeHeader(enc[:cut]); err == nil {
			t.Fatalf("truncated header (%d/%d bytes) accepted", cut, len(enc))
		}
	}
}

func TestReplyBodyRoundTrip(t *testing.T) {
	codec := wire.BinaryCodec{}
	fwd := wire.Ref{ID: "x", Endpoints: []string{"there"}, Epoch: 3}
	tests := []struct {
		name    string
		status  byte
		outcome string
		results []wire.Value
		msg     string
		fwd     wire.Ref
	}{
		{name: "ok-empty", status: statusOK, outcome: "ok"},
		{name: "ok-results", status: statusOK, outcome: "partial", results: []wire.Value{int64(1), "two", nil}},
		{name: "syserror", status: statusSysError, msg: "exploded"},
		{name: "denied", status: statusDenied, msg: "no"},
		{name: "noobject", status: statusNoObject},
		{name: "moved", status: statusMoved, fwd: fwd},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc, err := encodeReplyBody(codec, tt.status, tt.outcome, tt.results, tt.msg, tt.fwd)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := decodeReplyBody(codec, enc)
			if err != nil {
				t.Fatal(err)
			}
			if rb.status != tt.status || rb.outcome != tt.outcome || rb.msg != tt.msg {
				t.Fatalf("round trip: %+v", rb)
			}
			if len(rb.results) != len(tt.results) {
				t.Fatalf("results %v", rb.results)
			}
			for i := range tt.results {
				if !wire.Equal(rb.results[i], tt.results[i]) {
					t.Fatalf("result %d mismatch", i)
				}
			}
			if tt.status == statusMoved && !wire.Equal(rb.fwd, tt.fwd) {
				t.Fatalf("fwd %v", rb.fwd)
			}
		})
	}
}

func TestReplyBodyGarbage(t *testing.T) {
	codec := wire.BinaryCodec{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(48))
		rng.Read(buf)
		// Must never panic.
		_, _ = decodeReplyBody(codec, buf)
	}
	if _, err := decodeReplyBody(codec, nil); !errors.Is(err, ErrBadMessage) {
		t.Fatal("empty body accepted")
	}
	if _, err := decodeReplyBody(codec, []byte{99}); !errors.Is(err, ErrBadMessage) {
		t.Fatal("unknown status accepted")
	}
}

func TestErrorTypes(t *testing.T) {
	moved := &MovedError{Forward: wire.Ref{Endpoints: []string{"x"}}}
	if moved.Error() == "" {
		t.Fatal("empty moved message")
	}
	remote := &RemoteError{Msg: "boom"}
	if remote.Error() != "rpc: remote: boom" {
		t.Fatalf("remote message %q", remote.Error())
	}
	var asMoved *MovedError
	if !errors.As(error(moved), &asMoved) {
		t.Fatal("errors.As failed for MovedError")
	}
}
