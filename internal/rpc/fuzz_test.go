// Fuzzing for the invocation-packet decode path, exactly as the server's
// dispatch loop runs it: header, then (for traced types) the
// trace-context block, then the body. The seed corpus covers every
// message type, trace context present/absent/truncated, flag-byte
// variations and header truncations. The decoder must never panic, must
// reject truncated trace contexts, and must round-trip the fixed-size
// context block it accepts.
package rpc

import (
	"bytes"
	"testing"

	"odp/internal/obs"
	"odp/internal/wire"
)

// buildPacket assembles a packet the way the client does: header, then
// optional trace context, then encoded arguments.
func buildPacket(mt byte, callID uint64, objID, op string, traced bool, args []wire.Value) []byte {
	pkt := encodeHeader(nil, header{version: protoVersion, msgType: mt, callID: callID, objID: objID, op: op})
	if traced {
		pkt = appendTraceCtx(pkt, obs.SpanContext{TraceID: 0xABCD, SpanID: 0x1234})
	}
	pkt, err := wire.EncodeAllInto(wire.BinaryCodec{}, pkt, args)
	if err != nil {
		panic(err)
	}
	return pkt
}

func FuzzPacketDecode(f *testing.F) {
	args := []wire.Value{int64(7), "hello", wire.List{true}}
	// Well-formed frames of every type.
	f.Add(buildPacket(msgRequest, 1, "obj", "op", false, args))
	f.Add(buildPacket(msgAnnounce, 2, "obj", "note", false, nil))
	f.Add(buildPacket(msgRequestT, 3, "obj", "op", true, args))   // trace context present
	f.Add(buildPacket(msgAnnounceT, 4, "obj", "note", true, nil)) // traced announcement
	f.Add(buildPacket(msgAck, 5, "obj", "op", false, nil))        // ack carries no body
	reply := encodeHeader(nil, header{version: protoVersion, msgType: msgReply, callID: 6, objID: "obj", op: "op"})
	reply, _ = appendReplyBody(wire.BinaryCodec{}, reply, statusOK, "ok", args, "", wire.Ref{})
	f.Add(reply)
	// Malformed shapes around the trace-context block.
	traced := buildPacket(msgRequestT, 7, "obj", "op", true, args)
	f.Add(traced[:len(traced)-1]) // truncated inside the args
	plainHdr := encodeHeader(nil, header{version: protoVersion, msgType: msgRequestT, callID: 8, objID: "o", op: "p"})
	f.Add(plainHdr)                                                                       // traced type, no context at all
	f.Add(append(plainHdr[:len(plainHdr):len(plainHdr)], make([]byte, traceCtxLen-1)...)) // context cut short
	unsampled := append(plainHdr[:len(plainHdr):len(plainHdr)], make([]byte, traceCtxLen)...)
	f.Add(unsampled) // sampled bit clear, ids zero
	weird := buildPacket(msgRequestT, 9, "obj", "op", true, nil)
	weird[len(weird)-traceCtxLen] = 0xFF // every flag bit set
	f.Add(weird)
	f.Add([]byte{})                                         // empty
	f.Add([]byte{protoVersion})                             // version only
	f.Add([]byte{0xFF, msgRequest, 0, 0, 0, 0, 0, 0, 0, 0}) // future version
	f.Add(buildPacket(99, 10, "obj", "op", false, nil))     // unknown message type

	f.Fuzz(func(t *testing.T, data []byte) {
		h, body, err := decodeHeader(data)
		if err != nil {
			return
		}
		switch h.msgType {
		case msgRequestT, msgAnnounceT:
			sc, rest, err := readTraceCtx(body)
			if err != nil {
				return
			}
			// The accepted block is fixed-size and position-stable.
			block := body[:traceCtxLen]
			if block[0] == traceCtxSampled {
				if re := appendTraceCtx(nil, sc); !bytes.Equal(re, block) {
					t.Fatalf("trace context re-encode mismatch:\n in: % x\nout: % x", block, re)
				}
			} else if block[0]&traceCtxSampled == 0 && sc.Valid() {
				t.Fatalf("unsampled block produced valid context %+v", sc)
			}
			_, _ = wire.DecodeAll(wire.BinaryCodec{}, rest)
		case msgRequest, msgAnnounce:
			_, _ = wire.DecodeAll(wire.BinaryCodec{}, body)
		case msgReply:
			_, _ = decodeReplyBody(wire.BinaryCodec{}, body)
		}
	})
}
