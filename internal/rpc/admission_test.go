package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/netsim"
	"odp/internal/obs"
	"odp/internal/wire"
)

// admissionSetup builds a loopback pair whose server runs admission
// control on a fake clock, so bucket refill is deterministic.
func admissionSetup(t *testing.T, cfg AdmissionConfig) (*Client, *Server, *clock.Fake) {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })
	fc := clock.NewFake(time.Unix(100, 0))
	srv := NewServer(sep, codec, echoHandler, WithClock(fc), WithAdmission(cfg))
	t.Cleanup(func() { _ = srv.Close() })
	return cli, srv, fc
}

// TestAdmissionShedsBeyondBurst: a client gets Burst invocations up
// front, then ErrServerBusy until the bucket refills at Rate.
func TestAdmissionShedsBeyondBurst(t *testing.T) {
	cli, srv, fc := admissionSetup(t, AdmissionConfig{Rate: 1, Burst: 2})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{}); err != nil {
			t.Fatalf("call %d within burst: %v", i, err)
		}
	}
	_, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{})
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-burst call: err = %v, want ErrServerBusy", err)
	}
	if got := srv.Stats().AdmissionRejects; got != 1 {
		t.Fatalf("AdmissionRejects = %d, want 1", got)
	}

	// One second at Rate 1 earns exactly one more token.
	fc.Advance(time.Second)
	if _, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{}); err != nil {
		t.Fatalf("call after refill: %v", err)
	}
	if _, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{}); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("second call after single-token refill: err = %v, want ErrServerBusy", err)
	}
}

// TestAdmissionBusyReplyNotCached: a shed request must not burn its
// at-most-once slot — a retransmission of the same call id re-enters
// admission and executes once the bucket refills. This is what lets a
// client back off and retry instead of timing out against a poisoned
// dedup entry.
func TestAdmissionBusyReplyNotCached(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	rep, err := f.Endpoint("raw")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	fc := clock.NewFake(time.Unix(100, 0))
	srv := NewServer(sep, codec, echoHandler, WithClock(fc),
		WithAdmission(AdmissionConfig{Rate: 1, Burst: 1}))
	t.Cleanup(func() { _ = srv.Close() })

	replies := make(chan replyBody, 4)
	rep.SetHandler(func(from string, pkt []byte) {
		h, rest, err := decodeRawHeader(pkt)
		if err != nil || h.msgType != msgReply {
			return
		}
		rb, err := decodeReplyBody(codec, rest)
		if err != nil {
			return
		}
		replies <- rb
	})

	mkRequest := func(callID uint64) []byte {
		pkt := encodeHeader(nil, header{
			version: protoVersion, msgType: msgRequest, callID: callID, objID: "o", op: "op",
		})
		pkt, err := wire.EncodeAllInto(codec, pkt, nil)
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	drain, request := mkRequest(6), mkRequest(7)

	wait := func(label string) replyBody {
		t.Helper()
		select {
		case rb := <-replies:
			return rb
		case <-time.After(2 * time.Second):
			t.Fatalf("%s: no reply", label)
			return replyBody{}
		}
	}
	if err := rep.Send("server", drain); err != nil {
		t.Fatal(err)
	}
	if rb := wait("drain"); rb.status != statusOK {
		t.Fatalf("drain call: status = %d, want statusOK", rb.status)
	}
	if err := rep.Send("server", request); err != nil {
		t.Fatal(err)
	}
	if rb := wait("empty bucket"); rb.status != statusBusy {
		t.Fatalf("status = %d, want statusBusy", rb.status)
	}
	fc.Advance(time.Second) // earn one token
	if err := rep.Send("server", request); err != nil {
		t.Fatal(err)
	}
	if rb := wait("after refill"); rb.status != statusOK {
		t.Fatalf("retransmission after refill: status = %d, want statusOK", rb.status)
	}
	if got := srv.Stats().Requests; got != 2 {
		t.Fatalf("Requests = %d, want 2 (drain + retried call, busy not cached)", got)
	}
}

// TestAdmissionDropsAnnouncements: over-budget announcements vanish
// (§5.1 — announcement failures cannot be reported) but are counted.
func TestAdmissionDropsAnnouncements(t *testing.T) {
	cli, srv, _ := admissionSetup(t, AdmissionConfig{Rate: 0, Burst: 1})
	if err := cli.Announce("server", "o", "ping", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Announce("server", "o", "ping", nil, QoS{}); err != nil {
		t.Fatal(err) // fire-and-forget: the drop is invisible to the sender
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := srv.Stats()
		if st.AdmissionDrops == 1 && st.Announcements == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats = %+v, want 1 announcement + 1 drop", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionRejectSpan: a traced request shed by admission leaves a
// KindReject event under the caller's send span — the only trace of an
// invocation that never reached dispatch.
func TestAdmissionRejectSpan(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	ccol := obs.NewCollector("client", obs.WithSampleEvery(1))
	scol := obs.NewCollector("server", obs.WithSampleEvery(1))
	cli := NewClient(cep, codec, WithClientObserver(ccol))
	t.Cleanup(func() { _ = cli.Close() })
	srv := NewServer(sep, codec, echoHandler, WithServerObserver(scol),
		WithAdmission(AdmissionConfig{Rate: 0, Burst: 1}))
	t.Cleanup(func() { _ = srv.Close() })

	root := ccol.Begin(obs.KindStub, "op")
	rootCtx := root.Context() // End recycles the span, so capture first
	ctx := obs.ContextWith(context.Background(), rootCtx)
	if _, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.Call(ctx, "server", "o", "op", nil, QoS{}); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("err = %v, want ErrServerBusy", err)
	}
	ccol.End(root)

	rejects := spansOfKind(scol.Snapshot(), obs.KindReject)
	if len(rejects) != 1 {
		t.Fatalf("KindReject spans = %d, want 1", len(rejects))
	}
	if rejects[0].TraceID != rootCtx.TraceID {
		t.Fatalf("reject trace %x, want %x", rejects[0].TraceID, rootCtx.TraceID)
	}
	if rejects[0].Name != "op" {
		t.Fatalf("reject span name %q, want the shed operation", rejects[0].Name)
	}
	if dispatches := spansOfKind(scol.Snapshot(), obs.KindDispatch); len(dispatches) != 1 {
		t.Fatalf("dispatch spans = %d, want 1 (the admitted call only)", len(dispatches))
	}
}
