package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/netsim"
	"odp/internal/wire"
)

// TestReplyCacheExpiryFakeClock drives the server's reply-cache janitor
// with a manual clock: the dedup entry for a completed call is evicted
// exactly when logical time crosses its TTL, with no wall-clock sleeping
// beyond goroutine-scheduling polls.
func TestReplyCacheExpiryFakeClock(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	fake := clock.NewFake(time.Unix(1000, 0))
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })
	srv := NewServer(sep, codec, echoHandler, WithReplyTTL(3*time.Second), WithClock(fake))
	t.Cleanup(func() { _ = srv.Close() })

	if _, _, err := cli.Call(context.Background(), "server", "obj", "echo",
		[]wire.Value{int64(7)}, QoS{}); err != nil {
		t.Fatal(err)
	}

	// The janitor ticks once per logical second. The entry expires at
	// most TTL after completion (the client's Ack may shorten that to the
	// ack grace), so a handful of one-second advances must evict it.
	for i := 0; i < 50 && srv.Stats().CacheEvictions == 0; i++ {
		fake.Advance(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	if got := srv.Stats().CacheEvictions; got == 0 {
		t.Fatal("reply-cache entry never evicted under fake clock")
	}
}

// TestCallTimeoutFakeClock drives the client's QoS deadline with a manual
// clock: a call into a black hole times out when logical time crosses
// QoS.Timeout.
func TestCallTimeoutFakeClock(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("blackhole"); err != nil { // exists, never answers
		t.Fatal(err)
	}
	fake := clock.NewFake(time.Unix(0, 0))
	cli := NewClient(cep, codec, WithClientClock(fake))
	t.Cleanup(func() { _ = cli.Close() })

	errCh := make(chan error, 1)
	go func() {
		_, _, err := cli.Call(context.Background(), "blackhole", "obj", "noop", nil,
			QoS{Timeout: 3 * time.Second, Retransmit: time.Second})
		errCh <- err
	}()
	for i := 0; i < 200; i++ {
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("err = %v, want ErrTimeout", err)
			}
			if cli.Stats().Timeouts != 1 {
				t.Fatalf("Timeouts = %d, want 1", cli.Stats().Timeouts)
			}
			return
		default:
			fake.Advance(time.Second)
			time.Sleep(2 * time.Millisecond)
		}
	}
	t.Fatal("call never timed out under fake clock")
}
