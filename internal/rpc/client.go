package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
	"odp/internal/transport"
	"odp/internal/wire"
)

// QoS is the communications quality-of-service constraint attached to an
// invocation ("for both kinds of invocation, communications quality of
// service constraints must be specified — either explicitly or by
// default", §5.1).
type QoS struct {
	// Timeout bounds the whole interrogation. Zero means DefaultTimeout.
	Timeout time.Duration
	// Retransmit is the interval between request retransmissions. Zero
	// means DefaultRetransmit.
	Retransmit time.Duration
	// Repeats is the number of extra transmissions for an announcement
	// (announcements have no reply, so repetition is the only delivery
	// lever).
	Repeats int
}

// Default QoS parameters.
const (
	DefaultTimeout    = 2 * time.Second
	DefaultRetransmit = 20 * time.Millisecond
)

func (q QoS) withDefaults() QoS {
	if q.Timeout <= 0 {
		q.Timeout = DefaultTimeout
	}
	if q.Retransmit <= 0 {
		q.Retransmit = DefaultRetransmit
	}
	return q
}

// ClientStats counts protocol events on the client side.
type ClientStats struct {
	Calls           uint64
	Retransmissions uint64
	Timeouts        uint64
	Announcements   uint64
}

// Client issues invocations from one endpoint. It multiplexes any number
// of concurrent calls.
type Client struct {
	ep    transport.Endpoint
	codec wire.Codec
	clk   clock.Clock

	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan replyBody
	closed  bool

	statsMu sync.Mutex
	stats   ClientStats
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientClock sets the clock driving call timeouts and retransmission
// intervals. Default clock.Real{}.
func WithClientClock(c clock.Clock) ClientOption {
	return func(cl *Client) { cl.clk = c }
}

// NewClient wraps ep. The client takes over the endpoint's handler; a
// process that is both client and server should use a Peer (see
// NewPeer) so requests and replies share one endpoint.
func NewClient(ep transport.Endpoint, codec wire.Codec, opts ...ClientOption) *Client {
	c := newClientNoHandler(ep, codec, opts...)
	ep.SetHandler(c.onPacket)
	return c
}

// newClientNoHandler is used by Peer, which demultiplexes packets itself.
func newClientNoHandler(ep transport.Endpoint, codec wire.Codec, opts ...ClientOption) *Client {
	c := &Client{
		ep:      ep,
		codec:   codec,
		clk:     clock.Real{},
		pending: make(map[uint64]chan replyBody),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() ClientStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return c.stats
}

// Close releases the client. In-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
	return nil
}

// Call performs an interrogation of op on object objID at dest. It blocks
// until a reply arrives, ctx is cancelled, or the QoS deadline passes.
// The results are the application outcome and its result package; err is
// non-nil only for system-level failures.
func (c *Client) Call(ctx context.Context, dest, objID, op string, args []wire.Value, qos QoS) (string, []wire.Value, error) {
	qos = qos.withDefaults()
	body, err := wire.EncodeAll(c.codec, args)
	if err != nil {
		return "", nil, err
	}
	id := c.nextID.Add(1)
	pkt := encodeHeader(nil, header{
		version: protoVersion,
		msgType: msgRequest,
		callID:  id,
		objID:   objID,
		op:      op,
	})
	pkt = append(pkt, body...)

	ch := make(chan replyBody, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return "", nil, ErrClosed
	}
	c.pending[id] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}()

	c.count(func(s *ClientStats) { s.Calls++ })
	if err := c.ep.Send(dest, pkt); err != nil {
		return "", nil, err
	}

	deadline := c.clk.NewTimer(qos.Timeout)
	defer deadline.Stop()
	retrans := c.clk.NewTicker(qos.Retransmit)
	defer retrans.Stop()

	for {
		select {
		case rb, ok := <-ch:
			if !ok {
				return "", nil, ErrClosed
			}
			// Acknowledge so the server may evict its reply cache.
			ack := encodeHeader(nil, header{
				version: protoVersion,
				msgType: msgAck,
				callID:  id,
				objID:   objID,
			})
			_ = c.ep.Send(dest, ack)
			return c.interpret(rb)
		case <-retrans.C():
			c.count(func(s *ClientStats) { s.Retransmissions++ })
			if err := c.ep.Send(dest, pkt); err != nil {
				return "", nil, err
			}
		case <-deadline.C():
			c.count(func(s *ClientStats) { s.Timeouts++ })
			return "", nil, ErrTimeout
		case <-ctx.Done():
			return "", nil, ctx.Err()
		}
	}
}

// Announce performs a request-only invocation: no reply, no outcome, no
// failure report (§5.1). QoS.Repeats extra copies are sent back to back.
func (c *Client) Announce(dest, objID, op string, args []wire.Value, qos QoS) error {
	body, err := wire.EncodeAll(c.codec, args)
	if err != nil {
		return err
	}
	id := c.nextID.Add(1)
	pkt := encodeHeader(nil, header{
		version: protoVersion,
		msgType: msgAnnounce,
		callID:  id,
		objID:   objID,
		op:      op,
	})
	pkt = append(pkt, body...)
	c.count(func(s *ClientStats) { s.Announcements++ })
	for i := 0; i <= qos.Repeats; i++ {
		if err := c.ep.Send(dest, pkt); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) interpret(rb replyBody) (string, []wire.Value, error) {
	switch rb.status {
	case statusOK:
		return rb.outcome, rb.results, nil
	case statusSysError:
		return "", nil, &RemoteError{Msg: rb.msg}
	case statusNoObject:
		return "", nil, ErrNoObject
	case statusMoved:
		return "", nil, &MovedError{Forward: rb.fwd}
	case statusDenied:
		return "", nil, ErrDenied
	default:
		return "", nil, ErrBadMessage
	}
}

// onPacket handles inbound packets when the client owns the endpoint.
func (c *Client) onPacket(from string, pkt []byte) {
	h, rest, err := decodeHeader(pkt)
	if err != nil || h.msgType != msgReply {
		return
	}
	c.deliverReply(h, rest)
}

// deliverReply routes a decoded reply to the waiting call, dropping
// duplicates (a retransmitted reply for a call that already completed).
func (c *Client) deliverReply(h header, body []byte) {
	rb, err := decodeReplyBody(c.codec, body)
	if err != nil {
		return
	}
	c.mu.Lock()
	ch := c.pending[h.callID]
	c.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- rb:
	default: // duplicate reply
	}
}

func (c *Client) count(update func(*ClientStats)) {
	c.statsMu.Lock()
	update(&c.stats)
	c.statsMu.Unlock()
}
