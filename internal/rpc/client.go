package rpc

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
	"odp/internal/obs"
	"odp/internal/transport"
	"odp/internal/wire"
)

// QoS is the communications quality-of-service constraint attached to an
// invocation ("for both kinds of invocation, communications quality of
// service constraints must be specified — either explicitly or by
// default", §5.1).
type QoS struct {
	// Timeout bounds the whole interrogation. Zero means DefaultTimeout.
	Timeout time.Duration
	// Retransmit is the interval between request retransmissions. Zero
	// means DefaultRetransmit.
	Retransmit time.Duration
	// Repeats is the number of extra transmissions for an announcement
	// (announcements have no reply, so repetition is the only delivery
	// lever).
	Repeats int
}

// Default QoS parameters.
const (
	DefaultTimeout    = 2 * time.Second
	DefaultRetransmit = 20 * time.Millisecond
)

func (q QoS) withDefaults() QoS {
	if q.Timeout <= 0 {
		q.Timeout = DefaultTimeout
	}
	if q.Retransmit <= 0 {
		q.Retransmit = DefaultRetransmit
	}
	return q
}

// ClientStats counts protocol events on the client side.
type ClientStats struct {
	Calls           uint64
	Retransmissions uint64
	Timeouts        uint64
	Announcements   uint64
	// BadReplies counts replies whose body failed to decode: without
	// this counter, corrupt replies vanish silently.
	BadReplies uint64
	// OrphanReplies counts well-formed replies that matched no pending
	// call — duplicates of already-completed interrogations, or replies
	// from a confused peer.
	OrphanReplies uint64
	// AcksDeferred counts acks queued for piggybacking instead of sent
	// in their own datagram (batching endpoints only).
	AcksDeferred uint64
	// AcksPiggybacked counts deferred acks later flushed ahead of a
	// request, retransmission or announcement to the same destination,
	// so they shared that send's batch.
	AcksPiggybacked uint64
	// PackedUpgrades counts invocations sent as protocol version 2
	// (ansa-packed/1 body) because the destination advertised
	// transport.CapPacked.
	PackedUpgrades uint64
}

// clientCounters is the hot-path form of ClientStats: independent atomics
// instead of one mutex, so concurrent calls do not serialize on counting.
type clientCounters struct {
	calls           atomic.Uint64
	retransmissions atomic.Uint64
	timeouts        atomic.Uint64
	announcements   atomic.Uint64
	badReplies      atomic.Uint64
	orphanReplies   atomic.Uint64
	acksDeferred    atomic.Uint64
	acksPiggybacked atomic.Uint64
	packedUpgrades  atomic.Uint64
}

// numShards splits the pending-call and server-call tables. Shard count
// is a power of two so the selector is a mask, sized to exceed typical
// core counts without bloating the fixed footprint.
const numShards = 16

// pendingShard is one stripe of the pending-call table.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]chan replyBody
}

// replyChPool recycles the one-slot reply channels of completed calls.
// A channel is pooled only by the path that proved no sender can still
// reference it (see Call), so a recycled channel can never deliver a
// stale reply to a new call.
var replyChPool = sync.Pool{
	New: func() interface{} { return make(chan replyBody, 1) },
}

// Client issues invocations from one endpoint. It multiplexes any number
// of concurrent calls; concurrency is shard-level, so parallel calls only
// contend when their ids collide modulo numShards.
type Client struct {
	ep    transport.Endpoint
	codec wire.Codec
	clk   clock.Clock

	nextID atomic.Uint64
	closed atomic.Bool
	shards [numShards]pendingShard

	// batching is set when ep coalesces writes (transport.Batcher):
	// acks are then deferred and flushed just before the next
	// substantive send to the same destination, so they ride in that
	// send's batch instead of paying for their own datagram.
	batching bool
	ackMu    sync.Mutex
	acks     []pendingAck

	// lazy, when non-nil, queues flushed acks on the endpoint without
	// forcing a write of their own, so an ack and the next request to
	// the same peer share one datagram (see transport.LazySender).
	lazy transport.LazySender

	// caps, when non-nil, is consulted per call: a destination that
	// advertised transport.CapPacked gets its invocations as protocol
	// version 2 with ansa-packed/1 bodies. Set only when the session
	// codec is the binary default — an explicitly chosen codec (text,
	// for debugging) is never silently overridden.
	caps transport.CapNegotiator

	// obs, when set, records protocol-layer spans (send, retransmit,
	// ack, announce) under the span context carried by the call's ctx.
	// Nil means tracing off; the hot path pays one nil check.
	obs *obs.Collector

	stats clientCounters
	// lat is the send→reply latency distribution: first transmission to
	// reply delivery, retransmissions included. Unlike spans it is
	// always on — recording is one atomic increment.
	lat obs.Histogram
}

// pendingAck is one deferred acknowledgement awaiting piggybacking.
type pendingAck struct {
	dest  string
	objID string
	id    uint64
}

// ackFlushBound caps the deferred-ack queue: reaching it flushes
// everything, so acks to a destination the client never contacts again
// still leave within a bounded number of calls (and at the latest on
// Close). The server's reply cache tolerates the added latency — it
// holds unacked replies for a full replyTTL anyway.
const ackFlushBound = 32

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithClientClock sets the clock driving call timeouts and retransmission
// intervals. Default clock.Real{}.
func WithClientClock(c clock.Clock) ClientOption {
	return func(cl *Client) { cl.clk = c }
}

// WithClientObserver installs the span collector that records
// protocol-layer spans. Nil (the default) disables tracing.
func WithClientObserver(col *obs.Collector) ClientOption {
	return func(cl *Client) { cl.obs = col }
}

// NewClient wraps ep. The client takes over the endpoint's handler; a
// process that is both client and server should use a Peer (see
// NewPeer) so requests and replies share one endpoint.
func NewClient(ep transport.Endpoint, codec wire.Codec, opts ...ClientOption) *Client {
	c := newClientNoHandler(ep, codec, opts...)
	ep.SetHandler(c.onPacket)
	return c
}

// newClientNoHandler is used by Peer, which demultiplexes packets itself.
func newClientNoHandler(ep transport.Endpoint, codec wire.Codec, opts ...ClientOption) *Client {
	c := &Client{
		ep:    ep,
		codec: codec,
		clk:   clock.Real{},
	}
	_, c.batching = ep.(transport.Batcher)
	c.lazy, _ = ep.(transport.LazySender)
	if _, bin := codec.(wire.BinaryCodec); bin {
		c.caps, _ = ep.(transport.CapNegotiator)
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]chan replyBody)
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// shard selects the pending stripe for a call id. Ids are sequential, so
// the low bits alone spread consecutive calls across all stripes.
func (c *Client) shard(id uint64) *pendingShard {
	return &c.shards[id&(numShards-1)]
}

// Stats returns a snapshot of client counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Calls:           c.stats.calls.Load(),
		Retransmissions: c.stats.retransmissions.Load(),
		Timeouts:        c.stats.timeouts.Load(),
		Announcements:   c.stats.announcements.Load(),
		BadReplies:      c.stats.badReplies.Load(),
		OrphanReplies:   c.stats.orphanReplies.Load(),
		AcksDeferred:    c.stats.acksDeferred.Load(),
		AcksPiggybacked: c.stats.acksPiggybacked.Load(),
		PackedUpgrades:  c.stats.packedUpgrades.Load(),
	}
}

// CallLatency snapshots the send→reply latency histogram.
func (c *Client) CallLatency() obs.HistogramSnapshot {
	return c.lat.Snapshot()
}

// BatchStats reports the endpoint's write-coalescing counters, when the
// client rides a batching endpoint (see transport.Coalescer).
func (c *Client) BatchStats() (transport.CoalescerStats, bool) {
	if b, ok := c.ep.(transport.Batcher); ok {
		return b.BatchStats(), true
	}
	return transport.CoalescerStats{}, false
}

// Close releases the client. In-flight calls fail with ErrClosed.
func (c *Client) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.flushAcks("")
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		chans := make([]chan replyBody, 0, len(sh.m))
		for id, ch := range sh.m {
			chans = append(chans, ch)
			delete(sh.m, id)
		}
		sh.mu.Unlock()
		for _, ch := range chans {
			close(ch)
		}
	}
	return nil
}

// register claims a reply channel for id. The closed check runs under the
// shard lock, so a concurrent Close either sees the entry (and closes its
// channel) or is observed here (and the call fails with ErrClosed).
func (c *Client) register(id uint64) (chan replyBody, bool) {
	ch := replyChPool.Get().(chan replyBody)
	sh := c.shard(id)
	sh.mu.Lock()
	if c.closed.Load() {
		sh.mu.Unlock()
		replyChPool.Put(ch)
		return nil, false
	}
	sh.m[id] = ch
	sh.mu.Unlock()
	return ch, true
}

// unregister removes id's entry if still present, reporting whether this
// caller claimed it. A false return means a deliverer claimed the entry
// and owns the (sole) send on the channel.
func (c *Client) unregister(id uint64) bool {
	sh := c.shard(id)
	sh.mu.Lock()
	_, present := sh.m[id]
	if present {
		delete(sh.m, id)
	}
	sh.mu.Unlock()
	return present
}

// Call performs an interrogation of op on object objID at dest. It blocks
// until a reply arrives, ctx is cancelled, or the QoS deadline passes.
// The results are the application outcome and its result package; err is
// non-nil only for system-level failures.
func (c *Client) Call(ctx context.Context, dest, objID, op string, args []wire.Value, qos QoS) (string, []wire.Value, error) {
	qos = qos.withDefaults()

	// The send span covers the whole interrogation, first transmission
	// to reply; retransmissions and the ack are instant events under it.
	// The sampling decision was taken at the trace root: an untraced ctx
	// leaves sp nil and the packet uses the plain request type, so
	// unsampled calls put nothing extra on the wire (or the heap).
	var sp *obs.Span
	mt := byte(msgRequest)
	if c.obs != nil {
		if sp = c.obs.BeginChild(obs.FromContext(ctx), obs.KindSend, op); sp != nil {
			mt = msgRequestT
		}
	}
	defer c.obs.End(sp)

	// A destination that advertised CapPacked gets the invocation as
	// protocol version 2: identical header, body in the packed codec.
	// Before negotiation completes (or against a plain peer) PeerCaps
	// reports zero and the call goes out as version 1 — per-call
	// fallback, no connection state.
	ver := byte(protoVersion)
	if c.caps != nil && c.caps.PeerCaps(dest)&transport.CapPacked != 0 {
		ver = protoVersionPacked
		c.stats.packedUpgrades.Add(1)
	}

	// Header, trace context and argument vector encode into one pooled
	// buffer, reused across retransmissions (transports do not retain
	// packets) — which is also what guarantees a retransmitted request
	// carries the original span context.
	bufp := wire.GetBuffer()
	defer wire.PutBuffer(bufp)
	id := c.nextID.Add(1)
	pkt := encodeHeader(*bufp, header{
		version: ver,
		msgType: mt,
		callID:  id,
		objID:   objID,
		op:      op,
	})
	if sp != nil {
		pkt = appendTraceCtx(pkt, sp.Context())
	}
	pkt, err := wire.EncodeAllInto(bodyCodec(ver, c.codec), pkt, args)
	if err != nil {
		return "", nil, err
	}
	*bufp = pkt

	ch, ok := c.register(id)
	if !ok {
		return "", nil, ErrClosed
	}

	c.stats.calls.Add(1)
	if c.batching {
		// Deferred acks for this destination leave now, packed into the
		// same batch as the request about to go out.
		c.flushAcks(dest)
	}
	if err := c.ep.Send(dest, pkt); err != nil {
		c.abandon(id, ch)
		return "", nil, err
	}

	// One timer serves both retransmission and the deadline, re-armed
	// after each fire (clock.Timer has no Reset): the next fire is the
	// earlier of the retransmission interval and the remaining budget,
	// and elapsed time against start decides which one it was. The
	// common case — reply inside the first interval — uses one pooled
	// timer instead of a timer plus a ticker.
	start := c.clk.Now()
	interval := qos.Retransmit
	if qos.Timeout < interval {
		interval = qos.Timeout
	}
	t := clock.AcquireTimer(c.clk, interval)
	defer func() { clock.ReleaseTimer(t) }()

	for {
		select {
		case rb, open := <-ch:
			if !open {
				return "", nil, ErrClosed
			}
			// The deliverer removed the pending entry before sending, so
			// no other sender exists and the drained channel is safe to
			// recycle.
			replyChPool.Put(ch)
			c.lat.Observe(c.clk.Since(start))
			// Acknowledge so the server may evict its reply cache. On a
			// batching endpoint the ack is deferred to piggyback on the
			// next outgoing batch; otherwise it is sent immediately.
			c.noteAck(dest, objID, id)
			c.obs.Event(sp.Context(), obs.KindAck, op)
			return c.interpret(rb)
		case <-t.C():
			elapsed := c.clk.Since(start)
			if elapsed >= qos.Timeout {
				c.stats.timeouts.Add(1)
				c.abandon(id, ch)
				return "", nil, ErrTimeout
			}
			c.stats.retransmissions.Add(1)
			c.obs.Event(sp.Context(), obs.KindRetransmit, op)
			if c.batching {
				c.flushAcks(dest)
			}
			if err := c.ep.Send(dest, pkt); err != nil {
				c.abandon(id, ch)
				return "", nil, err
			}
			next := qos.Retransmit
			if rem := qos.Timeout - elapsed; rem < next {
				next = rem
			}
			clock.ReleaseTimer(t)
			t = clock.AcquireTimer(c.clk, next)
		case <-ctx.Done():
			c.abandon(id, ch)
			return "", nil, ctx.Err()
		}
	}
}

// abandon gives up on a call. If this caller still owned the pending
// entry the channel provably has no sender and is recycled; otherwise a
// deliverer is mid-send and the channel is left for the collector (its
// buffered send cannot block).
func (c *Client) abandon(id uint64, ch chan replyBody) {
	if c.unregister(id) {
		replyChPool.Put(ch)
	}
}

// noteAck acknowledges a completed call: immediately on a plain
// endpoint, deferred onto the piggyback queue on a batching one.
func (c *Client) noteAck(dest, objID string, id uint64) {
	if !c.batching {
		c.sendAck(dest, objID, id)
		return
	}
	c.ackMu.Lock()
	c.acks = append(c.acks, pendingAck{dest: dest, objID: objID, id: id})
	n := len(c.acks)
	c.ackMu.Unlock()
	c.stats.acksDeferred.Add(1)
	if n >= ackFlushBound {
		c.flushAcks("")
	}
}

// flushAcks sends deferred acks for dest (all destinations when dest is
// empty). Callers invoke it immediately before a substantive send, so
// the flushed acks and that send coalesce into one batch.
func (c *Client) flushAcks(dest string) {
	c.ackMu.Lock()
	if len(c.acks) == 0 {
		c.ackMu.Unlock()
		return
	}
	var take []pendingAck
	if dest == "" {
		take = c.acks
		c.acks = nil
	} else {
		kept := c.acks[:0]
		for _, a := range c.acks {
			if a.dest == dest {
				take = append(take, a)
			} else {
				kept = append(kept, a)
			}
		}
		c.acks = kept
	}
	c.ackMu.Unlock()
	for _, a := range take {
		c.sendAck(a.dest, a.objID, a.id)
		c.stats.acksPiggybacked.Add(1)
	}
}

// sendAck writes one ack packet from a pooled buffer (acks carry no
// body, so they stay version 1 regardless of negotiation). On an
// endpoint with lazy sends the ack is only queued — it rides in the
// batch the next substantive send to that peer claims, sharing its
// datagram instead of paying for a write of its own.
func (c *Client) sendAck(dest, objID string, id uint64) {
	ackp := wire.GetBuffer()
	ack := encodeHeader(*ackp, header{
		version: protoVersion,
		msgType: msgAck,
		callID:  id,
		objID:   objID,
	})
	if c.lazy != nil {
		_ = c.lazy.SendLazy(dest, ack)
	} else {
		_ = c.ep.Send(dest, ack)
	}
	*ackp = ack
	wire.PutBuffer(ackp)
}

// Announce performs a request-only invocation: no reply, no outcome, no
// failure report (§5.1). QoS.Repeats extra copies are sent back to back.
func (c *Client) Announce(dest, objID, op string, args []wire.Value, qos QoS) error {
	return c.AnnounceCtx(context.Background(), dest, objID, op, args, qos)
}

// AnnounceCtx is Announce with a caller context. The announcement still
// cannot block or fail-report (its semantics are unchanged), but a span
// context carried by ctx propagates to the announcee, so announcements
// triggered inside a traced invocation join its tree.
func (c *Client) AnnounceCtx(ctx context.Context, dest, objID, op string, args []wire.Value, qos QoS) error {
	var sp *obs.Span
	mt := byte(msgAnnounce)
	if c.obs != nil {
		if sp = c.obs.BeginChild(obs.FromContext(ctx), obs.KindAnnounce, op); sp != nil {
			mt = msgAnnounceT
		}
	}
	defer c.obs.End(sp)

	ver := byte(protoVersion)
	if c.caps != nil && c.caps.PeerCaps(dest)&transport.CapPacked != 0 {
		ver = protoVersionPacked
		c.stats.packedUpgrades.Add(1)
	}
	bufp := wire.GetBuffer()
	defer wire.PutBuffer(bufp)
	pkt := encodeHeader(*bufp, header{
		version: ver,
		msgType: mt,
		callID:  c.nextID.Add(1),
		objID:   objID,
		op:      op,
	})
	if sp != nil {
		pkt = appendTraceCtx(pkt, sp.Context())
	}
	pkt, err := wire.EncodeAllInto(bodyCodec(ver, c.codec), pkt, args)
	if err != nil {
		return err
	}
	*bufp = pkt
	c.stats.announcements.Add(1)
	if c.batching {
		c.flushAcks(dest)
	}
	// Announcements are fire-and-forget, so nothing is gained by paying
	// the direct-write path on the caller's dime: a lazy enqueue lets the
	// flusher pack concurrent announcers' bursts into shared datagrams.
	send := c.ep.Send
	if c.lazy != nil {
		send = c.lazy.SendLazy
	}
	for i := 0; i <= qos.Repeats; i++ {
		if err := send(dest, pkt); err != nil {
			return err
		}
	}
	return nil
}

func (c *Client) interpret(rb replyBody) (string, []wire.Value, error) {
	switch rb.status {
	case statusOK:
		return rb.outcome, rb.results, nil
	case statusSysError:
		return "", nil, &RemoteError{Msg: rb.msg}
	case statusNoObject:
		return "", nil, ErrNoObject
	case statusMoved:
		return "", nil, &MovedError{Forward: rb.fwd}
	case statusDenied:
		return "", nil, ErrDenied
	case statusBusy:
		return "", nil, ErrServerBusy
	default:
		return "", nil, ErrBadMessage
	}
}

// onPacket handles inbound packets when the client owns the endpoint.
// The raw header parse skips materialising the objID/op strings, which
// a reply never needs — the call id alone routes it.
func (c *Client) onPacket(from string, pkt []byte) {
	h, rest, err := decodeRawHeader(pkt)
	if err != nil || h.msgType != msgReply {
		return
	}
	c.deliverReply(h.version, h.callID, rest)
}

// deliverReply routes a decoded reply to the waiting call, decoding the
// body in the codec of the version it arrived as (a packed request
// earns a packed reply). Decoding is synchronous (body aliases a
// transport buffer that is reused after this returns) and fully
// copying. Undecodable and unmatched replies are counted, not silently
// dropped. Claiming the pending entry before the send makes this
// goroutine the channel's sole sender, which is what lets completed
// calls recycle their channels.
func (c *Client) deliverReply(version byte, callID uint64, body []byte) {
	rb, err := decodeReplyBody(bodyCodec(version, c.codec), body)
	if err != nil {
		c.stats.badReplies.Add(1)
		return
	}
	sh := c.shard(callID)
	sh.mu.Lock()
	ch, ok := sh.m[callID]
	if ok {
		delete(sh.m, callID)
	}
	sh.mu.Unlock()
	if !ok {
		c.stats.orphanReplies.Add(1)
		return
	}
	ch <- rb // buffered, sole sender: never blocks
}
