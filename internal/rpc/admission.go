package rpc

import (
	"sync"
	"time"

	"odp/internal/clock"
)

// AdmissionConfig bounds per-client request admission with a token
// bucket: each client (keyed by transport address) starts with Burst
// tokens, earns Rate tokens per second, and spends one per invocation.
// A request arriving at an empty bucket is shed with an immediate
// statusBusy reply (surfaced as ErrServerBusy) instead of queueing —
// the paper's QoS annotations (§5.1) want overload reported, not
// absorbed into unbounded latency. Announcements at an empty bucket are
// dropped and counted (§5.1: announcement failures cannot be reported).
type AdmissionConfig struct {
	// Rate is tokens added per second per client.
	Rate float64
	// Burst is the bucket capacity and initial balance.
	Burst int
}

// admissionIdleTTL is how long an untouched bucket survives before the
// janitor reclaims it; a returning client simply mints a fresh full
// bucket, which is exactly the state an idle one converges to anyway.
const admissionIdleTTL = time.Minute

// admission holds the per-client token buckets, sharded by FNV-1a over
// the client address so concurrent clients contend only within a stripe.
// Bucket arithmetic runs on the server clock, so admission windows are
// deterministic under a clock.Fake.
type admission struct {
	cfg    AdmissionConfig
	clk    clock.Clock
	shards [numShards]admissionShard
}

type admissionShard struct {
	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	tokens  float64
	touched time.Time
}

func newAdmission(cfg AdmissionConfig, clk clock.Clock) *admission {
	a := &admission{cfg: cfg, clk: clk}
	for i := range a.shards {
		a.shards[i].buckets = make(map[string]*tokenBucket)
	}
	return a
}

func (a *admission) shard(from string) *admissionShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(from); i++ {
		h ^= uint64(from[i])
		h *= prime64
	}
	return &a.shards[h&(numShards-1)]
}

// admit spends one token from from's bucket, reporting false when the
// bucket is empty (the caller sheds the invocation).
func (a *admission) admit(from string) bool {
	now := a.clk.Now()
	sh := a.shard(from)
	sh.mu.Lock()
	b := sh.buckets[from]
	if b == nil {
		b = &tokenBucket{tokens: float64(a.cfg.Burst)}
		sh.buckets[from] = b
	} else if elapsed := now.Sub(b.touched); elapsed > 0 {
		b.tokens += elapsed.Seconds() * a.cfg.Rate
		if capacity := float64(a.cfg.Burst); b.tokens > capacity {
			b.tokens = capacity
		}
	}
	b.touched = now
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	sh.mu.Unlock()
	return ok
}

// prune drops buckets idle past admissionIdleTTL. Called from the
// server janitor on its rotation tick, so abandoned clients cannot leak
// bucket state.
func (a *admission) prune(now time.Time) {
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for from, b := range sh.buckets {
			if now.Sub(b.touched) > admissionIdleTTL {
				delete(sh.buckets, from)
			}
		}
		sh.mu.Unlock()
	}
}
