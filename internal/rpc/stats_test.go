package rpc

import (
	"context"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/netsim"
	"odp/internal/wire"
)

// pollUntil spins the scheduler until cond holds or the budget runs out.
// Netsim delivers asynchronously even on loopback, so counter assertions
// need a settling window.
func pollUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never held: %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBadAndOrphanReplyCounters exercises the two client-side drop paths
// that used to be silent: replies whose body does not decode, and
// well-formed replies that match no pending call. Both must surface in
// ClientStats rather than vanish.
func TestBadAndOrphanReplyCounters(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := f.Endpoint("rogue")
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(cep, codec)
	t.Cleanup(func() { _ = cli.Close() })

	// A reply header followed by a body that cannot decode (status byte
	// missing entirely).
	bad := encodeHeader(nil, header{
		version: protoVersion,
		msgType: msgReply,
		callID:  1,
		objID:   "obj",
		op:      "op",
	})
	if err := rogue.Send("client", bad); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, "BadReplies == 1", func() bool { return cli.Stats().BadReplies == 1 })

	// A perfectly well-formed reply for a call id that was never issued.
	orphan := encodeHeader(nil, header{
		version: protoVersion,
		msgType: msgReply,
		callID:  999,
		objID:   "obj",
		op:      "op",
	})
	orphan, err = appendReplyBody(codec, orphan, statusOK, "ok", nil, "", wire.Ref{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := rogue.Send("client", orphan); err != nil {
			t.Fatal(err)
		}
	}
	pollUntil(t, "OrphanReplies == 3", func() bool { return cli.Stats().OrphanReplies == 3 })

	if got := cli.Stats().BadReplies; got != 1 {
		t.Fatalf("BadReplies = %d, want 1", got)
	}
}

// TestRetransmissionStormAccounting drives a retransmission storm with a
// fake clock and demands exact bookkeeping: every redundant request packet
// must land in Duplicates, every redundant reply in RepliesResent, and the
// client must count the replies it no longer wants as orphans. Nothing is
// executed twice and nothing disappears.
func TestRetransmissionStormAccounting(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}

	cliClk := clock.NewFake(time.Unix(0, 0))
	srvClk := clock.NewFake(time.Unix(0, 0)) // frozen: the reply cache never expires
	release := make(chan struct{})
	gated := func(ctx context.Context, in *Incoming) (string, []wire.Value, error) {
		<-release
		return "done", nil, nil
	}
	cli := NewClient(cep, codec, WithClientClock(cliClk))
	t.Cleanup(func() { _ = cli.Close() })
	srv := NewServer(sep, codec, gated, WithClock(srvClk))
	t.Cleanup(func() { _ = srv.Close() })

	args := []wire.Value{int64(42)}
	type result struct {
		outcome string
		err     error
	}
	done := make(chan result, 1)
	go func() {
		outcome, _, err := cli.Call(context.Background(), "server", "obj", "slow", args,
			QoS{Timeout: time.Hour, Retransmit: time.Second})
		done <- result{outcome, err}
	}()

	// Phase 1: the handler is blocked, so each logical second produces one
	// client retransmission, and every one must be suppressed as a
	// duplicate of the in-progress execution — never re-executed, never
	// answered from the (empty) reply cache.
	const storm = 7
	for i := 0; i < 500 && cli.Stats().Retransmissions < storm; i++ {
		cliClk.Advance(time.Second)
		time.Sleep(2 * time.Millisecond)
	}
	if cli.Stats().Retransmissions < storm {
		t.Fatalf("storm never built: %d retransmissions", cli.Stats().Retransmissions)
	}

	close(release)
	res := <-done
	if res.err != nil || res.outcome != "done" {
		t.Fatalf("call: outcome %q, err %v", res.outcome, res.err)
	}
	// The call is over, so the retransmission count is final.
	retrans := cli.Stats().Retransmissions

	pollUntil(t, "storm duplicates all counted", func() bool {
		return srv.Stats().Duplicates == retrans
	})
	if got := srv.Stats(); got.Requests != 1 || got.RepliesResent != 0 {
		t.Fatalf("after storm: Requests=%d RepliesResent=%d, want 1 and 0", got.Requests, got.RepliesResent)
	}

	// Phase 2: replay the identical request after completion. Each copy
	// must be answered from the reply cache (RepliesResent), counted as a
	// duplicate, and discarded by the client as an orphan — the server
	// clock is frozen, so the cache cannot have expired.
	replay := encodeHeader(nil, header{
		version: protoVersion,
		msgType: msgRequest,
		callID:  1, // first id issued by the client above
		objID:   "obj",
		op:      "slow",
	})
	replay, err = wire.EncodeAllInto(codec, replay, args)
	if err != nil {
		t.Fatal(err)
	}
	const replays = 5
	for i := 0; i < replays; i++ {
		if err := cep.Send("server", replay); err != nil {
			t.Fatal(err)
		}
	}

	pollUntil(t, "replayed requests answered from cache", func() bool {
		return srv.Stats().RepliesResent == replays
	})
	pollUntil(t, "resent replies counted as orphans", func() bool {
		return cli.Stats().OrphanReplies == replays
	})

	// Full ledger: one execution; every redundant request is a duplicate;
	// only post-completion duplicates were answered from the cache.
	ss := srv.Stats()
	if ss.Requests != 1 {
		t.Fatalf("Requests = %d, want 1 (re-execution!)", ss.Requests)
	}
	if want := retrans + replays; ss.Duplicates != want {
		t.Fatalf("Duplicates = %d, want %d (storm %d + replays %d)", ss.Duplicates, want, retrans, replays)
	}
	if ss.RepliesResent != replays {
		t.Fatalf("RepliesResent = %d, want %d", ss.RepliesResent, replays)
	}
	if got := cli.Stats().BadReplies; got != 0 {
		t.Fatalf("BadReplies = %d, want 0", got)
	}
}
