package rpc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
	"odp/internal/obs"
	"odp/internal/transport"
	"odp/internal/wire"
)

// Incoming describes one inbound invocation as seen by a Handler. The
// descriptor itself is pooled: it is only valid for the duration of the
// Handler call and must not be retained. When ZeroCopy is false, Args
// is a private decoded copy and may be kept or handed off freely.
type Incoming struct {
	// From is the transport address the invocation arrived from.
	From string
	// ObjID names the destination interface.
	ObjID string
	// Op names the operation.
	Op string
	// Args is the decoded argument vector.
	Args []wire.Value
	// Announcement is true for request-only invocations; the handler's
	// outcome and results are discarded in that case.
	Announcement bool
	// ZeroCopy marks an invocation decoded on the zero-copy fast path:
	// the ObjID and Op strings and every string/[]byte reachable from
	// Args alias transport or arena storage owned by the dispatcher.
	// They are valid for the duration of the Handler call (including
	// use in reply results); anything retained beyond it must first be
	// copied out with wire.DetachArgs or wire.DetachValue.
	ZeroCopy bool
}

// Handler executes one invocation. Returning a nil error delivers
// (outcome, results) to the invoker. Returning ErrNoObject, ErrDenied or
// a *MovedError maps onto the corresponding protocol status; any other
// error becomes a RemoteError at the client.
type Handler func(ctx context.Context, in *Incoming) (outcome string, results []wire.Value, err error)

// ServerStats counts protocol events on the server side.
type ServerStats struct {
	Requests       uint64 // distinct executions started
	Duplicates     uint64 // retransmissions suppressed by at-most-once
	RepliesResent  uint64 // cached replies retransmitted
	Announcements  uint64 // announcement executions
	AnnounceDedup  uint64 // duplicate announcements suppressed
	CacheEvictions uint64

	// AdmissionRejects counts interrogations shed with a busy reply;
	// AdmissionDrops counts announcements silently dropped. Both zero
	// unless the server was built WithAdmission.
	AdmissionRejects uint64
	AdmissionDrops   uint64
}

// serverCounters is the hot-path form of ServerStats: independent
// atomics, so concurrent dispatches do not serialize on counting.
type serverCounters struct {
	requests         atomic.Uint64
	duplicates       atomic.Uint64
	repliesResent    atomic.Uint64
	announcements    atomic.Uint64
	announceDedup    atomic.Uint64
	cacheEvictions   atomic.Uint64
	admissionRejects atomic.Uint64
	admissionDrops   atomic.Uint64
}

// callShard is one stripe of the at-most-once call table. Interrogations
// live in a two-generation map pair: claims go into cur, lookups consult
// cur then prev, and the janitor rotates cur→prev every replyTTL, so a
// done entry survives at least one full TTL and at most about two — with
// O(1) work per rotation instead of a scan proportional to the table.
// Announcements, which vastly outnumber interrogations in announcement-
// heavy load (E4), use a fixed-capacity ring instead: the dedup window
// the protocol needs only spans a QoS.Repeats burst, so a bounded
// recent-keys set suffices and the shard's footprint stays constant no
// matter how many announcements pass through (this is what made
// E4Announcement ns/op grow with b.N before).
type callShard struct {
	mu   sync.Mutex
	cur  map[callKey]*serverCall // current-generation interrogation slots
	prev map[callKey]*serverCall // previous generation, read-only until swept
	ackq []ackedKey              // acked entries awaiting their grace deadline

	ring    []callKey       // recent announcement keys, oldest overwritten
	ringSet map[callKey]int // ring membership → slot index
	ringPos int
}

// ackedKey queues one acked interrogation for lazy eviction: the janitor
// drains the queue instead of scanning every entry for expiry.
type ackedKey struct {
	key     callKey
	expires time.Time
}

// announceRingSize is the per-shard announcement dedup window. Repeats
// of one announcement arrive back to back, so a window thousands deep
// (numShards × announceRingSize keys process-wide) is far wider than
// any burst the QoS.Repeats lever can produce.
const announceRingSize = 512

// Server dispatches inbound invocations from one endpoint to a Handler,
// enforcing at-most-once execution per (client, call id). The call table
// is sharded by call-key hash so concurrent clients contend only within
// a stripe.
type Server struct {
	ep      transport.Endpoint
	codec   wire.Codec
	handler Handler

	// inline dispatches handlers synchronously in the delivery
	// goroutine instead of spawning one per request. Safe only on
	// endpoints whose deliveries are independently scheduled
	// (transport.ConcurrentDeliverer) — on a serial read loop an
	// inline handler blocking on a nested call would deadlock the
	// very replies it waits for. Auto-detected; see WithInlineDispatch.
	inline bool

	closed atomic.Bool
	shards [numShards]callShard
	wg     sync.WaitGroup
	stop   chan struct{}

	// ctx is the server-lifetime context handed to every handler; Close
	// cancels it so blocking handlers can unwind instead of stranding
	// Close in wg.Wait.
	ctx    context.Context
	cancel context.CancelFunc

	replyTTL time.Duration
	clk      clock.Clock

	// obs, when set, records a dispatch span for every traced request
	// under the span context the packet carried. Nil means tracing off.
	obs *obs.Collector

	// admission, when set, meters inbound invocations per client before
	// they claim a call-table slot. Nil means every invocation admitted.
	admission *admission
	// admissionCfg holds the WithAdmission config until the clock is
	// resolved (options apply in any order).
	admissionCfg *AdmissionConfig

	stats serverCounters
	// dispatchLat is the handler-execution latency distribution,
	// recorded for every request and announcement. Always on: one
	// atomic increment per dispatch.
	dispatchLat obs.Histogram
}

type callKey struct {
	from string
	id   uint64
}

// shard selects the stripe for key by FNV-1a over its fields: ids alone
// are sequential per client, so the source address must participate to
// spread multiple clients.
func (s *Server) shard(key callKey) *callShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.from); i++ {
		h ^= uint64(key.from[i])
		h *= prime64
	}
	id := key.id
	for i := 0; i < 8; i++ {
		h ^= id & 0xff
		h *= prime64
		id >>= 8
	}
	return &s.shards[h&(numShards-1)]
}

// serverCall tracks one at-most-once execution slot.
type serverCall struct {
	done    bool
	acked   bool   // client confirmed receipt; queued on the shard's ackq
	reply   []byte // full reply packet, cached for retransmission
	expires time.Time
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithReplyTTL sets how long completed replies stay cached when no Ack
// arrives. Default 5s.
func WithReplyTTL(ttl time.Duration) ServerOption {
	return func(s *Server) { s.replyTTL = ttl }
}

// WithClock sets the clock driving reply-cache TTLs and the janitor.
// Default clock.Real{}; tests pass a clock.Fake to exercise expiry
// deterministically.
func WithClock(c clock.Clock) ServerOption {
	return func(s *Server) { s.clk = c }
}

// WithServerObserver installs the span collector that records dispatch
// spans for traced requests. Nil (the default) disables tracing.
func WithServerObserver(col *obs.Collector) ServerOption {
	return func(s *Server) { s.obs = col }
}

// WithAdmission enables per-client token-bucket admission control:
// requests beyond a client's bucket are shed with an immediate busy
// reply (ErrServerBusy at the client) before claiming any call-table
// state, and over-budget announcements are dropped. The buckets run on
// the server clock (WithClock), so admission windows are deterministic
// under a clock.Fake.
func WithAdmission(cfg AdmissionConfig) ServerOption {
	return func(s *Server) { s.admissionCfg = &cfg }
}

// WithInlineDispatch overrides the automatic inline-dispatch detection.
// Inline dispatch runs handlers synchronously in the delivery goroutine
// — no per-request goroutine, and argument payloads may be decoded
// zero-copy against the packet. It is enabled automatically when the
// endpoint reports transport.ConcurrentDeliverer; forcing it on over a
// serial transport risks deadlock on nested invocations.
func WithInlineDispatch(on bool) ServerOption {
	return func(s *Server) { s.inline = on }
}

// NewServer wraps ep and dispatches to handler. The server takes over the
// endpoint's handler; use a Peer for combined client/server endpoints.
func NewServer(ep transport.Endpoint, codec wire.Codec, handler Handler, opts ...ServerOption) *Server {
	s := newServerNoHandler(ep, codec, handler, opts...)
	ep.SetHandler(s.onPacket)
	return s
}

func newServerNoHandler(ep transport.Endpoint, codec wire.Codec, handler Handler, opts ...ServerOption) *Server {
	s := &Server{
		ep:       ep,
		codec:    codec,
		handler:  handler,
		stop:     make(chan struct{}),
		replyTTL: 5 * time.Second,
		clk:      clock.Real{},
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())
	if cd, ok := ep.(transport.ConcurrentDeliverer); ok && cd.DeliversConcurrently() {
		s.inline = true
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.cur = make(map[callKey]*serverCall)
		sh.prev = make(map[callKey]*serverCall)
		sh.ring = make([]callKey, announceRingSize)
		sh.ringSet = make(map[callKey]int, announceRingSize)
	}
	for _, o := range opts {
		o(s)
	}
	if s.admissionCfg != nil {
		s.admission = newAdmission(*s.admissionCfg, s.clk)
	}
	s.wg.Add(1)
	go s.janitor()
	return s
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Requests:         s.stats.requests.Load(),
		Duplicates:       s.stats.duplicates.Load(),
		RepliesResent:    s.stats.repliesResent.Load(),
		Announcements:    s.stats.announcements.Load(),
		AnnounceDedup:    s.stats.announceDedup.Load(),
		CacheEvictions:   s.stats.cacheEvictions.Load(),
		AdmissionRejects: s.stats.admissionRejects.Load(),
		AdmissionDrops:   s.stats.admissionDrops.Load(),
	}
}

// DispatchLatency snapshots the handler-execution latency histogram.
func (s *Server) DispatchLatency() obs.HistogramSnapshot {
	return s.dispatchLat.Snapshot()
}

// Close stops the server and waits for running handlers.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	s.cancel()
	close(s.stop)
	s.wg.Wait()
	return nil
}

// onPacket handles inbound packets when the server owns the endpoint.
func (s *Server) onPacket(from string, pkt []byte) {
	h, rest, err := decodeRawHeader(pkt)
	if err != nil {
		return
	}
	s.dispatch(from, h, rest)
}

// dispatch routes one decoded message. h and body alias a transport
// buffer, so everything that outlives this call must be decoded or
// copied before it returns; argument decoding is therefore synchronous
// (or against a private arena). Unknown message types (including the
// traced variants, on peers built before they existed) fall through and
// are dropped, never misparsed.
func (s *Server) dispatch(from string, h rawHeader, body []byte) {
	switch h.msgType {
	case msgRequest:
		s.onRequest(from, h, body, obs.SpanContext{})
	case msgAnnounce:
		s.onAnnounce(from, h, body, obs.SpanContext{})
	case msgRequestT:
		if tc, rest, err := readTraceCtx(body); err == nil {
			s.onRequest(from, h, rest, tc)
		}
	case msgAnnounceT:
		if tc, rest, err := readTraceCtx(body); err == nil {
			s.onAnnounce(from, h, rest, tc)
		}
	case msgAck:
		s.onAck(from, h.callID)
	}
}

// claimRequest reserves the at-most-once slot for an interrogation key
// in the current generation. It returns the new slot, or nil when the
// key is a duplicate (dup reports which, and resend carries the cached
// reply when execution already finished). closed reports a shut server.
func (s *Server) claimRequest(key callKey) (sc *serverCall, dup bool, resend []byte, closed bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return nil, true, nil, true
	}
	old, ok := sh.cur[key]
	if !ok {
		old, ok = sh.prev[key]
	}
	if ok {
		if old.done {
			resend = old.reply
		}
		sh.mu.Unlock()
		return nil, true, resend, false
	}
	sc = &serverCall{expires: s.clk.Now().Add(s.replyTTL)}
	sh.cur[key] = sc
	s.wg.Add(1)
	sh.mu.Unlock()
	return sc, false, nil, false
}

// claimAnnounce reserves the dedup slot for an announcement key in the
// shard's fixed ring, displacing the oldest remembered key. No per-call
// state outlives the ring slot, so announcement throughput costs O(1)
// memory regardless of volume.
func (s *Server) claimAnnounce(key callKey) (dup, closed bool) {
	sh := s.shard(key)
	sh.mu.Lock()
	if s.closed.Load() {
		sh.mu.Unlock()
		return false, true
	}
	if _, seen := sh.ringSet[key]; seen {
		sh.mu.Unlock()
		return true, false
	}
	if old := sh.ring[sh.ringPos]; old != (callKey{}) {
		delete(sh.ringSet, old)
	}
	sh.ring[sh.ringPos] = key
	sh.ringSet[key] = sh.ringPos
	sh.ringPos++
	if sh.ringPos == len(sh.ring) {
		sh.ringPos = 0
	}
	s.wg.Add(1)
	sh.mu.Unlock()
	return false, false
}

func (s *Server) onRequest(from string, h rawHeader, body []byte, tc obs.SpanContext) {
	key := callKey{from: from, id: h.callID}
	sc, dup, resend, closed := s.claimRequest(key)
	if dup {
		if closed {
			return
		}
		// Duplicate: resend the cached reply if execution finished,
		// otherwise suppress (the reply will go out when it does).
		// Either way no new execution starts, so a retransmitted traced
		// request — which carries the original span context verbatim —
		// cannot produce a second dispatch span.
		s.stats.duplicates.Add(1)
		if resend != nil {
			s.stats.repliesResent.Add(1)
			_ = s.ep.Send(from, resend)
		}
		return
	}

	// Admission runs after duplicate suppression (a retransmission of an
	// admitted call must not pay twice) but before execution claims any
	// lasting state: a rejected request surrenders its freshly-claimed
	// slot, so a later retransmission re-attempts admission against a
	// refilled bucket instead of being suppressed into a timeout.
	if s.admission != nil && !s.admission.admit(from) {
		s.unclaim(key)
		s.stats.admissionRejects.Add(1)
		if s.obs != nil && tc.Valid() {
			// The op string must outlive the packet: the span ring keeps it.
			s.obs.Event(tc, obs.KindReject, string(h.op))
		}
		s.sendBusy(from, h)
		return
	}

	s.stats.requests.Add(1)
	s.startExecute(from, h, body, key, sc, false, tc)
}

// unclaim releases a request slot claimed but never executed (admission
// reject). The slot may have rotated into prev if the janitor ticked in
// between, so both generations are checked.
func (s *Server) unclaim(key callKey) {
	sh := s.shard(key)
	sh.mu.Lock()
	if _, ok := sh.cur[key]; ok {
		delete(sh.cur, key)
	} else {
		delete(sh.prev, key)
	}
	sh.mu.Unlock()
	s.wg.Done()
}

// sendBusy issues an immediate uncached statusBusy reply: nothing is
// retained, so retransmissions of the shed request re-enter admission.
func (s *Server) sendBusy(from string, h rawHeader) {
	reply := encodeHeader(nil, header{
		version: h.version,
		msgType: msgReply,
		callID:  h.callID,
		objID:   aliasString(h.objID),
		op:      aliasString(h.op),
	})
	reply, err := appendReplyBody(bodyCodec(h.version, s.codec), reply,
		statusBusy, "", nil, "", wire.Ref{})
	if err != nil {
		return
	}
	_ = s.ep.Send(from, reply)
}

func (s *Server) onAnnounce(from string, h rawHeader, body []byte, tc obs.SpanContext) {
	key := callKey{from: from, id: h.callID}
	dup, closed := s.claimAnnounce(key)
	if closed {
		return
	}
	if dup {
		// Repeated announcement (QoS.Repeats): execute once only.
		s.stats.announceDedup.Add(1)
		return
	}

	// Over-budget announcements are dropped, not answered: §5.1 —
	// announcement failures cannot be reported. The ring entry stays, so
	// QoS.Repeats copies of the dropped announcement dedup as usual.
	if s.admission != nil && !s.admission.admit(from) {
		s.stats.admissionDrops.Add(1)
		if s.obs != nil && tc.Valid() {
			s.obs.Event(tc, obs.KindReject, string(h.op))
		}
		s.wg.Done()
		return
	}

	s.stats.announcements.Add(1)
	s.startExecute(from, h, body, key, nil, true, tc)
}

// startExecute decodes the argument vector and runs the handler — in
// place on the inline path, on a fresh goroutine otherwise.
//
// Inline (concurrent-delivery endpoints): the handler finishes before
// the delivery callback returns, so header fields and packed arguments
// may alias the packet outright — the zero-copy path. Version-1 bodies
// still decode through the session codec (which materialises private
// values), but skip the goroutine hand-off all the same.
//
// Asynchronous (serial transports): the packet dies when this call
// returns, so version-1 bodies are decoded synchronously as before and
// a packed body is copied once into a pooled arena that the aliasing
// decode then targets; the arena lives until the reply has been
// encoded. Either way the argument payload is copied at most once.
func (s *Server) startExecute(from string, h rawHeader, body []byte, key callKey, sc *serverCall, announcement bool, tc obs.SpanContext) {
	if s.inline {
		var (
			args []wire.Value
			err  error
			zc   bool

			objID, op string
		)
		if h.version == protoVersionPacked {
			args, err = wire.PackedCodec{}.DecodeAllAlias(nil, body)
			objID, op = aliasString(h.objID), aliasString(h.op)
			if s.obs != nil && tc.TraceID != 0 {
				// The span ring retains the operation name beyond this
				// dispatch; only sampled requests pay the copy.
				op = string(h.op)
			}
			zc = true
		} else {
			args, err = wire.DecodeAll(s.codec, body)
			objID, op = string(h.objID), string(h.op)
		}
		s.execute(from, h.version, h.callID, objID, op, args, err, key, sc, announcement, tc, zc, nil)
		return
	}
	objID, op := string(h.objID), string(h.op)
	if h.version == protoVersionPacked {
		arena := wire.GetBuffer()
		*arena = append((*arena)[:0], body...)
		args, err := wire.PackedCodec{}.DecodeAllAlias(nil, *arena)
		go s.execute(from, h.version, h.callID, objID, op, args, err, key, sc, announcement, tc, true, arena)
		return
	}
	args, err := wire.DecodeAll(s.codec, body)
	go s.execute(from, h.version, h.callID, objID, op, args, err, key, sc, announcement, tc, false, nil)
}

// ackGrace is how long a completed call entry survives after the client's
// Ack. Immediate eviction would be unsound: a request retransmission sent
// just before the client received the reply can still be in flight, and
// must be recognised as a duplicate when it lands, not re-executed.
const ackGrace = 250 * time.Millisecond

func (s *Server) onAck(from string, callID uint64) {
	key := callKey{from: from, id: callID}
	sh := s.shard(key)
	sh.mu.Lock()
	sc, ok := sh.cur[key]
	if !ok {
		sc, ok = sh.prev[key]
	}
	if ok && sc.done && !sc.acked {
		sc.acked = true
		if exp := s.clk.Now().Add(ackGrace); exp.Before(sc.expires) {
			sc.expires = exp
		}
		// Queue for lazy eviction: the janitor drains this instead of
		// scanning the whole table. The entry stays resendable until
		// the clock actually passes the grace deadline, so a straggling
		// retransmission still hits the cache.
		sh.ackq = append(sh.ackq, ackedKey{key: key, expires: sc.expires})
	}
	sh.mu.Unlock()
}

// incomingPool recycles Handler call descriptors (handlers must not
// retain them — see Incoming).
var incomingPool = sync.Pool{New: func() interface{} { return new(Incoming) }}

// execute runs the handler and, for interrogations, sends and caches
// the reply, encoded in the codec of the version the request arrived
// in. args were decoded by the dispatcher; decodeErr carries any
// failure into the reply path. When zeroCopy is set, objID, op and the
// argument payload alias packet or arena storage valid until this
// function returns (arena, if non-nil, is the pooled copy backing them
// and is released at the end — after the reply encode, which may read
// results aliasing it).
func (s *Server) execute(from string, version byte, callID uint64, objID, op string, args []wire.Value, decodeErr error, key callKey, sc *serverCall, announcement bool, tc obs.SpanContext, zeroCopy bool, arena *[]byte) {
	defer s.wg.Done()
	if arena != nil {
		defer wire.PutBuffer(arena)
	}
	var (
		outcome string
		results []wire.Value
		err     = decodeErr
	)
	if err == nil {
		in := incomingPool.Get().(*Incoming)
		*in = Incoming{
			From:         from,
			ObjID:        objID,
			Op:           op,
			Args:         args,
			Announcement: announcement,
			ZeroCopy:     zeroCopy,
		}
		// Handlers get the server-lifetime context: Close cancels it,
		// so a handler that blocks (on locks, channels, or nested
		// invocations) can select on ctx.Done() and unwind. A traced
		// request adds a dispatch span under the wire context and hands
		// its own context to the handler, so nested invocations the
		// servant makes join the caller's tree.
		ctx := s.ctx
		var sp *obs.Span
		if s.obs != nil {
			if sp = s.obs.BeginChild(tc, obs.KindDispatch, op); sp != nil {
				ctx = obs.ContextWith(ctx, sp.Context())
			}
		}
		began := s.clk.Now()
		outcome, results, err = s.handler(ctx, in)
		s.dispatchLat.Observe(s.clk.Since(began))
		s.obs.End(sp)
		*in = Incoming{}
		incomingPool.Put(in)
	}
	if announcement {
		return // nothing to report, by design
	}

	status := byte(statusOK)
	msg := ""
	var fwd wire.Ref
	switch {
	case err == nil:
	case errors.Is(err, ErrNoObject):
		status = statusNoObject
	case errors.Is(err, ErrDenied):
		status, msg = statusDenied, err.Error()
	default:
		var moved *MovedError
		if errors.As(err, &moved) {
			status, fwd = statusMoved, moved.Forward
		} else {
			status, msg = statusSysError, err.Error()
		}
	}
	// The reply goes out in the version (and so body codec) of the
	// request it answers: a packed request earns a packed reply, and a
	// plain peer never sees version 2. The reply packet is retained in
	// the at-most-once cache for retransmission, so it is built in its
	// own allocation, header and body in one buffer.
	codec := bodyCodec(version, s.codec)
	reply := encodeHeader(nil, header{
		version: version,
		msgType: msgReply,
		callID:  callID,
		objID:   objID,
		op:      op,
	})
	reply, encErr := appendReplyBody(codec, reply, status, outcome, results, msg, fwd)
	if encErr != nil {
		reply = encodeHeader(reply[:0], header{
			version: version,
			msgType: msgReply,
			callID:  callID,
			objID:   objID,
			op:      op,
		})
		reply, _ = appendReplyBody(codec, reply, statusSysError, "", nil,
			"reply encoding: "+encErr.Error(), wire.Ref{})
	}

	sh := s.shard(key)
	sh.mu.Lock()
	sc.done = true
	sc.reply = reply
	sc.expires = s.clk.Now().Add(s.replyTTL)
	sh.mu.Unlock()
	if !s.closed.Load() {
		_ = s.ep.Send(from, reply)
	}
}

// janitor evicts reply-cache entries (lost Acks must not leak memory).
// Acked entries drain from the per-shard ack queue once their grace
// passes; everything else ages out by generation rotation every
// replyTTL, which retires a whole map at once instead of scanning every
// entry — janitor cost no longer grows with call volume.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := time.Second
	if s.replyTTL < tick {
		tick = s.replyTTL
	}
	ticker := s.clk.NewTicker(tick)
	defer ticker.Stop()
	lastRotate := s.clk.Now()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C():
			rotate := now.Sub(lastRotate) >= s.replyTTL
			if rotate {
				lastRotate = now
			}
			var evicted uint64
			for i := range s.shards {
				sh := &s.shards[i]
				sh.mu.Lock()
				// Drain acked entries whose grace deadline passed.
				kept := sh.ackq[:0]
				for _, a := range sh.ackq {
					if !now.After(a.expires) {
						kept = append(kept, a)
						continue
					}
					if sc, ok := sh.cur[a.key]; ok && sc.acked {
						delete(sh.cur, a.key)
						evicted++
					} else if sc, ok := sh.prev[a.key]; ok && sc.acked {
						delete(sh.prev, a.key)
						evicted++
					}
				}
				sh.ackq = kept
				if rotate {
					// Generation sweep: everything in prev is at least
					// one TTL old. Done entries go; still-running
					// interrogations carry forward, preserving
					// at-most-once for arbitrarily slow handlers.
					evicted += uint64(len(sh.prev))
					for k, sc := range sh.prev {
						if !sc.done {
							sh.cur[k] = sc
							evicted--
						}
					}
					sh.prev = sh.cur
					sh.cur = make(map[callKey]*serverCall)
				}
				sh.mu.Unlock()
			}
			if evicted > 0 {
				s.stats.cacheEvictions.Add(evicted)
			}
			if rotate && s.admission != nil {
				s.admission.prune(now)
			}
		}
	}
}

// Peer combines a Client and a Server on a single endpoint, so one
// capsule can both invoke and be invoked — "some applications may be both
// client and server simultaneously" (§6).
type Peer struct {
	// Client issues outbound invocations.
	Client *Client
	// Server dispatches inbound invocations.
	Server *Server
}

// PeerOption configures both roles of a Peer.
type PeerOption func(*peerConfig)

type peerConfig struct {
	serverOpts []ServerOption
	clientOpts []ClientOption
}

// WithPeerServerOptions applies server-side options to the peer.
func WithPeerServerOptions(opts ...ServerOption) PeerOption {
	return func(pc *peerConfig) { pc.serverOpts = append(pc.serverOpts, opts...) }
}

// WithPeerClientOptions applies client-side options to the peer.
func WithPeerClientOptions(opts ...ClientOption) PeerOption {
	return func(pc *peerConfig) { pc.clientOpts = append(pc.clientOpts, opts...) }
}

// WithPeerObserver installs one span collector on both roles, so a
// capsule's outbound sends and inbound dispatches land in one ring.
func WithPeerObserver(col *obs.Collector) PeerOption {
	return func(pc *peerConfig) {
		pc.serverOpts = append(pc.serverOpts, WithServerObserver(col))
		pc.clientOpts = append(pc.clientOpts, WithClientObserver(col))
	}
}

// WithPeerClock drives both roles — call timeouts, retransmission,
// reply-cache TTLs and the janitor — from one clock, so a whole peer can
// run in virtual time.
func WithPeerClock(c clock.Clock) PeerOption {
	return func(pc *peerConfig) {
		pc.serverOpts = append(pc.serverOpts, WithClock(c))
		pc.clientOpts = append(pc.clientOpts, WithClientClock(c))
	}
}

// NewPeer wires both roles onto ep.
func NewPeer(ep transport.Endpoint, codec wire.Codec, handler Handler, opts ...PeerOption) *Peer {
	var pc peerConfig
	for _, o := range opts {
		o(&pc)
	}
	p := &Peer{
		Client: newClientNoHandler(ep, codec, pc.clientOpts...),
		Server: newServerNoHandler(ep, codec, handler, pc.serverOpts...),
	}
	ep.SetHandler(func(from string, pkt []byte) {
		h, rest, err := decodeRawHeader(pkt)
		if err != nil {
			return
		}
		if h.msgType == msgReply {
			p.Client.deliverReply(h.version, h.callID, rest)
			return
		}
		p.Server.dispatch(from, h, rest)
	})
	return p
}

// Close shuts down both roles.
func (p *Peer) Close() error {
	err1 := p.Client.Close()
	err2 := p.Server.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
