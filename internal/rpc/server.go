package rpc

import (
	"context"
	"errors"
	"sync"
	"time"

	"odp/internal/clock"
	"odp/internal/transport"
	"odp/internal/wire"
)

// Incoming describes one inbound invocation as seen by a Handler.
type Incoming struct {
	// From is the transport address the invocation arrived from.
	From string
	// ObjID names the destination interface.
	ObjID string
	// Op names the operation.
	Op string
	// Args is the decoded argument vector.
	Args []wire.Value
	// Announcement is true for request-only invocations; the handler's
	// outcome and results are discarded in that case.
	Announcement bool
}

// Handler executes one invocation. Returning a nil error delivers
// (outcome, results) to the invoker. Returning ErrNoObject, ErrDenied or
// a *MovedError maps onto the corresponding protocol status; any other
// error becomes a RemoteError at the client.
type Handler func(ctx context.Context, in *Incoming) (outcome string, results []wire.Value, err error)

// ServerStats counts protocol events on the server side.
type ServerStats struct {
	Requests       uint64 // distinct executions started
	Duplicates     uint64 // retransmissions suppressed by at-most-once
	RepliesResent  uint64 // cached replies retransmitted
	Announcements  uint64 // announcement executions
	AnnounceDedup  uint64 // duplicate announcements suppressed
	CacheEvictions uint64
}

// Server dispatches inbound invocations from one endpoint to a Handler,
// enforcing at-most-once execution per (client, call id).
type Server struct {
	ep      transport.Endpoint
	codec   wire.Codec
	handler Handler

	mu     sync.Mutex
	calls  map[callKey]*serverCall
	closed bool
	wg     sync.WaitGroup
	stop   chan struct{}

	replyTTL time.Duration
	clk      clock.Clock

	statsMu sync.Mutex
	stats   ServerStats
}

type callKey struct {
	from string
	id   uint64
}

// serverCall tracks one at-most-once execution slot.
type serverCall struct {
	done    bool
	reply   []byte // full reply packet, cached for retransmission
	expires time.Time
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithReplyTTL sets how long completed replies stay cached when no Ack
// arrives. Default 5s.
func WithReplyTTL(ttl time.Duration) ServerOption {
	return func(s *Server) { s.replyTTL = ttl }
}

// WithClock sets the clock driving reply-cache TTLs and the janitor.
// Default clock.Real{}; tests pass a clock.Fake to exercise expiry
// deterministically.
func WithClock(c clock.Clock) ServerOption {
	return func(s *Server) { s.clk = c }
}

// NewServer wraps ep and dispatches to handler. The server takes over the
// endpoint's handler; use a Peer for combined client/server endpoints.
func NewServer(ep transport.Endpoint, codec wire.Codec, handler Handler, opts ...ServerOption) *Server {
	s := newServerNoHandler(ep, codec, handler, opts...)
	ep.SetHandler(s.onPacket)
	return s
}

func newServerNoHandler(ep transport.Endpoint, codec wire.Codec, handler Handler, opts ...ServerOption) *Server {
	s := &Server{
		ep:       ep,
		codec:    codec,
		handler:  handler,
		calls:    make(map[callKey]*serverCall),
		stop:     make(chan struct{}),
		replyTTL: 5 * time.Second,
		clk:      clock.Real{},
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.janitor()
	return s
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() ServerStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

// Close stops the server and waits for running handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
	return nil
}

// onPacket handles inbound packets when the server owns the endpoint.
func (s *Server) onPacket(from string, pkt []byte) {
	h, rest, err := decodeHeader(pkt)
	if err != nil {
		return
	}
	s.dispatch(from, h, rest)
}

// dispatch routes one decoded message.
func (s *Server) dispatch(from string, h header, body []byte) {
	switch h.msgType {
	case msgRequest:
		s.onRequest(from, h, body)
	case msgAnnounce:
		s.onAnnounce(from, h, body)
	case msgAck:
		s.onAck(from, h)
	}
}

func (s *Server) onRequest(from string, h header, body []byte) {
	key := callKey{from: from, id: h.callID}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if sc, ok := s.calls[key]; ok {
		// Duplicate: resend the cached reply if execution finished,
		// otherwise suppress (the reply will go out when it does).
		var reply []byte
		if sc.done {
			reply = sc.reply
		}
		s.mu.Unlock()
		s.count(func(st *ServerStats) {
			st.Duplicates++
			if reply != nil {
				st.RepliesResent++
			}
		})
		if reply != nil {
			_ = s.ep.Send(from, reply)
		}
		return
	}
	sc := &serverCall{expires: s.clk.Now().Add(s.replyTTL)}
	s.calls[key] = sc
	s.wg.Add(1)
	s.mu.Unlock()

	s.count(func(st *ServerStats) { st.Requests++ })
	go s.execute(from, h, body, key, sc, false)
}

func (s *Server) onAnnounce(from string, h header, body []byte) {
	key := callKey{from: from, id: h.callID}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, ok := s.calls[key]; ok {
		// Repeated announcement (QoS.Repeats): execute once only.
		s.mu.Unlock()
		s.count(func(st *ServerStats) { st.AnnounceDedup++ })
		return
	}
	s.calls[key] = &serverCall{done: true, expires: s.clk.Now().Add(s.replyTTL)}
	s.wg.Add(1)
	s.mu.Unlock()

	s.count(func(st *ServerStats) { st.Announcements++ })
	go s.execute(from, h, body, key, nil, true)
}

// ackGrace is how long a completed call entry survives after the client's
// Ack. Immediate eviction would be unsound: a request retransmission sent
// just before the client received the reply can still be in flight, and
// must be recognised as a duplicate when it lands, not re-executed.
const ackGrace = 250 * time.Millisecond

func (s *Server) onAck(from string, h header) {
	key := callKey{from: from, id: h.callID}
	s.mu.Lock()
	if sc, ok := s.calls[key]; ok && sc.done {
		if exp := s.clk.Now().Add(ackGrace); exp.Before(sc.expires) {
			sc.expires = exp
		}
	}
	s.mu.Unlock()
}

// execute runs the handler and, for interrogations, sends and caches the
// reply.
func (s *Server) execute(from string, h header, body []byte, key callKey, sc *serverCall, announcement bool) {
	defer s.wg.Done()
	args, err := wire.DecodeAll(s.codec, body)
	in := &Incoming{
		From:         from,
		ObjID:        h.objID,
		Op:           h.op,
		Args:         args,
		Announcement: announcement,
	}
	var (
		outcome string
		results []wire.Value
	)
	if err == nil {
		outcome, results, err = s.handler(context.Background(), in)
	}
	if announcement {
		return // nothing to report, by design
	}

	status := byte(statusOK)
	msg := ""
	var fwd wire.Ref
	switch {
	case err == nil:
	case errors.Is(err, ErrNoObject):
		status = statusNoObject
	case errors.Is(err, ErrDenied):
		status, msg = statusDenied, err.Error()
	default:
		var moved *MovedError
		if errors.As(err, &moved) {
			status, fwd = statusMoved, moved.Forward
		} else {
			status, msg = statusSysError, err.Error()
		}
	}
	rb, encErr := encodeReplyBody(s.codec, status, outcome, results, msg, fwd)
	if encErr != nil {
		rb, _ = encodeReplyBody(s.codec, statusSysError, "", nil, "reply encoding: "+encErr.Error(), wire.Ref{})
	}
	reply := encodeHeader(nil, header{
		version: protoVersion,
		msgType: msgReply,
		callID:  h.callID,
		objID:   h.objID,
		op:      h.op,
	})
	reply = append(reply, rb...)

	s.mu.Lock()
	sc.done = true
	sc.reply = reply
	sc.expires = s.clk.Now().Add(s.replyTTL)
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		_ = s.ep.Send(from, reply)
	}
}

// janitor evicts expired reply-cache entries (lost Acks must not leak
// memory).
func (s *Server) janitor() {
	defer s.wg.Done()
	ticker := s.clk.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case now := <-ticker.C():
			var evicted uint64
			s.mu.Lock()
			for k, sc := range s.calls {
				if sc.done && now.After(sc.expires) {
					delete(s.calls, k)
					evicted++
				}
			}
			s.mu.Unlock()
			if evicted > 0 {
				s.count(func(st *ServerStats) { st.CacheEvictions += evicted })
			}
		}
	}
}

func (s *Server) count(update func(*ServerStats)) {
	s.statsMu.Lock()
	update(&s.stats)
	s.statsMu.Unlock()
}

// Peer combines a Client and a Server on a single endpoint, so one
// capsule can both invoke and be invoked — "some applications may be both
// client and server simultaneously" (§6).
type Peer struct {
	// Client issues outbound invocations.
	Client *Client
	// Server dispatches inbound invocations.
	Server *Server
}

// NewPeer wires both roles onto ep.
func NewPeer(ep transport.Endpoint, codec wire.Codec, handler Handler, opts ...ServerOption) *Peer {
	p := &Peer{
		Client: newClientNoHandler(ep, codec),
		Server: newServerNoHandler(ep, codec, handler, opts...),
	}
	ep.SetHandler(func(from string, pkt []byte) {
		h, rest, err := decodeHeader(pkt)
		if err != nil {
			return
		}
		if h.msgType == msgReply {
			p.Client.deliverReply(h, rest)
			return
		}
		p.Server.dispatch(from, h, rest)
	})
	return p
}

// Close shuts down both roles.
func (p *Peer) Close() error {
	err1 := p.Client.Close()
	err2 := p.Server.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
