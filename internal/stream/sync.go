package stream

import (
	"sync"
)

// SyncGroup aligns several flows by media timestamp — the "questions of
// how to handle synchronization between streams of voice, video and
// data" of §7.2 (lip-sync). Each member flow feeds frames into its own
// jitter buffer; a frame is released only when every other flow's
// watermark (latest timestamp seen) has reached it, so released
// timestamps across flows never diverge by more than the inter-frame
// spacing plus MaxSkewMs.
type SyncGroup struct {
	mu sync.Mutex
	// MaxSkewMs is the tolerated inter-flow skew before a frame is held.
	maxSkewMs int64
	flows     map[string]*flowBuf
	out       func(flow string, f Frame)

	// lastReleased tracks per-flow release watermarks for skew metrics.
	lastReleased map[string]int64
	maxObserved  int64
	dropped      uint64
}

type flowBuf struct {
	buffered  []Frame
	watermark int64 // latest timestamp received
	started   bool
}

// NewSyncGroup creates a synchroniser delivering via out. maxSkewMs is
// the tolerated inter-flow skew.
func NewSyncGroup(maxSkewMs int64, out func(flow string, f Frame)) *SyncGroup {
	return &SyncGroup{
		maxSkewMs:    maxSkewMs,
		flows:        make(map[string]*flowBuf),
		out:          out,
		lastReleased: make(map[string]int64),
	}
}

// AddFlow registers a member flow and returns the Sink to bind it to.
func (g *SyncGroup) AddFlow(name string) Sink {
	g.mu.Lock()
	g.flows[name] = &flowBuf{}
	g.mu.Unlock()
	return SinkFunc(func(f Frame) { g.onFrame(name, f) })
}

// MaxObservedSkewMs reports the largest inter-flow skew among released
// frames — the experiment E12 metric.
func (g *SyncGroup) MaxObservedSkewMs() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.maxObserved
}

// Dropped reports how many frames arrived too late to present in sync
// and were discarded (continuous-media semantics: late frames are
// worthless, §7.2).
func (g *SyncGroup) Dropped() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.dropped
}

func (g *SyncGroup) onFrame(name string, f Frame) {
	g.mu.Lock()
	fb, ok := g.flows[name]
	if !ok {
		g.mu.Unlock()
		return
	}
	fb.started = true
	if f.TimestampMs > fb.watermark {
		fb.watermark = f.TimestampMs
	}
	// Insert in timestamp order (jitter reordering).
	idx := len(fb.buffered)
	for idx > 0 && fb.buffered[idx-1].TimestampMs > f.TimestampMs {
		idx--
	}
	fb.buffered = append(fb.buffered, Frame{})
	copy(fb.buffered[idx+1:], fb.buffered[idx:])
	fb.buffered[idx] = f

	released := g.drainLocked()
	g.mu.Unlock()
	for _, r := range released {
		g.out(r.flow, r.frame)
	}
}

type releasedFrame struct {
	flow  string
	frame Frame
}

// drainLocked releases every frame whose timestamp is within MaxSkewMs of
// the group watermark (the minimum per-flow watermark over flows that
// have started). Called with g.mu held.
func (g *SyncGroup) drainLocked() []releasedFrame {
	groupWatermark := int64(1<<62 - 1)
	for _, fb := range g.flows {
		if !fb.started {
			return nil // hold everything until all flows are live
		}
		if fb.watermark < groupWatermark {
			groupWatermark = fb.watermark
		}
	}
	var released []releasedFrame
	for name, fb := range g.flows {
		i := 0
		for i < len(fb.buffered) && fb.buffered[i].TimestampMs <= groupWatermark+g.maxSkewMs {
			f := fb.buffered[i]
			i++
			// A frame whose presentation time has already been passed by
			// this flow's own playout is too late to present in sync:
			// drop it rather than rewind the flow.
			if f.TimestampMs+g.maxSkewMs < g.lastReleased[name] {
				g.dropped++
				continue
			}
			released = append(released, releasedFrame{flow: name, frame: f})
			g.noteRelease(name, f.TimestampMs)
		}
		fb.buffered = fb.buffered[i:]
	}
	g.noteSkewLocked()
	return released
}

// noteRelease advances a flow's playout position. Called with g.mu held.
// The position is monotonic: a tolerated-late frame is presented slightly
// late without rewinding the flow.
func (g *SyncGroup) noteRelease(flow string, ts int64) {
	if ts > g.lastReleased[flow] {
		g.lastReleased[flow] = ts
	}
}

// noteSkewLocked samples the inter-flow skew once positions have settled
// (end of a drain). Flows that have not yet released anything are not
// compared. Called with g.mu held.
func (g *SyncGroup) noteSkewLocked() {
	if len(g.lastReleased) < 2 {
		return
	}
	lo, hi := int64(1<<62-1), int64(-1<<62)
	for _, v := range g.lastReleased {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if skew := hi - lo; skew > g.maxObserved {
		g.maxObserved = skew
	}
}

// Flush releases everything still buffered (end of stream).
func (g *SyncGroup) Flush() {
	g.mu.Lock()
	var released []releasedFrame
	for name, fb := range g.flows {
		for _, f := range fb.buffered {
			released = append(released, releasedFrame{flow: name, frame: f})
		}
		fb.buffered = nil
	}
	g.mu.Unlock()
	for _, r := range released {
		g.out(r.flow, r.frame)
	}
}
