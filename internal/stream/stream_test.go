package stream

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

type streamEnv struct {
	t        *testing.T
	fabric   *netsim.Fabric
	producer *capsule.Capsule
	consumer *capsule.Capsule
}

func newStreamEnv(t *testing.T, opts ...netsim.Option) *streamEnv {
	t.Helper()
	f := netsim.NewFabric(opts...)
	t.Cleanup(func() { _ = f.Close() })
	mk := func(name string) *capsule.Capsule {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		return c
	}
	return &streamEnv{t: t, fabric: f, producer: mk("producer"), consumer: mk("consumer")}
}

// collector gathers frames.
type collector struct {
	mu     sync.Mutex
	frames []Frame
}

func (c *collector) OnFrame(f Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.mu.Unlock()
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.frames)
}

func waitFrames(t *testing.T, c *collector, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for c.count() < n {
		select {
		case <-deadline:
			t.Fatalf("received %d/%d frames", c.count(), n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestBindAndFlow(t *testing.T) {
	e := newStreamEnv(t)
	col := &collector{}
	rx, err := NewReceiver(e.consumer, func(spec Spec) (Sink, error) {
		if spec.Media != "video" {
			return nil, fmt.Errorf("only video accepted")
		}
		return col, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(context.Background(), e.producer, rx.Ref(), Spec{Media: "video", RateHz: 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := b.Send(int64(i*33), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFrames(t, col, 10)
	if got := rx.Received(b.ID()); got != 10 {
		t.Fatalf("receiver counted %d", got)
	}
}

func TestBindingRefused(t *testing.T) {
	e := newStreamEnv(t)
	rx, err := NewReceiver(e.consumer, func(spec Spec) (Sink, error) {
		return nil, fmt.Errorf("no capacity")
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(context.Background(), e.producer, rx.Ref(), Spec{Media: "video"}); !errors.Is(err, ErrRefused) {
		t.Fatalf("want ErrRefused, got %v", err)
	}
}

func TestControlInterfaceStartStopStats(t *testing.T) {
	e := newStreamEnv(t)
	col := &collector{}
	rx, err := NewReceiver(e.consumer, func(Spec) (Sink, error) { return col, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b, err := Bind(ctx, e.producer, rx.Ref(), Spec{Media: "audio"})
	if err != nil {
		t.Fatal(err)
	}
	// A manager (here: the consumer capsule) drives the control
	// interface remotely — "an interface containing control and
	// management functions".
	outcome, _, err := e.consumer.Invoke(ctx, b.ControlRef(), "stop", nil)
	if err != nil || outcome != "ok" {
		t.Fatalf("stop: %q %v", outcome, err)
	}
	if err := b.Send(0, []byte("x")); !errors.Is(err, ErrStopped) {
		t.Fatalf("send while stopped: %v", err)
	}
	outcome, _, err = e.consumer.Invoke(ctx, b.ControlRef(), "start", nil)
	if err != nil || outcome != "ok" {
		t.Fatalf("start: %q %v", outcome, err)
	}
	if err := b.Send(1, []byte("y")); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, col, 1)
	outcome, res, err := e.consumer.Invoke(ctx, b.ControlRef(), "stats", nil)
	if err != nil || outcome != "ok" {
		t.Fatalf("stats: %q %v", outcome, err)
	}
	rec := res[0].(wire.Record)
	if rec["sent"].(uint64) != 1 || rec["dropped"].(uint64) != 1 {
		t.Fatalf("stats record %v", rec)
	}
}

func TestCloseStopsDelivery(t *testing.T) {
	e := newStreamEnv(t)
	col := &collector{}
	rx, err := NewReceiver(e.consumer, func(Spec) (Sink, error) { return col, nil })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b, err := Bind(ctx, e.producer, rx.Ref(), Spec{Media: "audio"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Send(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	waitFrames(t, col, 1)
	if err := b.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Frames after close never reach the sink.
	_ = b.Send(1, []byte("y"))
	time.Sleep(50 * time.Millisecond)
	if col.count() != 1 {
		t.Fatalf("frames after close delivered: %d", col.count())
	}
}

func TestMultipleFlowsIndependent(t *testing.T) {
	e := newStreamEnv(t)
	cols := map[string]*collector{"audio": {}, "video": {}}
	rx, err := NewReceiver(e.consumer, func(spec Spec) (Sink, error) {
		return cols[spec.Media], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	audio, err := Bind(ctx, e.producer, rx.Ref(), Spec{Media: "audio"})
	if err != nil {
		t.Fatal(err)
	}
	video, err := Bind(ctx, e.producer, rx.Ref(), Spec{Media: "video"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := audio.Send(int64(i), []byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := video.Send(int64(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	waitFrames(t, cols["audio"], 5)
	waitFrames(t, cols["video"], 3)
}

func TestSyncGroupBoundsSkew(t *testing.T) {
	// Two flows with very different network jitter: unsynchronised
	// delivery skews wildly; the sync group holds fast frames back.
	var (
		mu       sync.Mutex
		released []releasedFrame
	)
	g := NewSyncGroup(10, func(flow string, f Frame) {
		mu.Lock()
		released = append(released, releasedFrame{flow, f})
		mu.Unlock()
	})
	audio := g.AddFlow("audio")
	video := g.AddFlow("video")

	// Audio arrives promptly; video arrives in bursts with delay.
	for ts := int64(0); ts < 200; ts += 10 {
		audio.OnFrame(Frame{TimestampMs: ts})
		if ts%40 == 30 { // video catches up in bursts of 4
			for v := ts - 30; v <= ts; v += 10 {
				video.OnFrame(Frame{TimestampMs: v})
			}
		}
	}
	g.Flush()
	if skew := g.MaxObservedSkewMs(); skew > 40+10 {
		t.Fatalf("sync group allowed %dms skew", skew)
	}
	// All frames were eventually delivered, in order per flow.
	mu.Lock()
	defer mu.Unlock()
	perFlow := map[string][]int64{}
	for _, r := range released {
		perFlow[r.flow] = append(perFlow[r.flow], r.frame.TimestampMs)
	}
	if len(perFlow["audio"]) != 20 || len(perFlow["video"]) != 20 {
		t.Fatalf("released %d audio, %d video", len(perFlow["audio"]), len(perFlow["video"]))
	}
	for flow, tss := range perFlow {
		if !sort.SliceIsSorted(tss, func(i, j int) bool { return tss[i] < tss[j] }) {
			t.Fatalf("%s released out of order: %v", flow, tss)
		}
	}
}

func TestSyncGroupReordersJitter(t *testing.T) {
	// While a flow is held back (the other flow lags), out-of-order
	// arrivals are buffered and released in timestamp order.
	var got []int64
	g := NewSyncGroup(0, func(flow string, f Frame) {
		if flow == "jittery" {
			got = append(got, f.TimestampMs)
		}
	})
	jittery := g.AddFlow("jittery")
	laggard := g.AddFlow("laggard")
	// The laggard is silent, so these buffer out of order.
	for _, ts := range []int64{20, 0, 10, 40, 30} {
		jittery.OnFrame(Frame{TimestampMs: ts})
	}
	if len(got) != 0 {
		t.Fatalf("frames released while laggard silent: %v", got)
	}
	// The laggard catches up; everything releases, in order.
	laggard.OnFrame(Frame{TimestampMs: 40})
	if len(got) != 5 {
		t.Fatalf("released %d frames", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("jitter not reordered: %v", got)
	}
}

func TestSyncGroupHoldsUntilAllFlowsLive(t *testing.T) {
	var n int
	g := NewSyncGroup(0, func(string, Frame) { n++ })
	a := g.AddFlow("a")
	_ = g.AddFlow("b")
	a.OnFrame(Frame{TimestampMs: 0})
	a.OnFrame(Frame{TimestampMs: 10})
	if n != 0 {
		t.Fatal("frames released before all flows started")
	}
}

func TestEndToEndSyncOverJitteryNetwork(t *testing.T) {
	// Full stack: two bindings over a jittery fabric into a sync group.
	e := newStreamEnv(t, netsim.WithSeed(3), netsim.WithDefaultLink(netsim.LinkProfile{
		Latency: time.Millisecond, Jitter: 3 * time.Millisecond}))
	var (
		mu    sync.Mutex
		count int
	)
	g := NewSyncGroup(20, func(string, Frame) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	rx, err := NewReceiver(e.consumer, func(spec Spec) (Sink, error) {
		return g.AddFlow(spec.Media), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	audio, err := Bind(ctx, e.producer, rx.Ref(), Spec{Media: "audio"})
	if err != nil {
		t.Fatal(err)
	}
	video, err := Bind(ctx, e.producer, rx.Ref(), Spec{Media: "video"})
	if err != nil {
		t.Fatal(err)
	}
	const frames = 30
	for i := 0; i < frames; i++ {
		if err := audio.Send(int64(i*10), []byte("a")); err != nil {
			t.Fatal(err)
		}
		if err := video.Send(int64(i*10), []byte("v")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		// Allow the tail to be held back by the watermark; most frames
		// must flow.
		if c >= 2*(frames-2) {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d frames released", c)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if skew := g.MaxObservedSkewMs(); skew > 40 {
		t.Fatalf("observed skew %dms exceeds bound", skew)
	}
}
