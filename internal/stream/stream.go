// Package stream implements stream interfaces and explicit binding
// (§7.2).
//
// "The client and server operational interfaces described so far [are] a
// special case of a more general interface concept of a stream interface
// which represents a point at which any form of interaction [may] occur,
// including continuous flows such as video. A stream is described in
// terms of its type and its quality of service requirements... For
// streams a means of explicit binding must be defined. Explicit binding
// is parameterized by a template specifying which information flows are
// enabled... the binding process produces an interface containing control
// and management functions."
//
// A Receiver exports a stream interface on a capsule; Bind performs the
// explicit binding handshake against it and returns a Binding whose
// control interface (start/stop/stats) is itself an ordinary ODP
// interface. Frames travel as announcements — one-way, unacknowledged,
// exactly the ANSA treatment of continuous media (loss is tolerable,
// latency is not).
package stream

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"odp/internal/capsule"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// Spec is the stream template of an explicit binding.
type Spec struct {
	// Media is the flow's media type ("audio", "video", "sensor", ...).
	Media string
	// RateHz is the nominal frame rate, advisory QoS.
	RateHz int
	// Label distinguishes multiple flows of the same media type.
	Label string
}

// Frame is one element of a flow.
type Frame struct {
	// Seq is the producer's frame counter.
	Seq uint64
	// TimestampMs is the media timestamp (presentation time).
	TimestampMs int64
	// Payload is the media data.
	Payload []byte
}

// Sink consumes frames on the receiving side. Implementations must be
// safe for concurrent use.
type Sink interface {
	OnFrame(f Frame)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(f Frame)

// OnFrame implements Sink.
func (fn SinkFunc) OnFrame(f Frame) { fn(f) }

// Errors returned by the stream layer.
var (
	// ErrRefused reports that the receiver declined the binding.
	ErrRefused = errors.New("stream: binding refused")
	// ErrNotBound reports frame traffic for an unknown binding.
	ErrNotBound = errors.New("stream: not bound")
	// ErrStopped reports Send on a stopped binding.
	ErrStopped = errors.New("stream: binding stopped")
)

// Acceptor decides whether to accept an offered flow and provides the
// sink for it.
type Acceptor func(spec Spec) (Sink, error)

// Receiver is the consumer-side stream interface.
type Receiver struct {
	cap *capsule.Capsule
	ref wire.Ref

	mu       sync.Mutex
	acceptor Acceptor
	nextID   uint64
	sinks    map[string]Sink
	received map[string]*uint64
}

// NewReceiver exports a stream interface on c. The acceptor is consulted
// for each binding attempt.
func NewReceiver(c *capsule.Capsule, acceptor Acceptor) (*Receiver, error) {
	r := &Receiver{
		cap:      c,
		acceptor: acceptor,
		sinks:    make(map[string]Sink),
		received: make(map[string]*uint64),
	}
	ref, err := c.Export(capsule.ServantFunc(r.dispatch))
	if err != nil {
		return nil, err
	}
	r.ref = ref
	return r, nil
}

// Ref returns the stream interface reference: it can be traded and
// passed in arguments and results like any operational interface (§7.2).
func (r *Receiver) Ref() wire.Ref { return r.ref }

// Received reports how many frames arrived on a binding.
func (r *Receiver) Received(bindingID string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := r.received[bindingID]; n != nil {
		return atomic.LoadUint64(n)
	}
	return 0
}

func (r *Receiver) dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "open":
		rec, ok := args[0].(wire.Record)
		if !ok {
			return "", nil, fmt.Errorf("stream: open wants a spec record, got %T", args[0])
		}
		spec := Spec{}
		spec.Media, _ = rec["media"].(string)
		if hz, ok := rec["rateHz"].(int64); ok {
			spec.RateHz = int(hz)
		}
		spec.Label, _ = rec["label"].(string)
		sink, err := r.acceptor(spec)
		if err != nil {
			return "refused", []wire.Value{err.Error()}, nil
		}
		r.mu.Lock()
		r.nextID++
		id := r.cap.Name() + "/flow-" + strconv.FormatUint(r.nextID, 10)
		r.sinks[id] = sink
		var zero uint64
		r.received[id] = &zero
		r.mu.Unlock()
		return "ok", []wire.Value{id}, nil
	case "frame":
		// Announcement: [bindingID, seq, tsMs, payload].
		if len(args) != 4 {
			return "", nil, errors.New("stream: frame wants (binding, seq, ts, payload)")
		}
		id, _ := args[0].(string)
		seq, _ := args[1].(uint64)
		ts, _ := args[2].(int64)
		payload, _ := args[3].([]byte)
		r.mu.Lock()
		sink := r.sinks[id]
		counter := r.received[id]
		r.mu.Unlock()
		if sink == nil {
			return "", nil, ErrNotBound
		}
		atomic.AddUint64(counter, 1)
		sink.OnFrame(Frame{Seq: seq, TimestampMs: ts, Payload: payload})
		return "", nil, nil
	case "close":
		id, _ := args[0].(string)
		r.mu.Lock()
		delete(r.sinks, id)
		r.mu.Unlock()
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("stream: receiver has no operation %q", op)
	}
}

// Binding is the producer-side end of an explicitly bound flow, plus its
// control interface.
type Binding struct {
	cap       *capsule.Capsule
	rxRef     wire.Ref
	bindingID string
	spec      Spec

	seq     atomic.Uint64
	running atomic.Bool
	sent    atomic.Uint64
	dropped atomic.Uint64

	controlRef wire.Ref
}

// Bind performs the explicit binding handshake: it offers spec to the
// receiver at rxRef and, on acceptance, returns a started Binding whose
// control interface is exported on c.
func Bind(ctx context.Context, c *capsule.Capsule, rxRef wire.Ref, spec Spec) (*Binding, error) {
	rec := wire.Record{
		"media":  spec.Media,
		"rateHz": int64(spec.RateHz),
		"label":  spec.Label,
	}
	outcome, results, err := c.Invoke(ctx, rxRef, "open", []wire.Value{rec},
		capsule.WithQoS(rpc.QoS{Timeout: rpc.DefaultTimeout}))
	if err != nil {
		return nil, err
	}
	if outcome != "ok" {
		return nil, fmt.Errorf("%w: %v", ErrRefused, results)
	}
	id, _ := results[0].(string)
	b := &Binding{cap: c, rxRef: rxRef, bindingID: id, spec: spec}
	b.running.Store(true)

	ctrlRef, err := c.Export(capsule.ServantFunc(b.controlDispatch))
	if err != nil {
		return nil, err
	}
	b.controlRef = ctrlRef
	return b, nil
}

// ID returns the binding identifier assigned by the receiver.
func (b *Binding) ID() string { return b.bindingID }

// ControlRef returns the binding's control-and-management interface: an
// ordinary ODP interface with start/stop/stats operations.
func (b *Binding) ControlRef() wire.Ref { return b.controlRef }

// Send emits one frame into the flow. Frames sent while stopped are
// counted as dropped (flow control, not an error path a media loop would
// branch on).
func (b *Binding) Send(timestampMs int64, payload []byte) error {
	if !b.running.Load() {
		b.dropped.Add(1)
		return ErrStopped
	}
	seq := b.seq.Add(1)
	err := b.cap.Announce(b.rxRef, "frame",
		[]wire.Value{b.bindingID, seq, timestampMs, payload})
	if err != nil {
		return err
	}
	b.sent.Add(1)
	return nil
}

// Close tears the binding down at the receiver.
func (b *Binding) Close(ctx context.Context) error {
	b.running.Store(false)
	_, _, err := b.cap.Invoke(ctx, b.rxRef, "close", []wire.Value{b.bindingID})
	return err
}

// controlDispatch implements the binding's control interface.
func (b *Binding) controlDispatch(_ context.Context, op string, _ []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "start":
		b.running.Store(true)
		return "ok", nil, nil
	case "stop":
		b.running.Store(false)
		return "ok", nil, nil
	case "stats":
		return "ok", []wire.Value{wire.Record{
			"sent":    b.sent.Load(),
			"dropped": b.dropped.Load(),
			"running": b.running.Load(),
			"media":   b.spec.Media,
		}}, nil
	default:
		return "", nil, fmt.Errorf("stream: control has no operation %q", op)
	}
}
