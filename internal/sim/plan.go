package sim

import (
	"fmt"
	"time"

	"odp/internal/netsim"
)

// FaultPlan is a seeded schedule of fault injections at logical instants:
// partitions, node crashes, loss-rate changes, link-profile swaps. Build
// one fluently —
//
//	plan := sim.NewFaultPlan().
//		At(50*time.Millisecond).Partition("client", "server").
//		At(200*time.Millisecond).Heal("client", "server").
//		At(300*time.Millisecond).Isolate("n2").
//		At(500*time.Millisecond).Rejoin("n2")
//
// — then Install it on a Sim before running. Instants are measured from
// the simulation Epoch; each application is recorded in the trace, so the
// plan is part of the replay fingerprint.
//
// Determinism note: the fake clock fires coincident AfterFunc callbacks
// (fault steps, packet deliveries) in a fixed order, but it cannot order
// a fault step against a goroutine woken by a timer *channel* at the
// same instant — an rpc retransmit loop, a janitor tick. Hash-asserted
// scenarios should therefore keep fault instants off the traffic grid
// (e.g. skew them by a fraction of the link latency) so no fault ever
// shares an exact instant with a send.
type FaultPlan struct {
	steps []planStep
}

type planStep struct {
	at    time.Duration
	desc  string
	apply func(s *Sim)
}

// NewFaultPlan returns an empty plan.
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{}
}

// At starts a step executing at d after the epoch.
func (p *FaultPlan) At(d time.Duration) *PlanStep {
	return &PlanStep{p: p, at: d}
}

// Steps reports how many injections the plan schedules.
func (p *FaultPlan) Steps() int { return len(p.steps) }

// PlanStep is the builder for one scheduled injection.
type PlanStep struct {
	p  *FaultPlan
	at time.Duration
}

func (ps *PlanStep) add(desc string, apply func(s *Sim)) *FaultPlan {
	ps.p.steps = append(ps.p.steps, planStep{at: ps.at, desc: desc, apply: apply})
	return ps.p
}

// Partition cuts bidirectional connectivity between a and b.
func (ps *PlanStep) Partition(a, b string) *FaultPlan {
	return ps.add(fmt.Sprintf("partition %s|%s", a, b), func(s *Sim) {
		s.Fabric.Partition(a, b, true)
	})
}

// Heal restores connectivity between a and b.
func (ps *PlanStep) Heal(a, b string) *FaultPlan {
	return ps.add(fmt.Sprintf("heal %s|%s", a, b), func(s *Sim) {
		s.Fabric.Partition(a, b, false)
	})
}

// Isolate cuts every link touching addr — a crash as the network sees it.
func (ps *PlanStep) Isolate(addr string) *FaultPlan {
	return ps.add("isolate "+addr, func(s *Sim) {
		s.Fabric.Isolate(addr, true)
	})
}

// Rejoin heals every link touching addr.
func (ps *PlanStep) Rejoin(addr string) *FaultPlan {
	return ps.add("rejoin "+addr, func(s *Sim) {
		s.Fabric.Isolate(addr, false)
	})
}

// PartitionSubnets cuts every path between two subnets — the gateway link
// going dark as the fault plan sees it; intra-subnet traffic continues.
func (ps *PlanStep) PartitionSubnets(a, b string) *FaultPlan {
	return ps.add(fmt.Sprintf("partition-subnets %s|%s", a, b), func(s *Sim) {
		s.Fabric.PartitionSubnets(a, b, true)
	})
}

// HealSubnets restores connectivity between two subnets.
func (ps *PlanStep) HealSubnets(a, b string) *FaultPlan {
	return ps.add(fmt.Sprintf("heal-subnets %s|%s", a, b), func(s *Sim) {
		s.Fabric.PartitionSubnets(a, b, false)
	})
}

// IsolateSubnet cuts every path crossing the subnet's boundary — a whole
// domain dropping off the federation while its internal traffic continues.
func (ps *PlanStep) IsolateSubnet(name string) *FaultPlan {
	return ps.add("isolate-subnet "+name, func(s *Sim) {
		s.Fabric.IsolateSubnet(name, true)
	})
}

// RejoinSubnet heals the subnet's boundary.
func (ps *PlanStep) RejoinSubnet(name string) *FaultPlan {
	return ps.add("rejoin-subnet "+name, func(s *Sim) {
		s.Fabric.IsolateSubnet(name, false)
	})
}

// SetLink swaps the directed link from→to onto profile — latency, jitter
// and loss-rate changes at a logical instant.
func (ps *PlanStep) SetLink(from, to string, profile netsim.LinkProfile) *FaultPlan {
	return ps.add(fmt.Sprintf("setlink %s>%s lat=%v loss=%v", from, to, profile.Latency, profile.Loss),
		func(s *Sim) { s.Fabric.SetLink(from, to, profile) })
}

// Do schedules an arbitrary injection; desc names it in the trace.
func (ps *PlanStep) Do(desc string, fn func(s *Sim)) *FaultPlan {
	return ps.add(desc, fn)
}

// Install schedules every step of the plan on the simulation clock. Steps
// whose instant has already passed fire immediately.
func (s *Sim) Install(p *FaultPlan) {
	for _, st := range p.steps {
		st := st
		delay := Epoch.Add(st.at).Sub(s.Clock.Now())
		s.Clock.AfterFunc(delay, func() {
			s.Trace.Record(s.Clock.Now(), "plan "+st.desc)
			st.apply(s)
		})
	}
}
