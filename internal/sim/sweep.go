package sim

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// Sweep runs scenario across n seeds, each in its own subtest with its
// own simulation universe. Seeds are independent, so the first failing
// seed is already the minimal reproducer: the sweep stops there and
// prints the exact replay command. CI runs sweeps under -race with a
// larger seed count (see SeedsFromEnv).
func Sweep(t *testing.T, n int, scenario func(t *testing.T, s *Sim), opts ...Option) {
	t.Helper()
	for seed := 0; seed < n; seed++ {
		seed := seed
		name := fmt.Sprintf("seed=%d", seed)
		ok := t.Run(name, func(t *testing.T) {
			s := New(int64(seed), opts...)
			defer s.Close()
			scenario(t, s)
		})
		if !ok {
			t.Logf("sim: first failing seed is %d of %d; replay with:\n  go test -race -count=1 -run '^%s$/^%s$' ./...",
				seed, n, t.Name(), name)
			return
		}
	}
}

// SeedsFromEnv returns the sweep width: ODP_SIM_SEEDS when set and
// positive, else def. The tier-1 suite stays quick with a small default
// while the CI sim-sweep step widens the exploration.
func SeedsFromEnv(def int) int {
	if v := os.Getenv("ODP_SIM_SEEDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}
