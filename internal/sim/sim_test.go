package sim

import (
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/netsim"
)

// pingUniverse wires two endpoints where "b" echoes every packet back to
// "a", and returns a counter of echoes a has received.
func pingUniverse(t *testing.T, s *Sim) (send func(), echoes *atomic.Int64) {
	t.Helper()
	a, err := s.Fabric.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Fabric.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int64
	a.SetHandler(func(string, []byte) { n.Add(1) })
	b.SetHandler(func(from string, pkt []byte) { _ = b.Send(from, pkt) })
	return func() {
		if err := a.Send("b", []byte("ping")); err != nil {
			t.Fatal(err)
		}
	}, &n
}

// TestRunAdvancesToCondition: Run fires chained virtual deliveries (send,
// echo) without any real sleeping, and stops at the condition.
func TestRunAdvancesToCondition(t *testing.T) {
	s := New(1, WithDefaultLink(netsim.LinkProfile{Latency: 5 * time.Millisecond}))
	defer s.Close()
	send, echoes := pingUniverse(t, s)
	send()
	s.Run(t, time.Second, func() bool { return echoes.Load() == 1 })
	if got := s.Elapsed(); got != 10*time.Millisecond {
		t.Fatalf("echo round-trip took %v of virtual time, want 10ms", got)
	}
}

// TestRunStallFails: Run must report a stall — condition unmet, nothing
// scheduled — instead of spinning.
func TestRunStallFails(t *testing.T) {
	s := New(2)
	defer s.Close()
	ft := &fakeT{T: t}
	s.runDetached(ft, time.Second, func() bool { return false })
	if !ft.failed.Load() {
		t.Fatal("Run did not fail on a stalled simulation")
	}
}

// TestRunBudgetFails: a condition that needs more virtual time than the
// budget fails rather than advancing forever.
func TestRunBudgetFails(t *testing.T) {
	s := New(3, WithDefaultLink(netsim.LinkProfile{Latency: 50 * time.Millisecond}))
	defer s.Close()
	send, echoes := pingUniverse(t, s)
	send()
	ft := &fakeT{T: t}
	s.runDetached(ft, 20*time.Millisecond, func() bool { return echoes.Load() >= 1 })
	if !ft.failed.Load() {
		t.Fatal("Run did not fail when the virtual budget was exhausted")
	}
}

// fakeT captures Fatalf instead of aborting, so the failure paths of Run
// are themselves testable. Fatalf must not return; it parks the goroutine
// like testing.T's runtime.Goexit.
type fakeT struct {
	*testing.T
	failed atomic.Bool
	fired  chan struct{}
}

func (f *fakeT) Fatalf(string, ...interface{}) {
	if f.failed.CompareAndSwap(false, true) {
		close(f.fired)
	}
	select {}
}

// runDetached drives Run on a throwaway goroutine — fakeT.Fatalf parks
// that goroutine instead of aborting the test, so the caller waits for
// either a clean return or a captured failure.
func (s *Sim) runDetached(t *fakeT, budget time.Duration, until func() bool) {
	t.fired = make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Run(t, budget, until)
	}()
	select {
	case <-done:
	case <-t.fired:
	case <-time.After(5 * time.Second):
		t.T.Fatal("Run neither returned nor failed")
	}
}

// TestRunForFiresWindow: RunFor fires every event inside the window,
// including events scheduled by earlier events.
func TestRunForFiresWindow(t *testing.T) {
	s := New(4)
	defer s.Close()
	var order []string
	s.Clock.AfterFunc(10*time.Millisecond, func() {
		order = append(order, "first")
		s.Clock.AfterFunc(5*time.Millisecond, func() {
			order = append(order, "chained")
		})
	})
	s.RunFor(20 * time.Millisecond)
	if len(order) != 2 || order[0] != "first" || order[1] != "chained" {
		t.Fatalf("order = %v, want [first chained]", order)
	}
	if got := s.Elapsed(); got != 20*time.Millisecond {
		t.Fatalf("elapsed %v, want exactly 20ms", got)
	}
}

// TestFaultPlanAppliesAtInstants: the plan's partition window is visible
// to packets sent inside it and invisible outside it.
func TestFaultPlanAppliesAtInstants(t *testing.T) {
	s := New(5, WithDefaultLink(netsim.LinkProfile{Latency: time.Millisecond}))
	defer s.Close()
	send, echoes := pingUniverse(t, s)

	s.Install(NewFaultPlan().
		At(10 * time.Millisecond).Partition("a", "b").
		At(30 * time.Millisecond).Heal("a", "b"))

	send()
	s.Run(t, 5*time.Millisecond, func() bool { return echoes.Load() == 1 })

	s.RunFor(15 * time.Millisecond) // now inside the partition window
	send()
	s.RunFor(5 * time.Millisecond)
	if echoes.Load() != 1 {
		t.Fatal("packet crossed an open partition")
	}

	s.RunFor(15 * time.Millisecond) // heal at +30ms has fired
	send()
	s.Run(t, 10*time.Millisecond, func() bool { return echoes.Load() == 2 })

	if cut := s.Fabric.Stats().Cut; cut == 0 {
		t.Fatal("partition window cut nothing")
	}
}

// TestSameSeedSameHash: two universes with the same seed and scenario
// produce byte-identical event-trace hashes; a different seed (different
// fault instants) diverges.
func TestSameSeedSameHash(t *testing.T) {
	scenario := func(seed int64) string {
		s := New(seed,
			WithDefaultLink(netsim.LinkProfile{Latency: 2 * time.Millisecond}),
			WithStrictSettle(),
		)
		defer s.Close()
		send, echoes := pingUniverse(t, s)
		cut := time.Duration(10+s.Rand().Intn(20)) * time.Millisecond
		s.Install(NewFaultPlan().
			At(cut).Partition("a", "b").
			At(cut + 20*time.Millisecond).Heal("a", "b"))
		want := int64(0)
		for i := 0; i < 5; i++ {
			send()
			want++
			s.RunFor(4 * time.Millisecond)
		}
		s.RunFor(60 * time.Millisecond)
		_ = echoes.Load()
		s.Mark("done echoes=%d", echoes.Load())
		return s.Trace.Hash()
	}
	h1, h2 := scenario(7), scenario(7)
	if h1 != h2 {
		t.Fatalf("same seed diverged:\n%s\n%s", h1, h2)
	}
	if h3 := scenario(8); h3 == h1 {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestSweepRunsAllSeeds: a passing scenario visits every seed with a
// distinct universe.
func TestSweepRunsAllSeeds(t *testing.T) {
	var seeds []int64
	Sweep(t, 4, func(t *testing.T, s *Sim) {
		seeds = append(seeds, s.Seed())
	})
	if len(seeds) != 4 {
		t.Fatalf("visited %d seeds, want 4", len(seeds))
	}
	for i, got := range seeds {
		if got != int64(i) {
			t.Fatalf("seeds = %v, want 0..3 in order", seeds)
		}
	}
}

// TestSeedsFromEnv honours the override and falls back to the default.
func TestSeedsFromEnv(t *testing.T) {
	t.Setenv("ODP_SIM_SEEDS", "")
	if got := SeedsFromEnv(3); got != 3 {
		t.Fatalf("default: %d", got)
	}
	t.Setenv("ODP_SIM_SEEDS", "16")
	if got := SeedsFromEnv(3); got != 16 {
		t.Fatalf("override: %d", got)
	}
	t.Setenv("ODP_SIM_SEEDS", "bogus")
	if got := SeedsFromEnv(3); got != 3 {
		t.Fatalf("bogus: %d", got)
	}
}
