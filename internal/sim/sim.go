// Package sim is the deterministic simulation harness: it runs the whole
// ODP platform in logical time.
//
// A Sim owns one fake clock and one netsim fabric scheduled on it, so
// every in-flight packet, retransmission timer, janitor tick, lock-wait
// bound, failure-detector heartbeat and lease expiry is an event in a
// single virtual-time priority queue. Time advances only when the system
// is quiescent — every goroutine parked on the clock, no packet mid-
// delivery — so a partition-heal-reconverge scenario that takes seconds
// of protocol time executes in microseconds of wall time, and a failing
// run is replayed exactly from its seed.
//
// This is the FoundationDB-style simulation-testing discipline applied to
// an ODP platform: the paper's engineering-model claims are all about
// behaviour under variable latency, transient loss and partitions
// (§3, §4.1), and logical time makes those behaviours schedulable,
// instantaneous and reproducible.
//
// The harness itself is one of the platform's sanctioned real-time
// observers (with internal/clock and netsim's realtime.go): its settle
// loop must watch real goroutines make real progress, so the detclock
// pass exempts this package.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/netsim"
)

// Epoch is the virtual instant every simulation starts at: the year the
// paper was presented. A fixed epoch keeps virtual timestamps — and with
// them the event-trace hash — identical across runs and machines.
var Epoch = time.Date(1991, time.October, 7, 0, 0, 0, 0, time.UTC)

// Sim is one deterministic simulation universe.
type Sim struct {
	// Clock is the universe's only time source; share it with every
	// platform via odp.WithClock.
	Clock *clock.Fake
	// Fabric is the simulated network, scheduled on Clock.
	Fabric *netsim.Fabric
	// Trace accumulates the replay event trace; Trace.Hash() fingerprints
	// a run for determinism assertions.
	Trace *Trace

	seed   int64
	rng    *rand.Rand
	strict bool
}

// Option configures New.
type Option func(*cfg)

type cfg struct {
	link       netsim.LinkProfile
	strict     bool
	fabricOpts []netsim.Option
}

// WithDefaultLink sets the fabric's default link profile (default
// Loopback: zero latency, lossless).
func WithDefaultLink(p netsim.LinkProfile) Option {
	return func(c *cfg) { c.link = p }
}

// WithStrictSettle makes quiescence detection conservative: every poll is
// separated by a real sleep, trading wall time for a stronger guarantee
// that no runnable goroutine is outpaced. Use it for scenarios whose
// event-trace hash is asserted.
func WithStrictSettle() Option {
	return func(c *cfg) { c.strict = true }
}

// WithFabricOptions appends extra netsim options (link overrides etc.).
func WithFabricOptions(opts ...netsim.Option) Option {
	return func(c *cfg) { c.fabricOpts = append(c.fabricOpts, opts...) }
}

// New creates a simulation universe from a seed. The same seed yields the
// same fabric randomness and the same scenario randomness (Rand).
func New(seed int64, opts ...Option) *Sim {
	c := cfg{}
	for _, o := range opts {
		o(&c)
	}
	s := &Sim{
		Clock: clock.NewFake(Epoch),
		Trace: NewTrace(),
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed ^ 0x5DEECE66D)),
	}
	if c.strict {
		s.strict = true
	}
	fopts := []netsim.Option{
		netsim.WithSeed(seed),
		netsim.WithClock(s.Clock),
		netsim.WithTrace(s.Trace.Record),
		netsim.WithDefaultLink(c.link),
	}
	fopts = append(fopts, c.fabricOpts...)
	s.Fabric = netsim.NewFabric(fopts...)
	return s
}

// Seed returns the universe's seed.
func (s *Sim) Seed() int64 { return s.seed }

// Rand is the scenario's own deterministic randomness source (fault
// instants, key choices). Not safe for concurrent use; draw from the
// driving goroutine only.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Elapsed returns how much virtual time has passed since the epoch.
func (s *Sim) Elapsed() time.Duration { return s.Clock.Now().Sub(Epoch) }

// Mark records a scenario checkpoint in the trace.
func (s *Sim) Mark(format string, args ...interface{}) {
	s.Trace.Record(s.Clock.Now(), "mark "+fmt.Sprintf(format, args...))
}

// Close shuts the fabric down, cancelling undelivered virtual packets.
func (s *Sim) Close() { _ = s.Fabric.Close() }

// Drain runs fn — typically teardown: group stops, platform closes —
// on its own goroutine while advancing virtual time until it returns.
// Shutdown paths park on timers too (a failure detector mid-heartbeat
// waits out its call timeout), so closing without advancing deadlocks.
func (s *Sim) Drain(fn func()) {
	done := make(chan struct{})
	go func() { defer close(done); fn() }()
	start := time.Now()
	for {
		select {
		case <-done:
			return
		default:
		}
		s.Settle()
		select {
		case <-done:
			return
		default:
		}
		if next, ok := s.Clock.NextDeadline(); ok {
			s.Clock.Advance(next.Sub(s.Clock.Now()))
		} else {
			time.Sleep(settlePause)
		}
		if time.Since(start) > settleTimeout {
			panic(fmt.Sprintf("sim[seed=%d]: drain stalled for %v of real time at +%v",
				s.seed, settleTimeout, s.Elapsed()))
		}
	}
}

// Run is the advance-until-quiescent loop: it interleaves clock advances
// with goroutine-settle detection until the condition holds, failing the
// test if the virtual budget runs out or the simulation stalls (condition
// unmet with no scheduled events — every goroutine waiting on something
// that will never happen).
func (s *Sim) Run(t testing.TB, budget time.Duration, until func() bool) {
	t.Helper()
	deadline := s.Clock.Now().Add(budget)
	for {
		s.Settle()
		if until() {
			return
		}
		next, ok := s.Clock.NextDeadline()
		if !ok {
			t.Fatalf("sim[seed=%d]: stalled at +%v: condition unmet and no scheduled events", s.seed, s.Elapsed())
		}
		if next.After(deadline) {
			t.Fatalf("sim[seed=%d]: virtual budget %v exhausted at +%v before condition", s.seed, budget, s.Elapsed())
		}
		s.Clock.Advance(next.Sub(s.Clock.Now()))
	}
}

// RunFor advances exactly d of virtual time, firing every event inside
// the window deadline-by-deadline and settling between steps, so events
// scheduled by earlier events (a retransmission answering a heal, a
// failure detector reacting to silence) land inside the same window.
func (s *Sim) RunFor(d time.Duration) {
	target := s.Clock.Now().Add(d)
	for {
		s.Settle()
		next, ok := s.Clock.NextDeadline()
		if !ok || next.After(target) {
			s.Clock.Advance(target.Sub(s.Clock.Now()))
			s.Settle()
			return
		}
		s.Clock.Advance(next.Sub(s.Clock.Now()))
	}
}

// settle tuning.
const (
	spinBudget    = 128                     // Gosched polls before escalating to sleeps
	settlePause   = 50 * time.Microsecond   // sleep between escalated polls
	strictPause   = 300 * time.Microsecond  // sleep between polls in strict mode
	settleTimeout = 30 * time.Second        // real-time bound on one settle
)

// Settle blocks until the simulation looks quiescent: no packet scheduled
// or mid-delivery, no clock callback running, and the clock's scheduling
// state unchanged across consecutive polls. Detection is cooperative, not
// absolute — a goroutine computing without touching the clock or fabric
// is invisible — so the loop confirms stability over several polls
// (sleep-separated in strict mode) before trusting it.
func (s *Sim) Settle() {
	need := 2
	if s.strict {
		need = 3
	}
	var lastGen uint64
	seen := false
	stable := 0
	start := time.Now()
	for spin := 0; ; spin++ {
		// A fired timer channel being drained is the first visible sign
		// its receiver got scheduled; folding that into Gen restarts the
		// stability count from the moment the woken goroutine is actually
		// running, not from when Advance merely made it runnable.
		s.Clock.ObserveDrains()
		gen := s.Clock.Gen()
		idle := s.Fabric.Executing() == 0 && s.Clock.FiringCallbacks() == 0
		if idle && seen && gen == lastGen {
			stable++
			if stable >= need {
				return
			}
		} else {
			stable = 0
		}
		lastGen, seen = gen, true
		switch {
		case s.strict:
			// Yield before sleeping: on a single-CPU box the Gosched hands
			// the processor straight to whatever Advance woke, instead of
			// betting the whole stability window on the sleep alone.
			runtime.Gosched()
			time.Sleep(strictPause)
		case spin < spinBudget:
			runtime.Gosched()
		default:
			time.Sleep(settlePause)
		}
		if time.Since(start) > settleTimeout {
			panic(fmt.Sprintf("sim[seed=%d]: settle stalled for %v of real time at +%v",
				s.seed, settleTimeout, s.Elapsed()))
		}
	}
}
