package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Event is one entry of the replay trace.
type Event struct {
	// At is the virtual instant the event was observed.
	At time.Time
	// What is a short "kind detail" line.
	What string
}

// Trace is a concurrency-safe accumulator of simulation events: fabric
// deliveries, drops and cuts, fault-plan applications and scenario marks.
// Its Hash canonicalises the accumulated multiset, so two runs of the
// same seed can be asserted identical even when events sharing a virtual
// instant were recorded in different goroutine order.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace {
	return &Trace{}
}

// Record appends one event. Safe for concurrent use; netsim.TraceFunc
// compatible.
func (tr *Trace) Record(at time.Time, what string) {
	tr.mu.Lock()
	tr.events = append(tr.events, Event{At: at, What: what})
	tr.mu.Unlock()
}

// Len reports how many events have been recorded.
func (tr *Trace) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.events)
}

// Events returns a copy of the recorded events in canonical order:
// sorted by instant, ties broken by event text.
func (tr *Trace) Events() []Event {
	tr.mu.Lock()
	out := make([]Event, len(tr.events))
	copy(out, tr.events)
	tr.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].At.Equal(out[j].At) {
			return out[i].At.Before(out[j].At)
		}
		return out[i].What < out[j].What
	})
	return out
}

// Hash fingerprints the canonical trace. Two runs of the same seed that
// made the same scheduling decisions hash identically, across processes
// and machines (virtual instants are epoch-anchored, the canonical order
// is content-defined, and no addresses or map orders leak in).
func (tr *Trace) Hash() string {
	h := sha256.New()
	for _, e := range tr.Events() {
		h.Write([]byte(strconv.FormatInt(e.At.UnixNano(), 10)))
		h.Write([]byte{'\t'})
		h.Write([]byte(e.What))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Dump renders the canonical trace, for debugging failed determinism
// assertions. Built with a Builder: a swarm trace holds tens of
// thousands of events and naive concatenation is quadratic.
func (tr *Trace) Dump() string {
	var b strings.Builder
	for _, e := range tr.Events() {
		fmt.Fprintf(&b, "%s %s\n", e.At.Format("15:04:05.000000000"), e.What)
	}
	return b.String()
}
