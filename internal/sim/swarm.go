package sim

import (
	"fmt"

	"odp/internal/netsim"
)

// Swarm describes a sparse multi-domain topology at federation scale: a
// fixed number of administrative domains (netsim subnets), each holding a
// fixed number of capsule addresses, joined by gateway links. Build
// registers the whole topology on a Sim's fabric from O(domains) state —
// 1,000 capsules cost 1,000 membership entries, never a million pair
// entries — which is what lets the paper's §6 federation scenarios run in
// tier-1 wall time.
type Swarm struct {
	// Domains is the number of subnets ("d00", "d01", …).
	Domains int
	// CapsulesPerDomain is the number of capsule addresses per subnet
	// ("d00/c000", "d00/c001", …).
	CapsulesPerDomain int
	// Intra is the link profile within each domain.
	Intra netsim.LinkProfile
	// Gateway is the profile of each inter-domain gateway link.
	Gateway netsim.LinkProfile
	// Ring closes the chain d(last) — d0 into a ring. By default domains
	// form an open chain: d0—d1—…—d(n−1), so a query from d0 to the far
	// end must follow every gateway link in sequence.
	Ring bool
}

// SwarmNet is the built topology: pure naming plus the fabric wiring.
type SwarmNet struct {
	spec Swarm
}

// Build registers the swarm's subnets, memberships and gateway links on
// the simulation's fabric and returns the naming handle.
func (w Swarm) Build(s *Sim) *SwarmNet {
	if w.Domains <= 0 || w.CapsulesPerDomain <= 0 {
		panic("sim: Swarm needs at least one domain and one capsule per domain")
	}
	n := &SwarmNet{spec: w}
	for d := 0; d < w.Domains; d++ {
		s.Fabric.AddSubnet(n.Domain(d), w.Intra)
	}
	for d := 0; d < w.Domains; d++ {
		for c := 0; c < w.CapsulesPerDomain; c++ {
			s.Fabric.JoinSubnet(n.Addr(d, c), n.Domain(d))
		}
		if d+1 < w.Domains {
			s.Fabric.LinkSubnets(n.Domain(d), n.Domain(d+1), w.Gateway)
		}
	}
	if w.Ring && w.Domains > 2 {
		s.Fabric.LinkSubnets(n.Domain(w.Domains-1), n.Domain(0), w.Gateway)
	}
	return n
}

// Domains reports the domain count.
func (n *SwarmNet) Domains() int { return n.spec.Domains }

// CapsulesPerDomain reports the per-domain capsule count.
func (n *SwarmNet) CapsulesPerDomain() int { return n.spec.CapsulesPerDomain }

// Domain names domain d. Zero-padded so lexicographic order is domain
// order wherever names are sorted (trace lines, Gather rollup keys).
func (n *SwarmNet) Domain(d int) string { return fmt.Sprintf("d%02d", d) }

// Addr names capsule c of domain d.
func (n *SwarmNet) Addr(d, c int) string {
	return fmt.Sprintf("%s/c%03d", n.Domain(d), c)
}
