package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/netsim"
	"odp/internal/transport"
)

// TestSwarmBuildTopology: Build registers every subnet, membership and
// gateway link; adjacent domains deliver, and non-adjacent domains are
// unreachable at the fabric level — multi-hop is the federation's job
// (trader link-following), not the network's.
func TestSwarmBuildTopology(t *testing.T) {
	s := New(1)
	defer s.Close()
	n := Swarm{Domains: 3, CapsulesPerDomain: 2}.Build(s)

	if n.Addr(0, 0) != "d00/c000" || n.Addr(2, 1) != "d02/c001" {
		t.Fatalf("addressing: %q %q", n.Addr(0, 0), n.Addr(2, 1))
	}
	if sn, _ := s.Fabric.SubnetOf(n.Addr(1, 1)); sn != "d01" {
		t.Fatalf("membership: %q", sn)
	}

	var got atomic.Int64
	for _, addr := range []string{n.Addr(0, 0), n.Addr(0, 1), n.Addr(1, 0), n.Addr(2, 0)} {
		ep, err := s.Fabric.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetHandler(func(string, []byte) { got.Add(1) })
	}
	a, _ := s.Fabric.Endpoint(n.Addr(0, 0))

	// Adjacent domain: one gateway hop, delivered.
	if err := a.Send(n.Addr(1, 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run(t, time.Second, func() bool { return got.Load() == 1 })

	// Non-adjacent domain: no direct gateway link, rejected.
	if err := a.Send(n.Addr(2, 0), []byte("x")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("chain-skipping send: err = %v, want ErrUnreachable", err)
	}

	// Intra-domain: same subnet, delivered.
	if err := a.Send(n.Addr(0, 1), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestSwarmRingClosesChain: with Ring set, the last and first domains are
// gateway-adjacent.
func TestSwarmRingClosesChain(t *testing.T) {
	s := New(1)
	defer s.Close()
	n := Swarm{Domains: 4, CapsulesPerDomain: 1, Ring: true}.Build(s)
	var got atomic.Int64
	for d := 0; d < 4; d++ {
		ep, err := s.Fabric.Endpoint(n.Addr(d, 0))
		if err != nil {
			t.Fatal(err)
		}
		ep.SetHandler(func(string, []byte) { got.Add(1) })
	}
	last, _ := s.Fabric.Endpoint(n.Addr(3, 0))
	if err := last.Send(n.Addr(0, 0), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run(t, time.Second, func() bool { return got.Load() == 1 })
}

// TestSwarmSubnetFaultPlan: subnet-level plan steps cut and heal whole
// domains at logical instants.
func TestSwarmSubnetFaultPlan(t *testing.T) {
	s := New(7, WithDefaultLink(netsim.LinkProfile{}))
	defer s.Close()
	n := Swarm{
		Domains: 2, CapsulesPerDomain: 1,
		Intra:   netsim.LinkProfile{},
		Gateway: netsim.LinkProfile{Latency: time.Millisecond},
	}.Build(s)
	a, _ := s.Fabric.Endpoint(n.Addr(0, 0))
	b, err := s.Fabric.Endpoint(n.Addr(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Int64
	b.SetHandler(func(string, []byte) { got.Add(1) })

	s.Install(NewFaultPlan().
		At(10 * time.Millisecond).PartitionSubnets("d00", "d01").
		At(30 * time.Millisecond).HealSubnets("d00", "d01"))

	send := func() {
		if err := a.Send(n.Addr(1, 0), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	send() // before the partition: delivered
	s.RunFor(15 * time.Millisecond)
	send() // during: cut
	s.RunFor(20 * time.Millisecond)
	send() // after the heal: delivered
	s.RunFor(5 * time.Millisecond)

	if got.Load() != 2 {
		t.Fatalf("delivered %d, want 2 (one cut by the subnet partition)", got.Load())
	}
	if cut := s.Fabric.Stats().Cut; cut != 1 {
		t.Fatalf("Cut = %d, want 1", cut)
	}
}

// TestDrainManyParkedGoroutines is the swarm-scale regression for the
// stall detector: teardown with hundreds of goroutines parked on virtual
// timers must advance them all out rather than stalling — a thousand
// platforms' worth of janitors and detectors all park on one clock.
func TestDrainManyParkedGoroutines(t *testing.T) {
	s := New(3)
	defer s.Close()
	const parked = 400
	var wg sync.WaitGroup
	wg.Add(parked)
	started := make(chan struct{}, parked)
	for i := 0; i < parked; i++ {
		d := time.Duration(i%50+1) * time.Millisecond
		go func() {
			defer wg.Done()
			started <- struct{}{}
			s.Clock.Sleep(d)
		}()
	}
	for i := 0; i < parked; i++ {
		<-started
	}
	done := make(chan struct{})
	go func() {
		s.Drain(func() { wg.Wait() })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("Drain did not unpark the timer-parked goroutines")
	}
	if got := s.Clock.PendingWaiters(); got != 0 {
		t.Fatalf("PendingWaiters after drain = %d, want 0", got)
	}
}
