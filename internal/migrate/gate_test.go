package migrate

import (
	"context"
	"errors"
	"testing"
	"time"

	"odp/internal/rpc"
	"odp/internal/storage"
	"odp/internal/wire"
)

// TestGateQuiesceWaitsForInflight pins the quiesce protocol: quiesce
// drains in-flight invocations without holding any lock across them, and
// new invocations wait at the gate until reopen.
func TestGateQuiesceWaitsForInflight(t *testing.T) {
	g := &gate{}
	if err := g.enter(); err != nil {
		t.Fatal(err)
	}
	quiesced := make(chan struct{})
	go func() {
		if err := g.quiesce(); err != nil {
			t.Error(err)
		}
		close(quiesced)
	}()
	select {
	case <-quiesced:
		t.Fatal("quiesce returned while an invocation was in flight")
	case <-time.After(20 * time.Millisecond):
	}
	g.exit()
	<-quiesced

	entered := make(chan error, 1)
	go func() { entered <- g.enter() }()
	select {
	case <-entered:
		t.Fatal("enter admitted an invocation during quiesce")
	case <-time.After(20 * time.Millisecond):
	}
	g.reopen()
	if err := <-entered; err != nil {
		t.Fatal(err)
	}
	g.exit()
}

// TestGateCommitMovedBouncesWaiters pins the cut-over: invocations held
// at a quiesced gate are released with the forwarding error, and the
// object cannot be quiesced again once moved.
func TestGateCommitMovedBouncesWaiters(t *testing.T) {
	g := &gate{}
	if err := g.quiesce(); err != nil {
		t.Fatal(err)
	}
	entered := make(chan error, 1)
	go func() { entered <- g.enter() }()
	fwd := wire.Ref{ID: "x", Endpoints: []string{"dst"}}
	g.commitMoved(fwd)
	err := <-entered
	var moved *rpc.MovedError
	if !errors.As(err, &moved) || moved.Forward.ID != "x" {
		t.Fatalf("held invocation got %v, want MovedError to x", err)
	}
	if err := g.quiesce(); err == nil {
		t.Fatal("quiesce succeeded on a moved gate")
	}
}

// TestFailedMigrateReopensGate is the regression test for the bring-up
// finding that Migrate held the gate mutex across the remote accept: a
// migration that fails at the destination must leave the object fully
// servable, with no lock or quiesce leaked.
func TestFailedMigrateReopensGate(t *testing.T) {
	e := newEnv(t)
	src, c := e.host("src", storage.NewMemStore())
	ref, err := src.Export("tally-1", &tally{n: 3}, WithType(tallyType()))
	if err != nil {
		t.Fatal(err)
	}
	bogus := wire.Ref{ID: "gone/migrate-acceptor", Endpoints: []string{"gone"}}
	if _, err := src.Migrate(context.Background(), "tally-1", bogus); err == nil {
		t.Fatal("migrate to unreachable host succeeded")
	}
	outcome, results, err := c.Invoke(context.Background(), ref, "get", nil)
	if err != nil {
		t.Fatalf("object unreachable after failed migrate: %v", err)
	}
	if outcome != "ok" || len(results) != 1 || results[0].(int64) != 3 {
		t.Fatalf("got %q %v, want ok [3]", outcome, results)
	}
}
