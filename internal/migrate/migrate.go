// Package migrate implements migration, resource and failure transparency
// (§5.5).
//
// "An object has to take the responsibility for moving itself and its
// interfaces, since this provides for the opportunity to represent its
// state in a more compact or resilient form than if the data space of the
// active representation was simply copied out" — objects participate by
// implementing Snapshot/Restore (the code §5.5 suggests "may well be ...
// provided by an automated tool" is here the servant's own methods).
//
// The three §5.5 transparencies share one mechanism, as the paper notes
// ("there is a great deal of sharing of mechanism possible between the
// several transparencies... Transparency is therefore an effect rather
// than a mechanism"):
//
//   - Migration: snapshot → move to another capsule → re-activate
//     immediately; the old host forwards, the relocator learns the new
//     location.
//   - Resource (passivation): snapshot → stable store; the capsule's
//     activator reinstates the object transparently on next invocation.
//   - Failure: snapshot checkpoints plus a log of completed interactions;
//     recovery replays the log so "the replacement object can mirror
//     exactly the state of its predecessor".
package migrate

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"odp/internal/capsule"
	"odp/internal/group"
	"odp/internal/rpc"
	"odp/internal/storage"
	"odp/internal/types"
	"odp/internal/wire"
)

// Servant is a migratable servant: dispatchable and snapshot-able.
type Servant interface {
	capsule.Servant
	group.Snapshotter
}

// Factory reconstructs an empty servant of one type, ready for Restore.
type Factory func() Servant

// Registrar records relocations; naming.Table satisfies it.
type Registrar interface {
	Register(ref wire.Ref)
}

// Errors returned by the migration machinery.
var (
	// ErrUnknownObject reports an id this host does not manage.
	ErrUnknownObject = errors.New("migrate: unknown object")
	// ErrNoFactory reports a type with no registered factory.
	ErrNoFactory = errors.New("migrate: no factory for type")
)

// acceptorOp is the control operation hosts expose to receive movers.
const acceptorOp = "m!accept"

// gate quiesces an object's dispatch path during a move: "it also allows
// the object to delay the migration until a time convenient to other
// activities using the object" (§5.5). Dispatches register as in-flight;
// a move quiesces the gate, which waits for in-flight invocations to
// drain and holds new ones back until the cut-over commits or aborts.
// The mutex only guards the counters — it is never held across a
// dispatch or a network call (the remote accept runs with the gate
// quiesced but unlocked, per the mutexheld invariant).
type gate struct {
	mu       sync.Mutex
	cond     *sync.Cond // lazily created; signalled on drain and reopen
	inflight int
	quiesced bool // a move/passivation is holding new invocations back
	moved    bool
	fwd      wire.Ref
	gone     bool // passivated or withdrawn
}

// condLocked returns the gate's condition variable. Called with g.mu held.
func (g *gate) condLocked() *sync.Cond {
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	return g.cond
}

// enter admits one invocation, waiting out any quiesce in progress. It
// returns the terminal redirect/tombstone error once the gate has closed.
func (g *gate) enter() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.quiesced && !g.moved && !g.gone {
		g.condLocked().Wait()
	}
	if g.moved {
		return &rpc.MovedError{Forward: g.fwd}
	}
	if g.gone {
		return rpc.ErrNoObject
	}
	g.inflight++
	return nil
}

// exit retires one invocation admitted by enter.
func (g *gate) exit() {
	g.mu.Lock()
	g.inflight--
	if g.inflight == 0 {
		g.condLocked().Broadcast()
	}
	g.mu.Unlock()
}

// quiesce blocks new invocations and waits for in-flight ones to drain.
// Exactly one of commitMoved, commitGone or reopen must follow. It fails
// if the object has already moved or gone.
func (g *gate) quiesce() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.quiesced {
		g.condLocked().Wait() // another move is in progress; wait it out
	}
	if g.moved || g.gone {
		return rpc.ErrNoObject
	}
	g.quiesced = true
	for g.inflight > 0 {
		g.condLocked().Wait()
	}
	return nil
}

// reopen aborts a quiesce, re-admitting held invocations.
func (g *gate) reopen() {
	g.mu.Lock()
	g.quiesced = false
	g.condLocked().Broadcast()
	g.mu.Unlock()
}

// commitMoved closes the gate permanently: held and future invocations
// bounce to fwd.
func (g *gate) commitMoved(fwd wire.Ref) {
	g.mu.Lock()
	g.moved = true
	g.fwd = fwd
	g.quiesced = false
	g.condLocked().Broadcast()
	g.mu.Unlock()
}

// commitGone closes the gate permanently as passivated/withdrawn.
func (g *gate) commitGone() {
	g.mu.Lock()
	g.gone = true
	g.quiesced = false
	g.condLocked().Broadcast()
	g.mu.Unlock()
}

// interceptor returns the gate as a capsule interceptor.
func (g *gate) interceptor() capsule.Interceptor {
	return func(next capsule.Servant) capsule.Servant {
		return capsule.ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			if err := g.enter(); err != nil {
				return "", nil, err
			}
			defer g.exit()
			return next.Dispatch(ctx, op, args)
		})
	}
}

// managed tracks one object this host exported.
type managed struct {
	servant  Servant
	typ      types.Type
	hasType  bool
	epoch    uint32
	readOnly map[string]bool // for the recovery log: which ops to skip
	logged   bool            // interaction logging enabled
	gate     *gate
	extra    []capsule.Interceptor // woven outside the gate
}

// Host is a capsule's migration/passivation/recovery agent.
type Host struct {
	cap       *capsule.Capsule
	store     storage.Store
	registrar Registrar

	mu        sync.Mutex
	factories map[string]Factory
	objects   map[string]*managed
}

// NewHost creates the migration host for c, persisting passive objects
// and checkpoints in store and registering moves with registrar (which
// may be nil). It exports the migration acceptor and installs the
// capsule's activator for passive objects.
func NewHost(c *capsule.Capsule, store storage.Store, registrar Registrar) (*Host, error) {
	h := &Host{
		cap:       c,
		store:     store,
		registrar: registrar,
		factories: make(map[string]Factory),
		objects:   make(map[string]*managed),
	}
	if _, err := c.Export(capsule.ServantFunc(h.acceptorDispatch),
		capsule.WithID(c.Name()+"/migrate-acceptor")); err != nil {
		return nil, err
	}
	c.SetActivator(h.activate)
	return h, nil
}

// AcceptorRef returns the reference other hosts use to push movers here.
func (h *Host) AcceptorRef() wire.Ref {
	return wire.Ref{ID: h.cap.Name() + "/migrate-acceptor", Endpoints: []string{h.cap.Addr()}}
}

// RegisterFactory makes a type receivable/activatable on this host.
func (h *Host) RegisterFactory(typeName string, f Factory) {
	h.mu.Lock()
	h.factories[typeName] = f
	h.mu.Unlock()
}

// ExportOption configures a managed export.
type ExportOption func(*managed)

// WithType attaches the interface type.
func WithType(t types.Type) ExportOption {
	return func(m *managed) { m.typ = t; m.hasType = true }
}

// WithRecoveryLog enables failure transparency: completed mutating
// interactions (those not in readOnly) are logged so Recover can replay
// them on top of the last checkpoint.
func WithRecoveryLog(readOnly map[string]bool) ExportOption {
	return func(m *managed) { m.logged = true; m.readOnly = readOnly }
}

// WithExtraInterceptors weaves additional interceptors outside the
// migration gate (guards, instrumentation, lease tracking). The first is
// outermost.
func WithExtraInterceptors(is ...capsule.Interceptor) ExportOption {
	return func(m *managed) { m.extra = append(m.extra, is...) }
}

// Export publishes a migratable servant under id.
func (h *Host) Export(id string, s Servant, opts ...ExportOption) (wire.Ref, error) {
	m := &managed{servant: s, gate: &gate{}}
	for _, o := range opts {
		o(m)
	}
	capOpts := []capsule.ExportOption{capsule.WithID(id)}
	if m.hasType {
		capOpts = append(capOpts, capsule.WithType(m.typ))
	}
	interceptors := append([]capsule.Interceptor(nil), m.extra...)
	interceptors = append(interceptors, m.gate.interceptor())
	if m.logged {
		interceptors = append(interceptors, h.loggingInterceptor(id, m))
	}
	capOpts = append(capOpts, capsule.WithInterceptors(interceptors...))
	ref, err := h.cap.Export(s, capOpts...)
	if err != nil {
		return wire.Ref{}, err
	}
	h.mu.Lock()
	h.objects[id] = m
	h.mu.Unlock()
	return ref, nil
}

// loggingInterceptor appends each completed mutating interaction to the
// object's recovery log.
func (h *Host) loggingInterceptor(id string, m *managed) capsule.Interceptor {
	return func(next capsule.Servant) capsule.Servant {
		return capsule.ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			outcome, results, err := next.Dispatch(ctx, op, args)
			if err == nil && !m.readOnly[op] {
				rec, encErr := wire.EncodeAll(wire.BinaryCodec{}, []wire.Value{op, wire.List(args)})
				if encErr == nil {
					_ = h.store.AppendLog("oplog/"+id, rec)
				}
			}
			return outcome, results, err
		})
	}
}

// Migrate moves object id to the host whose acceptor is dest. The object
// keeps its identity: the destination exports it under the same id, the
// source leaves a forwarding reference, and the relocator learns the new
// location with a bumped epoch.
func (h *Host) Migrate(ctx context.Context, id string, dest wire.Ref) (wire.Ref, error) {
	h.mu.Lock()
	m, ok := h.objects[id]
	h.mu.Unlock()
	if !ok {
		return wire.Ref{}, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	// Quiesce: wait for in-flight invocations to drain and hold new ones
	// back until the cut-over completes, so no mutation is lost between
	// snapshot and forward. No lock is held across the snapshot or the
	// remote accept — the gate's quiesced state alone keeps new
	// invocations out.
	if err := m.gate.quiesce(); err != nil {
		return wire.Ref{}, fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	snap, err := m.servant.Snapshot()
	if err != nil {
		m.gate.reopen()
		return wire.Ref{}, fmt.Errorf("migrate: snapshot %q: %w", id, err)
	}
	typeName := ""
	var typeRec wire.Value
	if m.hasType {
		typeName = m.typ.Name
		typeRec = types.EncodeType(m.typ)
	}
	outcome, results, err := h.cap.Invoke(ctx, dest, acceptorOp,
		[]wire.Value{id, typeName, typeRec, snap, uint64(m.epoch + 1)},
		capsule.WithQoS(rpc.QoS{Timeout: rpc.DefaultTimeout}))
	if err != nil {
		m.gate.reopen()
		return wire.Ref{}, fmt.Errorf("migrate: accept at %v: %w", dest.Endpoints, err)
	}
	if outcome != "ok" {
		m.gate.reopen()
		return wire.Ref{}, fmt.Errorf("migrate: destination refused: %v", results)
	}
	newRef, ok := results[0].(wire.Ref)
	if !ok {
		m.gate.reopen()
		return wire.Ref{}, fmt.Errorf("migrate: acceptor returned %T", results[0])
	}
	// Cut over: forward at the source, register the change, release any
	// invocations held at the gate (they bounce to the new location).
	h.cap.SetForward(id, newRef)
	h.mu.Lock()
	delete(h.objects, id)
	h.mu.Unlock()
	m.gate.commitMoved(newRef)
	if h.registrar != nil {
		h.registrar.Register(newRef)
	}
	return newRef, nil
}

// acceptorDispatch receives a mover pushed by another host.
func (h *Host) acceptorDispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	if op != acceptorOp {
		return "", nil, fmt.Errorf("migrate: acceptor has no operation %q", op)
	}
	if len(args) != 5 {
		return "", nil, errors.New("migrate: accept wants (id, typeName, typeRec, snapshot, epoch)")
	}
	id, _ := args[0].(string)
	typeName, _ := args[1].(string)
	snap, _ := args[3].([]byte)
	epoch64, _ := args[4].(uint64)

	h.mu.Lock()
	factory, ok := h.factories[typeName]
	h.mu.Unlock()
	if !ok {
		return "refused", []wire.Value{fmt.Sprintf("no factory for type %q", typeName)}, nil
	}
	servant := factory()
	if err := servant.Restore(snap); err != nil {
		return "refused", []wire.Value{err.Error()}, nil
	}
	var opts []ExportOption
	if typeRec, ok := args[2].(wire.Record); ok {
		if typ, err := types.DecodeType(typeRec); err == nil {
			opts = append(opts, WithType(typ))
		}
	}
	ref, err := h.Export(id, servant, opts...)
	if err != nil {
		return "refused", []wire.Value{err.Error()}, nil
	}
	ref.Epoch = uint32(epoch64)
	h.mu.Lock()
	if m, ok := h.objects[id]; ok {
		m.epoch = uint32(epoch64)
	}
	h.mu.Unlock()
	return "ok", []wire.Value{ref}, nil
}
