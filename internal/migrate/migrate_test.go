package migrate

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/naming"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/storage"
	"odp/internal/types"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

// tally is a migratable servant: a named counter.
type tally struct {
	mu sync.Mutex
	n  int64
}

func (c *tally) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "add":
		c.n += args[0].(int64)
		return "ok", []wire.Value{c.n}, nil
	case "get":
		return "ok", []wire.Value{c.n}, nil
	default:
		return "", nil, fmt.Errorf("tally: no op %q", op)
	}
}

func (c *tally) Snapshot() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(c.n))
	return buf, nil
}

func (c *tally) Restore(data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = int64(binary.BigEndian.Uint64(data))
	return nil
}

func tallyType() types.Type {
	return types.Type{
		Name: "Tally",
		Ops: map[string]types.Operation{
			"add": {Args: []types.Desc{types.Int}, Outcomes: map[string][]types.Desc{"ok": {types.Int}}},
			"get": {Outcomes: map[string][]types.Desc{"ok": {types.Int}}},
		},
	}
}

var tallyReadOnly = map[string]bool{"get": true}

type env struct {
	t      *testing.T
	fabric *netsim.Fabric
	table  *naming.Table
}

func newEnv(t *testing.T) *env {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	return &env{t: t, fabric: f, table: naming.NewTable()}
}

func (e *env) host(name string, store storage.Store) (*Host, *capsule.Capsule) {
	e.t.Helper()
	ep, err := e.fabric.Endpoint(name)
	if err != nil {
		e.t.Fatal(err)
	}
	c := capsule.New(name, ep, codec)
	e.t.Cleanup(func() { _ = c.Close() })
	h, err := NewHost(c, store, e.table)
	if err != nil {
		e.t.Fatal(err)
	}
	h.RegisterFactory("Tally", func() Servant { return &tally{} })
	return h, c
}

func (e *env) client(name string) *capsule.Capsule {
	e.t.Helper()
	ep, err := e.fabric.Endpoint(name)
	if err != nil {
		e.t.Fatal(err)
	}
	c := capsule.New(name, ep, codec)
	e.t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestMigratePreservesStateAndIdentity(t *testing.T) {
	e := newEnv(t)
	src, _ := e.host("src", storage.NewMemStore())
	dst, _ := e.host("dst", storage.NewMemStore())
	client := e.client("client")
	ctx := context.Background()

	ref, err := src.Export("tally-1", &tally{n: 10}, WithType(tallyType()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Invoke(ctx, ref, "add", []wire.Value{int64(5)}); err != nil {
		t.Fatal(err)
	}
	newRef, err := src.Migrate(ctx, "tally-1", dst.AcceptorRef())
	if err != nil {
		t.Fatal(err)
	}
	if newRef.ID != "tally-1" || newRef.Endpoints[0] != "dst" {
		t.Fatalf("migrated ref %v", newRef)
	}
	if newRef.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", newRef.Epoch)
	}
	// Fresh clients via the new ref see the moved state.
	_, res, err := client.Invoke(ctx, newRef, "get", nil)
	if err != nil || res[0].(int64) != 15 {
		t.Fatalf("post-migration get: %v %v", res, err)
	}
	// Clients holding the STALE ref are forwarded transparently.
	_, res, err = client.Invoke(ctx, ref, "add", []wire.Value{int64(1)})
	if err != nil || res[0].(int64) != 16 {
		t.Fatalf("stale-ref invoke: %v %v", res, err)
	}
	// The relocator learned the move.
	got, err := e.table.Lookup("tally-1")
	if err != nil || got.Endpoints[0] != "dst" {
		t.Fatalf("relocator entry: %v %v", got, err)
	}
}

func TestMigrateUnknownObject(t *testing.T) {
	e := newEnv(t)
	src, _ := e.host("src", storage.NewMemStore())
	dst, _ := e.host("dst", storage.NewMemStore())
	if _, err := src.Migrate(context.Background(), "nope", dst.AcceptorRef()); err == nil {
		t.Fatal("migrating unknown object succeeded")
	}
}

func TestMigrateNoFactoryRefused(t *testing.T) {
	e := newEnv(t)
	src, _ := e.host("src", storage.NewMemStore())
	// Destination without the Tally factory.
	ep, err := e.fabric.Endpoint("bare")
	if err != nil {
		t.Fatal(err)
	}
	c := capsule.New("bare", ep, codec)
	t.Cleanup(func() { _ = c.Close() })
	bare, err := NewHost(c, storage.NewMemStore(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Export("tally-1", &tally{}, WithType(tallyType())); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Migrate(context.Background(), "tally-1", bare.AcceptorRef()); err == nil {
		t.Fatal("migration to factory-less host succeeded")
	}
	// Source must still serve the object (refused migration is not
	// destructive).
	client := e.client("client")
	_, res, err := client.Invoke(context.Background(), wire.Ref{
		ID: "tally-1", Endpoints: []string{"src"},
	}, "get", nil)
	if err != nil || res[0].(int64) != 0 {
		t.Fatalf("object lost after refused migration: %v %v", res, err)
	}
}

func TestPassivateAndTransparentReactivation(t *testing.T) {
	e := newEnv(t)
	h, _ := e.host("node", storage.NewMemStore())
	client := e.client("client")
	ctx := context.Background()

	ref, err := h.Export("sleeper", &tally{n: 42}, WithType(tallyType()))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Passivate("sleeper"); err != nil {
		t.Fatal(err)
	}
	if !h.IsPassive("sleeper") {
		t.Fatal("object not in passive store")
	}
	// The client keeps using the same reference; the activator
	// reinstates the object on demand.
	_, res, err := client.Invoke(ctx, ref, "add", []wire.Value{int64(1)})
	if err != nil || res[0].(int64) != 43 {
		t.Fatalf("invoke after passivation: %v %v", res, err)
	}
	if h.IsPassive("sleeper") {
		t.Fatal("object still passive after reactivation")
	}
	// Type checking survives the passivation round trip.
	if _, _, err := client.Invoke(ctx, ref, "add", []wire.Value{"not an int"}); err == nil {
		t.Fatal("type checking lost across passivation")
	}
	// Passivate again: the cycle repeats.
	if err := h.Passivate("sleeper"); err != nil {
		t.Fatal(err)
	}
	_, res, err = client.Invoke(ctx, ref, "get", nil)
	if err != nil || res[0].(int64) != 43 {
		t.Fatalf("second reactivation: %v %v", res, err)
	}
}

func TestCheckpointRecoveryExactState(t *testing.T) {
	e := newEnv(t)
	store := storage.NewMemStore() // survives the "crash"
	h1, c1 := e.host("node1", store)
	client := e.client("client")
	ctx := context.Background()

	ref, err := h1.Export("t1", &tally{}, WithType(tallyType()), WithRecoveryLog(tallyReadOnly))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if _, _, err := client.Invoke(ctx, ref, "add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h1.Checkpoint("t1"); err != nil {
		t.Fatal(err)
	}
	for i := int64(6); i <= 8; i++ {
		if _, _, err := client.Invoke(ctx, ref, "add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	// Reads must not bloat the log.
	if _, _, err := client.Invoke(ctx, ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	recs, _ := store.ReadLog("oplog/t1")
	if len(recs) != 3 {
		t.Fatalf("log has %d records, want 3 (post-checkpoint mutations only)", len(recs))
	}

	// Crash node1; recover on node2 from the shared store.
	_ = c1.Close()
	e.fabric.Isolate("node1", true)
	h2, _ := e.host("node2", store)
	newRef, err := h2.Recover(ctx, "t1", "Tally", tallyReadOnly, ref.Epoch+1)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := client.Invoke(ctx, newRef, "get", nil)
	if err != nil || res[0].(int64) != 36 { // 1+..+8
		t.Fatalf("recovered state: %v %v (want 36)", res, err)
	}
	// The relocator points clients with stale refs at the replacement.
	got, err := e.table.Lookup("t1")
	if err != nil || got.Endpoints[0] != "node2" {
		t.Fatalf("relocator after recovery: %v %v", got, err)
	}
	// End to end: a binder-equipped client holding the stale ref finds
	// the replacement.
	relocCap := e.client("reloc")
	table2, relocRef, err := naming.ExportRelocator(relocCap)
	if err != nil {
		t.Fatal(err)
	}
	table2.Register(got)
	binder := naming.NewBinder(client, relocRef)
	_, res, err = binder.Invoke(ctx, ref, "add", []wire.Value{int64(4)},
		capsule.WithQoS(rpc.QoS{Timeout: 300 * time.Millisecond}))
	if err != nil || res[0].(int64) != 40 {
		t.Fatalf("stale-ref recovery invoke: %v %v", res, err)
	}
}

func TestRecoveryWithoutCheckpointReplaysAll(t *testing.T) {
	e := newEnv(t)
	store := storage.NewMemStore()
	h1, c1 := e.host("node1", store)
	client := e.client("client")
	ctx := context.Background()
	ref, err := h1.Export("t1", &tally{}, WithRecoveryLog(tallyReadOnly))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 4; i++ {
		if _, _, err := client.Invoke(ctx, ref, "add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c1.Close()
	h2, _ := e.host("node2", store)
	newRef, err := h2.Recover(ctx, "t1", "Tally", tallyReadOnly, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := client.Invoke(ctx, newRef, "get", nil)
	if err != nil || res[0].(int64) != 10 {
		t.Fatalf("replayed state %v %v, want 10", res, err)
	}
}

func TestCheckpointRequiresLogging(t *testing.T) {
	e := newEnv(t)
	h, _ := e.host("node", storage.NewMemStore())
	if _, err := h.Export("plain", &tally{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Checkpoint("plain"); err == nil {
		t.Fatal("checkpoint without recovery log accepted")
	}
}

func TestMigrationUnderLiveLoad(t *testing.T) {
	// E7's core scenario: clients keep invoking while the object moves;
	// every invocation eventually lands, none observes stale state.
	e := newEnv(t)
	src, _ := e.host("src", storage.NewMemStore())
	dst, _ := e.host("dst", storage.NewMemStore())
	client := e.client("client")
	ctx := context.Background()

	ref, err := src.Export("hot", &tally{}, WithType(tallyType()))
	if err != nil {
		t.Fatal(err)
	}
	const total = 100
	var wg sync.WaitGroup
	errCh := make(chan error, total)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			_, _, err := client.Invoke(ctx, ref, "add", []wire.Value{int64(1)},
				capsule.WithQoS(rpc.QoS{Timeout: 5 * time.Second}))
			if err != nil {
				errCh <- fmt.Errorf("invoke %d: %w", i, err)
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if _, err := src.Migrate(ctx, "hot", dst.AcceptorRef()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	_, res, err := client.Invoke(ctx, ref, "get", nil)
	if err != nil || res[0].(int64) != total {
		t.Fatalf("final count %v %v, want %d", res, err, total)
	}
}
