package migrate

import (
	"fmt"

	"odp/internal/types"
	"odp/internal/wire"
)

// Passivate moves object id "not to another active location, but rather
// to a storage device for later retrieval and activation" (§5.5). The
// capsule's activator (installed by NewHost) makes subsequent
// reactivation transparent to clients.
func (h *Host) Passivate(id string) error {
	h.mu.Lock()
	m, ok := h.objects[id]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	// Quiesce in-flight invocations before taking the snapshot; the gate
	// holds new ones back (no lock held) until we commit or reopen.
	if err := m.gate.quiesce(); err != nil {
		return fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	snap, err := m.servant.Snapshot()
	if err != nil {
		m.gate.reopen()
		return fmt.Errorf("migrate: passivate %q: %w", id, err)
	}
	var (
		typeName string
		typeRec  wire.Value
	)
	if m.hasType {
		typeName = m.typ.Name
		typeRec = types.EncodeType(m.typ)
	}
	meta, err := wire.EncodeAll(wire.BinaryCodec{},
		[]wire.Value{typeName, typeRec, snap, m.logged})
	if err != nil {
		m.gate.reopen()
		return err
	}
	if err := h.store.PutBlob("passive/"+id, meta); err != nil {
		m.gate.reopen()
		return err
	}
	h.cap.Unexport(id)
	h.mu.Lock()
	delete(h.objects, id)
	h.mu.Unlock()
	m.gate.commitGone()
	return nil
}

// IsPassive reports whether id currently rests in the passive store.
func (h *Host) IsPassive(id string) bool {
	_, err := h.store.GetBlob("passive/" + id)
	return err == nil
}

// activate is the capsule activator hook: it reinstates passive objects
// on demand, transparently to the invoking client, re-attaching the gate
// and any recovery logging.
func (h *Host) activate(objID string) (bool, error) {
	meta, err := h.store.GetBlob("passive/" + objID)
	if err != nil {
		return false, nil // not ours
	}
	vals, err := wire.DecodeAll(wire.BinaryCodec{}, meta)
	if err != nil || len(vals) != 4 {
		return false, fmt.Errorf("migrate: corrupt passive record for %q", objID)
	}
	typeName, _ := vals[0].(string)
	snap, _ := vals[2].([]byte)
	logged, _ := vals[3].(bool)

	h.mu.Lock()
	factory, ok := h.factories[typeName]
	h.mu.Unlock()
	if !ok {
		return false, fmt.Errorf("%w: %q", ErrNoFactory, typeName)
	}
	servant := factory()
	if err := servant.Restore(snap); err != nil {
		return false, fmt.Errorf("migrate: reactivate %q: %w", objID, err)
	}
	var opts []ExportOption
	if typeRec, ok := vals[1].(wire.Record); ok {
		if decoded, derr := types.DecodeType(typeRec); derr == nil {
			opts = append(opts, WithType(decoded))
		}
	}
	if logged {
		opts = append(opts, WithRecoveryLog(nil))
	}
	if _, err := h.Export(objID, servant, opts...); err != nil {
		// A concurrent activation may have won the race; the object is
		// live either way.
		if !h.cap.Hosts(objID) {
			return false, err
		}
	}
	_ = h.store.DeleteBlob("passive/" + objID)
	return true, nil
}
