package migrate

import (
	"context"
	"fmt"

	"odp/internal/wire"
)

// Checkpoint writes a recovery snapshot for object id and truncates its
// interaction log: the snapshot subsumes everything logged so far.
func (h *Host) Checkpoint(id string) error {
	h.mu.Lock()
	m, ok := h.objects[id]
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownObject, id)
	}
	if !m.logged {
		return fmt.Errorf("migrate: %q has no recovery log (export with WithRecoveryLog)", id)
	}
	snap, err := m.servant.Snapshot()
	if err != nil {
		return fmt.Errorf("migrate: checkpoint %q: %w", id, err)
	}
	if err := h.store.PutBlob("ckpt/"+id, snap); err != nil {
		return err
	}
	return h.store.TruncateLog("oplog/" + id)
}

// Recover reinstates object id on this host from its last checkpoint and
// interaction log — "when recovery occurs, the replacement object can
// mirror exactly the state of its predecessor" (§5.5). The store must be
// the (surviving) store the crashed host wrote to; the factory for
// typeName must be registered. The recovered object is exported under its
// original id with logging re-enabled, and the relocator learns the new
// location.
func (h *Host) Recover(ctx context.Context, id, typeName string, readOnly map[string]bool, epoch uint32) (wire.Ref, error) {
	h.mu.Lock()
	factory, ok := h.factories[typeName]
	h.mu.Unlock()
	if !ok {
		return wire.Ref{}, fmt.Errorf("%w: %q", ErrNoFactory, typeName)
	}
	servant := factory()
	if snap, err := h.store.GetBlob("ckpt/" + id); err == nil {
		if err := servant.Restore(snap); err != nil {
			return wire.Ref{}, fmt.Errorf("migrate: restore checkpoint %q: %w", id, err)
		}
	}
	recs, err := h.store.ReadLog("oplog/" + id)
	if err != nil {
		return wire.Ref{}, err
	}
	for i, rec := range recs {
		vals, err := wire.DecodeAll(wire.BinaryCodec{}, rec)
		if err != nil || len(vals) != 2 {
			return wire.Ref{}, fmt.Errorf("migrate: corrupt log record %d for %q", i, id)
		}
		op, _ := vals[0].(string)
		args, _ := vals[1].(wire.List)
		if _, _, err := servant.Dispatch(ctx, op, args); err != nil {
			return wire.Ref{}, fmt.Errorf("migrate: replay %q op %d (%s): %w", id, i, op, err)
		}
	}
	ref, err := h.Export(id, servant, WithRecoveryLog(readOnly))
	if err != nil {
		return wire.Ref{}, err
	}
	ref.Epoch = epoch
	if h.registrar != nil {
		h.registrar.Register(ref)
	}
	return ref, nil
}
