package enterprise

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"odp/internal/types"
	"odp/internal/wire"
)

func bankCommunity() Community {
	return Community{
		Name:      "retail-bank",
		Objective: "hold customer funds safely",
		Roles:     []string{"teller", "auditor", "customer"},
		Statements: []Statement{
			{Kind: Permission, Role: "teller", Action: "deposit"},
			{Kind: Permission, Role: "teller", Action: "withdraw"},
			{Kind: Permission, Role: "customer", Action: "balance"},
			{Kind: Permission, Role: "auditor", Action: "*"},
			{Kind: Prohibition, Role: "auditor", Action: "withdraw"},
			{Kind: Obligation, Role: "auditor", Action: "audit"},
		},
	}
}

func TestCommunityPermits(t *testing.T) {
	c := bankCommunity()
	a := Assignment{
		"alice": {"teller"},
		"bob":   {"customer"},
		"carol": {"auditor"},
		"dave":  {"customer", "teller"},
	}
	tests := []struct {
		principal, action string
		want              bool
	}{
		{"alice", "deposit", true},
		{"alice", "balance", false},
		{"bob", "balance", true},
		{"bob", "deposit", false},
		{"carol", "balance", true},   // auditor wildcard permission
		{"carol", "withdraw", false}, // prohibition overrides wildcard
		{"dave", "deposit", true},
		{"dave", "balance", true},
		{"eve", "balance", false}, // unassigned principal
	}
	for _, tt := range tests {
		if got := c.Permits(a, tt.principal, tt.action); got != tt.want {
			t.Errorf("Permits(%s, %s) = %v, want %v", tt.principal, tt.action, got, tt.want)
		}
	}
}

func TestValidateAssignment(t *testing.T) {
	c := bankCommunity()
	if err := c.Validate(Assignment{"x": {"teller"}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(Assignment{"x": {"emperor"}}); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("want ErrUnknownRole, got %v", err)
	}
}

func TestCompileGuardPolicy(t *testing.T) {
	c := bankCommunity()
	a := Assignment{"alice": {"teller"}, "carol": {"auditor"}}
	ops := []string{"deposit", "withdraw", "balance"}
	policy, err := c.CompileGuardPolicy(a, ops)
	if err != nil {
		t.Fatal(err)
	}
	// The compiled policy must agree with the enterprise evaluation.
	for _, principal := range []string{"alice", "carol", "eve"} {
		for _, op := range ops {
			if policy.Allows(principal, op) != c.Permits(a, principal, op) {
				t.Fatalf("compiled policy diverges at (%s, %s)", principal, op)
			}
		}
	}
	if _, err := c.CompileGuardPolicy(Assignment{"x": {"ghost"}}, ops); !errors.Is(err, ErrUnknownRole) {
		t.Fatalf("bad assignment compiled: %v", err)
	}
}

func TestObligationsAudit(t *testing.T) {
	c := bankCommunity()
	a := Assignment{"carol": {"auditor"}, "alice": {"teller"}}
	// Carol never audits: obligation unmet.
	err := c.CheckObligations(a, []ObligationRecord{
		{Principal: "alice", Action: "deposit"},
	})
	if !errors.Is(err, ErrObligationUnmet) {
		t.Fatalf("want ErrObligationUnmet, got %v", err)
	}
	// Carol audits: satisfied.
	err = c.CheckObligations(a, []ObligationRecord{
		{Principal: "carol", Action: "audit"},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func accountSchema() Schema {
	return Schema{
		Entities: map[string]EntityType{
			"Account": {
				Attrs: map[string]types.Desc{
					"owner":   types.String,
					"balance": types.Int,
					"tags":    types.List(types.String),
				},
				Required: []string{"owner", "balance"},
			},
		},
		Invariants: []Invariant{
			func(entity string, inst wire.Record) error {
				if entity != "Account" {
					return nil
				}
				if b, ok := inst["balance"].(int64); ok && b < 0 {
					return fmt.Errorf("account balance %d negative", b)
				}
				return nil
			},
		},
	}
}

func TestSchemaValidate(t *testing.T) {
	s := accountSchema()
	good := wire.Record{"owner": "alice", "balance": int64(10)}
	if err := s.Validate("Account", good); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		inst wire.Record
	}{
		{"missing-required", wire.Record{"owner": "alice"}},
		{"wrong-type", wire.Record{"owner": "alice", "balance": "ten"}},
		{"undeclared-attr", wire.Record{"owner": "a", "balance": int64(1), "colour": "red"}},
		{"invariant", wire.Record{"owner": "a", "balance": int64(-5)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := s.Validate("Account", tt.inst); !errors.Is(err, ErrSchemaViolation) {
				t.Fatalf("want ErrSchemaViolation, got %v", err)
			}
		})
	}
	if err := s.Validate("Rocket", good); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("want ErrUnknownEntity, got %v", err)
	}
}

func TestVersionVectorCompare(t *testing.T) {
	a := VersionVector{"p1": 2, "p2": 1}
	b := VersionVector{"p1": 2, "p2": 2}
	if cmp, ok := a.Compare(b); !ok || cmp != -1 {
		t.Fatalf("a<b: %d %v", cmp, ok)
	}
	if cmp, ok := b.Compare(a); !ok || cmp != 1 {
		t.Fatalf("b>a: %d %v", cmp, ok)
	}
	if cmp, ok := a.Compare(a.Clone()); !ok || cmp != 0 {
		t.Fatalf("a==a: %d %v", cmp, ok)
	}
	c := VersionVector{"p1": 3, "p2": 0}
	if _, ok := a.Compare(c); ok {
		t.Fatal("concurrent vectors reported ordered")
	}
	// Missing components are zero.
	if cmp, ok := (VersionVector{}).Compare(VersionVector{"p": 1}); !ok || cmp != -1 {
		t.Fatalf("empty < ticked: %d %v", cmp, ok)
	}
}

func TestMergeOrderedVersions(t *testing.T) {
	base := VersionedFact{Key: "limit", Value: int64(100), Version: VersionVector{}}
	v1 := base.Update("org-a", int64(200))
	v2 := v1.Update("org-b", int64(300))
	merged, err := Merge(v1, v2)
	if err != nil || merged.Value != int64(300) {
		t.Fatalf("merge ordered: %v %v", merged, err)
	}
	merged, err = Merge(v2, v1)
	if err != nil || merged.Value != int64(300) {
		t.Fatalf("merge symmetric: %v %v", merged, err)
	}
}

func TestMergeConflictDetected(t *testing.T) {
	base := VersionedFact{Key: "limit", Value: int64(100), Version: VersionVector{}}
	atA := base.Update("org-a", int64(200))
	atB := base.Update("org-b", int64(999))
	if _, err := Merge(atA, atB); !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	// Concurrent but equal values join without conflict.
	sameA := base.Update("org-a", int64(500))
	sameB := base.Update("org-b", int64(500))
	merged, err := Merge(sameA, sameB)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Version["org-a"] != 1 || merged.Version["org-b"] != 1 {
		t.Fatalf("joined vector %v", merged.Version)
	}
	if _, err := Merge(atA, VersionedFact{Key: "other"}); err == nil {
		t.Fatal("merging different keys accepted")
	}
}

func TestMergePropertyIdempotentCommutative(t *testing.T) {
	prop := func(ticksA, ticksB uint8) bool {
		base := VersionedFact{Key: "k", Value: int64(0), Version: VersionVector{}}
		a, b := base, base
		for i := 0; i < int(ticksA%4); i++ {
			a = a.Update("pa", int64(i))
		}
		for i := 0; i < int(ticksB%4); i++ {
			b = b.Update("pb", int64(100+i))
		}
		m1, err1 := Merge(a, b)
		m2, err2 := Merge(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // conflict both ways: consistent
		}
		if !wire.Equal(m1.Value, m2.Value) {
			return false
		}
		// Idempotent: merging the result with itself is a no-op.
		m3, err := Merge(m1, m1)
		return err == nil && wire.Equal(m3.Value, m1.Value)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
