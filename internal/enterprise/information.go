package enterprise

import (
	"errors"
	"fmt"

	"odp/internal/types"
	"odp/internal/wire"
)

// The information language (§8): "builds upon familiar notions of
// objects, relations and information flows to enable description of the
// entities relevant to the users of a system... ODP adds a new challenge
// of having to deal with issues of inconsistency and conflict between
// multiple versions of the same information held by different parties in
// a federated environment." Schema models the entities; VersionedFact
// and Merge handle the federated-version problem with version vectors.

// EntityType describes one kind of information object.
type EntityType struct {
	// Attrs maps attribute name to value type.
	Attrs map[string]types.Desc
	// Required lists attributes that must be present.
	Required []string
}

// Invariant is a schema-level consistency predicate over one instance.
type Invariant func(entity string, instance wire.Record) error

// Schema is an information model.
type Schema struct {
	// Entities maps entity name to its type.
	Entities map[string]EntityType
	// Invariants are cross-attribute consistency rules.
	Invariants []Invariant
}

// Errors returned by the information layer.
var (
	// ErrUnknownEntity reports an instance of an undeclared entity.
	ErrUnknownEntity = errors.New("enterprise: unknown entity")
	// ErrSchemaViolation reports an invalid instance.
	ErrSchemaViolation = errors.New("enterprise: schema violation")
	// ErrConflict reports concurrent divergent versions of a fact.
	ErrConflict = errors.New("enterprise: version conflict")
)

// Validate checks an instance of entity against the schema.
func (s Schema) Validate(entity string, instance wire.Record) error {
	et, ok := s.Entities[entity]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownEntity, entity)
	}
	for _, req := range et.Required {
		if _, ok := instance[req]; !ok {
			return fmt.Errorf("%w: %s lacks required attribute %q", ErrSchemaViolation, entity, req)
		}
	}
	for attr, v := range instance {
		desc, ok := et.Attrs[attr]
		if !ok {
			return fmt.Errorf("%w: %s has undeclared attribute %q", ErrSchemaViolation, entity, attr)
		}
		if err := types.CheckValue(desc, v); err != nil {
			return fmt.Errorf("%w: %s.%s: %v", ErrSchemaViolation, entity, attr, err)
		}
	}
	for _, inv := range s.Invariants {
		if err := inv(entity, instance); err != nil {
			return fmt.Errorf("%w: %v", ErrSchemaViolation, err)
		}
	}
	return nil
}

// VersionVector orders fact versions across federated parties.
type VersionVector map[string]uint64

// Clone copies the vector.
func (v VersionVector) Clone() VersionVector {
	out := make(VersionVector, len(v))
	for k, n := range v {
		out[k] = n
	}
	return out
}

// Tick increments party's component (a local update).
func (v VersionVector) Tick(party string) VersionVector {
	out := v.Clone()
	out[party]++
	return out
}

// Compare returns -1 if v happened strictly before o, +1 if strictly
// after, 0 if equal, and ok=false when they are concurrent.
func (v VersionVector) Compare(o VersionVector) (int, bool) {
	le, ge := true, true
	keys := make(map[string]bool, len(v)+len(o))
	for k := range v {
		keys[k] = true
	}
	for k := range o {
		keys[k] = true
	}
	for k := range keys {
		a, b := v[k], o[k]
		if a < b {
			ge = false
		}
		if a > b {
			le = false
		}
	}
	switch {
	case le && ge:
		return 0, true
	case le:
		return -1, true
	case ge:
		return 1, true
	default:
		return 0, false
	}
}

// VersionedFact is one party's view of a shared fact.
type VersionedFact struct {
	// Key names the fact.
	Key string
	// Value is the fact's current value.
	Value wire.Value
	// Version orders updates across parties.
	Version VersionVector
}

// Update returns the fact with a new value, ticked by party.
func (f VersionedFact) Update(party string, value wire.Value) VersionedFact {
	return VersionedFact{
		Key:     f.Key,
		Value:   wire.Clone(value),
		Version: f.Version.Tick(party),
	}
}

// Merge reconciles two parties' views of the same fact. An ordered pair
// resolves to the newer version; concurrent divergent values are the
// §8 "inconsistency and conflict between multiple versions" case and
// surface as ErrConflict for application-level reconciliation.
// Concurrent but *equal* values merge by joining the vectors.
func Merge(a, b VersionedFact) (VersionedFact, error) {
	if a.Key != b.Key {
		return VersionedFact{}, fmt.Errorf("enterprise: merging different facts %q and %q", a.Key, b.Key)
	}
	cmp, ordered := a.Version.Compare(b.Version)
	if ordered {
		if cmp >= 0 {
			return a, nil
		}
		return b, nil
	}
	if wire.Equal(a.Value, b.Value) {
		joined := a.Version.Clone()
		for k, n := range b.Version {
			if n > joined[k] {
				joined[k] = n
			}
		}
		return VersionedFact{Key: a.Key, Value: a.Value, Version: joined}, nil
	}
	return VersionedFact{}, fmt.Errorf("%w: fact %q diverged (%v vs %v)", ErrConflict, a.Key, a.Value, b.Value)
}
