// Package enterprise implements the RM-ODP enterprise language (§8).
//
// "The enterprise language focuses on the ideas of communities (i.e.
// organizations of one sort or another), roles within communities and the
// objectives of a community. An understanding of these issues provides
// the design rationale for placing security and dependability
// requirements on the components of an ODP system."
//
// A Community declares roles and policy statements (permissions,
// prohibitions, obligations) over abstract actions. CompileGuardPolicy
// turns the declarative enterprise statement plus a role assignment into
// the concrete security.Policy a guard enforces — the enterprise
// viewpoint literally generating the engineering artefact.
package enterprise

import (
	"errors"
	"fmt"
	"sort"

	"odp/internal/security"
)

// PolicyKind classifies a policy statement.
type PolicyKind int

// Policy statement kinds.
const (
	// Permission allows a role to perform an action.
	Permission PolicyKind = iota + 1
	// Prohibition forbids a role an action, overriding permissions.
	Prohibition
	// Obligation requires a role to perform an action; it is checked by
	// audit (CheckObligations), not enforced by guards.
	Obligation
)

// Statement is one policy clause of a community.
type Statement struct {
	// Kind is the statement's deontic force.
	Kind PolicyKind
	// Role the statement applies to; "*" matches every role.
	Role string
	// Action the statement governs; "*" matches every action. Actions
	// map one-to-one onto interface operation names when compiled.
	Action string
}

// Community is an organization with roles, objectives and policy.
type Community struct {
	// Name identifies the community.
	Name string
	// Objective is the community's stated purpose (documentation; the
	// paper insists the link from mechanism to purpose be explicit).
	Objective string
	// Roles lists the community's roles.
	Roles []string
	// Statements is the community's policy.
	Statements []Statement
}

// Errors returned by the enterprise layer.
var (
	// ErrUnknownRole reports an assignment to an undeclared role.
	ErrUnknownRole = errors.New("enterprise: unknown role")
	// ErrObligationUnmet reports an unmet obligation at audit.
	ErrObligationUnmet = errors.New("enterprise: obligation unmet")
)

// Assignment binds principals to roles within a community.
type Assignment map[string][]string // principal -> roles

// Validate checks that every assigned role is declared.
func (c Community) Validate(a Assignment) error {
	declared := make(map[string]bool, len(c.Roles))
	for _, r := range c.Roles {
		declared[r] = true
	}
	for principal, roles := range a {
		for _, r := range roles {
			if !declared[r] {
				return fmt.Errorf("%w: %q assigned to %q", ErrUnknownRole, r, principal)
			}
		}
	}
	return nil
}

// permits evaluates the community policy for one role and action:
// prohibitions override permissions; no statement means denial.
func (c Community) permits(role, action string) bool {
	allowed := false
	for _, s := range c.Statements {
		if s.Role != "*" && s.Role != role {
			continue
		}
		if s.Action != "*" && s.Action != action {
			continue
		}
		switch s.Kind {
		case Prohibition:
			return false
		case Permission:
			allowed = true
		}
	}
	return allowed
}

// Permits evaluates the policy for a principal under an assignment: the
// principal may act if any of its roles permits and none prohibits.
func (c Community) Permits(a Assignment, principal, action string) bool {
	anyAllowed := false
	for _, role := range a[principal] {
		prohibited := false
		allowed := false
		for _, s := range c.Statements {
			if s.Role != "*" && s.Role != role {
				continue
			}
			if s.Action != "*" && s.Action != action {
				continue
			}
			switch s.Kind {
			case Prohibition:
				prohibited = true
			case Permission:
				allowed = true
			}
		}
		if prohibited {
			return false
		}
		if allowed {
			anyAllowed = true
		}
	}
	return anyAllowed
}

// CompileGuardPolicy lowers the community policy plus a role assignment
// into the security.Policy a generated guard enforces over the given
// operations ("this checking is another example of the kind of
// engineering detail which can be generated automatically from a
// declarative statement of security policy", §7.1).
func (c Community) CompileGuardPolicy(a Assignment, ops []string) (security.Policy, error) {
	if err := c.Validate(a); err != nil {
		return security.Policy{}, err
	}
	principals := make([]string, 0, len(a))
	for p := range a {
		principals = append(principals, p)
	}
	sort.Strings(principals)
	var rules []security.Rule
	for _, principal := range principals {
		for _, op := range ops {
			if c.Permits(a, principal, op) {
				rules = append(rules, security.Rule{Principal: principal, Op: op, Allow: true})
			}
		}
	}
	return security.Policy{Rules: rules}, nil
}

// ObligationRecord reports one principal's performance of an action, for
// obligation auditing ("contractual interactions should be subject to
// audit", §8).
type ObligationRecord struct {
	// Principal that acted.
	Principal string
	// Action performed.
	Action string
}

// CheckObligations audits a trace of performed actions against the
// community's obligations: every principal holding an obligated role must
// appear in the trace performing the obligated action.
func (c Community) CheckObligations(a Assignment, trace []ObligationRecord) error {
	performed := make(map[string]bool, len(trace))
	for _, r := range trace {
		performed[r.Principal+"|"+r.Action] = true
	}
	for _, s := range c.Statements {
		if s.Kind != Obligation {
			continue
		}
		for principal, roles := range a {
			holds := false
			for _, r := range roles {
				if s.Role == "*" || s.Role == r {
					holds = true
					break
				}
			}
			if holds && !performed[principal+"|"+s.Action] {
				return fmt.Errorf("%w: %q must %q", ErrObligationUnmet, principal, s.Action)
			}
		}
	}
	return nil
}
