package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

// stores builds one of each implementation for cross-implementation
// contract tests.
func stores(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(),
		"file": fs,
	}
}

func TestBlobCRUD(t *testing.T) {
	for name, s := range stores(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			if _, err := s.GetBlob("missing"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("want ErrNotFound, got %v", err)
			}
			if err := s.PutBlob("a", []byte("one")); err != nil {
				t.Fatal(err)
			}
			if err := s.PutBlob("a", []byte("two")); err != nil {
				t.Fatal(err)
			}
			got, err := s.GetBlob("a")
			if err != nil || string(got) != "two" {
				t.Fatalf("get: %q %v", got, err)
			}
			if err := s.DeleteBlob("a"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.GetBlob("a"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("want ErrNotFound after delete, got %v", err)
			}
			if err := s.DeleteBlob("a"); err != nil {
				t.Fatal("double delete should be nil")
			}
		})
	}
}

func TestBlobIsolation(t *testing.T) {
	for name, s := range stores(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			buf := []byte("original")
			if err := s.PutBlob("x", buf); err != nil {
				t.Fatal(err)
			}
			copy(buf, "mutated!")
			got, err := s.GetBlob("x")
			if err != nil || string(got) != "original" {
				t.Fatalf("store shares caller buffer: %q %v", got, err)
			}
			got[0] = 'X'
			again, _ := s.GetBlob("x")
			if string(again) != "original" {
				t.Fatal("store shares returned buffer")
			}
		})
	}
}

func TestListBlobs(t *testing.T) {
	for name, s := range stores(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			for _, id := range []string{"obj/b", "obj/a", "other/c", "obj-weird /name:with*chars"} {
				if err := s.PutBlob(id, []byte(id)); err != nil {
					t.Fatal(err)
				}
			}
			ids, err := s.ListBlobs("obj/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"obj/a", "obj/b"}
			if !reflect.DeepEqual(ids, want) {
				t.Fatalf("list = %v, want %v", ids, want)
			}
			all, err := s.ListBlobs("")
			if err != nil || len(all) != 4 {
				t.Fatalf("list all = %v (%v)", all, err)
			}
			// Weird names must survive the round trip.
			got, err := s.GetBlob("obj-weird /name:with*chars")
			if err != nil || string(got) != "obj-weird /name:with*chars" {
				t.Fatalf("weird name: %q %v", got, err)
			}
		})
	}
}

func TestLogAppendRead(t *testing.T) {
	for name, s := range stores(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			if recs, err := s.ReadLog("empty"); err != nil || len(recs) != 0 {
				t.Fatalf("empty log: %v %v", recs, err)
			}
			for i := 0; i < 10; i++ {
				if err := s.AppendLog("l", []byte(fmt.Sprintf("rec-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			recs, err := s.ReadLog("l")
			if err != nil || len(recs) != 10 {
				t.Fatalf("read: %d recs, %v", len(recs), err)
			}
			for i, r := range recs {
				if string(r) != fmt.Sprintf("rec-%d", i) {
					t.Fatalf("rec %d = %q", i, r)
				}
			}
			if err := s.TruncateLog("l"); err != nil {
				t.Fatal(err)
			}
			recs, err = s.ReadLog("l")
			if err != nil || len(recs) != 0 {
				t.Fatalf("after truncate: %v %v", recs, err)
			}
		})
	}
}

func TestLogBinaryRecords(t *testing.T) {
	for name, s := range stores(t) {
		s := s
		t.Run(name, func(t *testing.T) {
			rec := []byte{0, 1, 2, 0xff, 0, 4}
			if err := s.AppendLog("bin", rec); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendLog("bin", nil); err != nil {
				t.Fatal(err)
			}
			recs, err := s.ReadLog("bin")
			if err != nil || len(recs) != 2 {
				t.Fatalf("read: %v %v", recs, err)
			}
			if !reflect.DeepEqual(recs[0], rec) || len(recs[1]) != 0 {
				t.Fatalf("records corrupted: %v", recs)
			}
		})
	}
}

func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	fs, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendLog("wal", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: write a partial record by hand.
	path := filepath.Join(dir, "logs", escapeName("wal"))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 'p', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	recs, err := fs.ReadLog("wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "good" {
		t.Fatalf("torn tail not discarded: %v", recs)
	}
}

func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs1.PutBlob("persist", []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := fs1.AppendLog("wal", []byte("entry")); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.GetBlob("persist")
	if err != nil || string(got) != "durable" {
		t.Fatalf("blob lost across reopen: %q %v", got, err)
	}
	recs, err := fs2.ReadLog("wal")
	if err != nil || len(recs) != 1 || string(recs[0]) != "entry" {
		t.Fatalf("log lost across reopen: %v %v", recs, err)
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	prop := func(s string) bool {
		esc := escapeName(s)
		for _, r := range esc {
			ok := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9') || r == '-' || r == '.' || r == '_'
			if !ok {
				return false
			}
		}
		back, err := unescapeName(esc)
		return err == nil && back == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
