// Package storage provides the stable object repository of the
// engineering model.
//
// Resource transparency (§5.5) moves passive objects "not to another
// active location, but rather to a storage device for later retrieval and
// activation"; failure transparency associates a snapshot "with a log of
// outstanding interactions, so that when recovery occurs, the replacement
// object can mirror exactly the state of its predecessor". Store is the
// abstraction both rely on: named snapshot blobs plus append-only
// interaction logs.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Errors returned by stores.
var (
	// ErrNotFound reports a missing blob or log.
	ErrNotFound = errors.New("storage: not found")
	// ErrCorruptLog reports an undecodable log file.
	ErrCorruptLog = errors.New("storage: corrupt log")
)

// Store is a stable repository of snapshots and interaction logs.
type Store interface {
	// PutBlob durably stores data under id, replacing any previous blob.
	PutBlob(id string, data []byte) error
	// GetBlob retrieves the blob stored under id.
	GetBlob(id string) ([]byte, error)
	// DeleteBlob removes the blob under id. Deleting a missing blob is
	// not an error.
	DeleteBlob(id string) error
	// ListBlobs returns the sorted ids of blobs whose id begins with
	// prefix.
	ListBlobs(prefix string) ([]string, error)
	// AppendLog appends one record to the named log, creating it if
	// needed.
	AppendLog(name string, rec []byte) error
	// ReadLog returns every record of the named log in append order. A
	// missing log reads as empty.
	ReadLog(name string) ([][]byte, error)
	// TruncateLog discards the named log (typically after a checkpoint
	// subsumes it).
	TruncateLog(name string) error
}

// MemStore is an in-memory Store, for tests and benchmarks.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	logs  map[string][][]byte
}

var _ Store = (*MemStore)(nil)

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{
		blobs: make(map[string][]byte),
		logs:  make(map[string][][]byte),
	}
}

// PutBlob implements Store.
func (s *MemStore) PutBlob(id string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.blobs[id] = cp
	s.mu.Unlock()
	return nil
}

// GetBlob implements Store.
func (s *MemStore) GetBlob(id string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.blobs[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: blob %q", ErrNotFound, id)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	return cp, nil
}

// DeleteBlob implements Store.
func (s *MemStore) DeleteBlob(id string) error {
	s.mu.Lock()
	delete(s.blobs, id)
	s.mu.Unlock()
	return nil
}

// ListBlobs implements Store.
func (s *MemStore) ListBlobs(prefix string) ([]string, error) {
	s.mu.RLock()
	var ids []string
	for id := range s.blobs {
		if strings.HasPrefix(id, prefix) {
			ids = append(ids, id)
		}
	}
	s.mu.RUnlock()
	sort.Strings(ids)
	return ids, nil
}

// AppendLog implements Store.
func (s *MemStore) AppendLog(name string, rec []byte) error {
	cp := make([]byte, len(rec))
	copy(cp, rec)
	s.mu.Lock()
	s.logs[name] = append(s.logs[name], cp)
	s.mu.Unlock()
	return nil
}

// ReadLog implements Store.
func (s *MemStore) ReadLog(name string) ([][]byte, error) {
	s.mu.RLock()
	recs := s.logs[name]
	out := make([][]byte, len(recs))
	for i, r := range recs {
		cp := make([]byte, len(r))
		copy(cp, r)
		out[i] = cp
	}
	s.mu.RUnlock()
	return out, nil
}

// TruncateLog implements Store.
func (s *MemStore) TruncateLog(name string) error {
	s.mu.Lock()
	delete(s.logs, name)
	s.mu.Unlock()
	return nil
}

// FileStore is a directory-backed Store. Blob ids and log names are
// percent-free path-escaped into file names; logs are length-prefixed
// record streams fsynced per append.
type FileStore struct {
	dir string
	mu  sync.Mutex // serialises log appends per store
}

var _ Store = (*FileStore)(nil)

// NewFileStore creates (if necessary) and opens a store rooted at dir.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "logs"), 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

const hexDigits = "0123456789abcdef"

// escapeName maps an arbitrary byte string onto a filesystem-safe name:
// each unsafe byte becomes _XX (two hex digits), losslessly.
func escapeName(id string) string {
	var b strings.Builder
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '.':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
			b.WriteByte(hexDigits[c>>4])
			b.WriteByte(hexDigits[c&0xf])
		}
	}
	return b.String()
}

func unescapeName(name string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(name); {
		if name[i] != '_' {
			b.WriteByte(name[i])
			i++
			continue
		}
		if i+3 > len(name) {
			return "", fmt.Errorf("storage: bad escaped name %q", name)
		}
		hi := strings.IndexByte(hexDigits, name[i+1])
		lo := strings.IndexByte(hexDigits, name[i+2])
		if hi < 0 || lo < 0 {
			return "", fmt.Errorf("storage: bad escaped name %q", name)
		}
		b.WriteByte(byte(hi<<4 | lo))
		i += 3
	}
	return b.String(), nil
}

func (s *FileStore) blobPath(id string) string {
	return filepath.Join(s.dir, "blobs", escapeName(id))
}

func (s *FileStore) logPath(name string) string {
	return filepath.Join(s.dir, "logs", escapeName(name))
}

// PutBlob implements Store. The write is atomic (rename) and synced.
func (s *FileStore) PutBlob(id string, data []byte) error {
	path := s.blobPath(id)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// GetBlob implements Store.
func (s *FileStore) GetBlob(id string) ([]byte, error) {
	data, err := os.ReadFile(s.blobPath(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: blob %q", ErrNotFound, id)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return data, nil
}

// DeleteBlob implements Store.
func (s *FileStore) DeleteBlob(id string) error {
	err := os.Remove(s.blobPath(id))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// ListBlobs implements Store.
func (s *FileStore) ListBlobs(prefix string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "blobs"))
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() || strings.HasSuffix(e.Name(), ".tmp") {
			continue
		}
		id, err := unescapeName(e.Name())
		if err != nil {
			continue
		}
		if strings.HasPrefix(id, prefix) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// AppendLog implements Store.
func (s *FileStore) AppendLog(name string, rec []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.logPath(name), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec)))
	if _, err := f.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if _, err := f.Write(rec); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}

// ReadLog implements Store. A trailing partial record (torn write at
// crash) is silently discarded, matching write-ahead-log recovery
// practice.
func (s *FileStore) ReadLog(name string) ([][]byte, error) {
	f, err := os.Open(s.logPath(name))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	defer f.Close()
	var recs [][]byte
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(f, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, nil
			}
			return recs, nil // torn length: discard tail
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > 1<<28 {
			return nil, fmt.Errorf("%w: record of %d bytes", ErrCorruptLog, n)
		}
		rec := make([]byte, n)
		if _, err := io.ReadFull(f, rec); err != nil {
			return recs, nil // torn record: discard tail
		}
		recs = append(recs, rec)
	}
}

// TruncateLog implements Store.
func (s *FileStore) TruncateLog(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := os.Remove(s.logPath(name))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: %w", err)
	}
	return nil
}
