package clock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFakeConcurrentAdvanceAndSchedule hammers one Fake from many
// goroutines — advancers racing waiter creation, stops and AfterFunc
// callbacks — so the race detector can vet the locking. Run with -race.
func TestFakeConcurrentAdvanceAndSchedule(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	const (
		advancers  = 4
		schedulers = 4
		rounds     = 200
	)
	var fired atomic.Int64
	var wg sync.WaitGroup
	for a := 0; a < advancers; a++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				f.Advance(time.Millisecond)
			}
		}()
	}
	for s := 0; s < schedulers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					tm := f.NewTimer(time.Duration(i%7) * time.Millisecond)
					if i%2 == 0 {
						tm.Stop()
					}
				case 1:
					f.AfterFunc(time.Duration(i%5)*time.Millisecond, func() {
						fired.Add(1)
					})
				case 2:
					tk := f.NewTicker(time.Millisecond)
					tk.Stop()
				default:
					f.NextDeadline()
					f.PendingWaiters()
					f.Gen()
				}
			}
		}(s)
	}
	wg.Wait()
	// Drain every remaining waiter and let callbacks finish.
	f.Advance(time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for f.FiringCallbacks() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("callbacks still firing: %d", f.FiringCallbacks())
		}
	}
	if fired.Load() == 0 {
		t.Fatal("no AfterFunc callback ever ran")
	}
}

// TestFakeTickerDropsOnFullBuffer pins the documented drop-on-full
// semantics: the tick channel buffers exactly one undrained instant;
// deadlines crossed while it is full are dropped, like time.Ticker.
func TestFakeTickerDropsOnFullBuffer(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	// Cross three deadlines without draining: only the first buffers.
	f.Advance(3 * time.Second)
	at := <-tk.C()
	if !at.Equal(time.Unix(1, 0)) {
		t.Fatalf("buffered tick at %v, want t+1s", at)
	}
	select {
	case extra := <-tk.C():
		t.Fatalf("dropped tick was delivered: %v", extra)
	default:
	}
	// The ticker keeps going: the next crossing delivers again.
	f.Advance(time.Second)
	at = <-tk.C()
	if !at.Equal(time.Unix(4, 0)) {
		t.Fatalf("post-drop tick at %v, want t+4s", at)
	}
}
