// Package clock is the platform's single sanctioned gateway to wall-clock
// time.
//
// Every transparency mechanism that reasons about elapsed time — the RPC
// reply-cache janitor, the transaction lock-wait bound, the group failure
// detector, lease-based collection — takes a Clock instead of calling the
// time package directly, so that tests (and, eventually, a virtual-time
// netsim) can drive those mechanisms deterministically. The detclock
// static-analysis pass (internal/lint) enforces the discipline: outside
// this package, netsim and the benchmark harness, mentions of time.Now,
// time.Sleep, timers, tickers or the global math/rand source are
// diagnostics.
package clock

import (
	"sync"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the instant after d elapses.
	After(d time.Duration) <-chan time.Time
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a one-shot timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Ticker delivers repeated instants on C until stopped.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer delivers one instant on C unless stopped first.
type Timer interface {
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it did.
	Stop() bool
}

// Real is the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// Fake is a manually advanced clock for deterministic tests. Time stands
// still until Advance is called; timers and tickers whose deadlines fall
// inside an advance fire in deadline order, observing the fired instant.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

// fakeWaiter is one pending timer or ticker channel.
type fakeWaiter struct {
	deadline time.Time
	interval time.Duration // 0 for one-shot timers
	ch       chan time.Time
	stopped  bool
}

// NewFake returns a Fake clock reading start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

var _ Clock = (*Fake)(nil)

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past d.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.addWaiter(d, 0).ch
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	return &fakeTicker{fakeStopper{f: f, w: f.addWaiter(d, d)}}
}

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return &fakeTimer{fakeStopper{f: f, w: f.addWaiter(d, 0)}}
}

func (f *Fake) addWaiter(d, interval time.Duration) *fakeWaiter {
	f.mu.Lock()
	defer f.mu.Unlock()
	w := &fakeWaiter{
		deadline: f.now.Add(d),
		interval: interval,
		ch:       make(chan time.Time, 1),
	}
	f.waiters = append(f.waiters, w)
	return w
}

// Advance moves the clock forward by d, firing every timer and ticker
// whose deadline is reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	target := f.now.Add(d)
	for {
		var next *fakeWaiter
		for _, w := range f.waiters {
			if w.stopped || w.deadline.After(target) {
				continue
			}
			if next == nil || w.deadline.Before(next.deadline) {
				next = w
			}
		}
		if next == nil {
			break
		}
		f.now = next.deadline
		select {
		case next.ch <- f.now:
		default: // receiver hasn't drained the last tick; drop, like time.Ticker
		}
		if next.interval > 0 {
			next.deadline = next.deadline.Add(next.interval)
		} else {
			next.stopped = true
		}
	}
	f.now = target
	f.gcLocked()
}

// gcLocked drops stopped waiters. Called with f.mu held.
func (f *Fake) gcLocked() {
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	f.waiters = live
}

// fakeStopper is the shared half of the Ticker and Timer adapters.
type fakeStopper struct {
	f *Fake
	w *fakeWaiter
}

func (s *fakeStopper) C() <-chan time.Time { return s.w.ch }

func (s *fakeStopper) stop() bool {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	was := !s.w.stopped
	s.w.stopped = true
	return was
}

type fakeTicker struct{ fakeStopper }

func (t *fakeTicker) Stop() { t.stop() }

type fakeTimer struct{ fakeStopper }

func (t *fakeTimer) Stop() bool { return t.stop() }
