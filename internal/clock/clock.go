// Package clock is the platform's single sanctioned gateway to wall-clock
// time.
//
// Every transparency mechanism that reasons about elapsed time — the RPC
// reply-cache janitor, the transaction lock-wait bound, the group failure
// detector, lease-based collection — takes a Clock instead of calling the
// time package directly, so that tests (and the virtual-time netsim, see
// internal/sim) can drive those mechanisms deterministically. The detclock
// static-analysis pass (internal/lint) enforces the discipline: outside
// this package, the sim harness, the single real-time netsim file and the
// benchmark harness, mentions of time.Now, time.Sleep, timers, tickers or
// the global math/rand source are diagnostics.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the instant after d elapses.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f in its own goroutine after d elapses, returning a
	// Timer whose Stop cancels the pending run.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a one-shot timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Ticker delivers repeated instants on C until stopped.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer delivers one instant on C unless stopped first.
type Timer interface {
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it did.
	Stop() bool
}

// Real is the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// pooledTimer is a recyclable real timer. It is pooled as a pointer so
// that handing it out as a Timer boxes nothing.
type pooledTimer struct{ t *time.Timer }

func (t *pooledTimer) C() <-chan time.Time { return t.t.C }
func (t *pooledTimer) Stop() bool          { return t.t.Stop() }

var timerPool sync.Pool

// AcquireTimer returns a one-shot timer firing after d. Under the real
// clock the timer is drawn from a pool and re-armed — since Go 1.23
// timer channels are unbuffered, so Reset after Stop cannot deliver a
// stale instant — which keeps per-call timer setup off the allocator on
// hot paths (one rpc invocation arms at least one deadline timer).
// Under any other clock it falls back to clk.NewTimer. Pass the timer
// to ReleaseTimer when done; a released timer must no longer be used.
func AcquireTimer(clk Clock, d time.Duration) Timer {
	if _, ok := clk.(Real); ok {
		if v := timerPool.Get(); v != nil {
			pt := v.(*pooledTimer)
			pt.t.Reset(d)
			return pt
		}
		return &pooledTimer{t: time.NewTimer(d)}
	}
	return clk.NewTimer(d)
}

// ReleaseTimer stops t and, when it came from the real-clock pool,
// recycles it. Timers from other clocks are just stopped.
func ReleaseTimer(t Timer) {
	t.Stop()
	if pt, ok := t.(*pooledTimer); ok {
		timerPool.Put(pt)
	}
}

// Fake is a manually advanced clock for deterministic tests and the
// virtual-time simulation harness. Time stands still until Advance is
// called; timers and tickers whose deadlines fall inside an advance fire
// in deadline order, observing the fired instant. Like the real clock, a
// one-shot timer (or After/Sleep) with a non-positive duration fires
// immediately rather than parking until the next Advance.
//
// AfterFunc callbacks run off the caller's goroutine, like
// time.AfterFunc — but sequentially, in firing order, on a single runner
// goroutine. Real timers give no ordering guarantee for coincident
// deadlines; the fake resolves the tie deterministically (registration
// order), which is what lets a simulation replay a seed exactly when a
// packet delivery and a fault-plan step share an instant. The price is a
// contract: a callback must never block on work only a *later* callback
// can do (none of this platform's callbacks block at all — they enqueue,
// spawn, or flip state and return). A callback that schedules further
// work lands it after the Advance call that fired it; drivers that must
// observe such rescheduling (the sim harness) advance deadline-by-
// deadline and let the system settle between steps rather than jumping a
// whole window at once.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter

	// gen counts scheduling-state changes (waiter added, stopped, fired,
	// callback completed); pollers use it to detect quiescence.
	gen atomic.Uint64
	// firing counts AfterFunc callbacks that have been enqueued but have
	// not yet returned.
	firing atomic.Int64

	// cbMu guards the callback FIFO; cbBusy is true while the runner
	// goroutine is draining it.
	cbMu   sync.Mutex
	cbQ    []func()
	cbBusy bool
}

// fakeWaiter is one pending timer, ticker channel or callback.
type fakeWaiter struct {
	deadline time.Time
	interval time.Duration // 0 for one-shot timers
	ch       chan time.Time
	fn       func() // non-nil for AfterFunc waiters; ch is then unused
	stopped  bool
}

// NewFake returns a Fake clock reading start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

var _ Clock = (*Fake)(nil)

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past d. Sleep(0) and negative durations return immediately.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// After implements Clock. After(0) delivers the current instant at once.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.addWaiter(d, 0, nil).ch
}

// AfterFunc implements Clock. A non-positive duration runs fn immediately
// in its own goroutine.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	return &fakeTimer{fakeStopper{f: f, w: f.addWaiter(d, 0, fn)}}
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	return &fakeTicker{fakeStopper{f: f, w: f.addWaiter(d, d, nil)}}
}

// NewTimer implements Clock. A non-positive duration fires immediately,
// like the real clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return &fakeTimer{fakeStopper{f: f, w: f.addWaiter(d, 0, nil)}}
}

func (f *Fake) addWaiter(d, interval time.Duration, fn func()) *fakeWaiter {
	f.mu.Lock()
	w := &fakeWaiter{
		deadline: f.now.Add(d),
		interval: interval,
		fn:       fn,
		ch:       make(chan time.Time, 1),
	}
	if d <= 0 && interval == 0 {
		// The deadline has already passed: fire now instead of parking
		// until the next Advance, matching time.NewTimer(0)/time.After(0).
		w.stopped = true
		now := f.now
		f.mu.Unlock()
		if fn != nil {
			f.spawn(fn)
		} else {
			w.ch <- now
		}
		f.bump()
		return w
	}
	f.waiters = append(f.waiters, w)
	f.mu.Unlock()
	f.bump()
	return w
}

// spawn enqueues an AfterFunc callback for the runner goroutine, tracked
// by the firing counter so quiescence pollers can wait it out. Callbacks
// execute strictly in enqueue order, one at a time — coincident-deadline
// ties resolve the same way every run.
func (f *Fake) spawn(fn func()) {
	f.firing.Add(1)
	f.cbMu.Lock()
	f.cbQ = append(f.cbQ, fn)
	if f.cbBusy {
		f.cbMu.Unlock()
		return
	}
	f.cbBusy = true
	f.cbMu.Unlock()
	go f.runCallbacks()
}

func (f *Fake) runCallbacks() {
	for {
		f.cbMu.Lock()
		if len(f.cbQ) == 0 {
			f.cbBusy = false
			f.cbMu.Unlock()
			return
		}
		fn := f.cbQ[0]
		f.cbQ = f.cbQ[1:]
		f.cbMu.Unlock()
		fn()
		f.firing.Add(-1)
		f.bump()
	}
}

func (f *Fake) bump() { f.gen.Add(1) }

// Advance moves the clock forward by d, firing every timer, ticker and
// callback whose deadline is reached, in deadline order. Channel sends
// that find a full buffer are dropped, like time.Ticker; callbacks are
// handed to the sequential runner goroutine and may still be running
// when Advance returns (see FiringCallbacks).
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for {
		var next *fakeWaiter
		for _, w := range f.waiters {
			if w.stopped || w.deadline.After(target) {
				continue
			}
			if next == nil || w.deadline.Before(next.deadline) {
				next = w
			}
		}
		if next == nil {
			break
		}
		f.now = next.deadline
		if next.fn != nil {
			next.stopped = true
			f.spawn(next.fn)
			continue
		}
		select {
		case next.ch <- f.now:
		default: // receiver hasn't drained the last tick; drop, like time.Ticker
		}
		if next.interval > 0 {
			next.deadline = next.deadline.Add(next.interval)
		} else {
			next.stopped = true
		}
	}
	f.now = target
	f.gcLocked()
	f.mu.Unlock()
	f.bump()
}

// NextDeadline reports the earliest pending waiter deadline, if any: the
// instant a driver must advance to for the next scheduled event to fire.
func (f *Fake) NextDeadline() (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var best time.Time
	found := false
	for _, w := range f.waiters {
		if w.stopped {
			continue
		}
		if !found || w.deadline.Before(best) {
			best = w.deadline
			found = true
		}
	}
	return best, found
}

// PendingWaiters reports how many timers, tickers and callbacks are
// scheduled.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.waiters {
		if !w.stopped {
			n++
		}
	}
	return n
}

// FiringCallbacks reports AfterFunc callbacks spawned but not yet
// returned.
func (f *Fake) FiringCallbacks() int { return int(f.firing.Load()) }

// Gen returns a counter that changes whenever the scheduling state does:
// a waiter is added, stopped or fired, or a callback completes. Pollers
// (the sim harness's settle loop) treat an unchanged Gen alongside zero
// FiringCallbacks as evidence of quiescence.
func (f *Fake) Gen() uint64 { return f.gen.Load() }

// gcLocked drops stopped waiters. Called with f.mu held.
func (f *Fake) gcLocked() {
	live := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.stopped {
			live = append(live, w)
		}
	}
	f.waiters = live
}

// fakeStopper is the shared half of the Ticker and Timer adapters.
type fakeStopper struct {
	f *Fake
	w *fakeWaiter
}

func (s *fakeStopper) C() <-chan time.Time { return s.w.ch }

func (s *fakeStopper) stop() bool {
	s.f.mu.Lock()
	was := !s.w.stopped
	s.w.stopped = true
	s.f.mu.Unlock()
	s.f.bump()
	return was
}

type fakeTicker struct{ fakeStopper }

func (t *fakeTicker) Stop() { t.stop() }

type fakeTimer struct{ fakeStopper }

func (t *fakeTimer) Stop() bool { return t.stop() }
