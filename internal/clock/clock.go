// Package clock is the platform's single sanctioned gateway to wall-clock
// time.
//
// Every transparency mechanism that reasons about elapsed time — the RPC
// reply-cache janitor, the transaction lock-wait bound, the group failure
// detector, lease-based collection — takes a Clock instead of calling the
// time package directly, so that tests (and the virtual-time netsim, see
// internal/sim) can drive those mechanisms deterministically. The detclock
// static-analysis pass (internal/lint) enforces the discipline: outside
// this package, the sim harness, the single real-time netsim file and the
// benchmark harness, mentions of time.Now, time.Sleep, timers, tickers or
// the global math/rand source are diagnostics.
package clock

import (
	"sync"
	"sync/atomic"
	"time"
)

// Clock abstracts the passage of time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Since returns the elapsed time since t.
	Since(t time.Time) time.Duration
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the instant after d elapses.
	After(d time.Duration) <-chan time.Time
	// AfterFunc runs f in its own goroutine after d elapses, returning a
	// Timer whose Stop cancels the pending run.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker firing every d.
	NewTicker(d time.Duration) Ticker
	// NewTimer returns a one-shot timer firing after d.
	NewTimer(d time.Duration) Timer
}

// Ticker delivers repeated instants on C until stopped.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Timer delivers one instant on C unless stopped first.
type Timer interface {
	C() <-chan time.Time
	// Stop prevents the timer from firing, reporting whether it did.
	Stop() bool
}

// Real is the wall clock.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer {
	return realTimer{time.AfterFunc(d, f)}
}

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

type realTimer struct{ t *time.Timer }

func (t realTimer) C() <-chan time.Time { return t.t.C }
func (t realTimer) Stop() bool          { return t.t.Stop() }

// pooledTimer is a recyclable real timer. It is pooled as a pointer so
// that handing it out as a Timer boxes nothing.
type pooledTimer struct{ t *time.Timer }

func (t *pooledTimer) C() <-chan time.Time { return t.t.C }
func (t *pooledTimer) Stop() bool          { return t.t.Stop() }

var timerPool sync.Pool

// AcquireTimer returns a one-shot timer firing after d. Under the real
// clock the timer is drawn from a pool and re-armed — since Go 1.23
// timer channels are unbuffered, so Reset after Stop cannot deliver a
// stale instant — which keeps per-call timer setup off the allocator on
// hot paths (one rpc invocation arms at least one deadline timer).
// Under any other clock it falls back to clk.NewTimer. Pass the timer
// to ReleaseTimer when done; a released timer must no longer be used.
func AcquireTimer(clk Clock, d time.Duration) Timer {
	if _, ok := clk.(Real); ok {
		if v := timerPool.Get(); v != nil {
			pt := v.(*pooledTimer)
			pt.t.Reset(d)
			return pt
		}
		return &pooledTimer{t: time.NewTimer(d)}
	}
	return clk.NewTimer(d)
}

// ReleaseTimer stops t and, when it came from the real-clock pool,
// recycles it. Timers from other clocks are just stopped.
func ReleaseTimer(t Timer) {
	t.Stop()
	if pt, ok := t.(*pooledTimer); ok {
		timerPool.Put(pt)
	}
}

// Fake is a manually advanced clock for deterministic tests and the
// virtual-time simulation harness. Time stands still until Advance is
// called; timers and tickers whose deadlines fall inside an advance fire
// in deadline order, observing the fired instant. Like the real clock, a
// one-shot timer (or After/Sleep) with a non-positive duration fires
// immediately rather than parking until the next Advance.
//
// AfterFunc callbacks run off the caller's goroutine, like
// time.AfterFunc — but sequentially, in firing order, on a single runner
// goroutine. Real timers give no ordering guarantee for coincident
// deadlines; the fake resolves the tie deterministically (registration
// order), which is what lets a simulation replay a seed exactly when a
// packet delivery and a fault-plan step share an instant. The price is a
// contract: a callback must never block on work only a *later* callback
// can do (none of this platform's callbacks block at all — they enqueue,
// spawn, or flip state and return). A callback that schedules further
// work lands it after the Advance call that fired it; drivers that must
// observe such rescheduling (the sim harness) advance deadline-by-
// deadline and let the system settle between steps rather than jumping a
// whole window at once.
type Fake struct {
	mu  sync.Mutex
	now time.Time

	// waiters is a binary min-heap ordered by (deadline, seq): earliest
	// deadline first, registration order breaking ties — the same
	// deterministic coincident-deadline order the original linear scan
	// gave, at O(log n) per scheduling event instead of O(n). A swarm
	// simulation parks thousands of timers (every platform's janitor
	// tick, every in-flight packet) on one fake clock, which is where the
	// scan showed up. Stopped waiters are discarded lazily when they
	// surface at the root; dead counts them so compactLocked can bound
	// the garbage they pin.
	waiters []*fakeWaiter
	seq     uint64
	live    int // waiters in the heap not yet stopped
	dead    int // stopped waiters still in the heap

	// gen counts scheduling-state changes (waiter added, stopped, fired,
	// callback completed); pollers use it to detect quiescence.
	gen atomic.Uint64
	// firing counts AfterFunc callbacks that have been enqueued but have
	// not yet returned.
	firing atomic.Int64

	// cbMu guards the callback FIFO; cbBusy is true while the runner
	// goroutine is draining it.
	cbMu   sync.Mutex
	cbQ    []func()
	cbBusy bool

	// delivered holds waiters whose channel send succeeded during an
	// Advance but whose receiver has not been seen to drain it yet.
	// ObserveDrains scans it so quiescence pollers learn the instant a
	// parked goroutine actually woke (see that method for why).
	delivered []*fakeWaiter
}

// fakeWaiter is one pending timer, ticker channel or callback.
type fakeWaiter struct {
	deadline time.Time
	seq      uint64        // registration order, the coincident tie-break
	interval time.Duration // 0 for one-shot timers
	ch       chan time.Time
	fn       func() // non-nil for AfterFunc waiters; ch is then unused
	stopped  bool
}

// NewFake returns a Fake clock reading start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

var _ Clock = (*Fake)(nil)

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since implements Clock.
func (f *Fake) Since(t time.Time) time.Duration { return f.Now().Sub(t) }

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past d. Sleep(0) and negative durations return immediately.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

// After implements Clock. After(0) delivers the current instant at once.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	return f.addWaiter(d, 0, nil).ch
}

// AfterFunc implements Clock. A non-positive duration runs fn immediately
// in its own goroutine.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	return &fakeTimer{fakeStopper{f: f, w: f.addWaiter(d, 0, fn)}}
}

// NewTicker implements Clock.
func (f *Fake) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	return &fakeTicker{fakeStopper{f: f, w: f.addWaiter(d, d, nil)}}
}

// NewTimer implements Clock. A non-positive duration fires immediately,
// like the real clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	return &fakeTimer{fakeStopper{f: f, w: f.addWaiter(d, 0, nil)}}
}

func (f *Fake) addWaiter(d, interval time.Duration, fn func()) *fakeWaiter {
	f.mu.Lock()
	w := &fakeWaiter{
		deadline: f.now.Add(d),
		interval: interval,
		fn:       fn,
		ch:       make(chan time.Time, 1),
	}
	if d <= 0 && interval == 0 {
		// The deadline has already passed: fire now instead of parking
		// until the next Advance, matching time.NewTimer(0)/time.After(0).
		w.stopped = true
		now := f.now
		f.mu.Unlock()
		if fn != nil {
			f.spawn(fn)
		} else {
			w.ch <- now
		}
		f.bump()
		return w
	}
	w.seq = f.seq
	f.seq++
	f.heapPush(w)
	f.live++
	f.mu.Unlock()
	f.bump()
	return w
}

// waiterLess orders the heap: deadline first, registration order breaking
// coincident deadlines, so replays fire ties identically every run.
func waiterLess(a, b *fakeWaiter) bool {
	if !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}

// heapPush, heapPop, siftUp and siftDown are a plain binary heap over
// waiters; all called with f.mu held.
func (f *Fake) heapPush(w *fakeWaiter) {
	f.waiters = append(f.waiters, w)
	f.siftUp(len(f.waiters) - 1)
}

func (f *Fake) heapPop() *fakeWaiter {
	n := len(f.waiters) - 1
	w := f.waiters[0]
	f.waiters[0] = f.waiters[n]
	f.waiters[n] = nil
	f.waiters = f.waiters[:n]
	if n > 0 {
		f.siftDown(0)
	}
	return w
}

func (f *Fake) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !waiterLess(f.waiters[i], f.waiters[parent]) {
			return
		}
		f.waiters[i], f.waiters[parent] = f.waiters[parent], f.waiters[i]
		i = parent
	}
}

func (f *Fake) siftDown(i int) {
	n := len(f.waiters)
	for {
		least := i
		if l := 2*i + 1; l < n && waiterLess(f.waiters[l], f.waiters[least]) {
			least = l
		}
		if r := 2*i + 2; r < n && waiterLess(f.waiters[r], f.waiters[least]) {
			least = r
		}
		if least == i {
			return
		}
		f.waiters[i], f.waiters[least] = f.waiters[least], f.waiters[i]
		i = least
	}
}

// dropStoppedRootLocked pops stopped waiters off the heap root. Called
// with f.mu held.
func (f *Fake) dropStoppedRootLocked() {
	for len(f.waiters) > 0 && f.waiters[0].stopped {
		f.heapPop()
		f.dead--
	}
}

// compactLocked rebuilds the heap without its stopped entries once they
// dominate it: a stopped far-deadline timer (a QoS deadline released
// after the reply, say) never surfaces at the root on its own, and a
// long simulation arms and releases one per call. Called with f.mu held.
func (f *Fake) compactLocked() {
	if f.dead <= 64 || f.dead*2 < len(f.waiters) {
		return
	}
	liveW := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.stopped {
			liveW = append(liveW, w)
		}
	}
	for i := len(liveW); i < len(f.waiters); i++ {
		f.waiters[i] = nil
	}
	f.waiters = liveW
	f.dead = 0
	// Re-heapify: filtering breaks the shape property. waiterLess is a
	// total order, so pop order — and with it determinism — is unchanged.
	for i := len(f.waiters)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
}

// spawn enqueues an AfterFunc callback for the runner goroutine, tracked
// by the firing counter so quiescence pollers can wait it out. Callbacks
// execute strictly in enqueue order, one at a time — coincident-deadline
// ties resolve the same way every run.
func (f *Fake) spawn(fn func()) {
	f.firing.Add(1)
	f.cbMu.Lock()
	f.cbQ = append(f.cbQ, fn)
	if f.cbBusy {
		f.cbMu.Unlock()
		return
	}
	f.cbBusy = true
	f.cbMu.Unlock()
	go f.runCallbacks()
}

func (f *Fake) runCallbacks() {
	for {
		f.cbMu.Lock()
		if len(f.cbQ) == 0 {
			f.cbBusy = false
			f.cbMu.Unlock()
			return
		}
		fn := f.cbQ[0]
		f.cbQ = f.cbQ[1:]
		f.cbMu.Unlock()
		fn()
		f.firing.Add(-1)
		f.bump()
	}
}

func (f *Fake) bump() { f.gen.Add(1) }

// Advance moves the clock forward by d, firing every timer, ticker and
// callback whose deadline is reached, in deadline order. Channel sends
// that find a full buffer are dropped, like time.Ticker; callbacks are
// handed to the sequential runner goroutine and may still be running
// when Advance returns (see FiringCallbacks).
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	target := f.now.Add(d)
	for len(f.waiters) > 0 {
		next := f.waiters[0]
		if next.stopped {
			f.heapPop()
			f.dead--
			continue
		}
		if next.deadline.After(target) {
			break
		}
		f.now = next.deadline
		if next.fn != nil {
			next.stopped = true
			f.live--
			f.heapPop()
			f.spawn(next.fn)
			continue
		}
		select {
		case next.ch <- f.now:
			f.noteDeliveredLocked(next)
		default: // receiver hasn't drained the last tick; drop, like time.Ticker
		}
		if next.interval > 0 {
			// Re-arm in place: the ticker keeps its registration seq, so
			// among coincident deadlines it still fires in its original
			// registration order, exactly as the linear scan did.
			next.deadline = next.deadline.Add(next.interval)
			f.siftDown(0)
		} else {
			next.stopped = true
			f.live--
			f.heapPop()
		}
	}
	f.now = target
	f.compactLocked()
	f.mu.Unlock()
	f.bump()
}

// noteDeliveredLocked remembers a waiter whose channel send just
// succeeded, so ObserveDrains can report when its receiver wakes.
// Called with f.mu held. The list is bounded: a fired channel nobody
// ever reads (an After armed in a select that took another branch)
// must not pin memory for the rest of a long simulation, so the oldest
// entries are shed once the list is clearly stale.
func (f *Fake) noteDeliveredLocked(w *fakeWaiter) {
	if len(f.delivered) >= 256 {
		f.delivered = append(f.delivered[:0], f.delivered[128:]...)
	}
	f.delivered = append(f.delivered, w)
}

// ObserveDrains checks whether any timer or ticker channel delivered by
// a past Advance has since been drained by its receiver, and bumps Gen
// if so. This closes a quiescence blind spot: a channel send inside
// Advance makes the parked goroutine runnable, but until that goroutine
// touches the clock or the fabric again it is invisible to Gen-polling
// settle loops — if the runtime is slow to schedule it (a GC pause, OS
// preemption), the driver can mistake the lull for quiescence and
// advance virtual time out from under it. The drain of the fired
// channel is the earliest scheduler-visible sign the goroutine actually
// ran, and it happens while the goroutine is on-CPU, so a settle loop
// that restarts its stability window on drains gives the woken code a
// fresh window measured from when it truly started executing — not from
// when it merely became runnable. Channels that are never drained do
// not block anything; they just age out of the tracking list.
func (f *Fake) ObserveDrains() {
	f.mu.Lock()
	kept := f.delivered[:0]
	drained := 0
	for _, w := range f.delivered {
		if len(w.ch) == 0 {
			drained++
			continue
		}
		kept = append(kept, w)
	}
	for i := len(kept); i < len(f.delivered); i++ {
		f.delivered[i] = nil
	}
	f.delivered = kept
	f.mu.Unlock()
	if drained > 0 {
		f.bump()
	}
}

// NextDeadline reports the earliest pending waiter deadline, if any: the
// instant a driver must advance to for the next scheduled event to fire.
func (f *Fake) NextDeadline() (time.Time, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropStoppedRootLocked()
	if len(f.waiters) == 0 {
		return time.Time{}, false
	}
	return f.waiters[0].deadline, true
}

// PendingWaiters reports how many timers, tickers and callbacks are
// scheduled.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.live
}

// FiringCallbacks reports AfterFunc callbacks spawned but not yet
// returned.
func (f *Fake) FiringCallbacks() int { return int(f.firing.Load()) }

// Gen returns a counter that changes whenever the scheduling state does:
// a waiter is added, stopped or fired, or a callback completes. Pollers
// (the sim harness's settle loop) treat an unchanged Gen alongside zero
// FiringCallbacks as evidence of quiescence.
func (f *Fake) Gen() uint64 { return f.gen.Load() }

// fakeStopper is the shared half of the Ticker and Timer adapters.
type fakeStopper struct {
	f *Fake
	w *fakeWaiter
}

func (s *fakeStopper) C() <-chan time.Time { return s.w.ch }

func (s *fakeStopper) stop() bool {
	s.f.mu.Lock()
	was := !s.w.stopped
	s.w.stopped = true
	if was {
		// The waiter stays heap-resident until it surfaces at the root or
		// compaction reclaims it; only the counters move now.
		s.f.live--
		s.f.dead++
	}
	s.f.mu.Unlock()
	s.f.bump()
	return was
}

type fakeTicker struct{ fakeStopper }

func (t *fakeTicker) Stop() { t.stop() }

type fakeTimer struct{ fakeStopper }

func (t *fakeTimer) Stop() bool { return t.stop() }
