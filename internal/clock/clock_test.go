package clock

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestFakeNowAndSince(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if got := f.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestFakeTimerFiresOnce(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before advance")
	default:
	}
	f.Advance(time.Second)
	at := <-tm.C()
	if !at.Equal(time.Unix(1, 0)) {
		t.Fatalf("fired at %v, want t+1s", at)
	}
	f.Advance(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("one-shot timer fired twice")
	default:
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
}

func TestFakeTickerFiresPerInterval(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	// Each advance crossing a deadline delivers a tick; the buffered
	// channel holds at most one undrained tick, like time.Ticker.
	for i := 1; i <= 3; i++ {
		f.Advance(time.Second)
		at := <-tk.C()
		if !at.Equal(time.Unix(int64(i), 0)) {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestFakeAdvanceFiresInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	late := f.After(3 * time.Second)
	early := f.After(1 * time.Second)
	f.Advance(5 * time.Second)
	e := <-early
	l := <-late
	if !e.Before(l) {
		t.Fatalf("fire order: early %v, late %v", e, l)
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register, then advance past its deadline.
	for {
		f.mu.Lock()
		n := len(f.waiters)
		f.mu.Unlock()
		if n > 0 {
			break
		}
	}
	f.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not unblock")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("negative Since")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on fresh real timer = false")
	}
	tk := c.NewTicker(time.Hour)
	tk.Stop()
}

func TestFakeZeroDurationFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	// After(0): the instant is already due; no Advance needed.
	select {
	case at := <-f.After(0):
		if !at.Equal(time.Unix(100, 0)) {
			t.Fatalf("After(0) delivered %v, want now", at)
		}
	default:
		t.Fatal("After(0) parked until the next Advance")
	}
	// Negative durations behave the same way.
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(-1s) parked until the next Advance")
	}
	// NewTimer(0) fires at once and reports already-fired from Stop.
	tm := f.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("NewTimer(0) parked until the next Advance")
	}
	if tm.Stop() {
		t.Fatal("Stop on an immediately-fired timer = true")
	}
	// Sleep(0) returns without an Advance (would deadlock before the fix).
	done := make(chan struct{})
	go func() {
		f.Sleep(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep(0) did not return")
	}
}

func TestFakeAfterFunc(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	fired := make(chan struct{})
	tm := f.AfterFunc(time.Second, func() { close(fired) })
	select {
	case <-fired:
		t.Fatal("callback ran before advance")
	default:
	}
	f.Advance(time.Second)
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("callback did not run after advance")
	}
	// Wait out the spawned goroutine, then confirm it is accounted for.
	for f.FiringCallbacks() != 0 {
	}
	if tm.Stop() {
		t.Fatal("Stop after firing = true")
	}
}

func TestFakeAfterFuncStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.AfterFunc(time.Second, func() { t.Error("stopped callback ran") })
	if !tm.Stop() {
		t.Fatal("Stop on pending AfterFunc = false")
	}
	f.Advance(2 * time.Second)
	for f.FiringCallbacks() != 0 {
	}
}

// TestFakeAfterFuncCoincidentOrderDeterministic pins the guarantee the
// simulation harness leans on: callbacks whose deadlines coincide fire
// sequentially in registration order, every run — a packet delivery and
// a fault-plan step sharing an instant cannot race.
func TestFakeAfterFuncCoincidentOrderDeterministic(t *testing.T) {
	for round := 0; round < 50; round++ {
		f := NewFake(time.Unix(0, 0))
		var mu sync.Mutex
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			f.AfterFunc(time.Second, func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		f.Advance(time.Second)
		for f.FiringCallbacks() != 0 {
			runtime.Gosched()
		}
		mu.Lock()
		for i, got := range order {
			if got != i {
				t.Fatalf("round %d: callback order %v, want registration order", round, order)
			}
		}
		mu.Unlock()
	}
}

func TestFakeAfterFuncZeroRunsImmediately(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	fired := make(chan struct{})
	f.AfterFunc(0, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("AfterFunc(0) did not run without an Advance")
	}
}

func TestFakeNextDeadline(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	if _, ok := f.NextDeadline(); ok {
		t.Fatal("NextDeadline on an idle clock = ok")
	}
	f.After(3 * time.Second)
	tm := f.NewTimer(time.Second)
	if at, ok := f.NextDeadline(); !ok || !at.Equal(time.Unix(1, 0)) {
		t.Fatalf("NextDeadline = %v,%v want t+1s", at, ok)
	}
	tm.Stop()
	if at, ok := f.NextDeadline(); !ok || !at.Equal(time.Unix(3, 0)) {
		t.Fatalf("NextDeadline after stop = %v,%v want t+3s", at, ok)
	}
	if n := f.PendingWaiters(); n != 1 {
		t.Fatalf("PendingWaiters = %d, want 1", n)
	}
}

func TestFakeGenChangesOnScheduling(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	g0 := f.Gen()
	tm := f.NewTimer(time.Second)
	if f.Gen() == g0 {
		t.Fatal("Gen unchanged by NewTimer")
	}
	g1 := f.Gen()
	tm.Stop()
	if f.Gen() == g1 {
		t.Fatal("Gen unchanged by Stop")
	}
	g2 := f.Gen()
	f.Advance(time.Minute)
	if f.Gen() == g2 {
		t.Fatal("Gen unchanged by Advance")
	}
}

// TestFakeHeapScale drives the waiter heap at swarm scale: thousands of
// timers with shuffled deadlines fire in exact deadline order, ties in
// registration order, and stopped far-deadline timers don't accumulate
// (the compaction that keeps a long simulation's heap bounded).
func TestFakeHeapScale(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	const n = 5000
	var mu sync.Mutex
	fired := make([]int, 0, n)
	// Deadlines descend as registration ascends, with every 10th timer
	// sharing a deadline with its predecessor to exercise the tie-break.
	deadlines := make([]time.Duration, n)
	for i := 0; i < n; i++ {
		d := time.Duration(n-i) * time.Millisecond
		if i%10 == 9 {
			d = deadlines[i-1]
		}
		deadlines[i] = d
		i := i
		f.AfterFunc(d, func() {
			mu.Lock()
			fired = append(fired, i)
			mu.Unlock()
		})
	}
	if got := f.PendingWaiters(); got != n {
		t.Fatalf("PendingWaiters = %d, want %d", got, n)
	}
	f.Advance(time.Duration(n+1) * time.Millisecond)
	for f.FiringCallbacks() != 0 {
		runtime.Gosched()
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) != n {
		t.Fatalf("fired %d of %d", len(fired), n)
	}
	for k := 1; k < n; k++ {
		a, b := fired[k-1], fired[k]
		da, db := deadlines[a], deadlines[b]
		if da > db || (da == db && a > b) {
			t.Fatalf("firing %d (waiter %d, +%v) before %d (waiter %d, +%v) breaks (deadline, registration) order",
				k-1, a, da, k, b, db)
		}
	}
}

// TestFakeStoppedWaitersCompacted: arming and releasing far-deadline
// timers — the per-call QoS pattern at swarm scale — must not pin their
// memory until the simulation reaches deadlines it never will.
func TestFakeStoppedWaitersCompacted(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	for i := 0; i < 10000; i++ {
		tm := f.NewTimer(time.Hour) // far future: never fired
		tm.Stop()
		f.Advance(time.Microsecond) // the per-call advance triggers compaction
	}
	if n := f.PendingWaiters(); n != 0 {
		t.Fatalf("PendingWaiters = %d, want 0", n)
	}
	f.mu.Lock()
	held := len(f.waiters)
	f.mu.Unlock()
	if held > 128 {
		t.Fatalf("heap retains %d stopped waiters; compaction should bound them", held)
	}
}

// TestFakeTickerKeepsRegistrationOrderAcrossRearm: a ticker re-armed
// inside an Advance keeps its registration seq, so among coincident
// deadlines it still beats waiters registered after it — the property
// that makes replays stable when a ticker and a delivery share a grid.
func TestFakeTickerKeepsRegistrationOrderAcrossRearm(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tick := f.NewTicker(time.Second)
	var mu sync.Mutex
	var order []string
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 3; i++ {
			<-tick.C()
			mu.Lock()
			order = append(order, "tick")
			mu.Unlock()
		}
	}()
	for i := 0; i < 3; i++ {
		f.Advance(time.Second)
		// The ticker consumer records between advances; give it a chance.
		for {
			mu.Lock()
			n := len(order)
			mu.Unlock()
			if n == i+1 {
				break
			}
			runtime.Gosched()
		}
	}
	<-done
	tick.Stop()
	if len(order) != 3 {
		t.Fatalf("ticker fired %d times, want 3", len(order))
	}
}

// TestFakeObserveDrains pins the quiescence hand-off: a timer channel
// delivered by Advance counts as activity exactly once — when its
// receiver drains it — and a channel nobody reads never blocks or
// re-bumps the generation.
func TestFakeObserveDrains(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	abandoned := f.After(time.Second)
	_ = abandoned
	f.Advance(time.Second)

	// Undrained: repeated observation sees nothing new.
	g0 := f.Gen()
	f.ObserveDrains()
	f.ObserveDrains()
	if f.Gen() != g0 {
		t.Fatal("Gen bumped before any channel was drained")
	}

	// Draining one of the two fired channels is visible exactly once.
	<-tm.C()
	f.ObserveDrains()
	g1 := f.Gen()
	if g1 == g0 {
		t.Fatal("Gen unchanged by observed drain")
	}
	f.ObserveDrains()
	if f.Gen() != g1 {
		t.Fatal("Gen bumped again with no further drain")
	}
}
