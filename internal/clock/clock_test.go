package clock

import (
	"testing"
	"time"
)

func TestFakeNowAndSince(t *testing.T) {
	start := time.Unix(1000, 0)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if got := f.Since(start); got != 3*time.Second {
		t.Fatalf("Since = %v, want 3s", got)
	}
}

func TestFakeTimerFiresOnce(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before advance")
	default:
	}
	f.Advance(time.Second)
	at := <-tm.C()
	if !at.Equal(time.Unix(1, 0)) {
		t.Fatalf("fired at %v, want t+1s", at)
	}
	f.Advance(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("one-shot timer fired twice")
	default:
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer = false")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second Stop = true")
	}
}

func TestFakeTickerFiresPerInterval(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	tk := f.NewTicker(time.Second)
	defer tk.Stop()
	// Each advance crossing a deadline delivers a tick; the buffered
	// channel holds at most one undrained tick, like time.Ticker.
	for i := 1; i <= 3; i++ {
		f.Advance(time.Second)
		at := <-tk.C()
		if !at.Equal(time.Unix(int64(i), 0)) {
			t.Fatalf("tick %d at %v", i, at)
		}
	}
	tk.Stop()
	f.Advance(5 * time.Second)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
}

func TestFakeAdvanceFiresInDeadlineOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	late := f.After(3 * time.Second)
	early := f.After(1 * time.Second)
	f.Advance(5 * time.Second)
	e := <-early
	l := <-late
	if !e.Before(l) {
		t.Fatalf("fire order: early %v, late %v", e, l)
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(time.Second)
		close(done)
	}()
	// Wait for the sleeper to register, then advance past its deadline.
	for {
		f.mu.Lock()
		n := len(f.waiters)
		f.mu.Unlock()
		if n > 0 {
			break
		}
	}
	f.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not unblock")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	if c.Since(t0) < 0 {
		t.Fatal("negative Since")
	}
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on fresh real timer = false")
	}
	tk := c.NewTicker(time.Hour)
	tk.Stop()
}
