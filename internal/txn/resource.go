package txn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"odp/internal/capsule"
	"odp/internal/group"
	"odp/internal/storage"
	"odp/internal/wire"
)

// Transactional control operations, recognised by the resource wrapper.
const (
	// OpDo wraps an application operation: args = [txnID, op, argsList].
	OpDo = "t!do"
	// OpPrepare asks the resource to vote: args = [txnID].
	OpPrepare = "t!prepare"
	// OpCommit finalises: args = [txnID].
	OpCommit = "t!commit"
	// OpAbort rolls back: args = [txnID].
	OpAbort = "t!abort"
)

// Separation is the separation-constraint specification of an interface
// (§5.2): it tells the generated concurrency manager which operations
// interfere. Operations in ReadOnly take shared locks; everything else is
// assumed to modify state and takes an exclusive lock.
type Separation struct {
	// ReadOnly lists non-mutating operations.
	ReadOnly map[string]bool
}

// shared reports the lock mode for op.
func (s Separation) shared(op string) bool {
	return s.ReadOnly[op]
}

// OrderPredicate is the consistency constraint of §5.2: "associating
// ordering predicates with interfaces, where the predicate describes the
// permitted sequences of invocations within a transaction". It inspects
// the full in-transaction operation sequence and reports whether it is
// acceptable; it is evaluated at prepare time and a false vote aborts the
// transaction.
type OrderPredicate func(ops []string) error

// Resource makes a servant transactional. The servant must implement
// group.Snapshotter so pre-images can be retained ("retaining of versions
// of object state until the overall fate of a transaction is decided").
type Resource struct {
	id      string
	servant capsule.Servant
	snap    group.Snapshotter
	lm      *LockManager
	sep     Separation
	order   OrderPredicate
	store   storage.Store // optional durability

	mu       sync.Mutex
	undo     map[string][]byte   // txn -> pre-image
	prepared map[string]bool     // txn -> voted yes
	opLog    map[string][]string // txn -> in-txn operation sequence
	plainSeq atomic.Uint64       // distinguishes concurrent plain calls
}

// ResourceOption configures a Resource.
type ResourceOption func(*Resource)

// WithSeparation installs the separation constraints (default: every
// operation exclusive).
func WithSeparation(s Separation) ResourceOption {
	return func(r *Resource) { r.sep = s }
}

// WithOrderPredicate installs a consistency predicate.
func WithOrderPredicate(p OrderPredicate) ResourceOption {
	return func(r *Resource) { r.order = p }
}

// WithDurability persists prepared and committed state in store.
func WithDurability(store storage.Store) ResourceOption {
	return func(r *Resource) { r.store = store }
}

// NewResource wraps servant (which must snapshot) as transactional
// resource id, sharing lm with the other resources of its capsule.
func NewResource(id string, servant capsule.Servant, lm *LockManager, opts ...ResourceOption) (*Resource, error) {
	snap, ok := servant.(group.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("txn: servant for %q cannot snapshot; transactional resources need pre-images", id)
	}
	r := &Resource{
		id:       id,
		servant:  servant,
		snap:     snap,
		lm:       lm,
		undo:     make(map[string][]byte),
		prepared: make(map[string]bool),
		opLog:    make(map[string][]string),
	}
	for _, o := range opts {
		o(r)
	}
	return r, nil
}

var _ capsule.Servant = (*Resource)(nil)

// Dispatch implements capsule.Servant: transactional control operations
// drive the two-phase protocol; plain operations run as self-contained
// mini-transactions so they cannot observe uncommitted state.
func (r *Resource) Dispatch(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case OpDo:
		return r.doTxnOp(ctx, args)
	case OpPrepare:
		return r.prepare(args)
	case OpCommit:
		return r.commit(args)
	case OpAbort:
		return r.abort(args)
	default:
		return r.doPlain(ctx, op, args)
	}
}

// Recover reloads the last committed snapshot from the durability store,
// as after a crash.
func (r *Resource) Recover() error {
	if r.store == nil {
		return nil
	}
	data, err := r.store.GetBlob("txnobj/" + r.id)
	if err != nil {
		if storageIsNotFound(err) {
			return nil // nothing committed yet
		}
		return err
	}
	return r.snap.Restore(data)
}

func storageIsNotFound(err error) bool {
	return errors.Is(err, storage.ErrNotFound)
}

// doTxnOp executes one in-transaction operation under strict 2PL.
func (r *Resource) doTxnOp(ctx context.Context, args []wire.Value) (string, []wire.Value, error) {
	if len(args) != 3 {
		return "", nil, fmt.Errorf("txn: %s wants (txnID, op, args)", OpDo)
	}
	txnID, _ := args[0].(string)
	op, _ := args[1].(string)
	realArgs, _ := args[2].(wire.List)
	if txnID == "" || op == "" {
		return "", nil, fmt.Errorf("txn: %s with empty txn or op", OpDo)
	}
	exclusive := !r.sep.shared(op)
	if err := r.lm.Acquire(ctx, txnID, r.id, exclusive); err != nil {
		return "", nil, err
	}
	// First mutation by this transaction: retain the pre-image.
	if exclusive {
		r.mu.Lock()
		_, have := r.undo[txnID]
		r.mu.Unlock()
		if !have {
			pre, err := r.snap.Snapshot()
			if err != nil {
				return "", nil, fmt.Errorf("txn: pre-image: %w", err)
			}
			r.mu.Lock()
			if _, raced := r.undo[txnID]; !raced {
				r.undo[txnID] = pre
			}
			r.mu.Unlock()
		}
	}
	r.mu.Lock()
	r.opLog[txnID] = append(r.opLog[txnID], op)
	r.mu.Unlock()
	return r.servant.Dispatch(ctx, op, realArgs)
}

// doPlain executes a non-transactional operation as a mini-transaction:
// it waits for conflicting transactions and releases immediately.
func (r *Resource) doPlain(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	miniTxn := "plain/" + r.id + "/" + strconv.FormatUint(r.plainSeq.Add(1), 10)
	exclusive := !r.sep.shared(op)
	if err := r.lm.Acquire(ctx, miniTxn, r.id, exclusive); err != nil {
		return "", nil, err
	}
	defer r.lm.ReleaseAll(miniTxn)
	return r.servant.Dispatch(ctx, op, args)
}

// prepare votes on a transaction's outcome at this resource.
func (r *Resource) prepare(args []wire.Value) (string, []wire.Value, error) {
	txnID, _ := args[0].(string)
	r.mu.Lock()
	ops := append([]string(nil), r.opLog[txnID]...)
	r.mu.Unlock()
	// Consistency: evaluate the ordering predicate over the transaction's
	// operation sequence.
	if r.order != nil {
		if err := r.order(ops); err != nil {
			return "no", []wire.Value{err.Error()}, nil
		}
	}
	// Durability: persist the post-image as a prepared intent.
	if r.store != nil {
		post, err := r.snap.Snapshot()
		if err != nil {
			return "no", []wire.Value{err.Error()}, nil
		}
		if err := r.store.PutBlob("txnintent/"+r.id+"/"+txnID, post); err != nil {
			return "no", []wire.Value{err.Error()}, nil
		}
	}
	r.mu.Lock()
	r.prepared[txnID] = true
	r.mu.Unlock()
	return "yes", nil, nil
}

// commit finalises the transaction at this resource.
func (r *Resource) commit(args []wire.Value) (string, []wire.Value, error) {
	txnID, _ := args[0].(string)
	r.mu.Lock()
	wasPrepared := r.prepared[txnID]
	delete(r.prepared, txnID)
	delete(r.undo, txnID)
	delete(r.opLog, txnID)
	r.mu.Unlock()
	if !wasPrepared {
		// Committing unprepared is a coordinator bug; refuse.
		return "", nil, fmt.Errorf("%w: %s at %s", ErrNotPrepared, txnID, r.id)
	}
	if r.store != nil {
		if data, err := r.store.GetBlob("txnintent/" + r.id + "/" + txnID); err == nil {
			if err := r.store.PutBlob("txnobj/"+r.id, data); err != nil {
				return "", nil, err
			}
			_ = r.store.DeleteBlob("txnintent/" + r.id + "/" + txnID)
		}
	}
	r.lm.Release(txnID, r.id)
	return "ok", nil, nil
}

// abort rolls the transaction back at this resource.
func (r *Resource) abort(args []wire.Value) (string, []wire.Value, error) {
	txnID, _ := args[0].(string)
	r.mu.Lock()
	pre, had := r.undo[txnID]
	delete(r.undo, txnID)
	delete(r.prepared, txnID)
	delete(r.opLog, txnID)
	r.mu.Unlock()
	if had {
		if err := r.snap.Restore(pre); err != nil {
			return "", nil, fmt.Errorf("txn: undo restore: %w", err)
		}
	}
	if r.store != nil {
		_ = r.store.DeleteBlob("txnintent/" + r.id + "/" + txnID)
	}
	r.lm.Release(txnID, r.id)
	return "ok", nil, nil
}
