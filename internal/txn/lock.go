// Package txn implements concurrency transparency (§5.2): the ACID
// properties layered over ordinary ADT interfaces.
//
//   - Atomicity: transactional invocations are bracketed by a two-phase
//     commit driven by the client-side coordinator; "retaining of
//     versions of object state until the overall fate of a transaction is
//     decided" is the resource wrapper's undo store.
//   - Consistency: optional ordering predicates over the sequence of
//     invocations within a transaction are checked at prepare time.
//   - Isolation: "separation constraints with interface specifications
//     indicating which operation and argument combinations potentially
//     interfere" generate the concurrency-control manager: read-only
//     operations take shared locks, interfering ones exclusive locks,
//     held to transaction end (strict two-phase locking).
//   - Durability: prepared and committed state is persisted through a
//     storage.Store write-ahead discipline.
//
// "Additionally it will need to interact with a deadlock detector so that
// applications do not hang indefinitely if transactions suffer locking
// conflicts" — the lock manager maintains a wait-for graph and aborts the
// requester whose wait would close a cycle.
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"odp/internal/clock"
)

// Lock modes.
type lockMode int

const (
	lockShared lockMode = iota + 1
	lockExclusive
)

// Errors returned by the transaction machinery.
var (
	// ErrDeadlock reports that the requested lock would close a wait
	// cycle; the requesting transaction is chosen as victim and must
	// abort.
	ErrDeadlock = errors.New("txn: deadlock detected")
	// ErrAborted reports use of a transaction that has been aborted.
	ErrAborted = errors.New("txn: transaction aborted")
	// ErrDone reports use of a transaction that already committed or
	// aborted.
	ErrDone = errors.New("txn: transaction already finished")
	// ErrNotPrepared reports a commit for a transaction that never
	// prepared.
	ErrNotPrepared = errors.New("txn: not prepared")
	// ErrLockTimeout reports a lock wait exceeding the manager's bound —
	// the fallback detector for deadlocks spanning multiple lock
	// managers, which no local wait-for graph can see.
	ErrLockTimeout = errors.New("txn: lock wait timed out")
)

// lockState tracks one resource's lock.
type lockState struct {
	holders map[string]lockMode // txn id -> mode held
	waiters int
}

// LockManager serialises access to a set of resources on behalf of
// transactions. One manager typically guards one capsule's resources, so
// its wait-for graph sees all local conflicts.
type LockManager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[string]*lockState
	// waitsFor edges: txn -> set of txns it currently waits for.
	waitsFor map[string]map[string]bool
	// maxWait bounds any single lock wait (cross-manager deadlock
	// fallback).
	maxWait time.Duration
	clk     clock.Clock

	deadlocks uint64
}

// LockManagerOption configures a LockManager.
type LockManagerOption func(*LockManager)

// WithLockClock sets the clock bounding lock waits (default clock.Real{}).
func WithLockClock(c clock.Clock) LockManagerOption {
	return func(lm *LockManager) { lm.clk = c }
}

// NewLockManager creates a lock manager. maxWait bounds individual lock
// waits; zero means 5s.
func NewLockManager(maxWait time.Duration, opts ...LockManagerOption) *LockManager {
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	lm := &LockManager{
		locks:    make(map[string]*lockState),
		waitsFor: make(map[string]map[string]bool),
		maxWait:  maxWait,
		clk:      clock.Real{},
	}
	lm.cond = sync.NewCond(&lm.mu)
	for _, o := range opts {
		o(lm)
	}
	return lm
}

// Deadlocks returns how many deadlocks have been detected and broken.
func (lm *LockManager) Deadlocks() uint64 {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.deadlocks
}

// Acquire takes resource in mode on behalf of txn, blocking while
// conflicting holders exist. It is reentrant: a transaction already
// holding the resource re-acquires (or upgrades shared→exclusive)
// without self-conflict. Returns ErrDeadlock when the wait would close a
// cycle, with the requester as victim.
func (lm *LockManager) Acquire(ctx context.Context, txnID, resource string, exclusive bool) error {
	mode := lockShared
	if exclusive {
		mode = lockExclusive
	}
	deadline := lm.clk.Now().Add(lm.maxWait)

	lm.mu.Lock()
	defer lm.mu.Unlock()
	for {
		ls := lm.locks[resource]
		if ls == nil {
			ls = &lockState{holders: make(map[string]lockMode)}
			lm.locks[resource] = ls
		}
		if lm.grantable(ls, txnID, mode) {
			if held, ok := ls.holders[txnID]; !ok || mode > held {
				ls.holders[txnID] = mode
			}
			delete(lm.waitsFor, txnID)
			return nil
		}
		// Record who we wait for and check for a cycle.
		blockers := make(map[string]bool)
		for holder := range ls.holders {
			if holder != txnID {
				blockers[holder] = true
			}
		}
		lm.waitsFor[txnID] = blockers
		if lm.cycleFrom(txnID) {
			delete(lm.waitsFor, txnID)
			lm.deadlocks++
			return fmt.Errorf("%w: %s waiting for %s", ErrDeadlock, txnID, resource)
		}
		if ctx.Err() != nil {
			delete(lm.waitsFor, txnID)
			return ctx.Err()
		}
		if lm.clk.Now().After(deadline) {
			delete(lm.waitsFor, txnID)
			return fmt.Errorf("%w: %s on %s", ErrLockTimeout, txnID, resource)
		}
		ls.waiters++
		lm.waitWithWakeup()
		ls.waiters--
	}
}

// waitWithWakeup waits on the condition with a periodic poll so context
// expiry and the wait deadline are honoured. Called with lm.mu held.
func (lm *LockManager) waitWithWakeup() {
	done := make(chan struct{})
	go func() {
		// A stoppable timer, not clk.After: an abandoned After waiter
		// would fire later into a channel nobody reads, a phantom
		// deadline for virtual-time drivers.
		t := lm.clk.NewTimer(20 * time.Millisecond)
		defer t.Stop()
		select {
		case <-t.C():
			lm.mu.Lock()
			lm.cond.Broadcast()
			lm.mu.Unlock()
		case <-done:
		}
	}()
	lm.cond.Wait()
	close(done)
}

// grantable reports whether txn may hold resource in mode given current
// holders. Called with lm.mu held.
func (lm *LockManager) grantable(ls *lockState, txnID string, mode lockMode) bool {
	for holder, held := range ls.holders {
		if holder == txnID {
			continue
		}
		if mode == lockExclusive || held == lockExclusive {
			return false
		}
	}
	return true
}

// cycleFrom reports whether the wait-for graph has a cycle reachable from
// start. Called with lm.mu held.
func (lm *LockManager) cycleFrom(start string) bool {
	seen := make(map[string]bool)
	var visit func(string) bool
	visit = func(t string) bool {
		if t == start && len(seen) > 0 {
			return true
		}
		if seen[t] {
			return false
		}
		seen[t] = true
		for next := range lm.waitsFor[t] {
			if visit(next) {
				return true
			}
		}
		return false
	}
	for next := range lm.waitsFor[start] {
		seen[start] = true
		if visit(next) {
			return true
		}
	}
	return false
}

// Release drops txn's lock on one resource. Two-phase commit must
// release per resource as each participant finishes its own commit or
// abort — a global release after the FIRST participant would let other
// transactions slip into participants that have not yet rolled back,
// whose later undo-restore would stomp them.
func (lm *LockManager) Release(txnID, resource string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if ls, ok := lm.locks[resource]; ok {
		delete(ls.holders, txnID)
		if len(ls.holders) == 0 && ls.waiters == 0 {
			delete(lm.locks, resource)
		}
	}
	lm.cond.Broadcast()
}

// ReleaseAll drops every lock held by txn and clears its wait state.
func (lm *LockManager) ReleaseAll(txnID string) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for res, ls := range lm.locks {
		delete(ls.holders, txnID)
		if len(ls.holders) == 0 && ls.waiters == 0 {
			delete(lm.locks, res)
		}
	}
	delete(lm.waitsFor, txnID)
	// Remove txn from other transactions' blocker sets.
	for _, blockers := range lm.waitsFor {
		delete(blockers, txnID)
	}
	lm.cond.Broadcast()
}

// HeldBy reports whether txn currently holds any lock (test hook).
func (lm *LockManager) HeldBy(txnID string) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, ls := range lm.locks {
		if _, ok := ls.holders[txnID]; ok {
			return true
		}
	}
	return false
}
