package txn

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"odp/internal/capsule"
	"odp/internal/storage"
	"odp/internal/wire"
)

// Coordinator creates and finishes transactions from one capsule. "When
// atomicity is provided a request-reply style invocation will carry an
// atomic activity into the invoked operation" (§5.2): Txn.Invoke wraps
// ordinary interrogations so each carries the transaction identity to the
// resource's concurrency manager.
type Coordinator struct {
	cap    *capsule.Capsule
	store  storage.Store // optional decision log
	nextID atomic.Uint64
}

// NewCoordinator creates a coordinator. store, when non-nil, records
// commit decisions (write-ahead) so that in-doubt participants could be
// resolved after a coordinator crash.
func NewCoordinator(c *capsule.Capsule, store storage.Store) *Coordinator {
	return &Coordinator{cap: c, store: store}
}

// Txn is one atomic activity.
type Txn struct {
	id    string
	coord *Coordinator

	mu           sync.Mutex
	participants map[string]wire.Ref
	order        []string
	finished     bool
	aborted      bool
}

// Begin starts a new transaction.
func (c *Coordinator) Begin() *Txn {
	return &Txn{
		id:           c.cap.Name() + "/txn-" + strconv.FormatUint(c.nextID.Add(1), 10),
		coord:        c,
		participants: make(map[string]wire.Ref),
	}
}

// ID returns the transaction identifier.
func (t *Txn) ID() string { return t.id }

// Invoke performs op on ref within the transaction. The target must be a
// transactional resource (wrapped by NewResource).
func (t *Txn) Invoke(ctx context.Context, ref wire.Ref, op string, args []wire.Value, opts ...capsule.InvokeOption) (string, []wire.Value, error) {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return "", nil, ErrDone
	}
	if t.aborted {
		t.mu.Unlock()
		return "", nil, ErrAborted
	}
	if _, ok := t.participants[ref.ID]; !ok {
		t.participants[ref.ID] = ref
		t.order = append(t.order, ref.ID)
	}
	t.mu.Unlock()

	outcome, results, err := t.coord.cap.Invoke(ctx, ref, OpDo,
		[]wire.Value{t.id, op, wire.List(args)}, opts...)
	if err != nil {
		// A deadlock or lock timeout poisons the transaction: the caller
		// must abort (and the abort path releases whatever was locked).
		t.mu.Lock()
		t.aborted = true
		t.mu.Unlock()
		return "", nil, err
	}
	return outcome, results, nil
}

// Commit runs two-phase commit over every touched resource. On any "no"
// vote or unreachable participant the transaction aborts everywhere and
// ErrAborted is returned.
func (t *Txn) Commit(ctx context.Context) error {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrDone
	}
	if t.aborted {
		t.mu.Unlock()
		return t.Abort(ctx)
	}
	t.finished = true
	refs := t.snapshotParticipantsLocked()
	t.mu.Unlock()

	// Phase 1: prepare.
	for _, ref := range refs {
		outcome, res, err := t.coord.cap.Invoke(ctx, ref, OpPrepare, []wire.Value{t.id})
		if err != nil || outcome != "yes" {
			t.rollback(ctx, refs)
			if err != nil {
				return fmt.Errorf("%w: prepare %s: %v", ErrAborted, ref.ID, err)
			}
			return fmt.Errorf("%w: %s voted %q %v", ErrAborted, ref.ID, outcome, res)
		}
	}
	// Decision point: log commit before telling anyone (write-ahead).
	if t.coord.store != nil {
		if err := t.coord.store.AppendLog("txn-decisions", []byte("commit "+t.id)); err != nil {
			t.rollback(ctx, refs)
			return fmt.Errorf("%w: decision log: %v", ErrAborted, err)
		}
	}
	// Phase 2: commit.
	var firstErr error
	for _, ref := range refs {
		if _, _, err := t.coord.cap.Invoke(ctx, ref, OpCommit, []wire.Value{t.id}); err != nil && firstErr == nil {
			// The decision is durable; a participant that missed it is
			// in-doubt and would be resolved by recovery, not rollback.
			firstErr = fmt.Errorf("txn: commit delivery to %s: %w", ref.ID, err)
		}
	}
	return firstErr
}

// Abort rolls the transaction back everywhere.
func (t *Txn) Abort(ctx context.Context) error {
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return ErrDone
	}
	t.finished = true
	refs := t.snapshotParticipantsLocked()
	t.mu.Unlock()
	t.rollback(ctx, refs)
	return nil
}

func (t *Txn) snapshotParticipantsLocked() []wire.Ref {
	refs := make([]wire.Ref, 0, len(t.order))
	for _, id := range t.order {
		refs = append(refs, t.participants[id])
	}
	return refs
}

func (t *Txn) rollback(ctx context.Context, refs []wire.Ref) {
	if t.coord.store != nil {
		_ = t.coord.store.AppendLog("txn-decisions", []byte("abort "+t.id))
	}
	for _, ref := range refs {
		_, _, _ = t.coord.cap.Invoke(ctx, ref, OpAbort, []wire.Value{t.id})
	}
}

// IsAbort reports whether err indicates the transaction was (or must be)
// aborted.
func IsAbort(err error) bool {
	return errors.Is(err, ErrAborted) || errors.Is(err, ErrDeadlock) || errors.Is(err, ErrLockTimeout)
}
