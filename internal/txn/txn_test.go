package txn

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/storage"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

// account is a snapshot-able bank account servant.
type account struct {
	mu      sync.Mutex
	balance int64
}

func (a *account) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "deposit":
		a.balance += args[0].(int64)
		return "ok", []wire.Value{a.balance}, nil
	case "withdraw":
		amt := args[0].(int64)
		if amt > a.balance {
			return "insufficient", []wire.Value{a.balance}, nil
		}
		a.balance -= amt
		return "ok", []wire.Value{a.balance}, nil
	case "balance":
		return "ok", []wire.Value{a.balance}, nil
	default:
		return "", nil, fmt.Errorf("account: no op %q", op)
	}
}

func (a *account) Snapshot() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	buf := make([]byte, 8)
	binary.BigEndian.PutUint64(buf, uint64(a.balance))
	return buf, nil
}

func (a *account) Restore(data []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.balance = int64(binary.BigEndian.Uint64(data))
	return nil
}

func (a *account) now() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.balance
}

var accountSep = Separation{ReadOnly: map[string]bool{"balance": true}}

type txnEnv struct {
	t      *testing.T
	fabric *netsim.Fabric
	server *capsule.Capsule
	client *capsule.Capsule
	lm     *LockManager
	coord  *Coordinator
}

func newTxnEnv(t *testing.T) *txnEnv {
	t.Helper()
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	sep, err := f.Endpoint("server")
	if err != nil {
		t.Fatal(err)
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	server := capsule.New("server", sep, codec)
	client := capsule.New("client", cep, codec)
	t.Cleanup(func() { _ = server.Close(); _ = client.Close() })
	return &txnEnv{
		t:      t,
		fabric: f,
		server: server,
		client: client,
		lm:     NewLockManager(2 * time.Second),
		coord:  NewCoordinator(client, nil),
	}
}

// export wraps a fresh account as a transactional resource on the server.
func (e *txnEnv) export(id string, initial int64, opts ...ResourceOption) (wire.Ref, *account) {
	e.t.Helper()
	acct := &account{balance: initial}
	opts = append([]ResourceOption{WithSeparation(accountSep)}, opts...)
	res, err := NewResource(id, acct, e.lm, opts...)
	if err != nil {
		e.t.Fatal(err)
	}
	ref, err := e.server.Export(res, capsule.WithID(id))
	if err != nil {
		e.t.Fatal(err)
	}
	return ref, acct
}

func TestCommitApplies(t *testing.T) {
	e := newTxnEnv(t)
	ref, acct := e.export("acct1", 100)
	tx := e.coord.Begin()
	ctx := context.Background()
	outcome, res, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(50)})
	if err != nil || outcome != "ok" || res[0].(int64) != 150 {
		t.Fatalf("deposit: %q %v %v", outcome, res, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if acct.now() != 150 {
		t.Fatalf("balance %d, want 150", acct.now())
	}
	if e.lm.HeldBy(tx.ID()) {
		t.Fatal("locks leaked after commit")
	}
}

func TestAbortRollsBack(t *testing.T) {
	e := newTxnEnv(t)
	ref, acct := e.export("acct1", 100)
	tx := e.coord.Begin()
	ctx := context.Background()
	if _, _, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(999)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Invoke(ctx, ref, "withdraw", []wire.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if acct.now() != 100 {
		t.Fatalf("balance %d after abort, want 100", acct.now())
	}
	if e.lm.HeldBy(tx.ID()) {
		t.Fatal("locks leaked after abort")
	}
}

func TestIsolationUncommittedInvisible(t *testing.T) {
	e := newTxnEnv(t)
	ref, _ := e.export("acct1", 100)
	ctx := context.Background()
	tx := e.coord.Begin()
	if _, _, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(50)}); err != nil {
		t.Fatal(err)
	}
	// A plain read must block until the transaction finishes, then see
	// the committed value — never the intermediate one.
	type readResult struct {
		v   int64
		err error
	}
	done := make(chan readResult, 1)
	go func() {
		_, res, err := e.client.Invoke(ctx, ref, "balance", nil)
		if err != nil {
			done <- readResult{err: err}
			return
		}
		done <- readResult{v: res[0].(int64)}
	}()
	select {
	case r := <-done:
		t.Fatalf("plain read returned %v while txn uncommitted", r)
	case <-time.After(100 * time.Millisecond):
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || r.v != 150 {
			t.Fatalf("post-commit read: %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("plain read never completed")
	}
}

func TestSharedReadsConcurrent(t *testing.T) {
	e := newTxnEnv(t)
	ref, _ := e.export("acct1", 100)
	ctx := context.Background()
	tx1 := e.coord.Begin()
	tx2 := e.coord.Begin()
	// Both transactions read; neither blocks the other.
	if _, _, err := tx1.Invoke(ctx, ref, "balance", nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx2.Invoke(ctx, ref, "balance", nil); err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestAtomicTransferAcrossResources(t *testing.T) {
	e := newTxnEnv(t)
	refA, acctA := e.export("acctA", 100)
	refB, acctB := e.export("acctB", 10)
	ctx := context.Background()
	tx := e.coord.Begin()
	if outcome, _, err := tx.Invoke(ctx, refA, "withdraw", []wire.Value{int64(40)}); err != nil || outcome != "ok" {
		t.Fatalf("withdraw: %q %v", outcome, err)
	}
	if outcome, _, err := tx.Invoke(ctx, refB, "deposit", []wire.Value{int64(40)}); err != nil || outcome != "ok" {
		t.Fatalf("deposit: %q %v", outcome, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if acctA.now() != 60 || acctB.now() != 50 {
		t.Fatalf("balances %d/%d, want 60/50", acctA.now(), acctB.now())
	}
}

func TestPrepareVetoAbortsEverywhere(t *testing.T) {
	e := newTxnEnv(t)
	refA, acctA := e.export("acctA", 100)
	// Resource B's ordering predicate forbids deposits after withdrawals
	// (a stand-in for any consistency rule).
	veto := func(ops []string) error {
		for _, op := range ops {
			if op == "deposit" {
				return errors.New("deposits forbidden by policy")
			}
		}
		return nil
	}
	refB, acctB := e.export("acctB", 10, WithOrderPredicate(veto))
	ctx := context.Background()
	tx := e.coord.Begin()
	if _, _, err := tx.Invoke(ctx, refA, "withdraw", []wire.Value{int64(40)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Invoke(ctx, refB, "deposit", []wire.Value{int64(40)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if acctA.now() != 100 || acctB.now() != 10 {
		t.Fatalf("balances %d/%d after veto, want 100/10", acctA.now(), acctB.now())
	}
}

func TestDeadlockDetectedAndBroken(t *testing.T) {
	e := newTxnEnv(t)
	refA, _ := e.export("acctA", 100)
	refB, _ := e.export("acctB", 100)
	ctx := context.Background()

	tx1 := e.coord.Begin()
	tx2 := e.coord.Begin()
	// tx1 locks A, tx2 locks B.
	if _, _, err := tx1.Invoke(ctx, refA, "deposit", []wire.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx2.Invoke(ctx, refB, "deposit", []wire.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	// tx1 wants B (blocks), tx2 wants A (deadlock -> one is victim, and
	// the victim aborts promptly so the survivor proceeds).
	errCh := make(chan error, 2)
	var wg sync.WaitGroup
	run := func(tx *Txn, ref wire.Ref, delay time.Duration) {
		defer wg.Done()
		time.Sleep(delay)
		_, _, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(1)},
			capsule.WithQoS(qosLong()))
		if err != nil {
			_ = tx.Abort(ctx) // victim releases its locks
		} else {
			err = tx.Commit(ctx)
		}
		errCh <- err
	}
	wg.Add(2)
	go run(tx1, refB, 0)
	go run(tx2, refA, 50*time.Millisecond)
	wg.Wait()
	close(errCh)
	var deadlocks, successes int
	for err := range errCh {
		switch {
		case err == nil:
			successes++
		case remoteMentionsDeadlock(err):
			deadlocks++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if deadlocks != 1 || successes != 1 {
		t.Fatalf("deadlocks=%d successes=%d, want 1/1", deadlocks, successes)
	}
	if e.lm.Deadlocks() == 0 {
		t.Fatal("lock manager did not count the deadlock")
	}
}

// remoteMentionsDeadlock matches the deadlock error after it crossed the
// wire as a RemoteError string.
func remoteMentionsDeadlock(err error) bool {
	return err != nil && (errors.Is(err, ErrDeadlock) ||
		containsString(err.Error(), "deadlock"))
}

func containsString(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

func qosLong() rpc.QoS {
	return rpc.QoS{Timeout: 10 * time.Second}
}

func TestDurabilityAcrossRestart(t *testing.T) {
	e := newTxnEnv(t)
	store := storage.NewMemStore()
	ref, _ := e.export("acct1", 100, WithDurability(store))
	ctx := context.Background()
	tx := e.coord.Begin()
	if _, _, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(23)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// "Restart": a fresh servant recovers from the store.
	acct2 := &account{}
	res2, err := NewResource("acct1", acct2, NewLockManager(0),
		WithSeparation(accountSep), WithDurability(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Recover(); err != nil {
		t.Fatal(err)
	}
	if acct2.now() != 123 {
		t.Fatalf("recovered balance %d, want 123", acct2.now())
	}
}

func TestRecoverWithNothingCommitted(t *testing.T) {
	store := storage.NewMemStore()
	acct := &account{balance: 7}
	res, err := NewResource("fresh", acct, NewLockManager(0), WithDurability(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Recover(); err != nil {
		t.Fatal(err)
	}
	if acct.now() != 7 {
		t.Fatal("recover with empty store must not clobber state")
	}
}

func TestCommitWithoutPrepareRefused(t *testing.T) {
	e := newTxnEnv(t)
	ref, _ := e.export("acct1", 0)
	_, _, err := e.client.Invoke(context.Background(), ref, OpCommit, []wire.Value{"rogue-txn"})
	if err == nil {
		t.Fatal("commit without prepare accepted")
	}
}

func TestTxnReuseAfterFinishRejected(t *testing.T) {
	e := newTxnEnv(t)
	ref, _ := e.export("acct1", 0)
	ctx := context.Background()
	tx := e.coord.Begin()
	if _, _, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tx.Invoke(ctx, ref, "deposit", []wire.Value{int64(1)}); !errors.Is(err, ErrDone) {
		t.Fatalf("want ErrDone, got %v", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrDone) {
		t.Fatalf("want ErrDone, got %v", err)
	}
}

func TestNonSnapshotterRejected(t *testing.T) {
	plain := capsule.ServantFunc(func(_ context.Context, _ string, _ []wire.Value) (string, []wire.Value, error) {
		return "ok", nil, nil
	})
	if _, err := NewResource("x", plain, NewLockManager(0)); err == nil {
		t.Fatal("non-snapshotter accepted as transactional resource")
	}
}

func TestConcurrentTransfersConserveMoney(t *testing.T) {
	e := newTxnEnv(t)
	const accounts = 4
	refs := make([]wire.Ref, accounts)
	accts := make([]*account, accounts)
	for i := range refs {
		refs[i], accts[i] = e.export(fmt.Sprintf("acct%d", i), 1000)
	}
	var wg sync.WaitGroup
	const workers, transfers = 4, 10
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				from := (w + i) % accounts
				to := (w + i + 1) % accounts
				tx := e.coord.Begin()
				ctx := context.Background()
				_, _, err := tx.Invoke(ctx, refs[from], "withdraw", []wire.Value{int64(10)},
					capsule.WithQoS(qosLong()))
				if err == nil {
					_, _, err = tx.Invoke(ctx, refs[to], "deposit", []wire.Value{int64(10)},
						capsule.WithQoS(qosLong()))
				}
				if err != nil {
					_ = tx.Abort(ctx)
					continue
				}
				if err := tx.Commit(ctx); err != nil && !errors.Is(err, ErrDone) {
					continue
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, a := range accts {
		total += a.now()
	}
	if total != accounts*1000 {
		t.Fatalf("money not conserved: %d, want %d", total, accounts*1000)
	}
}

func TestLockManagerUnit(t *testing.T) {
	lm := NewLockManager(200 * time.Millisecond)
	ctx := context.Background()
	// Shared locks coexist.
	if err := lm.Acquire(ctx, "t1", "r", false); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(ctx, "t2", "r", false); err != nil {
		t.Fatal(err)
	}
	// Exclusive waits, then times out (fallback detector).
	start := time.Now()
	err := lm.Acquire(ctx, "t3", "r", true)
	if !errors.Is(err, ErrLockTimeout) {
		t.Fatalf("want ErrLockTimeout, got %v", err)
	}
	if time.Since(start) < 150*time.Millisecond {
		t.Fatal("timeout too early")
	}
	// Release unblocks.
	lm.ReleaseAll("t1")
	lm.ReleaseAll("t2")
	if err := lm.Acquire(ctx, "t3", "r", true); err != nil {
		t.Fatal(err)
	}
	// Reentrant acquire.
	if err := lm.Acquire(ctx, "t3", "r", true); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll("t3")
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager(time.Second)
	ctx := context.Background()
	if err := lm.Acquire(ctx, "t1", "r", false); err != nil {
		t.Fatal(err)
	}
	// Sole shared holder upgrades in place.
	if err := lm.Acquire(ctx, "t1", "r", true); err != nil {
		t.Fatal(err)
	}
	// Now exclusive: another shared must wait.
	done := make(chan error, 1)
	go func() { done <- lm.Acquire(ctx, "t2", "r", false) }()
	select {
	case err := <-done:
		t.Fatalf("shared granted against exclusive: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	lm.ReleaseAll("t1")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll("t2")
}

func TestLockContextCancel(t *testing.T) {
	lm := NewLockManager(time.Minute)
	if err := lm.Acquire(context.Background(), "t1", "r", true); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if err := lm.Acquire(ctx, "t2", "r", true); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	lm.ReleaseAll("t1")
}
