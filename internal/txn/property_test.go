package txn

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/wire"
)

// TestPropertyMutualExclusion drives the lock manager with random
// schedules and asserts the fundamental invariant: at no instant do two
// transactions both hold a resource when either holds it exclusively.
func TestPropertyMutualExclusion(t *testing.T) {
	const (
		resources = 3
		workers   = 6
		steps     = 40
	)
	lm := NewLockManager(2 * time.Second)

	var (
		mu       sync.Mutex
		holders  = make([]map[string]bool, resources) // r -> txn -> exclusive?
		violated string
	)
	for i := range holders {
		holders[i] = make(map[string]bool)
	}
	checkInvariant := func(r int) {
		exclusives, total := 0, 0
		for _, excl := range holders[r] {
			total++
			if excl {
				exclusives++
			}
		}
		if exclusives > 0 && total > 1 && violated == "" {
			violated = fmt.Sprintf("resource %d: %d holders with %d exclusive", r, total, exclusives)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for s := 0; s < steps; s++ {
				txnID := fmt.Sprintf("w%d-s%d", w, s)
				r := rng.Intn(resources)
				exclusive := rng.Intn(2) == 0
				err := lm.Acquire(context.Background(), txnID, fmt.Sprintf("r%d", r), exclusive)
				if err != nil {
					lm.ReleaseAll(txnID) // victim: move on
					continue
				}
				mu.Lock()
				holders[r][txnID] = exclusive
				checkInvariant(r)
				mu.Unlock()

				time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)

				mu.Lock()
				delete(holders[r], txnID)
				mu.Unlock()
				lm.ReleaseAll(txnID)
			}
		}(w)
	}
	wg.Wait()
	if violated != "" {
		t.Fatalf("mutual exclusion violated: %s", violated)
	}
}

// TestPropertyMoneyConservationWithRandomAborts runs random concurrent
// transfers where a fraction of transactions abort on purpose; the sum
// over all accounts must be invariant regardless of the interleaving and
// the abort pattern (atomicity, §5.2).
func TestPropertyMoneyConservationWithRandomAborts(t *testing.T) {
	e := newTxnEnv(t)
	const accounts = 3
	ctx := context.Background()
	accts := make([]*account, accounts)
	refs := make([]wire.Ref, accounts)
	for i := 0; i < accounts; i++ {
		refs[i], accts[i] = e.export(fmt.Sprintf("acct%d", i), 1000)
	}

	var wg sync.WaitGroup
	const workers, rounds = 4, 15
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < rounds; i++ {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				amt := int64(1 + rng.Intn(20))
				tx := e.coord.Begin()
				_, _, err := tx.Invoke(ctx, refs[from], "withdraw", []wire.Value{amt},
					capsule.WithQoS(qosLong()))
				if err == nil {
					_, _, err = tx.Invoke(ctx, refs[to], "deposit", []wire.Value{amt},
						capsule.WithQoS(qosLong()))
				}
				switch {
				case err != nil:
					_ = tx.Abort(ctx)
				case rng.Intn(3) == 0:
					// Random voluntary abort: all-or-nothing must hold.
					_ = tx.Abort(ctx)
				default:
					_ = tx.Commit(ctx)
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, a := range accts {
		total += a.now()
	}
	if total != accounts*1000 {
		t.Fatalf("money not conserved: %d != %d", total, accounts*1000)
	}
}

// TestPropertyStrictTwoPhase asserts that locks acquired by a
// transaction are all held until the end and all released afterwards,
// over random operation mixes.
func TestPropertyStrictTwoPhase(t *testing.T) {
	e := newTxnEnv(t)
	const accounts = 4
	refs := make([]wire.Ref, accounts)
	for i := range refs {
		refs[i], _ = e.export(fmt.Sprintf("acct%d", i), 100)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		tx := e.coord.Begin()
		touched := 1 + rng.Intn(accounts)
		for i := 0; i < touched; i++ {
			op := "balance"
			var args []wire.Value
			if rng.Intn(2) == 0 {
				op = "deposit"
				args = []wire.Value{int64(1)}
			}
			if _, _, err := tx.Invoke(ctx, refs[i], op, args, capsule.WithQoS(qosLong())); err != nil {
				t.Fatal(err)
			}
			// Mid-transaction: locks must be held.
			if !e.lm.HeldBy(tx.ID()) {
				t.Fatalf("round %d: no locks held mid-transaction", round)
			}
		}
		if rng.Intn(2) == 0 {
			if err := tx.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := tx.Abort(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if e.lm.HeldBy(tx.ID()) {
			t.Fatalf("round %d: locks leaked after finish", round)
		}
	}
}
