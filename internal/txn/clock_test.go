package txn

import (
	"context"
	"errors"
	"testing"
	"time"

	"odp/internal/clock"
)

// TestLockTimeoutFakeClock drives the lock manager's cross-manager
// deadlock fallback with a manual clock: a conflicting acquire times out
// exactly when logical time crosses maxWait.
func TestLockTimeoutFakeClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	lm := NewLockManager(5*time.Second, WithLockClock(fake))
	if err := lm.Acquire(context.Background(), "A", "res", true); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- lm.Acquire(context.Background(), "B", "res", true)
	}()
	for i := 0; i < 500; i++ {
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrLockTimeout) {
				t.Fatalf("err = %v, want ErrLockTimeout", err)
			}
			return
		default:
			fake.Advance(time.Second)
			time.Sleep(2 * time.Millisecond)
		}
	}
	t.Fatal("conflicting acquire never timed out under fake clock")
}
