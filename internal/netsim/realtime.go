// Real-time delivery scheduling — the only file in this package (and,
// with internal/clock and the harnesses, in the whole platform) that may
// touch the wall clock. The detclock static-analysis pass exempts exactly
// this file; everything else in netsim schedules through the injected
// clock.Clock.
//
// The direct time.AfterFunc (rather than clock.Real{}.AfterFunc) keeps
// the per-packet hot path free of the adapter allocation: the fabric is
// the platform's time source on the benchmark path, where every
// delivery pays this call.
package netsim

import "time"

// scheduleReal schedules a delivery after delay on the wall clock.
func scheduleReal(delay time.Duration, deliver func()) {
	time.AfterFunc(delay, deliver)
}
