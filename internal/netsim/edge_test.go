package netsim

import (
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/transport"
)

// TestPartitionMidFlightCountsCut pins the delivery-time partition
// recheck: a packet already in flight when the partition opens is counted
// Cut, never Delivered. The virtual clock makes the interleaving exact —
// the cut happens strictly between send and the delivery instant.
func TestPartitionMidFlightCountsCut(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	f := NewFabric(WithClock(fake), WithDefaultLink(LinkProfile{Latency: time.Millisecond}))
	defer f.Close()
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var delivered atomic.Int64
	b.SetHandler(func(string, []byte) { delivered.Add(1) })

	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := f.Stats(); got.Sent != 1 || got.Cut != 0 {
		t.Fatalf("after send: %+v", got)
	}
	f.Partition("a", "b", true)
	fake.Advance(2 * time.Millisecond)
	waitInFlightZero(t, f)
	got := f.Stats()
	if got.Cut != 1 || got.Delivered != 0 {
		t.Fatalf("mid-flight partition: %+v, want Cut=1 Delivered=0", got)
	}
	if delivered.Load() != 0 {
		t.Fatal("handler ran across a mid-flight partition")
	}
}

// TestCloseWaitsForInFlight pins the Close contract on the real-time
// path: Close blocks until a delivery whose handler is still running has
// returned.
func TestCloseWaitsForInFlight(t *testing.T) {
	f := NewFabric()
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Bool
	b.SetHandler(func(string, []byte) {
		close(entered)
		<-release
		done.Store(true)
	})
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	<-entered
	closed := make(chan struct{})
	go func() {
		_ = f.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while a delivery handler was running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the handler finished")
	}
	if !done.Load() {
		t.Fatal("Close returned before the handler completed")
	}
}

// TestCloseCancelsVirtualPending: with deliveries parked on a fake clock
// nobody will advance again, Close must not deadlock — scheduled but
// unfired packets are cancelled.
func TestCloseCancelsVirtualPending(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	f := NewFabric(WithClock(fake), WithDefaultLink(LinkProfile{Latency: time.Second}))
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("b"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.InFlight(); got != 5 {
		t.Fatalf("InFlight = %d, want 5", got)
	}
	closed := make(chan struct{})
	go func() {
		_ = f.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on undelivered virtual packets")
	}
	if got := f.InFlight(); got != 0 {
		t.Fatalf("InFlight after Close = %d, want 0", got)
	}
	if got := f.Stats(); got.Delivered != 0 {
		t.Fatalf("cancelled packets were delivered: %+v", got)
	}
}

// TestOversizeRejectedBeforeStats: a packet beyond transport.MaxPacket is
// the sender's error, observed before any counter moves.
func TestOversizeRejectedBeforeStats(t *testing.T) {
	for _, virtual := range []bool{false, true} {
		opts := []Option{}
		if virtual {
			opts = append(opts, WithClock(clock.NewFake(time.Unix(0, 0))))
		}
		f := NewFabric(opts...)
		a, err := f.Endpoint("a")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Endpoint("b"); err != nil {
			t.Fatal(err)
		}
		big := make([]byte, transport.MaxPacket+1)
		if err := a.Send("b", big); err != transport.ErrTooLarge {
			t.Fatalf("virtual=%v: err = %v, want ErrTooLarge", virtual, err)
		}
		if got := f.Stats(); got != (Stats{}) {
			t.Fatalf("virtual=%v: stats changed on rejected packet: %+v", virtual, got)
		}
		_ = f.Close()
	}
}

// TestVirtualDeliveryWaitsForAdvance: with an injected fake clock no
// packet moves until the clock does, and delivery lands exactly at the
// link latency.
func TestVirtualDeliveryWaitsForAdvance(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	trace := make(chan string, 16)
	f := NewFabric(
		WithClock(fake),
		WithDefaultLink(LinkProfile{Latency: 3 * time.Millisecond}),
		WithTrace(func(at time.Time, ev string) {
			select {
			case trace <- at.String() + " " + ev:
			default:
			}
		}),
	)
	defer f.Close()
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []byte, 1)
	b.SetHandler(func(_ string, pkt []byte) {
		got <- append([]byte(nil), pkt...)
	})
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("delivered without advancing the clock")
	case <-time.After(10 * time.Millisecond):
	}
	fake.Advance(2 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("delivered before the latency elapsed")
	case <-time.After(10 * time.Millisecond):
	}
	fake.Advance(time.Millisecond)
	select {
	case pkt := <-got:
		if string(pkt) != "hello" {
			t.Fatalf("payload %q", pkt)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("never delivered after advancing past the latency")
	}
	waitInFlightZero(t, f)
	if f.Stats().Delivered != 1 {
		t.Fatalf("stats: %+v", f.Stats())
	}
}

// TestIsolateIdempotent pins the Isolate/Heal contract: isolation is a
// single per-address flag, so repeated Isolates need exactly one Heal —
// the old per-pair expansion made the pair state and the isolation state
// indistinguishable, and stacked cuts that a single heal then missed.
func TestIsolateIdempotent(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 4)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })

	f.Isolate("b", true)
	f.Isolate("b", true) // idempotent: still one flag
	f.Isolate("b", false)
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("one Heal should undo any number of Isolates")
	}
}

// TestIsolateCoversLateEndpoints: isolation applies to endpoints that
// register after the Isolate call. The old expansion snapshotted the
// endpoint set at call time, so a node that joined later could talk to a
// "crashed" address.
func TestIsolateCoversLateEndpoints(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	_, _ = f.Endpoint("a")
	f.Isolate("a", true)

	late, _ := f.Endpoint("late") // joins after the isolation
	got := make(chan struct{}, 1)
	a, _ := f.Endpoint("a")
	a.SetHandler(func(string, []byte) { got <- struct{}{} })
	if err := late.Send("a", []byte("x")); err != nil {
		t.Fatal(err) // silent cut, not an error
	}
	select {
	case <-got:
		t.Fatal("late-registered endpoint reached an isolated address")
	case <-time.After(20 * time.Millisecond):
	}
	if f.Stats().Cut != 1 {
		t.Fatalf("Cut = %d, want 1", f.Stats().Cut)
	}
}

// TestIsolateUnknownAddressCreatesNoPairState: isolating (or healing) an
// address nobody has claimed must not manufacture per-pair partition
// entries — a later Partition heal of some unrelated pair has nothing to
// collide with, and healing the unknown address is a clean no-op.
func TestIsolateUnknownAddressCreatesNoPairState(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 4)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })

	f.Isolate("ghost", false) // heal of a never-isolated address: no-op
	f.Isolate("ghost", true)  // isolation of an unclaimed address
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("isolating an unknown address disturbed unrelated traffic")
	}
	if cut := f.Stats().Cut; cut != 0 {
		t.Fatalf("Cut = %d, want 0", cut)
	}
}

// TestIsolateLeavesPartitionStateIntact: Isolate/Heal and Partition are
// independent fault axes — healing an isolation must not heal a pairwise
// partition opened separately, which the per-pair expansion used to do.
func TestIsolateLeavesPartitionStateIntact(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 4)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })

	f.Partition("a", "b", true)
	f.Isolate("a", true)
	f.Isolate("a", false) // heals the isolation only
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		t.Fatal("healing an isolation also healed an independent partition")
	case <-time.After(20 * time.Millisecond):
	}
	f.Partition("a", "b", false)
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("pair not reachable after its own heal")
	}
}

// TestIsolationCutsMidFlight: like a partition, an isolation that opens
// while a packet is in flight counts the packet Cut at delivery time.
func TestIsolationCutsMidFlight(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	f := NewFabric(WithClock(fake), WithDefaultLink(LinkProfile{Latency: time.Millisecond}))
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	var delivered atomic.Int64
	b.SetHandler(func(string, []byte) { delivered.Add(1) })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.Isolate("b", true)
	fake.Advance(2 * time.Millisecond)
	waitInFlightZero(t, f)
	if got := f.Stats(); got.Cut != 1 || got.Delivered != 0 {
		t.Fatalf("mid-flight isolation: %+v, want Cut=1 Delivered=0", got)
	}
	if delivered.Load() != 0 {
		t.Fatal("handler ran across a mid-flight isolation")
	}
}

// waitInFlightZero spins until the fabric has no in-flight deliveries.
func waitInFlightZero(t *testing.T, f *Fabric) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for f.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never drained: %d", f.InFlight())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
