// Package netsim is a deterministic simulated network fabric.
//
// It substitutes for the physical networks of the paper's deployment
// environment (the ANSA Testbench ran REX over UDP on 1980s LANs/WANs).
// Each pair of endpoints communicates over a link with configurable
// one-way latency, jitter, loss probability and partition state, so the
// behaviours the paper's transparency claims depend on — variable latency
// (§4.1), transient communication problems (§4.1), persistent failures
// (§3) — can be injected on demand and measured reproducibly.
//
// Delivery scheduling is pluggable. By default delayed packets ride real
// timers (realtime.go, the package's only wall-clock file). Constructed
// with WithClock(*clock.Fake), every in-flight packet becomes an event in
// the fake clock's virtual-time queue — shared with all the platform's
// timers and tickers — and the whole fabric runs in logical time under
// the internal/sim harness.
package netsim

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
	"odp/internal/transport"
)

// LinkProfile describes one direction of a link.
type LinkProfile struct {
	// Latency is the fixed one-way delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a packet is silently dropped.
	Loss float64
	// PerPacket is a fixed processing cost charged per datagram,
	// independent of size — the framing/syscall/wakeup overhead a real
	// stack pays for every packet. A coalesced BATCH frame (see
	// transport.Coalescer) is one datagram and so pays it once however
	// many sub-frames it carries, which is the amortisation the E16
	// experiment measures.
	PerPacket time.Duration
}

// Profiles for common environments, used throughout the benchmarks.
var (
	// Loopback is instantaneous and lossless.
	Loopback = LinkProfile{}
	// LAN approximates a local segment.
	LAN = LinkProfile{Latency: 200 * time.Microsecond, Jitter: 50 * time.Microsecond}
	// WAN approximates a wide-area path.
	WAN = LinkProfile{Latency: 5 * time.Millisecond, Jitter: 1 * time.Millisecond}
	// LossyLAN approximates a congested segment.
	LossyLAN = LinkProfile{Latency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond, Loss: 0.05}
)

// pktPool recycles in-flight packet copies: the fabric copies every
// packet on send (datagram semantics) and reclaims the copy after the
// receiving handler returns.
var pktPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 512)
		return &b
	},
}

// maxPooledPkt bounds retained packet-copy capacity.
const maxPooledPkt = 64 << 10

// TraceFunc observes fabric events for the deterministic-replay trace:
// at is the fabric clock's instant, event a short "kind from>to" line.
// Only meaningful together with WithClock (real-time runs pass a zero
// instant). Implementations must be safe for concurrent use.
type TraceFunc func(at time.Time, event string)

// pendEntry is one delayed delivery scheduled on a virtual clock.
type pendEntry struct {
	timer  clock.Timer
	cancel func()
}

// Fabric is a set of interconnected simulated endpoints.
type Fabric struct {
	mu          sync.Mutex
	rng         *rand.Rand
	endpoints   map[string]*endpoint
	links       map[string]LinkProfile // "from|to" overrides
	defaultLink LinkProfile
	partitioned map[string]bool // "a|b" unordered-pair key
	isolated    map[string]bool // addresses cut off by Isolate
	closed      bool
	wg          sync.WaitGroup

	// Sparse topology state (see topology.go): named subnets, address
	// membership, directed gateway profiles and subnet-level faults.
	subnets            map[string]*subnet
	memberOf           map[string]string      // addr -> subnet name
	gateways           map[string]LinkProfile // "a|b" directed subnet pair
	partitionedSubnets map[string]bool        // unordered subnet-pair key
	isolatedSubnets    map[string]bool

	// clk is non-nil when deliveries are scheduled in virtual time.
	clk   clock.Clock
	trace TraceFunc

	// inflight mirrors wg's counter observably: packets scheduled or being
	// delivered.
	inflight atomic.Int64
	// executing counts deliveries actively running (goroutine spawned or
	// callback firing), excluding packets parked on a virtual clock. The
	// sim harness polls it for quiescence: a parked packet is a future
	// event, not pending work.
	executing atomic.Int64

	// pending tracks virtual-time deliveries not yet fired, so Close can
	// cancel them instead of waiting for an Advance that will never come.
	pendMu  sync.Mutex
	pending map[uint64]pendEntry
	pendSeq uint64

	// Zero-delay delivery worker pool. jobq is unbuffered: a hand-off
	// succeeds only when a worker is parked in receive, so a delivery can
	// never sit queued behind busy workers (submit spawns instead) — and
	// the steady state reuses a handful of warm goroutine stacks rather
	// than growing a fresh 2 KiB stack through the whole dispatch chain
	// for every packet (see EXPERIMENTS.md on runtime.newstack).
	jobq     chan *delivery
	workStop chan struct{}
	workerWg sync.WaitGroup

	statsMu sync.Mutex
	stats   Stats
}

// Stats counts fabric-level events, for loss/duplication experiments.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64 // lost to the loss probability
	Cut       uint64 // dropped because of a partition
}

// Option configures a fabric.
type Option func(*Fabric)

// WithSeed fixes the RNG seed for deterministic loss/jitter sequences.
func WithSeed(seed int64) Option {
	return func(f *Fabric) { f.rng = rand.New(rand.NewSource(seed)) }
}

// WithDefaultLink sets the profile used by links with no override.
func WithDefaultLink(p LinkProfile) Option {
	return func(f *Fabric) { f.defaultLink = p }
}

// WithClock schedules deliveries on clk instead of real timers. With a
// *clock.Fake this turns every in-flight packet into a virtual-time event
// on the same queue as the platform's timers: time stands still until the
// clock is advanced, and a whole latency/partition scenario executes in
// microseconds of wall time (see internal/sim).
func WithClock(clk clock.Clock) Option {
	return func(f *Fabric) { f.clk = clk }
}

// WithTrace installs an event observer; see TraceFunc.
func WithTrace(fn TraceFunc) Option {
	return func(f *Fabric) { f.trace = fn }
}

// deliveryWorkers is the size of the resident zero-delay worker pool.
// Bursts beyond it spill to fresh goroutines, so the count bounds only
// how many warm stacks are kept, not concurrency.
const deliveryWorkers = 4

// NewFabric creates an empty fabric. The default link is Loopback.
func NewFabric(opts ...Option) *Fabric {
	f := &Fabric{
		rng:         rand.New(rand.NewSource(1)),
		endpoints:   make(map[string]*endpoint),
		links:       make(map[string]LinkProfile),
		defaultLink: Loopback,
		partitioned: make(map[string]bool),
		isolated:    make(map[string]bool),

		subnets:            make(map[string]*subnet),
		memberOf:           make(map[string]string),
		gateways:           make(map[string]LinkProfile),
		partitionedSubnets: make(map[string]bool),
		isolatedSubnets:    make(map[string]bool),

		pending: make(map[uint64]pendEntry),
		jobq:        make(chan *delivery),
		workStop:    make(chan struct{}),
	}
	for _, o := range opts {
		o(f)
	}
	f.workerWg.Add(deliveryWorkers)
	for i := 0; i < deliveryWorkers; i++ {
		go f.worker()
	}
	return f
}

func (f *Fabric) worker() {
	defer f.workerWg.Done()
	for {
		select {
		case d := <-f.jobq:
			d.run()
		case <-f.workStop:
			return
		}
	}
}

// submit runs d on a pooled worker when one is parked in receive and
// otherwise spawns a goroutine — never queues. A delivery therefore
// cannot deadlock behind workers blocked in handlers (a handler may
// block on a nested invocation whose reply needs a delivery of its
// own), while serial traffic keeps hitting the same warm stack.
func (f *Fabric) submit(d *delivery) {
	select {
	case f.jobq <- d:
	default:
		go d.run()
	}
}

// Endpoint creates (or returns the existing) endpoint with the given
// address.
func (f *Fabric) Endpoint(addr string) (transport.Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, transport.ErrClosed
	}
	if ep, ok := f.endpoints[addr]; ok {
		return ep, nil
	}
	ep := &endpoint{fabric: f, addr: addr}
	f.endpoints[addr] = ep
	return ep, nil
}

// SetLink overrides the profile for the directed link from → to.
func (f *Fabric) SetLink(from, to string, p LinkProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.links[from+"|"+to] = p
}

// Partition cuts (or heals, when cut is false) bidirectional connectivity
// between a and b. Partitioned packets are counted in Stats.Cut.
func (f *Fabric) Partition(a, b string, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := pairKey(a, b)
	if cut {
		f.partitioned[key] = true
	} else {
		delete(f.partitioned, key)
	}
}

// Isolate cuts (or heals) every link touching addr, simulating a crashed
// or unplugged node as seen by the network.
//
// Isolation is a single per-address flag, not an expansion over the
// endpoints registered at call time: it is idempotent (two Isolates need
// one Heal), covers endpoints that register later, leaves pairwise
// Partition state untouched, and isolating an address nobody has claimed
// records one flag instead of silently manufacturing per-pair override
// entries. Healing an address that was never isolated is a no-op.
func (f *Fabric) Isolate(addr string, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cut {
		f.isolated[addr] = true
	} else {
		delete(f.isolated, addr)
	}
}

// Stats returns a snapshot of fabric counters.
func (f *Fabric) Stats() Stats {
	f.statsMu.Lock()
	defer f.statsMu.Unlock()
	return f.stats
}

// Executing reports deliveries actively running — spawned or firing, as
// opposed to parked on a virtual clock awaiting an Advance.
func (f *Fabric) Executing() int { return int(f.executing.Load()) }

// InFlight reports packets scheduled for delivery or currently being
// handled. The sim harness polls it as part of quiescence detection.
func (f *Fabric) InFlight() int { return int(f.inflight.Load()) }

// Close shuts the fabric down and waits for in-flight deliveries to
// settle. Deliveries scheduled on a virtual clock that has not reached
// their instant are cancelled — nobody will advance the clock for them —
// while already-running ones are waited for, preserving the real-time
// contract that Close does not return mid-delivery.
func (f *Fabric) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	f.pendMu.Lock()
	pend := f.pending
	f.pending = make(map[uint64]pendEntry)
	f.pendMu.Unlock()
	for _, p := range pend {
		if p.timer.Stop() {
			p.cancel()
		}
	}
	f.wg.Wait()
	// Every delivery registered with wg before submission, so wg.Wait
	// returning means the worker pool is drained and safe to stop.
	close(f.workStop)
	f.workerWg.Wait()
	return nil
}

// now reads the fabric clock for trace stamps; real-time runs (no
// injected clock) stamp zero, keeping this file off the wall clock.
func (f *Fabric) now() time.Time {
	if f.clk != nil {
		return f.clk.Now()
	}
	return time.Time{}
}

// tracef records one event. Callers on the send/deliver hot path must
// guard with `if f.trace != nil` at the call site — the variadic slice
// and interface boxing are built by the caller, so an unguarded call
// costs several allocations even when tracing is off.
func (f *Fabric) tracef(format string, args ...interface{}) {
	if f.trace == nil {
		return
	}
	f.trace(f.now(), fmt.Sprintf(format, args...))
}

// route performs admission for one packet of n bytes from → to: closed
// and reachability checks, partition and loss decisions, delay
// computation and the Sent-side stats. ok is false when the packet was
// consumed without delivery (cut or dropped — err nil, the sender
// cannot tell) or rejected (err non-nil). Called with no locks held.
func (f *Fabric) route(from, to string, n int) (dst *endpoint, delay time.Duration, ok bool, err error) {
	if n > transport.MaxPacket {
		// Rejected before any stats change: a packet the fabric would
		// never carry is the sender's error, not traffic.
		return nil, 0, false, transport.ErrTooLarge
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, 0, false, transport.ErrClosed
	}
	dst, found := f.endpoints[to]
	if !found {
		f.mu.Unlock()
		return nil, 0, false, fmt.Errorf("%w: %q", transport.ErrUnreachable, to)
	}
	if f.cutLocked(from, to) {
		f.mu.Unlock()
		f.count(func(s *Stats) { s.Sent++; s.Cut++ })
		if f.trace != nil {
			f.tracef("cut %s>%s %dB", from, to, n)
		}
		return nil, 0, false, nil // silently dropped: the sender cannot tell
	}
	profile, perr := f.profileLocked(from, to)
	if perr != nil {
		// Subnets with no gateway link between them: there is no channel,
		// which the sender can tell (unlike a partition, which silently
		// swallows traffic on an existing route).
		f.mu.Unlock()
		return nil, 0, false, perr
	}
	drop := profile.Loss > 0 && f.rng.Float64() < profile.Loss
	if !drop {
		delay = profile.Latency + profile.PerPacket
		if profile.Jitter > 0 {
			delay += time.Duration(f.rng.Int63n(int64(profile.Jitter)))
		}
	}
	f.mu.Unlock()

	if drop {
		f.count(func(s *Stats) { s.Sent++; s.Dropped++ })
		if f.trace != nil {
			f.tracef("drop %s>%s %dB", from, to, n)
		}
		return nil, 0, false, nil
	}
	f.count(func(s *Stats) { s.Sent++ })
	if f.trace != nil {
		f.tracef("send %s>%s %dB", from, to, n)
	}
	return dst, delay, true, nil
}

// delivery is one scheduled packet delivery. The zero-delay path pools
// these and hands them to the worker pool as data rather than closures,
// keeping the per-packet capture allocation off the hot path; the
// delayed paths wrap run in a closure, which only sim and latency
// scenarios pay for.
type delivery struct {
	f        *Fabric
	from, to string
	dst      *endpoint
	cpp      *[]byte
	cp       []byte
}

var deliveryPool = sync.Pool{New: func() interface{} { return new(delivery) }}

// run performs the delivery, releases the packet copy and recycles the
// descriptor. The delivery must not be touched after run returns.
func (d *delivery) run() {
	f, from, to, dst, cpp, cp := d.f, d.from, d.to, d.dst, d.cpp, d.cp
	*d = delivery{}
	deliveryPool.Put(d)
	defer f.release(cpp, cp)
	defer f.executing.Add(-1)
	f.mu.Lock()
	cut := f.cutLocked(from, to)
	f.mu.Unlock()
	if cut {
		// The partition appeared while the packet was in flight.
		f.count(func(s *Stats) { s.Cut++ })
		if f.trace != nil {
			f.tracef("cut-inflight %s>%s %dB", from, to, len(cp))
		}
		return
	}
	dst.deliver(from, cp)
	f.count(func(s *Stats) { s.Delivered++ })
	if f.trace != nil {
		f.tracef("deliver %s>%s %dB", from, to, len(cp))
	}
}

// dispatch schedules the delivery of cp (a pooled copy owned by the
// fabric from here on) to dst after delay.
func (f *Fabric) dispatch(from, to string, dst *endpoint, delay time.Duration, cpp *[]byte, cp []byte) {
	f.wg.Add(1)
	f.inflight.Add(1)
	d := deliveryPool.Get().(*delivery)
	*d = delivery{f: f, from: from, to: to, dst: dst, cpp: cpp, cp: cp}
	// executing is incremented before control leaves this goroutine (or,
	// on the virtual path, inside the clock callback, which the clock's
	// own firing counter already covers), so a quiescence poller never
	// observes a gap between "scheduled" and "running".
	switch {
	case delay <= 0:
		f.executing.Add(1)
		f.submit(d)
	case f.clk != nil:
		// The two closures allocate, but only virtual-time (sim) runs
		// take this branch.
		f.scheduleVirtual(delay, d.run, func() { f.release(cpp, cp) })
	default:
		f.executing.Add(1)
		scheduleReal(delay, d.run)
	}
}

// send routes one packet. Called with no locks held.
func (f *Fabric) send(from, to string, pkt []byte) error {
	dst, delay, ok, err := f.route(from, to, len(pkt))
	if !ok {
		return err
	}
	// Copy into a pooled buffer: the sender may reuse its buffer the
	// moment Send returns, and the Handler contract forbids receivers
	// retaining pkt, so the copy can be recycled after delivery.
	cpp := pktPool.Get().(*[]byte)
	cp := append((*cpp)[:0], pkt...)
	f.dispatch(from, to, dst, delay, cpp, cp)
	return nil
}

// sendVec routes one packet supplied as segments, gathering them
// directly into the single pooled in-flight copy the fabric makes
// anyway — the datagram is never materialised twice.
func (f *Fabric) sendVec(from, to string, segs net.Buffers) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	dst, delay, ok, err := f.route(from, to, total)
	if !ok {
		return err
	}
	cpp := pktPool.Get().(*[]byte)
	cp := (*cpp)[:0]
	for _, s := range segs {
		cp = append(cp, s...)
	}
	f.dispatch(from, to, dst, delay, cpp, cp)
	return nil
}

// release recycles a delivered (or cancelled) packet copy and retires it
// from the in-flight accounting.
func (f *Fabric) release(cpp *[]byte, cp []byte) {
	if cap(cp) <= maxPooledPkt {
		*cpp = cp[:0]
		pktPool.Put(cpp)
	}
	f.inflight.Add(-1)
	f.wg.Done()
}

// scheduleVirtual parks a delivery on the virtual clock, registering it
// so Close can cancel deliveries whose instant will never arrive.
func (f *Fabric) scheduleVirtual(delay time.Duration, deliver, cancel func()) {
	f.pendMu.Lock()
	id := f.pendSeq
	f.pendSeq++
	tm := f.clk.AfterFunc(delay, func() {
		f.pendMu.Lock()
		delete(f.pending, id)
		f.pendMu.Unlock()
		f.executing.Add(1)
		deliver()
	})
	f.pending[id] = pendEntry{timer: tm, cancel: cancel}
	f.pendMu.Unlock()
}

func (f *Fabric) count(update func(*Stats)) {
	f.statsMu.Lock()
	update(&f.stats)
	f.statsMu.Unlock()
}

func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// endpoint is a simulated transport.Endpoint.
type endpoint struct {
	fabric *Fabric
	addr   string

	mu      sync.Mutex
	handler transport.Handler
	closed  bool
}

var (
	_ transport.Endpoint            = (*endpoint)(nil)
	_ transport.VecSender           = (*endpoint)(nil)
	_ transport.ConcurrentDeliverer = (*endpoint)(nil)
)

// Addr implements transport.Endpoint.
func (e *endpoint) Addr() string { return e.addr }

// Send implements transport.Endpoint.
func (e *endpoint) Send(to string, pkt []byte) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	return e.fabric.send(e.addr, to, pkt)
}

// SendVec implements transport.VecSender; see Fabric.sendVec.
func (e *endpoint) SendVec(to string, segs net.Buffers) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return transport.ErrClosed
	}
	return e.fabric.sendVec(e.addr, to, segs)
}

// DeliversConcurrently implements transport.ConcurrentDeliverer: every
// delivery runs on its own worker or goroutine, so handlers may block
// on nested invocations without stalling other deliveries.
//
// It reports false under an injected clock: inline dispatch would run
// the handler inside the delivery job, holding Executing() nonzero
// while the handler parks on a virtual timer — and the sim harness
// only advances the clock once Executing() reaches zero, so the two
// would deadlock. Virtual-time deliveries therefore stay asynchronous.
func (e *endpoint) DeliversConcurrently() bool { return e.fabric.clk == nil }

// SetHandler implements transport.Endpoint.
func (e *endpoint) SetHandler(h transport.Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Close implements transport.Endpoint. The endpoint stays registered (its
// name remains claimed) but drops all traffic, like a crashed process.
func (e *endpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	return nil
}

func (e *endpoint) deliver(from string, pkt []byte) {
	e.mu.Lock()
	h := e.handler
	closed := e.closed
	e.mu.Unlock()
	if closed || h == nil {
		return
	}
	h(from, pkt)
}
