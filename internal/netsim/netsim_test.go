package netsim

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/transport"
)

func TestDeliverBasic(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, err := f.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	b.SetHandler(func(from string, pkt []byte) {
		got <- from + ":" + string(pkt)
	})
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "a:hello" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestSenderBufferReuse(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan []byte, 1)
	b.SetHandler(func(_ string, pkt []byte) { got <- pkt })
	buf := []byte("original")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "mutated!")
	pkt := <-got
	if string(pkt) != "original" {
		t.Fatalf("delivery saw sender mutation: %q", pkt)
	}
}

func TestUnknownDestination(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	if err := a.Send("nowhere", []byte("x")); err == nil {
		t.Fatal("expected unreachable error")
	}
}

func TestLatencyApplied(t *testing.T) {
	f := NewFabric(WithDefaultLink(LinkProfile{Latency: 30 * time.Millisecond}))
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan time.Time, 1)
	b.SetHandler(func(string, []byte) { got <- time.Now() })
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	at := <-got
	if d := at.Sub(start); d < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", d)
	}
}

// TestPerPacketOverheadApplied: the per-datagram cost is charged once
// per Send, so a BATCH frame carrying many sub-frames pays it once —
// the amortisation model the batching experiments rely on.
func TestPerPacketOverheadApplied(t *testing.T) {
	f := NewFabric(WithDefaultLink(LinkProfile{PerPacket: 30 * time.Millisecond}))
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan time.Time, 1)
	b.SetHandler(func(string, []byte) { got <- time.Now() })
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	at := <-got
	if d := at.Sub(start); d < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms of per-packet cost", d)
	}
}

func TestLossStatistics(t *testing.T) {
	f := NewFabric(WithSeed(42), WithDefaultLink(LinkProfile{Loss: 0.5}))
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	var delivered atomic.Int64
	b.SetHandler(func(string, []byte) { delivered.Add(1) })
	const n = 2000
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil { // waits for in-flight deliveries
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Sent != n {
		t.Fatalf("sent %d, want %d", st.Sent, n)
	}
	frac := float64(st.Dropped) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("loss fraction %.2f far from 0.5", frac)
	}
	if got := delivered.Load(); got != int64(st.Delivered) {
		t.Fatalf("handler saw %d, stats say %d", got, st.Delivered)
	}
	if st.Dropped+st.Delivered != n {
		t.Fatalf("dropped %d + delivered %d != sent %d", st.Dropped, st.Delivered, n)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 10)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })

	f.Partition("a", "b", true)
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err) // partition is silent, like a real network
	}
	select {
	case <-got:
		t.Fatal("delivered across partition")
	case <-time.After(30 * time.Millisecond):
	}
	f.Partition("a", "b", false)
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("not delivered after heal")
	}
	if f.Stats().Cut != 1 {
		t.Fatalf("cut count = %d, want 1", f.Stats().Cut)
	}
}

func TestIsolate(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	c, _ := f.Endpoint("c")
	gotB := make(chan struct{}, 4)
	gotC := make(chan struct{}, 4)
	b.SetHandler(func(string, []byte) { gotB <- struct{}{} })
	c.SetHandler(func(string, []byte) { gotC <- struct{}{} })

	f.Isolate("b", true)
	_ = a.Send("b", []byte("x"))
	_ = a.Send("c", []byte("x"))
	select {
	case <-gotC:
	case <-time.After(time.Second):
		t.Fatal("c should still be reachable")
	}
	select {
	case <-gotB:
		t.Fatal("b should be isolated")
	case <-time.After(20 * time.Millisecond):
	}
	f.Isolate("b", false)
	_ = a.Send("b", []byte("x"))
	select {
	case <-gotB:
	case <-time.After(time.Second):
		t.Fatal("b not reachable after heal")
	}
}

func TestClosedEndpointDropsAndRefuses(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	var n atomic.Int64
	b.SetHandler(func(string, []byte) { n.Add(1) })
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	_ = a.Send("b", []byte("x")) // dropped silently at receiver
	time.Sleep(20 * time.Millisecond)
	if n.Load() != 0 {
		t.Fatal("closed endpoint received a packet")
	}
	if err := b.Send("a", []byte("x")); err != transport.ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestFabricCloseRejectsSends(t *testing.T) {
	f := NewFabric()
	a, _ := f.Endpoint("a")
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("a", []byte("x")); err != transport.ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := f.Endpoint("z"); err != transport.ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestOversizePacket(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a, _ := f.Endpoint("a")
	_, _ = f.Endpoint("b")
	big := make([]byte, transport.MaxPacket+1)
	if err := a.Send("b", big); err != transport.ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestConcurrentSendersRace(t *testing.T) {
	f := NewFabric(WithDefaultLink(LinkProfile{Jitter: 100 * time.Microsecond}))
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	var n atomic.Int64
	b.SetHandler(func(string, []byte) { n.Add(1) })
	var wg sync.WaitGroup
	const senders, per = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = a.Send("b", []byte("m"))
			}
		}()
	}
	wg.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != senders*per {
		t.Fatalf("delivered %d, want %d", n.Load(), senders*per)
	}
}

func TestEndpointIdempotent(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	a1, _ := f.Endpoint("a")
	a2, _ := f.Endpoint("a")
	if a1 != a2 {
		t.Fatal("same address should return the same endpoint")
	}
}

func TestDeterministicLossSequence(t *testing.T) {
	run := func() Stats {
		f := NewFabric(WithSeed(7), WithDefaultLink(LinkProfile{Loss: 0.3}))
		a, _ := f.Endpoint("a")
		_, _ = f.Endpoint("b")
		for i := 0; i < 500; i++ {
			_ = a.Send("b", []byte("x"))
		}
		_ = f.Close()
		return f.Stats()
	}
	s1, s2 := run(), run()
	if s1.Dropped != s2.Dropped {
		t.Fatalf("same seed produced different loss: %d vs %d", s1.Dropped, s2.Dropped)
	}
}
