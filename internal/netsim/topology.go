package netsim

import (
	"fmt"

	"odp/internal/transport"
)

// Sparse named topologies (the paper's §6 federation domains).
//
// A flat fabric holds per-pair link state, which is O(n²) in endpoints and
// caps simulations at a few dozen nodes. A topology instead names subnets
// — administrative domains with one intra-subnet profile and membership by
// address — and joins them with explicit gateway links, the only
// inter-domain edges. Route resolution composes subnet-egress → gateway →
// subnet-ingress on the fly from O(domains + gateways) state, so a
// thousand-capsule federation costs a thousand membership entries, not a
// million pair entries.
//
// Resolution precedence for a packet from → to:
//
//  1. a SetLink override for the directed pair (unchanged semantics);
//  2. both in the same subnet: the subnet's intra profile;
//  3. in different subnets: the composed egress+gateway+ingress profile,
//     or ErrUnreachable when no gateway link joins the two subnets;
//  4. either side unplaced: the fabric default (flat-fabric behaviour).
//
// Partition/Isolate keep their per-address meaning and gain subnet-level
// analogues (PartitionSubnets, IsolateSubnet) so a fault plan can cut a
// whole domain off the federation in one step.

// subnet is one named domain: an intra-subnet profile shared by every
// member pair.
type subnet struct {
	name  string
	intra LinkProfile
}

// AddSubnet declares (or re-profiles) the named subnet. Membership is by
// address, via JoinSubnet.
func (f *Fabric) AddSubnet(name string, intra LinkProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if sn, ok := f.subnets[name]; ok {
		sn.intra = intra
		return
	}
	f.subnets[name] = &subnet{name: name, intra: intra}
}

// JoinSubnet places addr in the named subnet (declared with AddSubnet —
// unknown subnets panic, catching miswired scenarios at build time). An
// address belongs to at most one subnet; joining again moves it.
func (f *Fabric) JoinSubnet(addr, name string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.subnets[name]; !ok {
		panic(fmt.Sprintf("netsim: JoinSubnet(%q, %q): unknown subnet", addr, name))
	}
	f.memberOf[addr] = name
}

// SubnetOf reports the subnet addr belongs to, if any.
func (f *Fabric) SubnetOf(addr string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	name, ok := f.memberOf[addr]
	return name, ok
}

// LinkSubnets joins two subnets with a bidirectional gateway link carrying
// profile p — the only kind of inter-domain edge. Without one, packets
// between the subnets are rejected as unreachable.
func (f *Fabric) LinkSubnets(a, b string, p LinkProfile) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, n := range []string{a, b} {
		if _, ok := f.subnets[n]; !ok {
			panic(fmt.Sprintf("netsim: LinkSubnets(%q, %q): unknown subnet %q", a, b, n))
		}
	}
	f.gateways[a+"|"+b] = p
	f.gateways[b+"|"+a] = p
}

// PartitionSubnets cuts (or heals, when cut is false) every path between
// the two subnets — the gateway link as the fault plan sees it. Intra-
// subnet traffic on both sides continues. Idempotent; subnet names need
// not exist yet.
func (f *Fabric) PartitionSubnets(a, b string, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := pairKey(a, b)
	if cut {
		f.partitionedSubnets[key] = true
	} else {
		delete(f.partitionedSubnets, key)
	}
}

// IsolateSubnet cuts (or heals) every path crossing the subnet's boundary
// — the whole domain drops off the federation while its internal traffic
// continues. Idempotent.
func (f *Fabric) IsolateSubnet(name string, cut bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if cut {
		f.isolatedSubnets[name] = true
	} else {
		delete(f.isolatedSubnets, name)
	}
}

// composeProfiles chains link segments: fixed costs add, jitter windows
// add, and the packet survives only if it survives every segment, so loss
// probabilities combine as 1 − Π(1 − lossᵢ). One RNG draw still decides
// the composed loss and one the composed jitter, keeping the per-packet
// cost of a gateway crossing identical to a flat-fabric hop.
func composeProfiles(segs ...LinkProfile) LinkProfile {
	var out LinkProfile
	keep := 1.0
	for _, p := range segs {
		out.Latency += p.Latency
		out.Jitter += p.Jitter
		out.PerPacket += p.PerPacket
		keep *= 1 - p.Loss
	}
	out.Loss = 1 - keep
	return out
}

// profileLocked resolves the effective profile for from → to under the
// precedence documented at the top of this file. Called with f.mu held.
func (f *Fabric) profileLocked(from, to string) (LinkProfile, error) {
	if p, ok := f.links[from+"|"+to]; ok {
		return p, nil
	}
	sa, aok := f.memberOf[from]
	sb, bok := f.memberOf[to]
	if !aok || !bok {
		return f.defaultLink, nil
	}
	if sa == sb {
		return f.subnets[sa].intra, nil
	}
	gw, ok := f.gateways[sa+"|"+sb]
	if !ok {
		return LinkProfile{}, fmt.Errorf("%w: no gateway link %s>%s", transport.ErrUnreachable, sa, sb)
	}
	return composeProfiles(f.subnets[sa].intra, gw, f.subnets[sb].intra), nil
}

// cutLocked decides whether a packet from → to is cut by a partition or
// isolation, at any granularity: the address pair, either address, or —
// when the packet crosses a subnet boundary — the subnets involved.
// Called with f.mu held.
func (f *Fabric) cutLocked(from, to string) bool {
	if f.partitioned[pairKey(from, to)] || f.isolated[from] || f.isolated[to] {
		return true
	}
	sa, aok := f.memberOf[from]
	sb, bok := f.memberOf[to]
	if aok && bok && sa == sb {
		return false // intra-subnet traffic rides out its domain's isolation
	}
	if (aok && f.isolatedSubnets[sa]) || (bok && f.isolatedSubnets[sb]) {
		return true
	}
	return aok && bok && f.partitionedSubnets[pairKey(sa, sb)]
}
