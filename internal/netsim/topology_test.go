package netsim

import (
	"errors"
	"math"
	"testing"
	"time"

	"odp/internal/transport"
)

// expectDelivery asserts a send from a to b lands (or not) within a real
// timeout; the fabrics under test here run real-time with zero delay.
func expectDelivery(t *testing.T, got chan struct{}, want bool, msg string) {
	t.Helper()
	if want {
		select {
		case <-got:
		case <-time.After(time.Second):
			t.Fatalf("%s: no delivery", msg)
		}
		return
	}
	select {
	case <-got:
		t.Fatalf("%s: unexpected delivery", msg)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestSubnetIntraProfileApplied(t *testing.T) {
	f := NewFabric(WithDefaultLink(LinkProfile{Latency: time.Hour})) // would hang if used
	defer f.Close()
	f.AddSubnet("east", LinkProfile{}) // instantaneous intra profile
	f.JoinSubnet("a", "east")
	f.JoinSubnet("b", "east")
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, got, true, "intra-subnet send should use the subnet profile, not the default")
}

func TestNoGatewayIsUnreachable(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.AddSubnet("west", LinkProfile{})
	f.JoinSubnet("a", "east")
	f.JoinSubnet("b", "west")
	a, _ := f.Endpoint("a")
	_, _ = f.Endpoint("b")
	err := a.Send("b", []byte("x"))
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("want ErrUnreachable without a gateway link, got %v", err)
	}
	if st := f.Stats(); st.Sent != 0 {
		t.Fatalf("a rejected packet is not traffic: Sent = %d", st.Sent)
	}
}

func TestGatewayLinkConnectsSubnets(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.AddSubnet("west", LinkProfile{})
	f.LinkSubnets("east", "west", LinkProfile{})
	f.JoinSubnet("a", "east")
	f.JoinSubnet("b", "west")
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 2)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, got, true, "gateway-linked subnets should deliver")

	// The gateway is bidirectional.
	gotA := make(chan struct{}, 2)
	a.SetHandler(func(string, []byte) { gotA <- struct{}{} })
	if err := b.Send("a", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, gotA, true, "reverse direction should deliver")
}

func TestGatewayCompositionSumsSegments(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{Latency: 10 * time.Millisecond, PerPacket: time.Millisecond})
	f.AddSubnet("west", LinkProfile{Latency: 20 * time.Millisecond})
	f.LinkSubnets("east", "west", LinkProfile{Latency: 30 * time.Millisecond})
	f.JoinSubnet("a", "east")
	f.JoinSubnet("b", "west")
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan time.Time, 1)
	b.SetHandler(func(string, []byte) { got <- time.Now() })
	start := time.Now()
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	at := <-got
	// egress 10ms+1ms + gateway 30ms + ingress 20ms = 61ms one way.
	if d := at.Sub(start); d < 55*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~61ms of composed latency", d)
	}
}

func TestComposeProfilesLoss(t *testing.T) {
	p := composeProfiles(LinkProfile{Loss: 0.5}, LinkProfile{Loss: 0.5}, LinkProfile{})
	if math.Abs(p.Loss-0.75) > 1e-9 {
		t.Fatalf("composed loss = %v, want 0.75", p.Loss)
	}
	if p := composeProfiles(LinkProfile{}, LinkProfile{}, LinkProfile{}); p.Loss != 0 {
		t.Fatalf("lossless segments composed to loss %v", p.Loss)
	}
}

func TestSetLinkOverridesTopology(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.AddSubnet("west", LinkProfile{})
	f.JoinSubnet("a", "east")
	f.JoinSubnet("b", "west")
	// No gateway — but a per-pair override is precedent over topology, so
	// the pair stays connected (a debug backdoor, same as flat fabrics).
	f.SetLink("a", "b", LinkProfile{})
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, got, true, "SetLink override should win over missing gateway")
}

func TestUnplacedAddressesKeepFlatBehaviour(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.JoinSubnet("a", "east")
	// b never joins a subnet: a→b falls back to the default link, exactly
	// as a flat fabric would route it.
	a, _ := f.Endpoint("a")
	b, _ := f.Endpoint("b")
	got := make(chan struct{}, 1)
	b.SetHandler(func(string, []byte) { got <- struct{}{} })
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, got, true, "subnet member to unplaced address should use the default link")
}

func TestPartitionSubnetsCutsOnlyGatewayTraffic(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.AddSubnet("west", LinkProfile{})
	f.LinkSubnets("east", "west", LinkProfile{})
	f.JoinSubnet("a1", "east")
	f.JoinSubnet("a2", "east")
	f.JoinSubnet("b1", "west")
	a1, _ := f.Endpoint("a1")
	a2, _ := f.Endpoint("a2")
	b1, _ := f.Endpoint("b1")
	gotA2 := make(chan struct{}, 4)
	gotB1 := make(chan struct{}, 4)
	a2.SetHandler(func(string, []byte) { gotA2 <- struct{}{} })
	b1.SetHandler(func(string, []byte) { gotB1 <- struct{}{} })

	f.PartitionSubnets("east", "west", true)
	if err := a1.Send("b1", []byte("x")); err != nil {
		t.Fatal(err) // silent, like any partition
	}
	expectDelivery(t, gotB1, false, "cross-subnet send under subnet partition")
	if err := a1.Send("a2", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, gotA2, true, "intra-subnet traffic should survive the partition")

	f.PartitionSubnets("east", "west", false)
	if err := a1.Send("b1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectDelivery(t, gotB1, true, "cross-subnet send after heal")
	if f.Stats().Cut != 1 {
		t.Fatalf("cut count = %d, want 1", f.Stats().Cut)
	}
}

func TestIsolateSubnetKeepsIntraTraffic(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.AddSubnet("west", LinkProfile{})
	f.LinkSubnets("east", "west", LinkProfile{})
	f.JoinSubnet("a1", "east")
	f.JoinSubnet("a2", "east")
	f.JoinSubnet("b1", "west")
	a1, _ := f.Endpoint("a1")
	a2, _ := f.Endpoint("a2")
	b1, _ := f.Endpoint("b1")
	gotA1 := make(chan struct{}, 4)
	gotA2 := make(chan struct{}, 4)
	gotB1 := make(chan struct{}, 4)
	a1.SetHandler(func(string, []byte) { gotA1 <- struct{}{} })
	a2.SetHandler(func(string, []byte) { gotA2 <- struct{}{} })
	b1.SetHandler(func(string, []byte) { gotB1 <- struct{}{} })

	f.IsolateSubnet("east", true)
	_ = a1.Send("b1", []byte("x")) // outbound across the boundary: cut
	expectDelivery(t, gotB1, false, "outbound from isolated subnet")
	_ = b1.Send("a1", []byte("x")) // inbound across the boundary: cut
	expectDelivery(t, gotA1, false, "inbound to isolated subnet")
	_ = a1.Send("a2", []byte("x")) // intra-domain: survives
	expectDelivery(t, gotA2, true, "intra-subnet traffic during isolation")

	f.IsolateSubnet("east", false)
	_ = a1.Send("b1", []byte("x"))
	expectDelivery(t, gotB1, true, "cross-subnet send after rejoin")
}

func TestSubnetOfAndMoves(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	f.AddSubnet("east", LinkProfile{})
	f.AddSubnet("west", LinkProfile{})
	if _, ok := f.SubnetOf("a"); ok {
		t.Fatal("unplaced address reported a subnet")
	}
	f.JoinSubnet("a", "east")
	if sn, _ := f.SubnetOf("a"); sn != "east" {
		t.Fatalf("SubnetOf = %q, want east", sn)
	}
	f.JoinSubnet("a", "west") // joining again moves
	if sn, _ := f.SubnetOf("a"); sn != "west" {
		t.Fatalf("SubnetOf after move = %q, want west", sn)
	}
}

func TestJoinUnknownSubnetPanics(t *testing.T) {
	f := NewFabric()
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("JoinSubnet of an undeclared subnet should panic")
		}
	}()
	f.JoinSubnet("a", "ghost")
}
