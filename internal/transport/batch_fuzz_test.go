// Fuzzing for the BATCH frame decoder. The seed corpus covers the
// structurally interesting shapes from the wire format's point of view:
// nested length prefixes (a batch carrying a batch), truncation at every
// layer, the zero-frame batch, and count/length lies. The decoder must
// never panic, never read out of bounds, and — when it accepts a frame —
// survive a decode/re-encode round trip.
package transport

import (
	"bytes"
	"testing"
)

func FuzzBatchDecode(f *testing.F) {
	// Well-formed batches.
	f.Add(buildBatch(nil))                                             // zero-frame batch
	f.Add(buildBatch([][]byte{[]byte("hello")}))                       // single frame
	f.Add(buildBatch([][]byte{[]byte("a"), []byte("bb")}))             // two frames
	f.Add(buildBatch([][]byte{{}, {}, {}}))                            // empty sub-frames
	f.Add(buildBatch([][]byte{make([]byte, 1024)}))                    // larger body
	f.Add(buildBatch([][]byte{buildBatch([][]byte{[]byte("inner")})})) // nested batch
	f.Add(buildBatch([][]byte{
		{batchMagic, helloKind, batchVersion, helloProbe}, // hello inside a batch
		[]byte("payload"),
	}))
	// Malformed shapes.
	valid := buildBatch([][]byte{[]byte("aa"), []byte("bbb")})
	f.Add(valid[:len(valid)-1])                            // truncated body
	f.Add(valid[:batchHdrLen+2])                           // truncated length prefix
	f.Add(overwriteCount(valid, 100))                      // count lies high
	f.Add(overwriteCount(valid, 1))                        // count lies low
	f.Add(overwriteCount(buildBatch(nil), 0xFFFFFFFF))     // huge count, no body
	f.Add([]byte{batchMagic, batchKind, batchVersion})     // header cut short
	f.Add([]byte{batchMagic, batchKind, 0xFF, 0, 0, 0, 0}) // future version
	f.Add([]byte{batchMagic, helloKind, batchVersion, helloAck})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var subs [][]byte
		n, err := DecodeBatch(data, func(sub []byte) {
			subs = append(subs, append([]byte(nil), sub...))
		})
		if err != nil {
			if len(subs) != 0 {
				t.Fatalf("rejected batch still delivered %d sub-frames", len(subs))
			}
			return
		}
		if n != len(subs) {
			t.Fatalf("count %d != delivered %d", n, len(subs))
		}
		// Round trip: re-encoding the decoded sub-frames must
		// reproduce the accepted input byte for byte.
		if re := buildBatch(subs); !bytes.Equal(re, data) {
			t.Fatalf("re-encode mismatch:\n in: % x\nout: % x", data, re)
		}
	})
}
