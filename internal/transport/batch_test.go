package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/obs"
)

// memEP is an in-memory Endpoint for coalescer tests: Send records the
// frame and, when wired to a peer, delivers it synchronously.
type memEP struct {
	addr string

	mu      sync.Mutex
	handler Handler
	sent    [][]byte
	peers   map[string]*memEP
	closed  bool
}

func newMemEP(addr string) *memEP {
	return &memEP{addr: addr, peers: make(map[string]*memEP)}
}

// wire connects two memEPs so frames flow both ways.
func wire(a, b *memEP) {
	a.mu.Lock()
	a.peers[b.addr] = b
	a.mu.Unlock()
	b.mu.Lock()
	b.peers[a.addr] = a
	b.mu.Unlock()
}

func (m *memEP) Addr() string { return m.addr }

func (m *memEP) SetHandler(h Handler) {
	m.mu.Lock()
	m.handler = h
	m.mu.Unlock()
}

func (m *memEP) Send(to string, pkt []byte) error {
	cp := append([]byte(nil), pkt...)
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrClosed
	}
	m.sent = append(m.sent, cp)
	peer := m.peers[to]
	m.mu.Unlock()
	if peer != nil {
		peer.mu.Lock()
		h := peer.handler
		peer.mu.Unlock()
		if h != nil {
			h(m.addr, cp)
		}
	}
	return nil
}

func (m *memEP) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}

// frames returns the raw frames Send has written so far.
func (m *memEP) frames() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([][]byte(nil), m.sent...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// countBatches splits captured frames into batches and passthroughs.
func countBatches(frames [][]byte) (batches, singles int, subs [][]byte) {
	for _, f := range frames {
		if len(f) >= batchHdrLen && f[0] == batchMagic && f[1] == batchKind {
			batches++
			_, _ = DecodeBatch(f, func(sub []byte) {
				subs = append(subs, append([]byte(nil), sub...))
			})
			continue
		}
		if len(f) >= 3 && f[0] == batchMagic && f[1] == helloKind {
			continue
		}
		singles++
		subs = append(subs, append([]byte(nil), f...))
	}
	return batches, singles, subs
}

// TestCoalescerPassthroughUntilNegotiated: frames to an unknown peer go
// straight through, preceded by a paced HELLO probe.
func TestCoalescerPassthroughUntilNegotiated(t *testing.T) {
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner)
	defer func() { _ = c.Close() }()

	if err := c.Send("mem://b", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	frames := inner.frames()
	if len(frames) != 2 {
		t.Fatalf("want probe + passthrough, got %d frames", len(frames))
	}
	if frames[0][0] != batchMagic || frames[0][1] != helloKind || frames[0][3] != helloProbe {
		t.Fatalf("first frame is not a HELLO probe: % x", frames[0])
	}
	if !bytes.Equal(frames[1], []byte("plain")) {
		t.Fatalf("payload altered in passthrough: %q", frames[1])
	}
	st := c.BatchStats()
	if st.SingleSends != 1 || st.HellosSent != 1 || st.BatchesSent != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCoalescerNegotiation: two coalescers converge to batching via the
// HELLO exchange riding ordinary traffic.
func TestCoalescerNegotiation(t *testing.T) {
	ia, ib := newMemEP("mem://a"), newMemEP("mem://b")
	wire(ia, ib)
	ca, cb := NewCoalescer(ia), NewCoalescer(ib)
	defer func() { _ = ca.Close() }()
	defer func() { _ = cb.Close() }()

	var mu sync.Mutex
	var got []string
	cb.SetHandler(func(from string, pkt []byte) {
		mu.Lock()
		got = append(got, string(pkt))
		mu.Unlock()
	})
	ca.SetHandler(func(string, []byte) {})

	// First send carries the probe; the synchronous memEP wiring means
	// the ack is back before Send returns.
	if err := ca.Send("mem://b", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if !ca.PeerBatching("mem://b") {
		t.Fatal("probe/ack exchange did not mark the peer capable")
	}
	if !cb.PeerBatching("mem://a") {
		t.Fatal("receiving a probe did not mark the sender capable")
	}
	for i := 0; i < 10; i++ {
		if err := ca.Send("mem://b", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "all frames delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 11
	})
	mu.Lock()
	defer mu.Unlock()
	for i, want := range append([]string{"one"}, func() []string {
		var w []string
		for i := 0; i < 10; i++ {
			w = append(w, fmt.Sprintf("m%d", i))
		}
		return w
	}()...) {
		if got[i] != want {
			t.Fatalf("frame %d: got %q want %q (order broken)", i, got[i], want)
		}
	}
	if st := ca.BatchStats(); st.BatchesSent == 0 || st.FramesBatched != 10 {
		t.Fatalf("post-negotiation sends not batched: %+v", st)
	}
}

// TestCoalescerFallbackToPlainPeer: against a non-batching endpoint the
// payload stream is unchanged; the peer only has to drop the occasional
// unknown probe, which the datagram contract already demands.
func TestCoalescerFallbackToPlainPeer(t *testing.T) {
	ia, plain := newMemEP("mem://a"), newMemEP("mem://b")
	wire(ia, plain)
	ca := NewCoalescer(ia)
	defer func() { _ = ca.Close() }()

	var mu sync.Mutex
	var payloads []string
	var unknown int
	plain.SetHandler(func(from string, pkt []byte) {
		mu.Lock()
		defer mu.Unlock()
		if len(pkt) > 0 && pkt[0] == batchMagic {
			unknown++ // a plain rpc stack drops these as malformed
			return
		}
		payloads = append(payloads, string(pkt))
	})
	for i := 0; i < 100; i++ {
		if err := ca.Send("mem://b", []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(payloads) != 100 {
		t.Fatalf("plain peer got %d payloads, want 100", len(payloads))
	}
	for i, p := range payloads {
		if p != fmt.Sprintf("p%d", i) {
			t.Fatalf("payload %d = %q", i, p)
		}
	}
	if unknown == 0 || unknown > 100/helloEvery+1 {
		t.Fatalf("probe pacing off: %d probes for 100 sends", unknown)
	}
	if ca.PeerBatching("mem://b") {
		t.Fatal("silent peer must never be marked capable")
	}
}

// TestCoalescerMaxDelayFakeClock: with a max-delay window and a huge
// threshold, frames are held until the fake clock crosses the window,
// then leave as one batch. This is the determinism the injected clock
// buys: no real time passes.
func TestCoalescerMaxDelayFakeClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner,
		WithCoalescerClock(fc),
		WithMaxDelay(10*time.Millisecond),
		WithFlushThreshold(1<<20),
		WithMaxBatchFrames(1<<20))
	defer func() { _ = c.Close() }()
	c.MarkBatching("mem://b")

	for i := 0; i < 3; i++ {
		if err := c.Send("mem://b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Real time passes, fake time does not: nothing may flush.
	time.Sleep(20 * time.Millisecond)
	if st := c.BatchStats(); st.BatchesSent != 0 {
		t.Fatalf("batch flushed before the fake clock advanced: %+v", st)
	}
	// The flusher may still be en route to arming its timer; advancing
	// repeatedly is harmless (the window is measured from first
	// enqueue, so once Since(firstAt) >= maxDelay it flushes with or
	// without a timer).
	waitFor(t, "flush after Advance", func() bool {
		fc.Advance(10 * time.Millisecond)
		return c.BatchStats().BatchesSent == 1
	})
	st := c.BatchStats()
	if st.FramesBatched != 3 || st.FramesPerBatch[1] != 1 {
		t.Fatalf("want one batch of 3 (bucket 2–3): %+v", st)
	}
	_, _, subs := countBatches(inner.frames())
	if len(subs) != 3 || !bytes.Equal(subs[0], []byte{0}) || !bytes.Equal(subs[2], []byte{2}) {
		t.Fatalf("decoded sub-frames wrong: %v", subs)
	}
}

// TestCoalescerThresholdOverridesDelay: crossing the size threshold
// flushes immediately even though the max-delay window is open and the
// fake clock never advances.
func TestCoalescerThresholdOverridesDelay(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner,
		WithCoalescerClock(fc),
		WithMaxDelay(time.Hour),
		WithFlushThreshold(1024))
	defer func() { _ = c.Close() }()
	c.MarkBatching("mem://b")

	big := make([]byte, 2048)
	if err := c.Send("mem://b", big); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "threshold flush", func() bool {
		return c.BatchStats().BatchesSent == 1
	})
}

// TestCoalescerFlushSpanCoversBatchWrite: E-series coverage for the
// coalescer.flush channel stage — every batch written to the wire must
// surface as an obs.KindFlush span naming its destination, so traces
// account for frames that left through the batching path.
func TestCoalescerFlushSpanCoversBatchWrite(t *testing.T) {
	col := obs.NewCollector("mem://a", obs.WithSampleEvery(1))
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner,
		WithFlushThreshold(1024),
		WithCoalescerObserver(col))
	defer func() { _ = c.Close() }()
	c.MarkBatching("mem://b")

	big := make([]byte, 2048)
	if err := c.Send("mem://b", big); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "threshold flush", func() bool {
		return c.BatchStats().BatchesSent == 1
	})
	var flushes int
	for _, sp := range col.Snapshot() {
		if sp.Kind == obs.KindFlush {
			flushes++
			if sp.Name != "mem://b" {
				t.Fatalf("flush span names %q, want the destination mem://b", sp.Name)
			}
		}
	}
	if flushes == 0 {
		t.Fatalf("no %s span recorded for a sent batch", obs.KindFlush)
	}
}

// TestCoalescerNaturalBatching: with no max-delay the flusher never
// waits, yet frames enqueued while a flush is in flight pack together.
func TestCoalescerNaturalBatching(t *testing.T) {
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner)
	defer func() { _ = c.Close() }()
	c.MarkBatching("mem://b")

	const n = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				_ = c.Send("mem://b", []byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Wait()
	waitFor(t, "all frames flushed", func() bool {
		return c.BatchStats().FramesBatched == n
	})
	st := c.BatchStats()
	if st.BatchesSent > n {
		t.Fatalf("more batches than frames: %+v", st)
	}
}

// TestCoalescerOversizePassthrough: frames too large to share a
// datagram bypass the queue even on the batching path.
func TestCoalescerOversizePassthrough(t *testing.T) {
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner, WithPendingLimit(4096))
	defer func() { _ = c.Close() }()
	c.MarkBatching("mem://b")

	big := make([]byte, 8192)
	if err := c.Send("mem://b", big); err != nil {
		t.Fatal(err)
	}
	st := c.BatchStats()
	if st.SingleSends != 1 {
		t.Fatalf("oversize frame not passed through: %+v", st)
	}
	if err := c.Send("mem://b", make([]byte, MaxPacket+1)); err != ErrTooLarge {
		t.Fatalf("over-MaxPacket send: got %v want ErrTooLarge", err)
	}
}

// TestCoalescerOverflowDrops: a stalled pending queue sheds load
// instead of growing without bound.
func TestCoalescerOverflowDrops(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner,
		WithCoalescerClock(fc),
		WithMaxDelay(time.Hour), // flusher parks on the fake clock
		WithFlushThreshold(1<<20),
		WithPendingLimit(1024))
	defer func() { _ = c.Close() }()
	c.MarkBatching("mem://b")

	for i := 0; i < 64; i++ {
		if err := c.Send("mem://b", make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.BatchStats(); st.Overflows == 0 {
		t.Fatalf("no overflow drops recorded: %+v", st)
	}
}

// TestCoalescerCloseDrains: Close flushes queued frames before closing
// the inner endpoint, even when the max-delay window would have held
// them.
func TestCoalescerCloseDrains(t *testing.T) {
	fc := clock.NewFake(time.Unix(100, 0))
	inner := newMemEP("mem://a")
	c := NewCoalescer(inner,
		WithCoalescerClock(fc),
		WithMaxDelay(time.Hour),
		WithFlushThreshold(1<<20))
	c.MarkBatching("mem://b")

	for i := 0; i < 5; i++ {
		if err := c.Send("mem://b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := c.BatchStats()
	if st.FramesBatched != 5 {
		t.Fatalf("Close stranded frames: %+v", st)
	}
	if err := c.Send("mem://b", []byte("late")); err != ErrClosed {
		t.Fatalf("send after close: got %v want ErrClosed", err)
	}
}

// TestDecodeBatchRejectsCorrupt covers the structural validation, and
// that a corrupt batch delivers no prefix of its sub-frames.
func TestDecodeBatchRejectsCorrupt(t *testing.T) {
	valid := buildBatch([][]byte{[]byte("aa"), []byte("bbb"), {}})
	if n, err := DecodeBatch(valid, nil); err != nil || n != 3 {
		t.Fatalf("valid batch: n=%d err=%v", n, err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     {batchMagic, batchKind},
		"wrong magic":      append([]byte{0x01}, valid[1:]...),
		"wrong kind":       {batchMagic, 'X', batchVersion, 0, 0, 0, 0},
		"wrong version":    {batchMagic, batchKind, 9, 0, 0, 0, 0},
		"truncated prefix": valid[:len(valid)-4],
		"truncated body":   valid[:len(valid)-1],
		"trailing bytes":   append(append([]byte(nil), valid...), 0xFF),
		"count too high":   overwriteCount(valid, 4),
		"count too low":    overwriteCount(valid, 2),
		"huge count":       overwriteCount([]byte{batchMagic, batchKind, batchVersion, 0, 0, 0, 0}, 0xFFFFFFFF),
	}
	for name, pkt := range cases {
		delivered := 0
		if _, err := DecodeBatch(pkt, func([]byte) { delivered++ }); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
		if delivered != 0 {
			t.Errorf("%s: corrupt batch delivered %d sub-frames", name, delivered)
		}
	}
}

// buildBatch assembles a BATCH frame from sub-frames (test helper, also
// the fuzz re-encode oracle).
func buildBatch(subs [][]byte) []byte {
	buf := []byte{batchMagic, batchKind, batchVersion, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(buf[3:], uint32(len(subs)))
	for _, s := range subs {
		var lb [4]byte
		binary.BigEndian.PutUint32(lb[:], uint32(len(s)))
		buf = append(buf, lb[:]...)
		buf = append(buf, s...)
	}
	return buf
}

func overwriteCount(pkt []byte, n uint32) []byte {
	cp := append([]byte(nil), pkt...)
	binary.BigEndian.PutUint32(cp[3:], n)
	return cp
}
