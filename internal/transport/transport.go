// Package transport defines the message-passing substrate of the
// engineering model.
//
// The paper's analysis of separation (§4.1) requires that "all access
// between components must be based on the exchange of request and response
// messages". This package provides the lowest layer: unreliable,
// unordered, best-effort datagram endpoints. Reliability, ordering and
// exactly/at-most-once semantics are the business of the invocation
// protocol (internal/rpc), mirroring the ANSA REX design over UDP.
//
// Two implementations exist: the deterministic simulated fabric in
// internal/netsim (latency, jitter, loss, partitions) and the TCP endpoint
// in this package (real cross-process transport; TCP's reliability simply
// means the loss rate is 0 — the protocol stack above is unchanged).
package transport

import (
	"errors"
	"net"
)

// Handler consumes one inbound packet. Implementations are called from
// transport goroutines and must not block for long. pkt is only valid
// for the duration of the call: transports reuse delivery buffers, so a
// handler that needs the bytes afterwards must copy them. (The rpc layer
// satisfies this by decoding synchronously before any hand-off.)
type Handler func(from string, pkt []byte)

// Endpoint is a best-effort datagram endpoint with a stable address.
type Endpoint interface {
	// Addr returns the endpoint's address as placed in interface
	// references.
	Addr() string
	// Send transmits pkt towards to. Delivery is not guaranteed; an error
	// is returned only for local failures (closed endpoint, unknown
	// scheme), never for loss.
	Send(to string, pkt []byte) error
	// SetHandler installs the inbound packet handler. It must be called
	// before any traffic is expected; a nil handler drops packets.
	SetHandler(h Handler)
	// Close releases the endpoint. Subsequent Sends fail with ErrClosed.
	Close() error
}

// VecSender is the scatter-gather fast path: an endpoint that can
// transmit a frame supplied as a vector of segments, equivalent to
// Send(to, concat(segs)) but without requiring the caller to build the
// contiguous form. The TCP endpoint maps it onto writev via
// net.Buffers; the write coalescer uses it to emit a batch straight
// from its per-frame segment list, so coalesced frames are framed once
// at enqueue and never recopied into one buffer. Implementations must
// not retain the segment slices past the call.
type VecSender interface {
	SendVec(to string, segs net.Buffers) error
}

// LazySender queues a low-value frame for to without writing anything
// itself: the frame rides in whichever batch next leaves for that
// destination (or the coalescer's own flusher, whichever comes first).
// The rpc client uses it for acks, so an ack and the interrogation that
// follows it share one datagram. Endpoints without lazy capability are
// used via plain Send instead.
type LazySender interface {
	SendLazy(to string, pkt []byte) error
}

// ConcurrentDeliverer is implemented by endpoints whose inbound
// deliveries run on independent goroutines, so a Handler that blocks —
// on a nested invocation, say — cannot stall the delivery of the very
// packet it is waiting for. The rpc server dispatches handlers inline
// in the delivery goroutine on such endpoints, skipping a per-request
// goroutine hand-off; on serial transports (one read loop per
// connection, like TCP) it must not, and keeps the asynchronous path.
type ConcurrentDeliverer interface {
	DeliversConcurrently() bool
}

// Capability bits exchanged in the coalescer's HELLO frames. A set bit
// advertises something the sender can *accept*, so peers upgrade only
// what the receiving side has proven it decodes.
const (
	// CapPacked: inbound rpc bodies may use the ansa-packed/1 codec
	// (protocol version 2 headers).
	CapPacked byte = 1 << 0
)

// CapNegotiator exposes the capability byte a peer advertised during
// the HELLO exchange. Zero means no capabilities are known (yet) — the
// caller must fall back to baseline behaviour, exactly as batching
// falls back to unbatched sends.
type CapNegotiator interface {
	PeerCaps(addr string) byte
}

// Errors returned by endpoints.
var (
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnreachable reports an address no route exists for. The
	// simulated fabric returns it for unknown names; TCP returns it for
	// dial failures.
	ErrUnreachable = errors.New("transport: unreachable")
	// ErrTooLarge reports a packet exceeding MaxPacket.
	ErrTooLarge = errors.New("transport: packet too large")
)

// MaxPacket bounds a single datagram. Large invocations must be segmented
// by the layer above (internal/rpc does this).
const MaxPacket = 1 << 20
