// Package transport defines the message-passing substrate of the
// engineering model.
//
// The paper's analysis of separation (§4.1) requires that "all access
// between components must be based on the exchange of request and response
// messages". This package provides the lowest layer: unreliable,
// unordered, best-effort datagram endpoints. Reliability, ordering and
// exactly/at-most-once semantics are the business of the invocation
// protocol (internal/rpc), mirroring the ANSA REX design over UDP.
//
// Two implementations exist: the deterministic simulated fabric in
// internal/netsim (latency, jitter, loss, partitions) and the TCP endpoint
// in this package (real cross-process transport; TCP's reliability simply
// means the loss rate is 0 — the protocol stack above is unchanged).
package transport

import (
	"errors"
)

// Handler consumes one inbound packet. Implementations are called from
// transport goroutines and must not block for long. pkt is only valid
// for the duration of the call: transports reuse delivery buffers, so a
// handler that needs the bytes afterwards must copy them. (The rpc layer
// satisfies this by decoding synchronously before any hand-off.)
type Handler func(from string, pkt []byte)

// Endpoint is a best-effort datagram endpoint with a stable address.
type Endpoint interface {
	// Addr returns the endpoint's address as placed in interface
	// references.
	Addr() string
	// Send transmits pkt towards to. Delivery is not guaranteed; an error
	// is returned only for local failures (closed endpoint, unknown
	// scheme), never for loss.
	Send(to string, pkt []byte) error
	// SetHandler installs the inbound packet handler. It must be called
	// before any traffic is expected; a nil handler drops packets.
	SetHandler(h Handler)
	// Close releases the endpoint. Subsequent Sends fail with ErrClosed.
	Close() error
}

// Errors returned by endpoints.
var (
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnreachable reports an address no route exists for. The
	// simulated fabric returns it for unknown names; TCP returns it for
	// dial failures.
	ErrUnreachable = errors.New("transport: unreachable")
	// ErrTooLarge reports a packet exceeding MaxPacket.
	ErrTooLarge = errors.New("transport: packet too large")
)

// MaxPacket bounds a single datagram. Large invocations must be segmented
// by the layer above (internal/rpc does this).
const MaxPacket = 1 << 20
