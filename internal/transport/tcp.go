package transport

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPEndpoint carries the datagram abstraction over real TCP connections,
// for cross-process deployments (cmd/odpnode). Each frame is:
//
//	u32 fromLen | from | u32 pktLen | pkt
//
// Connections are cached per destination and re-dialled on failure. TCP's
// reliability simply means the loss probability is zero; the invocation
// protocol above is identical to the simulated case.
//
// Each cached connection owns a write mutex and a reusable frame buffer:
// concurrent senders serialize per connection, so frames never interleave
// (a single net.Conn.Write may issue several syscalls on partial writes)
// and steady-state sends allocate nothing.
type TCPEndpoint struct {
	listener net.Listener
	addr     string

	mu      sync.Mutex
	handler Handler
	conns   map[string]*tcpConn
	closed  bool
	wg      sync.WaitGroup
}

var (
	_ Endpoint  = (*TCPEndpoint)(nil)
	_ VecSender = (*TCPEndpoint)(nil)
)

// maxRetainedBuf bounds the frame and read buffers a connection keeps
// between packets: one oversized frame must not pin its storage for the
// connection's lifetime.
const maxRetainedBuf = 64 << 10

// tcpConn is one cached connection with its serialized write path.
type tcpConn struct {
	conn net.Conn

	wmu  sync.Mutex
	wbuf []byte      // reusable frame buffer, guarded by wmu
	wvec net.Buffers // reusable scatter-gather vector, guarded by wmu
}

// writeFrame frames and transmits one packet. The per-connection mutex
// makes the frame atomic on the stream even when the kernel accepts the
// buffer in several partial writes; the retained buffer makes the steady
// state allocation-free.
func (c *tcpConn) writeFrame(from string, pkt []byte) error {
	c.wmu.Lock()
	buf := appendFrame(c.wbuf[:0], from, pkt)
	if cap(buf) <= maxRetainedBuf {
		c.wbuf = buf
	} else {
		c.wbuf = nil
	}
	_, err := c.conn.Write(buf)
	c.wmu.Unlock()
	return err
}

// writeFrameVec frames and transmits one packet supplied as segments,
// without gathering it into a contiguous buffer: the framing header
// becomes the leading segment and the vector goes to the kernel as one
// writev (net.Buffers uses writev on TCP connections), so a coalesced
// batch crosses the stream in a single syscall with zero copies on this
// side. The write mutex keeps the frame atomic on the stream.
func (c *tcpConn) writeFrameVec(from string, segs net.Buffers, total int) error {
	c.wmu.Lock()
	hdr := c.wbuf[:0]
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(from)))
	hdr = append(hdr, n[:]...)
	hdr = append(hdr, from...)
	binary.BigEndian.PutUint32(n[:], uint32(total))
	hdr = append(hdr, n[:]...)
	c.wbuf = hdr
	vec := append(c.wvec[:0], hdr)
	vec = append(vec, segs...)
	// WriteTo consumes its receiver as segments drain, so it gets a
	// copy of the slice header; the caller's segment slices are only
	// read, never modified.
	work := vec
	_, err := work.WriteTo(c.conn)
	for i := range vec {
		vec[i] = nil
	}
	c.wvec = vec[:0]
	c.wmu.Unlock()
	return err
}

// ListenTCP creates an endpoint bound to bind (e.g. "127.0.0.1:0"). The
// advertised address is "tcp:" + the bound address.
func ListenTCP(bind string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	e := &TCPEndpoint{
		listener: l,
		addr:     "tcp:" + l.Addr().String(),
		conns:    make(map[string]*tcpConn),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements Endpoint.
func (e *TCPEndpoint) Addr() string { return e.addr }

// SetHandler implements Endpoint.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// connFor returns the cached connection for to, dialling one if needed.
func (e *TCPEndpoint) connFor(to string) (*tcpConn, error) {
	hostport, ok := stripScheme(to)
	if !ok {
		return nil, fmt.Errorf("%w: bad address %q", ErrUnreachable, to)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	tc := e.conns[to]
	e.mu.Unlock()
	if tc != nil {
		return tc, nil
	}

	conn, err := net.Dial("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnreachable, err)
	}
	tc = &tcpConn{conn: conn}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = conn.Close()
		return nil, ErrClosed
	}
	if existing := e.conns[to]; existing != nil {
		// Raced with another sender; keep the first connection.
		e.mu.Unlock()
		_ = conn.Close()
		return existing, nil
	}
	e.conns[to] = tc
	e.mu.Unlock()
	// Replies may come back on this same connection.
	e.wg.Add(1)
	go e.readLoop(tc, to)
	return tc, nil
}

// dropConn forgets a broken connection so the next send re-dials. The
// packet in flight is lost — exactly the datagram semantics the
// protocol above expects.
func (e *TCPEndpoint) dropConn(to string, tc *tcpConn) {
	e.mu.Lock()
	if e.conns[to] == tc {
		delete(e.conns, to)
	}
	e.mu.Unlock()
	_ = tc.conn.Close()
}

// Send implements Endpoint. to must have the form "tcp:host:port".
func (e *TCPEndpoint) Send(to string, pkt []byte) error {
	if len(pkt) > MaxPacket {
		return ErrTooLarge
	}
	tc, err := e.connFor(to)
	if err != nil {
		return err
	}
	if err := tc.writeFrame(e.addr, pkt); err != nil {
		e.dropConn(to, tc)
	}
	return nil
}

// SendVec implements VecSender: the segments cross the stream as one
// frame via a single writev, never gathered in user space.
func (e *TCPEndpoint) SendVec(to string, segs net.Buffers) error {
	total := 0
	for _, s := range segs {
		total += len(s)
	}
	if total > MaxPacket {
		return ErrTooLarge
	}
	tc, err := e.connFor(to)
	if err != nil {
		return err
	}
	if err := tc.writeFrameVec(e.addr, segs, total); err != nil {
		e.dropConn(to, tc)
	}
	return nil
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]*tcpConn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.conns = make(map[string]*tcpConn)
	e.mu.Unlock()

	_ = e.listener.Close()
	for _, c := range conns {
		_ = c.conn.Close()
	}
	e.wg.Wait()
	return nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.readLoop(&tcpConn{conn: conn}, "")
	}
}

// readLoop consumes frames from one connection. cacheKey, when non-empty,
// identifies the conns entry to clear when the connection dies. The
// length prefixes, source address and packet all read into buffers reused
// across frames, so a settled connection allocates nothing per packet
// (the Handler contract forbids retaining pkt).
func (e *TCPEndpoint) readLoop(tc *tcpConn, cacheKey string) {
	defer e.wg.Done()
	conn := tc.conn
	defer func() {
		_ = conn.Close()
		if cacheKey != "" {
			e.mu.Lock()
			if e.conns[cacheKey] == tc {
				delete(e.conns, cacheKey)
			}
			e.mu.Unlock()
		}
	}()
	var (
		lenBuf     [4]byte
		fromBuf    []byte
		pktBuf     []byte
		lastFrom   string // interned source address: one conn, one peer
		registered bool
	)
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		fl := binary.BigEndian.Uint32(lenBuf[:])
		if fl > 4096 {
			return // absurd from length: protocol confusion, drop the conn
		}
		fromBuf = growBuf(fromBuf, int(fl))
		if _, err := io.ReadFull(conn, fromBuf[:fl]); err != nil {
			return
		}
		if lastFrom == "" || !bytes.Equal(fromBuf[:fl], []byte(lastFrom)) {
			lastFrom = string(fromBuf[:fl])
		}
		from := lastFrom
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		pl := binary.BigEndian.Uint32(lenBuf[:])
		if pl > MaxPacket {
			return // oversized frame: drop the conn
		}
		pktBuf = growBuf(pktBuf, int(pl))
		if _, err := io.ReadFull(conn, pktBuf[:pl]); err != nil {
			return
		}
		// First inbound frame tells us the peer's address, letting replies
		// reuse this connection instead of dialling back (essential when
		// the peer is behind an ephemeral port).
		if !registered && from != "" {
			e.mu.Lock()
			if !e.closed {
				if _, exists := e.conns[from]; !exists {
					e.conns[from] = tc
					if cacheKey == "" {
						cacheKey = from
					}
				}
			}
			e.mu.Unlock()
			registered = true
		}
		e.mu.Lock()
		h := e.handler
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, pktBuf[:pl])
		}
		if cap(pktBuf) > maxRetainedBuf {
			pktBuf = nil // do not pin one giant frame's storage
		}
	}
}

// growBuf returns a slice of at least n capacity, reusing buf when it
// already fits.
func growBuf(buf []byte, n int) []byte {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]byte, n)
}

func stripScheme(addr string) (string, bool) {
	const scheme = "tcp:"
	if len(addr) <= len(scheme) || addr[:len(scheme)] != scheme {
		return "", false
	}
	return addr[len(scheme):], true
}

// appendFrame appends the wire framing of (from, pkt) to dst.
func appendFrame(dst []byte, from string, pkt []byte) []byte {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(from)))
	dst = append(dst, n[:]...)
	dst = append(dst, from...)
	binary.BigEndian.PutUint32(n[:], uint32(len(pkt)))
	dst = append(dst, n[:]...)
	return append(dst, pkt...)
}
