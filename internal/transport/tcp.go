package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPEndpoint carries the datagram abstraction over real TCP connections,
// for cross-process deployments (cmd/odpnode). Each frame is:
//
//	u32 fromLen | from | u32 pktLen | pkt
//
// Connections are cached per destination and re-dialled on failure. TCP's
// reliability simply means the loss probability is zero; the invocation
// protocol above is identical to the simulated case.
type TCPEndpoint struct {
	listener net.Listener
	addr     string

	mu      sync.Mutex
	handler Handler
	conns   map[string]net.Conn
	closed  bool
	wg      sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP creates an endpoint bound to bind (e.g. "127.0.0.1:0"). The
// advertised address is "tcp:" + the bound address.
func ListenTCP(bind string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	e := &TCPEndpoint{
		listener: l,
		addr:     "tcp:" + l.Addr().String(),
		conns:    make(map[string]net.Conn),
	}
	e.wg.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr implements Endpoint.
func (e *TCPEndpoint) Addr() string { return e.addr }

// SetHandler implements Endpoint.
func (e *TCPEndpoint) SetHandler(h Handler) {
	e.mu.Lock()
	e.handler = h
	e.mu.Unlock()
}

// Send implements Endpoint. to must have the form "tcp:host:port".
func (e *TCPEndpoint) Send(to string, pkt []byte) error {
	if len(pkt) > MaxPacket {
		return ErrTooLarge
	}
	hostport, ok := stripScheme(to)
	if !ok {
		return fmt.Errorf("%w: bad address %q", ErrUnreachable, to)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	conn := e.conns[to]
	e.mu.Unlock()

	if conn == nil {
		var err error
		conn, err = net.Dial("tcp", hostport)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnreachable, err)
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return ErrClosed
		}
		if existing := e.conns[to]; existing != nil {
			// Raced with another sender; keep the first connection.
			e.mu.Unlock()
			_ = conn.Close()
			conn = existing
		} else {
			e.conns[to] = conn
			e.mu.Unlock()
			// Replies may come back on this same connection.
			e.wg.Add(1)
			go e.readLoop(conn, to)
		}
	}

	frame := encodeFrame(e.addr, pkt)
	if _, err := conn.Write(frame); err != nil {
		// Connection broke: forget it so the next send re-dials. The
		// packet is lost — exactly the datagram semantics the protocol
		// above expects.
		e.mu.Lock()
		if e.conns[to] == conn {
			delete(e.conns, to)
		}
		e.mu.Unlock()
		_ = conn.Close()
		return nil
	}
	return nil
}

// Close implements Endpoint.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := make([]net.Conn, 0, len(e.conns))
	for _, c := range e.conns {
		conns = append(conns, c)
	}
	e.conns = make(map[string]net.Conn)
	e.mu.Unlock()

	_ = e.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	e.wg.Wait()
	return nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			_ = conn.Close()
			return
		}
		e.wg.Add(1)
		e.mu.Unlock()
		go e.readLoop(conn, "")
	}
}

// readLoop consumes frames from one connection. cacheKey, when non-empty,
// identifies the conns entry to clear when the connection dies.
func (e *TCPEndpoint) readLoop(conn net.Conn, cacheKey string) {
	defer e.wg.Done()
	defer func() {
		_ = conn.Close()
		if cacheKey != "" {
			e.mu.Lock()
			if e.conns[cacheKey] == conn {
				delete(e.conns, cacheKey)
			}
			e.mu.Unlock()
		}
	}()
	registered := false
	for {
		from, pkt, err := readFrame(conn)
		if err != nil {
			return
		}
		// First inbound frame tells us the peer's address, letting replies
		// reuse this connection instead of dialling back (essential when
		// the peer is behind an ephemeral port).
		if !registered && from != "" {
			e.mu.Lock()
			if !e.closed {
				if _, exists := e.conns[from]; !exists {
					e.conns[from] = conn
					if cacheKey == "" {
						cacheKey = from
					}
				}
			}
			e.mu.Unlock()
			registered = true
		}
		e.mu.Lock()
		h := e.handler
		closed := e.closed
		e.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(from, pkt)
		}
	}
}

func stripScheme(addr string) (string, bool) {
	const scheme = "tcp:"
	if len(addr) <= len(scheme) || addr[:len(scheme)] != scheme {
		return "", false
	}
	return addr[len(scheme):], true
}

func encodeFrame(from string, pkt []byte) []byte {
	buf := make([]byte, 0, 8+len(from)+len(pkt))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(from)))
	buf = append(buf, n[:]...)
	buf = append(buf, from...)
	binary.BigEndian.PutUint32(n[:], uint32(len(pkt)))
	buf = append(buf, n[:]...)
	buf = append(buf, pkt...)
	return buf
}

func readFrame(r io.Reader) (string, []byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", nil, err
	}
	fl := binary.BigEndian.Uint32(n[:])
	if fl > 4096 {
		return "", nil, fmt.Errorf("transport: absurd from length %d", fl)
	}
	from := make([]byte, fl)
	if _, err := io.ReadFull(r, from); err != nil {
		return "", nil, err
	}
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", nil, err
	}
	pl := binary.BigEndian.Uint32(n[:])
	if pl > MaxPacket {
		return "", nil, fmt.Errorf("transport: frame of %d bytes exceeds max", pl)
	}
	pkt := make([]byte, pl)
	if _, err := io.ReadFull(r, pkt); err != nil {
		return "", nil, err
	}
	return string(from), pkt, nil
}
