// Write coalescing: adaptive frame batching on shared connections.
//
// PR 2 drove per-call allocations to near zero, which left the E1
// loopback cost dominated by per-packet overhead — framing, syscalls
// (TCP) or per-delivery goroutines (netsim), and scheduler wakeups.
// That is channel overhead, not computational-model overhead, so per
// §5.5 of the paper it belongs to the channel: the Coalescer wraps any
// Endpoint and packs frames that concurrent senders address to the same
// destination into a single BATCH datagram, amortising the per-packet
// cost across all of them without the layers above changing at all.
//
// Flush policy (natural batching, in the group-commit tradition):
//
//   - a dedicated flusher per destination drains the pending buffer as
//     fast as the inner endpoint accepts it; whatever accumulated while
//     the previous write was in flight forms the next batch, so batch
//     size adapts to load with no added latency under light load;
//   - a size threshold forces a flush when the pending buffer is big
//     enough that waiting would not improve amortisation;
//   - an optional max-delay (off by default) holds sub-threshold
//     batches for a bounded window, trading latency for packing. It is
//     driven by an injected clock.Clock so fake-clock tests exercise it
//     deterministically.
//
// Interop is version-negotiated in-band. Control frames claim the first
// byte 0xB7, which no rpc packet can start with (rpc packets start with
// protoVersion, currently 1). Until a peer proves it understands
// batching — by sending a BATCH/HELLO frame, or answering a HELLO probe
// with a HELLO ack — every frame to it passes through unbatched, so a
// batching endpoint degrades transparently against a plain one: the
// plain peer's rpc layer drops the occasional probe as a malformed
// packet, which best-effort datagram semantics already require it to
// tolerate.
package transport

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
	"odp/internal/obs"
)

// Batch wire format. A BATCH frame is one datagram carrying N complete
// sub-frames:
//
//	[0xB7 'B' ver] [u32 count] count × ( [u32 len] [len bytes] )
//
// A HELLO frame negotiates capability:
//
//	[0xB7 'H' ver] [flag] [caps]     flag 0 = probe, 1 = ack
//
// The trailing caps byte advertises the sender's capability bits (see
// CapPacked). It was added after version 1 shipped: version-1 decoders
// only require four bytes and ignore the tail, so a capability-bearing
// HELLO degrades to a plain one against an old peer, and an old peer's
// four-byte HELLO reads as caps 0 here — negotiation stays in-band and
// backward compatible in both directions.
const (
	batchMagic   = 0xB7 // first byte of every coalescer control frame
	batchKind    = 'B'
	helloKind    = 'H'
	batchVersion = 1

	batchHdrLen = 3 + 4 // magic, kind, version + u32 sub-frame count
	subHdrLen   = 4     // u32 length prefix per sub-frame

	helloProbe = 0
	helloAck   = 1

	// helloEvery paces capability probes: one probe rides ahead of
	// every helloEvery-th unbatched send to a peer not yet known to
	// batch, so negotiation converges under loss without a probe storm.
	helloEvery = 64

	// Defaults; see the corresponding CoalescerOptions.
	defaultFlushThreshold = 32 << 10
	defaultMaxBatchFrames = 64
	defaultPendingLimit   = 256 << 10
)

// ErrBatchCorrupt reports a BATCH frame whose structure is inconsistent
// (truncated sub-frame, count mismatch, trailing bytes).
var ErrBatchCorrupt = errors.New("transport: corrupt batch frame")

// CoalescerStats is a snapshot of a Coalescer's counters.
type CoalescerStats struct {
	BatchesSent     uint64 // BATCH frames written to the inner endpoint
	FramesBatched   uint64 // sub-frames carried inside those batches
	SingleSends     uint64 // frames passed through unbatched
	BatchesReceived uint64 // BATCH frames decoded from the wire
	FramesUnpacked  uint64 // sub-frames delivered out of received batches
	HellosSent      uint64 // HELLO probes and acks emitted
	BadFrames       uint64 // corrupt or version-mismatched control frames dropped
	Overflows       uint64 // frames dropped because a peer's pending queue was full
	// DirectFlushes counts batches written synchronously by a sender
	// that found its peer idle, skipping the flusher hand-off (these are
	// also counted in BatchesSent).
	DirectFlushes uint64
	// FramesPerBatch is a histogram of sent batch sizes with buckets
	// 1, 2–3, 4–7, 8–15 and ≥16 frames.
	FramesPerBatch [5]uint64
}

// coalCounters is the atomic backing store for CoalescerStats.
type coalCounters struct {
	batchesSent, framesBatched, singleSends atomic.Uint64
	batchesRecv, framesUnpacked             atomic.Uint64
	hellosSent, badFrames, overflows        atomic.Uint64
	directFlushes                           atomic.Uint64
	buckets                                 [5]atomic.Uint64
}

func sizeBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n <= 3:
		return 1
	case n <= 7:
		return 2
	case n <= 15:
		return 3
	default:
		return 4
	}
}

// CoalescerOption configures a Coalescer.
type CoalescerOption func(*Coalescer)

// WithFlushThreshold sets the pending-buffer size (bytes) that forces an
// immediate flush regardless of the max-delay window.
func WithFlushThreshold(n int) CoalescerOption {
	return func(c *Coalescer) {
		if n > 0 {
			c.threshold = n
		}
	}
}

// WithMaxBatchFrames caps the number of sub-frames packed into one
// batch.
func WithMaxBatchFrames(n int) CoalescerOption {
	return func(c *Coalescer) {
		if n > 0 {
			c.maxFrames = n
		}
	}
}

// WithMaxDelay holds sub-threshold batches open for up to d, trading
// bounded extra latency for better packing under light concurrency.
// Zero (the default) flushes as soon as the flusher is idle: natural
// batching only, no added latency.
func WithMaxDelay(d time.Duration) CoalescerOption {
	return func(c *Coalescer) { c.maxDelay = d }
}

// WithPendingLimit bounds the bytes queued per destination. When the
// limit is reached further frames are dropped (and counted), matching
// the best-effort contract of the endpoint beneath.
func WithPendingLimit(n int) CoalescerOption {
	return func(c *Coalescer) {
		if n > 0 {
			c.pendingLimit = n
		}
	}
}

// WithCoalescerClock injects the clock driving the max-delay window.
func WithCoalescerClock(clk clock.Clock) CoalescerOption {
	return func(c *Coalescer) {
		if clk != nil {
			c.clk = clk
		}
	}
}

// WithCoalescerObserver installs the node's span collector: every batch
// write then records a flush span (an infrastructure trace, subject to
// the same sampling knob as invocation roots), so an operator can see
// how the channel packs frames.
func WithCoalescerObserver(col *obs.Collector) CoalescerOption {
	return func(c *Coalescer) { c.obs = col }
}

// WithCapabilities sets the capability bits this endpoint advertises in
// its HELLO frames (see CapPacked). Default none.
func WithCapabilities(caps byte) CoalescerOption {
	return func(c *Coalescer) { c.caps = caps }
}

// Coalescer wraps an Endpoint with per-destination write coalescing. It
// is itself an Endpoint, so the layers above are oblivious; rpc detects
// it through the Batcher interface to defer acks into batches.
type Coalescer struct {
	inner Endpoint
	clk   clock.Clock

	threshold    int
	maxFrames    int
	maxDelay     time.Duration
	pendingLimit int
	caps         byte // local capability bits advertised in HELLOs

	handler atomic.Value // Handler

	mu     sync.Mutex
	peers  map[string]*batchPeer
	closed bool
	stop   chan struct{}
	wg     sync.WaitGroup

	// obs, when non-nil, records a flush span per batch write.
	obs *obs.Collector

	stats coalCounters
	// flushDelay is the queue-delay distribution: first enqueue of a
	// batch to its claim for writing. Direct flushes record ~0; the
	// max-delay window and flusher scheduling show up here.
	flushDelay obs.Histogram
}

// Batcher is implemented by endpoints that coalesce outgoing frames
// (see Coalescer). Layers above may use it to defer low-value traffic —
// the rpc client queues acks so they ride in the same batch as the next
// substantive send instead of paying for their own datagram.
type Batcher interface {
	Endpoint
	BatchStats() CoalescerStats
}

var (
	_ Endpoint = (*Coalescer)(nil)
	_ Batcher  = (*Coalescer)(nil)
)

// NewCoalescer wraps ep. The Coalescer takes over ep's inbound handler;
// install the application handler on the Coalescer, and close the
// Coalescer (which closes ep) rather than ep directly.
func NewCoalescer(ep Endpoint, opts ...CoalescerOption) *Coalescer {
	c := &Coalescer{
		inner:        ep,
		clk:          clock.Real{},
		threshold:    defaultFlushThreshold,
		maxFrames:    defaultMaxBatchFrames,
		pendingLimit: defaultPendingLimit,
		peers:        make(map[string]*batchPeer),
		stop:         make(chan struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	if c.pendingLimit > MaxPacket {
		c.pendingLimit = MaxPacket
	}
	ep.SetHandler(c.demux)
	return c
}

// batchPeer is the per-destination coalescing state. The batch under
// construction is a list of per-frame segments — each one pooled and
// already carrying its sub-frame length prefix — rather than one
// contiguous buffer: a frame is framed exactly once, at enqueue, and
// the whole batch goes to the inner endpoint as a segment vector
// (writev via VecSender) without ever being recopied.
type batchPeer struct {
	c    *Coalescer
	dest string

	// capable flips once the peer proves it decodes batches; it never
	// flips back (a restarted incompatible peer would present as a new
	// address in this stack).
	capable atomic.Bool
	// sends counts unbatched sends, pacing HELLO probes.
	sends atomic.Uint64
	// peerCaps holds the capability byte the peer's HELLO advertised.
	peerCaps atomic.Uint32

	mu       sync.Mutex
	segs     []*[]byte // queued sub-frames, each [u32 len][bytes], pooled
	bytes    int       // queued bytes across segs (excluding the batch header)
	count    int       // sub-frames queued
	firstAt  time.Time
	inFlight bool      // a claimed write is in progress; queue behind it
	spare    []*[]byte // recycled seg-slice header, ping-ponged with segs

	// Write-path scratch, owned by whichever goroutine holds the
	// inFlight token (never touched under mu).
	hdr    [batchHdrLen]byte
	vec    net.Buffers
	gather []byte // contiguous fallback when the inner endpoint lacks SendVec

	wake chan struct{} // 1-buffered flusher doorbell
}

// segPool recycles per-frame segment buffers.
var segPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, 512)
		return &b
	},
}

// maxPooledSeg bounds retained segment capacity.
const maxPooledSeg = 64 << 10

// Addr implements Endpoint.
func (c *Coalescer) Addr() string { return c.inner.Addr() }

// SetHandler implements Endpoint.
func (c *Coalescer) SetHandler(h Handler) { c.handler.Store(h) }

func (c *Coalescer) loadHandler() Handler {
	h, _ := c.handler.Load().(Handler)
	return h
}

// Send implements Endpoint. Frames to peers that negotiated batching are
// queued for the destination's flusher and the error reflects only local
// admission; transmission failures then surface as drops, which is the
// contract of the unreliable endpoint beneath. Frames to other peers
// pass straight through.
//
// When no max-delay window is configured and no write is in progress,
// the sender claims the whole queue — its own frame plus anything
// parked by SendLazy or earlier senders — and writes the batch
// synchronously. Serial traffic then skips the flusher hand-off (two
// scheduler hops per frame) entirely; the flusher remains the drain for
// frames that arrive while a claimed write is on the wire.
func (c *Coalescer) Send(to string, pkt []byte) error {
	if len(pkt) > MaxPacket {
		return ErrTooLarge
	}
	p := c.peer(to)
	if p == nil {
		return ErrClosed
	}
	if !p.capable.Load() {
		if (p.sends.Add(1)-1)%helloEvery == 0 {
			c.sendHello(to, helloProbe)
		}
		c.stats.singleSends.Add(1)
		return c.inner.Send(to, pkt)
	}
	if batchHdrLen+subHdrLen+len(pkt) > c.pendingLimit {
		// Too big to share a datagram with anything else; batching
		// could not amortise it anyway.
		c.stats.singleSends.Add(1)
		return c.inner.Send(to, pkt)
	}
	p.mu.Lock()
	if !p.enqueueLocked(pkt) {
		p.mu.Unlock()
		c.stats.overflows.Add(1)
		return nil
	}
	if c.maxDelay == 0 && !p.inFlight {
		segs, n := p.claimLocked()
		p.mu.Unlock()
		c.stats.directFlushes.Add(1)
		p.writeSegs(segs, n)
		p.finishWrite(segs)
		return nil
	}
	p.mu.Unlock()
	p.wakeFlusher()
	return nil
}

// SendLazy implements LazySender: pkt is queued for to but no write is
// triggered on the caller's dime — the frame rides in the next batch a
// substantive Send claims, or the flusher's next drain, whichever comes
// first. Peers without batching get a plain send.
func (c *Coalescer) SendLazy(to string, pkt []byte) error {
	if len(pkt) > MaxPacket {
		return ErrTooLarge
	}
	p := c.peer(to)
	if p == nil {
		return ErrClosed
	}
	if !p.capable.Load() {
		// Same paced probing as Send, so a workload of nothing but lazy
		// frames (announcement streams) still negotiates batching.
		if (p.sends.Add(1)-1)%helloEvery == 0 {
			c.sendHello(to, helloProbe)
		}
		c.stats.singleSends.Add(1)
		return c.inner.Send(to, pkt)
	}
	if batchHdrLen+subHdrLen+len(pkt) > c.pendingLimit {
		c.stats.singleSends.Add(1)
		return c.inner.Send(to, pkt)
	}
	p.mu.Lock()
	ok := p.enqueueLocked(pkt)
	p.mu.Unlock()
	if !ok {
		c.stats.overflows.Add(1)
		return nil
	}
	// The flusher backstops delivery if no Send follows; under serial
	// request/reply traffic the next Send usually claims the frame first.
	p.wakeFlusher()
	return nil
}

// PeerCaps implements CapNegotiator: the capability byte addr advertised
// in its HELLO, or zero while negotiation is incomplete.
func (c *Coalescer) PeerCaps(addr string) byte {
	c.mu.Lock()
	p := c.peers[addr]
	c.mu.Unlock()
	if p == nil || !p.capable.Load() {
		return 0
	}
	return byte(p.peerCaps.Load())
}

// DeliversConcurrently reports whether the inner endpoint delivers on
// independent goroutines; the coalescer adds no serialisation of its
// own (DecodeBatch runs in the inner delivery goroutine), so it simply
// delegates.
func (c *Coalescer) DeliversConcurrently() bool {
	cd, ok := c.inner.(ConcurrentDeliverer)
	return ok && cd.DeliversConcurrently()
}

// Close flushes whatever is pending, stops the flushers and closes the
// inner endpoint.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.wg.Wait()
	return c.inner.Close()
}

// BatchStats implements Batcher.
func (c *Coalescer) BatchStats() CoalescerStats {
	s := CoalescerStats{
		BatchesSent:     c.stats.batchesSent.Load(),
		FramesBatched:   c.stats.framesBatched.Load(),
		SingleSends:     c.stats.singleSends.Load(),
		BatchesReceived: c.stats.batchesRecv.Load(),
		FramesUnpacked:  c.stats.framesUnpacked.Load(),
		HellosSent:      c.stats.hellosSent.Load(),
		BadFrames:       c.stats.badFrames.Load(),
		Overflows:       c.stats.overflows.Load(),
		DirectFlushes:   c.stats.directFlushes.Load(),
	}
	for i := range s.FramesPerBatch {
		s.FramesPerBatch[i] = c.stats.buckets[i].Load()
	}
	return s
}

// FlushDelay snapshots the batch queue-delay histogram (first enqueue
// to claim).
func (c *Coalescer) FlushDelay() obs.HistogramSnapshot {
	return c.flushDelay.Snapshot()
}

// PeerBatching reports whether addr has negotiated batching.
func (c *Coalescer) PeerBatching(addr string) bool {
	c.mu.Lock()
	p := c.peers[addr]
	c.mu.Unlock()
	return p != nil && p.capable.Load()
}

// MarkBatching records out-of-band that addr understands batches,
// skipping the HELLO exchange. Intended for static topologies and
// tests; normal negotiation is automatic.
func (c *Coalescer) MarkBatching(addr string) {
	c.markCapable(addr)
}

// peer returns (creating if needed) the state for addr, or nil if the
// coalescer is closed.
func (c *Coalescer) peer(addr string) *batchPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	p := c.peers[addr]
	if p == nil {
		p = &batchPeer{c: c, dest: addr, wake: make(chan struct{}, 1)}
		c.peers[addr] = p
	}
	return p
}

// markCapable flips addr to the batching path, starting its flusher on
// the first transition.
func (c *Coalescer) markCapable(addr string) {
	p := c.peer(addr)
	if p == nil || p.capable.Swap(true) {
		return
	}
	c.mu.Lock()
	if !c.closed {
		c.wg.Add(1)
		go p.flusher()
	}
	c.mu.Unlock()
}

func (c *Coalescer) sendHello(to string, flag byte) {
	c.stats.hellosSent.Add(1)
	_ = c.inner.Send(to, []byte{batchMagic, helloKind, batchVersion, flag, c.caps})
}

// demux is installed as the inner endpoint's handler: it intercepts
// coalescer control frames and forwards everything else untouched.
func (c *Coalescer) demux(from string, pkt []byte) {
	if len(pkt) >= 3 && pkt[0] == batchMagic {
		switch pkt[1] {
		case batchKind:
			if pkt[2] != batchVersion {
				c.stats.badFrames.Add(1)
				return
			}
			c.markCapable(from) // a batch is proof of capability
			h := c.loadHandler()
			n, err := DecodeBatch(pkt, func(sub []byte) {
				if h != nil {
					h(from, sub)
				}
			})
			if err != nil {
				c.stats.badFrames.Add(1)
				return
			}
			c.stats.batchesRecv.Add(1)
			c.stats.framesUnpacked.Add(uint64(n))
		case helloKind:
			if pkt[2] != batchVersion || len(pkt) < 4 {
				c.stats.badFrames.Add(1)
				return
			}
			if len(pkt) >= 5 {
				if p := c.peer(from); p != nil {
					p.peerCaps.Store(uint32(pkt[4]))
				}
			}
			c.markCapable(from)
			if pkt[3] == helloProbe {
				c.sendHello(from, helloAck)
			}
		default:
			// Control frame from a future version: drop, stay compatible.
			c.stats.badFrames.Add(1)
		}
		return
	}
	if h := c.loadHandler(); h != nil {
		h(from, pkt)
	}
}

// enqueueLocked frames pkt into a pooled segment and queues it for the
// destination. It reports false when the pending limit would be
// exceeded (best-effort semantics; the rpc layer's retransmission
// recovers interrogations). Caller holds p.mu.
func (p *batchPeer) enqueueLocked(pkt []byte) bool {
	if batchHdrLen+p.bytes+subHdrLen+len(pkt) > p.c.pendingLimit {
		return false
	}
	sp := segPool.Get().(*[]byte)
	var lb [subHdrLen]byte
	binary.BigEndian.PutUint32(lb[:], uint32(len(pkt)))
	*sp = append(append((*sp)[:0], lb[:]...), pkt...)
	if p.count == 0 {
		p.firstAt = p.c.clk.Now()
		if p.segs == nil {
			p.segs, p.spare = p.spare, nil
		}
	}
	p.segs = append(p.segs, sp)
	p.bytes += subHdrLen + len(pkt)
	p.count++
	return true
}

// claimLocked takes ownership of the queued segments and the inFlight
// write token. Caller holds p.mu and must call writeSegs followed by
// finishWrite with the returned slice.
func (p *batchPeer) claimLocked() ([]*[]byte, int) {
	p.inFlight = true
	segs, n := p.segs, p.count
	p.segs = nil
	p.bytes, p.count = 0, 0
	if n > 0 {
		// Queue delay: first enqueue to claim. Observing under p.mu is
		// one atomic add; the flusher already reads the clock here.
		p.c.flushDelay.Observe(p.c.clk.Since(p.firstAt))
	}
	return segs, n
}

// finishWrite releases the inFlight token, recycles the spent segment
// slice and, if frames queued up behind the write, hands them to the
// flusher.
func (p *batchPeer) finishWrite(spent []*[]byte) {
	p.mu.Lock()
	p.inFlight = false
	if p.spare == nil && cap(spent) <= 1024 {
		p.spare = spent[:0]
	}
	more := p.count > 0
	p.mu.Unlock()
	if more {
		p.wakeFlusher()
	}
}

func (p *batchPeer) wakeFlusher() {
	select {
	case p.wake <- struct{}{}:
	default:
	}
}

// flusher drains one destination. It runs only once the peer is known
// capable and exits when the coalescer stops, draining a final time so
// Close does not strand queued frames. With a direct-write fast path in
// Send it handles the leftovers: frames enqueued while a claimed write
// was in flight, lazy frames with no follow-up send, and all traffic
// when a max-delay window is configured.
func (p *batchPeer) flusher() {
	c := p.c
	defer c.wg.Done()
	for {
		select {
		case <-p.wake:
		case <-c.stop:
			p.flushNow()
			return
		}
		for {
			p.mu.Lock()
			if p.count == 0 || p.inFlight {
				// Nothing to do, or a direct writer owns the wire; it
				// will ring the doorbell again if frames remain.
				p.mu.Unlock()
				break
			}
			// Below both limits with a max-delay window configured:
			// hold the batch open for the remainder of the window so a
			// trickle of senders still packs together.
			if c.maxDelay > 0 && p.bytes < c.threshold && p.count < c.maxFrames {
				wait := c.maxDelay - c.clk.Since(p.firstAt)
				if wait > 0 {
					p.mu.Unlock()
					t := c.clk.NewTimer(wait)
					select {
					case <-t.C():
					case <-p.wake:
						// More frames arrived; re-evaluate thresholds.
						t.Stop()
					case <-c.stop:
						t.Stop()
						p.flushNow()
						return
					}
					continue
				}
			}
			segs, n := p.claimLocked()
			p.mu.Unlock()
			p.writeSegs(segs, n)
			p.finishWrite(segs)
		}
	}
}

// flushNow synchronously drains whatever is pending (shutdown path). A
// concurrent direct writer already owns anything it claimed; frames
// behind it are abandoned, which the best-effort contract permits at
// close.
func (p *batchPeer) flushNow() {
	p.mu.Lock()
	if p.count == 0 || p.inFlight {
		p.mu.Unlock()
		return
	}
	segs, n := p.claimLocked()
	p.mu.Unlock()
	p.writeSegs(segs, n)
	p.finishWrite(segs)
}

// writeSegs emits one batch from its segment list. When the inner
// endpoint is a VecSender the segments go out as a scatter-gather
// vector — the batch is never materialised contiguously; otherwise they
// are gathered into a retained scratch buffer first. Caller holds the
// inFlight token (not p.mu), which makes the per-peer scratch fields
// safe. A batch of one is still sent as a BATCH frame: the peer is
// known capable, and the header costs only 7 bytes.
func (p *batchPeer) writeSegs(segs []*[]byte, n int) {
	c := p.c
	p.hdr[0], p.hdr[1], p.hdr[2] = batchMagic, batchKind, batchVersion
	binary.BigEndian.PutUint32(p.hdr[3:batchHdrLen], uint32(n))
	sp := c.obs.Begin(obs.KindFlush, p.dest)
	var err error
	if vs, ok := c.inner.(VecSender); ok {
		vec := append(p.vec[:0], p.hdr[:])
		for _, s := range segs {
			vec = append(vec, *s)
		}
		err = vs.SendVec(p.dest, vec)
		for i := range vec {
			vec[i] = nil
		}
		p.vec = vec[:0]
	} else {
		buf := append(p.gather[:0], p.hdr[:]...)
		for _, s := range segs {
			buf = append(buf, *s...)
		}
		err = c.inner.Send(p.dest, buf)
		if cap(buf) <= maxRetainedBuf {
			p.gather = buf[:0]
		} else {
			p.gather = nil
		}
	}
	c.obs.End(sp)
	for i, s := range segs {
		if cap(*s) <= maxPooledSeg {
			*s = (*s)[:0]
			segPool.Put(s)
		}
		segs[i] = nil
	}
	if err != nil {
		return
	}
	c.stats.batchesSent.Add(1)
	c.stats.framesBatched.Add(uint64(n))
	c.stats.buckets[sizeBucket(n)].Add(1)
}

// DecodeBatch validates pkt as a BATCH frame and invokes fn once per
// sub-frame, in order. The whole frame is validated before the first
// callback, so a corrupt batch delivers nothing rather than a prefix.
// Sub-frame slices alias pkt and are only valid during the callback
// (the Handler contract). It returns the sub-frame count.
func DecodeBatch(pkt []byte, fn func(sub []byte)) (int, error) {
	if len(pkt) < batchHdrLen || pkt[0] != batchMagic || pkt[1] != batchKind {
		return 0, ErrBatchCorrupt
	}
	if pkt[2] != batchVersion {
		return 0, ErrBatchCorrupt
	}
	count := binary.BigEndian.Uint32(pkt[3:batchHdrLen])
	// Validation pass: every sub-frame complete, nothing trailing.
	off := batchHdrLen
	for i := uint32(0); i < count; i++ {
		if off+subHdrLen > len(pkt) {
			return 0, ErrBatchCorrupt
		}
		n := int(binary.BigEndian.Uint32(pkt[off : off+subHdrLen]))
		off += subHdrLen
		if n < 0 || n > len(pkt)-off {
			return 0, ErrBatchCorrupt
		}
		off += n
	}
	if off != len(pkt) {
		return 0, ErrBatchCorrupt
	}
	// Delivery pass.
	off = batchHdrLen
	for i := uint32(0); i < count; i++ {
		n := int(binary.BigEndian.Uint32(pkt[off : off+subHdrLen]))
		off += subHdrLen
		if fn != nil {
			fn(pkt[off : off+n])
		}
		off += n
	}
	return int(count), nil
}
