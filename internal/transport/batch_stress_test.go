// Race stress for the write coalescer: many goroutines share one
// coalesced connection, and the receiver proves that frames from one
// sender are never interleaved with bytes of another, never reordered
// within a sender, and never corrupted. Run with -race; the CI test
// step does.
package transport

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCoalescedConcurrentSendersNoInterleave(t *testing.T) {
	a, b := newPair(t) // TCP endpoints: real writes, real readLoop
	// The pending limit is sized so the whole stress load fits even if
	// the flusher never got a slot: no frame may be shed, because the
	// ordering assertion below counts every sequence number.
	ca := NewCoalescer(a, WithPendingLimit(MaxPacket))
	cb := NewCoalescer(b)
	t.Cleanup(func() {
		_ = ca.Close()
		_ = cb.Close()
	})
	// Skip the HELLO exchange so every frame takes the batching path
	// and the assertion below can demand FramesBatched == total.
	ca.MarkBatching(b.Addr())
	cb.MarkBatching(a.Addr())

	const (
		senders   = 8
		perSender = 150
		total     = senders * perSender
	)

	var (
		mu       sync.Mutex
		lastSeq  = make(map[int]int)
		received int
		bad      atomic.Int64
		done     = make(chan struct{})
	)
	cb.SetHandler(func(from string, pkt []byte) {
		// Frame: [u32 sender][u32 seq][payload filled with byte(sender)]
		if len(pkt) < 8 {
			bad.Add(1)
			return
		}
		g := int(binary.BigEndian.Uint32(pkt))
		seq := int(binary.BigEndian.Uint32(pkt[4:]))
		for _, x := range pkt[8:] {
			if x != byte(g) {
				bad.Add(1) // bytes of another sender's frame leaked in
				return
			}
		}
		mu.Lock()
		if last, ok := lastSeq[g]; ok && seq != last+1 {
			bad.Add(1) // reordered within one sender
		} else if !ok && seq != 0 {
			bad.Add(1)
		}
		lastSeq[g] = seq
		received++
		if received == total {
			close(done)
		}
		mu.Unlock()
	})
	ca.SetHandler(func(string, []byte) {})

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				size := 16 + (g*31+i*7)%512
				pkt := make([]byte, 8+size)
				binary.BigEndian.PutUint32(pkt, uint32(g))
				binary.BigEndian.PutUint32(pkt[4:], uint32(i))
				for j := 8; j < len(pkt); j++ {
					pkt[j] = byte(g)
				}
				if err := ca.Send(b.Addr(), pkt); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(20 * time.Second):
		mu.Lock()
		got := received
		mu.Unlock()
		t.Fatalf("timed out: %d/%d frames received", got, total)
	}
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d interleaved/reordered/corrupt frames", n)
	}
	st := ca.BatchStats()
	if st.Overflows != 0 {
		t.Fatalf("stress load overflowed the pending queue: %+v", st)
	}
	if st.FramesBatched != total {
		t.Fatalf("expected every frame batched: %+v", st)
	}
	if st.BatchesSent == 0 || st.BatchesSent > total {
		t.Fatalf("implausible batch count: %+v", st)
	}
	t.Logf("sent %d frames in %d batches (%.1f frames/batch)",
		st.FramesBatched, st.BatchesSent,
		float64(st.FramesBatched)/float64(st.BatchesSent))
}
