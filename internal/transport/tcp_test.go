package transport

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newPair(t *testing.T) (*TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		_ = a.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = a.Close()
		_ = b.Close()
	})
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := newPair(t)
	got := make(chan string, 1)
	b.SetHandler(func(from string, pkt []byte) { got <- string(pkt) })
	if err := a.Send(b.Addr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "ping" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestTCPReplyOverSameConnection(t *testing.T) {
	a, b := newPair(t)
	fromA := make(chan string, 1)
	b.SetHandler(func(from string, pkt []byte) { fromA <- from })
	gotReply := make(chan string, 1)
	a.SetHandler(func(from string, pkt []byte) { gotReply <- string(pkt) })

	if err := a.Send(b.Addr(), []byte("req")); err != nil {
		t.Fatal(err)
	}
	var from string
	select {
	case from = <-fromA:
	case <-time.After(2 * time.Second):
		t.Fatal("request not delivered")
	}
	if from != a.Addr() {
		t.Fatalf("from = %q, want %q", from, a.Addr())
	}
	// Reply using the advertised from address: must reuse the inbound
	// connection (a's listener port differs from the dialled socket).
	if err := b.Send(from, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-gotReply:
		if s != "reply" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reply not delivered")
	}
}

// TestTCPSendVec: a frame supplied as a segment vector must arrive as
// the single concatenated packet — Send(to, concat(segs)) semantics —
// and the segment slices must be intact afterwards (writev must not
// consume the caller's vector; the coalescer reuses its segment list).
func TestTCPSendVec(t *testing.T) {
	a, b := newPair(t)
	got := make(chan string, 1)
	b.SetHandler(func(from string, pkt []byte) { got <- string(pkt) })
	segs := net.Buffers{[]byte("bat"), []byte("ch"), []byte("ed")}
	if err := a.SendVec(b.Addr(), segs); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "batched" {
			t.Fatalf("got %q, want %q", s, "batched")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
	if len(segs) != 3 || string(segs[0]) != "bat" || string(segs[2]) != "ed" {
		t.Fatalf("caller's segment vector was consumed: %q", segs)
	}
	// A second vector over the same (now warm) connection.
	if err := a.SendVec(b.Addr(), net.Buffers{[]byte("again")}); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "again" {
			t.Fatalf("got %q, want %q", s, "again")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("second vector not delivered")
	}
}

// TestTCPPackedUpgradeEndToEnd drives the full negotiated stack over
// real sockets: two coalesced TCP endpoints exchange HELLOs, upgrade
// to batching with the packed capability, and rpc traffic flows
// through writev-emitted BATCH frames.
func TestTCPPackedUpgradeEndToEnd(t *testing.T) {
	a, b := newPair(t)
	ca := NewCoalescer(a, WithCapabilities(CapPacked))
	cb := NewCoalescer(b, WithCapabilities(CapPacked))
	t.Cleanup(func() {
		_ = ca.Close()
		_ = cb.Close()
	})
	got := make(chan string, 64)
	cb.SetHandler(func(from string, pkt []byte) { got <- string(pkt) })
	deadline := time.Now().Add(10 * time.Second)
	for ca.PeerCaps(b.Addr())&CapPacked == 0 {
		if time.Now().After(deadline) {
			t.Fatal("packed capability never negotiated over TCP")
		}
		if err := ca.Send(b.Addr(), []byte("probe-me")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
		case <-time.After(2 * time.Second):
			t.Fatal("frame lost during negotiation")
		}
	}
	// Past negotiation, frames ride BATCH datagrams (direct-write path,
	// emitted via SendVec when the inner endpoint supports it).
	if err := ca.Send(b.Addr(), []byte("packed-ride")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "packed-ride" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("post-negotiation frame not delivered")
	}
	if ca.BatchStats().DirectFlushes == 0 {
		t.Fatal("no direct flushes recorded: batch path not taken")
	}
}

func TestTCPManyFrames(t *testing.T) {
	a, b := newPair(t)
	var n atomic.Int64
	done := make(chan struct{})
	const total = 500
	b.SetHandler(func(string, []byte) {
		if n.Add(1) == total {
			close(done)
		}
	})
	var wg sync.WaitGroup
	for w := 0; w < 5; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < total/5; i++ {
				if err := a.Send(b.Addr(), []byte("m")); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", n.Load(), total)
	}
}

func TestTCPUnreachable(t *testing.T) {
	a, _ := newPair(t)
	if err := a.Send("tcp:127.0.0.1:1", []byte("x")); err == nil {
		t.Fatal("expected dial failure")
	}
	if err := a.Send("bogus-address", []byte("x")); err == nil {
		t.Fatal("expected scheme failure")
	}
}

func TestTCPClose(t *testing.T) {
	a, b := newPair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("x")); err != ErrClosed {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
}

func TestTCPOversize(t *testing.T) {
	a, b := newPair(t)
	big := make([]byte, MaxPacket+1)
	if err := a.Send(b.Addr(), big); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestTCPPeerRestart(t *testing.T) {
	// A peer dies and a new process takes over its address: the cached
	// connection breaks, the next send re-dials, traffic flows again —
	// datagram semantics over connection-oriented transport.
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	b1, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b1.Addr()
	got := make(chan string, 4)
	b1.SetHandler(func(_ string, pkt []byte) { got <- "b1:" + string(pkt) })
	if err := a.Send(addr, []byte("one")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "b1:one" {
			t.Fatalf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first delivery failed")
	}
	// Kill b1 and bring up b2 on the same port.
	hostport := addr[len("tcp:"):]
	_ = b1.Close()
	var b2 *TCPEndpoint
	deadline := time.Now().Add(5 * time.Second)
	for {
		b2, err = ListenTCP(hostport)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("port never freed: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Cleanup(func() { _ = b2.Close() })
	b2.SetHandler(func(_ string, pkt []byte) { got <- "b2:" + string(pkt) })

	// Sends may be lost while the stale cached connection drains (that is
	// the datagram contract); retrying must eventually land on b2.
	deadline = time.Now().Add(5 * time.Second)
	for {
		_ = a.Send(addr, []byte("two"))
		select {
		case s := <-got:
			if s == "b2:two" {
				return
			}
		case <-time.After(100 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted peer never reached")
		}
	}
}
