package transport

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPConcurrentSendersNoInterleave hammers one destination from many
// goroutines with large, distinctive frames and checks two properties of
// the per-connection write path under -race:
//
//  1. Frames never interleave. Each packet is a header naming its sender
//     plus a body of that sender's byte repeated; large bodies force the
//     kernel into partial writes, which unserialized concurrent
//     net.Conn.Writes would interleave on the stream.
//  2. The dial race collapses to exactly one cached connection: all
//     senders start cold simultaneously, every loser must adopt the
//     winner's connection.
func TestTCPConcurrentSendersNoInterleave(t *testing.T) {
	a, b := newPair(t)
	const (
		senders   = 8
		perSender = 24
		total     = senders * perSender
	)

	var (
		mu        sync.Mutex
		perOrigin = make(map[int]int)
		count     int
		corrupted atomic.Int64
		done      = make(chan struct{})
	)
	b.SetHandler(func(from string, pkt []byte) {
		if len(pkt) < 8 {
			corrupted.Add(1)
			return
		}
		g := int(binary.BigEndian.Uint32(pkt))
		want := byte(g)
		for _, x := range pkt[8:] {
			if x != want {
				corrupted.Add(1)
				break
			}
		}
		mu.Lock()
		perOrigin[g]++
		count++
		if count == total {
			close(done)
		}
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Varied sizes beyond the socket buffer make partial writes
			// likely, the condition under which interleaving would show.
			size := 16<<10 + g*7001
			pkt := make([]byte, 8+size)
			binary.BigEndian.PutUint32(pkt, uint32(g))
			for i := 8; i < len(pkt); i++ {
				pkt[i] = byte(g)
			}
			for i := 0; i < perSender; i++ {
				binary.BigEndian.PutUint32(pkt[4:], uint32(i))
				if err := a.Send(b.Addr(), pkt); err != nil {
					t.Errorf("sender %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		mu.Lock()
		got := count
		mu.Unlock()
		t.Fatalf("only %d/%d frames delivered", got, total)
	}
	if n := corrupted.Load(); n != 0 {
		t.Fatalf("%d corrupted frames: concurrent sends interleaved", n)
	}
	mu.Lock()
	for g := 0; g < senders; g++ {
		if perOrigin[g] != perSender {
			t.Errorf("sender %d: %d/%d frames arrived", g, perOrigin[g], perSender)
		}
	}
	mu.Unlock()

	a.mu.Lock()
	conns := len(a.conns)
	a.mu.Unlock()
	if conns != 1 {
		t.Fatalf("sender cached %d connections to one destination, want 1", conns)
	}
}
