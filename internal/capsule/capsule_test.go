package capsule

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/types"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

func counterType() types.Type {
	return types.Type{
		Name: "Counter",
		Ops: map[string]types.Operation{
			"inc": {
				Args:     []types.Desc{types.Int},
				Outcomes: map[string][]types.Desc{"ok": {types.Int}},
			},
			"get": {
				Outcomes: map[string][]types.Desc{"ok": {types.Int}},
			},
			"log": {
				Args:         []types.Desc{types.String},
				Announcement: true,
			},
		},
	}
}

// counter is a simple thread-safe servant.
type counter struct {
	mu sync.Mutex
	n  int64
	// logs collects announcement payloads.
	logs []string
}

func (c *counter) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch op {
	case "inc":
		c.n += args[0].(int64)
		return "ok", []wire.Value{c.n}, nil
	case "get":
		return "ok", []wire.Value{c.n}, nil
	case "log":
		c.logs = append(c.logs, args[0].(string))
		return "", nil, nil
	default:
		return "", nil, fmt.Errorf("no op %q", op)
	}
}

func newFabric(t *testing.T, opts ...netsim.Option) *netsim.Fabric {
	t.Helper()
	f := netsim.NewFabric(opts...)
	t.Cleanup(func() { _ = f.Close() })
	return f
}

func newCapsule(t *testing.T, f *netsim.Fabric, name string, opts ...Option) *Capsule {
	t.Helper()
	ep, err := f.Endpoint(name)
	if err != nil {
		t.Fatal(err)
	}
	c := New(name, ep, codec, opts...)
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func TestExportInvokeLocal(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	ref, err := c.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	if ref.TypeName != "Counter" || len(ref.Endpoints) != 1 {
		t.Fatalf("bad ref %v", ref)
	}
	outcome, res, err := c.Invoke(context.Background(), ref, "inc", []wire.Value{int64(5)})
	if err != nil || outcome != "ok" || res[0].(int64) != 5 {
		t.Fatalf("local invoke: %q %v %v", outcome, res, err)
	}
}

func TestInvokeRemote(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")
	ref, err := server.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		outcome, res, err := client.Invoke(context.Background(), ref, "inc", []wire.Value{int64(1)})
		if err != nil || outcome != "ok" || res[0].(int64) != int64(i) {
			t.Fatalf("remote invoke %d: %q %v %v", i, outcome, res, err)
		}
	}
}

func TestAccessTransparency(t *testing.T) {
	// The same client code must work identically whether the interface is
	// local or remote — the defining property of access transparency.
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")

	localRef, err := client.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	remoteRef, err := server.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	use := func(ref wire.Ref) (int64, error) {
		_, _, err := client.Invoke(context.Background(), ref, "inc", []wire.Value{int64(7)})
		if err != nil {
			return 0, err
		}
		_, res, err := client.Invoke(context.Background(), ref, "get", nil)
		if err != nil {
			return 0, err
		}
		return res[0].(int64), nil
	}
	for _, ref := range []wire.Ref{localRef, remoteRef} {
		got, err := use(ref)
		if err != nil || got != 7 {
			t.Fatalf("ref %v: got %d err %v", ref.Endpoints, got, err)
		}
	}
}

func TestEarlyTypeChecking(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	ref, err := c.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := c.Invoke(ctx, ref, "inc", []wire.Value{"five"}); err == nil {
		t.Fatal("wrong argument type accepted")
	}
	if _, _, err := c.Invoke(ctx, ref, "inc", nil); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, _, err := c.Invoke(ctx, ref, "selfDestruct", nil); err == nil {
		t.Fatal("unknown operation accepted")
	}
}

func TestOutcomeChecking(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	bad := ServantFunc(func(_ context.Context, op string, _ []wire.Value) (string, []wire.Value, error) {
		return "undeclared-outcome", nil, nil
	})
	ref, err := c.Export(bad, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Invoke(context.Background(), ref, "get", nil); err == nil {
		t.Fatal("undeclared outcome escaped the dispatcher")
	}
}

func TestUntypedExportSkipsChecking(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	ref, err := c.Export(&counter{}) // legacy encapsulation, §4.3
	if err != nil {
		t.Fatal(err)
	}
	outcome, _, err := c.Invoke(context.Background(), ref, "inc", []wire.Value{int64(2)})
	if err != nil || outcome != "ok" {
		t.Fatalf("untyped invoke: %q %v", outcome, err)
	}
}

func TestInterceptorChainOrder(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	var trace []string
	var mu sync.Mutex
	mk := func(tag string) Interceptor {
		return func(next Servant) Servant {
			return ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
				mu.Lock()
				trace = append(trace, tag+"-in")
				mu.Unlock()
				o, r, err := next.Dispatch(ctx, op, args)
				mu.Lock()
				trace = append(trace, tag+"-out")
				mu.Unlock()
				return o, r, err
			})
		}
	}
	ref, err := c.Export(&counter{}, WithInterceptors(mk("outer"), mk("inner")))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Invoke(context.Background(), ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	want := []string{"outer-in", "inner-in", "inner-out", "outer-out"}
	if len(trace) != 4 {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestUnexportYieldsNoObject(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")
	ref, err := server.Export(&counter{})
	if err != nil {
		t.Fatal(err)
	}
	server.Unexport(ref.ID)
	_, _, err = client.Invoke(context.Background(), ref, "get", nil,
		WithQoS(rpc.QoS{Timeout: time.Second}))
	if !errors.Is(err, rpc.ErrNoObject) {
		t.Fatalf("want ErrNoObject, got %v", err)
	}
}

func TestForwardFollowed(t *testing.T) {
	f := newFabric(t)
	oldHome := newCapsule(t, f, "old")
	newHome := newCapsule(t, f, "new")
	client := newCapsule(t, f, "client")

	cnt := &counter{n: 41}
	oldRef, err := oldHome.Export(cnt)
	if err != nil {
		t.Fatal(err)
	}
	// Move the object: export at the new home under the same id, forward
	// at the old home.
	newRef, err := newHome.Export(cnt, WithID(oldRef.ID))
	if err != nil {
		t.Fatal(err)
	}
	newRef.Epoch = oldRef.Epoch + 1
	oldHome.SetForward(oldRef.ID, newRef)

	// A client holding the stale reference still reaches the object.
	outcome, res, err := client.Invoke(context.Background(), oldRef, "inc", []wire.Value{int64(1)})
	if err != nil || outcome != "ok" || res[0].(int64) != 42 {
		t.Fatalf("forwarded invoke: %q %v %v", outcome, res, err)
	}
}

func TestForwardLoopBounded(t *testing.T) {
	f := newFabric(t)
	a := newCapsule(t, f, "a")
	b := newCapsule(t, f, "b")
	client := newCapsule(t, f, "client")
	refA := wire.Ref{ID: "x", Endpoints: []string{a.Addr()}}
	refB := wire.Ref{ID: "x", Endpoints: []string{b.Addr()}}
	a.SetForward("x", refB)
	b.SetForward("x", refA)
	_, _, err := client.Invoke(context.Background(), refA, "get", nil,
		WithQoS(rpc.QoS{Timeout: time.Second}))
	if err == nil {
		t.Fatal("forward loop terminated without error")
	}
}

func TestActivatorReinstates(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")
	var activations atomic.Int64
	server.SetActivator(func(objID string) (bool, error) {
		if objID != "server/sleeper" {
			return false, nil
		}
		activations.Add(1)
		_, err := server.Export(&counter{n: 100}, WithID(objID), WithType(counterType()))
		return err == nil, err
	})
	ref := wire.Ref{ID: "server/sleeper", TypeName: "Counter", Endpoints: []string{server.Addr()}}
	for i := 0; i < 3; i++ {
		_, res, err := client.Invoke(context.Background(), ref, "get", nil)
		if err != nil || res[0].(int64) != 100 {
			t.Fatalf("invoke %d: %v %v", i, res, err)
		}
	}
	if activations.Load() != 1 {
		t.Fatalf("activated %d times, want 1", activations.Load())
	}
}

func TestAnnouncementLocalAndRemote(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")
	cnt := &counter{}
	ref, err := server.Export(cnt, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Announce(ref, "log", []wire.Value{"remote-event"}); err != nil {
		t.Fatal(err)
	}
	if err := server.Announce(ref, "log", []wire.Value{"local-event"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for {
		cnt.mu.Lock()
		n := len(cnt.logs)
		cnt.mu.Unlock()
		if n == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("announcements received: %d/2", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestDuplicateExportRejected(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	if _, err := c.Export(&counter{}, WithID("fixed")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Export(&counter{}, WithID("fixed")); err == nil {
		t.Fatal("duplicate id accepted")
	}
}

func TestMultipleEndpointsFallback(t *testing.T) {
	// A reference may carry several access paths (§5.4); a dead first
	// endpoint must not defeat the invocation.
	f := newFabric(t)
	dead := newCapsule(t, f, "dead")
	live := newCapsule(t, f, "live")
	client := newCapsule(t, f, "client")
	_ = dead // hosts nothing

	ref, err := live.Export(&counter{n: 9})
	if err != nil {
		t.Fatal(err)
	}
	multi := ref
	multi.Endpoints = []string{dead.Addr(), live.Addr()}
	_, res, err := client.Invoke(context.Background(), multi, "get", nil,
		WithQoS(rpc.QoS{Timeout: 500 * time.Millisecond}))
	if err != nil || res[0].(int64) != 9 {
		t.Fatalf("fallback invoke: %v %v", res, err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")
	cnt := &counter{}
	ref, err := server.Export(cnt, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const workers, per = 8, 20
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := client.Invoke(context.Background(), ref, "inc",
					[]wire.Value{int64(1)}, WithQoS(rpc.QoS{Timeout: 5 * time.Second})); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	_, res, err := client.Invoke(context.Background(), ref, "get", nil)
	if err != nil || res[0].(int64) != workers*per {
		t.Fatalf("final count %v (err %v), want %d", res, err, workers*per)
	}
}

func TestNodeManagerBootstrapStartStop(t *testing.T) {
	f := newFabric(t)
	node := newCapsule(t, f, "node")
	client := newCapsule(t, f, "client")

	adv := &fakeAdvertiser{}
	nm, err := NewNodeManager(node, adv, []ServerSpec{
		{
			Name: "counter-a",
			Type: counterType(),
			New:  func() (Servant, error) { return &counter{}, nil },
			Properties: map[string]wire.Value{
				"zone": "east",
			},
		},
		{
			Name: "counter-b",
			Type: counterType(),
			New:  func() (Servant, error) { return &counter{}, nil },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.Bootstrap(); err != nil {
		t.Fatal(err)
	}
	if got := nm.Running(); len(got) != 2 {
		t.Fatalf("running %v", got)
	}
	if adv.count() != 2 {
		t.Fatalf("advertised %d offers, want 2", adv.count())
	}

	// Remote management: list, stop, start via the exported interface.
	ctx := context.Background()
	outcome, res, err := client.Invoke(ctx, nm.Ref(), "list", nil)
	if err != nil || outcome != "ok" || len(res[0].(wire.List)) != 2 {
		t.Fatalf("list: %q %v %v", outcome, res, err)
	}
	outcome, res, err = client.Invoke(ctx, nm.Ref(), "stop", []wire.Value{"counter-a"})
	if err != nil || outcome != "ok" {
		t.Fatalf("stop: %q %v %v", outcome, res, err)
	}
	if adv.count() != 1 {
		t.Fatalf("offer not withdrawn: %d", adv.count())
	}
	outcome, res, err = client.Invoke(ctx, nm.Ref(), "start", []wire.Value{"counter-a"})
	if err != nil || outcome != "ok" {
		t.Fatalf("start: %q %v %v", outcome, res, err)
	}
	if _, ok := res[0].(wire.Ref); !ok {
		t.Fatalf("start should return a ref, got %v", res)
	}
	outcome, res, err = client.Invoke(ctx, nm.Ref(), "stop", []wire.Value{"no-such"})
	if err != nil || outcome != "error" {
		t.Fatalf("stop unknown: %q %v %v", outcome, res, err)
	}
}

type fakeAdvertiser struct {
	mu     sync.Mutex
	nextID int
	offers map[string]bool
}

func (a *fakeAdvertiser) AdvertiseOffer(serviceType string, ref wire.Ref, props map[string]wire.Value) (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.offers == nil {
		a.offers = make(map[string]bool)
	}
	a.nextID++
	id := fmt.Sprintf("offer-%d", a.nextID)
	a.offers[id] = true
	return id, nil
}

func (a *fakeAdvertiser) WithdrawOffer(id string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.offers[id] {
		return errors.New("no such offer")
	}
	delete(a.offers, id)
	return nil
}

func (a *fakeAdvertiser) count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.offers)
}
