package capsule

import (
	"context"
	"fmt"
	"sync"

	"odp/internal/types"
	"odp/internal/wire"
)

// Advertiser abstracts the trading service for the node manager, avoiding
// a dependency from the engineering substrate onto trading. The trader
// package satisfies it.
type Advertiser interface {
	// AdvertiseOffer registers a service offer and returns its offer id.
	AdvertiseOffer(serviceType string, ref wire.Ref, properties map[string]wire.Value) (string, error)
	// WithdrawOffer removes a previously advertised offer.
	WithdrawOffer(offerID string) error
}

// ServerSpec describes one default server a node must (re)create after a
// restart (§6: the node manager "links the computer into the system after
// a restart, creating any servers on that machine which are required by
// default and advertising them via the trading system").
type ServerSpec struct {
	// Name identifies the server within the node.
	Name string
	// Type is its interface type.
	Type types.Type
	// New constructs a fresh servant instance.
	New func() (Servant, error)
	// Properties qualify the trading offer.
	Properties map[string]wire.Value
}

// NodeManagerType is the management interface every node manager exports,
// "a management service, accessible from other computers, for starting
// and stopping servers on its own node" (§6).
var NodeManagerType = types.Type{
	Name: "odp.NodeManager",
	Ops: map[string]types.Operation{
		"list": {
			Outcomes: map[string][]types.Desc{"ok": {types.List(types.String)}},
		},
		"start": {
			Args:     []types.Desc{types.String},
			Outcomes: map[string][]types.Desc{"ok": {types.RefTo("")}, "error": {types.String}},
		},
		"stop": {
			Args:     []types.Desc{types.String},
			Outcomes: map[string][]types.Desc{"ok": {}, "error": {types.String}},
		},
	},
}

// NodeManager starts a capsule's default servers and exposes remote
// start/stop management.
type NodeManager struct {
	capsule    *Capsule
	advertiser Advertiser

	mu      sync.Mutex
	specs   map[string]ServerSpec
	order   []string
	running map[string]runningServer
	ref     wire.Ref
}

type runningServer struct {
	ref     wire.Ref
	offerID string
}

// NewNodeManager creates a manager for c. advertiser may be nil (no
// trading).
func NewNodeManager(c *Capsule, advertiser Advertiser, specs []ServerSpec) (*NodeManager, error) {
	nm := &NodeManager{
		capsule:    c,
		advertiser: advertiser,
		specs:      make(map[string]ServerSpec, len(specs)),
		running:    make(map[string]runningServer),
	}
	for _, s := range specs {
		if _, dup := nm.specs[s.Name]; dup {
			return nil, fmt.Errorf("capsule: duplicate server spec %q", s.Name)
		}
		nm.specs[s.Name] = s
		nm.order = append(nm.order, s.Name)
	}
	ref, err := c.Export(ServantFunc(nm.dispatch),
		WithID(c.Name()+"/node-manager"),
		WithType(NodeManagerType))
	if err != nil {
		return nil, err
	}
	nm.ref = ref
	return nm, nil
}

// Ref returns the manager's own interface reference.
func (nm *NodeManager) Ref() wire.Ref { return nm.ref }

// Bootstrap starts every default server, as after a node restart.
func (nm *NodeManager) Bootstrap() error {
	nm.mu.Lock()
	order := append([]string(nil), nm.order...)
	nm.mu.Unlock()
	for _, name := range order {
		if _, err := nm.Start(name); err != nil {
			return fmt.Errorf("capsule: bootstrap %q: %w", name, err)
		}
	}
	return nil
}

// Start launches the named server and advertises it.
func (nm *NodeManager) Start(name string) (wire.Ref, error) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	spec, ok := nm.specs[name]
	if !ok {
		return wire.Ref{}, fmt.Errorf("capsule: unknown server %q", name)
	}
	if rs, up := nm.running[name]; up {
		return rs.ref, nil
	}
	servant, err := spec.New()
	if err != nil {
		return wire.Ref{}, fmt.Errorf("capsule: create %q: %w", name, err)
	}
	opts := []ExportOption{WithID(nm.capsule.Name() + "/" + name)}
	if spec.Type.Name != "" {
		opts = append(opts, WithType(spec.Type))
	}
	ref, err := nm.capsule.Export(servant, opts...)
	if err != nil {
		return wire.Ref{}, err
	}
	rs := runningServer{ref: ref}
	if nm.advertiser != nil {
		offerID, err := nm.advertiser.AdvertiseOffer(spec.Type.Name, ref, spec.Properties)
		if err != nil {
			nm.capsule.Unexport(ref.ID)
			return wire.Ref{}, fmt.Errorf("capsule: advertise %q: %w", name, err)
		}
		rs.offerID = offerID
	}
	nm.running[name] = rs
	return ref, nil
}

// Stop withdraws and unexports the named server.
func (nm *NodeManager) Stop(name string) error {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	rs, up := nm.running[name]
	if !up {
		return fmt.Errorf("capsule: server %q not running", name)
	}
	if nm.advertiser != nil && rs.offerID != "" {
		if err := nm.advertiser.WithdrawOffer(rs.offerID); err != nil {
			return fmt.Errorf("capsule: withdraw %q: %w", name, err)
		}
	}
	nm.capsule.Unexport(rs.ref.ID)
	delete(nm.running, name)
	return nil
}

// Running returns the names of servers currently up.
func (nm *NodeManager) Running() []string {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	var names []string
	for _, n := range nm.order {
		if _, up := nm.running[n]; up {
			names = append(names, n)
		}
	}
	return names
}

// dispatch implements the remote management interface.
func (nm *NodeManager) dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "list":
		names := nm.Running()
		list := make(wire.List, len(names))
		for i, n := range names {
			list[i] = n
		}
		return "ok", []wire.Value{list}, nil
	case "start":
		name, _ := args[0].(string)
		ref, err := nm.Start(name)
		if err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		return "ok", []wire.Value{ref}, nil
	case "stop":
		name, _ := args[0].(string)
		if err := nm.Stop(name); err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("capsule: node manager has no operation %q", op)
	}
}
