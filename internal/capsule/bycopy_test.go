package capsule

import (
	"context"
	"testing"
	"time"

	"odp/internal/wire"
)

// waitFor spins until cond holds or a generous deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}

// stash keeps the argument list it was last given and hands its internal
// list back as a result — a servant that would leak aliases if the
// dispatcher let it.
type stash struct {
	kept wire.List
}

func (s *stash) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "put":
		s.kept = args[0].(wire.List)
		return "ok", nil, nil
	case "get":
		return "ok", []wire.Value{s.kept}, nil
	}
	return "", nil, nil
}

// TestCoLocatedByCopyDiscipline pins the §4.4 rule on the co-located fast
// path: arguments and results cross the interface by copy, exactly as
// they would through the codec. A caller mutating its argument after the
// call, or a result after receiving it, must not reach the servant's
// state — otherwise co-located and remote behaviour diverge, which is
// precisely the access-transparency violation the optimisation must not
// introduce.
func TestCoLocatedByCopyDiscipline(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	sv := &stash{}
	ref, err := c.Export(sv)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	arg := wire.List{int64(1), int64(2)}
	if _, _, err := c.Invoke(ctx, ref, "put", []wire.Value{arg}); err != nil {
		t.Fatal(err)
	}
	arg[0] = int64(99) // caller scribbles on its own buffer after the call
	if got := sv.kept[0].(int64); got != 1 {
		t.Fatalf("servant saw caller's post-call mutation: kept[0] = %d", got)
	}

	_, res, err := c.Invoke(ctx, ref, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res[0].(wire.List)
	out[1] = int64(-7) // caller scribbles on the result
	if got := sv.kept[1].(int64); got != 2 {
		t.Fatalf("result aliased servant state: kept[1] = %d", got)
	}
}

// TestLocalAnnouncementCopiesArgs pins that a locally-dispatched
// announcement owns its arguments: the spawned activity runs after
// Announce returns, when the caller is free to reuse its slice.
func TestLocalAnnouncementCopiesArgs(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	cnt := &counter{}
	ref, err := c.Export(cnt, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	args := []wire.Value{"first"}
	if err := c.Announce(ref, "log", args); err != nil {
		t.Fatal(err)
	}
	args[0] = "clobbered" // the detached activity must not see this
	waitFor(t, func() bool {
		cnt.mu.Lock()
		defer cnt.mu.Unlock()
		return len(cnt.logs) == 1
	})
	cnt.mu.Lock()
	got := cnt.logs[0]
	cnt.mu.Unlock()
	if got != "first" {
		t.Fatalf("announcement read mutated args: %q", got)
	}
}
