package capsule

import (
	"context"
	"sort"
	"testing"
	"time"

	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/wire"
)

func TestAccessorsAndRegistry(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	if c.Name() != "n1" || c.Addr() != "n1" {
		t.Fatalf("name/addr: %q %q", c.Name(), c.Addr())
	}
	if c.Codec().Name() != (wire.BinaryCodec{}).Name() {
		t.Fatalf("codec %q", c.Codec().Name())
	}
	if c.Client() == nil {
		t.Fatal("nil client")
	}
	cnt := &counter{}
	ref, err := c.Export(cnt, WithID("one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Export(&counter{}, WithID("two")); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Lookup("one")
	if !ok || got != Servant(cnt) {
		t.Fatal("Lookup did not return the registered servant")
	}
	if _, ok := c.Lookup("missing"); ok {
		t.Fatal("Lookup found a ghost")
	}
	ids := c.Objects()
	sort.Strings(ids)
	if len(ids) != 2 || ids[0] != "one" || ids[1] != "two" {
		t.Fatalf("objects %v", ids)
	}
	_ = ref
}

func TestServerStatsCount(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server")
	client := newCapsule(t, f, "client")
	ref, err := server.Export(&counter{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := client.Invoke(context.Background(), ref, "get", nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := server.ServerStats(); st.Requests != 3 {
		t.Fatalf("server stats %+v", st)
	}
}

func TestWithLocalOptimisationOff(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1", WithLocalOptimisation(false))
	ref, err := c.Export(&counter{n: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With the optimisation off, the co-located invocation still works —
	// through the full protocol stack.
	_, res, err := c.Invoke(context.Background(), ref, "get", nil,
		WithQoS(rpc.QoS{Timeout: 2 * time.Second}))
	if err != nil || res[0].(int64) != 5 {
		t.Fatalf("unoptimised local invoke: %v %v", res, err)
	}
	if st := c.ServerStats(); st.Requests != 1 {
		t.Fatalf("invocation bypassed the stack: %+v", st)
	}
}

func TestForceRemoteTakesTheStack(t *testing.T) {
	f := newFabric(t)
	c := newCapsule(t, f, "n1")
	ref, err := c.Export(&counter{})
	if err != nil {
		t.Fatal(err)
	}
	// Default: optimised, no protocol traffic.
	if _, _, err := c.Invoke(context.Background(), ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	if st := c.ServerStats(); st.Requests != 0 {
		t.Fatalf("optimised invoke hit the stack: %+v", st)
	}
	// ForceRemote: the same invocation travels the full protocol path.
	if _, _, err := c.Invoke(context.Background(), ref, "get", nil, ForceRemote()); err != nil {
		t.Fatal(err)
	}
	if st := c.ServerStats(); st.Requests != 1 {
		t.Fatalf("ForceRemote bypassed the stack: %+v", st)
	}
}

func TestTypeCheckingDisabled(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	ep, err := f.Endpoint("x")
	if err != nil {
		t.Fatal(err)
	}
	c := New("x", ep, codec, WithTypeChecking(false))
	t.Cleanup(func() { _ = c.Close() })
	ref, err := c.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	// With checking off, a wrong-typed argument reaches the servant
	// (which then fails on its own terms — here, a type assertion panic
	// is NOT acceptable; counter asserts, so use an op without args).
	if _, _, err := c.Invoke(context.Background(), ref, "get", nil); err != nil {
		t.Fatal(err)
	}
	// An undeclared op passes the (disabled) check and reaches Dispatch.
	if _, _, err := c.Invoke(context.Background(), ref, "no-such-op", nil); err == nil {
		t.Fatal("servant accepted unknown op")
	}
}
