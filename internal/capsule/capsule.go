// Package capsule implements the engineering-model execution node.
//
// A capsule is an address space hosting ADT implementations (servants)
// behind interface references. It provides:
//
//   - the binder/dispatcher of §5.1: inbound invocations are routed to the
//     servant named by the reference, with early signature checking
//     ("early type checking reduces the risks of unpredictable behaviour",
//     §4.3);
//   - server-side interceptor chains, the hook by which transparency
//     mechanisms are "linked into the access path to an interface so that
//     effects due to distribution are filtered" (§4.5);
//   - the client-side invocation path with the §4.5 engineering
//     optimisation of direct local access for co-located interfaces;
//   - forwarding state for relocated interfaces (§5.4) and an activation
//     hook by which passive objects are transparently reinstated (§5.5);
//   - the node manager of §6, which recreates a node's default servers
//     after restart and advertises them.
package capsule

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
	"odp/internal/obs"
	"odp/internal/rpc"
	"odp/internal/transport"
	"odp/internal/types"
	"odp/internal/wire"
)

// Servant is the executable body of an ADT implementation: "the
// procedures provided by the server give access to a data structure"
// (§4.1). Dispatch must be safe for concurrent use — "concurrency is the
// norm in a distributed system" (§4.1).
type Servant interface {
	Dispatch(ctx context.Context, op string, args []wire.Value) (outcome string, results []wire.Value, err error)
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error)

// Dispatch implements Servant.
func (f ServantFunc) Dispatch(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	return f(ctx, op, args)
}

// Interceptor wraps a servant's dispatch path. Interceptors compose; the
// first installed is outermost.
type Interceptor func(next Servant) Servant

// Activator reinstates a passive object on demand (resource transparency,
// §5.5). On success it must Export the object (typically with its own
// interceptors) under objID on this capsule and return found=true; the
// dispatcher then re-reads its registry and proceeds. found=false means
// the object is unknown to this activator.
type Activator func(objID string) (found bool, err error)

// Errors returned by capsules.
var (
	// ErrNotLocal reports that an object is not hosted by this capsule.
	ErrNotLocal = errors.New("capsule: object not hosted here")
	// ErrNoEndpoint reports a reference with no reachable endpoint.
	ErrNoEndpoint = errors.New("capsule: no reachable endpoint in reference")
	// ErrClosed reports use of a closed capsule.
	ErrClosed = errors.New("capsule: closed")
)

// registration is one exported interface.
type registration struct {
	servant Servant
	typ     types.Type
	hasType bool
	chain   Servant // servant wrapped in its interceptors
}

// Capsule hosts servants on one endpoint.
type Capsule struct {
	name  string
	ep    transport.Endpoint
	codec wire.Codec
	peer  *rpc.Peer

	mu        sync.RWMutex
	objects   map[string]*registration
	forwards  map[string]wire.Ref
	activator Activator
	closed    bool

	nextID atomic.Uint64

	// checkTypes enables early signature checking on dispatch.
	checkTypes bool
	// localOptimisation short-circuits invocations of co-located
	// interfaces (§4.5 "direct local access ... for co-located data").
	localOptimisation bool
	// clk, when non-nil, drives the peer's timeouts, retransmission and
	// reply-cache lifecycle (virtual time under the sim harness).
	clk clock.Clock
	// admission, when non-nil, enables per-client token-bucket admission
	// control on the capsule's server role.
	admission *rpc.AdmissionConfig
	// obs, when non-nil, is the node's span collector: shared with the
	// protocol peer, and used here to record the co-located bypass as a
	// distinct span kind so tests can assert which path an invocation took.
	obs *obs.Collector
	// latClk is clk resolved against the real-time default; it stamps
	// the bypass latency histogram without a nil check per invocation.
	latClk clock.Clock
	// bypassLat is the §4.5 direct-local-access latency distribution
	// (dispatch through the woven chain, argument cloning included).
	bypassLat obs.Histogram
}

// Option configures a capsule.
type Option func(*Capsule)

// WithTypeChecking toggles dispatch-time signature checking (default on).
func WithTypeChecking(on bool) Option {
	return func(c *Capsule) { c.checkTypes = on }
}

// WithLocalOptimisation toggles the direct-local-access engineering
// optimisation (default on). Disabling it forces every invocation through
// the full protocol stack, which is how E1 measures the cost of naive
// indirection.
func WithLocalOptimisation(on bool) Option {
	return func(c *Capsule) { c.localOptimisation = on }
}

// WithClock drives the capsule's protocol peer — call timeouts,
// retransmission, reply caching — from clk instead of real time.
func WithClock(clk clock.Clock) Option {
	return func(c *Capsule) { c.clk = clk }
}

// WithObserver installs the node's span collector on the capsule and its
// protocol peer. Nil (the default) disables tracing.
func WithObserver(col *obs.Collector) Option {
	return func(c *Capsule) { c.obs = col }
}

// WithAdmission enables per-client token-bucket admission control on
// the capsule's server role: inbound invocations beyond a client's
// budget are shed with rpc.ErrServerBusy instead of queueing. Clients
// opt into automatic backoff with WithBusyRetry.
func WithAdmission(cfg rpc.AdmissionConfig) Option {
	return func(c *Capsule) { c.admission = &cfg }
}

// New creates a capsule on ep. name scopes generated object identifiers.
func New(name string, ep transport.Endpoint, codec wire.Codec, opts ...Option) *Capsule {
	c := &Capsule{
		name:              name,
		ep:                ep,
		codec:             codec,
		objects:           make(map[string]*registration),
		forwards:          make(map[string]wire.Ref),
		checkTypes:        true,
		localOptimisation: true,
	}
	for _, o := range opts {
		o(c)
	}
	c.latClk = c.clk
	if c.latClk == nil {
		c.latClk = clock.Real{}
	}
	var popts []rpc.PeerOption
	if c.clk != nil {
		popts = append(popts, rpc.WithPeerClock(c.clk))
	}
	if c.obs != nil {
		popts = append(popts, rpc.WithPeerObserver(c.obs))
	}
	if c.admission != nil {
		popts = append(popts, rpc.WithPeerServerOptions(rpc.WithAdmission(*c.admission)))
	}
	c.peer = rpc.NewPeer(ep, codec, c.handle, popts...)
	return c
}

// Name returns the capsule's name.
func (c *Capsule) Name() string { return c.name }

// Addr returns the capsule's transport address.
func (c *Capsule) Addr() string { return c.ep.Addr() }

// Codec returns the capsule's codec.
func (c *Capsule) Codec() wire.Codec { return c.codec }

// Client exposes the underlying protocol client for infrastructure that
// needs raw access (groups, interceptors).
func (c *Capsule) Client() *rpc.Client { return c.peer.Client }

// ServerStats exposes protocol server counters.
func (c *Capsule) ServerStats() rpc.ServerStats { return c.peer.Server.Stats() }

// DispatchLatency snapshots the protocol server's handler-execution
// latency histogram.
func (c *Capsule) DispatchLatency() obs.HistogramSnapshot {
	return c.peer.Server.DispatchLatency()
}

// BypassLatency snapshots the §4.5 co-located fast-path latency
// histogram.
func (c *Capsule) BypassLatency() obs.HistogramSnapshot {
	return c.bypassLat.Snapshot()
}

// Close shuts the capsule down.
func (c *Capsule) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.peer.Close()
}

// ExportOption configures one export.
type ExportOption func(*exportConfig)

type exportConfig struct {
	id           string
	typ          types.Type
	hasType      bool
	interceptors []Interceptor
}

// WithID fixes the exported object's identifier instead of generating
// one. Used when re-activating or re-hosting an existing interface so its
// references stay valid.
func WithID(id string) ExportOption {
	return func(cfg *exportConfig) { cfg.id = id }
}

// WithType attaches an interface type, enabling signature checking and
// carrying the type name in the reference.
func WithType(t types.Type) ExportOption {
	return func(cfg *exportConfig) { cfg.typ = t; cfg.hasType = true }
}

// WithInterceptors installs transparency interceptors around the servant.
// The first is outermost.
func WithInterceptors(is ...Interceptor) ExportOption {
	return func(cfg *exportConfig) { cfg.interceptors = append(cfg.interceptors, is...) }
}

// Export publishes a servant, returning its interface reference.
func (c *Capsule) Export(s Servant, opts ...ExportOption) (wire.Ref, error) {
	var cfg exportConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.id == "" {
		cfg.id = c.name + "/obj-" + strconv.FormatUint(c.nextID.Add(1), 10)
	}
	chain := s
	// Signature checking sits at the servant boundary, inside every
	// interceptor: transparency mechanisms (guards stripping credentials,
	// transaction wrappers carrying control operations) legitimately see
	// a different argument shape than the application signature.
	if c.checkTypes && cfg.hasType {
		chain = typeChecked(cfg.id, cfg.typ, chain)
	}
	for i := len(cfg.interceptors) - 1; i >= 0; i-- {
		chain = cfg.interceptors[i](chain)
	}
	reg := &registration{servant: s, typ: cfg.typ, hasType: cfg.hasType, chain: chain}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return wire.Ref{}, ErrClosed
	}
	if _, exists := c.objects[cfg.id]; exists {
		return wire.Ref{}, fmt.Errorf("capsule: object %q already exported", cfg.id)
	}
	delete(c.forwards, cfg.id) // re-hosting clears any stale forward
	c.objects[cfg.id] = reg
	return wire.Ref{
		ID:        cfg.id,
		TypeName:  cfg.typ.Name,
		Endpoints: []string{c.ep.Addr()},
	}, nil
}

// Unexport withdraws an interface. Subsequent invocations yield
// rpc.ErrNoObject at the caller.
func (c *Capsule) Unexport(id string) {
	c.mu.Lock()
	delete(c.objects, id)
	c.mu.Unlock()
}

// SetForward installs a forwarding reference for a departed interface
// (migration, §5.5): invokers receive the new location and rebind.
func (c *Capsule) SetForward(id string, to wire.Ref) {
	c.mu.Lock()
	delete(c.objects, id)
	c.forwards[id] = to
	c.mu.Unlock()
}

// SetActivator installs the passive-object activation hook.
func (c *Capsule) SetActivator(a Activator) {
	c.mu.Lock()
	c.activator = a
	c.mu.Unlock()
}

// Lookup returns the servant registered under id, for infrastructure that
// must reach the implementation directly (e.g. snapshotting for
// migration).
func (c *Capsule) Lookup(id string) (Servant, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	reg, ok := c.objects[id]
	if !ok {
		return nil, false
	}
	return reg.servant, true
}

// Hosts reports whether id is currently exported here.
func (c *Capsule) Hosts(id string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.objects[id]
	return ok
}

// Objects returns the ids of all exported interfaces.
func (c *Capsule) Objects() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ids := make([]string, 0, len(c.objects))
	for id := range c.objects {
		ids = append(ids, id)
	}
	return ids
}

// handle is the rpc server handler: the dispatcher of §5.1. Arguments
// normally arrive as private decoded copies; a zero-copy dispatch
// (packed codec on an inline-delivery endpoint) instead hands us values
// aliasing transport storage. The servant contract — arguments may be
// retained freely — is restored here by detaching once: an all-scalar
// vector crosses for free, so the hot arithmetic-call shape pays
// nothing. The objID and op strings stay aliased — dispatch uses them
// only transiently, and the one retaining path (the activator) clones
// its own copy in dispatchLocal.
func (c *Capsule) handle(ctx context.Context, in *rpc.Incoming) (string, []wire.Value, error) {
	args := in.Args
	if in.ZeroCopy {
		args = wire.DetachArgs(args)
	}
	return c.dispatchLocal(ctx, in.ObjID, in.Op, args)
}

// tryLocal is the co-located fast path: one registry lookup under one
// read lock, then direct dispatch — no codec, no transport, no protocol
// state. handled is false when the object is not plainly hosted here
// (absent, forwarded, or pending activation), in which case the caller
// falls back to the full path, whose slow-path handling is unchanged.
//
// Access transparency demands that the caller cannot tell a co-located
// servant from a remote one, and the remote path passes every argument
// through the codec — by copy (§4.4). The fast path preserves that with
// wire.CloneArgs, which deep-copies only mutable values: an all-scalar
// vector crosses for free, which is the §4.5 "direct local access"
// optimisation in its full form.
func (c *Capsule) tryLocal(ctx context.Context, objID, op string, args []wire.Value) (outcome string, results []wire.Value, err error, handled bool) {
	c.mu.RLock()
	reg, ok := c.objects[objID]
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return "", nil, ErrClosed, true
	}
	if !ok {
		return "", nil, nil, false
	}
	// The bypass span is the trace-level evidence that the §4.5
	// optimisation fired: a traced co-located invocation shows this kind
	// where a remote one shows rpc.send/rpc.dispatch. Nested invocations
	// the servant makes parent under it.
	var sp *obs.Span
	if c.obs != nil {
		if sp = c.obs.BeginChild(obs.FromContext(ctx), obs.KindBypass, op); sp != nil {
			ctx = obs.ContextWith(ctx, sp.Context())
		}
	}
	began := c.latClk.Now()
	outcome, results, err = reg.chain.Dispatch(ctx, op, wire.CloneArgs(args))
	c.bypassLat.Observe(c.latClk.Since(began))
	c.obs.End(sp)
	return outcome, wire.CloneArgs(results), err, true
}

// dispatchLocal runs an invocation against a hosted object.
func (c *Capsule) dispatchLocal(ctx context.Context, objID, op string, args []wire.Value) (string, []wire.Value, error) {
	c.mu.RLock()
	reg, ok := c.objects[objID]
	fwd, fok := c.forwards[objID]
	activator := c.activator
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return "", nil, ErrClosed
	}
	if !ok && fok {
		return "", nil, &rpc.MovedError{Forward: fwd}
	}
	if !ok && activator != nil {
		// The id may alias transport storage (zero-copy dispatch), and
		// activators retain ids — Export keeps them as registry keys —
		// so they get a private copy. Activation instantiates an
		// object; the clone is noise on that path.
		found, err := activator(strings.Clone(objID))
		if err != nil {
			return "", nil, err
		}
		if found {
			c.mu.RLock()
			reg, ok = c.objects[objID]
			c.mu.RUnlock()
		}
	}
	if !ok {
		return "", nil, rpc.ErrNoObject
	}
	return reg.chain.Dispatch(ctx, op, args)
}

// typeChecked wraps a servant with early signature checking (§4.3): the
// argument vector is verified before the behaviour runs, the outcome and
// its result package on the way out. Operation names containing "!" are
// the reserved infrastructure namespace (transaction control "t!...",
// group ordering "g!...", migration "m!...") and pass through unchecked —
// they are envelopes of the engineering model, not operations of the
// application signature.
func typeChecked(objID string, typ types.Type, next Servant) Servant {
	return ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
		if strings.ContainsRune(op, '!') {
			return next.Dispatch(ctx, op, args)
		}
		opSig, found := typ.Ops[op]
		if !found {
			return "", nil, fmt.Errorf("capsule: interface %q has no operation %q", objID, op)
		}
		if err := types.CheckArgs(opSig, args); err != nil {
			return "", nil, fmt.Errorf("capsule: %s.%s: %w", objID, op, err)
		}
		outcome, results, err := next.Dispatch(ctx, op, args)
		if err != nil {
			return "", nil, err
		}
		if !opSig.Announcement {
			if cerr := types.CheckOutcome(opSig, outcome, results); cerr != nil {
				return "", nil, fmt.Errorf("capsule: %s.%s: %w", objID, op, cerr)
			}
		}
		return outcome, results, nil
	})
}

// InvokeOption configures one client-side invocation.
type InvokeOption func(*InvokeConfig)

// InvokeConfig is the resolved form of a set of InvokeOptions. Callers
// that invoke repeatedly with the same options (proxies, binders) should
// resolve once with ResolveInvokeOptions and use InvokeWith/AnnounceWith:
// applying closure options forces a heap allocation per call, resolved
// configs travel by value.
type InvokeConfig struct {
	// QoS is the communications quality-of-service constraint.
	QoS rpc.QoS
	// ForceRemote disables the direct-local-access optimisation.
	ForceRemote bool
	// MaxForwards bounds forwarding-reference hops.
	MaxForwards int
	// BusyRetries bounds automatic retries when the server sheds the
	// invocation under admission control (rpc.ErrServerBusy). Zero — the
	// default — surfaces the error to the caller on first rejection.
	BusyRetries int
	// BusyBackoff is the wait before the first busy retry, doubling per
	// attempt; each retry is a fresh call id, so it re-enters admission.
	BusyBackoff time.Duration
}

// DefaultInvokeConfig is the configuration of an option-less invocation.
func DefaultInvokeConfig() InvokeConfig {
	return InvokeConfig{MaxForwards: 3}
}

// ResolveInvokeOptions applies opts to the default configuration.
func ResolveInvokeOptions(opts ...InvokeOption) InvokeConfig {
	cfg := DefaultInvokeConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithQoS sets the communications quality-of-service constraint.
func WithQoS(q rpc.QoS) InvokeOption {
	return func(cfg *InvokeConfig) { cfg.QoS = q }
}

// ForceRemote disables the direct-local-access optimisation for this
// invocation, pushing it through the full protocol stack.
func ForceRemote() InvokeOption {
	return func(cfg *InvokeConfig) { cfg.ForceRemote = true }
}

// WithBusyRetry retries an invocation shed by server admission control
// up to retries times, backing off exponentially from backoff.
func WithBusyRetry(retries int, backoff time.Duration) InvokeOption {
	return func(cfg *InvokeConfig) {
		cfg.BusyRetries = retries
		cfg.BusyBackoff = backoff
	}
}

// Invoke performs an interrogation on ref. Co-located interfaces are
// dispatched directly (unless disabled); remote ones go through the
// invocation protocol, trying each endpoint in preference order and
// following up to three forwarding hops.
func (c *Capsule) Invoke(ctx context.Context, ref wire.Ref, op string, args []wire.Value, opts ...InvokeOption) (string, []wire.Value, error) {
	if len(opts) == 0 {
		// The common case takes the no-allocation path: resolving options
		// pins the config to the heap (the closures take its address).
		return c.InvokeWith(ctx, ref, op, args, DefaultInvokeConfig())
	}
	return c.InvokeWith(ctx, ref, op, args, ResolveInvokeOptions(opts...))
}

// InvokeWith is Invoke with a pre-resolved configuration: the repeated-
// invocation hot path.
func (c *Capsule) InvokeWith(ctx context.Context, ref wire.Ref, op string, args []wire.Value, cfg InvokeConfig) (string, []wire.Value, error) {
	if c.localOptimisation && !cfg.ForceRemote {
		if outcome, results, err, handled := c.tryLocal(ctx, ref.ID, op, args); handled {
			return outcome, results, err
		}
	}
	if len(ref.Endpoints) == 0 {
		if c.Hosts(ref.ID) { // local even though optimisation is off
			return c.dispatchLocal(ctx, ref.ID, op, wire.CloneArgs(args))
		}
		return "", nil, ErrNoEndpoint
	}
	var lastErr error
	for _, ep := range ref.Endpoints {
		var outcome string
		var results []wire.Value
		var err error
		if ep == c.ep.Addr() && !cfg.ForceRemote && c.localOptimisation {
			// Not plainly hosted (tryLocal declined) but addressed to this
			// capsule: run the full local dispatcher so forwarding and
			// activation apply, still under by-copy discipline.
			outcome, results, err = c.dispatchLocal(ctx, ref.ID, op, wire.CloneArgs(args))
		} else {
			outcome, results, err = c.peer.Client.Call(ctx, ep, ref.ID, op, args, cfg.QoS)
			// A busy reply is the server shedding load (admission
			// control): back off and re-offer the call if the caller
			// opted in. Each retry mints a fresh call id, so it passes
			// through admission again against a refilled bucket.
			for attempt := 0; attempt < cfg.BusyRetries &&
				errors.Is(err, rpc.ErrServerBusy) && ctx.Err() == nil; attempt++ {
				c.sleep(cfg.BusyBackoff << attempt)
				outcome, results, err = c.peer.Client.Call(ctx, ep, ref.ID, op, args, cfg.QoS)
			}
		}
		if err == nil {
			return outcome, results, nil
		}
		var moved *rpc.MovedError
		if errors.As(err, &moved) && cfg.MaxForwards > 0 {
			next := cfg
			next.MaxForwards--
			return c.InvokeWith(ctx, moved.Forward, op, args, next)
		}
		lastErr = err
		if errors.Is(err, rpc.ErrDenied) || ctx.Err() != nil {
			break // no point trying other endpoints
		}
	}
	return "", nil, lastErr
}

// sleep blocks on the capsule clock (real time when none was injected),
// so busy backoff runs in virtual time under the sim harness.
func (c *Capsule) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	clk := c.clk
	if clk == nil {
		clk = clock.Real{}
	}
	clk.Sleep(d)
}

// Announce performs a request-only invocation on ref (§5.1).
func (c *Capsule) Announce(ref wire.Ref, op string, args []wire.Value, opts ...InvokeOption) error {
	if len(opts) == 0 {
		return c.AnnounceWith(ref, op, args, DefaultInvokeConfig())
	}
	return c.AnnounceWith(ref, op, args, ResolveInvokeOptions(opts...))
}

// AnnounceWith is Announce with a pre-resolved configuration.
func (c *Capsule) AnnounceWith(ref wire.Ref, op string, args []wire.Value, cfg InvokeConfig) error {
	return c.AnnounceCtxWith(context.Background(), ref, op, args, cfg)
}

// AnnounceCtxWith is AnnounceWith with a caller context: a span context
// carried by ctx flows to the announcee (group relays pass their handler
// context here, so relay fan-out joins the originating trace). An
// untraced top-level announcement on a tracing node roots a new trace,
// subject to the sampling knob.
func (c *Capsule) AnnounceCtxWith(ctx context.Context, ref wire.Ref, op string, args []wire.Value, cfg InvokeConfig) error {
	var root *obs.Span
	if c.obs != nil && !obs.FromContext(ctx).Valid() {
		if root = c.obs.Begin(obs.KindStub, op); root != nil {
			ctx = obs.ContextWith(ctx, root.Context())
		}
	}
	err := c.announceWith(ctx, ref, op, args, cfg)
	c.obs.End(root)
	return err
}

func (c *Capsule) announceWith(ctx context.Context, ref wire.Ref, op string, args []wire.Value, cfg InvokeConfig) error {
	if c.localOptimisation && !cfg.ForceRemote && c.Hosts(ref.ID) {
		// Spawn a new activity, as announcement semantics require. The
		// copy is taken before the goroutine starts: the caller owns its
		// argument slice again the moment Announce returns. CloneArgs
		// aliases all-scalar vectors (safe while the caller is blocked,
		// wrong for a detached activity), so force a fresh slice header.
		sent := wire.CloneArgs(args)
		if len(args) != 0 && &sent[0] == &args[0] {
			sent = append(make([]wire.Value, 0, len(args)), args...)
		}
		// The detached activity gets a fresh lifetime (announcements
		// outlive their caller) but keeps the span context, so the
		// spawned dispatch still lands in the originating trace.
		dctx := context.Background()
		if c.obs != nil {
			if sc := obs.FromContext(ctx); sc.Valid() {
				dctx = obs.ContextWith(dctx, sc)
			}
		}
		go func() {
			_, _, _ = c.dispatchLocal(dctx, ref.ID, op, sent)
		}()
		return nil
	}
	if len(ref.Endpoints) == 0 {
		return ErrNoEndpoint
	}
	return c.peer.Client.AnnounceCtx(ctx, ref.Endpoints[0], ref.ID, op, args, cfg.QoS)
}
