package capsule

import (
	"context"
	"errors"
	"testing"
	"time"

	"odp/internal/rpc"
	"odp/internal/wire"
)

// TestBusyRetrySucceedsAfterBackoff: an invocation shed by server-side
// admission control is transparently retried with exponential backoff
// and lands once the server's bucket refills.
func TestBusyRetrySucceedsAfterBackoff(t *testing.T) {
	f := newFabric(t)
	// One-token burst, fast refill: the bucket is full again well
	// within the first backoff sleep.
	server := newCapsule(t, f, "server",
		WithAdmission(rpc.AdmissionConfig{Rate: 500, Burst: 1}))
	client := newCapsule(t, f, "client")
	ref, err := server.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Drain the burst token.
	if _, _, err := client.Invoke(ctx, ref, "inc", []wire.Value{int64(1)}); err != nil {
		t.Fatalf("first invoke: %v", err)
	}
	// Without retry the shed surfaces as ErrServerBusy.
	if _, _, err := client.Invoke(ctx, ref, "inc", []wire.Value{int64(1)}); !errors.Is(err, rpc.ErrServerBusy) {
		t.Fatalf("unretried invoke: err = %v, want ErrServerBusy", err)
	}
	// With retry the same call backs off and succeeds.
	outcome, res, err := client.Invoke(ctx, ref, "inc", []wire.Value{int64(1)},
		WithBusyRetry(5, 10*time.Millisecond))
	if err != nil || outcome != "ok" {
		t.Fatalf("retried invoke: %q %v %v", outcome, res, err)
	}
	if res[0].(int64) != 2 {
		t.Fatalf("counter = %v, want 2 (shed invoke must not have executed)", res[0])
	}
}

// TestBusyRetryGivesUp: when the bucket never refills, the retry budget
// is exhausted and ErrServerBusy propagates to the caller.
func TestBusyRetryGivesUp(t *testing.T) {
	f := newFabric(t)
	server := newCapsule(t, f, "server",
		WithAdmission(rpc.AdmissionConfig{Rate: 0, Burst: 1}))
	client := newCapsule(t, f, "client")
	ref, err := server.Export(&counter{}, WithType(counterType()))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := client.Invoke(ctx, ref, "get", nil); err != nil {
		t.Fatalf("drain invoke: %v", err)
	}
	_, _, err = client.Invoke(ctx, ref, "get", nil,
		WithBusyRetry(2, time.Millisecond))
	if !errors.Is(err, rpc.ErrServerBusy) {
		t.Fatalf("err = %v, want ErrServerBusy after retries exhausted", err)
	}
}
