package obs

import "context"

// ctxKey is the private context key for span propagation. A zero-size
// key type boxes to a singleton, so FromContext lookups allocate nothing.
type ctxKey struct{}

// ContextWith returns ctx carrying sc, linking nested invocations made
// inside a handler (or a bypassed local dispatch) to their parent span.
// Only sampled paths call this, so the context allocation never lands on
// an unsampled invocation.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the active span context, zero (invalid) when the
// invocation is untraced. Allocation-free.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
