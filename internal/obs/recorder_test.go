package obs

import (
	"sync"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/wire"
)

// countingSource is a Gather stand-in whose counter advances under the
// caller's control.
type countingSource struct {
	mu sync.Mutex
	n  uint64
	f  float64
}

func (s *countingSource) add(n uint64) {
	s.mu.Lock()
	s.n += n
	s.mu.Unlock()
}

func (s *countingSource) rec() wire.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return wire.Record{
		"rpc.client.sent": s.n,
		"dispatch_p99":    s.f,
		"name":            "node", // non-numeric, never rated
	}
}

// advance waits for the sampling goroutine to arm its next timer, steps
// the fake clock one interval, and yields until want samples are
// committed. The arm-wait serialises test and sampler: a timer armed
// after Advance would wait for the next one.
func advance(t *testing.T, fc *clock.Fake, r *Recorder, interval time.Duration, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fc.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sampler never armed its timer")
		}
		time.Sleep(time.Millisecond)
	}
	fc.Advance(interval)
	for {
		r.mu.Lock()
		n := r.count
		r.mu.Unlock()
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler committed %d samples, want %d", n, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRecorderSamplesOnClock(t *testing.T) {
	fc := clock.NewFake(epoch)
	src := &countingSource{}
	r := NewRecorder(src.rec, time.Second, WithRecorderClock(fc), WithRecorderDepth(4))
	r.Start()
	defer r.Close()

	if n := len(r.Samples()); n != 0 {
		t.Fatalf("samples before any interval: %d", n)
	}
	src.add(10)
	advance(t, fc, r, time.Second, 1)
	src.add(5)
	advance(t, fc, r, time.Second, 2)

	samples := r.Samples()
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	if got := samples[0].At; !got.Equal(epoch.Add(time.Second)) {
		t.Fatalf("first sample at %v", got)
	}
	if got := samples[1].Rec["rpc.client.sent"]; got != uint64(15) {
		t.Fatalf("second sample counter = %v", got)
	}

	// The ring keeps the newest depth samples.
	for i := 0; i < 6; i++ {
		want := 3 + i
		if want > 4 {
			want = 4
		}
		advance(t, fc, r, time.Second, want)
	}
	samples = r.Samples()
	if len(samples) != 4 {
		t.Fatalf("ring holds %d, want depth 4", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if !samples[i].At.After(samples[i-1].At) {
			t.Fatalf("samples out of order: %v", samples)
		}
	}
}

func TestRecorderSeriesRates(t *testing.T) {
	fc := clock.NewFake(epoch)
	src := &countingSource{f: 7.5}
	r := NewRecorder(src.rec, 2*time.Second, WithRecorderClock(fc))
	r.Start()
	defer r.Close()

	s := r.Series()
	if got := s["series.samples"]; got != uint64(0) {
		t.Fatalf("samples before start = %v", got)
	}
	if got := s["series.interval_us"]; got != uint64(2000000) {
		t.Fatalf("interval_us = %v", got)
	}

	src.add(4)
	advance(t, fc, r, 2*time.Second, 1)
	src.add(10)
	advance(t, fc, r, 2*time.Second, 2)

	s = r.Series()
	if got := s["series.window_us"]; got != uint64(2000000) {
		t.Fatalf("window_us = %v", got)
	}
	if got := s["rpc.client.sent_per_sec"]; got != 5.0 {
		t.Fatalf("rate = %v, want 5 (10 more over 2s)", got)
	}
	if _, ok := s["dispatch_p99_per_sec"]; ok {
		t.Fatalf("float gauge was rated: %v", s)
	}
	if _, ok := s["name_per_sec"]; ok {
		t.Fatalf("non-numeric key was rated: %v", s)
	}
}

func TestDeltaRecord(t *testing.T) {
	prev := wire.Record{"a": uint64(10), "b": uint64(3), "gone": uint64(1), "f": 1.5}
	cur := wire.Record{"a": uint64(15), "b": uint64(3), "new": uint64(2), "f": 9.5}
	d := DeltaRecord(prev, cur)
	want := wire.Record{"a": int64(5), "new": int64(2)}
	if len(d) != len(want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Fatalf("delta[%q] = %v, want %v", k, d[k], v)
		}
	}
}

func TestRecorderCloseStopsSampling(t *testing.T) {
	fc := clock.NewFake(epoch)
	src := &countingSource{}
	r := NewRecorder(src.rec, time.Second, WithRecorderClock(fc))
	r.Start()
	advance(t, fc, r, time.Second, 1)
	r.Close()
	n := len(r.Samples())
	fc.Advance(10 * time.Second)
	if got := len(r.Samples()); got != n {
		t.Fatalf("samples after Close: %d, want %d", got, n)
	}
	r.Close() // idempotent
}
