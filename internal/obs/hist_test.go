package obs

import (
	"fmt"
	"testing"
	"time"

	"odp/internal/wire"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		d      time.Duration
		bucket int
	}{
		{-time.Second, 0}, // clamped, not wrapped
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 3},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, HistogramBuckets - 1}, // top bucket absorbs
	}
	for _, c := range cases {
		var h Histogram
		h.Observe(c.d)
		s := h.Snapshot()
		if s.Buckets[c.bucket] != 1 {
			t.Fatalf("Observe(%v): bucket %d empty, snapshot %v", c.d, c.bucket, s.Buckets)
		}
		if s.Count() != 1 {
			t.Fatalf("Observe(%v): count %d", c.d, s.Count())
		}
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(time.Millisecond) // must not panic
	if n := h.Snapshot().Count(); n != 0 {
		t.Fatalf("nil histogram count = %d", n)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations at ~2µs, 10 slow at ~1ms.
	for i := 0; i < 90; i++ {
		h.Observe(2 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 < 1 || p50 > 4 {
		t.Fatalf("p50 = %v, want within the fast bucket [1µs,4µs]", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 512 || p99 > 1024 {
		t.Fatalf("p99 = %v, want within the slow bucket [512µs,1024µs]", p99)
	}
	if q := (HistogramSnapshot{}).Quantile(0.99); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
}

func TestHistogramMergeMatchesCombined(t *testing.T) {
	var a, b, both Histogram
	for i := 0; i < 10; i++ {
		a.Observe(time.Microsecond)
		both.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
		both.Observe(time.Millisecond)
	}
	sa := a.Snapshot()
	sa.Merge(b.Snapshot())
	if sa != both.Snapshot() {
		t.Fatalf("merge mismatch: %v vs %v", sa, both.Snapshot())
	}
}

func TestFoldLatencyKeys(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Microsecond)
	h.Observe(2 * time.Microsecond)
	h.Observe(time.Millisecond)
	rec := wire.Record{}
	FoldLatency(rec, "rpc.server.dispatch", h.Snapshot())
	if got := rec["rpc.server.dispatch_count"]; got != uint64(3) {
		t.Fatalf("count = %v", got)
	}
	if got := rec["rpc.server.dispatch_hist.2"]; got != uint64(2) {
		t.Fatalf("fast bucket = %v", got)
	}
	if got := rec["rpc.server.dispatch_hist.10"]; got != uint64(1) {
		t.Fatalf("slow bucket = %v", got)
	}
	for _, q := range []string{"_p50", "_p90", "_p99"} {
		if _, ok := rec["rpc.server.dispatch"+q].(float64); !ok {
			t.Fatalf("missing quantile %s in %v", q, rec)
		}
	}
	// Zero buckets are not folded: absent means zero, so cross-node sums
	// stay correct without emitting 32 keys per stage.
	if _, ok := rec["rpc.server.dispatch_hist.0"]; ok {
		t.Fatalf("zero bucket folded: %v", rec)
	}

	// An empty histogram folds only its count — no quantile keys to
	// pollute ceilings that treat "missing" as healthy.
	empty := wire.Record{}
	FoldLatency(empty, "x", HistogramSnapshot{})
	if got := empty["x_count"]; got != uint64(0) {
		t.Fatalf("empty count = %v", got)
	}
	if _, ok := empty["x_p99"]; ok {
		t.Fatalf("empty histogram folded quantiles: %v", empty)
	}
}

func TestHistogramKeysRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 5; i++ {
		h.Observe(time.Duration(1<<i) * time.Microsecond)
	}
	rec := wire.Record{}
	FoldLatency(rec, "binder.resolve", h.Snapshot())
	rec["binder.resolve_hist.not-a-bucket"] = uint64(9) // ignored
	rec["unrelated"] = uint64(7)

	got := HistogramKeys(rec)
	if len(got) != 1 {
		t.Fatalf("bases = %v", got)
	}
	if got["binder.resolve"] != h.Snapshot() {
		t.Fatalf("round trip mismatch: %v vs %v", got["binder.resolve"], h.Snapshot())
	}
}

func TestObserveZeroAllocs(t *testing.T) {
	var h Histogram
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(42 * time.Microsecond)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		_ = h.Snapshot()
	}); allocs != 0 {
		t.Fatalf("Snapshot allocates %v per run, want 0", allocs)
	}
}

// histArrayStats mirrors the shape HistogramSnapshot folds through: one
// plain counter beside a bucket array.
type histArrayStats struct {
	Count   uint64
	Buckets [HistogramBuckets]uint64
}

// TestFoldArrayRoundTripsAllCodecs folds an [N]uint64 array field into a
// record and pushes it through every codec the platform speaks —
// binary, text and packed, the packed decode in both copying and alias
// mode — checking the bucket keys survive encode/decode bit-exactly.
// This is the path a remote Gather takes before GatherDomains or odptop
// reassembles the histogram.
func TestFoldArrayRoundTripsAllCodecs(t *testing.T) {
	stats := histArrayStats{Count: 6}
	stats.Buckets[0] = 1
	stats.Buckets[7] = 2
	stats.Buckets[HistogramBuckets-1] = 3

	rec := wire.Record{}
	Fold(rec, "stage", stats)
	if got := rec[fmt.Sprintf("stage.buckets.%d", HistogramBuckets-1)]; got != uint64(3) {
		t.Fatalf("fold missed the top bucket: %v", rec)
	}

	check := func(t *testing.T, got wire.Value) {
		t.Helper()
		dec, ok := got.(wire.Record)
		if !ok {
			t.Fatalf("decoded %T, want wire.Record", got)
		}
		if len(dec) != len(rec) {
			t.Fatalf("decoded %d keys, want %d: %v", len(dec), len(rec), dec)
		}
		for k, v := range rec {
			if dec[k] != v {
				t.Fatalf("key %q = %v after round trip, want %v", k, dec[k], v)
			}
		}
	}

	for _, codec := range []wire.Codec{wire.BinaryCodec{}, wire.TextCodec{}, wire.PackedCodec{}} {
		t.Run(codec.Name(), func(t *testing.T) {
			buf, err := codec.Encode(nil, rec)
			if err != nil {
				t.Fatal(err)
			}
			v, rest, err := codec.Decode(buf)
			if err != nil {
				t.Fatal(err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d trailing bytes", len(rest))
			}
			check(t, v)
		})
	}

	t.Run("ansa-packed/1-alias", func(t *testing.T) {
		c := wire.PackedCodec{}
		buf, err := wire.EncodeAll(c, []wire.Value{rec})
		if err != nil {
			t.Fatal(err)
		}
		vs, err := c.DecodeAllAlias(nil, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1 {
			t.Fatalf("decoded %d values, want 1", len(vs))
		}
		check(t, vs[0])
	})
}
