package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"

	"odp/internal/wire"
)

// HistogramBuckets is the fixed bucket count of every latency histogram:
// 32 power-of-two buckets of microseconds, so bucket 0 holds sub-µs
// observations, bucket i holds [2^(i-1), 2^i) µs, and the top bucket
// absorbs everything from ~2^30 µs (≈18 min) up. The range is wide
// enough for any channel stage the platform times and the count small
// enough to live by value inside each layer's hot structs.
const HistogramBuckets = 32

// Histogram is a fixed-size log-bucketed latency histogram for one
// channel stage. It obeys the same hot-path discipline as the span
// collector: recording is one atomic increment into a pre-sized array —
// zero allocations, no locks, no background goroutine — so every
// instrumented stage (client send→reply, server dispatch, the §4.5
// bypass, binder resolve, coalescer flush queue-delay, trader import)
// can record unconditionally. Timestamps are the caller's, taken from
// the layer's injected clock.Clock, so simulated platforms produce
// deterministic virtual-time distributions. The zero value is ready to
// use; a nil *Histogram discards observations.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Uint64
}

// bucketIndex maps a microsecond latency to its bucket.
func bucketIndex(us uint64) int {
	i := bits.Len64(us)
	if i >= HistogramBuckets {
		i = HistogramBuckets - 1
	}
	return i
}

// Observe records one latency sample. Negative durations (a clock
// stepped backwards) count as zero rather than wrapping to the top
// bucket.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(uint64(d/time.Microsecond))].Add(1)
}

// Snapshot returns a consistent-enough copy of the bucket counts (each
// bucket is read atomically; concurrent observers may land between
// reads, as with every stats snapshot in the platform).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, shaped for
// obs.Fold ([N]uint64 array fields fold as "<key>.<i>") and for
// cross-platform merging: bucket counts from many nodes sum index-wise,
// which is exactly how GatherDomains rolls a federation domain's
// latency distribution up from its members.
type HistogramSnapshot struct {
	// Buckets holds the per-bucket observation counts.
	Buckets [HistogramBuckets]uint64
}

// Count returns the total number of observations.
func (s HistogramSnapshot) Count() uint64 {
	var n uint64
	for _, b := range s.Buckets {
		n += b
	}
	return n
}

// Merge adds o's buckets into s (index-wise sum).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) in microseconds by
// linear interpolation inside the bucket holding the target rank;
// bucket i spans [2^(i-1), 2^i) µs (bucket 0 spans [0, 1)). Returns 0
// for an empty histogram. The estimate is deterministic for a fixed
// bucket array, so simulated runs reproduce quantiles byte-for-byte.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		next := cum + float64(b)
		if rank <= next {
			lo, hi := bucketBounds(i)
			frac := (rank - cum) / float64(b)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(HistogramBuckets - 1)
	return hi
}

// bucketBounds returns bucket i's [lo, hi) range in microseconds.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (i - 1)), float64(uint64(1) << i)
}

// FoldLatency flattens a histogram snapshot into rec under key: the
// non-zero raw buckets as "<key>_hist.<i>" (uint64, summable across
// platforms — absent buckets are zero), the observation count as
// "<key>_count", and when the histogram is non-empty the derived
// "<key>_p50" / "<key>_p90" / "<key>_p99" quantiles as float64
// microseconds. GatherDomains recognises the "_hist." suffix pattern
// and recomputes the quantile keys from domain-summed buckets, so a
// rollup's p99 is the p99 of the merged distribution, not a meaningless
// sum of per-node quantiles.
func FoldLatency(rec wire.Record, key string, s HistogramSnapshot) {
	var total uint64
	for i, b := range s.Buckets {
		if b == 0 {
			continue
		}
		rec[key+histBucketInfix+strconv.Itoa(i)] = b
		total += b
	}
	rec[key+"_count"] = total
	if total > 0 {
		rec[key+"_p50"] = s.Quantile(0.50)
		rec[key+"_p90"] = s.Quantile(0.90)
		rec[key+"_p99"] = s.Quantile(0.99)
	}
}

// histBucketInfix separates a histogram key base from its bucket index
// in folded records; GatherDomains keys its quantile recomputation on
// it.
const histBucketInfix = "_hist."

// HistogramKeys scans a folded record for "<base>_hist.<i>" bucket keys
// and reassembles the snapshots, keyed by base. Out-of-range indices
// and non-uint64 values are ignored. This is the read-side inverse of
// FoldLatency, used by the domain rollup and by renderers (odptop's
// latency columns).
func HistogramKeys(rec wire.Record) map[string]HistogramSnapshot {
	var out map[string]HistogramSnapshot
	for k, v := range rec {
		base, idx, ok := splitHistKey(k)
		if !ok {
			continue
		}
		n, ok := v.(uint64)
		if !ok {
			continue
		}
		if out == nil {
			out = make(map[string]HistogramSnapshot)
		}
		s := out[base]
		s.Buckets[idx] += n
		out[base] = s
	}
	return out
}

// splitHistKey decomposes "<base>_hist.<i>" into (base, i).
func splitHistKey(k string) (base string, idx int, ok bool) {
	at := len(k) - 1
	for at >= 0 && k[at] >= '0' && k[at] <= '9' {
		at--
	}
	digits := k[at+1:]
	if digits == "" || at < len(histBucketInfix)-1 {
		return "", 0, false
	}
	if k[at+1-len(histBucketInfix):at+1] != histBucketInfix {
		return "", 0, false
	}
	n, err := strconv.Atoi(digits)
	if err != nil || n < 0 || n >= HistogramBuckets {
		return "", 0, false
	}
	return k[:at+1-len(histBucketInfix)], n, true
}
