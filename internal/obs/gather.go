package obs

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"odp/internal/wire"
)

// Fold flattens the exported uint64 (and [N]uint64 histogram) fields of a
// stats struct into rec under prefix, converting CamelCase field names to
// snake_case: ClientStats.AcksPiggybacked folded under "rpc.client"
// becomes "rpc.client.acks_piggybacked". Every per-layer stats struct in
// the platform (client/server/binder/coalescer/gc/group) is shaped for
// this, which is what lets the management interface expose one unified
// namespace instead of n bespoke snapshot ops.
func Fold(rec wire.Record, prefix string, stats interface{}) {
	v := reflect.ValueOf(stats)
	for v.Kind() == reflect.Ptr {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		return
	}
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if f.PkgPath != "" { // unexported
			continue
		}
		key := prefix + "." + snakeCase(f.Name)
		fv := v.Field(i)
		switch {
		case fv.Kind() == reflect.Uint64:
			rec[key] = fv.Uint()
		case fv.Kind() == reflect.Array && fv.Type().Elem().Kind() == reflect.Uint64:
			for j := 0; j < fv.Len(); j++ {
				rec[fmt.Sprintf("%s.%d", key, j)] = fv.Index(j).Uint()
			}
		}
	}
}

// snakeCase converts an exported Go field name to its metric key form.
func snakeCase(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 4)
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// Record renders the span as a wire record so the management interface
// can ship it to a remote inspector (odptop). Timestamps travel as
// UnixNano so virtual-clock spans round-trip exactly.
func (s Span) Record() wire.Record {
	return wire.Record{
		"trace":  s.TraceID,
		"span":   s.SpanID,
		"parent": s.ParentID,
		"kind":   s.Kind,
		"name":   s.Name,
		"node":   s.Node,
		"start":  s.Start.UnixNano(),
		"end":    s.End.UnixNano(),
	}
}

// SpanFromRecord is the inverse of Span.Record. Missing or mistyped
// fields decode to zero values; a record without a trace id yields an
// invalid span the caller can drop.
func SpanFromRecord(rec wire.Record) Span {
	u := func(k string) uint64 { v, _ := rec[k].(uint64); return v }
	str := func(k string) string { v, _ := rec[k].(string); return v }
	ns := func(k string) time.Time { v, _ := rec[k].(int64); return time.Unix(0, v).UTC() }
	return Span{
		TraceID:  u("trace"),
		SpanID:   u("span"),
		ParentID: u("parent"),
		Kind:     str("kind"),
		Name:     str("name"),
		Node:     str("node"),
		Start:    ns("start"),
		End:      ns("end"),
	}
}

// SpansToList renders a span snapshot as a wire list of records.
func SpansToList(spans []Span) wire.List {
	out := make(wire.List, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.Record())
	}
	return out
}

// SpansFromList decodes a wire list produced by SpansToList, dropping
// anything malformed.
func SpansFromList(l wire.List) []Span {
	out := make([]Span, 0, len(l))
	for _, v := range l {
		rec, ok := v.(wire.Record)
		if !ok {
			continue
		}
		if s := SpanFromRecord(rec); s.TraceID != 0 {
			out = append(out, s)
		}
	}
	return out
}

// FormatForest renders spans (possibly merged from several nodes) as a
// deterministic ASCII forest: one tree per trace id, children indented
// under parents, siblings ordered by start instant then span id. Spans
// whose parent is absent from the set (still in flight, or evicted from
// a ring) are promoted to roots of their trace so nothing is silently
// dropped. The output is byte-stable for a fixed span set — the sim
// determinism test hashes it.
func FormatForest(spans []Span) string {
	if len(spans) == 0 {
		return ""
	}
	sorted := append([]Span(nil), spans...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.TraceID != b.TraceID {
			return a.TraceID < b.TraceID
		}
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.SpanID < b.SpanID
	})

	present := make(map[uint64]bool, len(sorted))
	for _, s := range sorted {
		present[s.SpanID] = true
	}
	children := make(map[uint64][]Span)
	var roots []Span
	for _, s := range sorted {
		if s.ParentID != 0 && present[s.ParentID] && s.ParentID != s.SpanID {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}

	var b strings.Builder
	var lastTrace uint64
	var render func(s Span, depth int)
	render = func(s Span, depth int) {
		for i := 0; i < depth; i++ {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s %s@%s [%016x/%016x] %s +%s\n",
			s.Kind, s.Name, s.Node, s.TraceID, s.SpanID,
			s.Start.UTC().Format(time.RFC3339Nano), s.Duration())
		for _, c := range children[s.SpanID] {
			render(c, depth+1)
		}
	}
	for _, r := range roots {
		if r.TraceID != lastTrace {
			if lastTrace != 0 {
				b.WriteByte('\n')
			}
			fmt.Fprintf(&b, "trace %016x\n", r.TraceID)
			lastTrace = r.TraceID
		}
		render(r, 1)
	}
	return b.String()
}
