// Package obs is the channel-level observability layer: low-overhead
// distributed tracing and unified metrics introspection.
//
// The paper's engineering model decomposes every binding into an explicit
// channel of stub/binder/protocol objects (§6) and makes node management
// a first-class function (§7). This package is the measurement substrate
// for both: a Collector records spans emitted by the channel objects an
// invocation actually traversed — stub, binder resolve, protocol
// send/retransmit/ack, coalescer flush, server dispatch, and the
// co-located bypass — so a test or an operator can *see* which
// transparency path ran, and Fold renders every per-layer stats struct
// into one management-interface namespace.
//
// Tracing is one more channel function, installed like any transparency
// interceptor, and it obeys the platform's hot-path discipline:
//
//   - no background goroutine: completed spans go into a fixed-size ring
//     owned by the collector, oldest overwritten;
//   - timestamps come from an injected clock.Clock, so simulated
//     platforms produce virtual-time spans and deterministic trees;
//   - unsampled calls cost a few atomic loads and zero allocations
//     (Begin returns nil, End of nil is a no-op — gated by test);
//   - sampled spans are drawn from a sync.Pool and returned on End.
//
// Span identifiers are deterministic per collector: the top bits derive
// from the node name, the low bits from a counter, so a seeded simulation
// replays byte-identical span trees and two nodes can never mint the same
// id.
package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/clock"
)

// Span kinds, one per instrumented channel object. Kind strings appear in
// rendered trees and management snapshots; tests assert on them.
const (
	// KindStub is the client stub: the root of a traced invocation.
	KindStub = "stub"
	// KindBypass is the §4.5 co-located fast path — recorded as its own
	// kind so tests can assert *which* path an invocation took.
	KindBypass = "bypass"
	// KindResolve is a binder consultation of the relocation service.
	KindResolve = "binder.resolve"
	// KindSend covers one protocol interrogation at the client.
	KindSend = "rpc.send"
	// KindRetransmit marks one request retransmission.
	KindRetransmit = "rpc.retransmit"
	// KindAck marks the client acknowledging a reply.
	KindAck = "rpc.ack"
	// KindAnnounce covers one protocol announcement at the client.
	KindAnnounce = "rpc.announce"
	// KindDispatch covers handler execution at the server.
	KindDispatch = "rpc.dispatch"
	// KindReject marks a traced request shed by server-side admission
	// control before dispatch (the busy reply carries no trace block, so
	// the event is the only span the rejected invocation leaves).
	KindReject = "rpc.reject"
	// KindFlush covers one coalescer batch write (infrastructure span:
	// it belongs to no invocation trace).
	KindFlush = "coalescer.flush"
)

// SpanContext is the propagated identity of a live span: enough for a
// child (possibly on another node) to attach to it. The zero value means
// "no trace": unsampled, nothing on the wire.
type SpanContext struct {
	// TraceID identifies the whole tree (the root span's own id).
	TraceID uint64
	// SpanID identifies the parent span for children created under it.
	SpanID uint64
}

// Valid reports whether the context names a live trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Span is one completed (or in-flight) operation interval.
type Span struct {
	// TraceID groups every span of one invocation tree.
	TraceID uint64
	// SpanID is this span's unique id.
	SpanID uint64
	// ParentID is the parent span's id (0 for roots).
	ParentID uint64
	// Kind is the channel object that emitted the span (Kind* constants).
	Kind string
	// Name is the operation (or destination) the span covers.
	Name string
	// Node is the emitting collector's node name.
	Node string
	// Start and End bound the interval, on the collector's clock.
	Start time.Time
	End   time.Time
}

// Context returns the span's propagation context. Nil-safe: an unsampled
// (nil) span yields the zero context, so child layers stay untraced.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, SpanID: s.SpanID}
}

// Duration is the span's measured interval.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// CollectorStats counts collector events for the unified snapshot.
type CollectorStats struct {
	// Roots counts sampling decisions taken (root Begin attempts).
	Roots uint64
	// Sampled counts roots that were actually sampled.
	Sampled uint64
	// Recorded counts spans committed to the ring (including events).
	Recorded uint64
}

// Collector records spans for one platform. The zero-size knobs make the
// unsampled path free: a nil *Collector is a valid "tracing off"
// collector whose every method no-ops.
type Collector struct {
	node   string
	clk    clock.Clock
	idBase uint64

	nextID  atomic.Uint64
	every   atomic.Uint64 // sample 1-in-every roots; 0 = never
	roots   atomic.Uint64
	sampled atomic.Uint64

	pool sync.Pool

	mu       sync.Mutex
	ring     []Span
	pos      int
	count    int
	recorded uint64
}

// CollectorOption configures NewCollector.
type CollectorOption func(*Collector)

// WithCollectorClock sets the clock stamping span intervals. Default
// clock.Real{}.
func WithCollectorClock(clk clock.Clock) CollectorOption {
	return func(c *Collector) {
		if clk != nil {
			c.clk = clk
		}
	}
}

// WithSampleEvery sets the root sampling rate: 1 samples every
// invocation, n samples one in n, 0 disables tracing (the default — a
// collector observes nothing until told to sample).
func WithSampleEvery(n uint64) CollectorOption {
	return func(c *Collector) { c.every.Store(n) }
}

// WithRingSize sets how many completed spans are retained (default 1024).
func WithRingSize(n int) CollectorOption {
	return func(c *Collector) {
		if n > 0 {
			c.ring = make([]Span, n)
		}
	}
}

// defaultRingSize bounds the retained-span footprint per platform.
const defaultRingSize = 1024

// NewCollector creates a collector for the named node.
func NewCollector(node string, opts ...CollectorOption) *Collector {
	c := &Collector{
		node:   node,
		clk:    clock.Real{},
		idBase: idBaseFor(node),
	}
	c.pool.New = func() interface{} { return new(Span) }
	for _, o := range opts {
		o(c)
	}
	if c.ring == nil {
		c.ring = make([]Span, defaultRingSize)
	}
	return c
}

// idBaseFor derives the top 16 bits of every span id from the node name
// (FNV-1a folded), so ids are deterministic per name and two differently
// named nodes cannot collide. The base is never zero: a zero TraceID
// means "unsampled".
func idBaseFor(node string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	hi := (h >> 48) ^ (h >> 32 & 0xffff) ^ (h >> 16 & 0xffff) ^ (h & 0xffff)
	if hi == 0 {
		hi = 1
	}
	return hi << 48
}

// Node returns the collector's node name.
func (c *Collector) Node() string {
	if c == nil {
		return ""
	}
	return c.node
}

// SetSampleEvery changes the root sampling rate at run time (the
// management interface exposes it as a tunable parameter).
func (c *Collector) SetSampleEvery(n uint64) {
	if c != nil {
		c.every.Store(n)
	}
}

// SampleEvery reads the current sampling rate.
func (c *Collector) SampleEvery() uint64 {
	if c == nil {
		return 0
	}
	return c.every.Load()
}

// nextSpanID mints a fresh id under the node's base.
func (c *Collector) nextSpanID() uint64 {
	return c.idBase | (c.nextID.Add(1) & 0xFFFFFFFFFFFF)
}

// Begin starts a new root span, subject to the sampling knob. It returns
// nil when the collector is nil or the root is not sampled; every
// downstream layer then sees an invalid SpanContext and stays silent at
// zero cost. The caller must pass the result to End on every return path.
func (c *Collector) Begin(kind, name string) *Span {
	if c == nil {
		return nil
	}
	every := c.every.Load()
	if every == 0 {
		return nil
	}
	n := c.roots.Add(1)
	if every > 1 && (n-1)%every != 0 {
		return nil
	}
	c.sampled.Add(1)
	sp := c.pool.Get().(*Span)
	id := c.nextSpanID()
	*sp = Span{
		TraceID: id,
		SpanID:  id,
		Kind:    kind,
		Name:    name,
		Node:    c.node,
		Start:   c.clk.Now(),
	}
	return sp
}

// BeginChild starts a span under parent. It returns nil when the
// collector is nil or the parent context is invalid (the trace was not
// sampled), so child layers never originate traces of their own. The
// caller must pass the result to End on every return path.
func (c *Collector) BeginChild(parent SpanContext, kind, name string) *Span {
	if c == nil || !parent.Valid() {
		return nil
	}
	sp := c.pool.Get().(*Span)
	*sp = Span{
		TraceID:  parent.TraceID,
		SpanID:   c.nextSpanID(),
		ParentID: parent.SpanID,
		Kind:     kind,
		Name:     name,
		Node:     c.node,
		Start:    c.clk.Now(),
	}
	return sp
}

// End completes sp: stamps the end instant, commits a copy to the ring
// and returns the span to the pool. Nil-safe (ending an unsampled span
// is free), so call sites need no branches.
func (c *Collector) End(sp *Span) {
	if c == nil || sp == nil {
		return
	}
	sp.End = c.clk.Now()
	c.commit(*sp)
	*sp = Span{}
	c.pool.Put(sp)
}

// Event records an instantaneous span under parent (a retransmission, an
// ack): Begin and End collapsed into one ring commit, nothing to leak.
// No-op when the collector is nil or the parent is invalid.
func (c *Collector) Event(parent SpanContext, kind, name string) {
	if c == nil || !parent.Valid() {
		return
	}
	now := c.clk.Now()
	c.commit(Span{
		TraceID:  parent.TraceID,
		SpanID:   c.nextSpanID(),
		ParentID: parent.SpanID,
		Kind:     kind,
		Name:     name,
		Node:     c.node,
		Start:    now,
		End:      now,
	})
}

func (c *Collector) commit(s Span) {
	c.mu.Lock()
	c.ring[c.pos] = s
	c.pos++
	if c.pos == len(c.ring) {
		c.pos = 0
	}
	if c.count < len(c.ring) {
		c.count++
	}
	c.recorded++
	c.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (c *Collector) Snapshot() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, 0, c.count)
	start := c.pos - c.count
	if start < 0 {
		start += len(c.ring)
	}
	for i := 0; i < c.count; i++ {
		out = append(out, c.ring[(start+i)%len(c.ring)])
	}
	return out
}

// Stats returns a snapshot of collector counters.
func (c *Collector) Stats() CollectorStats {
	if c == nil {
		return CollectorStats{}
	}
	c.mu.Lock()
	recorded := c.recorded
	c.mu.Unlock()
	return CollectorStats{
		Roots:    c.roots.Load(),
		Sampled:  c.sampled.Load(),
		Recorded: recorded,
	}
}
