package obs

import (
	"context"
	"strings"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/wire"
)

var epoch = time.Date(1991, time.October, 7, 0, 0, 0, 0, time.UTC)

func newTestCollector(name string, every uint64) (*Collector, *clock.Fake) {
	fake := clock.NewFake(epoch)
	return NewCollector(name, WithCollectorClock(fake), WithSampleEvery(every)), fake
}

func TestNilCollectorIsFree(t *testing.T) {
	var c *Collector
	sp := c.Begin(KindStub, "op")
	if sp != nil {
		t.Fatal("nil collector began a span")
	}
	c.End(sp)
	c.Event(sp.Context(), KindAck, "op")
	if got := c.Snapshot(); got != nil {
		t.Fatalf("nil collector snapshot = %v", got)
	}
	if c.SampleEvery() != 0 || c.Node() != "" {
		t.Fatal("nil collector accessors not zero")
	}
}

func TestSpanTreeAndRing(t *testing.T) {
	c, fake := newTestCollector("node-a", 1)
	root := c.Begin(KindStub, "get")
	if root == nil {
		t.Fatal("sampled root is nil")
	}
	if root.TraceID != root.SpanID || root.TraceID == 0 {
		t.Fatalf("root ids: trace=%x span=%x", root.TraceID, root.SpanID)
	}
	fake.Advance(time.Millisecond)
	child := c.BeginChild(root.Context(), KindSend, "get")
	if child.TraceID != root.TraceID || child.ParentID != root.SpanID {
		t.Fatalf("child not under root: %+v", child)
	}
	c.Event(child.Context(), KindRetransmit, "get")
	fake.Advance(time.Millisecond)
	c.End(child)
	c.End(root)

	spans := c.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("snapshot len = %d, want 3", len(spans))
	}
	// Ring order is completion order: event, child, root.
	if spans[0].Kind != KindRetransmit || spans[1].Kind != KindSend || spans[2].Kind != KindStub {
		t.Fatalf("ring order: %s %s %s", spans[0].Kind, spans[1].Kind, spans[2].Kind)
	}
	if spans[1].Duration() != time.Millisecond {
		t.Fatalf("child duration = %v", spans[1].Duration())
	}
	if spans[2].Duration() != 2*time.Millisecond {
		t.Fatalf("root duration = %v", spans[2].Duration())
	}
	st := c.Stats()
	if st.Roots != 1 || st.Sampled != 1 || st.Recorded != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSampling(t *testing.T) {
	c, _ := newTestCollector("node-a", 3)
	var sampled int
	for i := 0; i < 9; i++ {
		if sp := c.Begin(KindStub, "op"); sp != nil {
			sampled++
			c.End(sp)
		}
	}
	if sampled != 3 {
		t.Fatalf("sampled %d of 9 with every=3", sampled)
	}
	c.SetSampleEvery(0)
	if sp := c.Begin(KindStub, "op"); sp != nil {
		t.Fatal("began a span with sampling off")
	}
	if c.BeginChild(SpanContext{}, KindSend, "op") != nil {
		t.Fatal("began a child under an invalid parent")
	}
}

func TestRingEviction(t *testing.T) {
	c, _ := newTestCollector("node-a", 1)
	// Shrink via option on a fresh collector.
	c = NewCollector("node-a", WithSampleEvery(1), WithRingSize(4),
		WithCollectorClock(clock.NewFake(epoch)))
	for i := 0; i < 6; i++ {
		c.End(c.Begin(KindStub, string(rune('a'+i))))
	}
	spans := c.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring kept %d, want 4", len(spans))
	}
	if spans[0].Name != "c" || spans[3].Name != "f" {
		t.Fatalf("oldest/newest = %s/%s, want c/f", spans[0].Name, spans[3].Name)
	}
}

func TestDeterministicIDs(t *testing.T) {
	run := func() []Span {
		c, _ := newTestCollector("node-a", 1)
		root := c.Begin(KindStub, "op")
		c.End(c.BeginChild(root.Context(), KindSend, "op"))
		c.End(root)
		return c.Snapshot()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	ca, _ := newTestCollector("node-a", 1)
	cb, _ := newTestCollector("node-b", 1)
	if ca.Begin(KindStub, "op").SpanID == cb.Begin(KindStub, "op").SpanID {
		t.Fatal("two nodes minted the same span id")
	}
}

func TestContextPropagation(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx).Valid() {
		t.Fatal("empty context carries a span")
	}
	sc := SpanContext{TraceID: 7, SpanID: 9}
	if got := FromContext(ContextWith(ctx, sc)); got != sc {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestFoldSnakeCase(t *testing.T) {
	type fakeStats struct {
		Calls           uint64
		AcksPiggybacked uint64
		FramesPerBatch  [3]uint64
		hidden          uint64
		Name            string // non-uint64: skipped
	}
	_ = fakeStats{hidden: 1}.hidden
	rec := wire.Record{}
	Fold(rec, "rpc.client", fakeStats{Calls: 2, AcksPiggybacked: 5, FramesPerBatch: [3]uint64{1, 0, 4}})
	want := wire.Record{
		"rpc.client.calls":              uint64(2),
		"rpc.client.acks_piggybacked":   uint64(5),
		"rpc.client.frames_per_batch.0": uint64(1),
		"rpc.client.frames_per_batch.1": uint64(0),
		"rpc.client.frames_per_batch.2": uint64(4),
	}
	if !wire.Equal(rec, want) {
		t.Fatalf("fold = %v, want %v", rec, want)
	}
	// Pointer and nil-pointer folding.
	rec2 := wire.Record{}
	Fold(rec2, "x", &fakeStats{Calls: 1})
	if rec2["x.calls"] != uint64(1) {
		t.Fatalf("pointer fold = %v", rec2)
	}
	Fold(rec2, "y", (*fakeStats)(nil))
	Fold(rec2, "z", 42)
}

func TestSpanRecordRoundTrip(t *testing.T) {
	s := Span{
		TraceID: 1, SpanID: 2, ParentID: 3,
		Kind: KindSend, Name: "get", Node: "n",
		Start: epoch, End: epoch.Add(time.Millisecond),
	}
	got := SpanFromRecord(s.Record())
	if got != s {
		t.Fatalf("round trip = %+v, want %+v", got, s)
	}
	list := SpansToList([]Span{s})
	back := SpansFromList(list)
	if len(back) != 1 || back[0] != s {
		t.Fatalf("list round trip = %+v", back)
	}
	// Malformed entries drop silently.
	if got := SpansFromList(wire.List{"junk", wire.Record{}}); len(got) != 0 {
		t.Fatalf("malformed entries kept: %v", got)
	}
}

func TestFormatForest(t *testing.T) {
	c, fake := newTestCollector("a", 1)
	root := c.Begin(KindStub, "get")
	fake.Advance(time.Millisecond)
	send := c.BeginChild(root.Context(), KindSend, "get")
	c.Event(send.Context(), KindRetransmit, "get")
	c.End(send)
	c.End(root)
	other := c.Begin(KindStub, "put")
	c.End(other)

	out := FormatForest(c.Snapshot())
	if strings.Count(out, "trace ") != 2 {
		t.Fatalf("want 2 trees:\n%s", out)
	}
	// The retransmit event renders indented two levels under the root.
	if !strings.Contains(out, "      rpc.retransmit get@a") {
		t.Fatalf("retransmit not nested under send:\n%s", out)
	}
	if out != FormatForest(c.Snapshot()) {
		t.Fatal("formatting is not deterministic")
	}
	if FormatForest(nil) != "" {
		t.Fatal("empty forest not empty")
	}
	// An orphan (parent evicted) is promoted to a root, not dropped.
	orphan := []Span{{TraceID: 5, SpanID: 6, ParentID: 99, Kind: KindDispatch, Name: "x", Node: "b", Start: epoch, End: epoch}}
	if !strings.Contains(FormatForest(orphan), "rpc.dispatch x@b") {
		t.Fatal("orphan span dropped")
	}
}

func TestUnsampledBeginAllocFree(t *testing.T) {
	c, _ := newTestCollector("node-a", 0)
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		sp := c.Begin(KindStub, "op")
		if sp != nil {
			ctx = ContextWith(ctx, sp.Context())
		}
		c.End(sp)
		_ = FromContext(ctx)
	}); n != 0 {
		t.Fatalf("unsampled path allocates %v/op", n)
	}
}
