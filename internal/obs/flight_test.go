package obs

import (
	"strings"
	"testing"
	"time"

	"odp/internal/wire"
)

// feed drives a flight recorder by hand: the tests exercise rule
// semantics through the same observe hook the recorder calls, with
// samples spaced one second apart from the obs test epoch.
type feed struct {
	f    *FlightRecorder
	prev Sample
	n    int
}

func newFeed(rules []Rule, opts ...FlightOption) *feed {
	r := NewRecorder(func() wire.Record { return nil }, time.Second)
	return &feed{f: NewFlightRecorder(r, nil, rules, opts...)}
}

func (fd *feed) push(rec wire.Record) {
	fd.n++
	cur := Sample{At: epoch.Add(time.Duration(fd.n) * time.Second), Rec: rec}
	fd.f.observe(fd.prev, cur, fd.n > 1)
	fd.prev = cur
}

func TestCeilingRuleEdgeTriggered(t *testing.T) {
	fd := newFeed([]Rule{CeilingRule("p99", "dispatch_p99", 100)})

	fd.push(wire.Record{"dispatch_p99": 50.0})
	fd.push(wire.Record{"dispatch_p99": 150.0}) // excursion starts: breach
	fd.push(wire.Record{"dispatch_p99": 200.0}) // still the same excursion
	fd.push(wire.Record{"dispatch_p99": 80.0})  // recovers: re-arms
	fd.push(wire.Record{"dispatch_p99": 101.0}) // second excursion: breach
	fd.push(wire.Record{})                      // key gone: re-arms
	fd.push(wire.Record{"dispatch_p99": 500.0}) // third excursion: breach

	reps := fd.f.Reports()
	if len(reps) != 3 {
		t.Fatalf("reports = %d, want 3 edge-triggered breaches", len(reps))
	}
	if reps[0].Value != 150 || reps[1].Value != 101 || reps[2].Value != 500 {
		t.Fatalf("breach values = %v %v %v", reps[0].Value, reps[1].Value, reps[2].Value)
	}
	for i, r := range reps {
		if r.Seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, r.Seq)
		}
		if r.Rule.Name != "p99" {
			t.Fatalf("rule = %q", r.Rule.Name)
		}
		if r.Window != time.Second {
			t.Fatalf("window = %v", r.Window)
		}
	}
	st := fd.f.Stats()
	if st.Breaches != 3 || st.Retained != 3 || st.Rules != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStallRuleFiresAfterQuietWindows(t *testing.T) {
	fd := newFeed([]Rule{StallRule("stuck", "requests", 3)})

	fd.push(wire.Record{"requests": uint64(10)})
	fd.push(wire.Record{"requests": uint64(11)}) // moving
	fd.push(wire.Record{"requests": uint64(11)}) // quiet 1
	fd.push(wire.Record{"requests": uint64(11)}) // quiet 2
	if n := len(fd.f.Reports()); n != 0 {
		t.Fatalf("fired after 2 quiet windows: %d reports", n)
	}
	fd.push(wire.Record{"requests": uint64(11)}) // quiet 3: breach
	reps := fd.f.Reports()
	if len(reps) != 1 {
		t.Fatalf("reports = %d, want 1", len(reps))
	}
	if reps[0].Value != 11 {
		t.Fatalf("stuck value = %v", reps[0].Value)
	}

	// The counter resets after firing: three more quiet windows, not
	// one, produce the next report.
	fd.push(wire.Record{"requests": uint64(11)})
	fd.push(wire.Record{"requests": uint64(11)})
	if n := len(fd.f.Reports()); n != 1 {
		t.Fatalf("refired early: %d reports", n)
	}
	fd.push(wire.Record{"requests": uint64(11)})
	if n := len(fd.f.Reports()); n != 2 {
		t.Fatalf("reports after reset cycle = %d, want 2", n)
	}

	// Movement clears the run.
	fd.push(wire.Record{"requests": uint64(12)})
	fd.push(wire.Record{"requests": uint64(12)})
	fd.push(wire.Record{"requests": uint64(12)})
	if n := len(fd.f.Reports()); n != 2 {
		t.Fatalf("quiet run survived movement: %d reports", n)
	}
}

func TestFlightRingBounded(t *testing.T) {
	fd := newFeed([]Rule{CeilingRule("c", "v", 0)}, WithFlightDepth(2))
	for i := 1; i <= 5; i++ {
		fd.push(wire.Record{"v": float64(i)}) // breach
		fd.push(wire.Record{})                // re-arm
	}
	reps := fd.f.Reports()
	if len(reps) != 2 {
		t.Fatalf("retained = %d, want 2", len(reps))
	}
	if reps[0].Seq != 4 || reps[1].Seq != 5 {
		t.Fatalf("retained seqs = %d, %d, want the newest two", reps[0].Seq, reps[1].Seq)
	}
	if st := fd.f.Stats(); st.Breaches != 5 || st.Retained != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreachReportFormatDeterministic(t *testing.T) {
	build := func() string {
		fd := newFeed([]Rule{CeilingRule("p99", "dispatch_p99", 100)})
		fd.push(wire.Record{"dispatch_p99": 50.0, "requests": uint64(10), "errs": uint64(0)})
		fd.push(wire.Record{"dispatch_p99": 250.5, "requests": uint64(17), "errs": uint64(2)})
		reps := fd.f.Reports()
		if len(reps) != 1 {
			t.Fatalf("reports = %d", len(reps))
		}
		return reps[0].Format()
	}
	a, b := build(), build()
	if a != b {
		t.Fatalf("Format not byte-stable:\n%s\nvs\n%s", a, b)
	}
	for _, want := range []string{
		"blackbox #1 rule=p99 key=dispatch_p99 value=250.5",
		"window=1s",
		"delta errs +2",
		"delta requests +7",
	} {
		if !strings.Contains(a, want) {
			t.Fatalf("Format missing %q:\n%s", want, a)
		}
	}
	// Sorted delta keys: errs before requests.
	if strings.Index(a, "delta errs") > strings.Index(a, "delta requests") {
		t.Fatalf("delta keys unsorted:\n%s", a)
	}
}

func TestBreachReportRecordRoundTrip(t *testing.T) {
	fd := newFeed([]Rule{CeilingRule("p99", "dispatch_p99", 100)})
	fd.push(wire.Record{"dispatch_p99": 50.0})
	fd.push(wire.Record{"dispatch_p99": 300.0})
	list := fd.f.ReportsList()
	if len(list) != 1 {
		t.Fatalf("list = %d", len(list))
	}
	rec, ok := list[0].(wire.Record)
	if !ok {
		t.Fatalf("entry is %T", list[0])
	}
	if rec["rule"] != "p99" || rec["seq"] != uint64(1) || rec["value"] != 300.0 {
		t.Fatalf("record = %v", rec)
	}
	text, _ := rec["text"].(string)
	if !strings.HasPrefix(text, "blackbox #1 ") {
		t.Fatalf("text = %q", text)
	}
	// The record must survive a codec round trip: "blackbox" is a remote
	// management op.
	buf, err := wire.BinaryCodec{}.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := wire.BinaryCodec{}.Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := back.(wire.Record); got["text"] != text {
		t.Fatalf("text after round trip = %q", got["text"])
	}
}
