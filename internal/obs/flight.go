package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"odp/internal/wire"
)

// Rule is one armed service-level objective, evaluated against every
// Recorder sample. Two shapes exist: a ceiling (breach when the watched
// Gather key exceeds Max — a dispatch p99 ceiling arms against
// "rpc.server.dispatch_p99") and a zero-progress stall (breach when the
// watched counter advances by nothing for StallWindows consecutive
// samples — liveness, not latency). Build rules with CeilingRule and
// StallRule.
type Rule struct {
	// Name labels the rule in breach reports.
	Name string
	// Key is the Gather key the rule watches.
	Key string
	// Max is the ceiling; the rule breaches when the key's value
	// exceeds it. Ignored for stall rules.
	Max float64
	// StallWindows, when > 0, makes this a stall rule: breach after
	// this many consecutive samples with zero movement on Key.
	StallWindows int
}

// CeilingRule arms a maximum on a Gather key (latency quantiles,
// queue depths).
func CeilingRule(name, key string, max float64) Rule {
	return Rule{Name: name, Key: key, Max: max}
}

// StallRule arms a zero-progress watchdog on a counter key: windows
// consecutive samples without movement is a breach.
func StallRule(name, key string, windows int) Rule {
	if windows < 1 {
		windows = 1
	}
	return Rule{Name: name, Key: key, StallWindows: windows}
}

// stall reports the rule's shape.
func (r Rule) stall() bool { return r.StallWindows > 0 }

// BreachReport is the black box captured when a rule fires: what
// triggered, when, the numeric movement of the breaching window, and
// the last spans the collector retained — enough to reconstruct what
// the node was doing without having had a debugger attached. Every
// field is deterministic under the fake clock, so a seeded simulation
// reproduces reports byte-for-byte (Format output included).
type BreachReport struct {
	// Seq numbers reports in capture order, starting at 1.
	Seq uint64
	// Rule is the objective that fired.
	Rule Rule
	// At is the sample instant that breached.
	At time.Time
	// Value is the watched key's value at capture (for stall rules,
	// the stuck counter's value).
	Value float64
	// Window is the breaching window's width (zero on a first sample).
	Window time.Duration
	// Delta is the numeric movement across the breaching window
	// (DeltaRecord of its two samples).
	Delta wire.Record
	// Spans are the most recent spans at capture, oldest first.
	Spans []Span
}

// Format renders the report as byte-stable text: fixed field order,
// sorted delta keys, and the span forest rendered by FormatForest. Sim
// scenarios assert on this exactly like trace hashes.
func (r BreachReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blackbox #%d rule=%s key=%s value=%s at=%s window=%s\n",
		r.Seq, r.Rule.Name, r.Rule.Key,
		strconv.FormatFloat(r.Value, 'g', -1, 64),
		r.At.UTC().Format(time.RFC3339Nano), r.Window)
	keys := make([]string, 0, len(r.Delta))
	for k := range r.Delta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "  delta %s %+d\n", k, r.Delta[k])
	}
	if forest := FormatForest(r.Spans); forest != "" {
		b.WriteString("  spans:\n")
		for _, line := range strings.Split(strings.TrimRight(forest, "\n"), "\n") {
			b.WriteString("  ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Record renders the report for the management "blackbox" op. The
// structured fields travel beside the pre-rendered deterministic text,
// so a remote inspector can either parse or print verbatim.
func (r BreachReport) Record() wire.Record {
	return wire.Record{
		"seq":       r.Seq,
		"rule":      r.Rule.Name,
		"key":       r.Rule.Key,
		"value":     r.Value,
		"at":        r.At.UnixNano(),
		"window_us": uint64(r.Window / time.Microsecond),
		"delta":     r.Delta,
		"spans":     SpansToList(r.Spans),
		"text":      r.Format(),
	}
}

// FlightStats counts flight-recorder activity for the unified snapshot
// (folded under "blackbox").
type FlightStats struct {
	// Breaches counts rule firings since start.
	Breaches uint64
	// Retained counts reports currently held in the ring.
	Retained uint64
	// Rules counts armed rules.
	Rules uint64
}

// FlightRecorder is the anomaly watchdog: it evaluates armed rules
// against every Recorder sample and, on a breach, captures a
// BreachReport into a bounded ring fetchable via the management
// "blackbox" op. Ceiling rules are edge-triggered — one report per
// excursion above the ceiling, re-armed when the value recovers — and
// stall rules re-arm after firing, so a persistent anomaly fills the
// ring with distinct excursions instead of one report per sample.
type FlightRecorder struct {
	col   *Collector
	rules []Rule
	spanN int

	mu        sync.Mutex
	ring      []BreachReport
	pos       int
	count     int
	seq       uint64
	tripped   []bool // ceiling rules: currently above the ceiling
	stallRuns []int  // stall rules: consecutive zero-delta windows
}

// FlightOption configures NewFlightRecorder.
type FlightOption func(*FlightRecorder)

// WithFlightDepth sets how many breach reports are retained (default 8).
func WithFlightDepth(n int) FlightOption {
	return func(f *FlightRecorder) {
		if n > 0 {
			f.ring = make([]BreachReport, n)
		}
	}
}

// WithFlightSpanLimit sets how many trailing spans a report captures
// (default 16).
func WithFlightSpanLimit(n int) FlightOption {
	return func(f *FlightRecorder) {
		if n > 0 {
			f.spanN = n
		}
	}
}

const (
	defaultFlightDepth     = 8
	defaultFlightSpanLimit = 16
)

// NewFlightRecorder arms rules against rec's samples. col supplies the
// span ring for reports; nil (an untraced node) yields span-less
// reports.
func NewFlightRecorder(rec *Recorder, col *Collector, rules []Rule, opts ...FlightOption) *FlightRecorder {
	f := &FlightRecorder{
		col:       col,
		rules:     append([]Rule(nil), rules...),
		spanN:     defaultFlightSpanLimit,
		tripped:   make([]bool, len(rules)),
		stallRuns: make([]int, len(rules)),
	}
	for _, o := range opts {
		o(f)
	}
	if f.ring == nil {
		f.ring = make([]BreachReport, defaultFlightDepth)
	}
	rec.OnSample(f.observe)
	return f
}

// observe evaluates every rule against one fresh sample. Runs on the
// recorder's sampling goroutine.
func (f *FlightRecorder) observe(prev, cur Sample, hasPrev bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, rule := range f.rules {
		if rule.stall() {
			if !hasPrev {
				continue
			}
			cv, _ := toInt(cur.Rec[rule.Key])
			pv, _ := toInt(prev.Rec[rule.Key])
			if cv != pv {
				f.stallRuns[i] = 0
				continue
			}
			f.stallRuns[i]++
			if f.stallRuns[i] >= rule.StallWindows {
				f.stallRuns[i] = 0
				f.captureLocked(rule, prev, cur, hasPrev, float64(cv))
			}
			continue
		}
		v, ok := toFloat(cur.Rec[rule.Key])
		if !ok || v <= rule.Max {
			f.tripped[i] = false
			continue
		}
		if f.tripped[i] {
			continue // still the same excursion
		}
		f.tripped[i] = true
		f.captureLocked(rule, prev, cur, hasPrev, v)
	}
}

// captureLocked commits one breach report to the ring.
func (f *FlightRecorder) captureLocked(rule Rule, prev, cur Sample, hasPrev bool, value float64) {
	f.seq++
	rep := BreachReport{
		Seq:   f.seq,
		Rule:  rule,
		At:    cur.At,
		Value: value,
		Delta: DeltaRecord(prev.Rec, cur.Rec),
	}
	if hasPrev {
		rep.Window = cur.At.Sub(prev.At)
	}
	if f.col != nil {
		spans := f.col.Snapshot()
		if len(spans) > f.spanN {
			spans = spans[len(spans)-f.spanN:]
		}
		rep.Spans = spans
	}
	f.ring[f.pos] = rep
	f.pos++
	if f.pos == len(f.ring) {
		f.pos = 0
	}
	if f.count < len(f.ring) {
		f.count++
	}
}

// Reports returns the retained breach reports, oldest first.
func (f *FlightRecorder) Reports() []BreachReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]BreachReport, 0, f.count)
	start := f.pos - f.count
	if start < 0 {
		start += len(f.ring)
	}
	for i := 0; i < f.count; i++ {
		out = append(out, f.ring[(start+i)%len(f.ring)])
	}
	return out
}

// ReportsList renders the retained reports for the management
// "blackbox" op, oldest first.
func (f *FlightRecorder) ReportsList() wire.List {
	reps := f.Reports()
	out := make(wire.List, len(reps))
	for i, r := range reps {
		out[i] = r.Record()
	}
	return out
}

// Stats snapshots flight-recorder counters.
func (f *FlightRecorder) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FlightStats{
		Breaches: f.seq,
		Retained: uint64(f.count),
		Rules:    uint64(len(f.rules)),
	}
}

// toFloat widens any numeric wire value to float64 (rule evaluation
// compares latencies and counters alike).
func toFloat(v interface{}) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case uint64:
		return float64(n), true
	case int64:
		return float64(n), true
	case int:
		return float64(n), true
	}
	return 0, false
}
