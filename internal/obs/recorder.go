package obs

import (
	"strings"
	"sync"
	"time"

	"odp/internal/clock"
	"odp/internal/wire"
)

// Sample is one periodic Gather snapshot with the instant it was taken.
type Sample struct {
	// At is the snapshot instant on the recorder's clock.
	At time.Time
	// Rec is the unified Gather record at that instant.
	Rec wire.Record
}

// Recorder turns the platform's point-in-time Gather snapshot into a
// time series: a clock-driven ring of periodic samples deep enough to
// answer delta and rate questions ("how many invocations per second,
// right now?") that a single snapshot cannot. It follows the paper's
// §7.4 reading of management — continuous monitoring of transparency
// mechanisms, not one-shot inspection — and the platform serves it via
// the management "series" op.
//
// The sampling loop re-arms a one-shot timer after every pass (never a
// free-running ticker), so a simulated platform's quiescence detection
// sees exactly one pending deadline between samples and a seeded run
// snapshots at byte-identical virtual instants.
type Recorder struct {
	src      func() wire.Record
	interval time.Duration
	clk      clock.Clock

	mu    sync.Mutex
	ring  []Sample
	pos   int
	count int
	hooks []func(prev, cur Sample, hasPrev bool)

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// RecorderOption configures NewRecorder.
type RecorderOption func(*Recorder)

// WithRecorderClock sets the clock driving the sampling loop (default
// clock.Real{}).
func WithRecorderClock(clk clock.Clock) RecorderOption {
	return func(r *Recorder) {
		if clk != nil {
			r.clk = clk
		}
	}
}

// WithRecorderDepth sets how many samples the ring retains (default 64).
func WithRecorderDepth(n int) RecorderOption {
	return func(r *Recorder) {
		if n > 0 {
			r.ring = make([]Sample, n)
		}
	}
}

// defaultRecorderDepth bounds the retained-sample footprint per node.
const defaultRecorderDepth = 64

// NewRecorder creates a recorder sampling src every interval. Nothing
// runs until Start; attach observers (the flight recorder) first.
func NewRecorder(src func() wire.Record, interval time.Duration, opts ...RecorderOption) *Recorder {
	if interval <= 0 {
		interval = time.Second
	}
	r := &Recorder{
		src:      src,
		interval: interval,
		clk:      clock.Real{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(r)
	}
	if r.ring == nil {
		r.ring = make([]Sample, defaultRecorderDepth)
	}
	return r
}

// Interval returns the sampling period.
func (r *Recorder) Interval() time.Duration { return r.interval }

// OnSample registers fn to run after each sample is committed, with the
// previous sample when one exists. Hooks run on the sampling goroutine,
// outside the recorder's lock.
func (r *Recorder) OnSample(fn func(prev, cur Sample, hasPrev bool)) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// Start launches the sampling loop. Safe to call once; Close stops it.
func (r *Recorder) Start() {
	r.startOnce.Do(func() { go r.run() })
}

// Close stops the sampling loop and waits for it to exit.
func (r *Recorder) Close() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *Recorder) run() {
	defer close(r.done)
	for {
		t := clock.AcquireTimer(r.clk, r.interval)
		select {
		case <-r.stop:
			clock.ReleaseTimer(t)
			return
		case <-t.C():
			clock.ReleaseTimer(t)
			r.sample()
		}
	}
}

// sample takes one snapshot, commits it and runs the hooks.
func (r *Recorder) sample() {
	cur := Sample{At: r.clk.Now(), Rec: r.src()}
	r.mu.Lock()
	var prev Sample
	hasPrev := r.count > 0
	if hasPrev {
		last := r.pos - 1
		if last < 0 {
			last += len(r.ring)
		}
		prev = r.ring[last]
	}
	r.ring[r.pos] = cur
	r.pos++
	if r.pos == len(r.ring) {
		r.pos = 0
	}
	if r.count < len(r.ring) {
		r.count++
	}
	hooks := r.hooks
	r.mu.Unlock()
	for _, fn := range hooks {
		fn(prev, cur, hasPrev)
	}
}

// Samples returns the retained samples, oldest first.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Sample, 0, r.count)
	start := r.pos - r.count
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}

// last2 returns the two most recent samples under the lock.
func (r *Recorder) last2() (prev, cur Sample, n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	n = r.count
	if n == 0 {
		return
	}
	i := r.pos - 1
	if i < 0 {
		i += len(r.ring)
	}
	cur = r.ring[i]
	if n > 1 {
		i--
		if i < 0 {
			i += len(r.ring)
		}
		prev = r.ring[i]
	}
	return
}

// Series renders the recorder's current derived view as one record: for
// every integer counter key of the latest sample, the per-second rate
// over the last window as "<key>_per_sec" (float64), plus the
// "series.samples", "series.window_us" and "series.at" meta keys.
// Histogram bucket keys are skipped (their rates are the quantile keys'
// job). With fewer than two samples only the meta keys appear. This is
// what the management "series" op returns and odptop renders.
func (r *Recorder) Series() wire.Record {
	prev, cur, n := r.last2()
	out := wire.Record{
		"series.samples":     uint64(n),
		"series.interval_us": uint64(r.interval / time.Microsecond),
	}
	if n == 0 {
		return out
	}
	out["series.at"] = cur.At.UnixNano()
	if n < 2 {
		return out
	}
	window := cur.At.Sub(prev.At)
	out["series.window_us"] = uint64(window / time.Microsecond)
	secs := window.Seconds()
	if secs <= 0 {
		return out
	}
	for k, v := range cur.Rec {
		if strings.Contains(k, histBucketInfix) {
			continue
		}
		c, ok := toInt(v)
		if !ok {
			continue
		}
		p, _ := toInt(prev.Rec[k])
		out[k+"_per_sec"] = float64(c-p) / secs
	}
	return out
}

// DeltaRecord computes the numeric movement between two samples: for
// every integer key of cur, the signed difference against prev; zero
// deltas and non-integer values are dropped so the record names exactly
// what changed in the window. Flight-recorder breach reports carry one.
func DeltaRecord(prev, cur wire.Record) wire.Record {
	out := wire.Record{}
	for k, v := range cur {
		c, ok := toInt(v)
		if !ok {
			continue
		}
		p, _ := toInt(prev[k])
		if d := c - p; d != 0 {
			out[k] = d
		}
	}
	return out
}

// toInt widens an integer-kind wire value to int64. Floats are
// deliberately excluded: derived gauges and quantiles are not counters,
// and rating them would manufacture nonsense like p99_per_sec.
func toInt(v interface{}) (int64, bool) {
	switch n := v.(type) {
	case uint64:
		return int64(n), true
	case int64:
		return n, true
	case int:
		return int64(n), true
	}
	return 0, false
}
