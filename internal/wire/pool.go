package wire

import "sync"

// Buffer pooling for the invocation hot path. A packet — protocol header
// plus argument vector — is encoded into one pooled buffer, handed to the
// transport, and recycled once nothing references it. Steady-state
// invocation therefore allocates no encoding buffers at all; the
// AllocsPerRun regression tests in alloc_test.go pin this.

const (
	// initialBufCap sizes fresh pooled buffers to hold a typical header
	// plus a scalar argument vector without growing.
	initialBufCap = 512
	// maxPooledCap bounds retained capacity: one oversized packet must
	// not pin its storage in the pool indefinitely.
	maxPooledCap = 64 << 10
)

var bufPool = sync.Pool{
	New: func() interface{} {
		b := make([]byte, 0, initialBufCap)
		return &b
	},
}

// GetBuffer returns an empty scratch buffer from the pool. Hand the same
// pointer back to PutBuffer when done; the pointer indirection keeps the
// pool itself allocation-free per cycle.
func GetBuffer() *[]byte { return bufPool.Get().(*[]byte) }

// PutBuffer recycles a buffer obtained from GetBuffer. The caller must
// not touch the slice afterwards.
func PutBuffer(b *[]byte) {
	if b == nil || cap(*b) > maxPooledCap {
		return
	}
	*b = (*b)[:0]
	bufPool.Put(b)
}
