package wire

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

var sampleRef = Ref{
	ID:        "if-42",
	TypeName:  "BankAccount",
	Endpoints: []string{"inproc:n1", "tcp:10.0.0.1:7000"},
	Epoch:     3,
	Context:   []string{"org-a", "dept-7"},
}

func sampleValues() []Value {
	return []Value{
		nil,
		true,
		false,
		int64(0),
		int64(-1),
		int64(math.MaxInt64),
		int64(math.MinInt64),
		uint64(0),
		uint64(math.MaxUint64),
		float64(0),
		3.14159,
		math.Inf(1),
		math.Inf(-1),
		"",
		"hello, ODP",
		"unicode: héllo — 日本",
		[]byte{},
		[]byte{0, 1, 2, 255},
		List{},
		List{int64(1), "two", List{true}},
		Record{},
		Record{"a": int64(1), "b": Record{"c": "d"}, "z": nil},
		sampleRef,
		Ref{},
		List{sampleRef, Record{"r": sampleRef}},
	}
}

func codecs() []Codec {
	return []Codec{BinaryCodec{}, TextCodec{}, PackedCodec{}}
}

func TestRoundTripSamples(t *testing.T) {
	for _, c := range codecs() {
		c := c
		t.Run(c.Name(), func(t *testing.T) {
			for i, v := range sampleValues() {
				enc, err := c.Encode(nil, v)
				if err != nil {
					t.Fatalf("value %d (%v): encode: %v", i, v, err)
				}
				got, rest, err := c.Decode(enc)
				if err != nil {
					t.Fatalf("value %d (%v): decode: %v", i, v, err)
				}
				if len(rest) != 0 {
					t.Fatalf("value %d: %d trailing bytes", i, len(rest))
				}
				if !Equal(v, got) {
					t.Fatalf("value %d: round trip mismatch: in=%v out=%v", i, v, got)
				}
			}
		})
	}
}

func TestRoundTripNaN(t *testing.T) {
	for _, c := range codecs() {
		enc, err := c.Encode(nil, math.NaN())
		if err != nil {
			t.Fatalf("%s: encode NaN: %v", c.Name(), err)
		}
		got, _, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode NaN: %v", c.Name(), err)
		}
		f, ok := got.(float64)
		if !ok || !math.IsNaN(f) {
			t.Fatalf("%s: NaN round trip produced %v", c.Name(), got)
		}
	}
}

func TestRejectForeignValue(t *testing.T) {
	type notAValue struct{}
	for _, c := range codecs() {
		if _, err := c.Encode(nil, notAValue{}); err == nil {
			t.Fatalf("%s: expected error encoding foreign type", c.Name())
		}
		if _, err := c.Encode(nil, int32(3)); err == nil {
			t.Fatalf("%s: expected error encoding int32 (only int64 is in the model)", c.Name())
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	c := BinaryCodec{}
	enc, err := c.Encode(nil, sampleValues()[len(sampleValues())-1])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := c.Decode(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded unexpectedly", cut, len(enc))
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := BinaryCodec{}
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(64))
		rng.Read(buf)
		// Must not panic; error or success both acceptable.
		v, rest, err := c.Decode(buf)
		_ = v
		_ = rest
		_ = err
	}
}

func TestRecordEncodingDeterministic(t *testing.T) {
	rec := Record{"zebra": int64(1), "apple": int64(2), "mango": int64(3)}
	c := BinaryCodec{}
	first, err := c.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := c.Encode(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if string(first) != string(again) {
			t.Fatal("record encoding is not deterministic")
		}
	}
}

func TestEncodeAllDecodeAll(t *testing.T) {
	for _, c := range codecs() {
		vs := sampleValues()
		enc, err := EncodeAll(c, vs)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := DecodeAll(c, enc)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if len(got) != len(vs) {
			t.Fatalf("%s: got %d values want %d", c.Name(), len(got), len(vs))
		}
		for i := range vs {
			if !Equal(vs[i], got[i]) {
				t.Fatalf("%s: value %d mismatch", c.Name(), i)
			}
		}
	}
}

func TestTranscodeBetweenCodecs(t *testing.T) {
	bin, txt := BinaryCodec{}, TextCodec{}
	for i, v := range sampleValues() {
		enc, err := bin.Encode(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		asText, err := Transcode(bin, txt, enc)
		if err != nil {
			t.Fatalf("value %d: to text: %v", i, err)
		}
		back, err := Transcode(txt, bin, asText)
		if err != nil {
			t.Fatalf("value %d: to binary: %v", i, err)
		}
		got, _, err := bin.Decode(back)
		if err != nil {
			t.Fatalf("value %d: decode: %v", i, err)
		}
		if !Equal(v, got) {
			t.Fatalf("value %d: transcode round trip mismatch: %v != %v", i, v, got)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := Record{
		"list":  List{int64(1), []byte{9}},
		"bytes": []byte{1, 2, 3},
		"ref":   sampleRef,
	}
	cl, ok := Clone(orig).(Record)
	if !ok {
		t.Fatal("clone changed kind")
	}
	if !Equal(orig, cl) {
		t.Fatal("clone not equal to original")
	}
	cl["bytes"].([]byte)[0] = 99
	cl["list"].(List)[0] = int64(42)
	r := cl["ref"].(Ref)
	r.Endpoints[0] = "mutated"
	if orig["bytes"].([]byte)[0] != 1 {
		t.Fatal("clone shares byte storage")
	}
	if orig["list"].(List)[0] != int64(1) {
		t.Fatal("clone shares list storage")
	}
	if orig["ref"].(Ref).Endpoints[0] != "inproc:n1" {
		t.Fatal("clone shares ref endpoint storage")
	}
}

func TestEqualSemantics(t *testing.T) {
	tests := []struct {
		name string
		a, b Value
		want bool
	}{
		{"nil-nil", nil, nil, true},
		{"nil-int", nil, int64(0), false},
		{"int-uint", int64(3), uint64(3), false},
		{"bytes-equal", []byte{1, 2}, []byte{1, 2}, true},
		{"bytes-len", []byte{1, 2}, []byte{1}, false},
		{"list-nested", List{List{int64(1)}}, List{List{int64(1)}}, true},
		{"record-key", Record{"a": int64(1)}, Record{"b": int64(1)}, false},
		{"ref-epoch", sampleRef, func() Value { r := sampleRef; r.Epoch = 9; return r }(), false},
		{"ref-same", sampleRef, sampleRef, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Equal(tt.a, tt.b); got != tt.want {
				t.Fatalf("Equal(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

// genValue builds a random value of bounded depth for property testing.
func genValue(rng *rand.Rand, depth int) Value {
	max := 10
	if depth <= 0 {
		max = 7 // leaves only
	}
	switch rng.Intn(max) {
	case 0:
		return nil
	case 1:
		return rng.Intn(2) == 0
	case 2:
		return rng.Int63() - rng.Int63()
	case 3:
		return rng.Uint64()
	case 4:
		return rng.NormFloat64()
	case 5:
		b := make([]byte, rng.Intn(16))
		rng.Read(b)
		return string(b)
	case 6:
		b := make([]byte, rng.Intn(16))
		rng.Read(b)
		return b
	case 7:
		n := rng.Intn(4)
		l := make(List, n)
		for i := range l {
			l[i] = genValue(rng, depth-1)
		}
		return l
	case 8:
		n := rng.Intn(4)
		r := make(Record, n)
		for i := 0; i < n; i++ {
			key := string(rune('a' + rng.Intn(26)))
			r[key] = genValue(rng, depth-1)
		}
		return r
	default:
		return Ref{
			ID:        "id" + string(rune('a'+rng.Intn(26))),
			TypeName:  "T" + string(rune('A'+rng.Intn(26))),
			Endpoints: []string{"ep1", "ep2"}[:rng.Intn(3)],
			Epoch:     rng.Uint32() % 100,
		}
	}
}

type anyValue struct{ V Value }

// Generate implements quick.Generator.
func (anyValue) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(anyValue{V: genValue(rng, 3)})
}

func TestPropertyRoundTrip(t *testing.T) {
	for _, c := range codecs() {
		c := c
		prop := func(av anyValue) bool {
			enc, err := c.Encode(nil, av.V)
			if err != nil {
				return false
			}
			got, rest, err := c.Decode(enc)
			if err != nil || len(rest) != 0 {
				return false
			}
			return Equal(av.V, got)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	prop := func(av anyValue) bool {
		return Equal(av.V, Clone(av.V))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEqualReflexiveSymmetric(t *testing.T) {
	prop := func(a, b anyValue) bool {
		if !Equal(a.V, a.V) {
			return false
		}
		return Equal(a.V, b.V) == Equal(b.V, a.V)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestWithContext(t *testing.T) {
	r := sampleRef.WithContext("gateway-x")
	if len(r.Context) != 3 || r.Context[0] != "gateway-x" || r.Context[1] != "org-a" {
		t.Fatalf("context trail wrong: %v", r.Context)
	}
	// Original unchanged.
	if len(sampleRef.Context) != 2 {
		t.Fatal("WithContext mutated the original")
	}
	r.Endpoints[0] = "mutated"
	if sampleRef.Endpoints[0] != "inproc:n1" {
		t.Fatal("WithContext shares endpoint storage")
	}
}

func TestKindOf(t *testing.T) {
	for _, v := range sampleValues() {
		if _, ok := KindOf(v); !ok {
			t.Fatalf("KindOf rejected model value %v", v)
		}
	}
	if _, ok := KindOf(struct{}{}); ok {
		t.Fatal("KindOf accepted foreign value")
	}
	if k, _ := KindOf(nil); k != KindNil {
		t.Fatal("nil should be KindNil")
	}
	if k, _ := KindOf(sampleRef); k != KindRef {
		t.Fatal("ref should be KindRef")
	}
}
