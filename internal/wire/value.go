// Package wire defines the ODP computational data model and its network
// representations.
//
// The paper's computational language requires that "all arguments and
// results are passed by copying references to ADT interfaces" (§4.4), with
// the engineering optimisation that objects with constant state — integers,
// booleans, strings and so forth — "can be copied across network links that
// support concrete representations of them, in place of interface
// references" (§4.5). Values in this package are exactly those concrete
// representations of constant ADTs, plus Ref, the distribution-transparent
// pointer to a mutable ADT interface.
//
// Two codecs are provided: a compact self-describing binary codec (the
// platform's native network data representation) and a textual codec
// (used by federation interceptors to demonstrate translation between
// technology domains, §5.6).
package wire

import (
	"fmt"
	"sort"
)

// Kind enumerates the value kinds of the computational data model.
type Kind int

// Value kinds. Nil is deliberately the zero value so that an absent value
// decodes to KindNil.
const (
	KindNil Kind = iota
	KindBool
	KindInt
	KindUint
	KindFloat
	KindString
	KindBytes
	KindList
	KindRecord
	KindRef
)

var kindNames = map[Kind]string{
	KindNil:    "nil",
	KindBool:   "bool",
	KindInt:    "int",
	KindUint:   "uint",
	KindFloat:  "float",
	KindString: "string",
	KindBytes:  "bytes",
	KindList:   "list",
	KindRecord: "record",
	KindRef:    "ref",
}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Value is one element of the closed computational data model:
//
//	nil, bool, int64, uint64, float64, string, []byte, List, Record, Ref.
//
// Any other dynamic type is rejected by the codecs with ErrBadValue.
type Value interface{}

// List is an ordered sequence of values.
type List []Value

// Record is a named-field aggregate. Encoding is deterministic: fields are
// written in sorted key order.
type Record map[string]Value

// Ref is a distribution-transparent reference to an ADT interface: the
// "interface reference" of the engineering model. It names the interface,
// describes its type for signature checking, and lists one or more
// protocol access paths (§5.4 allows several network-level names per
// interface). Epoch is the relocation generation: a client holding a stale
// epoch consults the relocator (§5.4). Context is the federation trail for
// context-relative naming (§6).
type Ref struct {
	ID        string   // globally unique interface identifier
	TypeName  string   // interface type, resolvable via the type manager
	Endpoints []string // transport addresses in preference order
	Epoch     uint32   // relocation generation
	Context   []string // context-relative naming trail (outermost first)
}

// IsZero reports whether r is the zero reference.
func (r Ref) IsZero() bool {
	return r.ID == "" && r.TypeName == "" && len(r.Endpoints) == 0 && r.Epoch == 0 && len(r.Context) == 0
}

// WithContext returns a copy of r with ctx prepended to its context trail.
// Interceptors call this when a reference crosses a federation boundary so
// that the name remains resolvable relative to its defining context.
func (r Ref) WithContext(ctx string) Ref {
	nr := r
	nr.Context = make([]string, 0, len(r.Context)+1)
	nr.Context = append(nr.Context, ctx)
	nr.Context = append(nr.Context, r.Context...)
	nr.Endpoints = append([]string(nil), r.Endpoints...)
	return nr
}

// String implements fmt.Stringer for diagnostics.
func (r Ref) String() string {
	return fmt.Sprintf("ref(%s:%s@%v#%d)", r.ID, r.TypeName, r.Endpoints, r.Epoch)
}

// KindOf classifies v, returning KindNil for nil. The second result is
// false when v is outside the data model.
func KindOf(v Value) (Kind, bool) {
	switch v.(type) {
	case nil:
		return KindNil, true
	case bool:
		return KindBool, true
	case int64:
		return KindInt, true
	case uint64:
		return KindUint, true
	case float64:
		return KindFloat, true
	case string:
		return KindString, true
	case []byte:
		return KindBytes, true
	case List:
		return KindList, true
	case Record:
		return KindRecord, true
	case Ref:
		return KindRef, true
	default:
		return KindNil, false
	}
}

// Equal reports deep equality of two values. Byte slices compare by
// content; records compare by key set and per-key equality; refs compare by
// every field including endpoint order.
func Equal(a, b Value) bool {
	ka, oka := KindOf(a)
	kb, okb := KindOf(b)
	if !oka || !okb || ka != kb {
		return false
	}
	switch ka {
	case KindNil:
		return true
	case KindFloat:
		af, bf := a.(float64), b.(float64)
		if af != af && bf != bf {
			return true // both NaN: equal for value (round-trip) purposes
		}
		return af == bf
	case KindBytes:
		ab, bb := a.([]byte), b.([]byte)
		if len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if ab[i] != bb[i] {
				return false
			}
		}
		return true
	case KindList:
		al, bl := a.(List), b.(List)
		if len(al) != len(bl) {
			return false
		}
		for i := range al {
			if !Equal(al[i], bl[i]) {
				return false
			}
		}
		return true
	case KindRecord:
		ar, br := a.(Record), b.(Record)
		if len(ar) != len(br) {
			return false
		}
		for k, av := range ar {
			bv, ok := br[k]
			if !ok || !Equal(av, bv) {
				return false
			}
		}
		return true
	case KindRef:
		ar, br := a.(Ref), b.(Ref)
		if ar.ID != br.ID || ar.TypeName != br.TypeName || ar.Epoch != br.Epoch {
			return false
		}
		if len(ar.Endpoints) != len(br.Endpoints) || len(ar.Context) != len(br.Context) {
			return false
		}
		for i := range ar.Endpoints {
			if ar.Endpoints[i] != br.Endpoints[i] {
				return false
			}
		}
		for i := range ar.Context {
			if ar.Context[i] != br.Context[i] {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}

// Clone returns a deep copy of v. Mutable containers (bytes, lists,
// records, the slices inside refs) are copied so the result shares no
// storage with the input; this is the by-copy passing discipline of §4.4.
func Clone(v Value) Value {
	switch t := v.(type) {
	case []byte:
		out := make([]byte, len(t))
		copy(out, t)
		return out
	case List:
		out := make(List, len(t))
		for i, e := range t {
			out[i] = Clone(e)
		}
		return out
	case Record:
		out := make(Record, len(t))
		for k, e := range t {
			out[k] = Clone(e)
		}
		return out
	case Ref:
		t.Endpoints = append([]string(nil), t.Endpoints...)
		t.Context = append([]string(nil), t.Context...)
		return t
	default:
		return v
	}
}

// CloneArgs returns a vector whose mutable elements are deep-copied,
// enforcing the by-copy passing discipline of §4.4 without the codec.
// Vectors of constant-state values only — nil, bool, int, uint, float,
// string, the common case on the co-located fast path — are returned
// unchanged and allocation-free, the §4.5 engineering optimisation that
// constant objects need no copy.
func CloneArgs(vs []Value) []Value {
	for i, v := range vs {
		switch v.(type) {
		case nil, bool, int64, uint64, float64, string:
			continue
		default:
			out := make([]Value, len(vs))
			copy(out, vs[:i])
			for j := i; j < len(vs); j++ {
				out[j] = Clone(vs[j])
			}
			return out
		}
	}
	return vs
}

// sortedKeys returns the record's keys in sorted order, for deterministic
// encoding.
func sortedKeys(r Record) []string {
	keys := make([]string, 0, len(r))
	for k := range r {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeysInto appends the record's keys to buf in sorted order. Small
// records fit a caller-supplied stack buffer, so steady-state encoding of
// typical argument records allocates nothing; the insertion sort avoids
// the sort package's interface boxing.
func sortedKeysInto(buf []string, r Record) []string {
	for k := range r {
		i := len(buf)
		buf = append(buf, k)
		for i > 0 && buf[i-1] > k {
			buf[i] = buf[i-1]
			i--
		}
		buf[i] = k
	}
	return buf
}
