package wire

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// TextCodec is a JSON-based representation used as the "other technology
// domain" for federation interceptors (§5.6): a gateway standing on a
// technology boundary re-marshals each invocation between BinaryCodec and
// TextCodec. It is deliberately self-describing and tagged so that all ten
// kinds round-trip exactly (JSON alone cannot distinguish int64 from
// float64 or bytes from string).
type TextCodec struct{}

var _ Codec = TextCodec{}

// Name implements Codec.
func (TextCodec) Name() string { return "ansa-text/1" }

// Encode implements Codec.
func (c TextCodec) Encode(dst []byte, v Value) ([]byte, error) {
	t, err := toTagged(v, 0)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("wire: text encode: %w", err)
	}
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

// Decode implements Codec.
func (c TextCodec) Decode(src []byte) (Value, []byte, error) {
	b, rest, err := readLenBytes(src)
	if err != nil {
		return nil, nil, err
	}
	var t tagged
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	v, err := fromTagged(t, 0)
	if err != nil {
		return nil, nil, err
	}
	return v, rest, nil
}

// tagged is the JSON shape: {"k": "<kind>", "v": <payload>}.
type tagged struct {
	K string          `json:"k"`
	V json.RawMessage `json:"v,omitempty"`
}

type taggedRef struct {
	ID        string   `json:"id"`
	TypeName  string   `json:"type"`
	Endpoints []string `json:"endpoints,omitempty"`
	Epoch     uint32   `json:"epoch,omitempty"`
	Context   []string `json:"context,omitempty"`
}

func toTagged(v Value, depth int) (tagged, error) {
	if depth > maxNest {
		return tagged{}, fmt.Errorf("%w: nesting exceeds %d", ErrBadValue, maxNest)
	}
	raw := func(x interface{}) (tagged, json.RawMessage, error) {
		b, err := json.Marshal(x)
		return tagged{}, b, err
	}
	switch t := v.(type) {
	case nil:
		return tagged{K: "nil"}, nil
	case bool:
		_, b, err := raw(t)
		return tagged{K: "bool", V: b}, err
	case int64:
		// Strings preserve full 64-bit precision through JSON.
		_, b, err := raw(strconv.FormatInt(t, 10))
		return tagged{K: "int", V: b}, err
	case uint64:
		_, b, err := raw(strconv.FormatUint(t, 10))
		return tagged{K: "uint", V: b}, err
	case float64:
		// Bit pattern as string: survives NaN/Inf and precision loss.
		_, b, err := raw(strconv.FormatUint(math.Float64bits(t), 16))
		return tagged{K: "float", V: b}, err
	case string:
		// Base64 so that non-UTF-8 strings survive JSON transport.
		_, b, err := raw(base64.StdEncoding.EncodeToString([]byte(t)))
		return tagged{K: "string", V: b}, err
	case []byte:
		_, b, err := raw(base64.StdEncoding.EncodeToString(t))
		return tagged{K: "bytes", V: b}, err
	case List:
		elems := make([]tagged, len(t))
		for i, e := range t {
			te, err := toTagged(e, depth+1)
			if err != nil {
				return tagged{}, err
			}
			elems[i] = te
		}
		_, b, err := raw(elems)
		return tagged{K: "list", V: b}, err
	case Record:
		fields := make(map[string]tagged, len(t))
		for k, e := range t {
			te, err := toTagged(e, depth+1)
			if err != nil {
				return tagged{}, err
			}
			fields[k] = te
		}
		_, b, err := raw(fields)
		return tagged{K: "record", V: b}, err
	case Ref:
		_, b, err := raw(taggedRef{
			ID:        t.ID,
			TypeName:  t.TypeName,
			Endpoints: t.Endpoints,
			Epoch:     t.Epoch,
			Context:   t.Context,
		})
		return tagged{K: "ref", V: b}, err
	default:
		return tagged{}, fmt.Errorf("%w: %T", ErrBadValue, v)
	}
}

func fromTagged(t tagged, depth int) (Value, error) {
	if depth > maxNest {
		return nil, fmt.Errorf("%w: nesting exceeds %d", ErrCorrupt, maxNest)
	}
	switch t.K {
	case "nil":
		return nil, nil
	case "bool":
		var b bool
		if err := json.Unmarshal(t.V, &b); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return b, nil
	case "int":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return n, nil
	case "uint":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return n, nil
	case "float":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		bits, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return math.Float64frombits(bits), nil
	case "string":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return string(b), nil
	case "bytes":
		var s string
		if err := json.Unmarshal(t.V, &s); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return b, nil
	case "list":
		var elems []tagged
		if err := json.Unmarshal(t.V, &elems); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		list := make(List, len(elems))
		for i, te := range elems {
			v, err := fromTagged(te, depth+1)
			if err != nil {
				return nil, err
			}
			list[i] = v
		}
		return list, nil
	case "record":
		var fields map[string]tagged
		if err := json.Unmarshal(t.V, &fields); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		rec := make(Record, len(fields))
		for k, te := range fields {
			v, err := fromTagged(te, depth+1)
			if err != nil {
				return nil, err
			}
			rec[k] = v
		}
		return rec, nil
	case "ref":
		var tr taggedRef
		if err := json.Unmarshal(t.V, &tr); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		return Ref{
			ID:        tr.ID,
			TypeName:  tr.TypeName,
			Endpoints: tr.Endpoints,
			Epoch:     tr.Epoch,
			Context:   tr.Context,
		}, nil
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrCorrupt, t.K)
	}
}

// Transcode re-encodes src from one codec to another, the core act of a
// federation interceptor standing on a technology boundary (§5.6).
func Transcode(from, to Codec, src []byte) ([]byte, error) {
	v, rest, err := from.Decode(src)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return to.Encode(nil, v)
}
