package wire

// Detaching copies arena-aliased values out of their backing buffer so
// they can outlive it. The zero-copy decode path (PackedCodec.
// DecodeAllAlias) hands the rpc server values whose strings and byte
// slices point into a pooled arena; the rpc layer's own dispatch is
// careful never to retain them, but servants above the capsule boundary
// keep the documented "arguments may be kept freely" contract — so the
// capsule detaches before handing arguments over whenever the request
// descriptor is marked zero-copy.

// DetachValue returns a version of v that shares no storage with any
// decode buffer. Scalars are already self-contained and come back as-is;
// strings, byte slices and every container that might hold them are
// copied.
func DetachValue(v Value) Value {
	switch t := v.(type) {
	case string:
		return cloneDetachedString(t)
	case []byte:
		out := make([]byte, len(t))
		copy(out, t)
		return out
	case List:
		out := make(List, len(t))
		for i, e := range t {
			out[i] = DetachValue(e)
		}
		return out
	case Record:
		out := make(Record, len(t))
		for k, e := range t {
			out[cloneDetachedString(k)] = DetachValue(e)
		}
		return out
	case Ref:
		t.ID = cloneDetachedString(t.ID)
		t.TypeName = cloneDetachedString(t.TypeName)
		if t.Endpoints != nil {
			eps := make([]string, len(t.Endpoints))
			for i, ep := range t.Endpoints {
				eps[i] = cloneDetachedString(ep)
			}
			t.Endpoints = eps
		}
		if t.Context != nil {
			cxs := make([]string, len(t.Context))
			for i, cx := range t.Context {
				cxs[i] = cloneDetachedString(cx)
			}
			t.Context = cxs
		}
		return t
	default:
		return v
	}
}

// DetachArgs detaches an argument vector decoded in alias mode. The
// common interrogation carries only scalars — then the input slice is
// returned unchanged and detaching is free. The slice itself must
// already be safe to retain (the rpc server allocates it fresh per
// request, outside the descriptor pool, for exactly this reason).
func DetachArgs(args []Value) []Value {
	for i, a := range args {
		if needsDetach(a) {
			for j := i; j < len(args); j++ {
				args[j] = DetachValue(args[j])
			}
			return args
		}
	}
	return args
}

func needsDetach(v Value) bool {
	switch v.(type) {
	case string, []byte, List, Record, Ref:
		return true
	}
	return false
}

// cloneDetachedString forces a fresh allocation for non-empty strings.
// strings.Clone would also work; spelled out here so the copy is
// obviously unconditional — these strings may alias an arena about to
// be reused, and an "optimised" clone that returns the input would
// reintroduce the corruption this file exists to prevent.
func cloneDetachedString(s string) string {
	if len(s) == 0 {
		return ""
	}
	b := make([]byte, len(s))
	copy(b, s)
	return string(b)
}
