package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// The packed codec's shared round-trip/property coverage lives in
// wire_test.go via codecs(); this file tests what is specific to
// ansa-packed/1 — strict varints, the zero-copy alias mode, detachment,
// and the size advantage the format exists for.

// TestPackedVarintStrict pins the varint decoder's rejection rules:
// truncation, encodings past ten bytes, 64-bit overflow, and non-minimal
// ("overlong") forms each fail with the right error class.
func TestPackedVarintStrict(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"truncated-continuation", []byte{0x80}, ErrTruncated},
		{"truncated-long", []byte{0xff, 0xff, 0xff}, ErrTruncated},
		{"overlong-two-byte-zero", []byte{0x80, 0x00}, ErrCorrupt},
		{"overlong-max-plus", []byte{0xff, 0x80, 0x00}, ErrCorrupt},
		{"eleven-bytes", bytes.Repeat([]byte{0x80}, 11), ErrCorrupt},
		{"overflow-64-bits", append(bytes.Repeat([]byte{0xff}, 9), 0x02), ErrCorrupt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := readUvarint(tt.in); err == nil {
				t.Fatal("decode succeeded, want error")
			} else if !errorIs(err, tt.want) {
				t.Fatalf("got %v, want %v class", err, tt.want)
			}
		})
	}
	// The canonical encodings those overlong forms shadow still decode.
	for _, v := range []uint64{0, 1, 127, 128, 16383, 16384, math.MaxUint64} {
		enc := binary.AppendUvarint(nil, v)
		got, rest, err := readUvarint(enc)
		if err != nil || got != v || len(rest) != 0 {
			t.Fatalf("canonical varint %d: got %d, rest %d, err %v", v, got, len(rest), err)
		}
	}
}

func errorIs(err, target error) bool {
	return err == target || (err != nil && target != nil && strings.Contains(err.Error(), target.Error()))
}

// TestPackedZigzag pins the signed mapping at its edges.
func TestPackedZigzag(t *testing.T) {
	for _, v := range []int64{0, -1, 1, -2, 63, -64, math.MaxInt64, math.MinInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round trip: %d -> %d", v, got)
		}
	}
	// Small magnitudes must stay one byte — the format's reason to exist.
	for _, v := range []int64{0, -1, 1, -63, 63} {
		if z := zigzag(v); z > 127 {
			t.Fatalf("zigzag(%d) = %d does not fit one varint byte", v, z)
		}
	}
}

// TestPackedDecodeAlias proves the zero-copy contract in both
// directions: alias-mode strings and bytes share storage with the
// source buffer (mutating the buffer is visible through the value),
// while Codec.Decode and DetachValue produce storage-independent
// values.
func TestPackedDecodeAlias(t *testing.T) {
	c := PackedCodec{}
	args := []Value{"operand", []byte{1, 2, 3}, int64(7)}
	frame, err := EncodeAllInto(c, nil, args)
	if err != nil {
		t.Fatal(err)
	}

	aliased, err := c.DecodeAllAlias(nil, frame)
	if err != nil {
		t.Fatal(err)
	}
	if len(aliased) != 3 || aliased[0] != "operand" || aliased[2] != int64(7) {
		t.Fatalf("alias decode wrong: %v", aliased)
	}

	// Detach first — the detached copies must survive arena reuse.
	detached := DetachArgs(aliased)
	for i := range frame {
		frame[i] = 0xAA // simulate the arena being recycled
	}
	if detached[0] != "operand" || !bytes.Equal(detached[1].([]byte), []byte{1, 2, 3}) {
		t.Fatalf("detached values corrupted by arena reuse: %v", detached)
	}

	// A second alias decode from a fresh frame shows the alias is real.
	frame2, _ := EncodeAllInto(c, nil, args)
	aliased2, err := c.DecodeAllAlias(nil, frame2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame2 {
		frame2[i] = 0xBB
	}
	if aliased2[0] == "operand" {
		t.Fatal("alias-mode string did not alias the source buffer")
	}

	// Codec.Decode must stay detached.
	enc, _ := c.Encode(nil, "independent")
	v, _, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xCC
	}
	if v != "independent" {
		t.Fatal("Decode returned an aliased string")
	}
}

// TestPackedDecodeAliasRejectsTrailing matches DecodeAll's strictness.
func TestPackedDecodeAliasRejectsTrailing(t *testing.T) {
	c := PackedCodec{}
	frame, err := EncodeAllInto(c, nil, []Value{int64(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecodeAllAlias(nil, append(frame, 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := c.DecodeAllAlias(nil, frame[:len(frame)-1]); err == nil {
		t.Fatal("truncated vector accepted")
	}
}

// TestDetachArgsScalarFastPath: an all-scalar vector — the common
// interrogation — detaches for free, returning the same slice with the
// same elements untouched.
func TestDetachArgsScalarFastPath(t *testing.T) {
	args := []Value{int64(1), uint64(2), 3.5, true, nil}
	got := DetachArgs(args)
	if &got[0] != &args[0] {
		t.Fatal("scalar vector was copied")
	}
}

// TestDetachValueDeep checks every aliasable position is copied,
// including record keys and all Ref string fields.
func TestDetachValueDeep(t *testing.T) {
	arena := []byte("keyvalabcdefIDTNendpointctx")
	str := func(lo, hi int) string { return string(arena[lo:hi]) }
	v := Record{
		str(0, 3): List{str(3, 6), arena[6:12], Ref{
			ID:        str(12, 14),
			TypeName:  str(14, 16),
			Endpoints: []string{str(16, 24)},
			Epoch:     2,
			Context:   []string{str(24, 27)},
		}},
	}
	want := Clone(v)
	got := DetachValue(v)
	if !Equal(got, want) {
		t.Fatalf("detach changed value: %v != %v", got, want)
	}
	// Detached result must not share the original byte slice.
	gotBytes := got.(Record)["key"].(List)[1].([]byte)
	gotBytes[0] = 'X'
	if arena[6] == 'X' {
		t.Fatal("detached bytes share storage with source")
	}
}

// TestPackedEncodeAllocFree pins packed encoding at zero allocations,
// the same gate the binary codec carries — the packed hot path must not
// trade copies for garbage.
func TestPackedEncodeAllocFree(t *testing.T) {
	c := PackedCodec{}
	args := hotArgs()
	buf := GetBuffer()
	defer PutBuffer(buf)
	var err error
	if *buf, err = EncodeAllInto(c, (*buf)[:0], args); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), *buf...)

	allocs := testing.AllocsPerRun(200, func() {
		*buf, err = EncodeAllInto(c, (*buf)[:0], args)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("packed EncodeAllInto: %.1f allocs/op, want 0", allocs)
	}
	if !bytes.Equal(*buf, want) {
		t.Fatal("pooled re-encode diverged from first encode")
	}
}

// TestPackedSmallerThanBinary: the varint format must beat the
// fixed-width binary codec on the representative hot argument vector —
// otherwise the negotiation complexity buys nothing.
func TestPackedSmallerThanBinary(t *testing.T) {
	packed, err := EncodeAll(PackedCodec{}, hotArgs())
	if err != nil {
		t.Fatal(err)
	}
	bin, err := EncodeAll(BinaryCodec{}, hotArgs())
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(bin) {
		t.Fatalf("packed %dB not smaller than binary %dB", len(packed), len(bin))
	}
}

// TestPackedEncodingDeterministic mirrors the binary codec's record
// determinism guarantee.
func TestPackedEncodingDeterministic(t *testing.T) {
	rec := Record{"zebra": int64(1), "apple": int64(2), "mango": int64(3)}
	c := PackedCodec{}
	first, err := c.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := c.Encode(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, again) {
			t.Fatal("packed record encoding is not deterministic")
		}
	}
}

// TestPackedDecodeTruncated: every proper prefix of a complex encoding
// must fail, never panic or succeed.
func TestPackedDecodeTruncated(t *testing.T) {
	c := PackedCodec{}
	enc, err := c.Encode(nil, sampleValues()[len(sampleValues())-1])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := c.Decode(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded unexpectedly", cut, len(enc))
		}
	}
}

// TestPropertyPackedBinaryAgree is the quick-check twin of
// FuzzCodecAgreement: any model value encodes under both codecs and
// decodes to semantically equal results.
func TestPropertyPackedBinaryAgree(t *testing.T) {
	packed, bin := PackedCodec{}, BinaryCodec{}
	prop := func(av anyValue) bool {
		pe, err := packed.Encode(nil, av.V)
		if err != nil {
			return false
		}
		pv, rest, err := packed.Decode(pe)
		if err != nil || len(rest) != 0 {
			return false
		}
		be, err := bin.Encode(nil, av.V)
		if err != nil {
			return false
		}
		bv, rest, err := bin.Decode(be)
		if err != nil || len(rest) != 0 {
			return false
		}
		return Equal(pv, bv)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// FuzzPackedDecode exercises the packed decoder against arbitrary
// input: never panic, and clean decodes re-encode to a decodable equal
// value. The checked-in corpus under testdata/fuzz/FuzzPackedDecode
// includes truncated-varint and overlong-varint frames.
func FuzzPackedDecode(f *testing.F) {
	c := PackedCodec{}
	for _, v := range append(sampleValues(), fuzzSeedValues()...) {
		enc, err := c.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindInt), 0x80})        // truncated varint
	f.Add([]byte{byte(KindUint), 0x80, 0x00}) // overlong varint
	f.Add(append([]byte{byte(KindString)}, bytes.Repeat([]byte{0xff}, 10)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := c.Decode(data)
		if err != nil || len(rest) != 0 {
			return
		}
		re, err := c.Encode(nil, v)
		if err != nil {
			t.Fatalf("decoded value %v failed to re-encode: %v", v, err)
		}
		v2, rest2, err := c.Decode(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encoded form undecodable: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("re-encode changed value: %v != %v", v, v2)
		}
		// Alias-mode decode of the same single-value frame must agree.
		framed := append([]byte{0, 0, 0, 1}, re...)
		av, err := c.DecodeAllAlias(nil, framed)
		if err != nil || len(av) != 1 || !Equal(av[0], v) {
			t.Fatalf("alias decode disagrees: %v vs %v (%v)", av, v, err)
		}
	})
}

// FuzzCodecAgreement is the differential fuzzer the packed codec's
// correctness argument rests on: any frame the packed decoder accepts
// must, after transcoding to ansa-binary/1, decode to a semantically
// equal value — and vice versa. A divergence means one codec's reading
// of the data model has drifted, which federation gateways would then
// propagate silently between domains.
func FuzzCodecAgreement(f *testing.F) {
	packed, bin := PackedCodec{}, BinaryCodec{}
	for _, v := range append(sampleValues(), fuzzSeedValues()...) {
		pe, err := packed.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		be, err := bin.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(pe, be)
	}
	f.Add([]byte{byte(KindInt), 0x80}, []byte{})        // truncated varint
	f.Add([]byte{byte(KindUint), 0x80, 0x00}, []byte{}) // overlong varint
	f.Fuzz(func(t *testing.T, packedData, binData []byte) {
		if v, rest, err := packed.Decode(packedData); err == nil && len(rest) == 0 {
			out, err := Transcode(packed, bin, packedData)
			if err != nil {
				t.Fatalf("packed->binary transcode failed for %v: %v", v, err)
			}
			got, rest, err := bin.Decode(out)
			if err != nil || len(rest) != 0 {
				t.Fatalf("binary decode of transcoded frame failed: %v", err)
			}
			if !Equal(v, got) {
				t.Fatalf("packed->binary disagreement: %v != %v", v, got)
			}
		}
		if v, rest, err := bin.Decode(binData); err == nil && len(rest) == 0 {
			out, err := Transcode(bin, packed, binData)
			if err != nil {
				t.Fatalf("binary->packed transcode failed for %v: %v", v, err)
			}
			got, rest, err := packed.Decode(out)
			if err != nil || len(rest) != 0 {
				t.Fatalf("packed decode of transcoded frame failed: %v", err)
			}
			if !Equal(v, got) {
				t.Fatalf("binary->packed disagreement: %v != %v", v, got)
			}
		}
	})
}
