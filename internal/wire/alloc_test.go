package wire

import (
	"bytes"
	"testing"
)

// hotArgs is a representative invocation argument vector: scalars, a
// string, a nested list, a small record and a reference — every kind the
// hot path routinely carries.
func hotArgs() []Value {
	return []Value{
		int64(42), "operand", 3.5, uint64(7), true,
		List{int64(1), "two"},
		Record{"a": int64(1), "b": "x"},
		Ref{ID: "n/obj-1", TypeName: "Cell", Endpoints: []string{"sim:server"}},
	}
}

// TestBinaryEncodeAllocFree pins the binary codec's steady-state
// encoding cost at zero allocations per packet: header-plus-args encode
// into one pooled buffer without touching the heap. A regression here
// silently re-introduces the Go-allocator noise E1/E4 are meant to keep
// out of the measurements.
func TestBinaryEncodeAllocFree(t *testing.T) {
	c := BinaryCodec{}
	args := hotArgs()
	buf := GetBuffer()
	defer PutBuffer(buf)
	var err error
	if *buf, err = EncodeAllInto(c, (*buf)[:0], args); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), *buf...)

	allocs := testing.AllocsPerRun(200, func() {
		*buf, err = EncodeAllInto(c, (*buf)[:0], args)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("binary EncodeAllInto: %.1f allocs/op, want 0", allocs)
	}
	if !bytes.Equal(*buf, want) {
		t.Fatal("pooled re-encode diverged from first encode")
	}
}

// TestTextEncodeAllocBound pins the text codec's encoding allocations.
// JSON marshalling cannot be allocation-free, but the count must stay
// bounded so federation gateways (§5.6) do not regress unnoticed.
func TestTextEncodeAllocBound(t *testing.T) {
	c := TextCodec{}
	args := hotArgs()
	buf := GetBuffer()
	defer PutBuffer(buf)
	var err error
	if *buf, err = EncodeAllInto(c, (*buf)[:0], args); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		*buf, err = EncodeAllInto(c, (*buf)[:0], args)
		if err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~53 allocs/op on the reference toolchain; the bound leaves
	// headroom for stdlib drift while catching structural regressions.
	const maxTextAllocs = 80
	if allocs > maxTextAllocs {
		t.Fatalf("text EncodeAllInto: %.1f allocs/op, want <= %d", allocs, maxTextAllocs)
	}
}

// TestAppendValueMatchesEncode checks the append-style spelling is
// byte-identical to Codec.Encode for both codecs.
func TestAppendValueMatchesEncode(t *testing.T) {
	for _, c := range []Codec{BinaryCodec{}, TextCodec{}, PackedCodec{}} {
		for _, v := range hotArgs() {
			direct, err := c.Encode(nil, v)
			if err != nil {
				t.Fatalf("%s: Encode: %v", c.Name(), err)
			}
			appended, err := AppendValue(c, []byte("prefix"), v)
			if err != nil {
				t.Fatalf("%s: AppendValue: %v", c.Name(), err)
			}
			if !bytes.Equal(appended, append([]byte("prefix"), direct...)) {
				t.Fatalf("%s: AppendValue diverges from Encode for %v", c.Name(), v)
			}
		}
	}
}

// TestEncodeAllIntoRoundTrip checks EncodeAllInto output decodes with
// DecodeAll after stripping the caller's prefix.
func TestEncodeAllIntoRoundTrip(t *testing.T) {
	c := BinaryCodec{}
	args := hotArgs()
	out, err := EncodeAllInto(c, []byte("hdr"), args)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAll(c, out[3:])
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(args) {
		t.Fatalf("decoded %d values, want %d", len(got), len(args))
	}
	for i := range args {
		if !Equal(got[i], args[i]) {
			t.Fatalf("value %d: got %v, want %v", i, got[i], args[i])
		}
	}
}

// TestBufferPool checks the pool contract: buffers come back empty, and
// oversized buffers are dropped rather than pinned.
func TestBufferPool(t *testing.T) {
	b := GetBuffer()
	*b = append(*b, 1, 2, 3)
	PutBuffer(b)
	b2 := GetBuffer()
	if len(*b2) != 0 {
		t.Fatalf("pooled buffer has length %d, want 0", len(*b2))
	}
	PutBuffer(b2)

	huge := make([]byte, 0, maxPooledCap*2)
	PutBuffer(&huge) // must be a no-op, not a panic
	PutBuffer(nil)
}

// TestCloneArgs checks the selective deep-copy: scalar vectors are
// returned as-is; vectors with mutable elements share no storage with
// the input.
func TestCloneArgs(t *testing.T) {
	scalars := []Value{int64(1), "s", 2.5, true, nil, uint64(9)}
	if got := CloneArgs(scalars); &got[0] != &scalars[0] {
		t.Fatal("all-scalar vector was copied")
	}

	rec := Record{"k": int64(1)}
	lst := List{int64(2)}
	raw := []byte{3}
	ref := Ref{ID: "x", Endpoints: []string{"a"}}
	mixed := []Value{int64(0), rec, lst, raw, ref}
	got := CloneArgs(mixed)
	if &got[0] == &mixed[0] {
		t.Fatal("mutable vector was not copied")
	}
	rec["k"] = int64(99)
	lst[0] = int64(99)
	raw[0] = 99
	ref.Endpoints[0] = "mutated"
	if !Equal(got[1], Record{"k": int64(1)}) || !Equal(got[2], List{int64(2)}) {
		t.Fatal("clone shares container storage with input")
	}
	if got[3].([]byte)[0] != 3 {
		t.Fatal("clone shares byte storage with input")
	}
	if got[4].(Ref).Endpoints[0] != "a" {
		t.Fatal("clone shares ref endpoint storage with input")
	}
}

// TestSortedKeysInto checks the stack-buffered insertion sort agrees
// with the allocating path for records beyond the stack buffer size.
func TestSortedKeysInto(t *testing.T) {
	r := Record{}
	for _, k := range []string{"m", "a", "z", "b", "q", "c", "y", "d",
		"x", "e", "w", "f", "v", "g", "u", "h", "t", "i", "s", "j"} {
		r[k] = int64(len(k))
	}
	var buf [16]string
	got := sortedKeysInto(buf[:0], r)
	want := sortedKeys(r)
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("key %d: got %q, want %q", i, got[i], want[i])
		}
	}
}
