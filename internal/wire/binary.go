package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Codec translates between in-memory values and an octet representation.
// The platform's native codec is Binary; Text exists so that federation
// interceptors have a genuinely different technology domain to translate
// to (§5.6).
type Codec interface {
	// Name identifies the codec in federation negotiations.
	Name() string
	// Encode appends the representation of v to dst and returns it.
	Encode(dst []byte, v Value) ([]byte, error)
	// Decode reads one value from src, returning it and the remaining
	// bytes.
	Decode(src []byte) (Value, []byte, error)
}

// Errors reported by codecs.
var (
	// ErrBadValue reports a value outside the computational data model.
	ErrBadValue = errors.New("wire: value outside data model")
	// ErrTruncated reports an encoding that ends mid-value.
	ErrTruncated = errors.New("wire: truncated encoding")
	// ErrCorrupt reports an undecodable encoding.
	ErrCorrupt = errors.New("wire: corrupt encoding")
)

const (
	// maxNest bounds recursion while decoding adversarial input.
	maxNest = 64
	// maxElems bounds list/record sizes while decoding.
	maxElems = 1 << 24
)

// BinaryCodec is the platform's native self-describing binary network data
// representation: a one-byte kind tag followed by a fixed or
// length-prefixed payload. Integers are big-endian; varints are not used so
// that decode cost is flat (helpful when benchmarking marshalling against
// the paper's indirection-cost claim, E1).
type BinaryCodec struct{}

var _ Codec = BinaryCodec{}

// Name implements Codec.
func (BinaryCodec) Name() string { return "ansa-binary/1" }

// Encode implements Codec.
func (c BinaryCodec) Encode(dst []byte, v Value) ([]byte, error) {
	return c.encode(dst, v, 0)
}

func (c BinaryCodec) encode(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > maxNest {
		return nil, fmt.Errorf("%w: nesting exceeds %d", ErrBadValue, maxNest)
	}
	switch t := v.(type) {
	case nil:
		return append(dst, byte(KindNil)), nil
	case bool:
		b := byte(0)
		if t {
			b = 1
		}
		return append(dst, byte(KindBool), b), nil
	case int64:
		return appendU64(append(dst, byte(KindInt)), uint64(t)), nil
	case uint64:
		return appendU64(append(dst, byte(KindUint)), t), nil
	case float64:
		return appendU64(append(dst, byte(KindFloat)), math.Float64bits(t)), nil
	case string:
		dst = appendU32(append(dst, byte(KindString)), uint32(len(t)))
		return append(dst, t...), nil
	case []byte:
		dst = appendU32(append(dst, byte(KindBytes)), uint32(len(t)))
		return append(dst, t...), nil
	case List:
		dst = appendU32(append(dst, byte(KindList)), uint32(len(t)))
		var err error
		for _, e := range t {
			if dst, err = c.encode(dst, e, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case Record:
		dst = appendU32(append(dst, byte(KindRecord)), uint32(len(t)))
		var keyBuf [16]string
		var err error
		for _, k := range sortedKeysInto(keyBuf[:0], t) {
			dst = appendU32(dst, uint32(len(k)))
			dst = append(dst, k...)
			if dst, err = c.encode(dst, t[k], depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case Ref:
		dst = append(dst, byte(KindRef))
		dst = appendString(dst, t.ID)
		dst = appendString(dst, t.TypeName)
		dst = appendU32(dst, t.Epoch)
		dst = appendU32(dst, uint32(len(t.Endpoints)))
		for _, ep := range t.Endpoints {
			dst = appendString(dst, ep)
		}
		dst = appendU32(dst, uint32(len(t.Context)))
		for _, cx := range t.Context {
			dst = appendString(dst, cx)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadValue, v)
	}
}

// Decode implements Codec.
func (c BinaryCodec) Decode(src []byte) (Value, []byte, error) {
	return c.decode(src, 0)
}

func (c BinaryCodec) decode(src []byte, depth int) (Value, []byte, error) {
	if depth > maxNest {
		return nil, nil, fmt.Errorf("%w: nesting exceeds %d", ErrCorrupt, maxNest)
	}
	if len(src) == 0 {
		return nil, nil, ErrTruncated
	}
	kind, src := Kind(src[0]), src[1:]
	switch kind {
	case KindNil:
		return nil, src, nil
	case KindBool:
		if len(src) < 1 {
			return nil, nil, ErrTruncated
		}
		return src[0] != 0, src[1:], nil
	case KindInt:
		u, rest, err := readU64(src)
		if err != nil {
			return nil, nil, err
		}
		return int64(u), rest, nil
	case KindUint:
		u, rest, err := readU64(src)
		if err != nil {
			return nil, nil, err
		}
		return u, rest, nil
	case KindFloat:
		u, rest, err := readU64(src)
		if err != nil {
			return nil, nil, err
		}
		return math.Float64frombits(u), rest, nil
	case KindString:
		b, rest, err := readLenBytes(src)
		if err != nil {
			return nil, nil, err
		}
		return string(b), rest, nil
	case KindBytes:
		b, rest, err := readLenBytes(src)
		if err != nil {
			return nil, nil, err
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, rest, nil
	case KindList:
		n, rest, err := readU32(src)
		if err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: list of %d elements", ErrCorrupt, n)
		}
		list := make(List, 0, min(int(n), 1024))
		for i := uint32(0); i < n; i++ {
			var e Value
			if e, rest, err = c.decode(rest, depth+1); err != nil {
				return nil, nil, err
			}
			list = append(list, e)
		}
		return list, rest, nil
	case KindRecord:
		n, rest, err := readU32(src)
		if err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: record of %d fields", ErrCorrupt, n)
		}
		rec := make(Record, min(int(n), 1024))
		for i := uint32(0); i < n; i++ {
			var kb []byte
			if kb, rest, err = readLenBytes(rest); err != nil {
				return nil, nil, err
			}
			var e Value
			if e, rest, err = c.decode(rest, depth+1); err != nil {
				return nil, nil, err
			}
			rec[string(kb)] = e
		}
		return rec, rest, nil
	case KindRef:
		var (
			r    Ref
			err  error
			rest = src
		)
		if r.ID, rest, err = readString(rest); err != nil {
			return nil, nil, err
		}
		if r.TypeName, rest, err = readString(rest); err != nil {
			return nil, nil, err
		}
		if r.Epoch, rest, err = readU32(rest); err != nil {
			return nil, nil, err
		}
		var n uint32
		if n, rest, err = readU32(rest); err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: ref with %d endpoints", ErrCorrupt, n)
		}
		for i := uint32(0); i < n; i++ {
			var ep string
			if ep, rest, err = readString(rest); err != nil {
				return nil, nil, err
			}
			r.Endpoints = append(r.Endpoints, ep)
		}
		if n, rest, err = readU32(rest); err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: ref with %d contexts", ErrCorrupt, n)
		}
		for i := uint32(0); i < n; i++ {
			var cx string
			if cx, rest, err = readString(rest); err != nil {
				return nil, nil, err
			}
			r.Context = append(r.Context, cx)
		}
		return r, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, int(kind))
	}
}

// AppendValue appends the codec's representation of v to dst. It is the
// append-style spelling of Codec.Encode, named for symmetry with
// EncodeAllInto on the invocation hot path.
func AppendValue(c Codec, dst []byte, v Value) ([]byte, error) {
	return c.Encode(dst, v)
}

// EncodeAllInto appends the count-prefixed encoding of vs to dst and
// returns the extended slice. The hot path encodes protocol header and
// argument vector into one pooled buffer with this; EncodeAll is the
// allocating convenience wrapper.
func EncodeAllInto(c Codec, dst []byte, vs []Value) ([]byte, error) {
	dst = appendU32(dst, uint32(len(vs)))
	var err error
	for _, v := range vs {
		if dst, err = c.Encode(dst, v); err != nil {
			return nil, err
		}
	}
	return dst, nil
}

// EncodeAll encodes each value in vs back to back.
func EncodeAll(c Codec, vs []Value) ([]byte, error) {
	return EncodeAllInto(c, nil, vs)
}

// DecodeAll decodes a sequence written by EncodeAll.
func DecodeAll(c Codec, src []byte) ([]Value, error) {
	n, rest, err := readU32(src)
	if err != nil {
		return nil, err
	}
	if n > maxElems {
		return nil, fmt.Errorf("%w: %d values", ErrCorrupt, n)
	}
	vs := make([]Value, 0, min(int(n), 1024))
	for i := uint32(0); i < n; i++ {
		var v Value
		if v, rest, err = c.Decode(rest); err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return vs, nil
}

func appendU64(dst []byte, u uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], u)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, u uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], u)
	return append(dst, b[:]...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func readU64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint64(src), src[8:], nil
}

func readU32(src []byte) (uint32, []byte, error) {
	if len(src) < 4 {
		return 0, nil, ErrTruncated
	}
	return binary.BigEndian.Uint32(src), src[4:], nil
}

func readLenBytes(src []byte) ([]byte, []byte, error) {
	n, rest, err := readU32(src)
	if err != nil {
		return nil, nil, err
	}
	if uint32(len(rest)) < n {
		return nil, nil, ErrTruncated
	}
	return rest[:n], rest[n:], nil
}

func readString(src []byte) (string, []byte, error) {
	b, rest, err := readLenBytes(src)
	if err != nil {
		return "", nil, err
	}
	return string(b), rest, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
