package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"
)

// PackedCodec is the platform's third network data representation,
// "ansa-packed/1": a one-byte kind tag followed by a varint-packed
// payload. Where the binary codec spends fixed-width words on every
// integer and length (flat decode cost, easy to reason about), the
// packed codec spends LEB128 varints — small integers, short strings
// and low epochs, which dominate real argument vectors, take one or two
// bytes instead of four or eight. Integers are zigzag-coded so small
// negative values stay short.
//
// The codec exists for the invocation hot path, so it has a second
// decode mode: DecodeAllAlias parses an argument vector whose string
// and bytes values alias the source buffer instead of copying it. The
// rpc server points that mode at an arena owned by the pooled request
// descriptor, which is what lets the dispatch path stop copying
// argument payloads (see rpc.Incoming's retention contract). The
// Codec-interface Decode always returns detached values.
//
// Varint decoding is strict: encodings longer than ten bytes, encodings
// that overflow 64 bits and non-minimal ("overlong") encodings whose
// final continuation byte is zero are all rejected with ErrCorrupt, so
// every value has exactly one representation and differential fuzzing
// against the binary codec (FuzzCodecAgreement) can demand byte-stable
// re-encoding.
type PackedCodec struct{}

var _ Codec = PackedCodec{}

// Name implements Codec.
func (PackedCodec) Name() string { return "ansa-packed/1" }

// Encode implements Codec.
func (c PackedCodec) Encode(dst []byte, v Value) ([]byte, error) {
	return c.encode(dst, v, 0)
}

func (c PackedCodec) encode(dst []byte, v Value, depth int) ([]byte, error) {
	if depth > maxNest {
		return nil, fmt.Errorf("%w: nesting exceeds %d", ErrBadValue, maxNest)
	}
	switch t := v.(type) {
	case nil:
		return append(dst, byte(KindNil)), nil
	case bool:
		b := byte(0)
		if t {
			b = 1
		}
		return append(dst, byte(KindBool), b), nil
	case int64:
		return binary.AppendUvarint(append(dst, byte(KindInt)), zigzag(t)), nil
	case uint64:
		return binary.AppendUvarint(append(dst, byte(KindUint)), t), nil
	case float64:
		return appendU64(append(dst, byte(KindFloat)), math.Float64bits(t)), nil
	case string:
		dst = binary.AppendUvarint(append(dst, byte(KindString)), uint64(len(t)))
		return append(dst, t...), nil
	case []byte:
		dst = binary.AppendUvarint(append(dst, byte(KindBytes)), uint64(len(t)))
		return append(dst, t...), nil
	case List:
		dst = binary.AppendUvarint(append(dst, byte(KindList)), uint64(len(t)))
		var err error
		for _, e := range t {
			if dst, err = c.encode(dst, e, depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case Record:
		dst = binary.AppendUvarint(append(dst, byte(KindRecord)), uint64(len(t)))
		var keyBuf [16]string
		var err error
		for _, k := range sortedKeysInto(keyBuf[:0], t) {
			dst = binary.AppendUvarint(dst, uint64(len(k)))
			dst = append(dst, k...)
			if dst, err = c.encode(dst, t[k], depth+1); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case Ref:
		dst = append(dst, byte(KindRef))
		dst = appendPackedString(dst, t.ID)
		dst = appendPackedString(dst, t.TypeName)
		dst = binary.AppendUvarint(dst, uint64(t.Epoch))
		dst = binary.AppendUvarint(dst, uint64(len(t.Endpoints)))
		for _, ep := range t.Endpoints {
			dst = appendPackedString(dst, ep)
		}
		dst = binary.AppendUvarint(dst, uint64(len(t.Context)))
		for _, cx := range t.Context {
			dst = appendPackedString(dst, cx)
		}
		return dst, nil
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadValue, v)
	}
}

// Decode implements Codec. The returned value shares no storage with
// src.
func (c PackedCodec) Decode(src []byte) (Value, []byte, error) {
	return c.decode(src, 0, false)
}

// DecodeAllAlias decodes a count-prefixed vector written by EncodeAll
// (the u32 count framing is codec-independent), appending the values to
// dst and returning the extended slice. String and bytes values alias
// src — the caller must guarantee src outlives every use of the result
// (the rpc server backs src with an arena tied to the request
// descriptor's lifetime). Trailing bytes are rejected, exactly as
// DecodeAll rejects them.
func (c PackedCodec) DecodeAllAlias(dst []Value, src []byte) ([]Value, error) {
	n, rest, err := readU32(src)
	if err != nil {
		return nil, err
	}
	if n > maxElems {
		return nil, fmt.Errorf("%w: %d values", ErrCorrupt, n)
	}
	for i := uint32(0); i < n; i++ {
		var v Value
		if v, rest, err = c.decode(rest, 0, true); err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return dst, nil
}

// decode reads one value. With alias set, string and bytes payloads
// alias src instead of being copied; the container allocations (lists,
// record maps, refs' slices) are fresh either way.
func (c PackedCodec) decode(src []byte, depth int, alias bool) (Value, []byte, error) {
	if depth > maxNest {
		return nil, nil, fmt.Errorf("%w: nesting exceeds %d", ErrCorrupt, maxNest)
	}
	if len(src) == 0 {
		return nil, nil, ErrTruncated
	}
	kind, src := Kind(src[0]), src[1:]
	switch kind {
	case KindNil:
		return nil, src, nil
	case KindBool:
		if len(src) < 1 {
			return nil, nil, ErrTruncated
		}
		return src[0] != 0, src[1:], nil
	case KindInt:
		u, rest, err := readUvarint(src)
		if err != nil {
			return nil, nil, err
		}
		return unzigzag(u), rest, nil
	case KindUint:
		u, rest, err := readUvarint(src)
		if err != nil {
			return nil, nil, err
		}
		return u, rest, nil
	case KindFloat:
		u, rest, err := readU64(src)
		if err != nil {
			return nil, nil, err
		}
		return math.Float64frombits(u), rest, nil
	case KindString:
		b, rest, err := readPackedBytes(src)
		if err != nil {
			return nil, nil, err
		}
		return packedString(b, alias), rest, nil
	case KindBytes:
		b, rest, err := readPackedBytes(src)
		if err != nil {
			return nil, nil, err
		}
		if alias {
			return b, rest, nil
		}
		out := make([]byte, len(b))
		copy(out, b)
		return out, rest, nil
	case KindList:
		n, rest, err := readUvarint(src)
		if err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: list of %d elements", ErrCorrupt, n)
		}
		list := make(List, 0, min(int(n), 1024))
		for i := uint64(0); i < n; i++ {
			var e Value
			if e, rest, err = c.decode(rest, depth+1, alias); err != nil {
				return nil, nil, err
			}
			list = append(list, e)
		}
		return list, rest, nil
	case KindRecord:
		n, rest, err := readUvarint(src)
		if err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: record of %d fields", ErrCorrupt, n)
		}
		rec := make(Record, min(int(n), 1024))
		for i := uint64(0); i < n; i++ {
			var kb []byte
			if kb, rest, err = readPackedBytes(rest); err != nil {
				return nil, nil, err
			}
			var e Value
			if e, rest, err = c.decode(rest, depth+1, alias); err != nil {
				return nil, nil, err
			}
			// Map keys are hashed storage, not payload: aliasing them
			// would let arena reuse corrupt the map, so keys always
			// detach.
			rec[string(kb)] = e
		}
		return rec, rest, nil
	case KindRef:
		var (
			r    Ref
			err  error
			rest = src
		)
		if r.ID, rest, err = readPackedString(rest, alias); err != nil {
			return nil, nil, err
		}
		if r.TypeName, rest, err = readPackedString(rest, alias); err != nil {
			return nil, nil, err
		}
		var u uint64
		if u, rest, err = readUvarint(rest); err != nil {
			return nil, nil, err
		}
		if u > math.MaxUint32 {
			return nil, nil, fmt.Errorf("%w: ref epoch %d", ErrCorrupt, u)
		}
		r.Epoch = uint32(u)
		var n uint64
		if n, rest, err = readUvarint(rest); err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: ref with %d endpoints", ErrCorrupt, n)
		}
		for i := uint64(0); i < n; i++ {
			var ep string
			if ep, rest, err = readPackedString(rest, alias); err != nil {
				return nil, nil, err
			}
			r.Endpoints = append(r.Endpoints, ep)
		}
		if n, rest, err = readUvarint(rest); err != nil {
			return nil, nil, err
		}
		if n > maxElems {
			return nil, nil, fmt.Errorf("%w: ref with %d contexts", ErrCorrupt, n)
		}
		for i := uint64(0); i < n; i++ {
			var cx string
			if cx, rest, err = readPackedString(rest, alias); err != nil {
				return nil, nil, err
			}
			r.Context = append(r.Context, cx)
		}
		return r, rest, nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, int(kind))
	}
}

// zigzag maps signed to unsigned so small-magnitude negatives encode
// short: 0→0, -1→1, 1→2, -2→3, …
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// maxVarintLen is the longest legal LEB128 encoding of a uint64.
const maxVarintLen = 10

// readUvarint decodes one strict LEB128 varint. Truncated input yields
// ErrTruncated; encodings longer than ten bytes, overflowing 64 bits,
// or non-minimal (a multi-byte encoding whose final byte is zero — the
// "overlong" form) yield ErrCorrupt.
func readUvarint(src []byte) (uint64, []byte, error) {
	var x uint64
	var s uint
	for i := 0; i < len(src); i++ {
		b := src[i]
		if i == maxVarintLen-1 {
			if b >= 0x80 {
				return 0, nil, fmt.Errorf("%w: varint exceeds %d bytes", ErrCorrupt, maxVarintLen)
			}
			if b > 1 {
				return 0, nil, fmt.Errorf("%w: varint overflows 64 bits", ErrCorrupt)
			}
		}
		if b < 0x80 {
			if i > 0 && b == 0 {
				return 0, nil, fmt.Errorf("%w: overlong varint", ErrCorrupt)
			}
			return x | uint64(b)<<s, src[i+1:], nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, nil, ErrTruncated
}

func appendPackedString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readPackedBytes reads a varint-length-prefixed byte run, aliasing src.
func readPackedBytes(src []byte) ([]byte, []byte, error) {
	n, rest, err := readUvarint(src)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(rest)) {
		return nil, nil, ErrTruncated
	}
	return rest[:n], rest[n:], nil
}

func readPackedString(src []byte, alias bool) (string, []byte, error) {
	b, rest, err := readPackedBytes(src)
	if err != nil {
		return "", nil, err
	}
	return packedString(b, alias), rest, nil
}

// packedString materialises a decoded string: a copy normally, an
// unsafe alias of b in arena mode. The alias is sound under the arena
// contract — the bytes are immutable for the values' lifetime and the
// values must not outlive the buffer — and is the entire point of the
// zero-copy decode path.
func packedString(b []byte, alias bool) string {
	if len(b) == 0 {
		return ""
	}
	if alias {
		return unsafe.String(unsafe.SliceData(b), len(b))
	}
	return string(b)
}
