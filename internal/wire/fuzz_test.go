package wire

import (
	"math"
	"testing"
)

// fuzzSeedValues is the fuzz seed corpus proper: at least one value of
// every Kind in the data model, plus structurally adversarial shapes
// (deep nesting, empty aggregates, a fully populated Ref) that give the
// mutator productive starting points. TestFuzzSeedCoversEveryKind keeps
// this list honest as the data model grows.
func fuzzSeedValues() []Value {
	fullRef := Ref{
		ID:        "obj-42",
		TypeName:  "odp.example/Tally",
		Endpoints: []string{"a", "b", "c"},
		Epoch:     7,
		Context:   []string{"root", "cell-3"},
	}
	return []Value{
		nil,                              // KindNil
		true,                             // KindBool
		int64(math.MinInt64),             // KindInt
		uint64(math.MaxUint64),           // KindUint
		math.Copysign(0, -1),             // KindFloat (negative zero)
		"héllo — 日本",                     // KindString
		[]byte{0x00, 0xff},               // KindBytes
		List{List{List{List{int64(1)}}}}, // KindList, deep
		Record{"": nil, "k": Record{"v": List{}}}, // KindRecord, empty key
		fullRef, // KindRef, every field set
		List{fullRef, Record{"self": Ref{}}, true}, // mixed aggregate
	}
}

// TestFuzzSeedCoversEveryKind fails if a Kind is added to the data model
// without a corresponding entry in the fuzz seed corpus.
func TestFuzzSeedCoversEveryKind(t *testing.T) {
	seen := map[Kind]bool{}
	var mark func(v Value)
	mark = func(v Value) {
		k, ok := KindOf(v)
		if !ok {
			t.Fatalf("seed value %v is outside the data model", v)
		}
		seen[k] = true
		switch t := v.(type) {
		case List:
			for _, e := range t {
				mark(e)
			}
		case Record:
			for _, e := range t {
				mark(e)
			}
		}
	}
	for _, v := range fuzzSeedValues() {
		mark(v)
	}
	for k := KindNil; k <= KindRef; k++ {
		if !seen[k] {
			t.Errorf("fuzz seed corpus has no value of kind %v", k)
		}
	}
}

// FuzzBinaryDecode exercises the binary decoder against arbitrary input.
// Without -fuzz it runs the seed corpus as regular tests; with
// `go test -fuzz=FuzzBinaryDecode ./internal/wire` it explores further.
// Property: decode never panics, and anything that decodes cleanly (with
// no trailing bytes) re-encodes to a decodable equal value.
func FuzzBinaryDecode(f *testing.F) {
	c := BinaryCodec{}
	for _, v := range append(sampleValues(), fuzzSeedValues()...) {
		enc, err := c.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := c.Decode(data)
		if err != nil || len(rest) != 0 {
			return
		}
		re, err := c.Encode(nil, v)
		if err != nil {
			t.Fatalf("decoded value %v failed to re-encode: %v", v, err)
		}
		v2, rest2, err := c.Decode(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encoded form undecodable: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("re-encode changed value: %v != %v", v, v2)
		}
	})
}

// FuzzTextDecode is the same property for the textual codec.
func FuzzTextDecode(f *testing.F) {
	c := TextCodec{}
	for _, v := range append(sampleValues(), fuzzSeedValues()...) {
		enc, err := c.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := c.Decode(data)
		if err != nil || len(rest) != 0 {
			return
		}
		re, err := c.Encode(nil, v)
		if err != nil {
			t.Fatalf("decoded value %v failed to re-encode: %v", v, err)
		}
		v2, _, err := c.Decode(re)
		if err != nil || !Equal(v, v2) {
			t.Fatalf("text re-encode mismatch: %v vs %v (%v)", v, v2, err)
		}
	})
}
