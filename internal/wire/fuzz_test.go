package wire

import (
	"testing"
)

// FuzzBinaryDecode exercises the binary decoder against arbitrary input.
// Without -fuzz it runs the seed corpus as regular tests; with
// `go test -fuzz=FuzzBinaryDecode ./internal/wire` it explores further.
// Property: decode never panics, and anything that decodes cleanly (with
// no trailing bytes) re-encodes to a decodable equal value.
func FuzzBinaryDecode(f *testing.F) {
	c := BinaryCodec{}
	for _, v := range sampleValues() {
		enc, err := c.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := c.Decode(data)
		if err != nil || len(rest) != 0 {
			return
		}
		re, err := c.Encode(nil, v)
		if err != nil {
			t.Fatalf("decoded value %v failed to re-encode: %v", v, err)
		}
		v2, rest2, err := c.Decode(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encoded form undecodable: %v", err)
		}
		if !Equal(v, v2) {
			t.Fatalf("re-encode changed value: %v != %v", v, v2)
		}
	})
}

// FuzzTextDecode is the same property for the textual codec.
func FuzzTextDecode(f *testing.F) {
	c := TextCodec{}
	for _, v := range sampleValues() {
		enc, err := c.Encode(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := c.Decode(data)
		if err != nil || len(rest) != 0 {
			return
		}
		re, err := c.Encode(nil, v)
		if err != nil {
			t.Fatalf("decoded value %v failed to re-encode: %v", v, err)
		}
		v2, _, err := c.Decode(re)
		if err != nil || !Equal(v, v2) {
			t.Fatalf("text re-encode mismatch: %v vs %v (%v)", v, v2, err)
		}
	})
}
