// Package group implements replication transparency via object groups
// (§5.3).
//
// "All of these forms of redundancy place a requirement for a client to
// be able to transparently invoke a group of replicas of a service — the
// client sees the replicated group as if it were a singleton, but with
// increased reliability or availability. To provide such a consistent
// view, the group must arrange that all the members process invocations
// from clients in the same order... Between the members of the group
// there must be some sort of ordering protocol to agree when received
// invocations can be dispatched. This ordering protocol should be
// tolerant of failures in members of the group and of changes of
// membership of the group."
//
// The ordering protocol here is sequencer-based: the first member of the
// current view assigns sequence numbers and multicasts each invocation to
// the other members before executing and replying. Views change when the
// sequencer expels an unresponsive member or when the first backup stops
// hearing sequencer heartbeats and promotes itself. Two replication
// policies share the machinery, exactly as §5.3 describes ("such a basic
// group execution mechanism provides the foundation on which more
// specific replication facilities can be provided"):
//
//   - ModeActive: every member executes every invocation eagerly, so
//     there is no fail-over period;
//   - ModeStandby: only the sequencer (primary) executes; backups log
//     invocations and replay them on promotion (hot standby, with a
//     fail-over gap).
package group

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// Mode selects the replication policy.
type Mode int

// Replication policies.
const (
	// ModeActive executes on every member as invocations are ordered.
	ModeActive Mode = iota + 1
	// ModeStandby executes on the sequencer only; backups log and replay
	// on promotion.
	ModeStandby
)

// Snapshotter is implemented by replicas that support state transfer by
// snapshot; otherwise joiners receive the full invocation log.
type Snapshotter interface {
	// Snapshot serialises the replica state.
	Snapshot() ([]byte, error)
	// Restore replaces the replica state from a snapshot.
	Restore(data []byte) error
}

// Errors returned by group members.
var (
	// ErrNotSequencer redirects callers to the current sequencer.
	ErrNotSequencer = errors.New("group: not the sequencer")
	// ErrStopped reports use of a stopped member.
	ErrStopped = errors.New("group: member stopped")
)

// memberInfo describes one member in a view.
type memberInfo struct {
	id   string // member identifier (unique, stable)
	addr string // transport address of the member's capsule
}

// view is one membership epoch. members[0] is the sequencer.
type view struct {
	id      uint64
	members []memberInfo
}

func (v view) clone() view {
	return view{id: v.id, members: append([]memberInfo(nil), v.members...)}
}

func (v view) sequencer() memberInfo {
	return v.members[0]
}

func (v view) rankOf(id string) int {
	for i, m := range v.members {
		if m.id == id {
			return i
		}
	}
	return -1
}

// orderedInv is one invocation with its agreed position.
type orderedInv struct {
	seq  uint64
	op   string
	args []wire.Value
}

// Config configures a member.
type Config struct {
	// GroupID names the group; the exported object id is "grp/"+GroupID
	// on every member, so a single reference with many endpoints denotes
	// the whole group.
	GroupID string
	// Mode is the replication policy (default ModeActive).
	Mode Mode
	// HeartbeatInterval is the sequencer's heartbeat period (default
	// 50ms).
	HeartbeatInterval time.Duration
	// FailureTimeout is how long without a heartbeat before the first
	// backup promotes itself, and how long a deliver may stall before the
	// sequencer expels a backup (default 4×HeartbeatInterval).
	FailureTimeout time.Duration
	// DeliverTimeout bounds one deliver interrogation (default
	// FailureTimeout).
	DeliverTimeout time.Duration
	// Clock drives heartbeats, failure detection and ordering wakeups
	// (default clock.Real{}); tests pass a clock.Fake to script failure
	// scenarios deterministically.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeActive
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 50 * time.Millisecond
	}
	if c.FailureTimeout <= 0 {
		c.FailureTimeout = 4 * c.HeartbeatInterval
	}
	if c.DeliverTimeout <= 0 {
		c.DeliverTimeout = c.FailureTimeout
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	return c
}

// Member is one replica's group machinery.
type Member struct {
	cfg     Config
	cap     *capsule.Capsule
	replica capsule.Servant
	id      string
	objID   string

	mu        sync.Mutex
	v         view
	nextSeq   uint64 // last sequence number assigned (sequencer only)
	nextExec  uint64 // next sequence number to execute/log
	holdback  map[uint64]orderedInv
	log       []orderedInv // every ordered invocation, for transfer/replay
	executed  uint64       // count of locally executed invocations
	promoted  uint64       // count of self-promotions
	lastHeard time.Time
	stopped   bool
	started   bool
	order     *orderState

	stop        chan struct{}
	done        chan struct{}
	applierDone chan struct{}
}

// NewMember creates (but does not start) group machinery for replica on
// c. Call Bootstrap to found a new group or Join to enter an existing
// one, then Start to begin failure detection.
func NewMember(c *capsule.Capsule, replica capsule.Servant, cfg Config) (*Member, error) {
	cfg = cfg.withDefaults()
	if cfg.GroupID == "" {
		return nil, errors.New("group: GroupID required")
	}
	m := &Member{
		cfg:         cfg,
		cap:         c,
		replica:     replica,
		id:          c.Name(),
		objID:       "grp/" + cfg.GroupID,
		nextExec:    1, // sequence numbers start at 1
		holdback:    make(map[uint64]orderedInv),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		applierDone: make(chan struct{}),
	}
	m.mu.Lock()
	m.ensureOrderState()
	m.mu.Unlock()
	if _, err := c.Export(capsule.ServantFunc(m.dispatch), capsule.WithID(m.objID)); err != nil {
		return nil, err
	}
	return m, nil
}

// ID returns the member's identifier.
func (m *Member) ID() string { return m.id }

// GroupRef returns a reference denoting the whole group in its current
// view: one object id, one endpoint per member, sequencer first. Clients
// invoke it like any singleton interface.
func (m *Member) GroupRef() wire.Ref {
	m.mu.Lock()
	defer m.mu.Unlock()
	eps := make([]string, len(m.v.members))
	for i, mi := range m.v.members {
		eps[i] = mi.addr
	}
	return wire.Ref{ID: m.objID, Endpoints: eps, Epoch: uint32(m.v.id)}
}

// Bootstrap founds a new group with this member as sole member and
// sequencer.
func (m *Member) Bootstrap() {
	m.mu.Lock()
	m.v = view{id: 1, members: []memberInfo{{id: m.id, addr: m.cap.Addr()}}}
	m.lastHeard = m.cfg.Clock.Now()
	m.mu.Unlock()
}

// Start launches the ordered applier and the failure-detection loop.
// Stop must be called.
func (m *Member) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.failureLoop()
	go func() {
		defer close(m.applierDone)
		m.applier()
	}()
}

// Stop halts the member's background machinery and waits for it.
func (m *Member) Stop() {
	m.mu.Lock()
	if m.stopped {
		started := m.started
		m.mu.Unlock()
		if started {
			<-m.done
			<-m.applierDone
		}
		return
	}
	m.stopped = true
	started := m.started
	close(m.stop)
	if m.order != nil {
		m.order.cond.Broadcast()
	}
	m.mu.Unlock()
	if started {
		<-m.done
		<-m.applierDone
	}
}

// IsSequencer reports whether this member currently leads the view.
func (m *Member) IsSequencer() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.v.members) > 0 && m.v.sequencer().id == m.id
}

// View returns (view id, member ids) for inspection.
func (m *Member) View() (uint64, []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, len(m.v.members))
	for i, mi := range m.v.members {
		ids[i] = mi.id
	}
	return m.v.id, ids
}

// Executed returns how many invocations this member has applied to its
// replica.
func (m *Member) Executed() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.executed
}

// Promotions returns how many times this member promoted itself to
// sequencer.
func (m *Member) Promotions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted
}

// encode/decode helpers for group control payloads.

func encodeView(v view) wire.Record {
	members := make(wire.List, len(v.members))
	for i, mi := range v.members {
		members[i] = wire.Record{"id": mi.id, "addr": mi.addr}
	}
	return wire.Record{"id": uint64(v.id), "members": members}
}

func decodeView(val wire.Value) (view, error) {
	rec, ok := val.(wire.Record)
	if !ok {
		return view{}, fmt.Errorf("group: view is %T", val)
	}
	id, _ := rec["id"].(uint64)
	list, ok := rec["members"].(wire.List)
	if !ok {
		return view{}, errors.New("group: view lacks members")
	}
	v := view{id: id, members: make([]memberInfo, 0, len(list))}
	for _, e := range list {
		mr, ok := e.(wire.Record)
		if !ok {
			return view{}, fmt.Errorf("group: member is %T", e)
		}
		mid, _ := mr["id"].(string)
		addr, _ := mr["addr"].(string)
		v.members = append(v.members, memberInfo{id: mid, addr: addr})
	}
	return v, nil
}

func encodeInv(inv orderedInv) (wire.Record, error) {
	return wire.Record{
		"seq":  inv.seq,
		"op":   inv.op,
		"args": wire.List(inv.args),
	}, nil
}

func decodeInv(val wire.Value) (orderedInv, error) {
	rec, ok := val.(wire.Record)
	if !ok {
		return orderedInv{}, fmt.Errorf("group: invocation is %T", val)
	}
	seq, _ := rec["seq"].(uint64)
	op, _ := rec["op"].(string)
	args, _ := rec["args"].(wire.List)
	return orderedInv{seq: seq, op: op, args: args}, nil
}

// sortedMemberAddrs returns the non-self member addresses of v.
func (m *Member) peersLocked() []memberInfo {
	peers := make([]memberInfo, 0, len(m.v.members))
	for _, mi := range m.v.members {
		if mi.id != m.id {
			peers = append(peers, mi)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].id < peers[j].id })
	return peers
}

// call invokes a group-control operation on a peer member.
func (m *Member) call(ctx context.Context, addr, op string, args []wire.Value, timeout time.Duration) (string, []wire.Value, error) {
	ref := wire.Ref{ID: m.objID, Endpoints: []string{addr}}
	return m.cap.Invoke(ctx, ref, op, args,
		capsule.WithQoS(rpc.QoS{Timeout: timeout}), capsule.ForceRemote())
}
