package group

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"odp/internal/capsule"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// failureLoop is the member's background heartbeat machinery:
//
//   - the sequencer heartbeats every backup each HeartbeatInterval and
//     expels backups that stay silent past FailureTimeout;
//   - backups watch for sequencer heartbeats; the backup at rank r
//     promotes itself after r × FailureTimeout of silence (staggered, so
//     the first live backup wins).
func (m *Member) failureLoop() {
	defer close(m.done)
	// Pace passes with a one-shot timer re-armed after each pass, not a
	// free-running ticker: a detection pass over a large view — or one
	// where silent members each cost a full call timeout — can outlast
	// the interval, and a saturated ticker drops ticks depending on how
	// promptly this goroutine drains the channel. That makes the pass
	// cadence a function of real scheduling latency, which a
	// deterministic simulation must never feel. Interval-after-pass
	// pacing keeps every pass instant a pure function of virtual time.
	timer := m.cfg.Clock.NewTimer(m.cfg.HeartbeatInterval)
	defer func() { timer.Stop() }()
	missed := make(map[string]time.Time) // backup id -> silent since
	for {
		select {
		case <-m.stop:
			return
		case <-timer.C():
		}
		timer = m.cfg.Clock.NewTimer(m.detectionPass(missed))
	}
}

// detectionPass runs one iteration of the failure detector — the
// sequencer heartbeats its backups, a backup checks its own promotion
// window — and returns how long to wait before the next pass. The
// sequencer keeps the heartbeat cadence; a backup's only deadline is its
// promotion instant, so it wakes no more often than FailureTimeout/4
// (bounded staleness for view changes that move the deadline closer)
// and no later than the deadline itself. In a swarm simulation the
// difference is thousands of idle backup polls that never become
// distinct virtual instants.
func (m *Member) detectionPass(missed map[string]time.Time) time.Duration {
	m.mu.Lock()
	if m.stopped || len(m.v.members) == 0 {
		m.mu.Unlock()
		return m.cfg.HeartbeatInterval
	}
	isSequencer := m.v.sequencer().id == m.id
	rank := m.v.rankOf(m.id)
	viewID := m.v.id
	peers := m.peersLocked()
	silent := m.cfg.Clock.Since(m.lastHeard)
	m.mu.Unlock()

	if isSequencer {
		m.heartbeatPeers(peers, viewID, missed)
		return m.cfg.HeartbeatInterval
	}
	if rank > 0 && silent > time.Duration(rank)*m.cfg.FailureTimeout {
		m.promote()
		return m.cfg.HeartbeatInterval
	}
	next := m.cfg.FailureTimeout / 4
	if rank > 0 {
		if remaining := time.Duration(rank)*m.cfg.FailureTimeout - silent; remaining < next {
			next = remaining
		}
	}
	if next < m.cfg.HeartbeatInterval {
		next = m.cfg.HeartbeatInterval
	}
	return next
}

// heartbeatPeers pings every backup concurrently, then expels those
// silent too long. The fan-out matters twice over: a sequential pass
// over a large view takes len(peers) round-trips — longer than the
// heartbeat interval itself once the view grows — and a single silent
// member would stall the whole pass for its call timeout, starving the
// healthy majority of liveness evidence. Concurrently, a pass costs one
// round-trip (one call timeout worst case) regardless of view size.
// Results are judged in view order after the pass completes, so expel
// order stays deterministic.
func (m *Member) heartbeatPeers(peers []memberInfo, viewID uint64, missed map[string]time.Time) {
	alive := make([]bool, len(peers))
	timeout := m.cfg.HeartbeatInterval * 2
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			// No retransmission within the call: the next pass is the
			// retransmit, and a duplicate ping buys nothing a fresh one
			// doesn't. During a partition every suppressed resend is also
			// one fewer timer-paced send into the void, which keeps the
			// detector's virtual-time schedule as sparse as possible.
			ref := wire.Ref{ID: m.objID, Endpoints: []string{addr}}
			_, _, err := m.cap.Invoke(context.Background(), ref, opHeartbeat,
				[]wire.Value{viewID},
				capsule.WithQoS(rpc.QoS{Timeout: timeout, Retransmit: 2 * timeout}),
				capsule.ForceRemote())
			alive[i] = err == nil
		}(i, p.addr)
	}
	wg.Wait()
	for i, p := range peers {
		if alive[i] {
			delete(missed, p.id)
			continue
		}
		since, ok := missed[p.id]
		if !ok {
			missed[p.id] = m.cfg.Clock.Now()
			continue
		}
		if m.cfg.Clock.Since(since) > m.cfg.FailureTimeout {
			delete(missed, p.id)
			m.expel(p.id)
		}
	}
}

// onHeartbeat records liveness of the sequencer.
func (m *Member) onHeartbeat(args []wire.Value) (string, []wire.Value, error) {
	viewID, _ := args[0].(uint64)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return "", nil, ErrStopped
	}
	if viewID >= m.v.id {
		m.lastHeard = m.cfg.Clock.Now()
	}
	return "ok", []wire.Value{m.v.id}, nil
}

// expel removes a dead member and installs/multicasts the successor view.
func (m *Member) expel(deadID string) {
	m.mu.Lock()
	if m.stopped || m.v.rankOf(deadID) < 0 || m.v.sequencer().id != m.id {
		m.mu.Unlock()
		return
	}
	next := view{id: m.v.id + 1}
	for _, mi := range m.v.members {
		if mi.id != deadID {
			next.members = append(next.members, mi)
		}
	}
	m.v = next
	peers := m.peersLocked()
	m.order.cond.Broadcast()
	m.mu.Unlock()
	m.multicastView(next, peers)
}

// promote makes this member the sequencer of a successor view that
// excludes the (presumed dead) old sequencer and any members ranked
// between it and us.
func (m *Member) promote() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.ensureOrderState()
	rank := m.v.rankOf(m.id)
	if rank <= 0 {
		m.mu.Unlock()
		return
	}
	next := view{id: m.v.id + 1}
	// Everyone ranked before us stayed silent past their own (shorter)
	// promotion window, so they are presumed dead too.
	next.members = append(next.members, memberInfo{id: m.id, addr: m.cap.Addr()})
	for _, mi := range m.v.members[rank+1:] {
		next.members = append(next.members, mi)
	}
	m.v = next
	m.promoted++
	m.lastHeard = m.cfg.Clock.Now()

	// A hot-standby backup must bring its replica up to date before
	// serving (this replay is the "fail-over period" active replication
	// avoids, experiment E6).
	if m.cfg.Mode == ModeStandby {
		m.replayLocked()
	}
	// Continue the numbering after everything we have logged; drop
	// holdback entries we cannot order any more (their clients will
	// retry against the new view).
	m.nextSeq = m.nextExec - 1
	for seq := range m.holdback {
		if seq >= m.nextExec {
			delete(m.holdback, seq)
		}
	}
	peers := m.peersLocked()
	m.order.cond.Broadcast()
	m.mu.Unlock()
	m.multicastView(next, peers)
}

// replayLocked applies logged-but-unexecuted invocations to the replica.
// Called with m.mu held.
func (m *Member) replayLocked() {
	for _, inv := range m.log {
		if inv.seq <= m.order.applied {
			continue
		}
		_, _, _ = m.replica.Dispatch(context.Background(), inv.op, inv.args)
		m.executed++
		m.order.applied = inv.seq
	}
}

// multicastView announces a new view to its members.
func (m *Member) multicastView(v view, peers []memberInfo) {
	rec := encodeView(v)
	for _, p := range peers {
		go func(p memberInfo) {
			_, _, _ = m.call(context.Background(), p.addr, opView, []wire.Value{rec}, m.cfg.DeliverTimeout)
		}(p)
	}
}

// onView installs a newer view.
func (m *Member) onView(args []wire.Value) (string, []wire.Value, error) {
	v, err := decodeView(args[0])
	if err != nil {
		return "", nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureOrderState()
	if m.stopped {
		return "", nil, ErrStopped
	}
	if v.id <= m.v.id {
		return "ok", nil, nil // stale announcement
	}
	m.v = v
	m.lastHeard = m.cfg.Clock.Now()
	m.order.cond.Broadcast()
	return "ok", nil, nil
}

// Join enters an existing group through any current member (seed). The
// sequencer transfers state (snapshot when the replica supports it, full
// log otherwise) and adds this member to a new view.
func (m *Member) Join(ctx context.Context, seed wire.Ref) error {
	info := wire.Record{"id": m.id, "addr": m.cap.Addr()}
	var (
		outcome string
		results []wire.Value
		err     error
	)
	// Any member redirects to the sequencer via MovedError; capsule
	// invoke follows it.
	for _, ep := range seed.Endpoints {
		outcome, results, err = m.call(ctx, ep, opJoin, []wire.Value{info}, m.cfg.DeliverTimeout*4)
		if err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("group: join: %w", err)
	}
	if outcome != "ok" || len(results) != 3 {
		return fmt.Errorf("group: join refused: %q %v", outcome, results)
	}
	v, err := decodeView(results[0])
	if err != nil {
		return err
	}
	nextExec, _ := results[2].(uint64)

	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureOrderState()
	switch state := results[1].(type) {
	case []byte:
		snap, ok := m.replica.(Snapshotter)
		if !ok {
			return errors.New("group: received snapshot but replica cannot restore")
		}
		if err := snap.Restore(state); err != nil {
			return fmt.Errorf("group: restore: %w", err)
		}
	case wire.List:
		for _, lv := range state {
			inv, err := decodeInv(lv)
			if err != nil {
				return err
			}
			m.log = append(m.log, inv)
			if m.cfg.Mode == ModeActive {
				_, _, _ = m.replica.Dispatch(context.Background(), inv.op, inv.args)
				m.executed++
				m.order.applied = inv.seq
			}
		}
	default:
		return fmt.Errorf("group: join state is %T", results[1])
	}
	m.v = v
	m.nextExec = nextExec
	m.nextSeq = nextExec - 1
	if nextExec > 0 && m.order.applied < nextExec-1 {
		// Snapshot transfer: state reflects everything before nextExec.
		m.order.applied = nextExec - 1
	}
	m.lastHeard = m.cfg.Clock.Now()
	m.order.cond.Broadcast()
	return nil
}

// onJoin handles a join request at the sequencer.
func (m *Member) onJoin(_ context.Context, args []wire.Value) (string, []wire.Value, error) {
	rec, ok := args[0].(wire.Record)
	if !ok {
		return "", nil, fmt.Errorf("group: join wants a member record, got %T", args[0])
	}
	id, _ := rec["id"].(string)
	addr, _ := rec["addr"].(string)
	if id == "" || addr == "" {
		return "", nil, errors.New("group: join record incomplete")
	}

	m.mu.Lock()
	m.ensureOrderState()
	if m.stopped {
		m.mu.Unlock()
		return "", nil, ErrStopped
	}
	if len(m.v.members) == 0 || m.v.sequencer().id != m.id {
		var fwd wire.Ref
		if len(m.v.members) > 0 {
			fwd = wire.Ref{ID: m.objID, Endpoints: []string{m.v.sequencer().addr}}
		}
		m.mu.Unlock()
		if fwd.IsZero() {
			return "", nil, errors.New("group: no view")
		}
		return "", nil, &rpc.MovedError{Forward: fwd}
	}
	// Quiesce: wait for in-flight ordered invocations to apply so the
	// transferred state is exactly the prefix [1, nextExec).
	for m.nextExec <= m.nextSeq {
		if m.stopped {
			m.mu.Unlock()
			return "", nil, ErrStopped
		}
		m.waitOrder()
	}
	var state wire.Value
	if snap, ok := m.replica.(Snapshotter); ok {
		data, err := snap.Snapshot()
		if err != nil {
			m.mu.Unlock()
			return "", nil, fmt.Errorf("group: snapshot: %w", err)
		}
		state = data
	} else {
		list := make(wire.List, 0, len(m.log))
		for _, inv := range m.log {
			r, _ := encodeInv(inv)
			list = append(list, r)
		}
		state = list
	}
	if m.v.rankOf(id) < 0 {
		next := m.v.clone()
		next.id++
		next.members = append(next.members, memberInfo{id: id, addr: addr})
		m.v = next
	}
	v := m.v.clone()
	nextExec := m.nextExec
	peers := m.peersLocked()
	m.mu.Unlock()

	// Tell the existing members about the enlarged view (the joiner gets
	// it in the reply).
	var others []memberInfo
	for _, p := range peers {
		if p.id != id {
			others = append(others, p)
		}
	}
	m.multicastView(v, others)
	return "ok", []wire.Value{encodeView(v), state, nextExec}, nil
}
