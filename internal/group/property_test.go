package group

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/wire"
)

// TestPropertyTotalOrderUnderLoss drives a 3-member group over a lossy
// network with concurrent writers: the ordering protocol must keep every
// replica's history identical despite retransmissions and duplicate
// suppression at every layer.
func TestPropertyTotalOrderUnderLoss(t *testing.T) {
	f := netsim.NewFabric(netsim.WithSeed(13), netsim.WithDefaultLink(netsim.LinkProfile{
		Latency: 300 * time.Microsecond,
		Loss:    0.08,
	}))
	t.Cleanup(func() { _ = f.Close() })
	var (
		members  []*Member
		replicas []*register
	)
	cfg := Config{
		GroupID:           "lossy",
		Mode:              ModeActive,
		HeartbeatInterval: 30 * time.Millisecond,
		// Generous: loss causes retries, which must not read as death.
		FailureTimeout: 2 * time.Second,
	}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("m%d", i)
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		rep := &register{}
		m, err := NewMember(c, rep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
		members = append(members, m)
		replicas = append(replicas, rep)
	}
	members[0].Bootstrap()
	for i := 1; i < 3; i++ {
		if err := members[i].Join(context.Background(), members[0].GroupRef()); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range members {
		m.Start()
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	client := capsule.New("client", cep, codec)
	t.Cleanup(func() { _ = client.Close() })

	const writers, per = 3, 12
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := int64(w*1000 + i)
				deadline := time.Now().Add(20 * time.Second)
				for {
					_, _, err := client.Invoke(context.Background(), members[0].GroupRef(), "add",
						[]wire.Value{v}, capsule.WithQoS(rpc.QoS{
							Timeout:    3 * time.Second,
							Retransmit: 10 * time.Millisecond,
						}))
					if err == nil {
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("writer %d value %d: %v", w, v, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	waitConverge(t, &cluster{t: t, replicas: replicas}, writers*per)
	ref := replicas[0].history()
	for i := 1; i < len(replicas); i++ {
		h := replicas[i].history()
		if len(h) != len(ref) {
			t.Fatalf("replica %d length %d != %d", i, len(h), len(ref))
		}
		for j := range ref {
			if h[j] != ref[j] {
				t.Fatalf("replica %d diverges at %d under loss", i, j)
			}
		}
	}
	// Exactly one execution per logical write: at-most-once held through
	// the group layer too.
	if len(ref) != writers*per {
		t.Fatalf("history has %d entries, want %d", len(ref), writers*per)
	}
}

// TestPartitionedBackupCatchesUpViaFetch cuts a backup off mid-stream;
// after healing, the hole-filling fetch protocol must bring it back to
// the exact sequence.
func TestPartitionedBackupCatchesUpViaFetch(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	for i := int64(1); i <= 5; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverge(t, cl, 5)

	// Partition backup m2 from the sequencer only (not from everything:
	// its heartbeats to/from m1 keep flowing, so expulsion is racy-slow
	// and the fetch path gets its chance after heal).
	cl.fabric.Partition(cl.capsules[0].Addr(), cl.capsules[2].Addr(), true)
	for i := int64(6); i <= 9; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	cl.fabric.Partition(cl.capsules[0].Addr(), cl.capsules[2].Addr(), false)

	// Whether m2 was expelled-and-stale or caught up via fetch, the
	// SURVIVING members must hold the full ordered history.
	deadline := time.After(10 * time.Second)
	for {
		h0, h1 := cl.replicas[0].history(), cl.replicas[1].history()
		if len(h0) == 9 && len(h1) == 9 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("survivors at %d/%d entries", len(cl.replicas[0].history()), len(cl.replicas[1].history()))
		case <-time.After(20 * time.Millisecond):
		}
	}
	// If m2 is still in the view, it must converge too (fetch protocol).
	_, ids := cl.members[0].View()
	stillMember := false
	for _, id := range ids {
		if id == cl.members[2].ID() {
			stillMember = true
		}
	}
	if stillMember {
		deadline := time.After(10 * time.Second)
		for len(cl.replicas[2].history()) != 9 {
			select {
			case <-deadline:
				t.Fatalf("partitioned member never caught up: %d/9", len(cl.replicas[2].history()))
			case <-time.After(20 * time.Millisecond):
			}
		}
	}
	// Service must still work either way.
	if _, _, err := cl.invoke("add", []wire.Value{int64(10)}); err != nil {
		t.Fatal(err)
	}
}

// TestExpelledMemberRejoins: a backup dies, is expelled, "restarts" (new
// member, same identity is NOT required) and rejoins through the current
// sequencer with full state transfer.
func TestExpelledMemberRejoins(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	for i := int64(1); i <= 6; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill backup m2 and wait for expulsion.
	cl.members[2].Stop()
	cl.fabric.Isolate(cl.capsules[2].Addr(), true)
	deadline := time.After(10 * time.Second)
	for {
		if _, ids := cl.members[0].View(); len(ids) == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("dead backup never expelled")
		case <-time.After(20 * time.Millisecond):
		}
	}
	// Restart: heal the network, rebuild the member on a fresh capsule.
	cl.fabric.Isolate(cl.capsules[2].Addr(), false)
	ep, err := cl.fabric.Endpoint("m2b")
	if err != nil {
		t.Fatal(err)
	}
	c := capsule.New("m2b", ep, codec)
	t.Cleanup(func() { _ = c.Close() })
	rep := &register{}
	m, err := NewMember(c, rep, fastCfg(ModeActive))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	if err := m.Join(context.Background(), cl.members[0].GroupRef()); err != nil {
		t.Fatal(err)
	}
	m.Start()
	// The rejoiner holds the full history and receives new traffic.
	if got := len(rep.history()); got != 6 {
		t.Fatalf("rejoiner caught up %d/6", got)
	}
	if _, _, err := cl.invoke("add", []wire.Value{int64(7)}); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(5 * time.Second)
	for len(rep.history()) != 7 {
		select {
		case <-deadline:
			t.Fatalf("rejoiner stuck at %d/7", len(rep.history()))
		case <-time.After(10 * time.Millisecond):
		}
	}
	if _, ids := cl.members[0].View(); len(ids) != 3 {
		t.Fatalf("view after rejoin: %v", ids)
	}
}

// TestDoublePromotionSkipsDeadBackup kills the sequencer AND the first
// backup simultaneously: the rank-2 backup must promote itself (after
// its longer, staggered window) and serve with full state.
func TestDoublePromotionSkipsDeadBackup(t *testing.T) {
	cl := newCluster(t, 4, ModeActive)
	const before = 8
	for i := int64(1); i <= before; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverge(t, cl, before)
	// Kill members 0 (sequencer) and 1 (first backup) together.
	cl.members[0].Stop()
	cl.members[1].Stop()
	cl.fabric.Isolate(cl.capsules[0].Addr(), true)
	cl.fabric.Isolate(cl.capsules[1].Addr(), true)

	outcome, res, err := cl.invoke("sum", nil)
	if err != nil || outcome != "ok" {
		t.Fatalf("post-double-failure invoke: %q %v", outcome, err)
	}
	want := int64(before * (before + 1) / 2)
	if res[0].(int64) != want {
		t.Fatalf("state after double failure: %v, want %d", res[0], want)
	}
	// Exactly one survivor leads.
	deadline := time.After(10 * time.Second)
	for {
		leaders := 0
		for _, m := range cl.members[2:] {
			if m.IsSequencer() {
				leaders++
			}
		}
		if leaders == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("%d leaders after double failure", leaders)
		case <-time.After(20 * time.Millisecond):
		}
	}
}
