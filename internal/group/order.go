package group

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"

	"odp/internal/rpc"
	"odp/internal/wire"
)

// Control operations are prefixed so they cannot collide with application
// operations on the replica.
const (
	opDeliver   = "g!deliver"
	opView      = "g!view"
	opHeartbeat = "g!heartbeat"
	opJoin      = "g!join"
	opFetch     = "g!fetch"
)

// pendingResult carries the local execution result of one sequenced
// invocation back to the waiting client handler on the sequencer.
type pendingResult struct {
	outcome string
	results []wire.Value
	err     error
}

// orderState is initialised lazily by ensureOrderState; kept separate so
// Member's zero fields stay meaningful.
type orderState struct {
	cond      *sync.Cond
	resultChs map[uint64]chan pendingResult
	applied   uint64 // seq of the last invocation applied to the replica
}

func (m *Member) ensureOrderState() {
	if m.order == nil {
		m.order = &orderState{
			cond:      sync.NewCond(&m.mu),
			resultChs: make(map[uint64]chan pendingResult),
		}
	}
}

// dispatch is the member's exported servant: group-control operations are
// handled by the machinery, everything else is an application invocation
// to be ordered.
func (m *Member) dispatch(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	if strings.HasPrefix(op, "g!") {
		switch op {
		case opDeliver:
			return m.onDeliver(args)
		case opView:
			return m.onView(args)
		case opHeartbeat:
			return m.onHeartbeat(args)
		case opJoin:
			return m.onJoin(ctx, args)
		case opFetch:
			return m.onFetch(args)
		default:
			return "", nil, fmt.Errorf("group: unknown control op %q", op)
		}
	}
	return m.invokeApp(ctx, op, args)
}

// invokeApp is the client-facing invocation path. Only the sequencer
// orders invocations; other members redirect.
func (m *Member) invokeApp(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	m.mu.Lock()
	m.ensureOrderState()
	if m.stopped {
		m.mu.Unlock()
		return "", nil, ErrStopped
	}
	if len(m.v.members) == 0 {
		m.mu.Unlock()
		return "", nil, errors.New("group: member has no view (not bootstrapped or joined)")
	}
	if m.v.sequencer().id != m.id {
		fwd := wire.Ref{ID: m.objID, Endpoints: []string{m.v.sequencer().addr}, Epoch: uint32(m.v.id)}
		m.mu.Unlock()
		return "", nil, &rpc.MovedError{Forward: fwd}
	}
	seq := m.nextSeq + 1
	m.nextSeq = seq
	inv := orderedInv{seq: seq, op: op, args: args}
	viewID := m.v.id
	peers := m.peersLocked()
	m.mu.Unlock()

	// Multicast to all backups before executing locally, so an ordered
	// invocation survives the sequencer.
	m.multicastDeliver(ctx, inv, peers, viewID)

	// Queue for local ordered execution and wait for the result. An
	// expulsion may have advanced the view id meanwhile — that is fine as
	// long as we are still the sequencer: the assigned sequence number
	// must be applied either way, or the ordering would have a permanent
	// hole.
	ch := make(chan pendingResult, 1)
	m.mu.Lock()
	if len(m.v.members) == 0 || m.v.sequencer().id != m.id {
		m.mu.Unlock()
		return "", nil, fmt.Errorf("group: leadership lost during invocation")
	}
	m.holdback[seq] = inv
	m.order.resultChs[seq] = ch
	m.order.cond.Broadcast()
	m.mu.Unlock()

	select {
	case res := <-ch:
		return res.outcome, res.results, res.err
	case <-ctx.Done():
		return "", nil, ctx.Err()
	case <-m.stop:
		return "", nil, ErrStopped
	}
}

// multicastDeliver pushes one ordered invocation to each peer, expelling
// peers that do not acknowledge in time.
func (m *Member) multicastDeliver(ctx context.Context, inv orderedInv, peers []memberInfo, viewID uint64) {
	if len(peers) == 0 {
		return
	}
	rec, _ := encodeInv(inv)
	var wg sync.WaitGroup
	failed := make([]bool, len(peers))
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p memberInfo) {
			defer wg.Done()
			_, _, err := m.call(ctx, p.addr, opDeliver,
				[]wire.Value{rec, viewID}, m.cfg.DeliverTimeout)
			if err != nil {
				failed[i] = true
			}
		}(i, p)
	}
	wg.Wait()
	for i, f := range failed {
		if f {
			m.expel(peers[i].id)
		}
	}
}

// onDeliver receives an ordered invocation from the sequencer.
func (m *Member) onDeliver(args []wire.Value) (string, []wire.Value, error) {
	if len(args) != 2 {
		return "", nil, errors.New("group: deliver wants (inv, viewID)")
	}
	inv, err := decodeInv(args[0])
	if err != nil {
		return "", nil, err
	}
	viewID, _ := args[1].(uint64)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ensureOrderState()
	if m.stopped {
		return "", nil, ErrStopped
	}
	if viewID < m.v.id {
		return "", nil, fmt.Errorf("group: deliver from stale view %d (now %d)", viewID, m.v.id)
	}
	m.lastHeard = m.cfg.Clock.Now()
	if inv.seq >= m.nextExec {
		if _, dup := m.holdback[inv.seq]; !dup {
			m.holdback[inv.seq] = inv
			m.order.cond.Broadcast()
		}
	}
	return "ok", nil, nil
}

// onFetch serves missing log entries to a member filling a gap.
func (m *Member) onFetch(args []wire.Value) (string, []wire.Value, error) {
	if len(args) != 2 {
		return "", nil, errors.New("group: fetch wants (from, to)")
	}
	from, _ := args[0].(uint64)
	to, _ := args[1].(uint64)
	m.mu.Lock()
	defer m.mu.Unlock()
	var out wire.List
	for _, inv := range m.log {
		if inv.seq >= from && inv.seq <= to {
			rec, _ := encodeInv(inv)
			out = append(out, rec)
		}
	}
	return "ok", []wire.Value{out}, nil
}

// applier is the single ordered executor: it pops holdback entries in
// sequence order, executing (or, for a standby backup, logging) each.
func (m *Member) applier() {
	m.mu.Lock()
	m.ensureOrderState()
	for {
		if m.stopped {
			m.mu.Unlock()
			return
		}
		inv, ok := m.holdback[m.nextExec]
		if !ok {
			// Nothing ready. If a later entry is held back, we have a
			// gap: fill it from the sequencer after a grace period.
			gap := false
			for seq := range m.holdback {
				if seq > m.nextExec {
					gap = true
					break
				}
			}
			if gap {
				m.mu.Unlock()
				m.fillGap()
				m.mu.Lock()
				continue
			}
			m.waitOrder()
			continue
		}
		delete(m.holdback, m.nextExec)
		ch, res := m.applyLocked(inv)
		if ch != nil {
			// Resolve the waiting client handler outside the critical
			// section: no channel operation may happen under m.mu.
			m.mu.Unlock()
			ch <- res
			m.mu.Lock()
		}
	}
}

// waitOrder blocks on the order condition with a periodic wakeup so gaps
// and stop flags are rechecked. Called with m.mu held; returns with m.mu
// held.
func (m *Member) waitOrder() {
	done := make(chan struct{})
	go func() {
		// A stoppable timer, not clk.After: an abandoned After waiter
		// (the cond fired first) would still fire later into a channel
		// nobody reads — a phantom deadline every virtual-time driver
		// then has to advance through.
		t := m.cfg.Clock.NewTimer(m.cfg.HeartbeatInterval)
		defer t.Stop()
		select {
		case <-t.C():
		case <-done:
			return
		}
		m.mu.Lock()
		m.order.cond.Broadcast()
		m.mu.Unlock()
	}()
	m.order.cond.Wait()
	close(done)
}

// applyLocked logs and (mode/role permitting) executes one invocation,
// then advances nextExec. It returns the waiting client handler's channel
// (nil if none) and the result to deliver on it; the caller must perform
// that send after releasing m.mu. Called with m.mu held.
func (m *Member) applyLocked(inv orderedInv) (chan pendingResult, pendingResult) {
	m.log = append(m.log, inv)
	isSequencer := len(m.v.members) > 0 && m.v.sequencer().id == m.id
	execute := m.cfg.Mode == ModeActive || isSequencer
	var res pendingResult
	if execute {
		res.outcome, res.results, res.err = m.replica.Dispatch(context.Background(), inv.op, inv.args)
		m.executed++
		m.order.applied = inv.seq
	}
	m.nextExec = inv.seq + 1
	ch := m.order.resultChs[inv.seq]
	delete(m.order.resultChs, inv.seq)
	m.order.cond.Broadcast()
	return ch, res
}

// fillGap fetches missing entries [nextExec, maxHeld-1] from the current
// sequencer.
func (m *Member) fillGap() {
	m.mu.Lock()
	if m.stopped || len(m.v.members) == 0 {
		m.mu.Unlock()
		return
	}
	from := m.nextExec
	var to uint64
	for seq := range m.holdback {
		if seq > to {
			to = seq
		}
	}
	seqr := m.v.sequencer()
	self := seqr.id == m.id
	m.mu.Unlock()
	if to <= from || self {
		return
	}
	_, results, err := m.call(context.Background(), seqr.addr, opFetch,
		[]wire.Value{from, to - 1}, m.cfg.DeliverTimeout)
	if err != nil || len(results) == 0 {
		return
	}
	list, ok := results[0].(wire.List)
	if !ok {
		return
	}
	m.mu.Lock()
	for _, v := range list {
		inv, err := decodeInv(v)
		if err != nil {
			continue
		}
		if inv.seq >= m.nextExec {
			if _, dup := m.holdback[inv.seq]; !dup {
				m.holdback[inv.seq] = inv
			}
		}
	}
	m.order.cond.Broadcast()
	m.mu.Unlock()
}
