package group

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/rpc"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

// register is a replica whose state is an append-only list plus a sum; it
// detects out-of-order or duplicated application by construction.
type register struct {
	mu   sync.Mutex
	vals []int64
	sum  int64
}

func (r *register) Dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch op {
	case "add":
		v := args[0].(int64)
		r.vals = append(r.vals, v)
		r.sum += v
		return "ok", []wire.Value{r.sum}, nil
	case "sum":
		return "ok", []wire.Value{r.sum}, nil
	case "len":
		return "ok", []wire.Value{int64(len(r.vals))}, nil
	default:
		return "", nil, fmt.Errorf("register: no op %q", op)
	}
}

func (r *register) history() []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int64(nil), r.vals...)
}

// snapRegister adds snapshot-based state transfer.
type snapRegister struct {
	register
}

func (r *snapRegister) Snapshot() ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 8*(1+len(r.vals)))
	binary.BigEndian.PutUint64(buf, uint64(len(r.vals)))
	for i, v := range r.vals {
		binary.BigEndian.PutUint64(buf[8*(i+1):], uint64(v))
	}
	return buf, nil
}

func (r *snapRegister) Restore(data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := binary.BigEndian.Uint64(data)
	r.vals = r.vals[:0]
	r.sum = 0
	for i := uint64(0); i < n; i++ {
		v := int64(binary.BigEndian.Uint64(data[8*(i+1):]))
		r.vals = append(r.vals, v)
		r.sum += v
	}
	return nil
}

type cluster struct {
	t        *testing.T
	fabric   *netsim.Fabric
	members  []*Member
	replicas []*register
	capsules []*capsule.Capsule
	client   *capsule.Capsule
}

// fastCfg keeps failure detection quick for tests.
func fastCfg(mode Mode) Config {
	return Config{
		GroupID:           "reg",
		Mode:              mode,
		HeartbeatInterval: 25 * time.Millisecond,
		FailureTimeout:    250 * time.Millisecond,
	}
}

func newCluster(t *testing.T, n int, mode Mode) *cluster {
	t.Helper()
	f := netsim.NewFabric(netsim.WithDefaultLink(netsim.LinkProfile{Latency: 200 * time.Microsecond}))
	t.Cleanup(func() { _ = f.Close() })
	cl := &cluster{t: t, fabric: f}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("m%d", i)
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		rep := &register{}
		m, err := NewMember(c, rep, fastCfg(mode))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
		cl.members = append(cl.members, m)
		cl.replicas = append(cl.replicas, rep)
		cl.capsules = append(cl.capsules, c)
	}
	cl.members[0].Bootstrap()
	for i := 1; i < n; i++ {
		if err := cl.members[i].Join(context.Background(), cl.members[0].GroupRef()); err != nil {
			t.Fatalf("member %d join: %v", i, err)
		}
	}
	for _, m := range cl.members {
		m.Start()
	}
	cep, err := f.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	cl.client = capsule.New("client", cep, codec)
	t.Cleanup(func() { _ = cl.client.Close() })
	return cl
}

// invoke calls the group with retry across view changes.
func (cl *cluster) invoke(op string, args []wire.Value) (string, []wire.Value, error) {
	ref := cl.members[0].GroupRef()
	// Gather a full endpoint set from every member's current view.
	eps := map[string]bool{}
	for _, m := range cl.members {
		for _, ep := range m.GroupRef().Endpoints {
			eps[ep] = true
		}
	}
	ref.Endpoints = ref.Endpoints[:0]
	for ep := range eps {
		ref.Endpoints = append(ref.Endpoints, ep)
	}
	var lastErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		outcome, res, err := cl.client.Invoke(context.Background(), ref, op, args,
			capsule.WithQoS(rpc.QoS{Timeout: 500 * time.Millisecond}))
		if err == nil {
			return outcome, res, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return "", nil, lastErr
}

func TestSingletonGroup(t *testing.T) {
	cl := newCluster(t, 1, ModeActive)
	for i := int64(1); i <= 5; i++ {
		outcome, res, err := cl.invoke("add", []wire.Value{i})
		if err != nil || outcome != "ok" {
			t.Fatalf("add %d: %q %v", i, outcome, err)
		}
		if res[0].(int64) != (i*(i+1))/2 {
			t.Fatalf("sum after %d: %v", i, res)
		}
	}
}

func TestActiveReplicationAllExecuteSameOrder(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	const n = 30
	for i := int64(1); i <= n; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	// All replicas converge to the same history, in the same order.
	waitConverge(t, cl, n)
	ref := cl.replicas[0].history()
	for i, rep := range cl.replicas {
		h := rep.history()
		if len(h) != n {
			t.Fatalf("replica %d has %d entries, want %d", i, len(h), n)
		}
		for j := range h {
			if h[j] != ref[j] {
				t.Fatalf("replica %d diverges at %d: %v vs %v", i, j, h[j], ref[j])
			}
		}
	}
}

func waitConverge(t *testing.T, cl *cluster, n int) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		all := true
		for _, rep := range cl.replicas {
			if len(rep.history()) != n {
				all = false
				break
			}
		}
		if all {
			return
		}
		select {
		case <-deadline:
			for i, rep := range cl.replicas {
				t.Logf("replica %d: %d entries", i, len(rep.history()))
			}
			t.Fatal("replicas did not converge")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func TestConcurrentClientsTotalOrder(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	var wg sync.WaitGroup
	const writers, per = 4, 10
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, _, err := cl.invoke("add", []wire.Value{int64(w*100 + i)}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	waitConverge(t, cl, writers*per)
	ref := cl.replicas[0].history()
	for i := 1; i < len(cl.replicas); i++ {
		h := cl.replicas[i].history()
		for j := range ref {
			if h[j] != ref[j] {
				t.Fatalf("order diverges at %d on replica %d", j, i)
			}
		}
	}
}

func TestStandbyBackupsDoNotExecute(t *testing.T) {
	cl := newCluster(t, 3, ModeStandby)
	for i := int64(1); i <= 10; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := cl.replicas[0].history(); len(got) != 10 {
		t.Fatalf("primary executed %d, want 10", len(got))
	}
	// Backups log but do not execute.
	time.Sleep(100 * time.Millisecond)
	for i := 1; i < 3; i++ {
		if n := len(cl.replicas[i].history()); n != 0 {
			t.Fatalf("standby backup %d executed %d invocations", i, n)
		}
		if cl.members[i].Executed() != 0 {
			t.Fatalf("standby backup %d executed", i)
		}
	}
}

func TestActiveFailoverNoStateLoss(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	const before = 20
	for i := int64(1); i <= before; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverge(t, cl, before)

	// Kill the sequencer.
	if !cl.members[0].IsSequencer() {
		t.Fatal("member 0 should be sequencer")
	}
	cl.members[0].Stop()
	cl.fabric.Isolate(cl.capsules[0].Addr(), true)

	// The group must recover: a backup promotes and continues service.
	outcome, res, err := cl.invoke("add", []wire.Value{int64(1000)})
	if err != nil || outcome != "ok" {
		t.Fatalf("post-failover invoke: %q %v %v", outcome, res, err)
	}
	wantSum := int64(before*(before+1)/2 + 1000)
	if res[0].(int64) != wantSum {
		t.Fatalf("state lost across failover: sum %v, want %d", res[0], wantSum)
	}
	// Exactly one of the survivors is now sequencer.
	time.Sleep(200 * time.Millisecond)
	seqs := 0
	for _, m := range cl.members[1:] {
		if m.IsSequencer() {
			seqs++
		}
	}
	if seqs != 1 {
		t.Fatalf("%d sequencers after failover", seqs)
	}
}

func TestStandbyFailoverReplaysLog(t *testing.T) {
	cl := newCluster(t, 2, ModeStandby)
	const before = 15
	for i := int64(1); i <= before; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(cl.replicas[1].history()); n != 0 {
		t.Fatalf("backup executed %d before failover", n)
	}
	cl.members[0].Stop()
	cl.fabric.Isolate(cl.capsules[0].Addr(), true)

	outcome, res, err := cl.invoke("sum", nil)
	if err != nil || outcome != "ok" {
		t.Fatalf("post-failover sum: %q %v", outcome, err)
	}
	want := int64(before * (before + 1) / 2)
	if res[0].(int64) != want {
		t.Fatalf("hot-standby replay incomplete: sum %v, want %d", res[0], want)
	}
	if cl.members[1].Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", cl.members[1].Promotions())
	}
}

func TestBackupExpelledWhenDead(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	if _, _, err := cl.invoke("add", []wire.Value{int64(1)}); err != nil {
		t.Fatal(err)
	}
	// Kill a backup.
	cl.members[2].Stop()
	cl.fabric.Isolate(cl.capsules[2].Addr(), true)

	// The sequencer must expel it and keep serving.
	deadline := time.After(5 * time.Second)
	for {
		_, members := cl.members[0].View()
		if len(members) == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("dead backup never expelled: view %v", members)
		case <-time.After(20 * time.Millisecond):
		}
	}
	outcome, _, err := cl.invoke("add", []wire.Value{int64(2)})
	if err != nil || outcome != "ok" {
		t.Fatalf("invoke after expulsion: %q %v", outcome, err)
	}
}

func TestJoinWithLogTransfer(t *testing.T) {
	cl := newCluster(t, 2, ModeActive)
	const before = 12
	for i := int64(1); i <= before; i++ {
		if _, _, err := cl.invoke("add", []wire.Value{i}); err != nil {
			t.Fatal(err)
		}
	}
	// A third member joins late and must catch up via log replay.
	ep, err := cl.fabric.Endpoint("late")
	if err != nil {
		t.Fatal(err)
	}
	c := capsule.New("late", ep, codec)
	t.Cleanup(func() { _ = c.Close() })
	rep := &register{}
	m, err := NewMember(c, rep, fastCfg(ModeActive))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Stop)
	if err := m.Join(context.Background(), cl.members[0].GroupRef()); err != nil {
		t.Fatal(err)
	}
	m.Start()
	if got := len(rep.history()); got != before {
		t.Fatalf("joiner caught up %d/%d", got, before)
	}
	// And receives subsequent invocations.
	if _, _, err := cl.invoke("add", []wire.Value{int64(99)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(3 * time.Second)
	for len(rep.history()) != before+1 {
		select {
		case <-deadline:
			t.Fatalf("joiner stuck at %d entries", len(rep.history()))
		case <-time.After(10 * time.Millisecond):
		}
	}
	_, members := cl.members[0].View()
	if len(members) != 3 {
		t.Fatalf("view after join: %v", members)
	}
}

func TestJoinWithSnapshotTransfer(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	mk := func(name string) (*capsule.Capsule, *snapRegister, *Member) {
		ep, err := f.Endpoint(name)
		if err != nil {
			t.Fatal(err)
		}
		c := capsule.New(name, ep, codec)
		t.Cleanup(func() { _ = c.Close() })
		rep := &snapRegister{}
		m, err := NewMember(c, rep, fastCfg(ModeActive))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Stop)
		return c, rep, m
	}
	_, rep0, m0 := mk("s0")
	m0.Bootstrap()
	m0.Start()

	// Seed state directly through the group path.
	cep, _ := f.Endpoint("cli")
	cli := capsule.New("cli", cep, codec)
	t.Cleanup(func() { _ = cli.Close() })
	for i := int64(1); i <= 7; i++ {
		outcome, _, err := cli.Invoke(context.Background(), m0.GroupRef(), "add", []wire.Value{i})
		if err != nil || outcome != "ok" {
			t.Fatalf("seed %d: %q %v", i, outcome, err)
		}
	}
	_, rep1, m1 := mk("s1")
	if err := m1.Join(context.Background(), m0.GroupRef()); err != nil {
		t.Fatal(err)
	}
	m1.Start()
	if rep1.sumNow() != rep0.sumNow() {
		t.Fatalf("snapshot transfer: joiner sum %d, want %d", rep1.sumNow(), rep0.sumNow())
	}
}

func (r *register) sumNow() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

func TestGroupRefLooksLikeSingleton(t *testing.T) {
	// Replication transparency: the group reference is an ordinary
	// interface reference; the client code is identical to the singleton
	// case.
	cl := newCluster(t, 3, ModeActive)
	ref := cl.members[0].GroupRef()
	if ref.ID == "" || len(ref.Endpoints) != 3 {
		t.Fatalf("group ref %v", ref)
	}
	outcome, res, err := cl.client.Invoke(context.Background(), ref, "add", []wire.Value{int64(4)})
	if err != nil || outcome != "ok" || res[0].(int64) != 4 {
		t.Fatalf("plain invoke on group ref: %q %v %v", outcome, res, err)
	}
}

func TestNonSequencerRedirects(t *testing.T) {
	cl := newCluster(t, 3, ModeActive)
	// Aim directly at a backup; the redirect must carry us to the
	// sequencer transparently (capsule follows MovedError).
	backupRef := wire.Ref{ID: "grp/reg", Endpoints: []string{cl.capsules[1].Addr()}}
	outcome, res, err := cl.client.Invoke(context.Background(), backupRef, "add", []wire.Value{int64(8)})
	if err != nil || outcome != "ok" || res[0].(int64) != 8 {
		t.Fatalf("redirected invoke: %q %v %v", outcome, res, err)
	}
}
