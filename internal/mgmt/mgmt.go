// Package mgmt implements application management (§7.4).
//
// "ODP requires extension of concepts of network management to cater for
// application management... The links to management required for ODP
// include: identification of points where network and system management
// information can contribute to the provision of transparency;
// identification of management interfaces for monitoring transparency
// mechanisms and changing transparency parameters."
//
// A Registry gathers counters and gauges; Instrument wraps any servant so
// its invocation rates, failures and latencies flow into the registry;
// and Agent exports the whole thing as an ordinary ODP interface — the
// management interface is itself managed by the same machinery it
// monitors. Parameters registered with the agent let operators retune
// transparency mechanisms (heartbeat rates, lease lifetimes, ...) at run
// time.
package mgmt

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/wire"
)

// Registry is a concurrency-safe set of named counters and gauges.
type Registry struct {
	mu       sync.Mutex
	counters map[string]uint64
	gauges   map[string]float64
	events   []Event
	maxEv    int
	clk      clock.Clock
}

// Event is one entry of the management event log.
type Event struct {
	// At is the event time.
	At time.Time
	// What describes the event.
	What string
}

// NewRegistry creates an empty registry keeping up to maxEvents recent
// events (default 256).
func NewRegistry(maxEvents int) *Registry {
	if maxEvents <= 0 {
		maxEvents = 256
	}
	return &Registry{
		counters: make(map[string]uint64),
		gauges:   make(map[string]float64),
		maxEv:    maxEvents,
		clk:      clock.Real{},
	}
}

// SetClock replaces the registry's time source (default clock.Real{});
// call before concurrent use.
func (r *Registry) SetClock(c clock.Clock) { r.clk = c }

// Add increments counter name by delta.
func (r *Registry) Add(name string, delta uint64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Set sets gauge name.
func (r *Registry) Set(name string, v float64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Counter reads counter name.
func (r *Registry) Counter(name string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge reads gauge name.
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Log appends an event to the bounded event log.
func (r *Registry) Log(what string) {
	r.mu.Lock()
	r.events = append(r.events, Event{At: r.clk.Now(), What: what})
	if len(r.events) > r.maxEv {
		r.events = r.events[len(r.events)-r.maxEv:]
	}
	r.mu.Unlock()
}

// Events returns a copy of the event log.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Snapshot renders all metrics as a wire record (counters under "c.",
// gauges under "g.").
func (r *Registry) Snapshot() wire.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := make(wire.Record, len(r.counters)+len(r.gauges))
	for k, v := range r.counters {
		rec["c."+k] = v
	}
	for k, v := range r.gauges {
		rec["g."+k] = v
	}
	return rec
}

// Instrument wraps a servant so its traffic feeds the registry under the
// given metric prefix: <prefix>.calls, <prefix>.errors and the gauge
// <prefix>.last_us (last dispatch latency in microseconds).
func Instrument(r *Registry, prefix string) capsule.Interceptor {
	return func(next capsule.Servant) capsule.Servant {
		return capsule.ServantFunc(func(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
			start := r.clk.Now()
			outcome, results, err := next.Dispatch(ctx, op, args)
			r.Add(prefix+".calls", 1)
			if err != nil {
				r.Add(prefix+".errors", 1)
			}
			r.Set(prefix+".last_us", float64(r.clk.Since(start).Microseconds()))
			return outcome, results, err
		})
	}
}

// Param is a runtime-tunable parameter: a transparency mechanism exposes
// one so operators can retune it (§7.4 "changing transparency
// parameters").
type Param struct {
	// Get reads the current value.
	Get func() wire.Value
	// Set applies a new value, validating it.
	Set func(wire.Value) error
}

// Agent exports a registry (and tunable parameters) as an ODP management
// interface with operations stats, events, get-param, set-param, gather
// and spans.
type Agent struct {
	registry *Registry
	ref      wire.Ref

	mu     sync.Mutex
	params map[string]Param
	// gather, when set, produces the node's unified stats snapshot
	// (every subsystem folded into one namespace — see obs.Fold); the
	// "gather" op falls back to the plain registry snapshot otherwise.
	gather func() wire.Record
	// spans, when set, produces the node's recent span ring for the
	// "spans" op; an untraced node answers with an empty list.
	spans func() wire.List
	// series, when set, produces the metrics time-series view (rates
	// derived from the recorder's snapshot ring) for the "series" op; a
	// node without a recorder answers with an empty record.
	series func() wire.Record
	// blackbox, when set, produces the flight recorder's retained breach
	// reports for the "blackbox" op; a node without a flight recorder
	// answers with an empty list.
	blackbox func() wire.List
}

// ErrUnknownParam reports an unregistered parameter.
var ErrUnknownParam = errors.New("mgmt: unknown parameter")

// NewAgent exports the management interface on c.
func NewAgent(c *capsule.Capsule, r *Registry) (*Agent, error) {
	a := &Agent{registry: r, params: make(map[string]Param)}
	ref, err := c.Export(capsule.ServantFunc(a.dispatch),
		capsule.WithID(c.Name()+"/mgmt"))
	if err != nil {
		return nil, err
	}
	a.ref = ref
	return a, nil
}

// Ref returns the management interface reference.
func (a *Agent) Ref() wire.Ref { return a.ref }

// RegisterParam exposes a tunable parameter.
func (a *Agent) RegisterParam(name string, p Param) {
	a.mu.Lock()
	a.params[name] = p
	a.mu.Unlock()
}

// SetGather installs the unified-snapshot producer behind the "gather"
// op. The platform wires this after assembling its subsystems.
func (a *Agent) SetGather(fn func() wire.Record) {
	a.mu.Lock()
	a.gather = fn
	a.mu.Unlock()
}

// SetSpans installs the span-ring producer behind the "spans" op.
func (a *Agent) SetSpans(fn func() wire.List) {
	a.mu.Lock()
	a.spans = fn
	a.mu.Unlock()
}

// SetSeries installs the time-series producer behind the "series" op.
func (a *Agent) SetSeries(fn func() wire.Record) {
	a.mu.Lock()
	a.series = fn
	a.mu.Unlock()
}

// SetBlackbox installs the breach-report producer behind the "blackbox"
// op.
func (a *Agent) SetBlackbox(fn func() wire.List) {
	a.mu.Lock()
	a.blackbox = fn
	a.mu.Unlock()
}

func (a *Agent) dispatch(_ context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "stats":
		return "ok", []wire.Value{a.registry.Snapshot()}, nil
	case "gather":
		a.mu.Lock()
		gather := a.gather
		a.mu.Unlock()
		if gather == nil {
			return "ok", []wire.Value{a.registry.Snapshot()}, nil
		}
		return "ok", []wire.Value{gather()}, nil
	case "spans":
		a.mu.Lock()
		spans := a.spans
		a.mu.Unlock()
		if spans == nil {
			return "ok", []wire.Value{wire.List{}}, nil
		}
		return "ok", []wire.Value{spans()}, nil
	case "series":
		a.mu.Lock()
		series := a.series
		a.mu.Unlock()
		if series == nil {
			return "ok", []wire.Value{wire.Record{}}, nil
		}
		return "ok", []wire.Value{series()}, nil
	case "blackbox":
		a.mu.Lock()
		blackbox := a.blackbox
		a.mu.Unlock()
		if blackbox == nil {
			return "ok", []wire.Value{wire.List{}}, nil
		}
		return "ok", []wire.Value{blackbox()}, nil
	case "events":
		evs := a.registry.Events()
		list := make(wire.List, len(evs))
		for i, e := range evs {
			list[i] = wire.Record{"at": e.At.UnixMilli(), "what": e.What}
		}
		return "ok", []wire.Value{list}, nil
	case "list-params":
		a.mu.Lock()
		names := make([]string, 0, len(a.params))
		for n := range a.params {
			names = append(names, n)
		}
		a.mu.Unlock()
		sort.Strings(names)
		list := make(wire.List, len(names))
		for i, n := range names {
			list[i] = n
		}
		return "ok", []wire.Value{list}, nil
	case "get-param":
		name, _ := args[0].(string)
		a.mu.Lock()
		p, ok := a.params[name]
		a.mu.Unlock()
		if !ok {
			return "unknown", nil, nil
		}
		return "ok", []wire.Value{p.Get()}, nil
	case "set-param":
		if len(args) != 2 {
			return "", nil, errors.New("mgmt: set-param wants (name, value)")
		}
		name, _ := args[0].(string)
		a.mu.Lock()
		p, ok := a.params[name]
		a.mu.Unlock()
		if !ok {
			return "unknown", nil, nil
		}
		if err := p.Set(args[1]); err != nil {
			return "rejected", []wire.Value{err.Error()}, nil
		}
		a.registry.Log("param " + name + " changed")
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("mgmt: no operation %q", op)
	}
}
