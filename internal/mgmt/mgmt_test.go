package mgmt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odp/internal/capsule"
	"odp/internal/netsim"
	"odp/internal/wire"
)

var codec = wire.BinaryCodec{}

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry(0)
	r.Add("x", 1)
	r.Add("x", 2)
	r.Set("g", 3.5)
	if r.Counter("x") != 3 || r.Gauge("g") != 3.5 {
		t.Fatalf("counter=%d gauge=%f", r.Counter("x"), r.Gauge("g"))
	}
	snap := r.Snapshot()
	if snap["c.x"] != uint64(3) || snap["g.g"] != 3.5 {
		t.Fatalf("snapshot %v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add("hits", 1)
			}
		}()
	}
	wg.Wait()
	if r.Counter("hits") != 8000 {
		t.Fatalf("hits %d", r.Counter("hits"))
	}
}

func TestEventLogBounded(t *testing.T) {
	r := NewRegistry(10)
	for i := 0; i < 25; i++ {
		r.Log(fmt.Sprintf("event-%d", i))
	}
	evs := r.Events()
	if len(evs) != 10 {
		t.Fatalf("event log holds %d", len(evs))
	}
	if evs[9].What != "event-24" {
		t.Fatalf("lost the newest events: %v", evs[9])
	}
}

func TestInstrumentCountsCallsAndErrors(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	ep, _ := f.Endpoint("n")
	c := capsule.New("n", ep, codec)
	t.Cleanup(func() { _ = c.Close() })

	r := NewRegistry(0)
	var fail atomic.Bool
	ref, err := c.Export(capsule.ServantFunc(
		func(context.Context, string, []wire.Value) (string, []wire.Value, error) {
			if fail.Load() {
				return "", nil, errors.New("boom")
			}
			time.Sleep(time.Millisecond)
			return "ok", nil, nil
		}),
		capsule.WithInterceptors(Instrument(r, "svc")))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, _, err := c.Invoke(ctx, ref, "work", nil); err != nil {
			t.Fatal(err)
		}
	}
	fail.Store(true)
	_, _, _ = c.Invoke(ctx, ref, "work", nil)
	if r.Counter("svc.calls") != 4 || r.Counter("svc.errors") != 1 {
		t.Fatalf("calls=%d errors=%d", r.Counter("svc.calls"), r.Counter("svc.errors"))
	}
	if r.Gauge("svc.last_us") < 0 {
		t.Fatal("latency gauge never set")
	}
}

func TestAgentRemoteStatsAndParams(t *testing.T) {
	f := netsim.NewFabric()
	t.Cleanup(func() { _ = f.Close() })
	sep, _ := f.Endpoint("server")
	cep, _ := f.Endpoint("manager")
	server := capsule.New("server", sep, codec)
	manager := capsule.New("manager", cep, codec)
	t.Cleanup(func() { _ = server.Close(); _ = manager.Close() })

	r := NewRegistry(0)
	r.Add("invocations", 7)
	agent, err := NewAgent(server, r)
	if err != nil {
		t.Fatal(err)
	}
	// A tunable transparency parameter: a heartbeat interval.
	var intervalMs atomic.Int64
	intervalMs.Store(50)
	agent.RegisterParam("heartbeat-ms", Param{
		Get: func() wire.Value { return intervalMs.Load() },
		Set: func(v wire.Value) error {
			n, ok := v.(int64)
			if !ok || n <= 0 {
				return fmt.Errorf("heartbeat must be a positive int, got %v", v)
			}
			intervalMs.Store(n)
			return nil
		},
	})

	ctx := context.Background()
	outcome, res, err := manager.Invoke(ctx, agent.Ref(), "stats", nil)
	if err != nil || outcome != "ok" {
		t.Fatalf("stats: %q %v", outcome, err)
	}
	if res[0].(wire.Record)["c.invocations"] != uint64(7) {
		t.Fatalf("stats record %v", res[0])
	}
	outcome, res, err = manager.Invoke(ctx, agent.Ref(), "get-param", []wire.Value{"heartbeat-ms"})
	if err != nil || outcome != "ok" || res[0].(int64) != 50 {
		t.Fatalf("get-param: %q %v %v", outcome, res, err)
	}
	outcome, _, err = manager.Invoke(ctx, agent.Ref(), "set-param", []wire.Value{"heartbeat-ms", int64(20)})
	if err != nil || outcome != "ok" {
		t.Fatalf("set-param: %q %v", outcome, err)
	}
	if intervalMs.Load() != 20 {
		t.Fatal("parameter not applied")
	}
	outcome, res, err = manager.Invoke(ctx, agent.Ref(), "set-param", []wire.Value{"heartbeat-ms", "fast"})
	if err != nil || outcome != "rejected" {
		t.Fatalf("invalid set: %q %v %v", outcome, res, err)
	}
	outcome, _, err = manager.Invoke(ctx, agent.Ref(), "get-param", []wire.Value{"no-such"})
	if err != nil || outcome != "unknown" {
		t.Fatalf("unknown param: %q %v", outcome, err)
	}
	outcome, res, err = manager.Invoke(ctx, agent.Ref(), "list-params", nil)
	if err != nil || outcome != "ok" || len(res[0].(wire.List)) != 1 {
		t.Fatalf("list-params: %q %v %v", outcome, res, err)
	}
	// Parameter changes are logged.
	outcome, res, err = manager.Invoke(ctx, agent.Ref(), "events", nil)
	if err != nil || outcome != "ok" || len(res[0].(wire.List)) == 0 {
		t.Fatalf("events: %q %v %v", outcome, res, err)
	}
}
