package trader

import (
	"context"
	"fmt"
	"time"

	"odp/internal/capsule"
	"odp/internal/types"
	"odp/internal/wire"
)

// Type is the trader's own interface type: the trading service is itself
// an ODP object, discoverable and invokable like any other.
var Type = types.Type{
	Name: "odp.Trader",
	Ops: map[string]types.Operation{
		"advertise": {
			Args:     []types.Desc{types.Rec, types.RefTo(""), types.Rec},
			Outcomes: map[string][]types.Desc{"ok": {types.String}, "error": {types.String}},
		},
		"withdraw": {
			Args:     []types.Desc{types.String},
			Outcomes: map[string][]types.Desc{"ok": {}, "error": {types.String}},
		},
		"import": {
			Args:     []types.Desc{types.Rec},
			Outcomes: map[string][]types.Desc{"ok": {types.List(types.Rec)}, "error": {types.String}},
		},
		"link": {
			Args:     []types.Desc{types.String, types.RefTo("")},
			Outcomes: map[string][]types.Desc{"ok": {}},
		},
	},
}

// dispatch implements the trader's remote interface.
func (t *Trader) dispatch(ctx context.Context, op string, args []wire.Value) (string, []wire.Value, error) {
	switch op {
	case "advertise":
		typ, err := types.DecodeType(args[0])
		if err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		ref, ok := args[1].(wire.Ref)
		if !ok {
			return "error", []wire.Value{"second argument must be a ref"}, nil
		}
		props, _ := args[2].(wire.Record)
		id, err := t.Advertise(typ, ref, props)
		if err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		return "ok", []wire.Value{id}, nil
	case "withdraw":
		id, _ := args[0].(string)
		if err := t.Withdraw(id); err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		return "ok", nil, nil
	case "import":
		spec, err := decodeImportSpec(args[0])
		if err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		offers, err := t.Import(ctx, spec)
		if err != nil {
			return "error", []wire.Value{err.Error()}, nil
		}
		list := make(wire.List, len(offers))
		for i, o := range offers {
			list[i] = encodeOffer(o)
		}
		return "ok", []wire.Value{list}, nil
	case "link":
		name, _ := args[0].(string)
		peer, ok := args[1].(wire.Ref)
		if !ok {
			return "", nil, fmt.Errorf("trader: link wants a ref, got %T", args[1])
		}
		t.LinkTo(name, peer)
		return "ok", nil, nil
	default:
		return "", nil, fmt.Errorf("trader: no operation %q", op)
	}
}

// importRemote forwards an import to a linked trader over the wire.
func (t *Trader) importRemote(ctx context.Context, peer wire.Ref, spec ImportSpec) ([]Offer, error) {
	hop := spec
	hop.MaxHops--
	// Scale the hop deadline by the remaining hop budget: the peer may
	// itself wait out a cut link hop.MaxHops levels down, and a uniform
	// per-hop timeout would expire here exactly when the peer's own wait
	// does — cascading one dead far-end peer into an empty result. With
	// the +1 headroom each level outlives its child by one timeout unit.
	q := t.fedQoS
	q.Timeout *= time.Duration(hop.MaxHops + 1)
	outcome, results, err := t.cap.Invoke(ctx, peer, "import",
		[]wire.Value{encodeImportSpec(hop)},
		capsule.WithQoS(q))
	if err != nil {
		return nil, err
	}
	if outcome != "ok" {
		return nil, fmt.Errorf("trader: remote import: %v", results)
	}
	list, ok := results[0].(wire.List)
	if !ok {
		return nil, fmt.Errorf("trader: remote import returned %T", results[0])
	}
	offers := make([]Offer, 0, len(list))
	for _, v := range list {
		o, err := decodeOffer(v)
		if err != nil {
			return nil, err
		}
		offers = append(offers, o)
	}
	return offers, nil
}

func encodeImportSpec(spec ImportSpec) wire.Record {
	constraints := make(wire.List, len(spec.Constraints))
	for i, c := range spec.Constraints {
		constraints[i] = wire.Record{
			"key":   c.Key,
			"op":    string(c.Op),
			"value": c.Value,
		}
	}
	visited := make(wire.List, len(spec.visited))
	for i, v := range spec.visited {
		visited[i] = v
	}
	return wire.Record{
		"requirement": types.EncodeType(spec.Requirement),
		"constraints": constraints,
		"maxHops":     int64(spec.MaxHops),
		"maxMatches":  int64(spec.MaxMatches),
		"visited":     visited,
	}
}

func decodeImportSpec(v wire.Value) (ImportSpec, error) {
	rec, ok := v.(wire.Record)
	if !ok {
		return ImportSpec{}, fmt.Errorf("trader: import spec is %T, want record", v)
	}
	req, err := types.DecodeType(rec["requirement"])
	if err != nil {
		return ImportSpec{}, err
	}
	spec := ImportSpec{Requirement: req}
	if h, ok := rec["maxHops"].(int64); ok {
		spec.MaxHops = int(h)
	}
	if m, ok := rec["maxMatches"].(int64); ok {
		spec.MaxMatches = int(m)
	}
	if cs, ok := rec["constraints"].(wire.List); ok {
		for _, cv := range cs {
			crec, ok := cv.(wire.Record)
			if !ok {
				return ImportSpec{}, fmt.Errorf("%w: constraint is %T", ErrBadConstraint, cv)
			}
			key, _ := crec["key"].(string)
			opStr, _ := crec["op"].(string)
			spec.Constraints = append(spec.Constraints, Constraint{
				Key:   key,
				Op:    ConstraintOp(opStr),
				Value: crec["value"],
			})
		}
	}
	if vs, ok := rec["visited"].(wire.List); ok {
		for _, vv := range vs {
			if s, ok := vv.(string); ok {
				spec.visited = append(spec.visited, s)
			}
		}
	}
	return spec, nil
}

func encodeOffer(o Offer) wire.Record {
	props := make(wire.Record, len(o.Properties))
	for k, v := range o.Properties {
		props[k] = v
	}
	return wire.Record{
		"id":          o.ID,
		"serviceType": o.ServiceType,
		"type":        types.EncodeType(o.Type),
		"ref":         o.Ref,
		"properties":  props,
	}
}

func decodeOffer(v wire.Value) (Offer, error) {
	rec, ok := v.(wire.Record)
	if !ok {
		return Offer{}, fmt.Errorf("trader: offer is %T, want record", v)
	}
	typ, err := types.DecodeType(rec["type"])
	if err != nil {
		return Offer{}, err
	}
	ref, ok := rec["ref"].(wire.Ref)
	if !ok {
		return Offer{}, fmt.Errorf("trader: offer ref is %T", rec["ref"])
	}
	o := Offer{Type: typ, Ref: ref}
	o.ID, _ = rec["id"].(string)
	o.ServiceType, _ = rec["serviceType"].(string)
	if props, ok := rec["properties"].(wire.Record); ok {
		o.Properties = make(map[string]wire.Value, len(props))
		for k, pv := range props {
			o.Properties[k] = pv
		}
	}
	return o, nil
}

// Client is a convenience wrapper for talking to a (possibly remote)
// trader interface.
type Client struct {
	cap    *capsule.Capsule
	trader wire.Ref
}

// NewClient binds c to the trader at ref.
func NewClient(c *capsule.Capsule, ref wire.Ref) *Client {
	return &Client{cap: c, trader: ref}
}

// Advertise exports an offer through the remote trader interface.
func (tc *Client) Advertise(ctx context.Context, serviceType types.Type, ref wire.Ref, properties map[string]wire.Value) (string, error) {
	props := make(wire.Record, len(properties))
	for k, v := range properties {
		props[k] = v
	}
	outcome, results, err := tc.cap.Invoke(ctx, tc.trader, "advertise",
		[]wire.Value{types.EncodeType(serviceType), ref, props})
	if err != nil {
		return "", err
	}
	if outcome != "ok" {
		return "", fmt.Errorf("trader: advertise: %v", results)
	}
	id, _ := results[0].(string)
	return id, nil
}

// Withdraw removes an offer through the remote trader interface.
func (tc *Client) Withdraw(ctx context.Context, offerID string) error {
	outcome, results, err := tc.cap.Invoke(ctx, tc.trader, "withdraw", []wire.Value{offerID})
	if err != nil {
		return err
	}
	if outcome != "ok" {
		return fmt.Errorf("trader: withdraw: %v", results)
	}
	return nil
}

// Import queries the remote trader.
func (tc *Client) Import(ctx context.Context, spec ImportSpec) ([]Offer, error) {
	outcome, results, err := tc.cap.Invoke(ctx, tc.trader, "import",
		[]wire.Value{encodeImportSpec(spec)})
	if err != nil {
		return nil, err
	}
	if outcome != "ok" {
		return nil, fmt.Errorf("trader: import: %v", results)
	}
	list, ok := results[0].(wire.List)
	if !ok {
		return nil, fmt.Errorf("trader: import returned %T", results[0])
	}
	offers := make([]Offer, 0, len(list))
	for _, v := range list {
		o, err := decodeOffer(v)
		if err != nil {
			return nil, err
		}
		offers = append(offers, o)
	}
	return offers, nil
}

// ImportOne returns the first matching offer or ErrNoOffer.
func (tc *Client) ImportOne(ctx context.Context, spec ImportSpec) (Offer, error) {
	spec.MaxMatches = 1
	offers, err := tc.Import(ctx, spec)
	if err != nil {
		return Offer{}, err
	}
	if len(offers) == 0 {
		return Offer{}, ErrNoOffer
	}
	return offers[0], nil
}
