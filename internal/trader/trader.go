// Package trader implements the ODP trading service (§6).
//
// "Clients within an open distributed system need to be able to find out
// which services are offered by servers... Servers describe the services
// they provide (the types and properties of their interfaces) and the
// locations of each interface. Clients describe the type and desired
// properties of services they want to use to a trader, which in turn
// supplies the client with references to suitable servers."
//
// Requirements realised here:
//
//   - offers are qualified with properties, matchable by constraints;
//   - "a client is only told of service offers which provide at least the
//     operations it requires" — matching is structural conformance
//     (delegated to the type manager, which may impose extra rules);
//   - federation: traders link to autonomous peer traders, forming an
//     arbitrary graph. Imports can traverse links; references returned
//     from a linked trader are qualified with the link's context so
//     context-relative naming keeps them resolvable (§6);
//   - offers may carry an activation hook via a resource manager
//     reference ("it must be possible to link offers to a resource
//     manager which can take whatever actions are required when the offer
//     is selected").
package trader

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"odp/internal/capsule"
	"odp/internal/clock"
	"odp/internal/obs"
	"odp/internal/rpc"
	"odp/internal/types"
	"odp/internal/wire"
)

// Errors returned by the trader.
var (
	// ErrNoOffer reports that an import matched nothing.
	ErrNoOffer = errors.New("trader: no matching offer")
	// ErrUnknownOffer reports a withdraw of a non-existent offer.
	ErrUnknownOffer = errors.New("trader: unknown offer")
	// ErrBadConstraint reports an unparsable property constraint.
	ErrBadConstraint = errors.New("trader: bad constraint")
)

// Offer is one advertised service.
type Offer struct {
	// ID identifies the offer within its trader.
	ID string
	// ServiceType names the offered interface type (resolvable in the
	// trader's type manager). The full type is stored alongside so
	// federated imports can match structurally without sharing a manager.
	ServiceType string
	// Type is the full interface type of the offer.
	Type types.Type
	// Ref is the offered interface reference.
	Ref wire.Ref
	// Properties qualify the offer ("service offers can be qualified
	// with properties to distinguish them").
	Properties map[string]wire.Value
}

// ConstraintOp is a property-constraint operator.
type ConstraintOp string

// Constraint operators.
const (
	OpEq     ConstraintOp = "=="
	OpNe     ConstraintOp = "!="
	OpGe     ConstraintOp = ">="
	OpLe     ConstraintOp = "<="
	OpExists ConstraintOp = "exists"
)

// Constraint restricts matching offers by one property.
type Constraint struct {
	// Key is the property name.
	Key string
	// Op is the comparison operator.
	Op ConstraintOp
	// Value is the comparand (ignored for OpExists).
	Value wire.Value
}

// matches evaluates the constraint against an offer's properties.
func (c Constraint) matches(props map[string]wire.Value) (bool, error) {
	v, ok := props[c.Key]
	if c.Op == OpExists {
		return ok, nil
	}
	if !ok {
		return false, nil
	}
	switch c.Op {
	case OpEq:
		return wire.Equal(v, c.Value), nil
	case OpNe:
		return !wire.Equal(v, c.Value), nil
	case OpGe, OpLe:
		cmp, err := compareNumeric(v, c.Value)
		if err != nil {
			return false, err
		}
		if c.Op == OpGe {
			return cmp >= 0, nil
		}
		return cmp <= 0, nil
	default:
		return false, fmt.Errorf("%w: operator %q", ErrBadConstraint, c.Op)
	}
}

func compareNumeric(a, b wire.Value) (int, error) {
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if !aok || !bok {
		return 0, fmt.Errorf("%w: non-numeric comparison %T vs %T", ErrBadConstraint, a, b)
	}
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

func asFloat(v wire.Value) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case uint64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// ImportSpec is a client's service requirement.
type ImportSpec struct {
	// Requirement is the interface type the client needs. Matching
	// offers must conform to it structurally.
	Requirement types.Type
	// Constraints restrict offer properties.
	Constraints []Constraint
	// MaxHops bounds federated link traversal (0 = local only).
	MaxHops int
	// MaxMatches bounds the result set (0 = unlimited).
	MaxMatches int

	// visited carries loop-avoidance state across federated hops.
	visited []string
}

// Trader is one trading context. The offer store is sharded by service
// type (see store.go): imports walk per-shard immutable snapshots with
// zero lock acquisitions, and writes touch only the shard they hash to.
type Trader struct {
	// contextName identifies this trader in context-relative names.
	contextName string
	typeManager *types.Manager
	cap         *capsule.Capsule
	clk         clock.Clock

	shards [NumShards]offerShard
	nextID atomic.Uint64

	// maxStaleness > 0 lets an import serve a snapshot up to that much
	// behind real time without rebuilding, as long as fewer than
	// maxPending writes have landed since it was built. The default (0)
	// rebuilds on the first read after any write: strictly fresh reads,
	// still lock-free between writes.
	maxStaleness time.Duration
	maxPending   uint64

	// linkMu guards the federation links; imports only touch it when
	// spec.MaxHops > 0.
	linkMu sync.RWMutex
	links  map[string]wire.Ref // link name -> peer trader ref

	// fedQoS is the per-hop QoS base for federated imports. The timeout
	// is scaled by the remaining hop budget (see importRemote), so a hop
	// near the importer always outlives its downstream chain and one cut
	// peer at the far end cannot cascade timeouts up the whole path.
	fedQoS rpc.QoS

	// rmMu guards resourceManagers (offer id -> resource manager ref to
	// poke on selection, §6 "link offers to a resource manager").
	// rmCount keeps the common no-manager import path lock-free.
	rmMu             sync.RWMutex
	resourceManagers map[string]wire.Ref
	rmCount          atomic.Int64

	stats traderCounters
	// importLat is the end-to-end import latency distribution, federated
	// hops included: how long service discovery takes from the client's
	// point of view.
	importLat obs.Histogram

	ref wire.Ref
}

// traderCounters is the hot-path form of TraderStats.
type traderCounters struct {
	advertises       atomic.Uint64
	withdraws        atomic.Uint64
	imports          atomic.Uint64
	importedOffers   atomic.Uint64
	snapshotHits     atomic.Uint64
	staleServes      atomic.Uint64
	snapshotRebuilds atomic.Uint64
}

// TraderStats counts offer-store events, shaped for obs.Fold: every
// field lands in Platform.Gather under "trader." (per-shard counts as
// trader.shard_offers.0 … trader.shard_offers.15).
type TraderStats struct {
	Offers           uint64 // live offers across all shards
	Advertises       uint64
	Withdraws        uint64
	Imports          uint64 // Import calls served
	ImportedOffers   uint64 // offers returned (post-constraint, pre-federation)
	SnapshotHits     uint64 // shard lookups served from a current snapshot
	StaleServes      uint64 // shard lookups served from a within-policy stale snapshot
	SnapshotRebuilds uint64 // snapshot publications
	SnapshotAgeMs    uint64 // age of the oldest published shard snapshot
	ShardOffers      [NumShards]uint64
}

// TraderOption configures New.
type TraderOption func(*Trader)

// WithTraderClock drives the snapshot staleness policy from clk instead
// of real time (virtual time under the sim harness).
func WithTraderClock(clk clock.Clock) TraderOption {
	return func(t *Trader) { t.clk = clk }
}

// WithSnapshotPolicy relaxes snapshot freshness: an import may serve a
// shard snapshot up to maxStaleness old as long as fewer than maxPending
// writes landed since it was built, deferring the rebuild instead of
// paying it on the first read after every write. Offers become visible
// at most maxStaleness late. The zero default keeps reads strictly
// fresh; maxPending defaults to 4096 when only an age is given.
func WithSnapshotPolicy(maxStaleness time.Duration, maxPending int) TraderOption {
	return func(t *Trader) {
		t.maxStaleness = maxStaleness
		if maxPending > 0 {
			t.maxPending = uint64(maxPending)
		}
	}
}

// WithFederationQoS sets the per-hop QoS base for federated imports.
// Each hop's invocation deadline is q.Timeout scaled by the remaining
// hop budget, so an importer N links from the horizon waits out at most
// N+1 timeout units while every intermediate hop still outlives its
// downstream chain. The zero default keeps the platform's standard
// invocation timeout as the base.
func WithFederationQoS(q rpc.QoS) TraderOption {
	return func(t *Trader) {
		if q.Timeout > 0 {
			t.fedQoS.Timeout = q.Timeout
		}
		if q.Retransmit > 0 {
			t.fedQoS.Retransmit = q.Retransmit
		}
	}
}

// New creates a trader named contextName, hosted on c, using tm for type
// matching. The trader exports itself as an ODP interface.
func New(contextName string, c *capsule.Capsule, tm *types.Manager, opts ...TraderOption) (*Trader, error) {
	t := &Trader{
		contextName:      contextName,
		typeManager:      tm,
		cap:              c,
		clk:              clock.Real{},
		maxPending:       4096,
		fedQoS:           rpc.QoS{Timeout: rpc.DefaultTimeout},
		links:            make(map[string]wire.Ref),
		resourceManagers: make(map[string]wire.Ref),
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.byID = make(map[string]*storedOffer)
		sh.buckets = make(map[string]*offerBucket)
	}
	for _, o := range opts {
		o(t)
	}
	ref, err := c.Export(capsule.ServantFunc(t.dispatch),
		capsule.WithID(c.Name()+"/trader"),
		capsule.WithType(Type))
	if err != nil {
		return nil, err
	}
	t.ref = ref
	return t, nil
}

// Ref returns the trader's own interface reference.
func (t *Trader) Ref() wire.Ref { return t.ref }

// ContextName returns the trader's federation context name.
func (t *Trader) ContextName() string { return t.contextName }

// Advertise registers an offer and returns its id.
func (t *Trader) Advertise(serviceType types.Type, ref wire.Ref, properties map[string]wire.Value) (string, error) {
	if serviceType.Name == "" {
		return "", fmt.Errorf("trader: offer needs a named type")
	}
	if err := t.typeManager.Register(serviceType); err != nil {
		return "", err
	}
	props := make(map[string]wire.Value, len(properties))
	for k, v := range properties {
		props[k] = wire.Clone(v)
	}
	id := t.contextName + "/offer-" + strconv.FormatUint(t.nextID.Add(1), 10)
	o := &Offer{
		ID:          id,
		ServiceType: serviceType.Name,
		Type:        serviceType, // replaced by the bucket's canonical clone on insert
		Ref:         wire.Clone(ref).(wire.Ref),
		Properties:  props,
	}
	t.shards[typeShard(serviceType.Name)].insert(o, serviceType.Signature())
	t.stats.advertises.Add(1)
	return id, nil
}

// AdvertiseOffer implements capsule.Advertiser using the trader's own
// type manager to resolve the named type.
func (t *Trader) AdvertiseOffer(serviceType string, ref wire.Ref, properties map[string]wire.Value) (string, error) {
	typ, err := t.typeManager.Lookup(serviceType)
	if err != nil {
		return "", err
	}
	return t.Advertise(typ, ref, properties)
}

// Withdraw removes an offer. The offer id does not carry its shard (ids
// are allocated before the type is hashed), so withdrawal probes the
// shards — 16 O(1) map lookups on a cold path.
func (t *Trader) Withdraw(offerID string) error {
	for i := range t.shards {
		if t.shards[i].remove(offerID) {
			t.stats.withdraws.Add(1)
			if t.rmCount.Load() > 0 {
				t.rmMu.Lock()
				if _, ok := t.resourceManagers[offerID]; ok {
					delete(t.resourceManagers, offerID)
					t.rmCount.Add(-1)
				}
				t.rmMu.Unlock()
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrUnknownOffer, offerID)
}

// WithdrawOffer implements capsule.Advertiser.
func (t *Trader) WithdrawOffer(offerID string) error { return t.Withdraw(offerID) }

// LinkTo federates this trader with a peer: imports may traverse the link
// and returned references are context-qualified with linkName.
func (t *Trader) LinkTo(linkName string, peer wire.Ref) {
	t.linkMu.Lock()
	t.links[linkName] = peer
	t.linkMu.Unlock()
}

// SetResourceManager attaches a resource manager to an offer. When the
// offer is selected by an import, the manager's "selected" announcement
// fires (activating a passive object, for example).
func (t *Trader) SetResourceManager(offerID string, rm wire.Ref) error {
	found := false
	for i := range t.shards {
		if t.shards[i].contains(offerID) {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: %q", ErrUnknownOffer, offerID)
	}
	t.rmMu.Lock()
	if _, ok := t.resourceManagers[offerID]; !ok {
		t.rmCount.Add(1)
	}
	t.resourceManagers[offerID] = rm
	t.rmMu.Unlock()
	return nil
}

// OfferCount returns the number of live offers.
func (t *Trader) OfferCount() int {
	var n int64
	for i := range t.shards {
		n += t.shards[i].count.Load()
	}
	return int(n)
}

// Stats returns a snapshot of the trader's counters.
func (t *Trader) Stats() TraderStats {
	st := TraderStats{
		Advertises:       t.stats.advertises.Load(),
		Withdraws:        t.stats.withdraws.Load(),
		Imports:          t.stats.imports.Load(),
		ImportedOffers:   t.stats.importedOffers.Load(),
		SnapshotHits:     t.stats.snapshotHits.Load(),
		StaleServes:      t.stats.staleServes.Load(),
		SnapshotRebuilds: t.stats.snapshotRebuilds.Load(),
	}
	now := t.clk.Now()
	var oldest time.Duration
	for i := range t.shards {
		n := t.shards[i].count.Load()
		st.ShardOffers[i] = uint64(n)
		st.Offers += uint64(n)
		if snap := t.shards[i].snap.Load(); snap != nil {
			if age := now.Sub(snap.builtAt); age > oldest {
				oldest = age
			}
		}
	}
	st.SnapshotAgeMs = uint64(oldest / time.Millisecond)
	return st
}

// ImportLatency snapshots the import latency histogram.
func (t *Trader) ImportLatency() obs.HistogramSnapshot {
	return t.importLat.Snapshot()
}

// lookup returns the read view of shard sh per the freshness policy: a
// current snapshot is served straight from the atomic pointer (the
// zero-lock hot path); a within-policy stale one is served as-is; only a
// snapshot out of policy pays a rebuild under the shard lock.
func (t *Trader) lookup(sh *offerShard) *shardSnapshot {
	v := sh.version.Load()
	snap := sh.snap.Load()
	if snap != nil && snap.version == v {
		t.stats.snapshotHits.Add(1)
		return snap
	}
	if snap != nil && t.maxStaleness > 0 && v-snap.version < t.maxPending &&
		t.clk.Now().Sub(snap.builtAt) < t.maxStaleness {
		t.stats.staleServes.Add(1)
		return snap
	}
	t.stats.snapshotRebuilds.Add(1)
	return sh.rebuild(t.clk.Now())
}

// Import finds offers conforming to spec, searching linked traders up to
// spec.MaxHops away. Matching offers are returned in a stable canonical
// order — shard index, then (service type, signature), then offer id —
// so repeated imports over an unchanged store are byte-identical;
// references from linked traders carry the link's context.
//
// The local scan takes zero locks when every shard snapshot is current:
// each shard costs one atomic pointer load, structural matching runs
// once per (type, signature) group rather than once per offer, and
// offers are deep-cloned only until MaxMatches is satisfied.
func (t *Trader) Import(ctx context.Context, spec ImportSpec) ([]Offer, error) {
	for _, seen := range spec.visited {
		if seen == t.contextName {
			return nil, nil // loop: already searched here
		}
	}
	spec.visited = append(spec.visited, t.contextName)
	t.stats.imports.Add(1)
	began := t.clk.Now()
	defer func() { t.importLat.Observe(t.clk.Since(began)) }()

	var matched []Offer
scan:
	for i := range t.shards {
		snap := t.lookup(&t.shards[i])
		for _, g := range snap.groups {
			if err := t.typeManager.MatchTypes(spec.Requirement, g.typ); err != nil {
				continue
			}
			for _, offer := range g.offers {
				ok := true
				for _, c := range spec.Constraints {
					m, err := c.matches(offer.Properties)
					if err != nil {
						return nil, err
					}
					if !m {
						ok = false
						break
					}
				}
				if ok {
					matched = append(matched, cloneOffer(offer))
					if spec.MaxMatches > 0 && len(matched) >= spec.MaxMatches {
						break scan
					}
				}
			}
		}
	}
	t.stats.importedOffers.Add(uint64(len(matched)))

	// Poke resource managers for selected local offers. rmCount gates the
	// common no-manager case off the lock entirely.
	if t.rmCount.Load() > 0 {
		for _, o := range matched {
			t.rmMu.RLock()
			rm, ok := t.resourceManagers[o.ID]
			t.rmMu.RUnlock()
			if ok {
				_ = t.cap.Announce(rm, "selected", []wire.Value{o.Ref})
			}
		}
	}

	if spec.MaxHops > 0 && (spec.MaxMatches == 0 || len(matched) < spec.MaxMatches) {
		t.linkMu.RLock()
		links := make(map[string]wire.Ref, len(t.links))
		for name, ref := range t.links {
			links[name] = ref
		}
		t.linkMu.RUnlock()
		linkNames := make([]string, 0, len(links))
		for name := range links {
			linkNames = append(linkNames, name)
		}
		sort.Strings(linkNames)
		for _, name := range linkNames {
			remote, err := t.importRemote(ctx, links[name], spec)
			if err != nil {
				continue // an unreachable federation peer must not kill the import
			}
			for _, o := range remote {
				o.Ref = o.Ref.WithContext(name)
				o.ID = name + "!" + o.ID
				matched = append(matched, o)
			}
		}
	}
	if spec.MaxMatches > 0 && len(matched) > spec.MaxMatches {
		matched = matched[:spec.MaxMatches]
	}
	return matched, nil
}

func cloneOffer(o *Offer) Offer {
	props := make(map[string]wire.Value, len(o.Properties))
	for k, v := range o.Properties {
		props[k] = wire.Clone(v)
	}
	return Offer{
		ID:          o.ID,
		ServiceType: o.ServiceType,
		Type:        o.Type.Clone(),
		Ref:         wire.Clone(o.Ref).(wire.Ref),
		Properties:  props,
	}
}
