// Package trader implements the ODP trading service (§6).
//
// "Clients within an open distributed system need to be able to find out
// which services are offered by servers... Servers describe the services
// they provide (the types and properties of their interfaces) and the
// locations of each interface. Clients describe the type and desired
// properties of services they want to use to a trader, which in turn
// supplies the client with references to suitable servers."
//
// Requirements realised here:
//
//   - offers are qualified with properties, matchable by constraints;
//   - "a client is only told of service offers which provide at least the
//     operations it requires" — matching is structural conformance
//     (delegated to the type manager, which may impose extra rules);
//   - federation: traders link to autonomous peer traders, forming an
//     arbitrary graph. Imports can traverse links; references returned
//     from a linked trader are qualified with the link's context so
//     context-relative naming keeps them resolvable (§6);
//   - offers may carry an activation hook via a resource manager
//     reference ("it must be possible to link offers to a resource
//     manager which can take whatever actions are required when the offer
//     is selected").
package trader

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"odp/internal/capsule"
	"odp/internal/types"
	"odp/internal/wire"
)

// Errors returned by the trader.
var (
	// ErrNoOffer reports that an import matched nothing.
	ErrNoOffer = errors.New("trader: no matching offer")
	// ErrUnknownOffer reports a withdraw of a non-existent offer.
	ErrUnknownOffer = errors.New("trader: unknown offer")
	// ErrBadConstraint reports an unparsable property constraint.
	ErrBadConstraint = errors.New("trader: bad constraint")
)

// Offer is one advertised service.
type Offer struct {
	// ID identifies the offer within its trader.
	ID string
	// ServiceType names the offered interface type (resolvable in the
	// trader's type manager). The full type is stored alongside so
	// federated imports can match structurally without sharing a manager.
	ServiceType string
	// Type is the full interface type of the offer.
	Type types.Type
	// Ref is the offered interface reference.
	Ref wire.Ref
	// Properties qualify the offer ("service offers can be qualified
	// with properties to distinguish them").
	Properties map[string]wire.Value
}

// ConstraintOp is a property-constraint operator.
type ConstraintOp string

// Constraint operators.
const (
	OpEq     ConstraintOp = "=="
	OpNe     ConstraintOp = "!="
	OpGe     ConstraintOp = ">="
	OpLe     ConstraintOp = "<="
	OpExists ConstraintOp = "exists"
)

// Constraint restricts matching offers by one property.
type Constraint struct {
	// Key is the property name.
	Key string
	// Op is the comparison operator.
	Op ConstraintOp
	// Value is the comparand (ignored for OpExists).
	Value wire.Value
}

// matches evaluates the constraint against an offer's properties.
func (c Constraint) matches(props map[string]wire.Value) (bool, error) {
	v, ok := props[c.Key]
	if c.Op == OpExists {
		return ok, nil
	}
	if !ok {
		return false, nil
	}
	switch c.Op {
	case OpEq:
		return wire.Equal(v, c.Value), nil
	case OpNe:
		return !wire.Equal(v, c.Value), nil
	case OpGe, OpLe:
		cmp, err := compareNumeric(v, c.Value)
		if err != nil {
			return false, err
		}
		if c.Op == OpGe {
			return cmp >= 0, nil
		}
		return cmp <= 0, nil
	default:
		return false, fmt.Errorf("%w: operator %q", ErrBadConstraint, c.Op)
	}
}

func compareNumeric(a, b wire.Value) (int, error) {
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if !aok || !bok {
		return 0, fmt.Errorf("%w: non-numeric comparison %T vs %T", ErrBadConstraint, a, b)
	}
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	default:
		return 0, nil
	}
}

func asFloat(v wire.Value) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case uint64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// ImportSpec is a client's service requirement.
type ImportSpec struct {
	// Requirement is the interface type the client needs. Matching
	// offers must conform to it structurally.
	Requirement types.Type
	// Constraints restrict offer properties.
	Constraints []Constraint
	// MaxHops bounds federated link traversal (0 = local only).
	MaxHops int
	// MaxMatches bounds the result set (0 = unlimited).
	MaxMatches int

	// visited carries loop-avoidance state across federated hops.
	visited []string
}

// Trader is one trading context.
type Trader struct {
	// contextName identifies this trader in context-relative names.
	contextName string
	typeManager *types.Manager
	cap         *capsule.Capsule

	mu     sync.RWMutex
	offers map[string]*Offer
	links  map[string]wire.Ref // link name -> peer trader ref
	nextID uint64

	// resourceManagers maps offer id -> resource manager ref to poke on
	// selection (§6 "link offers to a resource manager").
	resourceManagers map[string]wire.Ref

	ref wire.Ref
}

// New creates a trader named contextName, hosted on c, using tm for type
// matching. The trader exports itself as an ODP interface.
func New(contextName string, c *capsule.Capsule, tm *types.Manager) (*Trader, error) {
	t := &Trader{
		contextName:      contextName,
		typeManager:      tm,
		cap:              c,
		offers:           make(map[string]*Offer),
		links:            make(map[string]wire.Ref),
		resourceManagers: make(map[string]wire.Ref),
	}
	ref, err := c.Export(capsule.ServantFunc(t.dispatch),
		capsule.WithID(c.Name()+"/trader"),
		capsule.WithType(Type))
	if err != nil {
		return nil, err
	}
	t.ref = ref
	return t, nil
}

// Ref returns the trader's own interface reference.
func (t *Trader) Ref() wire.Ref { return t.ref }

// ContextName returns the trader's federation context name.
func (t *Trader) ContextName() string { return t.contextName }

// Advertise registers an offer and returns its id.
func (t *Trader) Advertise(serviceType types.Type, ref wire.Ref, properties map[string]wire.Value) (string, error) {
	if serviceType.Name == "" {
		return "", fmt.Errorf("trader: offer needs a named type")
	}
	if err := t.typeManager.Register(serviceType); err != nil {
		return "", err
	}
	props := make(map[string]wire.Value, len(properties))
	for k, v := range properties {
		props[k] = wire.Clone(v)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.contextName + "/offer-" + strconv.FormatUint(t.nextID, 10)
	t.offers[id] = &Offer{
		ID:          id,
		ServiceType: serviceType.Name,
		Type:        serviceType.Clone(),
		Ref:         wire.Clone(ref).(wire.Ref),
		Properties:  props,
	}
	return id, nil
}

// AdvertiseOffer implements capsule.Advertiser using the trader's own
// type manager to resolve the named type.
func (t *Trader) AdvertiseOffer(serviceType string, ref wire.Ref, properties map[string]wire.Value) (string, error) {
	typ, err := t.typeManager.Lookup(serviceType)
	if err != nil {
		return "", err
	}
	return t.Advertise(typ, ref, properties)
}

// Withdraw removes an offer.
func (t *Trader) Withdraw(offerID string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.offers[offerID]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOffer, offerID)
	}
	delete(t.offers, offerID)
	delete(t.resourceManagers, offerID)
	return nil
}

// WithdrawOffer implements capsule.Advertiser.
func (t *Trader) WithdrawOffer(offerID string) error { return t.Withdraw(offerID) }

// LinkTo federates this trader with a peer: imports may traverse the link
// and returned references are context-qualified with linkName.
func (t *Trader) LinkTo(linkName string, peer wire.Ref) {
	t.mu.Lock()
	t.links[linkName] = peer
	t.mu.Unlock()
}

// SetResourceManager attaches a resource manager to an offer. When the
// offer is selected by an import, the manager's "selected" announcement
// fires (activating a passive object, for example).
func (t *Trader) SetResourceManager(offerID string, rm wire.Ref) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.offers[offerID]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownOffer, offerID)
	}
	t.resourceManagers[offerID] = rm
	return nil
}

// OfferCount returns the number of live offers.
func (t *Trader) OfferCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.offers)
}

// Import finds offers conforming to spec, searching linked traders up to
// spec.MaxHops away. Matching offers are returned sorted by id for
// determinism; references from linked traders carry the link's context.
func (t *Trader) Import(ctx context.Context, spec ImportSpec) ([]Offer, error) {
	for _, seen := range spec.visited {
		if seen == t.contextName {
			return nil, nil // loop: already searched here
		}
	}
	spec.visited = append(spec.visited, t.contextName)

	var matched []Offer
	t.mu.RLock()
	ids := make([]string, 0, len(t.offers))
	for id := range t.offers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		offer := t.offers[id]
		if err := t.typeManager.MatchTypes(spec.Requirement, offer.Type); err != nil {
			continue
		}
		ok := true
		for _, c := range spec.Constraints {
			m, err := c.matches(offer.Properties)
			if err != nil {
				t.mu.RUnlock()
				return nil, err
			}
			if !m {
				ok = false
				break
			}
		}
		if ok {
			matched = append(matched, cloneOffer(offer))
		}
	}
	links := make(map[string]wire.Ref, len(t.links))
	for name, ref := range t.links {
		links[name] = ref
	}
	t.mu.RUnlock()

	// Poke resource managers for selected local offers.
	for _, o := range matched {
		t.mu.RLock()
		rm, ok := t.resourceManagers[o.ID]
		t.mu.RUnlock()
		if ok {
			_ = t.cap.Announce(rm, "selected", []wire.Value{o.Ref})
		}
	}

	if spec.MaxHops > 0 && (spec.MaxMatches == 0 || len(matched) < spec.MaxMatches) {
		linkNames := make([]string, 0, len(links))
		for name := range links {
			linkNames = append(linkNames, name)
		}
		sort.Strings(linkNames)
		for _, name := range linkNames {
			remote, err := t.importRemote(ctx, links[name], spec)
			if err != nil {
				continue // an unreachable federation peer must not kill the import
			}
			for _, o := range remote {
				o.Ref = o.Ref.WithContext(name)
				o.ID = name + "!" + o.ID
				matched = append(matched, o)
			}
		}
	}
	if spec.MaxMatches > 0 && len(matched) > spec.MaxMatches {
		matched = matched[:spec.MaxMatches]
	}
	return matched, nil
}

func cloneOffer(o *Offer) Offer {
	props := make(map[string]wire.Value, len(o.Properties))
	for k, v := range o.Properties {
		props[k] = wire.Clone(v)
	}
	return Offer{
		ID:          o.ID,
		ServiceType: o.ServiceType,
		Type:        o.Type.Clone(),
		Ref:         wire.Clone(o.Ref).(wire.Ref),
		Properties:  props,
	}
}
