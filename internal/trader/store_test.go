package trader

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"odp/internal/clock"
	"odp/internal/types"
	"odp/internal/wire"
)

// traderWith builds a trader with extra options on a fresh fabric.
func (e *env) traderWith(name string, opts ...TraderOption) *Trader {
	c := e.capsule(name)
	tr, err := New(name, c, types.NewManager(), opts...)
	if err != nil {
		e.t.Fatal(err)
	}
	return tr
}

func serviceN(i int) types.Type {
	return types.Type{
		Name: fmt.Sprintf("Svc%03d", i),
		Ops: map[string]types.Operation{
			"run": {Outcomes: map[string][]types.Desc{"ok": {types.Int}}},
		},
	}
}

// TestImportLockFree: with every shard snapshot current, Import must
// complete while all 16 shard mutexes are held by someone else — the
// read path takes zero locks.
func TestImportLockFree(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	for i := 0; i < 32; i++ {
		svc := serviceN(i % 4)
		if _, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Prime every shard snapshot.
	if _, err := tr.Import(context.Background(), ImportSpec{Requirement: serviceN(0)}); err != nil {
		t.Fatal(err)
	}

	for i := range tr.shards {
		tr.shards[i].mu.Lock()
	}
	defer func() {
		for i := range tr.shards {
			tr.shards[i].mu.Unlock()
		}
	}()

	done := make(chan []Offer, 1)
	go func() {
		offers, err := tr.Import(context.Background(), ImportSpec{Requirement: serviceN(1)})
		if err != nil {
			done <- nil
			return
		}
		done <- offers
	}()
	select {
	case offers := <-done:
		// Every serviceN variant is structurally identical, so the
		// requirement conforms to all 32 offers.
		if len(offers) != 32 {
			t.Fatalf("lock-free import returned %d offers, want 32", len(offers))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Import blocked on a shard mutex: snapshot path is not lock-free")
	}
	if hits := tr.Stats().SnapshotHits; hits < NumShards {
		t.Fatalf("SnapshotHits = %d, want >= %d (all shards current)", hits, NumShards)
	}
}

// TestImportDeterministicOrder: repeated imports return the canonical
// order (shard, then (type, signature), then offer id) regardless of
// insertion order, and churn that restores the same offer set restores
// the same order. Run with -count=2: the FNV shard layout must be
// byte-identical across processes.
func TestImportDeterministicOrder(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(8))

	// Advertise the same logical population into two traders in
	// different orders; the import order must agree.
	mk := func(name string, perm []int) ([]string, *Trader) {
		tr := e.trader(name)
		ids := make([]string, 0, len(perm))
		for _, i := range perm {
			svc := serviceN(i % 7)
			id, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%d", i)),
				map[string]wire.Value{"slot": int64(i)})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		return ids, tr
	}
	fwd := make([]int, 40)
	for i := range fwd {
		fwd[i] = i
	}
	shuffled := append([]int(nil), fwd...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	_, trA := mk("tA", fwd)
	_, trB := mk("tB", shuffled)

	anyReq := types.Type{Name: "Any", Ops: map[string]types.Operation{}}
	keyOf := func(offers []Offer) []string {
		keys := make([]string, len(offers))
		for i, o := range offers {
			keys[i] = o.ServiceType + "/" + o.Ref.ID
		}
		return keys
	}
	// groupSeq is the order of (service type) runs in the result — fixed
	// by the FNV shard layout, independent of insertion order.
	groupSeq := func(offers []Offer) []string {
		var seq []string
		for _, o := range offers {
			if len(seq) == 0 || seq[len(seq)-1] != o.ServiceType {
				seq = append(seq, o.ServiceType)
			}
		}
		return seq
	}
	a, err := trA.Import(context.Background(), ImportSpec{Requirement: anyReq})
	if err != nil {
		t.Fatal(err)
	}
	b, err := trB.Import(context.Background(), ImportSpec{Requirement: anyReq})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("imports returned %d / %d offers, want 40", len(a), len(b))
	}
	ka := keyOf(a)
	ga, gb := groupSeq(a), groupSeq(b)
	if len(ga) != 7 || len(gb) != 7 {
		t.Fatalf("group runs %v / %v, want each of the 7 types exactly once", ga, gb)
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Fatalf("group order diverges at %d: %q vs %q — shard layout depends on insertion order", i, ga[i], gb[i])
		}
	}
	// Within a group offers run in ascending offer-id order.
	for _, offers := range [][]Offer{a, b} {
		for i := 1; i < len(offers); i++ {
			if offers[i].ServiceType == offers[i-1].ServiceType && offers[i].ID <= offers[i-1].ID {
				t.Fatalf("ids out of order within group %s: %q after %q",
					offers[i].ServiceType, offers[i].ID, offers[i-1].ID)
			}
		}
	}

	// Repeat imports over an unchanged store are identical.
	a2, err := trA.Import(context.Background(), ImportSpec{Requirement: anyReq})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keyOf(a2) {
		if k != ka[i] {
			t.Fatalf("repeat import diverges at %d: %q vs %q", i, k, ka[i])
		}
	}

	// Churn: withdraw half, re-advertise the same services, and the
	// canonical order still only depends on the surviving offer set.
	ids, trC := mk("tC", fwd)
	for i := 0; i < len(ids); i += 2 {
		if err := trC.Withdraw(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	c, err := trC.Import(context.Background(), ImportSpec{Requirement: anyReq})
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 20 {
		t.Fatalf("post-churn import returned %d offers, want 20", len(c))
	}
	kc := keyOf(c)
	want := make([]string, 0, 20)
	for _, k := range ka {
		var n int
		if _, err := fmt.Sscanf(k[len(k)-ridLen(k):], "r%d", &n); err == nil && n%2 == 1 {
			want = append(want, k)
		}
	}
	for i := range kc {
		if kc[i] != want[i] {
			t.Fatalf("post-churn order diverges at %d: %q vs %q", i, kc[i], want[i])
		}
	}
}

// ridLen returns the length of the trailing "rN" ref id in a key.
func ridLen(k string) int {
	n := 0
	for i := len(k) - 1; i >= 0 && k[i] != '/'; i-- {
		n++
	}
	return n
}

// TestSnapshotPolicyStaleness: under WithSnapshotPolicy a write does not
// force a rebuild on the next read; the stale snapshot is served until
// either the age bound or the pending-writes bound trips.
func TestSnapshotPolicyStaleness(t *testing.T) {
	e := newEnv(t)
	fc := clock.NewFake(time.Unix(500, 0))
	tr := e.traderWith("t1",
		WithTraderClock(fc),
		WithSnapshotPolicy(100*time.Millisecond, 3))
	svc := serviceN(0)
	if _, err := tr.Advertise(svc, mkRef("r0"), nil); err != nil {
		t.Fatal(err)
	}
	imp := func() int {
		t.Helper()
		offers, err := tr.Import(context.Background(), ImportSpec{Requirement: svc})
		if err != nil {
			t.Fatal(err)
		}
		return len(offers)
	}
	if n := imp(); n != 1 {
		t.Fatalf("initial import: %d offers, want 1", n) // builds the snapshot
	}

	// One pending write, within the age bound: served stale, the new
	// offer is invisible.
	if _, err := tr.Advertise(svc, mkRef("r1"), nil); err != nil {
		t.Fatal(err)
	}
	if n := imp(); n != 1 {
		t.Fatalf("within policy: %d offers, want 1 (stale serve)", n)
	}
	if st := tr.Stats(); st.StaleServes == 0 {
		t.Fatalf("StaleServes = 0, want > 0: %+v", st)
	}

	// Age bound trips: the next read rebuilds and sees the write.
	fc.Advance(150 * time.Millisecond)
	if n := imp(); n != 2 {
		t.Fatalf("past age bound: %d offers, want 2 (rebuild)", n)
	}

	// Pending-writes bound trips even with no time passing.
	for i := 2; i < 5; i++ {
		if _, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := imp(); n != 5 {
		t.Fatalf("past pending bound: %d offers, want 5 (rebuild)", n)
	}
}

// TestDefaultPolicyStrictlyFresh: without WithSnapshotPolicy every write
// is visible to the very next import.
func TestDefaultPolicyStrictlyFresh(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	svc := serviceN(0)
	for i := 0; i < 3; i++ {
		if _, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
		offers, err := tr.Import(context.Background(), ImportSpec{Requirement: svc})
		if err != nil {
			t.Fatal(err)
		}
		if len(offers) != i+1 {
			t.Fatalf("after advertise %d: %d offers, want %d", i, len(offers), i+1)
		}
	}
}

// TestTraderStats: the counter set that Platform.Gather folds.
func TestTraderStats(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	svc := serviceN(0)
	var lastID string
	for i := 0; i < 5; i++ {
		id, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%d", i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		lastID = id
	}
	if err := tr.Withdraw(lastID); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Import(context.Background(), ImportSpec{Requirement: svc}); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Advertises != 5 || st.Withdraws != 1 || st.Imports != 1 || st.ImportedOffers != 4 {
		t.Fatalf("stats %+v", st)
	}
	if st.Offers != 4 {
		t.Fatalf("Offers = %d, want 4", st.Offers)
	}
	// All offers share one service type, so exactly one shard holds them.
	var populated int
	var sum uint64
	for _, n := range st.ShardOffers {
		if n > 0 {
			populated++
		}
		sum += n
	}
	if populated != 1 || sum != 4 {
		t.Fatalf("ShardOffers = %v, want 4 offers in exactly one shard", st.ShardOffers)
	}
	if st.SnapshotRebuilds == 0 {
		t.Fatalf("SnapshotRebuilds = 0, want > 0: %+v", st)
	}
}

// TestImportBoundedCloning: offers past MaxMatches are never deep-cloned
// — the allocation count of a single-match import over a large store
// must not scale with store size.
func TestImportBoundedCloning(t *testing.T) {
	e := newEnv(t)
	tr := e.trader("t1")
	svc := serviceN(0)
	for i := 0; i < 512; i++ {
		if _, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%03d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	spec := ImportSpec{Requirement: svc, MaxMatches: 1}
	ctx := context.Background()
	if _, err := tr.Import(ctx, spec); err != nil {
		t.Fatal(err) // prime the snapshot outside the measured region
	}
	allocs := testing.AllocsPerRun(20, func() {
		offers, err := tr.Import(ctx, spec)
		if err != nil || len(offers) != 1 {
			t.Fatalf("import: %v %v", offers, err)
		}
	})
	// One cloned offer plus fixed scan overhead. 512 stored offers would
	// cost thousands of allocations if each were cloned.
	if allocs > 64 {
		t.Fatalf("single-match import over 512 offers costs %.0f allocs/op — cloning is not bounded by MaxMatches", allocs)
	}
}

// TestSnapshotPolicyPendingBoundary pins the pending-writes bound as
// exclusive: a gap of exactly maxPending rebuilds, one fewer serves
// stale. The age bound is kept far away so only the write gap decides.
func TestSnapshotPolicyPendingBoundary(t *testing.T) {
	e := newEnv(t)
	fc := clock.NewFake(time.Unix(500, 0))
	tr := e.traderWith("t1",
		WithTraderClock(fc),
		WithSnapshotPolicy(time.Hour, 3))
	svc := serviceN(0)
	imp := func() int {
		t.Helper()
		offers, err := tr.Import(context.Background(), ImportSpec{Requirement: svc})
		if err != nil {
			t.Fatal(err)
		}
		return len(offers)
	}
	if _, err := tr.Advertise(svc, mkRef("r0"), nil); err != nil {
		t.Fatal(err)
	}
	if n := imp(); n != 1 {
		t.Fatalf("initial import: %d offers, want 1", n) // builds the snapshot
	}

	// Gap of maxPending-1: still within policy, writes invisible.
	for i := 1; i < 3; i++ {
		if _, err := tr.Advertise(svc, mkRef(fmt.Sprintf("r%d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := imp(); n != 1 {
		t.Fatalf("gap maxPending-1: %d offers, want 1 (stale serve)", n)
	}
	rebuildsBefore := tr.Stats().SnapshotRebuilds

	// One more write makes the gap exactly maxPending: must rebuild.
	if _, err := tr.Advertise(svc, mkRef("r3"), nil); err != nil {
		t.Fatal(err)
	}
	if n := imp(); n != 4 {
		t.Fatalf("gap == maxPending: %d offers, want 4 (rebuild)", n)
	}
	if got := tr.Stats().SnapshotRebuilds; got != rebuildsBefore+1 {
		t.Fatalf("SnapshotRebuilds = %d, want %d", got, rebuildsBefore+1)
	}
}

// TestSnapshotPolicyAgeBoundary pins the age bound as exclusive: a
// snapshot exactly maxStaleness old rebuilds; a nanosecond younger is
// still served stale.
func TestSnapshotPolicyAgeBoundary(t *testing.T) {
	e := newEnv(t)
	fc := clock.NewFake(time.Unix(500, 0))
	tr := e.traderWith("t1",
		WithTraderClock(fc),
		WithSnapshotPolicy(100*time.Millisecond, 1000))
	svc := serviceN(0)
	imp := func() int {
		t.Helper()
		offers, err := tr.Import(context.Background(), ImportSpec{Requirement: svc})
		if err != nil {
			t.Fatal(err)
		}
		return len(offers)
	}
	if _, err := tr.Advertise(svc, mkRef("r0"), nil); err != nil {
		t.Fatal(err)
	}
	if n := imp(); n != 1 {
		t.Fatalf("initial import: %d offers, want 1", n)
	}
	if _, err := tr.Advertise(svc, mkRef("r1"), nil); err != nil {
		t.Fatal(err)
	}

	fc.Advance(100*time.Millisecond - time.Nanosecond)
	if n := imp(); n != 1 {
		t.Fatalf("age maxStaleness-1ns: %d offers, want 1 (stale serve)", n)
	}
	fc.Advance(time.Nanosecond)
	if n := imp(); n != 2 {
		t.Fatalf("age == maxStaleness: %d offers, want 2 (rebuild)", n)
	}
}

// TestSnapshotPolicyZeroStaleness pins that an explicit zero age bound
// keeps reads strictly fresh no matter how generous the pending bound:
// with writes pending, the next read rebuilds and never serves stale.
func TestSnapshotPolicyZeroStaleness(t *testing.T) {
	e := newEnv(t)
	tr := e.traderWith("t1", WithSnapshotPolicy(0, 1000))
	svc := serviceN(0)
	imp := func() int {
		t.Helper()
		offers, err := tr.Import(context.Background(), ImportSpec{Requirement: svc})
		if err != nil {
			t.Fatal(err)
		}
		return len(offers)
	}
	if _, err := tr.Advertise(svc, mkRef("r0"), nil); err != nil {
		t.Fatal(err)
	}
	if n := imp(); n != 1 {
		t.Fatalf("initial import: %d offers, want 1", n)
	}
	if _, err := tr.Advertise(svc, mkRef("r1"), nil); err != nil {
		t.Fatal(err)
	}
	if n := imp(); n != 2 {
		t.Fatalf("zero staleness with pending write: %d offers, want 2 (rebuild)", n)
	}
	if st := tr.Stats(); st.StaleServes != 0 {
		t.Fatalf("StaleServes = %d, want 0 under zero staleness", st.StaleServes)
	}
}
